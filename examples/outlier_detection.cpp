// Secure outlier detection — another downstream task from Section 2.1.1,
// built on the k-FARTHEST extension (SMAX_n over complemented distance
// bits; see proto/smax.h).
//
// Scenario: a clinic's readings cluster tightly; a few corrupted/anomalous
// records don't. For a probe record near the clusters, the k farthest
// records are the anomalies — retrieved fully securely: the clouds learn
// neither the data nor which records were flagged.
//
// Run:  ./examples/outlier_detection
#include <algorithm>
#include <cstdio>
#include <set>

#include "baseline/plaintext_knn.h"
#include "core/engine.h"
#include "data/synthetic.h"

int main() {
  using namespace sknn;

  const std::size_t m = 4;
  const int64_t max_value = 30;

  // Tight cluster of normal records around (8, 10, 12, 9)...
  ClusterSpec spec;
  spec.num_clusters = 1;
  spec.spread = 2;
  PlainTable table = GenerateClusteredTable(14, m, 15, spec, /*seed=*/99);
  // ...plus injected anomalies far outside it.
  PlainTable anomalies = {{29, 1, 28, 2}, {0, 29, 1, 27}, {28, 28, 29, 30}};
  std::set<std::size_t> anomaly_rows;
  for (const auto& a : anomalies) {
    anomaly_rows.insert(table.size());
    table.push_back(a);
  }
  const unsigned k = static_cast<unsigned>(anomalies.size());

  std::printf("Secure outlier detection via k-farthest neighbors\n");
  std::printf("=================================================\n");
  std::printf("%zu records (%u injected anomalies), m=%zu, k=%u\n\n",
              table.size(), k, m, k);

  SknnEngine::Options options;
  options.key_bits = 512;
  options.attr_bits = BitsForMaxValue(max_value);
  options.c1_threads = 2;
  options.c2_threads = 2;
  auto engine = SknnEngine::Create(table, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Probe from the middle of the normal cluster.
  QueryRequest request;
  request.record = table[0];
  request.k = k;
  request.protocol = QueryProtocol::kFarthest;
  auto result = (*engine)->Query(request);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const PlainRecord& probe = request.record;
  std::printf("k farthest records from the cluster probe:\n");
  int found = 0;
  for (const auto& row : result->records) {
    bool is_anomaly =
        std::find(anomalies.begin(), anomalies.end(), row) != anomalies.end();
    found += is_anomaly ? 1 : 0;
    std::printf("  <");
    for (std::size_t j = 0; j < row.size(); ++j) {
      std::printf("%s%lld", j ? ", " : "", static_cast<long long>(row[j]));
    }
    std::printf(">  distance^2=%lld  %s\n",
                static_cast<long long>(SquaredDistance(row, probe)),
                is_anomaly ? "<- injected anomaly" : "");
  }
  std::printf("\nflagged %d / %u injected anomalies ", found, k);
  std::printf("(cloud time %.2f s, clouds learned nothing)\n",
              result->cloud_seconds);
  return found == static_cast<int>(k) ? 0 : 1;
}
