// Medical-records scenario: the security/efficiency trade-off on one
// database (Section 5's comparison, at example scale).
//
// A clinic outsources a synthetic patient table and issues the same query
// through the basic protocol SkNN_b (fast; C2 learns distances and both
// clouds learn access patterns) and the fully secure SkNN_m (hides
// everything), verifying both against exact plaintext kNN and printing the
// measured cost gap — the trade-off of Figure 2(f).
//
// Run:  ./examples/medical_records [n records, default 60]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "baseline/plaintext_knn.h"
#include "core/engine.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  using namespace sknn;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const std::size_t m = 6;     // the paper's default attribute count
  const unsigned l = 12;       // distance-domain bits (paper uses 6 / 12)
  const unsigned k = 5;
  const int64_t max_value = MaxValueForDistanceBits(m, l);

  std::printf("Secure medical-records kNN: n=%zu, m=%zu, l=%u, k=%u\n", n, m,
              l, k);
  std::printf("--------------------------------------------------\n");

  PlainTable table = GenerateUniformTable(n, m, max_value, /*seed=*/2014);
  PlainRecord query = GenerateUniformQuery(m, max_value, /*seed=*/2015);

  SknnEngine::Options options;
  options.key_bits = 512;
  options.attr_bits = BitsForMaxValue(max_value);
  options.c1_threads = 2;
  options.c2_threads = 2;
  auto engine = SknnEngine::Create(table, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Ground truth on plaintext.
  PlainTable expected = PlainKnn(table, query, k);

  auto check = [&](const char* name, const Result<QueryResponse>& result) {
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    // Compare distance multisets (ties may reorder records).
    std::multiset<int64_t> got, want;
    for (const auto& r : result->records) {
      got.insert(SquaredDistance(r, query));
    }
    for (const auto& r : expected) {
      want.insert(SquaredDistance(r, query));
    }
    bool correct = got == want;
    std::printf("\n%s:\n", name);
    std::printf("  correct vs plaintext kNN:  %s\n", correct ? "yes" : "NO");
    std::printf("  cloud time:                %8.2f s\n",
                result->cloud_seconds);
    std::printf("  Bob time:                  %8.2f ms\n",
                result->bob_seconds * 1e3);
    std::printf("  C1<->C2 traffic:           %8.1f KiB\n",
                result->traffic.total_bytes() / 1024.0);
    std::printf("  Paillier ops:              %s\n",
                result->ops.ToString().c_str());
    if (!correct) std::exit(1);
  };

  QueryRequest request;
  request.record = query;
  request.k = k;

  request.protocol = QueryProtocol::kBasic;
  auto basic = (*engine)->Query(request);
  check("SkNN_b (basic: leaks distances + access patterns)", basic);

  request.protocol = QueryProtocol::kSecure;
  auto secure = (*engine)->Query(request);
  check("SkNN_m (fully secure)", secure);

  std::printf("\nBreakdown of SkNN_m (paper Section 5.2 reports SMIN_n");
  std::printf(" at ~70%% of the total):\n");
  const SkNNmBreakdown& bd = secure->breakdown;
  double total = bd.total();
  auto line = [&](const char* phase, double seconds) {
    std::printf("  %-28s %8.2f s  (%4.1f%%)\n", phase, seconds,
                total > 0 ? 100.0 * seconds / total : 0.0);
  };
  line("SSED (distances)", bd.ssed_seconds);
  line("SBD (bit decomposition)", bd.sbd_seconds);
  line("SMIN_n (k tournaments)", bd.sminn_seconds);
  line("record extraction", bd.extract_seconds);
  line("SBOR distance clamping", bd.update_seconds);
  line("masked hand-off to Bob", bd.finalize_seconds);

  std::printf("\nSecurity/efficiency trade-off: SkNN_m cost %.1fx SkNN_b\n",
              secure->cloud_seconds /
                  (basic->cloud_seconds > 0 ? basic->cloud_seconds : 1e-9));
  return 0;
}
