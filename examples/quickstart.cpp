// Quickstart: the paper's running example (Section 1.1, Example 1),
// end to end.
//
// A hospital (Alice) outsources the encrypted heart-disease table of
// Table 1 to the federated cloud; a physician (Bob) asks for the k = 2
// records closest to his patient's readings. The cloud computes the answer
// with the fully secure SkNN_m protocol — it never sees the data, the query
// or which records matched — and Bob recovers t4 and t5.
//
// Run:  ./examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "data/heart_dataset.h"

int main() {
  using namespace sknn;

  const PlainTable& records = HeartFeatures();
  const PlainRecord& query = HeartExampleQuery();

  std::printf("SkNN quickstart — Example 1 from the paper\n");
  std::printf("==========================================\n\n");
  std::printf("Alice's database: %zu records x %zu attributes ",
              records.size(), records[0].size());
  std::printf("(Table 1, heart-disease data)\n");
  std::printf("Bob's query Q: <");
  for (std::size_t j = 0; j < query.size(); ++j) {
    std::printf("%s%lld", j ? ", " : "", static_cast<long long>(query[j]));
  }
  std::printf(">\n\n");

  // One-time setup: Alice generates keys, encrypts attribute-wise, and
  // outsources Epk(T) to C1 and sk to C2.
  SknnEngine::Options options;
  options.key_bits = 512;  // the paper's smaller evaluation key size
  options.attr_bits = HeartAttrBits();
  auto engine = SknnEngine::Create(records, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("Setup done: K = %u bits, l = %u distance bits.\n\n",
              options.key_bits, (*engine)->distance_bits());

  // Bob's query: k = 2 nearest neighbors, fully secure protocol.
  QueryRequest request;
  request.record = query;
  request.k = 2;
  request.protocol = QueryProtocol::kSecure;
  auto result = (*engine)->Query(request);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Bob's 2 nearest neighbors (SkNN_m):\n");
  const auto& names = HeartAttributeNames();
  std::printf("  %-10s", "");
  for (const auto& n : names) std::printf("%9s", n.c_str());
  std::printf("\n");
  for (std::size_t j = 0; j < result->records.size(); ++j) {
    std::printf("  neighbor%zu ", j + 1);
    for (int64_t v : result->records[j]) {
      std::printf("%9lld", static_cast<long long>(v));
    }
    std::printf("\n");
  }
  std::printf("\n(The paper's expected answer: records t5 and t4.)\n\n");

  std::printf("Costs of this query:\n");
  std::printf("  Bob (encrypt Q + unmask):   %7.1f ms\n",
              result->bob_seconds * 1e3);
  std::printf("  Cloud (C1+C2 computation):  %7.1f s\n",
              result->cloud_seconds);
  std::printf("  C1<->C2 traffic:            %7.1f KiB in %llu messages\n",
              result->traffic.total_bytes() / 1024.0,
              static_cast<unsigned long long>(result->traffic.total_frames()));
  std::printf("  Paillier ops:               %s\n",
              result->ops.ToString().c_str());
  return 0;
}
