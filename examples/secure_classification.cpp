// Secure kNN classification — the downstream data-mining task the paper
// highlights (Section 2.1.1: "secure clustering, classification, and
// outlier detection").
//
// A labeled, clustered dataset is outsourced encrypted; for each test query
// the cloud returns the k nearest records via SkNN_m, and the client
// classifies by majority vote over the labels it decrypts. The clouds learn
// neither the data, nor the queries, nor which records voted.
//
// The label is stored as an extra encrypted attribute: retrieving a record
// retrieves its label with it (distance is computed over features only —
// the engine encrypts the label column but the query sets its weight to
// zero by construction of the dataset layout; see below).
//
// Run:  ./examples/secure_classification
#include <cstdio>
#include <map>

#include "baseline/plaintext_knn.h"
#include "core/engine.h"
#include "data/synthetic.h"

namespace {

// Majority vote over the last attribute (the label column).
int64_t MajorityLabel(const sknn::PlainTable& neighbors) {
  std::map<int64_t, int> votes;
  for (const auto& r : neighbors) votes[r.back()]++;
  int64_t best = -1;
  int best_votes = -1;
  for (auto [label, count] : votes) {
    if (count > best_votes) {
      best = label;
      best_votes = count;
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace sknn;

  const std::size_t n = 48, m = 4;
  const unsigned k = 5;
  const int64_t max_value = 25;

  // Clustered features; label = cluster id (row i belongs to cluster i % c).
  ClusterSpec spec;
  spec.num_clusters = 4;
  spec.spread = 1;
  PlainTable features = GenerateClusteredTable(n, m, max_value, spec, 31);

  // Append the label as one extra stored column. Since every query we issue
  // carries label value 0 and labels are small, the label contributes at
  // most label^2 <= 9 to the squared distance — two orders of magnitude
  // below the cluster separation, so it never changes the vote. (A
  // production deployment would keep a separate encrypted label store; this
  // keeps the example single-engine.)
  PlainTable table = features;
  for (std::size_t i = 0; i < n; ++i) {
    table[i].push_back(static_cast<int64_t>(i % spec.num_clusters));
  }

  std::printf("Secure kNN classification over encrypted records\n");
  std::printf("================================================\n");
  std::printf("n=%zu training records, m=%zu features, %zu classes, k=%u\n\n",
              n, m, spec.num_clusters, k);

  SknnEngine::Options options;
  options.key_bits = 512;
  options.attr_bits = BitsForMaxValue(max_value);
  options.c1_threads = 2;
  options.c2_threads = 2;
  auto engine = SknnEngine::Create(table, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Test queries: jittered copies of known-cluster points. All of them are
  // independent, so they go out as one batch — the engine pipelines up to
  // c1_threads of them concurrently over the shared cloud stack.
  const int kTests = 6;
  std::vector<QueryRequest> requests;
  std::vector<int64_t> true_labels;
  Random rng(32);
  for (int t = 0; t < kTests; ++t) {
    std::size_t base = rng.UniformUint64(n);
    PlainRecord query = features[base];
    for (auto& v : query) {
      v = std::min<int64_t>(max_value,
                            std::max<int64_t>(0, v + (t % 3) - 1));
    }
    query.push_back(0);  // label column placeholder
    true_labels.push_back(static_cast<int64_t>(base % spec.num_clusters));

    QueryRequest request;
    request.record = std::move(query);
    request.k = k;
    request.protocol = QueryProtocol::kSecure;
    requests.push_back(std::move(request));
  }

  std::vector<Result<QueryResponse>> results =
      (*engine)->QueryBatch(requests);

  int correct_secure = 0, agree_with_plain = 0;
  for (int t = 0; t < kTests; ++t) {
    const Result<QueryResponse>& result = results[t];
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const PlainRecord& query = requests[t].record;
    int64_t secure_label = MajorityLabel(result->records);
    int64_t plain_label = MajorityLabel(PlainKnn(table, query, k));

    if (secure_label == true_labels[t]) ++correct_secure;
    if (secure_label == plain_label) ++agree_with_plain;
    std::printf(
        "  query %d: true=%lld  secure-kNN=%lld  plain-kNN=%lld  (%5.2f s)\n",
        t, static_cast<long long>(true_labels[t]),
        static_cast<long long>(secure_label),
        static_cast<long long>(plain_label), result->cloud_seconds);
  }

  std::printf("\nAccuracy vs. true cluster: %d/%d\n", correct_secure, kTests);
  std::printf("Agreement with plaintext kNN classifier: %d/%d\n",
              agree_with_plain, kTests);
  return agree_with_plain == kTests ? 0 : 1;
}
