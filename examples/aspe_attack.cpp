// Why the paper exists: breaking the prior art.
//
// Wong et al.'s ASPE [28] was the strongest pre-2013 SkNN scheme: encrypt
// the table with a secret invertible matrix, and kNN still works via
// preserved scalar products. This example shows (1) ASPE answering a kNN
// query correctly, then (2) an attacker with a handful of known
// (plaintext, ciphertext) pairs — an insider, or anyone able to insert
// records — recovering the ENTIRE outsourced database by linear algebra.
// The Paillier-based SkNN_m protocol is immune by construction: it is
// semantically secure, so no amount of known plaintext helps.
//
// Run:  ./examples/aspe_attack
#include <cstdio>

#include "baseline/aspe.h"
#include "baseline/plaintext_knn.h"
#include "data/synthetic.h"

int main() {
  using namespace sknn;

  const std::size_t n = 40, m = 5;
  const int64_t max_value = 120;
  PlainTable table = GenerateUniformTable(n, m, max_value, /*seed=*/77);
  PlainRecord query = GenerateUniformQuery(m, max_value, /*seed=*/78);
  Random rng(79);

  std::printf("ASPE (Wong et al. [28]) — and why it is not enough\n");
  std::printf("==================================================\n\n");

  // 1. ASPE working as intended.
  AspeScheme scheme = AspeScheme::Create(m, rng);
  std::vector<AspeVector> enc_points;
  enc_points.reserve(n);
  for (const auto& row : table) {
    enc_points.push_back(scheme.EncryptPoint(row));
  }
  AspeVector enc_query = scheme.EncryptQuery(query, rng);

  auto secure_idx = AspeScheme::Knn(enc_points, enc_query, 3);
  auto plain_idx = PlainKnnIndices(table, query, 3);
  std::printf("Step 1 — ASPE answers the 3-NN query on ciphertexts only:\n");
  std::printf("  ASPE result indices:      ");
  for (std::size_t i : secure_idx) std::printf("%zu ", i);
  std::printf("\n  plaintext kNN indices:    ");
  for (std::size_t i : plain_idx) std::printf("%zu ", i);
  bool same = secure_idx == plain_idx;
  std::printf("\n  -> %s\n\n", same ? "order preserved, query answered"
                                    : "MISMATCH (unexpected)");

  // 2. The known-plaintext break.
  const std::size_t known = m + 2;
  std::printf("Step 2 — attacker learns %zu (plaintext, ciphertext) pairs\n",
              known);
  std::printf("  (e.g. records the attacker inserted, or public rows).\n");
  std::vector<PlainRecord> known_plain(table.begin(), table.begin() + known);
  std::vector<AspeVector> known_enc(enc_points.begin(),
                                    enc_points.begin() + known);
  auto attack = AspeKnownPlaintextAttack::Fit(known_plain, known_enc);
  if (!attack.ok()) {
    std::fprintf(stderr, "attack fit failed: %s\n",
                 attack.status().ToString().c_str());
    return 1;
  }

  std::size_t recovered = 0;
  for (std::size_t i = known; i < n; ++i) {
    if (attack->Decrypt(enc_points[i]) == table[i]) ++recovered;
  }
  std::printf("  secret key recovered by solving one linear system.\n");
  std::printf("  decrypted %zu / %zu remaining ciphertexts correctly.\n\n",
              recovered, n - known);

  std::printf("Sample recovered record vs. truth (record %zu):\n", known);
  PlainRecord rec = attack->Decrypt(enc_points[known]);
  std::printf("  recovered: ");
  for (int64_t v : rec) std::printf("%lld ", static_cast<long long>(v));
  std::printf("\n  truth:     ");
  for (int64_t v : table[known]) {
    std::printf("%lld ", static_cast<long long>(v));
  }
  std::printf("\n\n");

  std::printf(
      "Step 3 — contrast: the paper's SkNN_m stores only Paillier\n"
      "ciphertexts. Semantic security means known plaintexts give an\n"
      "attacker nothing: each encryption is freshly randomized, and all\n"
      "query processing happens under encryption (see quickstart and\n"
      "medical_records for the protocol in action).\n");
  return recovered == n - known && same ? 0 : 1;
}
