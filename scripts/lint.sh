#!/usr/bin/env bash
# Repo lint gate — run locally before pushing, run by the lint CI job.
#
# Two layers:
#  1. Custom greps with no tool dependencies (always run):
#       - no raw std::mutex / locks outside src/common/mutex.h: every lock
#         must be the annotated sknn::Mutex so Clang Thread Safety Analysis
#         sees it (docs/CONCURRENCY.md);
#       - no naked std::sto* / atoi in tools/: flag parsing must go through
#         tools/tool_util.h's checked parsers, which reject trailing garbage
#         and never throw out of a CLI;
#       - no std::thread::detach anywhere: every thread must be joined, or
#         TSan-clean teardown is impossible;
#       - every client-visible wire frame type in src/net/query_wire.h is
#         documented by name in docs/API.md, the versioned client contract;
#       - no scalar per-element crypto calls (.Encrypt/.Decrypt/.Rerandomize/
#         .PowMod) in the src/proto/ hot paths: batch work must go through
#         EncryptMany/DecryptMany/RerandomizeMany/PowModMany so it shares
#         the randomizer pool and thread fan-out (docs/CRYPTO.md). A
#         justified scalar call carries a `// batch-exempt: <why>` marker on
#         its own line or the line above.
#  2. clang-tidy over compile_commands.json (runs when clang-tidy is on
#     PATH — the lint CI job; skipped with a notice otherwise). Checks are
#     curated in .clang-tidy.
#
# Usage: scripts/lint.sh [build-dir]     (default: build)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
cd "${repo_root}"

failures=0

fail() {
  echo "LINT FAIL: $1" >&2
  shift
  printf '%s\n' "$@" >&2
  failures=$((failures + 1))
}

# --- 1a. Raw mutex primitives outside the annotated wrapper ----------------
raw_mutex=$(grep -rn --include='*.h' --include='*.cc' \
  -e 'std::mutex' -e 'std::lock_guard' -e 'std::unique_lock' \
  -e 'std::condition_variable' -e 'std::scoped_lock' -e 'std::shared_mutex' \
  src tools tests bench examples 2>/dev/null \
  | grep -v '^src/common/mutex\.h:' || true)
if [ -n "${raw_mutex}" ]; then
  fail "raw std::mutex primitives outside src/common/mutex.h — use \
sknn::Mutex/MutexLock/CondVar so the thread-safety analysis covers them" \
    "${raw_mutex}"
fi

# --- 1b. Naked numeric parsing in the CLI tools ----------------------------
# tool_util.h's ParseCount/ParsePort reject garbage and never throw; a naked
# std::sto* aborts the whole tool on "--port abc". Comments are exempt.
naked_sto=$(grep -rn --include='*.h' --include='*.cc' \
  -e 'std::sto[a-z]*(' -e '[^_a-z]atoi(' -e 'strtoul(' \
  tools 2>/dev/null | grep -v '^\s*//' | grep -v ':[0-9]*:\s*//' || true)
if [ -n "${naked_sto}" ]; then
  fail "naked numeric parsing in tools/ — use the checked parsers in \
tools/tool_util.h" "${naked_sto}"
fi

# --- 1c. Detached threads --------------------------------------------------
detached=$(grep -rn --include='*.h' --include='*.cc' '\.detach()' \
  src tools tests bench examples 2>/dev/null || true)
if [ -n "${detached}" ]; then
  fail "std::thread::detach — track and join every thread (TSan-clean \
teardown, docs/CONCURRENCY.md)" "${detached}"
fi

# --- 1d. Undocumented wire frames ------------------------------------------
# docs/API.md is the versioned client contract: every front-end frame type
# declared in src/net/query_wire.h (the `kName = 0x....` enumerators) must
# appear there by name. Shipping an opcode without documenting it breaks
# third-party clients silently. (src/net/shard_wire.h is exempt — API.md
# declares the coordinator<->worker protocol internal and unversioned.)
undocumented=""
for opcode in $(grep -oE 'k[A-Za-z0-9]+ = 0x' src/net/query_wire.h \
                  | sed 's/ = 0x//'); do
  if ! grep -qw "${opcode}" docs/API.md; then
    undocumented="${undocumented}${opcode}"$'\n'
  fi
done
if [ -n "${undocumented}" ]; then
  fail "wire frame types in src/net/query_wire.h missing from docs/API.md — \
document the layout and semantics of every client-visible frame" \
    "${undocumented}"
fi

# --- 1e. Scalar crypto calls in the src/proto hot paths --------------------
# The sub-protocol drivers and the C2 handlers are the system's hottest
# loops; a scalar .Encrypt/.Decrypt/.Rerandomize/.PowMod there bypasses the
# batch API (randomizer pool sharing + thread fan-out). The Many-suffixed
# calls don't match (the open paren anchors the scalar form). Exempt a
# justified call with `// batch-exempt: <why>` on the match line or the
# line directly above.
scalar_crypto=$(awk '
  {
    if ($0 ~ /\.(Encrypt|Decrypt|Rerandomize|PowMod)\(/ &&
        $0 !~ /batch-exempt:/ && NR != exempt_line) {
      printf "%s:%d:%s\n", FILENAME, FNR, $0
    }
    if ($0 ~ /batch-exempt:/) exempt_line = NR + 1
  }
' src/proto/*.cc 2>/dev/null || true)
if [ -n "${scalar_crypto}" ]; then
  fail "scalar per-element crypto calls in src/proto/ — use the batch API \
(EncryptMany/DecryptMany/RerandomizeMany/PowModMany, crypto/paillier.h) or \
mark the call '// batch-exempt: <why>'" "${scalar_crypto}"
fi

# --- 2. clang-tidy ---------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "${build_dir}/compile_commands.json" ]; then
    fail "clang-tidy needs ${build_dir}/compile_commands.json — configure \
with cmake -B ${build_dir} -S . (CMAKE_EXPORT_COMPILE_COMMANDS is on by \
default)"
  else
    # Library + tools only: test binaries are gtest-macro soup that drowns
    # the signal. run-clang-tidy parallelizes when present.
    tidy_sources=$(find src tools -name '*.cc' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
      # shellcheck disable=SC2086  # word-splitting the file list is intended
      if ! run-clang-tidy -quiet -p "${build_dir}" ${tidy_sources} \
          > /tmp/clang_tidy_lint.log 2>&1; then
        fail "clang-tidy (see /tmp/clang_tidy_lint.log)" \
          "$(grep -E 'warning:|error:' /tmp/clang_tidy_lint.log | head -50)"
      fi
    else
      tidy_failed=0
      for f in ${tidy_sources}; do
        clang-tidy -quiet -p "${build_dir}" "${f}" \
          >> /tmp/clang_tidy_lint.log 2>&1 || tidy_failed=1
      done
      if [ "${tidy_failed}" -ne 0 ]; then
        fail "clang-tidy (see /tmp/clang_tidy_lint.log)" \
          "$(grep -E 'warning:|error:' /tmp/clang_tidy_lint.log | head -50)"
      fi
    fi
  fi
else
  echo "lint: clang-tidy not on PATH — skipping the static-analysis layer" \
    "(the lint CI job runs it)"
fi

if [ "${failures}" -ne 0 ]; then
  echo "lint: ${failures} gate(s) failed" >&2
  exit 1
fi
echo "lint: OK"
