#!/usr/bin/env bash
# Out-of-process smoke of the serving deployment (docs/DEPLOY.md), four legs:
#   1. the four-binary topology: keygen -> encrypt -> sknn_c2_server ->
#      sknn_c1_server -> concurrent thin clients;
#   2. the SHARDED topology: the same database split across two
#      sknn_c1_shard workers (via the manifest sknn_encrypt emitted) behind
#      a worker-backed sknn_c1_server;
#   3. the MULTI-TABLE topology: two tables with DISTINCT Paillier keys
#      (each with its own C2 key holder) behind ONE sknn_c1_server,
#      introspected with sknn_admin and torn down with SIGTERM — the
#      servers must drain and exit 0, which is why no teardown step here
#      needs "|| true";
#   4. the CHAOS leg: 2 shards x 2 replicas behind one front end, with
#      oracle-diffing clients looping the whole time while the smoke
#      kill -9s a replica mid-traffic, restarts it on the same port (the
#      probe redials and reinstates it), and hot-reloads the table — zero
#      client-visible failures allowed; then both replicas of one shard
#      are SIGSTOPped and a --deadline-ms probe must come back as a TYPED
#      deadline error (exit 4) within the budget, not a hang;
#   5. the QoS leg (revision 6): a key-gated front end — keyless and
#      wrong-key queries are typed PermissionDenied (exit 5), an
#      authorized miss/hit/--no-cache triple must all equal the oracle
#      (the cache-freshness differential), and a quota-2 key is served
#      twice then typed ResourceExhausted.
# Every answer of every leg is diffed against the plaintext oracle — the
# sharded leg on a table WITH tied distances, which the deterministic
# tie-break must resolve exactly like the oracle (lower index first).
# Control-plane assertions go through `sknn_admin --json` + python3
# (structured checks, not output-format greps).
#
#   scripts/smoke_deploy.sh [build-dir]     # default: build
set -euo pipefail

BUILD_DIR=${1:-build}
BIN=$(cd "$BUILD_DIR" && pwd)
WORK=$(mktemp -d)
# Failure-path safety net only: every leg's normal path stops its servers
# with term_and_wait below and asserts a clean exit 0.
cleanup() {
  local pids
  pids=$(jobs -p)
  if [ -n "$pids" ]; then
    # shellcheck disable=SC2086  # word splitting wanted: one pid per argument
    kill $pids 2>/dev/null && wait $pids 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# SIGTERM each pid, then wait for ALL of them, requiring clean exits: under
# `set -e` a server that dies non-zero (instead of draining on the signal)
# fails the smoke.
term_and_wait() {
  local pid
  for pid in "$@"; do kill -TERM "$pid"; done
  for pid in "$@"; do wait "$pid"; done
}

PY=python3
command -v "$PY" > /dev/null || {
  echo "python3 is required for the structured sknn_admin --json checks" >&2
  exit 1
}

# Assert a python expression over `d`, the parsed JSON document in file $1.
# sknn_admin --json emits one document per invocation: --stats/--health are
# objects, --list-tables/--table-info are bare arrays.
json_assert() { # json-file python-expression
  "$PY" -c '
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
if not eval(sys.argv[2]):
    sys.exit(1)
' "$1" "$2" || {
    echo "json check failed: $2"
    echo "-- document ($1):"
    cat "$1"
    exit 1
  }
}

# Print "<healthy> <total>" replica counts from a --json --health document;
# tolerates a missing/truncated file (prints "0 0") so poll loops can race
# the admin call.
healthy_replicas() { # json-file
  "$PY" -c '
import json, sys
try:
    with open(sys.argv[1]) as f:
        d = json.load(f)
    rs = [r for t in d["tables"] for r in t["replicas"]]
    print(sum(1 for r in rs if r["healthy"]), len(rs))
except Exception:
    print(0, 0)
' "$1"
}

# A distinct-distance table: answers are deterministic for every protocol,
# so the secure results must match the plaintext oracle exactly.
cat > "$WORK/table.csv" <<EOF
0,0
1,0
2,0
3,0
4,0
5,0
EOF
# Queries on or beyond the table edge keep all squared distances distinct.
QUERIES=("0,0" "5,0" "7,1")

echo "== Alice: keygen + encrypt (+ 2-shard manifest) =="
"$BIN/sknn_keygen" --bits 512 --public "$WORK/pk.txt" --secret "$WORK/sk.txt"
"$BIN/sknn_encrypt" --public "$WORK/pk.txt" --csv "$WORK/table.csv" \
  --attr-bits 3 --out "$WORK/db.bin"

# The sharded leg's table: records 1-3 are all at squared distance 4 from
# query (2,0) — the deterministic tie-break (lower index) is on the line.
cat > "$WORK/tied.csv" <<EOF
2,0
0,0
4,0
2,2
7,0
EOF
"$BIN/sknn_encrypt" --public "$WORK/pk.txt" --csv "$WORK/tied.csv" \
  --attr-bits 3 --out "$WORK/tied_db.bin" \
  --shards 2 --shard-scheme roundrobin --manifest-out "$WORK/tied_manifest.bin"

wait_for_port() { # logfile -> port printed as "serving on 127.0.0.1:PORT"
  local log=$1 port=""
  for _ in $(seq 100); do
    port=$(sed -n 's/.*serving on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)
    [ -n "$port" ] && { echo "$port"; return 0; }
    sleep 0.1
  done
  echo "timed out waiting for server port in $log" >&2
  return 1
}

echo "== C2: key holder =="
"$BIN/sknn_c2_server" --secret "$WORK/sk.txt" --port 0 --workers 2 \
  --pool-capacity 256 --connections 1 > "$WORK/c2.log" 2>&1 &
C2_PID=$!
C2_PORT=$(wait_for_port "$WORK/c2.log")

echo "== C1: query front end =="
N_QUERIES=$((2 * ${#QUERIES[@]} + 1)) # basic+secure per query, one farthest
"$BIN/sknn_c1_server" --public "$WORK/pk.txt" --db "$WORK/db.bin" --port 0 \
  --c2-host 127.0.0.1 --c2-port "$C2_PORT" --threads 2 --max-in-flight 8 \
  --queries "$N_QUERIES" > "$WORK/c1.log" 2>&1 &
C1_PID=$!
C1_PORT=$(wait_for_port "$WORK/c1.log")

echo "== Bob x $N_QUERIES: concurrent thin clients =="
CLIENT_PIDS=()
for q in "${QUERIES[@]}"; do
  for proto in basic secure; do
    "$BIN/sknn_query" --host 127.0.0.1 --port "$C1_PORT" --query "$q" \
      --k 2 --protocol "$proto" > "$WORK/out_${proto}_${q//,/_}" 2>>"$WORK/clients.log" &
    CLIENT_PIDS+=($!)
  done
done
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1_PORT" --query "0,0" \
  --k 2 --protocol farthest > "$WORK/out_farthest_0_0" 2>>"$WORK/clients.log" &
CLIENT_PIDS+=($!)
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || { echo "a thin client failed:"; cat "$WORK/clients.log"; exit 1; }
done

echo "== diff against the plaintext oracle =="
for q in "${QUERIES[@]}"; do
  "$BIN/sknn_plain_knn" --csv "$WORK/table.csv" --query "$q" --k 2 > "$WORK/want"
  for proto in basic secure; do
    tail -n +2 "$WORK/out_${proto}_${q//,/_}" > "$WORK/got"
    diff -u "$WORK/want" "$WORK/got" || {
      echo "MISMATCH: $proto query=$q"; exit 1; }
  done
done
"$BIN/sknn_plain_knn" --csv "$WORK/table.csv" --query "0,0" --k 2 --farthest \
  > "$WORK/want"
tail -n +2 "$WORK/out_farthest_0_0" > "$WORK/got"
diff -u "$WORK/want" "$WORK/got" || { echo "MISMATCH: farthest query=0,0"; exit 1; }

wait "$C1_PID"
wait "$C2_PID"
echo "leg 1 OK: $N_QUERIES concurrent queries match the plaintext oracle"

echo "== leg 2: sharded deployment (2 x sknn_c1_shard + coordinator) =="
# 3 links close on this C2: two shard workers + the coordinator.
"$BIN/sknn_c2_server" --secret "$WORK/sk.txt" --port 0 --workers 2 \
  --pool-capacity 256 --connections 3 > "$WORK/c2_sharded.log" 2>&1 &
C2S_PID=$!
C2S_PORT=$(wait_for_port "$WORK/c2_sharded.log")

SHARD_PIDS=()
for shard in 0 1; do
  "$BIN/sknn_c1_shard" --public "$WORK/pk.txt" --db "$WORK/tied_db.bin" \
    --port 0 --c2-host 127.0.0.1 --c2-port "$C2S_PORT" \
    --manifest "$WORK/tied_manifest.bin" --shard-index "$shard" \
    --threads 2 --connections 1 > "$WORK/shard$shard.log" 2>&1 &
  SHARD_PIDS+=($!)
done
SHARD0_PORT=$(wait_for_port "$WORK/shard0.log")
SHARD1_PORT=$(wait_for_port "$WORK/shard1.log")

# The worker-backed front end hosts no records itself: no --db.
N_SHARDED=3
"$BIN/sknn_c1_server" --public "$WORK/pk.txt" --port 0 \
  --c2-host 127.0.0.1 --c2-port "$C2S_PORT" --threads 2 --max-in-flight 8 \
  --shard-workers "127.0.0.1:$SHARD0_PORT,127.0.0.1:$SHARD1_PORT" \
  --queries "$N_SHARDED" > "$WORK/c1_sharded.log" 2>&1 &
C1S_PID=$!
C1S_PORT=$(wait_for_port "$WORK/c1_sharded.log")

# Query (2,0) puts records 1-3 in a three-way distance tie: the sharded
# answer must break it exactly like the oracle (lower index first).
for proto in basic secure; do
  "$BIN/sknn_query" --host 127.0.0.1 --port "$C1S_PORT" --query "2,0" \
    --k 3 --protocol "$proto" > "$WORK/sharded_$proto" \
    2>>"$WORK/clients.log" || { echo "sharded $proto client failed"; exit 1; }
  "$BIN/sknn_plain_knn" --csv "$WORK/tied.csv" --query "2,0" --k 3 \
    > "$WORK/want"
  tail -n +2 "$WORK/sharded_$proto" > "$WORK/got"
  diff -u "$WORK/want" "$WORK/got" || {
    echo "MISMATCH: sharded $proto (tie-break?)"; exit 1; }
done
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1S_PORT" --query "2,0" \
  --k 2 --protocol farthest > "$WORK/sharded_farthest" \
  2>>"$WORK/clients.log" || { echo "sharded farthest client failed"; exit 1; }
"$BIN/sknn_plain_knn" --csv "$WORK/tied.csv" --query "2,0" --k 2 --farthest \
  > "$WORK/want"
tail -n +2 "$WORK/sharded_farthest" > "$WORK/got"
diff -u "$WORK/want" "$WORK/got" || { echo "MISMATCH: sharded farthest"; exit 1; }

wait "$C1S_PID"
for pid in "${SHARD_PIDS[@]}"; do wait "$pid"; done
wait "$C2S_PID"
echo "leg 2 OK: 2-shard deployment matches the oracle (ties included)"

echo "== leg 3: multi-table front end (distinct keys per table) =="
# A second key ceremony: table "beta" shares NOTHING with "alpha" — its own
# key pair, its own C2 key holder, its own dimensionality.
"$BIN/sknn_keygen" --bits 512 --public "$WORK/pk_b.txt" --secret "$WORK/sk_b.txt"
cat > "$WORK/beta.csv" <<EOF
0,0,1
2,0,1
4,0,1
6,0,1
EOF
"$BIN/sknn_encrypt" --public "$WORK/pk_b.txt" --csv "$WORK/beta.csv" \
  --attr-bits 3 --out "$WORK/beta_db.bin"

# Both C2s and the front end run UNBOUNDED here: leg 3's teardown is the
# SIGINT/SIGTERM drain path itself.
"$BIN/sknn_c2_server" --secret "$WORK/sk.txt" --port 0 --workers 2 \
  --pool-capacity 256 > "$WORK/c2_alpha.log" 2>&1 &
C2A_PID=$!
C2A_PORT=$(wait_for_port "$WORK/c2_alpha.log")
"$BIN/sknn_c2_server" --secret "$WORK/sk_b.txt" --port 0 --workers 2 \
  --pool-capacity 256 > "$WORK/c2_beta.log" 2>&1 &
C2B_PID=$!
C2B_PORT=$(wait_for_port "$WORK/c2_beta.log")

"$BIN/sknn_c1_server" --port 0 --threads 2 --max-in-flight 8 \
  --table "alpha=$WORK/db.bin,public=$WORK/pk.txt,c2-port=$C2A_PORT" \
  --table "beta=$WORK/beta_db.bin,public=$WORK/pk_b.txt,c2-port=$C2B_PORT" \
  > "$WORK/c1_multi.log" 2>&1 &
C1M_PID=$!
C1M_PORT=$(wait_for_port "$WORK/c1_multi.log")

echo "== sknn_admin: control plane (structured --json checks) =="
"$BIN/sknn_admin" --host 127.0.0.1 --port "$C1M_PORT" --json --hello \
  > "$WORK/hello.json"
json_assert "$WORK/hello.json" 'd["revision"] >= 6 and d["num_tables"] == 2'
"$BIN/sknn_admin" --host 127.0.0.1 --port "$C1M_PORT" --json --list-tables \
  > "$WORK/tables.json"
json_assert "$WORK/tables.json" 'd == ["alpha", "beta"]'
"$BIN/sknn_admin" --host 127.0.0.1 --port "$C1M_PORT" --json --table-info \
  > "$WORK/table_info.json"
json_assert "$WORK/table_info.json" \
  '[t["name"] for t in d] == ["alpha", "beta"]'
json_assert "$WORK/table_info.json" \
  'd[0]["attributes"] == 2 and d[1]["attributes"] == 3' # beta is 3-dimensional
json_assert "$WORK/table_info.json" \
  'all(t["records"] > 0 and t["k_max"] >= 2 for t in d)'

echo "== per-table queries diffed against the oracle =="
for q in "1,0" "5,0"; do
  "$BIN/sknn_query" --host 127.0.0.1 --port "$C1M_PORT" --table alpha \
    --query "$q" --k 2 --protocol secure > "$WORK/alpha_out" \
    2>>"$WORK/clients.log"
  "$BIN/sknn_plain_knn" --csv "$WORK/table.csv" --query "$q" --k 2 \
    > "$WORK/want"
  tail -n +2 "$WORK/alpha_out" > "$WORK/got"
  diff -u "$WORK/want" "$WORK/got" || { echo "MISMATCH: alpha $q"; exit 1; }
done
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1M_PORT" --table beta \
  --query "5,0,1" --k 2 --protocol secure > "$WORK/beta_out" \
  2>>"$WORK/clients.log"
"$BIN/sknn_plain_knn" --csv "$WORK/beta.csv" --query "5,0,1" --k 2 \
  > "$WORK/want"
tail -n +2 "$WORK/beta_out" > "$WORK/got"
diff -u "$WORK/want" "$WORK/got" || { echo "MISMATCH: beta"; exit 1; }

# A wrong table name is a typed error (exit 1), not a hang or garbage.
if "$BIN/sknn_query" --host 127.0.0.1 --port "$C1M_PORT" --table gamma \
    --query "1,0" --k 1 > /dev/null 2>"$WORK/gamma.err"; then
  echo "querying an unknown table unexpectedly succeeded"; exit 1
fi
grep -q "unknown table" "$WORK/gamma.err"

"$BIN/sknn_admin" --host 127.0.0.1 --port "$C1M_PORT" --json --stats \
  > "$WORK/stats.json"
json_assert "$WORK/stats.json" \
  '{t["name"]: t["completed"] for t in d["tables"]} == {"alpha": 2, "beta": 1}'
json_assert "$WORK/stats.json" \
  'all(t["failed"] == 0 and t["rejected"] == 0 for t in d["tables"])'
# Revision 4: the per-table randomizer pools must be provisioned on some
# cloud. Revision 6: fair-admission words are live (weight defaults to 1,
# every table gets a non-zero share of --max-in-flight) and auth is OFF
# on a front end started without --api-keys.
json_assert "$WORK/stats.json" \
  'all(t["c1_pool_capacity"] + t["c2_pool_capacity"] > 0 for t in d["tables"])'
json_assert "$WORK/stats.json" \
  'all(t["weight"] == 1 and t["share_limit"] >= 1 for t in d["tables"])'
json_assert "$WORK/stats.json" \
  'd["auth_enabled"] is False and d["keys"] == []'

echo "== SIGTERM teardown: every server must drain and exit 0 =="
term_and_wait "$C1M_PID"
term_and_wait "$C2A_PID" "$C2B_PID"
echo "leg 3 OK: two tables, two key pairs, one front end; clean shutdown"

echo "== leg 4: chaos — 2 shards x 2 replicas, kill -9 + hot reload under traffic =="
# The C2 and the workers run UNBOUNDED: redials after the kill -9 and the
# fresh links a hot reload opens make the connection count unpredictable.
"$BIN/sknn_c2_server" --secret "$WORK/sk.txt" --port 0 --workers 2 \
  --pool-capacity 256 > "$WORK/c2_chaos.log" 2>&1 &
C2C_PID=$!
C2C_PORT=$(wait_for_port "$WORK/c2_chaos.log")

start_replica() { # shard replica-tag port(0=ephemeral) -> logs to chaos_<s><tag>.log
  "$BIN/sknn_c1_shard" --public "$WORK/pk.txt" --db "$WORK/tied_db.bin" \
    --port "$3" --c2-host 127.0.0.1 --c2-port "$C2C_PORT" \
    --manifest "$WORK/tied_manifest.bin" --shard-index "$1" \
    --threads 2 > "$WORK/chaos_$1$2.log" 2>&1 &
}
start_replica 0 a 0; S0A_PID=$!
start_replica 0 b 0; S0B_PID=$!
start_replica 1 a 0; S1A_PID=$!
start_replica 1 b 0; S1B_PID=$!
S0A_PORT=$(wait_for_port "$WORK/chaos_0a.log")
S0B_PORT=$(wait_for_port "$WORK/chaos_0b.log")
S1A_PORT=$(wait_for_port "$WORK/chaos_1a.log")
S1B_PORT=$(wait_for_port "$WORK/chaos_1b.log")

# Two addresses claiming the same shard index = replicas of that shard.
"$BIN/sknn_c1_server" --public "$WORK/pk.txt" --port 0 \
  --c2-host 127.0.0.1 --c2-port "$C2C_PORT" --threads 2 --max-in-flight 8 \
  --shard-workers "127.0.0.1:$S0A_PORT,127.0.0.1:$S0B_PORT,127.0.0.1:$S1A_PORT,127.0.0.1:$S1B_PORT" \
  > "$WORK/c1_chaos.log" 2>&1 &
C1C_PID=$!
C1C_PORT=$(wait_for_port "$WORK/c1_chaos.log")

# Oracle-diffing client loop: queries until chaos_stop appears, records its
# query count, and flags ANY failure or oracle mismatch in chaos_failed.
"$BIN/sknn_plain_knn" --csv "$WORK/tied.csv" --query "2,0" --k 3 \
  > "$WORK/chaos_want"
chaos_client() { # proto
  local proto=$1 n=0
  while [ ! -f "$WORK/chaos_stop" ]; do
    if ! "$BIN/sknn_query" --host 127.0.0.1 --port "$C1C_PORT" \
        --query "2,0" --k 3 --protocol "$proto" \
        > "$WORK/chaos_out_$proto" 2>>"$WORK/chaos_clients.log"; then
      echo "$proto query failed" >> "$WORK/chaos_failed"
      return 0
    fi
    tail -n +2 "$WORK/chaos_out_$proto" > "$WORK/chaos_got_$proto"
    diff -u "$WORK/chaos_want" "$WORK/chaos_got_$proto" \
      >> "$WORK/chaos_failed" 2>&1 || true
    n=$((n + 1))
  done
  echo "$n" > "$WORK/chaos_count_$proto"
}
chaos_client basic &
CHAOS_BASIC_PID=$!
chaos_client secure &
CHAOS_SECURE_PID=$!
sleep 1 # let traffic flow on the healthy topology first

echo "== kill -9 shard-0 replica a mid-traffic =="
kill -9 "$S0A_PID"
wait "$S0A_PID" 2>/dev/null || true
healthy=0 total=0
for _ in $(seq 100); do
  "$BIN/sknn_admin" --host 127.0.0.1 --port "$C1C_PORT" --json --health \
    > "$WORK/chaos_health.json" 2>/dev/null || true
  read -r healthy total <<< "$(healthy_replicas "$WORK/chaos_health.json")"
  [ "$total" -eq 4 ] && [ "$healthy" -lt 4 ] && break
  sleep 0.1
done
if [ "$total" -ne 4 ] || [ "$healthy" -ge 4 ]; then
  echo "killed replica never went unhealthy in sknn_admin --json --health"
  cat "$WORK/chaos_health.json"; exit 1
fi

echo "== restart the replica on the same port: redial must reinstate it =="
start_replica 0 a "$S0A_PORT"; S0A_PID=$!
wait_for_port "$WORK/chaos_0a.log" > /dev/null
for _ in $(seq 200); do
  "$BIN/sknn_admin" --host 127.0.0.1 --port "$C1C_PORT" --json --health \
    > "$WORK/chaos_health.json" 2>/dev/null || true
  read -r healthy total <<< "$(healthy_replicas "$WORK/chaos_health.json")"
  [ "$healthy" -eq 4 ] && [ "$total" -eq 4 ] && break
  sleep 0.1
done
if [ "$healthy" -ne 4 ] || [ "$total" -ne 4 ]; then
  echo "restarted replica was never reinstated"
  cat "$WORK/chaos_health.json"; exit 1
fi
json_assert "$WORK/chaos_health.json" \
  'all(r["consecutive_failures"] == 0 for t in d["tables"] for r in t["replicas"])'

echo "== hot reload under live traffic =="
"$BIN/sknn_admin" --host 127.0.0.1 --port "$C1C_PORT" \
  --reload-table default > "$WORK/chaos_reload"
grep -q "reloaded default" "$WORK/chaos_reload" || {
  echo "reload-table did not ack"; cat "$WORK/chaos_reload"; exit 1; }
sleep 2 # more traffic over the swapped-in engine

touch "$WORK/chaos_stop"
wait "$CHAOS_BASIC_PID"
wait "$CHAOS_SECURE_PID"
if [ -s "$WORK/chaos_failed" ]; then
  echo "chaos clients saw failures or oracle mismatches:"
  cat "$WORK/chaos_failed"; exit 1
fi
# The zero-failure gate above is the real assertion; the floors below only
# prove traffic actually flowed. A secure query costs seconds under these
# 512-bit keys, so its floor is low.
[ "$(cat "$WORK/chaos_count_basic")" -ge 3 ] || {
  echo "chaos basic client only completed $(cat "$WORK/chaos_count_basic") \
queries"; exit 1; }
[ "$(cat "$WORK/chaos_count_secure")" -ge 1 ] || {
  echo "chaos secure client completed no queries"; exit 1; }
n_basic=$(cat "$WORK/chaos_count_basic")
n_secure=$(cat "$WORK/chaos_count_secure")
echo "leg 4a OK: $n_basic+$n_secure queries, zero failures across kill+reload"

echo "== SIGSTOP both shard-1 replicas: deadline must fire, not hang =="
kill -STOP "$S1A_PID" "$S1B_PID"
start=$SECONDS
set +e
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1C_PORT" --query "2,0" \
  --k 1 --protocol basic --deadline-ms 2000 \
  > /dev/null 2>"$WORK/chaos_deadline.err"
rc=$?
set -e
elapsed=$((SECONDS - start))
[ "$rc" -eq 4 ] || {
  echo "expected exit 4 (deadline exceeded), got $rc"
  cat "$WORK/chaos_deadline.err"; exit 1; }
[ "$elapsed" -le 10 ] || {
  echo "deadline probe took ${elapsed}s — the deadline did not bound the hang"
  exit 1; }
grep -qi "deadline" "$WORK/chaos_deadline.err"

kill -CONT "$S1A_PID" "$S1B_PID"
for _ in $(seq 200); do
  "$BIN/sknn_admin" --host 127.0.0.1 --port "$C1C_PORT" --json --health \
    > "$WORK/chaos_health.json" 2>/dev/null || true
  read -r healthy total <<< "$(healthy_replicas "$WORK/chaos_health.json")"
  [ "$healthy" -eq 4 ] && [ "$total" -eq 4 ] && break
  sleep 0.1
done
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1C_PORT" --query "2,0" \
  --k 3 --protocol secure > "$WORK/chaos_final" 2>>"$WORK/chaos_clients.log"
tail -n +2 "$WORK/chaos_final" > "$WORK/chaos_got_final"
diff -u "$WORK/chaos_want" "$WORK/chaos_got_final" || {
  echo "MISMATCH: post-SIGCONT query"; exit 1; }
echo "leg 4b OK: deadline fired in ${elapsed}s (exit 4), shard recovered"

term_and_wait "$C1C_PID"
term_and_wait "$S0A_PID" "$S0B_PID" "$S1A_PID" "$S1B_PID"
term_and_wait "$C2C_PID"
echo "leg 4 OK: failover, redial, hot reload, deadlines — all under traffic"

echo "== leg 5: QoS — API keys, quotas, result cache (revision 6) =="
ADMIN_KEY=$("$PY" -c 'import secrets; print(secrets.token_hex(32))')
TRIAL_KEY=$("$PY" -c 'import secrets; print(secrets.token_hex(32))')
key_digest() { # key -> sha256 hex
  printf '%s' "$1" | \
    "$PY" -c 'import hashlib, sys; print(hashlib.sha256(sys.stdin.buffer.read()).hexdigest())'
}
cat > "$WORK/keys.txt" <<EOF
# id:sha256hex:quota:weight — quota 0 = unlimited
admin:$(key_digest "$ADMIN_KEY"):0:4
trial:$(key_digest "$TRIAL_KEY"):2:1
EOF

"$BIN/sknn_c2_server" --secret "$WORK/sk.txt" --port 0 --workers 2 \
  --pool-capacity 256 > "$WORK/c2_qos.log" 2>&1 &
C2Q_PID=$!
C2Q_PORT=$(wait_for_port "$WORK/c2_qos.log")
"$BIN/sknn_c1_server" --public "$WORK/pk.txt" --db "$WORK/db.bin" --port 0 \
  --c2-host 127.0.0.1 --c2-port "$C2Q_PORT" --threads 2 --max-in-flight 8 \
  --api-keys "$WORK/keys.txt" > "$WORK/c1_qos.log" 2>&1 &
C1Q_PID=$!
C1Q_PORT=$(wait_for_port "$WORK/c1_qos.log")

echo "== keyless and wrong-key queries: typed PermissionDenied (exit 5) =="
set +e
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1Q_PORT" --query "1,0" --k 2 \
  > /dev/null 2>"$WORK/qos_nokey.err"
rc=$?
set -e
[ "$rc" -eq 5 ] || {
  echo "keyless query: expected exit 5 (permission denied), got $rc"
  cat "$WORK/qos_nokey.err"; exit 1; }
grep -q "authentication rejected" "$WORK/qos_nokey.err"
set +e
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1Q_PORT" --query "1,0" --k 2 \
  --api-key deadbeef > /dev/null 2>"$WORK/qos_badkey.err"
rc=$?
set -e
[ "$rc" -eq 5 ] || {
  echo "wrong-key query: expected exit 5 (permission denied), got $rc"
  cat "$WORK/qos_badkey.err"; exit 1; }

echo "== cache differential: miss, hit, and --no-cache all match the oracle =="
"$BIN/sknn_plain_knn" --csv "$WORK/table.csv" --query "1,0" --k 2 \
  > "$WORK/qos_want"
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1Q_PORT" --query "1,0" --k 2 \
  --api-key "$ADMIN_KEY" --stats > "$WORK/qos_miss" 2>>"$WORK/clients.log"
grep -q "# cache miss" "$WORK/qos_miss"
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1Q_PORT" --query "1,0" --k 2 \
  --api-key "$ADMIN_KEY" --stats > "$WORK/qos_hit" 2>>"$WORK/clients.log"
# The hit must carry rerandomized ciphertexts, not an empty tail.
grep -Eq "# cache hit  encrypted-results [1-9]" "$WORK/qos_hit"
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1Q_PORT" --query "1,0" --k 2 \
  --api-key "$ADMIN_KEY" --stats --no-cache > "$WORK/qos_bypass" \
  2>>"$WORK/clients.log"
grep -q "# cache miss" "$WORK/qos_bypass" # bypass = fresh protocol run
for f in qos_miss qos_hit qos_bypass; do
  tail -n +2 "$WORK/$f" | grep -v '^#' > "$WORK/got"
  diff -u "$WORK/qos_want" "$WORK/got" || {
    echo "MISMATCH: $f vs plaintext oracle"; exit 1; }
done

echo "== quota: trial key (quota 2) serves twice, then typed ResourceExhausted =="
for q in "0,0" "4,0"; do
  "$BIN/sknn_query" --host 127.0.0.1 --port "$C1Q_PORT" --query "$q" --k 2 \
    --api-key "$TRIAL_KEY" > "$WORK/qos_trial" 2>>"$WORK/clients.log"
  "$BIN/sknn_plain_knn" --csv "$WORK/table.csv" --query "$q" --k 2 \
    > "$WORK/qos_want"
  tail -n +2 "$WORK/qos_trial" > "$WORK/got"
  diff -u "$WORK/qos_want" "$WORK/got" || {
    echo "MISMATCH: trial-key query $q"; exit 1; }
done
set +e
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1Q_PORT" --query "3,0" --k 2 \
  --api-key "$TRIAL_KEY" --retries 0 > /dev/null 2>"$WORK/qos_quota.err"
rc=$?
set -e
[ "$rc" -eq 3 ] || {
  echo "over-quota query: expected exit 3 (resource exhausted), got $rc"
  cat "$WORK/qos_quota.err"; exit 1; }

echo "== per-key and per-table QoS counters over --json --stats =="
"$BIN/sknn_admin" --host 127.0.0.1 --port "$C1Q_PORT" --json --stats \
  > "$WORK/qos_stats.json"
json_assert "$WORK/qos_stats.json" 'd["auth_enabled"] is True'
json_assert "$WORK/qos_stats.json" \
  'sorted(k["id"] for k in d["keys"]) == ["admin", "trial"]'
json_assert "$WORK/qos_stats.json" \
  '{k["id"]: k["completed"] for k in d["keys"]} == {"admin": 3, "trial": 2}'
json_assert "$WORK/qos_stats.json" \
  'next(k for k in d["keys"] if k["id"] == "admin")["quota"] == 0'
json_assert "$WORK/qos_stats.json" \
  'next(k for k in d["keys"] if k["id"] == "trial")["remaining"] == 0'
json_assert "$WORK/qos_stats.json" \
  'next(k for k in d["keys"] if k["id"] == "trial")["quota_rejected"] >= 1'
json_assert "$WORK/qos_stats.json" \
  'd["tables"][0]["cache_hits"] == 1 and d["tables"][0]["cache_misses"] >= 3'
json_assert "$WORK/qos_stats.json" \
  'd["tables"][0]["cache_entries"] >= 1 and d["tables"][0]["cache_bytes"] > 0'

term_and_wait "$C1Q_PID"
term_and_wait "$C2Q_PID"
echo "leg 5 OK: auth gate, quota exhaustion, cache hit/miss/bypass — all typed"
echo "smoke deploy OK: all five legs match the plaintext oracle"
