#!/usr/bin/env bash
# Out-of-process smoke of the four-binary serving deployment
# (docs/DEPLOY.md): keygen -> encrypt -> sknn_c2_server -> sknn_c1_server ->
# concurrent thin clients, every answer diffed against the plaintext oracle.
#
#   scripts/smoke_deploy.sh [build-dir]     # default: build
set -euo pipefail

BUILD_DIR=${1:-build}
BIN=$(cd "$BUILD_DIR" && pwd)
WORK=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046  # word splitting wanted: one pid per argument
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# A distinct-distance table: answers are deterministic for every protocol,
# so the secure results must match the plaintext oracle exactly.
cat > "$WORK/table.csv" <<EOF
0,0
1,0
2,0
3,0
4,0
5,0
EOF
# Queries on or beyond the table edge keep all squared distances distinct.
QUERIES=("0,0" "5,0" "7,1")

echo "== Alice: keygen + encrypt =="
"$BIN/sknn_keygen" --bits 512 --public "$WORK/pk.txt" --secret "$WORK/sk.txt"
"$BIN/sknn_encrypt" --public "$WORK/pk.txt" --csv "$WORK/table.csv" \
  --attr-bits 3 --out "$WORK/db.bin"

wait_for_port() { # logfile -> port printed as "serving on 127.0.0.1:PORT"
  local log=$1 port=""
  for _ in $(seq 100); do
    port=$(sed -n 's/.*serving on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)
    [ -n "$port" ] && { echo "$port"; return 0; }
    sleep 0.1
  done
  echo "timed out waiting for server port in $log" >&2
  return 1
}

echo "== C2: key holder =="
"$BIN/sknn_c2_server" --secret "$WORK/sk.txt" --port 0 --workers 2 \
  --pool-capacity 256 --connections 1 > "$WORK/c2.log" 2>&1 &
C2_PID=$!
C2_PORT=$(wait_for_port "$WORK/c2.log")

echo "== C1: query front end =="
N_QUERIES=$((2 * ${#QUERIES[@]} + 1)) # basic+secure per query, one farthest
"$BIN/sknn_c1_server" --public "$WORK/pk.txt" --db "$WORK/db.bin" --port 0 \
  --c2-host 127.0.0.1 --c2-port "$C2_PORT" --threads 2 --max-in-flight 8 \
  --queries "$N_QUERIES" > "$WORK/c1.log" 2>&1 &
C1_PID=$!
C1_PORT=$(wait_for_port "$WORK/c1.log")

echo "== Bob x $N_QUERIES: concurrent thin clients =="
CLIENT_PIDS=()
for q in "${QUERIES[@]}"; do
  for proto in basic secure; do
    "$BIN/sknn_query" --host 127.0.0.1 --port "$C1_PORT" --query "$q" \
      --k 2 --protocol "$proto" > "$WORK/out_${proto}_${q//,/_}" 2>>"$WORK/clients.log" &
    CLIENT_PIDS+=($!)
  done
done
"$BIN/sknn_query" --host 127.0.0.1 --port "$C1_PORT" --query "0,0" \
  --k 2 --protocol farthest > "$WORK/out_farthest_0_0" 2>>"$WORK/clients.log" &
CLIENT_PIDS+=($!)
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || { echo "a thin client failed:"; cat "$WORK/clients.log"; exit 1; }
done

echo "== diff against the plaintext oracle =="
for q in "${QUERIES[@]}"; do
  "$BIN/sknn_plain_knn" --csv "$WORK/table.csv" --query "$q" --k 2 > "$WORK/want"
  for proto in basic secure; do
    tail -n +2 "$WORK/out_${proto}_${q//,/_}" > "$WORK/got"
    diff -u "$WORK/want" "$WORK/got" || {
      echo "MISMATCH: $proto query=$q"; exit 1; }
  done
done
"$BIN/sknn_plain_knn" --csv "$WORK/table.csv" --query "0,0" --k 2 --farthest \
  > "$WORK/want"
tail -n +2 "$WORK/out_farthest_0_0" > "$WORK/got"
diff -u "$WORK/want" "$WORK/got" || { echo "MISMATCH: farthest query=0,0"; exit 1; }

wait "$C1_PID"
wait "$C2_PID"
echo "smoke deploy OK: $N_QUERIES concurrent queries match the plaintext oracle"
