// Ablation of the design choices DESIGN.md calls out:
//   1. CRT-accelerated decryption vs textbook L-function decryption
//      (C2 decrypts O(n) values per query round);
//   2. SBD's verification round (SVR) on vs off — the cost of converting
//      the probabilistic protocol into an (almost surely) exact one;
//   3. SMIN_n tournament (batched, log-depth) vs the naive sequential
//      linear scan — same SMIN count, very different round-trip structure.
#include "bench/bench_util.h"
#include "net/rpc.h"
#include "proto/c2_service.h"
#include "proto/sbd.h"
#include "proto/smin.h"

namespace sknn {
namespace {

struct Harness {
  explicit Harness(unsigned key_bits) {
    Random rng(key_bits + 1);
    auto keys = GeneratePaillierKeyPair(key_bits, rng).value();
    pk = keys.pk;
    c2 = std::make_unique<C2Service>(std::move(keys.sk));
    auto link = Channel::CreatePair();
    channel = &link.a->channel();
    server = std::make_unique<RpcServer>(
        std::move(link.b),
        [this](const Message& req) { return c2->Handle(req); }, 1);
    client = std::make_unique<RpcClient>(std::move(link.a));
    ctx = std::make_unique<ProtoContext>(&pk, client.get(), nullptr);
  }

  std::vector<Ciphertext> EncryptBits(uint64_t value, unsigned l) {
    Random& rng = Random::ThreadLocal();
    std::vector<Ciphertext> out(l);
    for (unsigned i = 0; i < l; ++i) {
      out[i] = pk.Encrypt(BigInt((value >> (l - 1 - i)) & 1), rng);
    }
    return out;
  }

  PaillierPublicKey pk;
  Channel* channel = nullptr;
  std::unique_ptr<C2Service> c2;
  std::unique_ptr<RpcServer> server;
  std::unique_ptr<RpcClient> client;
  std::unique_ptr<ProtoContext> ctx;
};

void AblateCrtDecryption(Harness& h, unsigned key_bits) {
  Random rng(3);
  const int reps = 200;
  std::vector<Ciphertext> cts;
  for (int i = 0; i < reps; ++i) {
    cts.push_back(h.pk.Encrypt(rng.Below(h.pk.n()), rng));
  }
  PaillierSecretKey& sk = h.c2->secret_key();
  Stopwatch sw;
  sk.set_use_crt(true);
  for (const auto& c : cts) (void)sk.Decrypt(c);
  double crt_s = sw.ElapsedSeconds();
  sw.Reset();
  sk.set_use_crt(false);
  for (const auto& c : cts) (void)sk.Decrypt(c);
  double std_s = sw.ElapsedSeconds();
  sk.set_use_crt(true);
  std::printf("%-34s K=%-5u crt=%8.3f ms/op  textbook=%8.3f ms/op  "
              "speedup=%.2fx\n",
              "1. CRT decryption", key_bits, 1e3 * crt_s / reps,
              1e3 * std_s / reps, std_s / crt_s);
}

void AblateSbdVerification(Harness& h) {
  Random rng(4);
  const unsigned l = 12;
  const int batch = 64;
  std::vector<Ciphertext> zs;
  for (int i = 0; i < batch; ++i) {
    zs.push_back(h.pk.Encrypt(BigInt(static_cast<int64_t>(
                                  rng.UniformUint64(1 << l))),
                              rng));
  }
  SbdOptions with;
  with.l = l;
  with.verify = true;
  SbdOptions without = with;
  without.verify = false;

  Stopwatch sw;
  auto r1 = BitDecomposeBatch(*h.ctx, zs, with);
  double with_s = sw.ElapsedSeconds();
  sw.Reset();
  auto r2 = BitDecomposeBatch(*h.ctx, zs, without);
  double without_s = sw.ElapsedSeconds();
  if (!r1.ok() || !r2.ok()) {
    std::fprintf(stderr, "SBD ablation failed\n");
    std::exit(1);
  }
  std::printf("%-34s l=%-5u verify=%8.2f ms/val  unverified=%8.2f ms/val  "
              "overhead=%.1f%%\n",
              "2. SBD verification round", l, 1e3 * with_s / batch,
              1e3 * without_s / batch, 100.0 * (with_s / without_s - 1.0));
}

void AblateTournamentVsLinear(Harness& h) {
  Random rng(5);
  const unsigned l = 6;
  // The two orderings issue the same n-1 SMINs; the tournament batches a
  // whole round into 2 messages while the scan serializes 2(n-1) round
  // trips. On a zero-latency in-process link both look alike, so measure
  // at 0 and at a LAN-like 2 ms one-way latency.
  for (auto latency : {std::chrono::microseconds(0),
                       std::chrono::microseconds(2000)}) {
    h.channel->set_latency(latency);
    for (std::size_t n : {8u, 32u}) {
      std::vector<std::vector<Ciphertext>> ds;
      for (std::size_t i = 0; i < n; ++i) {
        ds.push_back(h.EncryptBits(rng.UniformUint64(1 << l), l));
      }
      Stopwatch sw;
      auto t = SecureMinN(*h.ctx, ds);
      double tour_s = sw.ElapsedSeconds();
      sw.Reset();
      auto lin = SecureMinNLinear(*h.ctx, ds);
      double lin_s = sw.ElapsedSeconds();
      if (!t.ok() || !lin.ok()) {
        std::fprintf(stderr, "SMIN_n ablation failed\n");
        std::exit(1);
      }
      std::printf("%-34s n=%-3zu latency=%4lldus  tournament=%7.2f s  "
                  "linear-scan=%7.2f s  speedup=%.2fx\n",
                  "3. SMIN_n tournament vs linear", n,
                  static_cast<long long>(latency.count()), tour_s, lin_s,
                  lin_s / tour_s);
    }
  }
  h.channel->set_latency(std::chrono::microseconds(0));
}

}  // namespace
}  // namespace sknn

int main() {
  using namespace sknn;
  std::printf("# Ablation of DESIGN.md design choices (key size 512 unless "
              "noted)\n");
  Harness h512(512);
  Harness h1024(1024);
  AblateCrtDecryption(h512, 512);
  AblateCrtDecryption(h1024, 1024);
  AblateSbdVerification(h512);
  AblateTournamentVsLinear(h512);
  return 0;
}
