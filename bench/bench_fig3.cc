// Figure 3: serial vs parallel SkNN_b, m = 6, k = 5, K = 512 bits.
//
// Paper result (OpenMP on 6 cores): parallel ~6x faster — 215.59 s serial
// vs 40 s parallel at n = 10000; per-record work is independent, so the
// speedup tracks the core count.
// Expected shape here: speedup approaching this host's hardware thread
// count (reported in the header), constant across n.
#include "bench/bench_util.h"

int main() {
  using namespace sknn;
  using namespace sknn::bench;

  const std::size_t kM = 6;
  const unsigned kK = 5;
  const unsigned kL = 12;
  const unsigned kKeyBits = 512;
  std::vector<std::size_t> ns =
      PaperScale() ? std::vector<std::size_t>{2000, 4000, 6000, 8000, 10000}
                   : std::vector<std::size_t>{250, 500, 1000};

  PrintHeader("Figure 3", "SkNN_b serial vs parallel over n; m=6, k=5, K=512",
              "paper: ~6x speedup on 6 cores (215.59 s -> 40 s at n=10000)");
  std::printf("%8s %14s %16s %10s\n", "n", "serial_time_s", "parallel_time_s",
              "speedup");
  for (std::size_t n : ns) {
    EngineSetup serial = MakeEngine(n, kM, kL, kKeyBits, 1, n);
    QueryResponse serial_result = MustQuery(*serial.engine, serial.query, kK,
                                            QueryProtocol::kBasic, "serial");
    EngineSetup parallel =
        MakeEngine(n, kM, kL, kKeyBits, BenchThreads(), n + 1);
    QueryResponse parallel_result = MustQuery(
        *parallel.engine, parallel.query, kK, QueryProtocol::kBasic,
        "parallel");
    std::printf("%8zu %14.2f %16.2f %9.2fx\n", n, serial_result.cloud_seconds,
                parallel_result.cloud_seconds,
                serial_result.cloud_seconds /
                    (parallel_result.cloud_seconds > 0
                         ? parallel_result.cloud_seconds
                         : 1e-9));
    std::fflush(stdout);
  }
  return 0;
}
