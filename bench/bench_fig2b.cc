// Figure 2(b): SkNN_b total time vs n for m in {6, 12, 18}, k = 5,
// K = 1024 bits.
//
// Paper result: same linear shape as Figure 2(a) but ~7x slower — doubling
// the Paillier modulus makes every modexp ~8x more expensive (cubic in
// bit length on N^2-sized operands), slightly amortized by fixed costs.
// Expected shape here: time_per_nm constant, and the per-(n*m) cost
// ratio against Figure 2(a)'s K=512 run in the 6-8x band.
#include "bench/bench_util.h"

int main() {
  using namespace sknn;
  using namespace sknn::bench;

  const unsigned kK = 5;
  const unsigned kL = 12;
  std::vector<std::size_t> ns =
      PaperScale() ? std::vector<std::size_t>{2000, 4000, 6000, 8000, 10000}
                   : std::vector<std::size_t>{100, 200, 400};
  std::vector<std::size_t> ms =
      PaperScale() ? std::vector<std::size_t>{6, 12, 18}
                   : std::vector<std::size_t>{6, 12};

  PrintHeader("Figure 2(b)",
              "SkNN_b time vs n for m in {6,12,18}, k=5, K=1024",
              "paper: ~7x the K=512 cost of Fig 2(a)");
  std::printf("%8s %4s %4s %12s %14s\n", "n", "m", "k", "time_s",
              "time_per_nm_ms");

  // Reference point at K=512 for the ratio column.
  EngineSetup ref = MakeEngine(ns[0], ms[0], kL, 512, 1, 7);
  QueryResponse ref_result = MustQuery(*ref.engine, ref.query, kK,
                                       QueryProtocol::kBasic, "SkNN_b ref");
  double ref_per_nm =
      ref_result.cloud_seconds / static_cast<double>(ns[0] * ms[0]);

  for (std::size_t m : ms) {
    for (std::size_t n : ns) {
      EngineSetup setup = MakeEngine(n, m, kL, 1024, 1, n * 37 + m);
      QueryResponse result = MustQuery(*setup.engine, setup.query, kK,
                                       QueryProtocol::kBasic, "SkNN_b");
      std::printf("%8zu %4zu %4u %12.2f %14.4f\n", n, m, kK,
                  result.cloud_seconds,
                  1e3 * result.cloud_seconds / static_cast<double>(n * m));
      std::fflush(stdout);
    }
  }
  // Explicit K-doubling ratio at the first grid point for the summary line.
  EngineSetup big = MakeEngine(ns[0], ms[0], kL, 1024, 1, 11);
  QueryResponse big_result = MustQuery(*big.engine, big.query, kK,
                                       QueryProtocol::kBasic, "SkNN_b");
  double big_per_nm =
      big_result.cloud_seconds / static_cast<double>(ns[0] * ms[0]);
  std::printf("# measured K-doubling factor: %.1fx (paper: ~7x)\n",
              big_per_nm / ref_per_nm);
  return 0;
}
