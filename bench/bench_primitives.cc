// Microbenchmarks of the cryptosystem and every sub-protocol of Section 3,
// plus the Section 4.4 complexity accounting: the reported op counters let
// the measured costs be checked against the paper's O(.) bounds
// (SM/SBOR constant, SSED O(m), SBD O(l), SMIN O(l), SMIN_n O(l*n)).
//
// With --json, the results (plus the pooled-vs-plain Encrypt speedup) are
// written to the "primitives" section of BENCH_PR2.json — the repo's
// machine-readable perf trajectory — and the PR 8 refill series (randomizer
// refill throughput, fixed-base-vs-mpz_powm sweep, short-vs-full-width
// speedup) to the "refill_throughput" section of BENCH_PR8.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bigint/modexp.h"
#include "crypto/op_counters.h"
#include "net/rpc.h"
#include "proto/c2_service.h"
#include "proto/sbd.h"
#include "proto/sbor.h"
#include "proto/sm.h"
#include "proto/smin.h"
#include "proto/ssed.h"

namespace sknn {
namespace {

// Two-cloud topology shared by all protocol benchmarks of one key size.
struct Harness {
  explicit Harness(unsigned key_bits) {
    Random rng(key_bits);
    auto keys = GeneratePaillierKeyPair(key_bits, rng).value();
    pk = keys.pk;
    c2 = std::make_unique<C2Service>(std::move(keys.sk));
    auto link = Channel::CreatePair();
    server = std::make_unique<RpcServer>(
        std::move(link.b),
        [this](const Message& req) { return c2->Handle(req); }, 1);
    client = std::make_unique<RpcClient>(std::move(link.a));
    ctx = std::make_unique<ProtoContext>(&pk, client.get(), nullptr);
  }

  std::vector<Ciphertext> EncryptBits(uint64_t value, unsigned l) {
    Random& rng = Random::ThreadLocal();
    std::vector<Ciphertext> out(l);
    for (unsigned i = 0; i < l; ++i) {
      out[i] = pk.Encrypt(BigInt((value >> (l - 1 - i)) & 1), rng);
    }
    return out;
  }

  PaillierPublicKey pk;
  std::unique_ptr<C2Service> c2;
  std::unique_ptr<RpcServer> server;
  std::unique_ptr<RpcClient> client;
  std::unique_ptr<ProtoContext> ctx;
};

Harness& SharedHarness(unsigned key_bits) {
  static auto* h512 = new Harness(512);
  static auto* h1024 = new Harness(1024);
  return key_bits == 512 ? *h512 : *h1024;
}

void ReportOps(benchmark::State& state, const OpSnapshot& before) {
  OpSnapshot delta = OpCounters::Snapshot() - before;
  double iters = static_cast<double>(state.iterations());
  state.counters["enc"] = static_cast<double>(delta.encryptions) / iters;
  state.counters["dec"] = static_cast<double>(delta.decryptions) / iters;
  state.counters["exp"] = static_cast<double>(delta.exponentiations) / iters;
}

void BM_PaillierEncrypt(benchmark::State& state) {
  Harness& h = SharedHarness(static_cast<unsigned>(state.range(0)));
  Random rng(7);
  BigInt m = rng.Below(h.pk.n());
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.pk.Encrypt(m, rng));
  }
}
BENCHMARK(BM_PaillierEncrypt)->ArgName("K")->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// The PR 2 hot path: Encrypt backed by a prefilled randomizer pool pays a
// modmul instead of the r^N modexp. Prefilling happens off the clock — this
// measures the *online* cost when precomputation keeps up (in the engine,
// the fill workers run inside C1<->C2 round-trip stalls). The unpooled
// BM_PaillierEncrypt above is the baseline.
void BM_PaillierEncryptPooled(benchmark::State& state) {
  Harness& h = SharedHarness(static_cast<unsigned>(state.range(0)));
  RandomizerPool pool(h.pk.n(), /*capacity=*/4096);
  pool.WaitUntilFull();
  PaillierPublicKey pk = h.pk;
  pk.set_randomizer_pool(&pool);
  Random rng(7);
  BigInt m = rng.Below(pk.n());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pk.Encrypt(m, rng));
  }
  if (pool.misses() > 0) {
    state.SkipWithError("randomizer pool underflowed — not measuring hits");
  }
  state.counters["pool_hits"] = static_cast<double>(pool.hits());
}
BENCHMARK(BM_PaillierEncryptPooled)->ArgName("K")->Arg(512)->Arg(1024)
    ->Iterations(1024)->Unit(benchmark::kMicrosecond);

// Tentpole (PR 8): randomizer REFILL throughput — how fast one worker set
// can mint fresh r^N values for the pool. short:1 is the short-exponent
// fixed-base path (r^N = h_N^s through the precomputed window table,
// docs/CRYPTO.md); short:0 is the full-width reference (rng.UnitModulo ^ N).
// The acceptance gate (ISSUE 8 / CI bench smoke) requires the short path to
// refill >= 3x faster at 1024-bit keys.
void BM_RefillThroughput(benchmark::State& state) {
  Harness& h = SharedHarness(static_cast<unsigned>(state.range(0)));
  RandomizerPoolOptions options;
  options.short_exponents = state.range(1) != 0;
  RandomizerSource source(h.pk.n(), options);
  const std::size_t threads = static_cast<std::size_t>(state.range(2));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  constexpr std::size_t kBatch = 16;
  for (auto _ : state) {
    if (pool != nullptr) {
      pool->ParallelFor(kBatch, [&source](std::size_t) {
        benchmark::DoNotOptimize(source.Next(Random::ThreadLocal()));
      });
    } else {
      for (std::size_t i = 0; i < kBatch; ++i) {
        benchmark::DoNotOptimize(source.Next(Random::ThreadLocal()));
      }
    }
  }
  state.counters["enc_per_s"] = benchmark::Counter(
      static_cast<double>(kBatch),
      benchmark::Counter::kIsIterationInvariantRate);
}
// UseRealTime: at T > 1 all the minting happens on pool workers, so the
// default CPU-time clock (main thread only, mostly blocked) would both
// mis-schedule iterations and inflate the rate counter.
BENCHMARK(BM_RefillThroughput)
    ->ArgNames({"K", "short", "T"})
    ->ArgsProduct({{512, 1024}, {0, 1}, {1, 2, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// The fixed-base window exponentiator against the general mpz_powm it
// replaces, per window size: table-driven PowMod of a short exponent vs
// BigInt::PowMod of the same exponent from the same base. The window-size
// sweep is what RecommendedWindowBits was tuned from.
void BM_FixedBasePowMod(benchmark::State& state) {
  Harness& h = SharedHarness(static_cast<unsigned>(state.range(0)));
  const unsigned w = static_cast<unsigned>(state.range(1));
  const BigInt n = h.pk.n();
  const BigInt n2 = n * n;
  Random rng(13);
  const unsigned e_bits =
      std::max(256u, static_cast<unsigned>(n.BitLength()) / 4);
  const BigInt base = rng.UnitModulo(n).PowMod(n, n2);
  const BigInt bound = BigInt::PowerOfTwo(e_bits);
  FixedBaseWindow window(base, n2, e_bits, w);
  BigInt e = rng.Below(bound);
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.PowMod(e));
  }
  state.counters["table_entries"] = static_cast<double>(window.table_size());
}
BENCHMARK(BM_FixedBasePowMod)
    ->ArgNames({"K", "w"})
    ->ArgsProduct({{512, 1024}, {2, 3, 4, 5, 6}})
    ->Unit(benchmark::kMicrosecond);

// Baseline for BM_FixedBasePowMod: the same short exponent through the
// general square-and-multiply path (no precomputation).
void BM_FixedBaseBaselinePowMod(benchmark::State& state) {
  Harness& h = SharedHarness(static_cast<unsigned>(state.range(0)));
  const BigInt n = h.pk.n();
  const BigInt n2 = n * n;
  Random rng(13);
  const unsigned e_bits =
      std::max(256u, static_cast<unsigned>(n.BitLength()) / 4);
  const BigInt base = rng.UnitModulo(n).PowMod(n, n2);
  BigInt e = rng.Below(BigInt::PowerOfTwo(e_bits));
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.PowMod(e, n2));
  }
}
BENCHMARK(BM_FixedBaseBaselinePowMod)
    ->ArgName("K")->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_PaillierDecrypt(benchmark::State& state) {
  Harness& h = SharedHarness(static_cast<unsigned>(state.range(0)));
  Random rng(8);
  Ciphertext c = h.pk.Encrypt(rng.Below(h.pk.n()), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.c2->secret_key().Decrypt(c));
  }
}
BENCHMARK(BM_PaillierDecrypt)->ArgName("K")->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_SecureMultiply(benchmark::State& state) {
  Harness& h = SharedHarness(static_cast<unsigned>(state.range(0)));
  Random rng(9);
  Ciphertext a = h.pk.Encrypt(BigInt(123), rng);
  Ciphertext b = h.pk.Encrypt(BigInt(456), rng);
  OpSnapshot before = OpCounters::Snapshot();
  for (auto _ : state) {
    auto r = SecureMultiply(*h.ctx, a, b);
    if (!r.ok()) state.SkipWithError("SM failed");
  }
  ReportOps(state, before);
  state.SetLabel("paper 4.4: O(1) enc+exp per SM");
}
BENCHMARK(BM_SecureMultiply)->ArgName("K")->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_Ssed(benchmark::State& state) {
  Harness& h = SharedHarness(512);
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Random rng(10);
  std::vector<Ciphertext> x, y;
  for (std::size_t j = 0; j < m; ++j) {
    x.push_back(h.pk.Encrypt(BigInt(static_cast<int64_t>(j)), rng));
    y.push_back(h.pk.Encrypt(BigInt(static_cast<int64_t>(2 * j)), rng));
  }
  OpSnapshot before = OpCounters::Snapshot();
  for (auto _ : state) {
    auto r = SecureSquaredDistance(*h.ctx, x, y);
    if (!r.ok()) state.SkipWithError("SSED failed");
  }
  ReportOps(state, before);
  state.SetLabel("paper 4.4: O(m) enc+exp per SSED");
}
BENCHMARK(BM_Ssed)->ArgName("m")->Arg(6)->Arg(12)->Arg(18)
    ->Unit(benchmark::kMillisecond);

void BM_Sbd(benchmark::State& state) {
  Harness& h = SharedHarness(512);
  const unsigned l = static_cast<unsigned>(state.range(0));
  Random rng(11);
  Ciphertext z = h.pk.Encrypt(BigInt(37), rng);
  SbdOptions opts;
  opts.l = l;
  OpSnapshot before = OpCounters::Snapshot();
  for (auto _ : state) {
    auto r = BitDecompose(*h.ctx, z, opts);
    if (!r.ok()) state.SkipWithError("SBD failed");
  }
  ReportOps(state, before);
  state.SetLabel("paper 4.4: O(l) enc+exp per SBD");
}
BENCHMARK(BM_Sbd)->ArgName("l")->Arg(6)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_Smin(benchmark::State& state) {
  Harness& h = SharedHarness(512);
  const unsigned l = static_cast<unsigned>(state.range(0));
  auto u = h.EncryptBits(21 % (1u << l), l);
  auto v = h.EncryptBits(13 % (1u << l), l);
  OpSnapshot before = OpCounters::Snapshot();
  for (auto _ : state) {
    auto r = SecureMin(*h.ctx, u, v);
    if (!r.ok()) state.SkipWithError("SMIN failed");
  }
  ReportOps(state, before);
  state.SetLabel("paper 4.4: O(l) enc+exp per SMIN");
}
BENCHMARK(BM_Smin)->ArgName("l")->Arg(6)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_SminN(benchmark::State& state) {
  Harness& h = SharedHarness(512);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const unsigned l = 6;
  std::vector<std::vector<Ciphertext>> ds;
  for (std::size_t i = 0; i < n; ++i) {
    ds.push_back(h.EncryptBits(i % (1u << l), l));
  }
  OpSnapshot before = OpCounters::Snapshot();
  for (auto _ : state) {
    auto r = SecureMinN(*h.ctx, ds);
    if (!r.ok()) state.SkipWithError("SMIN_n failed");
  }
  ReportOps(state, before);
  state.SetLabel("paper 4.4: O(l*n) enc+exp per SMIN_n (n-1 SMINs)");
}
BENCHMARK(BM_SminN)->ArgName("n")->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_Sbor(benchmark::State& state) {
  Harness& h = SharedHarness(512);
  Random rng(12);
  Ciphertext a = h.pk.Encrypt(BigInt(1), rng);
  Ciphertext b = h.pk.Encrypt(BigInt(0), rng);
  OpSnapshot before = OpCounters::Snapshot();
  for (auto _ : state) {
    auto r = SecureBitOr(*h.ctx, a, b);
    if (!r.ok()) state.SkipWithError("SBOR failed");
  }
  ReportOps(state, before);
  state.SetLabel("paper 4.4: O(1) — one SM plus homomorphic ops");
}
BENCHMARK(BM_Sbor)->Unit(benchmark::kMillisecond);

}  // namespace

// Captures every finished run for the --json emitter while still printing
// the normal console table.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double real_time = 0;  // per iteration, in `unit`
    std::string unit;
    int64_t iterations = 0;
    std::map<std::string, double> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Entry e;
      e.name = run.benchmark_name();
      e.real_time = run.GetAdjustedRealTime();
      e.unit = benchmark::GetTimeUnitString(run.time_unit);
      e.iterations = run.iterations;
      for (const auto& [name, counter] : run.counters) {
        e.counters[name] = counter.value;
      }
      entries.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Entry> entries;
};

std::string PrimitivesJson(const std::vector<JsonCaptureReporter::Entry>& es) {
  auto real_time_of = [&](const std::string& name) -> double {
    for (const auto& e : es) {
      if (e.name == name) return e.real_time;
    }
    return 0;
  };
  std::ostringstream os;
  os << "{\n    \"benchmarks\": [";
  bool first = true;
  for (const auto& e : es) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "      {\"name\": \"" << e.name << "\", \"real_time\": "
       << e.real_time << ", \"unit\": \"" << e.unit
       << "\", \"iterations\": " << e.iterations;
    for (const auto& [name, value] : e.counters) {
      os << ", \"" << name << "\": " << value;
    }
    os << "}";
  }
  os << "\n    ]";
  // The PR 2 acceptance number: pooled Encrypt throughput vs the plain
  // modexp path, per key size (0 when either side did not run).
  for (unsigned k : {512u, 1024u}) {
    double plain =
        real_time_of("BM_PaillierEncrypt/K:" + std::to_string(k));
    double pooled = real_time_of("BM_PaillierEncryptPooled/K:" +
                                 std::to_string(k) + "/iterations:1024");
    os << ",\n    \"encrypt_pooled_speedup_" << k
       << "\": " << (pooled > 0 ? plain / pooled : 0);
  }
  os << "\n  }";
  return os.str();
}

// The PR 8 acceptance series: refill throughput per key size / strategy /
// thread count, the fixed-base window sweep, and the headline
// refill_speedup_K ratios (short-exponent vs full-width minting rate,
// single-threaded — the >= 3x gate of ISSUE 8 and the CI bench smoke).
std::string RefillJson(const std::vector<JsonCaptureReporter::Entry>& es) {
  auto counter_of = [&](const std::string& name,
                        const std::string& counter) -> double {
    for (const auto& e : es) {
      if (e.name == name) {
        auto it = e.counters.find(counter);
        if (it != e.counters.end()) return it->second;
      }
    }
    return 0;
  };
  std::ostringstream os;
  os << "{\n    \"benchmarks\": [";
  bool first = true;
  for (const auto& e : es) {
    if (e.name.rfind("BM_Refill", 0) != 0 &&
        e.name.rfind("BM_FixedBase", 0) != 0) {
      continue;
    }
    os << (first ? "\n" : ",\n");
    first = false;
    os << "      {\"name\": \"" << e.name << "\", \"real_time\": "
       << e.real_time << ", \"unit\": \"" << e.unit
       << "\", \"iterations\": " << e.iterations;
    for (const auto& [name, value] : e.counters) {
      os << ", \"" << name << "\": " << value;
    }
    os << "}";
  }
  os << "\n    ]";
  for (unsigned k : {512u, 1024u}) {
    const std::string prefix =
        "BM_RefillThroughput/K:" + std::to_string(k);
    double full = counter_of(prefix + "/short:0/T:1/real_time", "enc_per_s");
    double fast = counter_of(prefix + "/short:1/T:1/real_time", "enc_per_s");
    os << ",\n    \"refill_encrypts_per_s_" << k << "\": " << fast;
    os << ",\n    \"refill_speedup_" << k
       << "\": " << (full > 0 ? fast / full : 0);
  }
  os << "\n  }";
  return os.str();
}

}  // namespace sknn

int main(int argc, char** argv) {
  std::string json_path;
  const bool emit_json = sknn::bench::ConsumeJsonFlag(&argc, argv, &json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  sknn::JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (emit_json) {
    sknn::bench::MergeJsonSection(
        sknn::bench::BenchJsonPath(json_path, "BENCH_PR2.json"), "primitives",
        sknn::PrimitivesJson(reporter.entries));
    sknn::bench::MergeJsonSection(
        sknn::bench::BenchJsonPath(json_path, "BENCH_PR8.json"),
        "refill_throughput", sknn::RefillJson(reporter.entries));
  }
  return 0;
}
