// bench_sharding — what sharding the record fan-out buys one query (PR 4),
// and what replica failover costs it (ISSUE 7).
//
// Series 1 (sharding): one in-process engine per shard count over the SAME
// table and key pair, the same SkNN_m query timed at s = 1 / 2 / 4 shards
// (s = 1 is the unsharded reference path). The per-shard stats of the
// response are reported too, so the JSON shows where the time went: shard
// stages (concurrent, each over n/s records — SMIN_n tournaments of depth
// log2(n/s)) versus the coordinator's s*k-candidate merge. On a multicore
// host the shard stages overlap; the merge is the serial tail Amdahl
// charges for it.
//
// Series 2 (failover): a replicated remote topology — 2 shards, 2 TCP
// worker replicas for shard 0 — timed in four states: healthy steady
// state; the first query after the preferred replica is killed (pays one
// transport-failure detection + in-query retry); the query after that
// (preferred has rotated — steady state again); and a replica that HANGS
// instead of dying, where detection costs the per-attempt share of the
// query deadline rather than a fast connection reset. The failover column
// counts the in-query retries the response reported.
//
// Series 3 (clustered, PR 9): what the k-means index buys one query — the
// exact scan versus IndexMode::kClustered at probe = 1 / 2 / 4 / all over a
// 16-cluster table, at n = 1000 and n = 10000. The figure of merit is the
// per-query Paillier encryption count (the op the candidate set size
// drives) and recall@k against the plaintext oracle; probe = all must match
// the exact scan's answer (the engine falls through to the exact path).
//
//   bench_sharding [--json [path]] [--only <series>]
//                                      # sharding  -> BENCH_PR4.json
//                                      # failover  -> BENCH_PR7.json
//                                      # clustered -> BENCH_PR9.json
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/plaintext_knn.h"
#include "bench/bench_util.h"
#include "core/clustering.h"
#include "core/data_owner.h"
#include "core/sharding.h"
#include "net/shard_wire.h"
#include "net/socket.h"
#include "proto/c2_service.h"
#include "serve/shard_worker.h"

namespace sknn {
namespace bench {
namespace {

struct Point {
  std::size_t shards = 0;
  double seconds = 0;
  double merge_seconds = 0;
  double shard_stage_seconds = 0;  // max over shards (they overlap)
};

/// Consumes "--only <series>" / "--only=<series>" from the args; returns
/// the series name ("sharding" / "failover" / "clustered") or "" when the
/// flag is absent (run everything). CI runs one series at a time so the
/// smoke stays fast.
std::string ConsumeOnlyFlag(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    int remove = 0;
    std::string value;
    if (std::strncmp(argv[i], "--only=", 7) == 0) {
      value = argv[i] + 7;
      remove = 1;
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < *argc) {
      value = argv[i + 1];
      remove = 2;
    }
    if (remove == 0) continue;
    for (int j = i; j + remove < *argc; ++j) argv[j] = argv[j + remove];
    *argc -= remove;
    return value;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Failover series machinery: a C2 key holder accepting any number of TCP
// connections, real ShardWorkers behind loopback RpcServers (killable), and
// one replica that hangs on the query leg instead of dying — the same rig
// the robustness tests use, sized for timing.

class FailoverC2 {
 public:
  explicit FailoverC2(const DataOwner& alice)
      : c2_(PaillierSecretKey(alice.secret_key_for_c2())) {
    c2_.EnableRandomizerPool(/*capacity=*/64);
    auto listener = TcpListener::Bind(0);
    if (!listener.ok()) Die("C2 listener", listener.status());
    listener_.emplace(std::move(listener).value());
    accept_thread_ = std::thread([this] {
      for (;;) {
        auto endpoint = listener_->Accept();
        if (!endpoint.ok()) return;  // closed
        MutexLock lock(&mutex_);
        sessions_.push_back(std::make_unique<RpcServer>(
            std::move(endpoint).value(),
            [this](const Message& req) { return c2_.Handle(req); },
            /*worker_threads=*/2));
      }
    });
  }

  ~FailoverC2() {
    listener_->Close();
    if (auto kick = ConnectTcp("127.0.0.1", listener_->port()); kick.ok()) {
      (*kick)->Close();
    }
    accept_thread_.join();
    MutexLock lock(&mutex_);
    for (auto& session : sessions_) session->Shutdown();
  }

  std::unique_ptr<Endpoint> Connect() {
    auto link = ConnectTcp("127.0.0.1", listener_->port());
    if (!link.ok()) Die("C2 connect", link.status());
    return std::move(link).value();
  }

 private:
  static void Die(const char* what, const Status& status) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }

  C2Service c2_;
  std::optional<TcpListener> listener_;
  std::thread accept_thread_;
  Mutex mutex_;
  std::vector<std::unique_ptr<RpcServer>> sessions_ GUARDED_BY(mutex_);
};

// One shard worker served over a loopback TCP link, killable mid-run.
class FailoverWorker {
 public:
  FailoverWorker(const DataOwner& alice, const EncryptedDatabase& db,
                 const ShardManifest& manifest, std::size_t shard,
                 FailoverC2* c2) {
    ShardWorker::Options options;
    options.threads = 2;
    options.randomizer_pool_capacity = 64;
    auto worker = ShardWorker::Create(alice.public_key(), db, manifest, shard,
                                      c2->Connect(), options);
    if (!worker.ok()) {
      std::fprintf(stderr, "worker setup failed: %s\n",
                   worker.status().ToString().c_str());
      std::exit(1);
    }
    worker_ = std::move(worker).value();
    Serve([this](const Message& req) { return worker_->Handle(req); });
  }

  /// A replica that answers the construction-time ping with `geometry` but
  /// parks every query leg until destruction — alive on the socket, silent
  /// on the work; what a SIGSTOPped worker looks like to the coordinator.
  explicit FailoverWorker(const ShardGeometry& geometry) {
    Serve([this, geometry](const Message& req) -> Result<Message> {
      if (req.type == ShardOpCode(ShardOp::kShardPing)) {
        return EncodeShardGeometry(geometry);
      }
      hold_.get_future().wait();
      return Status::Unavailable("hung replica released");
    });
  }

  ~FailoverWorker() {
    server_->Shutdown();
    if (!released_.exchange(true)) hold_.set_value();
  }

  std::unique_ptr<Endpoint> TakeLink() { return std::move(link_).value(); }
  const ShardGeometry& geometry() const { return worker_->geometry(); }
  /// The "kill -9": slams the worker's link shut.
  void Kill() { server_->Shutdown(); }

 private:
  void Serve(RpcServer::Handler handler) {
    auto listener = TcpListener::Bind(0);
    if (!listener.ok()) {
      std::fprintf(stderr, "worker listener failed: %s\n",
                   listener.status().ToString().c_str());
      std::exit(1);
    }
    std::thread accepter([&] {
      auto accepted = listener->Accept();
      if (accepted.ok()) {
        server_ = std::make_unique<RpcServer>(std::move(accepted).value(),
                                              std::move(handler),
                                              /*worker_threads=*/2);
      }
    });
    link_ = ConnectTcp("127.0.0.1", listener->port());
    accepter.join();
    if (!link_.ok()) {
      std::fprintf(stderr, "worker connect failed: %s\n",
                   link_.status().ToString().c_str());
      std::exit(1);
    }
  }

  std::unique_ptr<ShardWorker> worker_;  // null for the hung replica
  std::unique_ptr<RpcServer> server_;
  Result<std::unique_ptr<SocketEndpoint>> link_ =
      Status::Internal("not connected");
  std::promise<void> hold_;
  std::atomic<bool> released_{false};
};

struct FailoverPoint {
  std::string scenario;
  double seconds = 0;
  uint64_t failovers = 0;
};

int Main(int argc, char** argv) {
  std::string json_path;
  bool want_json = ConsumeJsonFlag(&argc, argv, &json_path);
  const std::string only = ConsumeOnlyFlag(&argc, argv);
  const bool run_sharding = only.empty() || only == "sharding";
  const bool run_failover = only.empty() || only == "failover";
  const bool run_clustered = only.empty() || only == "clustered";

  const std::size_t n = PaperScale() ? 64 : 16;
  const std::size_t m = 2;
  const unsigned l = 8;
  const unsigned key_bits = PaperScale() ? 512 : 256;
  const unsigned k = 2;
  const std::size_t threads = BenchThreads();

  if (run_sharding) {
  PrintHeader("sharding", "per-query wall time vs shard count",
              "SkNN_m k=2; s=1 is the unsharded engine");
  std::printf("%8s %12s %12s %14s %10s\n", "shards", "seconds", "merge_s",
              "shard_stage_s", "speedup");
  std::vector<Point> points;
  double base_seconds = 0;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    EngineSetup setup = MakeEngine(
        n, m, l, key_bits, threads, /*seed=*/4242,
        std::chrono::microseconds{0},
        [shards](SknnEngine::Options& opts) { opts.shards = shards; });
    // Warm the randomizer pools out of the measurement.
    (void)MustQuery(*setup.engine, setup.query, k, QueryProtocol::kSecure,
                    "warmup query");
    Stopwatch watch;
    QueryResponse response = MustQuery(*setup.engine, setup.query, k,
                                       QueryProtocol::kSecure, "timed query");
    Point point;
    point.shards = shards;
    point.seconds = watch.ElapsedSeconds();
    point.merge_seconds = response.merge_seconds;
    for (const auto& shard : response.shards) {
      point.shard_stage_seconds =
          std::max(point.shard_stage_seconds, shard.seconds);
    }
    if (shards == 1) base_seconds = point.seconds;
    std::printf("%8zu %12.4f %12.4f %14.4f %9.2fx\n", point.shards,
                point.seconds, point.merge_seconds, point.shard_stage_seconds,
                base_seconds / point.seconds);
    points.push_back(point);
  }

  if (want_json) {
    std::ostringstream json;
    json << "{\"n\": " << n << ", \"k\": " << k
         << ", \"threads\": " << threads << ", \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i > 0) json << ", ";
      json << "{\"shards\": " << points[i].shards
           << ", \"seconds\": " << points[i].seconds
           << ", \"merge_seconds\": " << points[i].merge_seconds
           << ", \"shard_stage_seconds\": " << points[i].shard_stage_seconds
           << "}";
    }
    json << "]}";
    MergeJsonSection(BenchJsonPath(json_path, "BENCH_PR4.json"), "sharding",
                     json.str());
  }
  }  // run_sharding

  // -------------------------------------------------------------------------
  // Series 2: replica failover. 2 shards behind real TCP workers, shard 0
  // replicated twice; time the query through the failure modes.

  if (run_failover) {
  PrintHeader("failover", "per-query wall time across replica failure modes",
              "SkNN_m k=2; 2 shards, shard 0 twice-replicated over TCP");
  const uint32_t deadline_ms = PaperScale() ? 20000 : 4000;
  const int64_t max_value = MaxValueForDistanceBits(m, l);
  const PlainTable table = GenerateUniformTable(n, m, max_value, 4242);
  const PlainRecord fo_query = GenerateUniformQuery(m, max_value, 4243);
  auto alice = DataOwner::Create(key_bits);
  if (!alice.ok()) {
    std::fprintf(stderr, "keygen failed: %s\n",
                 alice.status().ToString().c_str());
    return 1;
  }
  auto db = alice->EncryptDatabase(table, BitsForMaxValue(max_value));
  if (!db.ok()) {
    std::fprintf(stderr, "encrypt failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  auto manifest = MakeShardManifest(n, 2, ShardScheme::kContiguous);
  if (!manifest.ok()) {
    std::fprintf(stderr, "manifest failed: %s\n",
                 manifest.status().ToString().c_str());
    return 1;
  }

  auto make_engine = [&](std::vector<std::unique_ptr<Endpoint>> links,
                         FailoverC2& c2) {
    SknnEngine::Options opts;
    opts.c1_threads = threads;
    opts.c2_threads = threads;
    auto engine = SknnEngine::CreateWithShardWorkers(
        alice->public_key(), std::move(links), c2.Connect(), opts);
    if (!engine.ok()) {
      std::fprintf(stderr, "remote engine failed: %s\n",
                   engine.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(engine).value();
  };
  auto timed = [&](SknnEngine& engine, uint32_t deadline,
                   const char* scenario) {
    QueryRequest request;
    request.record = fo_query;
    request.k = k;
    request.protocol = QueryProtocol::kSecure;
    request.deadline_ms = deadline;
    Stopwatch watch;
    auto response = engine.Query(request);
    if (!response.ok()) {
      std::fprintf(stderr, "%s query failed: %s\n", scenario,
                   response.status().ToString().c_str());
      std::exit(1);
    }
    FailoverPoint point;
    point.scenario = scenario;
    point.seconds = watch.ElapsedSeconds();
    for (const auto& shard : response->shards) {
      point.failovers += shard.failovers;
    }
    return point;
  };

  std::vector<FailoverPoint> fo_points;
  std::printf("%20s %12s %10s\n", "scenario", "seconds", "failovers");
  {
    // Healthy -> kill the preferred replica -> recovered, one rig: the
    // kill detection is a fast connection reset, the retry runs the stage
    // on the sibling, and the rotated preference makes the NEXT query free.
    FailoverC2 c2(*alice);
    FailoverWorker shard0_a(*alice, *db, *manifest, 0, &c2);
    FailoverWorker shard0_b(*alice, *db, *manifest, 0, &c2);
    FailoverWorker shard1(*alice, *db, *manifest, 1, &c2);
    std::vector<std::unique_ptr<Endpoint>> links;
    links.push_back(shard0_a.TakeLink());
    links.push_back(shard0_b.TakeLink());
    links.push_back(shard1.TakeLink());
    auto engine = make_engine(std::move(links), c2);
    (void)timed(*engine, 0, "warmup");
    fo_points.push_back(timed(*engine, 0, "healthy"));
    shard0_a.Kill();  // the preferred replica — every query so far used it
    fo_points.push_back(timed(*engine, 0, "kill_failover"));
    fo_points.push_back(timed(*engine, 0, "recovered"));
    for (auto i = fo_points.size() - 3; i < fo_points.size(); ++i) {
      std::printf("%20s %12.4f %10llu\n", fo_points[i].scenario.c_str(),
                  fo_points[i].seconds,
                  static_cast<unsigned long long>(fo_points[i].failovers));
    }
  }
  {
    // A replica that hangs instead of dying: detection costs the hung
    // attempt's share of the deadline (deadline/2 with two replicas), not
    // a connection reset. Unwarmed on purpose — the first query is the one
    // that meets the hang — so the number also carries pool cold-start,
    // which the deadline share dominates.
    FailoverC2 c2(*alice);
    FailoverWorker shard0_real(*alice, *db, *manifest, 0, &c2);
    FailoverWorker shard0_hung(shard0_real.geometry());
    FailoverWorker shard1(*alice, *db, *manifest, 1, &c2);
    std::vector<std::unique_ptr<Endpoint>> links;
    links.push_back(shard0_hung.TakeLink());  // replica 0: preferred, silent
    links.push_back(shard0_real.TakeLink());
    links.push_back(shard1.TakeLink());
    auto engine = make_engine(std::move(links), c2);
    fo_points.push_back(timed(*engine, deadline_ms, "hang_failover"));
    std::printf("%20s %12.4f %10llu\n", fo_points.back().scenario.c_str(),
                fo_points.back().seconds,
                static_cast<unsigned long long>(fo_points.back().failovers));
  }

  if (want_json) {
    std::ostringstream json;
    json << "{\"n\": " << n << ", \"k\": " << k << ", \"shards\": 2"
         << ", \"shard0_replicas\": 2, \"deadline_ms\": " << deadline_ms
         << ", \"points\": [";
    for (std::size_t i = 0; i < fo_points.size(); ++i) {
      if (i > 0) json << ", ";
      json << "{\"scenario\": \"" << fo_points[i].scenario
           << "\", \"seconds\": " << fo_points[i].seconds
           << ", \"failovers\": " << fo_points[i].failovers << "}";
    }
    json << "]}";
    MergeJsonSection(BenchJsonPath(json_path, "BENCH_PR7.json"), "failover",
                     json.str());
  }
  }  // run_failover

  // -------------------------------------------------------------------------
  // Series 3 (PR 9): the clustered index versus the exact scan. The exact
  // SkNN_b pass touches all n records; clustered mode pays one 16-centroid
  // scoring round and then only the probed clusters' records, so the
  // per-query encryption count — the op the candidate set drives — should
  // fall roughly n / candidates-fold. Recall@k is measured against the
  // plaintext oracle; probe = all must return the exact answer.

  if (run_clustered) {
  PrintHeader("clustered",
              "per-query encryption ops and recall vs probe_clusters",
              "SkNN_b k=4; 16-cluster k-means index, exact scan as baseline");
  const std::size_t cm = 2;
  const unsigned cl = 16;  // distance bits; domain [0, 181]
  const int64_t cmax = MaxValueForDistanceBits(cm, cl);
  const uint32_t num_clusters = 16;
  const unsigned ck = 4;
  const std::size_t num_queries = 4;

  auto calice = DataOwner::Create(key_bits);
  if (!calice.ok()) {
    std::fprintf(stderr, "keygen failed: %s\n",
                 calice.status().ToString().c_str());
    return 1;
  }
  auto die = [](const char* what, const Status& status) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  };

  struct ClusteredPoint {
    uint32_t probe = 0;
    double seconds = 0;       // avg per query
    double encryptions = 0;   // avg per query, both clouds
    double ops_reduction = 0; // exact encryptions / clustered encryptions
    double recall = 0;        // avg recall@k vs the plaintext oracle
  };
  struct ClusteredSeries {
    std::size_t n = 0;
    double exact_seconds = 0;
    double exact_encryptions = 0;
    std::vector<ClusteredPoint> points;
  };
  // recall@k with multiset semantics (clustered tables repeat rows).
  auto recall_at_k = [](const PlainTable& got, const PlainTable& want) {
    PlainTable pool = want;
    std::size_t hits = 0;
    for (const PlainRecord& r : got) {
      auto it = std::find(pool.begin(), pool.end(), r);
      if (it != pool.end()) {
        pool.erase(it);
        ++hits;
      }
    }
    return want.empty() ? 1.0 : static_cast<double>(hits) / want.size();
  };

  std::vector<ClusteredSeries> cluster_series;
  std::printf("%8s %8s %12s %14s %12s %8s\n", "n", "probe", "seconds",
              "encryptions", "ops_reduct", "recall");
  for (std::size_t cn : {std::size_t{1000}, std::size_t{10000}}) {
    PlainTable table = GenerateClusteredTable(
        cn, cm, cmax, {num_clusters, /*spread=*/6}, /*seed=*/9000 + cn);
    auto manifest_built = BuildClusterManifest(table, num_clusters,
                                               /*seed=*/9,
                                               calice->public_key());
    if (!manifest_built.ok()) die("cluster manifest", manifest_built.status());
    auto manifest = std::make_shared<const ClusterManifest>(
        std::move(manifest_built).value());

    SknnEngine::Options copts;
    copts.c1_threads = threads;
    copts.c2_threads = threads;
    copts.clusters = manifest;
    auto cdb = calice->EncryptDatabase(table, BitsForMaxValue(cmax));
    if (!cdb.ok()) die("encrypt", cdb.status());
    auto cengine = SknnEngine::CreateFromParts(
        calice->public_key(),
        PaillierSecretKey(calice->secret_key_for_c2()),
        std::move(cdb).value(), copts);
    if (!cengine.ok()) die("clustered engine", cengine.status());

    // Queries are table rows: their neighborhood concentrates in their own
    // cluster, which is the regime a clustered index is built for.
    std::vector<PlainRecord> queries;
    std::vector<PlainTable> oracle;
    for (std::size_t q = 0; q < num_queries; ++q) {
      const PlainRecord& record = table[(q * cn) / num_queries];
      queries.push_back(record);
      oracle.push_back(PlainKnn(table, record, ck));
    }

    ClusteredSeries series;
    series.n = cn;
    // Exact baseline: same engine, IndexMode::kExact (pool-warming query
    // first so the measurement is steady-state like the probes below).
    (void)MustQuery(**cengine, queries[0], ck, QueryProtocol::kBasic,
                    "clustered warmup");
    for (std::size_t q = 0; q < num_queries; ++q) {
      Stopwatch watch;
      QueryResponse response = MustQuery(**cengine, queries[q], ck,
                                         QueryProtocol::kBasic, "exact query");
      series.exact_seconds += watch.ElapsedSeconds() / num_queries;
      series.exact_encryptions +=
          static_cast<double>(response.ops.encryptions) / num_queries;
    }
    std::printf("%8zu %8s %12.4f %14.1f %12s %8s\n", cn, "exact",
                series.exact_seconds, series.exact_encryptions, "1.00x", "-");

    for (uint32_t probe : {1u, 2u, 4u, num_clusters}) {
      ClusteredPoint point;
      point.probe = probe;
      for (std::size_t q = 0; q < num_queries; ++q) {
        QueryRequest request;
        request.record = queries[q];
        request.k = ck;
        request.protocol = QueryProtocol::kBasic;
        request.index_mode = IndexMode::kClustered;
        request.probe_clusters = probe;
        Stopwatch watch;
        auto response = (*cengine)->Query(request);
        if (!response.ok()) die("clustered query", response.status());
        point.seconds += watch.ElapsedSeconds() / num_queries;
        point.encryptions +=
            static_cast<double>(response->ops.encryptions) / num_queries;
        point.recall += recall_at_k(response->records, oracle[q]) /
                        static_cast<double>(num_queries);
      }
      point.ops_reduction = series.exact_encryptions / point.encryptions;
      std::printf("%8zu %8u %12.4f %14.1f %11.2fx %8.3f\n", cn, probe,
                  point.seconds, point.encryptions, point.ops_reduction,
                  point.recall);
      series.points.push_back(point);
    }
    cluster_series.push_back(std::move(series));
  }

  if (want_json) {
    std::ostringstream json;
    json << "{\"clusters\": " << num_clusters << ", \"k\": " << ck
         << ", \"queries\": " << num_queries << ", \"m\": " << cm
         << ", \"key_bits\": " << key_bits << ", \"tables\": [";
    for (std::size_t t = 0; t < cluster_series.size(); ++t) {
      const ClusteredSeries& series = cluster_series[t];
      if (t > 0) json << ", ";
      json << "{\"n\": " << series.n
           << ", \"exact\": {\"seconds\": " << series.exact_seconds
           << ", \"encryptions\": " << series.exact_encryptions
           << "}, \"points\": [";
      for (std::size_t i = 0; i < series.points.size(); ++i) {
        const ClusteredPoint& point = series.points[i];
        if (i > 0) json << ", ";
        json << "{\"probe\": " << point.probe
             << ", \"seconds\": " << point.seconds
             << ", \"encryptions\": " << point.encryptions
             << ", \"ops_reduction\": " << point.ops_reduction
             << ", \"recall\": " << point.recall << "}";
      }
      json << "]}";
    }
    json << "]}";
    MergeJsonSection(BenchJsonPath(json_path, "BENCH_PR9.json"), "clustered",
                     json.str());
  }
  }  // run_clustered
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sknn

int main(int argc, char** argv) { return sknn::bench::Main(argc, argv); }
