// bench_sharding — what sharding the record fan-out buys one query (PR 4).
//
// Builds one in-process engine per shard count over the SAME table and key
// pair and times the same SkNN_m query at s = 1 / 2 / 4 shards (s = 1 is
// the unsharded reference path). The per-shard stats of the response are
// reported too, so the JSON shows where the time went: shard stages
// (concurrent, each over n/s records — SMIN_n tournaments of depth
// log2(n/s)) versus the coordinator's s*k-candidate merge. On a multicore
// host the shard stages overlap; the merge is the serial tail Amdahl
// charges for it.
//
//   bench_sharding [--json [path]]     # JSON lands in BENCH_PR4.json
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace sknn {
namespace bench {
namespace {

struct Point {
  std::size_t shards = 0;
  double seconds = 0;
  double merge_seconds = 0;
  double shard_stage_seconds = 0;  // max over shards (they overlap)
};

int Main(int argc, char** argv) {
  std::string json_path;
  bool want_json = ConsumeJsonFlag(&argc, argv, &json_path);
  PrintHeader("sharding", "per-query wall time vs shard count",
              "SkNN_m k=2; s=1 is the unsharded engine");

  const std::size_t n = PaperScale() ? 64 : 16;
  const std::size_t m = 2;
  const unsigned l = 8;
  const unsigned key_bits = PaperScale() ? 512 : 256;
  const unsigned k = 2;
  const std::size_t threads = BenchThreads();

  std::printf("%8s %12s %12s %14s %10s\n", "shards", "seconds", "merge_s",
              "shard_stage_s", "speedup");
  std::vector<Point> points;
  double base_seconds = 0;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    EngineSetup setup = MakeEngine(
        n, m, l, key_bits, threads, /*seed=*/4242,
        std::chrono::microseconds{0},
        [shards](SknnEngine::Options& opts) { opts.shards = shards; });
    // Warm the randomizer pools out of the measurement.
    (void)MustQuery(*setup.engine, setup.query, k, QueryProtocol::kSecure,
                    "warmup query");
    Stopwatch watch;
    QueryResponse response = MustQuery(*setup.engine, setup.query, k,
                                       QueryProtocol::kSecure, "timed query");
    Point point;
    point.shards = shards;
    point.seconds = watch.ElapsedSeconds();
    point.merge_seconds = response.merge_seconds;
    for (const auto& shard : response.shards) {
      point.shard_stage_seconds =
          std::max(point.shard_stage_seconds, shard.seconds);
    }
    if (shards == 1) base_seconds = point.seconds;
    std::printf("%8zu %12.4f %12.4f %14.4f %9.2fx\n", point.shards,
                point.seconds, point.merge_seconds, point.shard_stage_seconds,
                base_seconds / point.seconds);
    points.push_back(point);
  }

  if (want_json) {
    std::ostringstream json;
    json << "{\"n\": " << n << ", \"k\": " << k
         << ", \"threads\": " << threads << ", \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i > 0) json << ", ";
      json << "{\"shards\": " << points[i].shards
           << ", \"seconds\": " << points[i].seconds
           << ", \"merge_seconds\": " << points[i].merge_seconds
           << ", \"shard_stage_seconds\": " << points[i].shard_stage_seconds
           << "}";
    }
    json << "]}";
    MergeJsonSection(BenchJsonPath(json_path, "BENCH_PR4.json"), "sharding",
                     json.str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sknn

int main(int argc, char** argv) { return sknn::bench::Main(argc, argv); }
