// Figure 2(c): SkNN_b time vs k, for K in {512, 1024}, m = 6, n = 2000.
//
// Paper result: essentially FLAT in k — SSED dominates and is independent
// of k (44.08 s -> 44.14 s for k = 5 -> 25 at K = 512).
// Expected shape here: max/min ratio over the k sweep close to 1.
#include "bench/bench_util.h"

int main() {
  using namespace sknn;
  using namespace sknn::bench;

  const std::size_t kM = 6;
  const unsigned kL = 12;
  const std::size_t n = PaperScale() ? 2000 : 250;
  std::vector<unsigned> ks = {5, 10, 15, 20, 25};
  std::vector<unsigned> key_sizes = {512, 1024};

  PrintHeader("Figure 2(c)", "SkNN_b time vs k for K in {512,1024}, m=6",
              "paper: flat in k (44.08 s -> 44.14 s at K=512)");
  std::printf("%6s %6s %4s %12s\n", "K", "n", "k", "time_s");
  for (unsigned key_bits : key_sizes) {
    std::size_t n_eff = (key_bits == 1024 && !PaperScale()) ? 100 : n;
    // One engine per key size: the sweep varies only k.
    EngineSetup setup = MakeEngine(n_eff, kM, kL, key_bits, 1, key_bits);
    double min_t = 1e30, max_t = 0;
    for (unsigned k : ks) {
      QueryResponse result = MustQuery(*setup.engine, setup.query, k,
                                       QueryProtocol::kBasic, "SkNN_b");
      min_t = std::min(min_t, result.cloud_seconds);
      max_t = std::max(max_t, result.cloud_seconds);
      std::printf("%6u %6zu %4u %12.2f\n", key_bits, n_eff, k,
                  result.cloud_seconds);
      std::fflush(stdout);
    }
    std::printf("# K=%u flatness (max/min over k): %.2fx (paper: ~1.0x)\n",
                key_bits, max_t / min_t);
  }
  return 0;
}
