// Figure 2(d): SkNN_m time vs k, for l in {6, 12}, n = 2000, m = 6,
// K = 512 bits.
//
// Paper result: linear in k and in l. l=6: 11.93 -> 55.65 min for k=5 -> 25;
// l=12: 20.68 -> 97.8 min. SMIN_n accounts for >= 69.7% of the cost,
// growing with k.
// Expected shape here: time/k roughly constant per l, time(l=12)/time(l=6)
// close to 2, and the SMIN_n share dominant and growing with k.
#include "bench/bench_util.h"

int main() {
  using namespace sknn;
  using namespace sknn::bench;

  const std::size_t kM = 6;
  const unsigned kKeyBits = 512;
  const std::size_t n = PaperScale() ? 2000 : 32;
  std::vector<unsigned> ks = PaperScale()
                                 ? std::vector<unsigned>{5, 10, 15, 20, 25}
                                 : std::vector<unsigned>{2, 6, 10};
  std::vector<unsigned> ls = {6, 12};

  PrintHeader("Figure 2(d)", "SkNN_m time vs k for l in {6,12}, n, m=6, K=512",
              "paper: linear in k and l; SMIN_n >= 69.7% of cost");
  std::printf("%4s %6s %4s %12s %12s %12s\n", "l", "n", "k", "time_s",
              "time_per_k_s", "sminn_share");
  for (unsigned l : ls) {
    EngineSetup setup = MakeEngine(n, kM, l, kKeyBits, BenchThreads(),
                                   /*seed=*/l * 1000);
    for (unsigned k : ks) {
      QueryResponse result = MustQuery(*setup.engine, setup.query, k,
                                       QueryProtocol::kSecure, "SkNN_m");
      double share = result.breakdown.sminn_seconds /
                     (result.cloud_seconds > 0 ? result.cloud_seconds : 1);
      std::printf("%4u %6zu %4u %12.2f %12.3f %11.1f%%\n", l, n, k,
                  result.cloud_seconds, result.cloud_seconds / k,
                  100.0 * share);
      std::fflush(stdout);
    }
  }
  return 0;
}
