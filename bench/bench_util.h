// Shared utilities for the figure-reproduction harnesses.
//
// Every bench binary prints the same series the corresponding paper figure
// plots, one row per parameter point. Two grids exist per figure:
//   * default ("smoke"): a scaled-down grid that finishes in minutes on a
//     laptop and still exhibits the paper's shape (linearity, flatness,
//     ratios);
//   * SKNN_BENCH_SCALE=paper: the paper's exact grid (n up to 10000,
//     K up to 1024) — hours of wall clock, matching Section 5's setup.
// EXPERIMENTS.md records measured-vs-paper series for the default grid.
#ifndef SKNN_BENCH_BENCH_UTIL_H_
#define SKNN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/engine.h"
#include "data/synthetic.h"

namespace sknn {
namespace bench {

/// \brief True if `flag` (e.g. "--json") is among the args; removes it so
/// downstream parsers (Google Benchmark) never see it.
inline bool ConsumeFlag(int* argc, char** argv, const char* flag) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return true;
    }
  }
  return false;
}

/// \brief Consumes "--json [path]" / "--json=path" from the args (so
/// downstream parsers never see it). Returns true if the flag was present;
/// `*path` receives the explicit path when one was given and is left
/// untouched otherwise (BenchJsonPath then falls back to the environment /
/// location heuristic).
inline bool ConsumeJsonFlag(int* argc, char** argv, std::string* path) {
  for (int i = 1; i < *argc; ++i) {
    int remove = 0;
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      *path = argv[i] + 7;
      remove = 1;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      remove = 1;
      if (i + 1 < *argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        *path = argv[i + 1];
        remove = 2;
      }
    }
    if (remove == 0) continue;
    for (int j = i; j + remove < *argc; ++j) argv[j] = argv[j + remove];
    *argc -= remove;
    return true;
  }
  return false;
}

/// \brief Where a bench writes its machine-readable artifact: the explicit
/// `--json <path>` value when given, else $SKNN_BENCH_JSON, else
/// `default_name` at the repo root (when running from a build/
/// subdirectory) or in the working directory.
inline std::string BenchJsonPath(const std::string& explicit_path,
                                 const char* default_name) {
  if (!explicit_path.empty()) return explicit_path;
  const char* env = std::getenv("SKNN_BENCH_JSON");
  if (env != nullptr && *env != '\0') return env;
  // Heuristic: benches are usually run from build/; the artifact belongs
  // next to the sources.
  std::ifstream probe("../CMakeLists.txt");
  return probe.good() ? std::string("../") + default_name : default_name;
}

/// \brief Replaces (or adds) the top-level member `section` of the JSON
/// object in `path` with `value_json`, preserving the other sections — so
/// bench_primitives and bench_batch can each own a section of the same
/// artifact. An existing section is replaced IN PLACE (same position, other
/// members byte-identical), so re-running a bench neither reorders the
/// artifact nor perturbs its neighbors; a new section is appended. The
/// scanner only needs to split well-formed top-level members, which is all
/// this emitter ever writes.
inline void MergeJsonSection(const std::string& path,
                             const std::string& section,
                             const std::string& value_json) {
  std::string content;
  {
    std::ifstream in(path);
    if (in.good()) {
      std::ostringstream ss;
      ss << in.rdbuf();
      content = ss.str();
    }
  }
  std::vector<std::pair<std::string, std::string>> members;
  std::size_t open = content.find('{');
  if (open != std::string::npos) {
    int depth = 1;  // inside the document brace
    bool in_string = false, escaped = false;
    bool in_key = false, in_value = false;
    std::string key, value;
    auto finish_member = [&] {
      // Trim the whitespace the scanner swept up with the value, so a
      // rewrite emits exactly one "key: value" separator — re-running must
      // not grow untouched sections by one space per pass.
      std::size_t first = value.find_first_not_of(" \t\r\n");
      std::size_t last = value.find_last_not_of(" \t\r\n");
      if (first == std::string::npos) {
        value.clear();
      } else {
        value = value.substr(first, last - first + 1);
      }
      if (!key.empty() && !value.empty()) members.emplace_back(key, value);
      key.clear();
      value.clear();
      in_value = false;
    };
    for (std::size_t i = open + 1; i < content.size() && depth > 0; ++i) {
      char c = content[i];
      if (in_string) {
        bool closes = !escaped && c == '"';
        escaped = !escaped && c == '\\';
        if (closes) in_string = false;
        if (in_key) {
          if (closes) in_key = false;
          else key.push_back(c);
        }
        if (in_value) value.push_back(c);
        continue;
      }
      if (c == '"') {
        in_string = true;
        if (depth == 1 && !in_value) {
          in_key = true;
        } else if (in_value) {
          value.push_back(c);
        }
        continue;
      }
      if (depth == 1 && !in_value) {
        if (c == ':') in_value = true;
        if (c == '}') --depth;
        continue;  // whitespace / comma between members
      }
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        --depth;
        if (depth == 0) {  // the document's closing brace
          finish_member();
          break;
        }
      }
      if (depth == 1 && c == ',') {
        finish_member();
        continue;
      }
      value.push_back(c);
    }
    finish_member();
  }
  // Replace in place; append only if the section is new.
  bool replaced = false;
  for (auto& [k, v] : members) {
    if (k == section) {
      v = value_json;
      replaced = true;
    }
  }
  if (!replaced) members.emplace_back(section, value_json);
  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  bool first = true;
  for (const auto& [k, v] : members) {
    if (!first) out << ",\n";
    first = false;
    out << "  \"" << k << "\": " << v;
  }
  out << "\n}\n";
  std::fprintf(stderr, "wrote section \"%s\" to %s\n", section.c_str(),
               path.c_str());
}

inline bool PaperScale() {
  const char* env = std::getenv("SKNN_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "paper") == 0;
}

/// \brief Threads used by the parallel variants (the paper's machine had 6
/// cores; we use what the host offers).
inline std::size_t BenchThreads() {
  return ThreadPool::HardwareConcurrency();
}

struct EngineSetup {
  std::unique_ptr<SknnEngine> engine;
  PlainRecord query;
  double setup_seconds = 0;
};

/// \brief Builds a uniform synthetic database whose squared distances fit
/// in `l` bits (the paper's parameterization) and the matching engine.
/// `latency` simulates the C1<->C2 WAN (zero = colocated clouds).
inline EngineSetup MakeEngine(std::size_t n, std::size_t m, unsigned l,
                              unsigned key_bits, std::size_t threads,
                              uint64_t seed,
                              std::chrono::microseconds latency =
                                  std::chrono::microseconds{0},
                              const std::function<void(SknnEngine::Options&)>&
                                  tweak = {}) {
  int64_t max_value = MaxValueForDistanceBits(m, l);
  PlainTable table = GenerateUniformTable(n, m, max_value, seed);
  PlainRecord query = GenerateUniformQuery(m, max_value, seed + 1);
  SknnEngine::Options opts;
  opts.key_bits = key_bits;
  opts.attr_bits = BitsForMaxValue(max_value);
  opts.c1_threads = threads;
  opts.c2_threads = threads;
  opts.c1_c2_latency = latency;
  if (tweak) tweak(opts);
  Stopwatch sw;
  auto engine = SknnEngine::Create(table, opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  return {std::move(engine).value(), std::move(query), sw.ElapsedSeconds()};
}

/// \brief Runs one request through the engine's query API; dies with a
/// message if it failed.
inline QueryResponse MustQuery(SknnEngine& engine, const PlainRecord& query,
                               unsigned k, QueryProtocol protocol,
                               const char* what) {
  QueryRequest request;
  request.record = query;
  request.k = k;
  request.protocol = protocol;
  Result<QueryResponse> r = engine.Query(request);
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

inline void PrintHeader(const char* figure, const char* paper_series,
                        const char* note) {
  std::printf("# %s — %s\n", figure, paper_series);
  std::printf("# scale=%s  threads=%zu  %s\n", PaperScale() ? "paper" : "smoke",
              BenchThreads(), note);
}

}  // namespace bench
}  // namespace sknn

#endif  // SKNN_BENCH_BENCH_UTIL_H_
