// Shared utilities for the figure-reproduction harnesses.
//
// Every bench binary prints the same series the corresponding paper figure
// plots, one row per parameter point. Two grids exist per figure:
//   * default ("smoke"): a scaled-down grid that finishes in minutes on a
//     laptop and still exhibits the paper's shape (linearity, flatness,
//     ratios);
//   * SKNN_BENCH_SCALE=paper: the paper's exact grid (n up to 10000,
//     K up to 1024) — hours of wall clock, matching Section 5's setup.
// EXPERIMENTS.md records measured-vs-paper series for the default grid.
#ifndef SKNN_BENCH_BENCH_UTIL_H_
#define SKNN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/engine.h"
#include "data/synthetic.h"

namespace sknn {
namespace bench {

inline bool PaperScale() {
  const char* env = std::getenv("SKNN_BENCH_SCALE");
  return env != nullptr && std::strcmp(env, "paper") == 0;
}

/// \brief Threads used by the parallel variants (the paper's machine had 6
/// cores; we use what the host offers).
inline std::size_t BenchThreads() {
  return ThreadPool::HardwareConcurrency();
}

struct EngineSetup {
  std::unique_ptr<SknnEngine> engine;
  PlainRecord query;
  double setup_seconds = 0;
};

/// \brief Builds a uniform synthetic database whose squared distances fit
/// in `l` bits (the paper's parameterization) and the matching engine.
/// `latency` simulates the C1<->C2 WAN (zero = colocated clouds).
inline EngineSetup MakeEngine(std::size_t n, std::size_t m, unsigned l,
                              unsigned key_bits, std::size_t threads,
                              uint64_t seed,
                              std::chrono::microseconds latency =
                                  std::chrono::microseconds{0}) {
  int64_t max_value = MaxValueForDistanceBits(m, l);
  PlainTable table = GenerateUniformTable(n, m, max_value, seed);
  PlainRecord query = GenerateUniformQuery(m, max_value, seed + 1);
  SknnEngine::Options opts;
  opts.key_bits = key_bits;
  opts.attr_bits = BitsForMaxValue(max_value);
  opts.c1_threads = threads;
  opts.c2_threads = threads;
  opts.c1_c2_latency = latency;
  Stopwatch sw;
  auto engine = SknnEngine::Create(table, opts);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  return {std::move(engine).value(), std::move(query), sw.ElapsedSeconds()};
}

/// \brief Runs one request through the engine's query API; dies with a
/// message if it failed.
inline QueryResponse MustQuery(SknnEngine& engine, const PlainRecord& query,
                               unsigned k, QueryProtocol protocol,
                               const char* what) {
  QueryRequest request;
  request.record = query;
  request.k = k;
  request.protocol = protocol;
  Result<QueryResponse> r = engine.Query(request);
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

inline void PrintHeader(const char* figure, const char* paper_series,
                        const char* note) {
  std::printf("# %s — %s\n", figure, paper_series);
  std::printf("# scale=%s  threads=%zu  %s\n", PaperScale() ? "paper" : "smoke",
              BenchThreads(), note);
}

}  // namespace bench
}  // namespace sknn

#endif  // SKNN_BENCH_BENCH_UTIL_H_
