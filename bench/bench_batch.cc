// Batched-query throughput: a serial loop of Query() calls vs one
// QueryBatch() of the same requests, at c1_threads in {1, 2, 4}, over a
// simulated C1<->C2 WAN (5 ms one-way, the deployment's federated-cloud
// topology; both protocols are round-trip-bound over such a link).
//
// This measures what the request-oriented API buys: with c1_threads = t the
// engine keeps t independent queries in flight over the shared C1 pool and
// the correlation-id RPC demux, so one query's link stalls and C2 waits are
// overlapped with another's work and batch wall time approaches serial / t
// (compute contention permitting — on a many-core host the homomorphic work
// overlaps too). At c1_threads = 1 the batch degenerates to the serial
// loop — same wall time — which is the sanity floor of the comparison.
// Results are identical to the serial path either way
// (tests/test_query_api.cc checks bitwise equality).
//
// Default grid (256-bit keys, small n) finishes in ~a minute;
// SKNN_BENCH_SCALE=paper uses 512-bit keys and a larger table.
#include "bench/bench_util.h"

namespace {

using namespace sknn;
using namespace sknn::bench;

struct BatchPoint {
  double serial_seconds = 0;
  double batch_seconds = 0;
};

BatchPoint MeasureOne(std::size_t n, std::size_t m, unsigned l,
                      unsigned key_bits, std::size_t threads,
                      QueryProtocol protocol, unsigned k,
                      std::size_t batch_size,
                      std::chrono::microseconds latency) {
  EngineSetup setup = MakeEngine(n, m, l, key_bits, threads,
                                 /*seed=*/n * 131 + threads, latency);
  QueryRequest request;
  request.record = setup.query;
  request.k = k;
  request.protocol = protocol;
  std::vector<QueryRequest> requests(batch_size, request);

  BatchPoint point;
  Stopwatch sw;
  for (const auto& r : requests) {
    auto response = setup.engine->Query(r);
    if (!response.ok()) {
      std::fprintf(stderr, "serial query failed: %s\n",
                   response.status().ToString().c_str());
      std::exit(1);
    }
  }
  point.serial_seconds = sw.ElapsedSeconds();

  sw.Reset();
  auto batch = setup.engine->QueryBatch(requests);
  point.batch_seconds = sw.ElapsedSeconds();
  for (const auto& response : batch) {
    if (!response.ok()) {
      std::fprintf(stderr, "batched query failed: %s\n",
                   response.status().ToString().c_str());
      std::exit(1);
    }
  }
  return point;
}

}  // namespace

int main() {
  const std::size_t kBatch = 8;
  const unsigned kK = 2;
  const std::size_t kM = 2;
  const unsigned kL = 8;
  const unsigned key_bits = PaperScale() ? 512 : 256;
  const std::size_t n_basic = PaperScale() ? 500 : 64;
  const std::size_t n_secure = PaperScale() ? 32 : 12;
  const std::chrono::microseconds kLatency{5000};  // 5 ms one-way WAN
  std::vector<std::size_t> thread_counts = {1, 2, 4};

  PrintHeader("batch",
              "serial loop vs QueryBatch of 8 queries over c1_threads, "
              "5 ms C1<->C2 WAN",
              "expect: ~1x at 1 thread, approaching t-x at t threads");
  std::printf("%10s %6s %8s %14s %14s %9s\n", "protocol", "n", "threads",
              "serial_s", "batch_s", "speedup");
  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure}) {
    const std::size_t n =
        protocol == QueryProtocol::kBasic ? n_basic : n_secure;
    for (std::size_t threads : thread_counts) {
      BatchPoint point = MeasureOne(n, kM, kL, key_bits, threads, protocol,
                                    kK, kBatch, kLatency);
      std::printf("%10s %6zu %8zu %14.2f %14.2f %8.2fx\n",
                  QueryProtocolName(protocol), n, threads,
                  point.serial_seconds, point.batch_seconds,
                  point.serial_seconds /
                      (point.batch_seconds > 0 ? point.batch_seconds : 1e-9));
      std::fflush(stdout);
    }
  }
  return 0;
}
