// Batched-query throughput: a serial loop of Query() calls vs one
// QueryBatch() of the same requests, at c1_threads in {1, 2, 4}, over a
// simulated C1<->C2 WAN (5 ms one-way, the deployment's federated-cloud
// topology; both protocols are round-trip-bound over such a link).
//
// Additionally (PR 2), the single-query hot path: one SkNN_m query on the
// scalar (paper-literal) engine vs the vectorized engine — vectorized wire
// opcodes + fused extract/clamp round + randomizer precomputation — at the
// same 5 ms link. Reports wall time AND the per-query C1->C2 message count
// from the QueryMeter, so the round compression is visible, not inferred.
// --json writes both series into BENCH_PR2.json.
//
// This measures what the request-oriented API buys: with c1_threads = t the
// engine keeps t independent queries in flight over the shared C1 pool and
// the correlation-id RPC demux, so one query's link stalls and C2 waits are
// overlapped with another's work and batch wall time approaches serial / t
// (compute contention permitting — on a many-core host the homomorphic work
// overlaps too). At c1_threads = 1 the batch degenerates to the serial
// loop — same wall time — which is the sanity floor of the comparison.
// Results are identical to the serial path either way
// (tests/test_query_api.cc checks bitwise equality).
//
// Default grid (256-bit keys, small n) finishes in ~a minute;
// SKNN_BENCH_SCALE=paper uses 512-bit keys and a larger table.
#include "bench/bench_util.h"

namespace {

using namespace sknn;
using namespace sknn::bench;

struct BatchPoint {
  double serial_seconds = 0;
  double batch_seconds = 0;
};

BatchPoint MeasureOne(std::size_t n, std::size_t m, unsigned l,
                      unsigned key_bits, std::size_t threads,
                      QueryProtocol protocol, unsigned k,
                      std::size_t batch_size,
                      std::chrono::microseconds latency) {
  EngineSetup setup = MakeEngine(n, m, l, key_bits, threads,
                                 /*seed=*/n * 131 + threads, latency);
  QueryRequest request;
  request.record = setup.query;
  request.k = k;
  request.protocol = protocol;
  std::vector<QueryRequest> requests(batch_size, request);

  BatchPoint point;
  Stopwatch sw;
  for (const auto& r : requests) {
    auto response = setup.engine->Query(r);
    if (!response.ok()) {
      std::fprintf(stderr, "serial query failed: %s\n",
                   response.status().ToString().c_str());
      std::exit(1);
    }
  }
  point.serial_seconds = sw.ElapsedSeconds();

  sw.Reset();
  auto batch = setup.engine->QueryBatch(requests);
  point.batch_seconds = sw.ElapsedSeconds();
  for (const auto& response : batch) {
    if (!response.ok()) {
      std::fprintf(stderr, "batched query failed: %s\n",
                   response.status().ToString().c_str());
      std::exit(1);
    }
  }
  return point;
}

struct HotPathPoint {
  double scalar_seconds = 0;
  double vectorized_seconds = 0;
  uint64_t scalar_frames = 0;      // C1->C2 messages per query (QueryMeter)
  uint64_t vectorized_frames = 0;
};

// One SkNN_m query, scalar engine vs vectorized engine, same data and link.
HotPathPoint MeasureHotPath(std::size_t n, std::size_t m, unsigned l,
                            unsigned key_bits, std::size_t threads,
                            unsigned k, std::chrono::microseconds latency,
                            std::size_t reps) {
  HotPathPoint point;
  for (int vectorized = 0; vectorized <= 1; ++vectorized) {
    EngineSetup setup = MakeEngine(
        n, m, l, key_bits, threads, /*seed=*/n * 977, latency,
        [&](SknnEngine::Options& opts) {
          opts.vectorized_rounds = vectorized != 0;
          opts.randomizer_pool = vectorized != 0;
        });
    // One untimed warmup lets the randomizer pools reach steady state —
    // exactly the state a serving engine is in.
    QueryResponse warm = MustQuery(*setup.engine, setup.query, k,
                                   QueryProtocol::kSecure, "hot path warmup");
    Stopwatch sw;
    for (std::size_t r = 0; r < reps; ++r) {
      warm = MustQuery(*setup.engine, setup.query, k, QueryProtocol::kSecure,
                       "hot path query");
    }
    double seconds = sw.ElapsedSeconds() / static_cast<double>(reps);
    if (vectorized) {
      point.vectorized_seconds = seconds;
      point.vectorized_frames = warm.traffic.frames_a_to_b;
    } else {
      point.scalar_seconds = seconds;
      point.scalar_frames = warm.traffic.frames_a_to_b;
    }
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  const bool emit_json = ConsumeJsonFlag(&argc, argv, &json_path);
  const std::size_t kBatch = 8;
  const unsigned kK = 2;
  const std::size_t kM = 2;
  const unsigned kL = 8;
  const unsigned key_bits = PaperScale() ? 512 : 256;
  const std::size_t n_basic = PaperScale() ? 500 : 64;
  const std::size_t n_secure = PaperScale() ? 32 : 12;
  const std::chrono::microseconds kLatency{5000};  // 5 ms one-way WAN
  std::vector<std::size_t> thread_counts = {1, 2, 4};
  std::ostringstream batch_json;
  batch_json << "[";
  bool first_row = true;

  PrintHeader("batch",
              "serial loop vs QueryBatch of 8 queries over c1_threads, "
              "5 ms C1<->C2 WAN",
              "expect: ~1x at 1 thread, approaching t-x at t threads");
  std::printf("%10s %6s %8s %14s %14s %9s\n", "protocol", "n", "threads",
              "serial_s", "batch_s", "speedup");
  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure}) {
    const std::size_t n =
        protocol == QueryProtocol::kBasic ? n_basic : n_secure;
    for (std::size_t threads : thread_counts) {
      BatchPoint point = MeasureOne(n, kM, kL, key_bits, threads, protocol,
                                    kK, kBatch, kLatency);
      double speedup = point.serial_seconds /
                       (point.batch_seconds > 0 ? point.batch_seconds : 1e-9);
      std::printf("%10s %6zu %8zu %14.2f %14.2f %8.2fx\n",
                  QueryProtocolName(protocol), n, threads,
                  point.serial_seconds, point.batch_seconds, speedup);
      std::fflush(stdout);
      batch_json << (first_row ? "\n" : ",\n") << "      {\"protocol\": \""
                 << QueryProtocolName(protocol) << "\", \"n\": " << n
                 << ", \"threads\": " << threads
                 << ", \"serial_s\": " << point.serial_seconds
                 << ", \"batch_s\": " << point.batch_seconds
                 << ", \"speedup\": " << speedup << "}";
      first_row = false;
    }
  }
  batch_json << "\n    ]";

  // -- PR 2 hot path: scalar vs vectorized single SkNN_m query --
  const std::size_t n_hot = PaperScale() ? 32 : 16;
  const std::size_t hot_threads = 4;
  const std::size_t hot_reps = PaperScale() ? 3 : 2;
  PrintHeader("hot path",
              "one SkNN_m query, scalar (paper-literal) vs vectorized "
              "rounds + randomizer pools, 5 ms C1<->C2 WAN",
              "frames = C1->C2 messages per query (QueryMeter)");
  HotPathPoint hot = MeasureHotPath(n_hot, kM, kL, key_bits, hot_threads, kK,
                                    kLatency, hot_reps);
  std::printf("%12s %14s %14s\n", "", "scalar", "vectorized");
  std::printf("%12s %14.2f %14.2f\n", "seconds", hot.scalar_seconds,
              hot.vectorized_seconds);
  std::printf("%12s %14llu %14llu\n", "frames",
              static_cast<unsigned long long>(hot.scalar_frames),
              static_cast<unsigned long long>(hot.vectorized_frames));
  std::printf("%12s %14s %13.2fx\n", "speedup", "",
              hot.scalar_seconds /
                  (hot.vectorized_seconds > 0 ? hot.vectorized_seconds
                                              : 1e-9));
  if (emit_json) {
    std::ostringstream os;
    os << "{\n    \"batch_vs_serial\": " << batch_json.str()
       << ",\n    \"sknn_m_hot_path\": {\"n\": " << n_hot
       << ", \"m\": " << kM << ", \"l\": " << kL << ", \"k\": " << kK
       << ", \"key_bits\": " << key_bits << ", \"threads\": " << hot_threads
       << ", \"latency_ms\": 5"
       << ", \"scalar_s\": " << hot.scalar_seconds
       << ", \"vectorized_s\": " << hot.vectorized_seconds
       << ", \"scalar_frames\": " << hot.scalar_frames
       << ", \"vectorized_frames\": " << hot.vectorized_frames
       << ", \"speedup\": "
       << hot.scalar_seconds / (hot.vectorized_seconds > 0
                                    ? hot.vectorized_seconds
                                    : 1e-9)
       << "}\n  }";
    MergeJsonSection(BenchJsonPath(json_path, "BENCH_PR2.json"),
                     "end_to_end", os.str());
  }
  return 0;
}
