// Figure 2(e): SkNN_m time vs k, for l in {6, 12}, n = 2000, m = 6,
// K = 1024 bits.
//
// Paper result: same linear-in-k shape as Figure 2(d), ~7x slower; e.g.
// k = 10: 22.85 min (K=512) -> 157.17 min (K=1024).
// Expected shape here: linear in k, and the measured K-doubling factor in
// the 6-8x band against the same grid point at K=512.
#include "bench/bench_util.h"

int main() {
  using namespace sknn;
  using namespace sknn::bench;

  const std::size_t kM = 6;
  const std::size_t n = PaperScale() ? 2000 : 24;
  std::vector<unsigned> ks = PaperScale()
                                 ? std::vector<unsigned>{5, 10, 15, 20, 25}
                                 : std::vector<unsigned>{2, 4};
  std::vector<unsigned> ls = PaperScale() ? std::vector<unsigned>{6, 12}
                                          : std::vector<unsigned>{6};

  PrintHeader("Figure 2(e)", "SkNN_m time vs k for l in {6,12}, m=6, K=1024",
              "paper: ~7x the K=512 cost of Fig 2(d)");
  std::printf("%4s %6s %6s %4s %12s %12s\n", "l", "K", "n", "k", "time_s",
              "time_per_k_s");

  double per_k_1024 = 0, per_k_512 = 0;
  for (unsigned l : ls) {
    EngineSetup setup =
        MakeEngine(n, kM, l, 1024, BenchThreads(), /*seed=*/l * 2000);
    for (unsigned k : ks) {
      QueryResponse result = MustQuery(*setup.engine, setup.query, k,
                                       QueryProtocol::kSecure, "SkNN_m");
      std::printf("%4u %6u %6zu %4u %12.2f %12.3f\n", l, 1024, n, k,
                  result.cloud_seconds, result.cloud_seconds / k);
      std::fflush(stdout);
      if (l == ls[0] && k == ks[0]) per_k_1024 = result.cloud_seconds / k;
    }
  }
  // Matching K=512 point for the doubling-factor summary.
  EngineSetup ref = MakeEngine(n, kM, ls[0], 512, BenchThreads(), 4242);
  QueryResponse ref_result = MustQuery(*ref.engine, ref.query, ks[0],
                                       QueryProtocol::kSecure, "SkNN_m ref");
  per_k_512 = ref_result.cloud_seconds / ks[0];
  std::printf("%4u %6u %6zu %4u %12.2f %12.3f\n", ls[0], 512, n, ks[0],
              ref_result.cloud_seconds, per_k_512);
  std::printf("# measured K-doubling factor: %.1fx (paper: ~7x)\n",
              per_k_1024 / per_k_512);
  return 0;
}
