// Figure 2(f): SkNN_b vs SkNN_m over k, with n = 2000, m = 6, l = 6,
// K = 512 bits.
//
// Paper result: SkNN_b flat at 0.73 min; SkNN_m grows 11.93 -> 55.65 min as
// k goes 5 -> 25. The two never cross — the gap IS the price of hiding
// distances and access patterns (the security/efficiency trade-off).
// Expected shape here: basic flat, secure linear in k, secure >> basic at
// every k.
#include "bench/bench_util.h"

int main() {
  using namespace sknn;
  using namespace sknn::bench;

  const std::size_t kM = 6;
  const unsigned kL = 6;
  const unsigned kKeyBits = 512;
  const std::size_t n = PaperScale() ? 2000 : 32;
  std::vector<unsigned> ks = PaperScale()
                                 ? std::vector<unsigned>{5, 10, 15, 20, 25}
                                 : std::vector<unsigned>{2, 6, 10};

  PrintHeader("Figure 2(f)", "SkNN_b vs SkNN_m time over k; n, m=6, l=6, K=512",
              "paper: basic flat at 0.73 min; secure 11.93->55.65 min");
  std::printf("%6s %4s %14s %14s %10s\n", "n", "k", "basic_time_s",
              "secure_time_s", "ratio");
  EngineSetup setup = MakeEngine(n, kM, kL, kKeyBits, BenchThreads(), 5150);
  for (unsigned k : ks) {
    QueryResponse basic = MustQuery(*setup.engine, setup.query, k,
                                    QueryProtocol::kBasic, "SkNN_b");
    QueryResponse secure = MustQuery(*setup.engine, setup.query, k,
                                     QueryProtocol::kSecure, "SkNN_m");
    std::printf("%6zu %4u %14.2f %14.2f %9.1fx\n", n, k, basic.cloud_seconds,
                secure.cloud_seconds,
                secure.cloud_seconds /
                    (basic.cloud_seconds > 0 ? basic.cloud_seconds : 1e-9));
    std::fflush(stdout);
  }
  return 0;
}
