// Figure 2(a): SkNN_b total time vs number of records n, for m in
// {6, 12, 18}, with k = 5 and K = 512 bits.
//
// Paper result (6-core Xeon 3.07 GHz, serial): linear growth in n and m;
// e.g. m = 6: 44.08 s at n = 2000 -> 87.91 s at n = 4000.
// Expected shape here: time/(n*m) constant across the grid.
#include "bench/bench_util.h"

int main() {
  using namespace sknn;
  using namespace sknn::bench;

  const unsigned kKeyBits = 512;
  const unsigned kK = 5;
  const unsigned kL = 12;  // SkNN_b is independent of l (Section 5.1)
  std::vector<std::size_t> ns =
      PaperScale() ? std::vector<std::size_t>{2000, 4000, 6000, 8000, 10000}
                   : std::vector<std::size_t>{250, 500, 1000};
  std::vector<std::size_t> ms = {6, 12, 18};

  PrintHeader("Figure 2(a)", "SkNN_b time vs n for m in {6,12,18}, k=5, K=512",
              "paper: linear in n*m; m=6,n=2000 -> 44.08 s");
  std::printf("%8s %4s %4s %12s %14s %12s\n", "n", "m", "k", "time_s",
              "time_per_nm_ms", "traffic_KiB");
  for (std::size_t m : ms) {
    for (std::size_t n : ns) {
      EngineSetup setup =
          MakeEngine(n, m, kL, kKeyBits, /*threads=*/1, /*seed=*/n * 31 + m);
      QueryResponse result = MustQuery(*setup.engine, setup.query, kK,
                                       QueryProtocol::kBasic, "SkNN_b");
      std::printf("%8zu %4zu %4u %12.2f %14.4f %12.1f\n", n, m, kK,
                  result.cloud_seconds,
                  1e3 * result.cloud_seconds / static_cast<double>(n * m),
                  result.traffic.total_bytes() / 1024.0);
      std::fflush(stdout);
    }
  }
  return 0;
}
