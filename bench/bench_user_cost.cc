// Section 5.2, end-user cost: "for m = 6, Bob's computation costs are 4 and
// 17 milliseconds when K is 512 and 1024 bits respectively" — the
// lightweight-client claim (query encryption dominates Bob's work).
//
// google-benchmark microbenchmark of Bob's two operations: encrypting the
// query record, and unmasking the k result records.
#include <benchmark/benchmark.h>

#include "core/query_client.h"
#include "crypto/paillier.h"
#include "data/synthetic.h"

namespace sknn {
namespace {

const PaillierPublicKey& SharedKey(unsigned bits) {
  static auto* keys512 = new PaillierKeyPair(
      GeneratePaillierKeyPair(512).value());
  static auto* keys1024 = new PaillierKeyPair(
      GeneratePaillierKeyPair(1024).value());
  return bits == 512 ? keys512->pk : keys1024->pk;
}

void BM_BobEncryptQuery(benchmark::State& state) {
  const unsigned key_bits = static_cast<unsigned>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  QueryClient bob(SharedKey(key_bits));
  PlainRecord query = GenerateUniformQuery(m, 100, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bob.EncryptQuery(query));
  }
  state.SetLabel("paper: m=6 -> 4 ms (K=512), 17 ms (K=1024)");
}
BENCHMARK(BM_BobEncryptQuery)
    ->ArgNames({"K", "m"})
    ->Args({512, 6})
    ->Args({512, 12})
    ->Args({512, 18})
    ->Args({1024, 6})
    ->Args({1024, 12})
    ->Args({1024, 18})
    ->Unit(benchmark::kMillisecond);

void BM_BobUnmaskResult(benchmark::State& state) {
  const unsigned key_bits = static_cast<unsigned>(state.range(0));
  const unsigned k = static_cast<unsigned>(state.range(1));
  const std::size_t m = 6;
  const PaillierPublicKey& pk = SharedKey(key_bits);
  QueryClient bob(pk);
  Random rng(2);
  std::vector<BigInt> masked, masks;
  for (std::size_t i = 0; i < k * m; ++i) {
    masks.push_back(rng.Below(pk.n()));
    masked.push_back(BigInt(static_cast<int64_t>(i % 97))
                         .AddMod(masks.back(), pk.n()));
  }
  for (auto _ : state) {
    auto result = bob.RecoverRecords(masked, masks, k, m);
    if (!result.ok()) state.SkipWithError("recover failed");
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("k*m modular subtractions; negligible vs encryption");
}
BENCHMARK(BM_BobUnmaskResult)
    ->ArgNames({"K", "k"})
    ->Args({512, 5})
    ->Args({512, 25})
    ->Args({1024, 5})
    ->Args({1024, 25})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sknn

BENCHMARK_MAIN();
