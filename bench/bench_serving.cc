// bench_serving — multi-client throughput of the serving front end (PR 3),
// plus the multi-table series (PR 5) and the QoS series (PR 10).
//
// Stands up the full four-party topology in one process but over real
// loopback sockets — standalone C2 behind a TCP RpcServer, a
// CreateWithRemoteC2 engine, a QueryService — then drives it with 1/4/8
// concurrent thin clients (serve/RemoteQueryClient, one connection each)
// and reports aggregate queries/second per protocol. The 1-client row is
// the serial baseline; the speedup of the wider rows is what the engine's
// Submit pipelining buys the deployment.
//
// The multi-table series serves 1 vs 4 independent tables (own keys, own
// C2 each) from ONE QueryService and spreads the same concurrent client
// load across them — the isolation cost (or win: independent engines don't
// share a C1 pool) of multi-tenancy behind one port. JSON lands in
// BENCH_PR5.json under "serving_multi_table".
//
// The QoS series (PR 10) drives Zipf-skewed traffic — a few hot queries
// dominate, as real serving traffic does — through one table with the
// result cache OFF vs ON (hit rate, throughput, p95 latency: what
// rerandomized cache hits buy a skewed workload), then floods a
// weight-8 table next to a weight-1 table under a tiny admission budget
// and measures the light tenant's progress (what weighted fair admission
// buys the small tenant). JSON lands in BENCH_PR10.json under
// "serving_cache_fairness".
//
//   bench_serving [--json [path]]  # JSON lands in BENCH_PR3/PR5/PR10.json
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/mutex.h"
#include "net/socket.h"
#include "serve/qos/result_cache.h"
#include "serve/query_service.h"
#include "serve/remote_query_client.h"
#include "serve/table_registry.h"

namespace sknn {
namespace bench {
namespace {

struct ServingStack {
  std::unique_ptr<SknnEngine> local;  // keys + encrypted db come from here
  std::unique_ptr<C2Service> c2;
  std::unique_ptr<RpcServer> c2_server;
  std::unique_ptr<SknnEngine> engine;
  std::unique_ptr<QueryService> service;
  PlainRecord query;

  ServingStack() = default;
  ServingStack(ServingStack&&) = default;
  ServingStack& operator=(ServingStack&&) = default;
  ~ServingStack() {
    if (service != nullptr) service->Shutdown();
  }
};

// One C2-over-TCP backing: a standalone C2Service (same secret key as
// `local`) behind a loopback RpcServer, and the CreateWithRemoteC2 engine
// connected to it — the bring-up both the single- and multi-table stacks
// share.
struct RemoteC2Backing {
  std::unique_ptr<C2Service> c2;
  std::unique_ptr<RpcServer> c2_server;
  std::unique_ptr<SknnEngine> engine;
};

RemoteC2Backing ConnectRemoteEngine(SknnEngine& local, std::size_t threads,
                                    std::size_t pool_capacity,
                                    bool intra_message_parallelism) {
  RemoteC2Backing backing;
  backing.c2 = std::make_unique<C2Service>(
      PaillierSecretKey(local.c2_service().secret_key()));
  if (intra_message_parallelism) {
    backing.c2->EnableIntraMessageParallelism(threads);
  }
  backing.c2->EnableRandomizerPool(pool_capacity,
                                   std::max<std::size_t>(1, threads / 2));
  auto listener = TcpListener::Bind(0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 listener.status().ToString().c_str());
    std::exit(1);
  }
  std::thread accepter([&] {
    auto accepted = listener->Accept();
    if (!accepted.ok()) std::exit(1);
    C2Service* c2_raw = backing.c2.get();
    backing.c2_server = std::make_unique<RpcServer>(
        std::move(accepted).value(),
        [c2_raw](const Message& req) { return c2_raw->Handle(req); },
        threads);
  });
  auto link = ConnectTcp("127.0.0.1", listener->port());
  accepter.join();
  if (!link.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 link.status().ToString().c_str());
    std::exit(1);
  }

  SknnEngine::Options options;
  options.c1_threads = threads;
  auto engine = SknnEngine::CreateWithRemoteC2(
      local.public_key(), EncryptedDatabase(local.database()),
      std::move(link).value(), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "remote engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  backing.engine = std::move(engine).value();
  return backing;
}

ServingStack MakeStack(std::size_t n, std::size_t m, unsigned l,
                       unsigned key_bits, std::size_t threads) {
  ServingStack stack;
  EngineSetup setup = MakeEngine(n, m, l, key_bits, threads, /*seed=*/77);
  stack.local = std::move(setup.engine);
  stack.query = std::move(setup.query);

  RemoteC2Backing backing = ConnectRemoteEngine(
      *stack.local, threads, /*pool_capacity=*/1024,
      /*intra_message_parallelism=*/true);
  stack.c2 = std::move(backing.c2);
  stack.c2_server = std::move(backing.c2_server);
  stack.engine = std::move(backing.engine);

  QueryService::Options service_options;
  service_options.max_in_flight = 16;
  stack.service =
      std::make_unique<QueryService>(stack.engine.get(), service_options);
  if (Status s = stack.service->Start(0); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::exit(1);
  }
  return stack;
}

struct Point {
  std::size_t clients = 0;
  std::size_t queries = 0;
  double seconds = 0;
};

// The PR 5 shape: T independent tables — own keys, own database, own C2 —
// registered behind ONE QueryService.
struct MultiTableStack {
  struct Backing {
    std::unique_ptr<SknnEngine> local;
    std::unique_ptr<C2Service> c2;
    std::unique_ptr<RpcServer> c2_server;
    std::unique_ptr<SknnEngine> engine;
    PlainRecord query;
  };
  std::vector<Backing> tables;
  std::vector<std::string> names;
  TableRegistry registry;
  std::unique_ptr<QueryService> service;

  ~MultiTableStack() {
    if (service != nullptr) service->Shutdown();
  }
};

// unique_ptr: the registry's mutex makes the stack immovable.
std::unique_ptr<MultiTableStack> MakeMultiStack(std::size_t num_tables,
                                                std::size_t n, std::size_t m,
                                                unsigned l, unsigned key_bits,
                                                std::size_t threads) {
  auto stack_ptr = std::make_unique<MultiTableStack>();
  MultiTableStack& stack = *stack_ptr;
  for (std::size_t t = 0; t < num_tables; ++t) {
    MultiTableStack::Backing backing;
    EngineSetup setup =
        MakeEngine(n, m, l, key_bits, threads, /*seed=*/101 + t);
    backing.local = std::move(setup.engine);
    backing.query = std::move(setup.query);

    // Smaller randomizer stock than the single-table stack: up to four of
    // these C2s refill in the background at once.
    RemoteC2Backing remote = ConnectRemoteEngine(
        *backing.local, threads, /*pool_capacity=*/256,
        /*intra_message_parallelism=*/false);
    backing.c2 = std::move(remote.c2);
    backing.c2_server = std::move(remote.c2_server);
    backing.engine = std::move(remote.engine);
    stack.names.push_back("table" + std::to_string(t));
    stack.tables.push_back(std::move(backing));
  }
  for (std::size_t t = 0; t < num_tables; ++t) {
    Status s = stack.registry.Register(stack.names[t],
                                      stack.tables[t].engine.get());
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  QueryService::Options service_options;
  service_options.max_in_flight = 16;
  stack.service =
      std::make_unique<QueryService>(&stack.registry, service_options);
  if (Status s = stack.service->Start(0); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::exit(1);
  }
  return stack_ptr;
}

// Each client owns one connection and hammers ONE table (client c ->
// table c mod T): with T = 1 every client contends on one engine, with
// T = clients each table serves exactly one client.
Point DriveMultiTableClients(MultiTableStack& stack, std::size_t num_clients,
                             std::size_t total_queries,
                             QueryProtocol protocol) {
  Stopwatch watch;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < num_clients; ++c) {
    std::size_t share = total_queries / num_clients +
                        (c < total_queries % num_clients ? 1 : 0);
    const std::size_t table = c % stack.tables.size();
    clients.emplace_back([&, share, table] {
      QueryRequest request;
      request.table = stack.names[table];
      request.record = stack.tables[table].query;
      request.protocol = protocol;
      request.k = 2;
      auto client =
          RemoteQueryClient::Connect("127.0.0.1", stack.service->port());
      if (!client.ok()) std::exit(1);
      for (std::size_t q = 0; q < share; ++q) {
        auto response = (*client)->Query(request);
        if (!response.ok()) {
          std::fprintf(stderr, "multi-table query failed: %s\n",
                       response.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  return {num_clients, total_queries, watch.ElapsedSeconds()};
}

Point DriveClients(ServingStack& stack, std::size_t num_clients,
                   std::size_t total_queries, QueryProtocol protocol) {
  QueryRequest request;
  request.record = stack.query;
  request.protocol = protocol;
  request.k = 2;
  Stopwatch watch;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < num_clients; ++c) {
    std::size_t share = total_queries / num_clients +
                        (c < total_queries % num_clients ? 1 : 0);
    clients.emplace_back([&, share] {
      auto client =
          RemoteQueryClient::Connect("127.0.0.1", stack.service->port());
      if (!client.ok()) std::exit(1);
      for (std::size_t q = 0; q < share; ++q) {
        auto response = (*client)->Query(request);
        if (!response.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       response.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  return {num_clients, total_queries, watch.ElapsedSeconds()};
}

// -- QoS series (PR 10): local engines behind one registry-backed service
// (the serving path over loopback TCP stays real; the miss path runs the
// full protocol in-process).

struct QosStack {
  struct Backing {
    std::unique_ptr<SknnEngine> engine;
    PlainRecord query;
  };
  std::vector<Backing> tables;
  std::vector<std::string> names;
  TableRegistry registry;
  std::unique_ptr<QueryService> service;

  ~QosStack() {
    if (service != nullptr) service->Shutdown();
  }
};

struct QosTableSpec {
  const char* name;
  uint32_t weight;
};

// unique_ptr for the same reason as MakeMultiStack.
std::unique_ptr<QosStack> MakeQosStack(const std::vector<QosTableSpec>& specs,
                                       std::size_t n, std::size_t m,
                                       unsigned l, unsigned key_bits,
                                       std::size_t threads,
                                       std::size_t max_in_flight,
                                       std::size_t cache_bytes) {
  auto stack_ptr = std::make_unique<QosStack>();
  QosStack& stack = *stack_ptr;
  for (std::size_t t = 0; t < specs.size(); ++t) {
    QosStack::Backing backing;
    EngineSetup setup =
        MakeEngine(n, m, l, key_bits, threads, /*seed=*/301 + t);
    backing.engine = std::move(setup.engine);
    backing.query = std::move(setup.query);
    stack.names.emplace_back(specs[t].name);
    stack.tables.push_back(std::move(backing));
  }
  for (std::size_t t = 0; t < specs.size(); ++t) {
    Status s = stack.registry.Register(stack.names[t],
                                       stack.tables[t].engine.get());
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
    TableRegistry::Entry* entry = stack.registry.Find(stack.names[t]);
    entry->qos_weight = specs[t].weight;
    if (cache_bytes > 0) {
      entry->cache.set_budget(cache_bytes, ResultCache::kDefaultMaxEntries);
    }
  }
  QueryService::Options service_options;
  service_options.max_in_flight = max_in_flight;
  stack.service =
      std::make_unique<QueryService>(&stack.registry, service_options);
  if (Status s = stack.service->Start(0); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::exit(1);
  }
  return stack_ptr;
}

// Zipf(s) over ranks [0, n): CDF inversion over precomputed cumulative
// weights — rank 0 is the hot query, the tail is cold.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s, uint64_t seed) : rng_(seed) {
    double total = 0;
    for (std::size_t i = 1; i <= n; ++i) {
      cdf_.push_back(total += 1.0 / std::pow(static_cast<double>(i), s));
    }
    for (double& c : cdf_) c /= total;
  }
  std::size_t Next() {
    return static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), dist_(rng_)) -
        cdf_.begin());
  }

 private:
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  std::vector<double> cdf_;
};

struct SkewedPoint {
  std::size_t queries = 0;
  double seconds = 0;
  std::vector<double> latencies;  // per-query, merged across clients
  uint64_t hits = 0;
  uint64_t misses = 0;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  std::size_t idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, idx == 0 ? 0 : idx - 1)];
}

// `clients` connections replay the same Zipf(s) popularity law over
// `pool` (each with its own stream, so the interleaving varies but the
// marginal distribution is the skew under test).
SkewedPoint DriveZipfClients(QosStack& stack, const std::string& table,
                             const std::vector<PlainRecord>& pool,
                             std::size_t clients, std::size_t per_client,
                             double zipf_s) {
  SkewedPoint point;
  point.queries = clients * per_client;
  Mutex merge_mutex;
  Stopwatch watch;
  std::vector<std::thread> drivers;
  for (std::size_t c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c] {
      ZipfSampler zipf(pool.size(), zipf_s, /*seed=*/701 + c);
      auto client =
          RemoteQueryClient::Connect("127.0.0.1", stack.service->port());
      if (!client.ok()) std::exit(1);
      std::vector<double> latencies;
      latencies.reserve(per_client);
      for (std::size_t q = 0; q < per_client; ++q) {
        QueryRequest request;
        request.table = table;
        request.record = pool[zipf.Next()];
        request.protocol = QueryProtocol::kBasic;
        request.k = 2;
        Stopwatch one;
        auto response = (*client)->Query(request);
        if (!response.ok()) {
          std::fprintf(stderr, "zipf query failed: %s\n",
                       response.status().ToString().c_str());
          std::exit(1);
        }
        latencies.push_back(one.ElapsedSeconds());
      }
      MutexLock lock(&merge_mutex);
      point.latencies.insert(point.latencies.end(), latencies.begin(),
                             latencies.end());
    });
  }
  for (auto& t : drivers) t.join();
  point.seconds = watch.ElapsedSeconds();
  const ResultCache::Stats cache = stack.registry.Find(table)->cache.stats();
  point.hits = cache.hits;
  point.misses = cache.misses;
  return point;
}

struct FairnessPoint {
  uint64_t light_completed = 0;
  double light_seconds = 0;
  uint64_t heavy_completed = 0;
  uint64_t heavy_rejected = 0;
  uint32_t heavy_share = 0;
  uint32_t light_share = 0;
};

// Floods the weight-8 table with `flood_clients` tight loops while ONE
// light client works through `light_queries` on the weight-1 table; the
// light tenant's wall clock is the fairness headline — under the PR-3
// service-wide budget the flood could starve it outright.
FairnessPoint DriveFairnessFlood(QosStack& stack, std::size_t flood_clients,
                                 std::size_t light_queries) {
  FairnessPoint point;
  RetryPolicy patient;
  patient.max_attempts = 100000;
  patient.initial_backoff = std::chrono::milliseconds(1);
  patient.max_backoff = std::chrono::milliseconds(20);
  patient.max_elapsed = std::chrono::milliseconds(0);
  std::atomic<bool> flood_on{true};
  std::vector<std::thread> flood;
  for (std::size_t c = 0; c < flood_clients; ++c) {
    flood.emplace_back([&] {
      QueryRequest request;
      request.table = stack.names[0];
      request.record = stack.tables[0].query;
      request.protocol = QueryProtocol::kBasic;
      request.k = 2;
      auto client =
          RemoteQueryClient::Connect("127.0.0.1", stack.service->port());
      if (!client.ok()) std::exit(1);
      while (flood_on.load()) {
        // Plain Query, not QueryWithRetry: rejected floods re-arrive
        // instantly, keeping the admission gate saturated.
        (void)(*client)->Query(request);
      }
    });
  }
  {
    QueryRequest request;
    request.table = stack.names[1];
    request.record = stack.tables[1].query;
    request.protocol = QueryProtocol::kBasic;
    request.k = 2;
    auto client =
        RemoteQueryClient::Connect("127.0.0.1", stack.service->port());
    if (!client.ok()) std::exit(1);
    Stopwatch watch;
    for (std::size_t q = 0; q < light_queries; ++q) {
      auto response = (*client)->QueryWithRetry(request, patient);
      if (!response.ok()) {
        std::fprintf(stderr, "light tenant starved: %s\n",
                     response.status().ToString().c_str());
        std::exit(1);
      }
    }
    point.light_seconds = watch.ElapsedSeconds();
    point.light_completed = light_queries;
    flood_on.store(false);
    for (auto& t : flood) t.join();
    auto stats = (*client)->ServiceStats();
    if (!stats.ok()) std::exit(1);
    for (const TableStatsEntry& entry : stats->tables) {
      if (entry.name == stack.names[0]) {
        point.heavy_completed = entry.completed;
        point.heavy_rejected = entry.rejected;
        point.heavy_share = entry.share_limit;
      } else if (entry.name == stack.names[1]) {
        point.light_share = entry.share_limit;
      }
    }
  }
  return point;
}

}  // namespace
}  // namespace bench
}  // namespace sknn

int main(int argc, char** argv) {
  using namespace sknn;
  using namespace sknn::bench;
  std::string json_path;
  const bool emit_json = ConsumeJsonFlag(&argc, argv, &json_path);

  const unsigned key_bits = PaperScale() ? 512 : 256;
  const std::size_t n = PaperScale() ? 64 : 16;
  const std::size_t m = 2;
  const unsigned l = 8;
  const std::size_t threads = std::min<std::size_t>(4, BenchThreads());
  const std::vector<std::size_t> client_grid = {1, 4, 8};

  PrintHeader("serving", "thin-client throughput vs concurrency",
              "thin client -> QueryService -> engine -> remote C2 (loopback)");
  ServingStack stack = MakeStack(n, m, l, key_bits, threads);

  // Sanity: the served path answers exactly like the local engine.
  {
    QueryRequest request;
    request.record = stack.query;
    request.k = 2;
    request.protocol = QueryProtocol::kBasic;
    auto local = stack.local->Query(request);
    auto client =
        RemoteQueryClient::Connect("127.0.0.1", stack.service->port());
    if (!client.ok()) return 1;
    auto remote = (*client)->Query(request);
    if (!local.ok() || !remote.ok() || local->records != remote->records) {
      std::fprintf(stderr, "served result does not match local engine\n");
      return 1;
    }
  }

  struct Series {
    const char* name;
    QueryProtocol protocol;
    std::size_t total_queries;
    std::vector<Point> points;
  };
  std::vector<Series> all = {
      {"basic", QueryProtocol::kBasic, std::size_t{16}, {}},
      {"secure", QueryProtocol::kSecure, std::size_t{8}, {}},
  };
  for (auto& series : all) {
    std::printf("# protocol=%s  queries=%zu\n", series.name,
                series.total_queries);
    std::printf("%-8s %-10s %-10s %-8s\n", "clients", "seconds", "qps",
                "speedup");
    double serial_seconds = 0;
    for (std::size_t clients : client_grid) {
      Point point =
          DriveClients(stack, clients, series.total_queries, series.protocol);
      if (clients == 1) serial_seconds = point.seconds;
      series.points.push_back(point);
      std::printf("%-8zu %-10.3f %-10.2f %-8.2f\n", point.clients,
                  point.seconds, point.queries / point.seconds,
                  serial_seconds / point.seconds);
    }
  }

  if (emit_json) {
    std::ostringstream os;
    os << "{\n    \"key_bits\": " << key_bits << ", \"n\": " << n
       << ", \"m\": " << m << ", \"l\": " << l
       << ", \"c1_threads\": " << threads;
    for (const auto& series : all) {
      os << ",\n    \"" << series.name << "\": [";
      for (std::size_t i = 0; i < series.points.size(); ++i) {
        const Point& point = series.points[i];
        os << (i ? ", " : "") << "{\"clients\": " << point.clients
           << ", \"queries\": " << point.queries
           << ", \"seconds\": " << point.seconds
           << ", \"qps\": " << point.queries / point.seconds << "}";
      }
      os << "]";
    }
    os << "\n  }";
    MergeJsonSection(BenchJsonPath(json_path, "BENCH_PR3.json"), "serving",
                     os.str());
  }

  // Tear the single-table stack down before standing up the multi-table
  // grids: on a small CI box the background randomizer refills of five
  // live C2s would distort the comparison.
  stack.service->Shutdown();

  // -- Multi-table series (PR 5): 1 vs 4 tables under the same client load.
  std::printf("# multi-table: %zu clients spread across T tables "
              "(basic protocol)\n",
              std::size_t{4});
  std::printf("%-8s %-8s %-10s %-10s\n", "tables", "clients", "seconds",
              "qps");
  struct MultiPoint {
    std::size_t tables = 0;
    Point point;
  };
  std::vector<MultiPoint> multi_points;
  const std::size_t multi_clients = 4;
  const std::size_t multi_queries = PaperScale() ? 32 : 16;
  for (std::size_t num_tables : {std::size_t{1}, std::size_t{4}}) {
    std::unique_ptr<MultiTableStack> multi =
        MakeMultiStack(num_tables, n, m, l, key_bits, threads);
    Point point = DriveMultiTableClients(*multi, multi_clients,
                                         multi_queries,
                                         QueryProtocol::kBasic);
    multi_points.push_back({num_tables, point});
    std::printf("%-8zu %-8zu %-10.3f %-10.2f\n", num_tables, point.clients,
                point.seconds, point.queries / point.seconds);
  }

  if (emit_json) {
    std::ostringstream os;
    os << "{\n    \"key_bits\": " << key_bits << ", \"n\": " << n
       << ", \"m\": " << m << ", \"l\": " << l
       << ", \"c1_threads\": " << threads
       << ", \"clients\": " << multi_clients << ",\n    \"series\": [";
    for (std::size_t i = 0; i < multi_points.size(); ++i) {
      const MultiPoint& mp = multi_points[i];
      os << (i ? ", " : "") << "{\"tables\": " << mp.tables
         << ", \"queries\": " << mp.point.queries
         << ", \"seconds\": " << mp.point.seconds
         << ", \"qps\": " << mp.point.queries / mp.point.seconds << "}";
    }
    os << "]\n  }";
    MergeJsonSection(BenchJsonPath(json_path, "BENCH_PR5.json"),
                     "serving_multi_table", os.str());
  }

  // -- QoS series (PR 10a): Zipf-skewed traffic, result cache off vs on.
  const double zipf_s = 1.1;
  const std::size_t distinct_queries = 8;
  const std::size_t zipf_clients = 4;
  const std::size_t zipf_per_client = PaperScale() ? 24 : 8;
  const int64_t max_value = MaxValueForDistanceBits(m, l);
  std::vector<PlainRecord> query_pool;
  for (std::size_t i = 0; i < distinct_queries; ++i) {
    query_pool.push_back(GenerateUniformQuery(m, max_value, 801 + i));
  }
  std::printf("# cache: zipf(s=%.1f) over %zu distinct queries, %zu clients "
              "x %zu queries (basic protocol)\n",
              zipf_s, distinct_queries, zipf_clients, zipf_per_client);
  std::printf("%-8s %-10s %-10s %-12s %-10s\n", "cache", "seconds", "qps",
              "p95_ms", "hit_rate");
  struct CacheRun {
    const char* label;
    std::size_t cache_bytes;
    SkewedPoint point;
  };
  std::vector<CacheRun> cache_runs = {
      {"off", 0, {}},
      {"on", ResultCache::kDefaultMaxBytes, {}},
  };
  for (CacheRun& run : cache_runs) {
    std::unique_ptr<QosStack> qos =
        MakeQosStack({{"hot", 1}}, n, m, l, key_bits, threads,
                     /*max_in_flight=*/16, run.cache_bytes);
    run.point = DriveZipfClients(*qos, "hot", query_pool, zipf_clients,
                                 zipf_per_client, zipf_s);
    const uint64_t lookups = run.point.hits + run.point.misses;
    const double hit_rate =
        lookups == 0 ? 0
                     : static_cast<double>(run.point.hits) /
                           static_cast<double>(lookups);
    std::printf("%-8s %-10.3f %-10.2f %-12.3f %-10.3f\n", run.label,
                run.point.seconds,
                run.point.queries / run.point.seconds,
                Percentile(run.point.latencies, 0.95) * 1e3, hit_rate);
  }

  // -- QoS series (PR 10b): weighted fairness under a flood. Five clients
  // flood the weight-8 table through a 4-slot budget (oversubscribing its
  // fair share, so rejections are visible); the weight-1 tenant must still
  // make steady progress off its guaranteed share.
  const std::size_t flood_clients = 5;
  const std::size_t light_queries = PaperScale() ? 8 : 4;
  std::unique_ptr<QosStack> fair =
      MakeQosStack({{"heavy", 8}, {"light", 1}}, n, m, l, key_bits, threads,
                   /*max_in_flight=*/4, /*cache_bytes=*/0);
  FairnessPoint fairness = DriveFairnessFlood(*fair, flood_clients,
                                              light_queries);
  std::printf("# fairness: %zu flood clients on heavy(w=8), light(w=1) runs "
              "%zu queries; shares heavy=%u light=%u\n",
              flood_clients, light_queries, fairness.heavy_share,
              fairness.light_share);
  std::printf("light: %zu queries in %.3fs (%.2f qps)  heavy: %llu "
              "completed, %llu rejected\n",
              light_queries, fairness.light_seconds,
              fairness.light_completed / fairness.light_seconds,
              static_cast<unsigned long long>(fairness.heavy_completed),
              static_cast<unsigned long long>(fairness.heavy_rejected));

  if (emit_json) {
    std::ostringstream os;
    os << "{\n    \"key_bits\": " << key_bits << ", \"n\": " << n
       << ", \"m\": " << m << ", \"l\": " << l
       << ", \"zipf_s\": " << zipf_s
       << ", \"distinct_queries\": " << distinct_queries
       << ", \"clients\": " << zipf_clients << ",\n    \"cache\": [";
    for (std::size_t i = 0; i < cache_runs.size(); ++i) {
      const SkewedPoint& point = cache_runs[i].point;
      const uint64_t lookups = point.hits + point.misses;
      os << (i ? ", " : "") << "{\"cache\": \"" << cache_runs[i].label
         << "\", \"queries\": " << point.queries
         << ", \"seconds\": " << point.seconds
         << ", \"qps\": " << point.queries / point.seconds
         << ", \"p95_seconds\": " << Percentile(point.latencies, 0.95)
         << ", \"hits\": " << point.hits << ", \"misses\": " << point.misses
         << ", \"hit_rate\": "
         << (lookups == 0
                 ? 0
                 : static_cast<double>(point.hits) /
                       static_cast<double>(lookups))
         << "}";
    }
    os << "],\n    \"fairness\": {\"max_in_flight\": 4, \"heavy_weight\": 8"
       << ", \"light_weight\": 1, \"flood_clients\": " << flood_clients
       << ", \"heavy_share\": " << fairness.heavy_share
       << ", \"light_share\": " << fairness.light_share
       << ", \"light_queries\": " << fairness.light_completed
       << ", \"light_seconds\": " << fairness.light_seconds
       << ", \"light_qps\": "
       << fairness.light_completed / fairness.light_seconds
       << ", \"heavy_completed\": " << fairness.heavy_completed
       << ", \"heavy_rejected\": " << fairness.heavy_rejected << "}\n  }";
    MergeJsonSection(BenchJsonPath(json_path, "BENCH_PR10.json"),
                     "serving_cache_fairness", os.str());
  }
  return 0;
}
