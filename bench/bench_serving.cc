// bench_serving — multi-client throughput of the serving front end (PR 3).
//
// Stands up the full four-party topology in one process but over real
// loopback sockets — standalone C2 behind a TCP RpcServer, a
// CreateWithRemoteC2 engine, a QueryService — then drives it with 1/4/8
// concurrent thin clients (serve/RemoteQueryClient, one connection each)
// and reports aggregate queries/second per protocol. The 1-client row is
// the serial baseline; the speedup of the wider rows is what the engine's
// Submit pipelining buys the deployment.
//
//   bench_serving [--json [path]]     # JSON lands in BENCH_PR3.json
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/socket.h"
#include "serve/query_service.h"
#include "serve/remote_query_client.h"

namespace sknn {
namespace bench {
namespace {

struct ServingStack {
  std::unique_ptr<SknnEngine> local;  // keys + encrypted db come from here
  std::unique_ptr<C2Service> c2;
  std::unique_ptr<RpcServer> c2_server;
  std::unique_ptr<SknnEngine> engine;
  std::unique_ptr<QueryService> service;
  PlainRecord query;

  ServingStack() = default;
  ServingStack(ServingStack&&) = default;
  ServingStack& operator=(ServingStack&&) = default;
  ~ServingStack() {
    if (service != nullptr) service->Shutdown();
  }
};

ServingStack MakeStack(std::size_t n, std::size_t m, unsigned l,
                       unsigned key_bits, std::size_t threads) {
  ServingStack stack;
  EngineSetup setup = MakeEngine(n, m, l, key_bits, threads, /*seed=*/77);
  stack.local = std::move(setup.engine);
  stack.query = std::move(setup.query);

  stack.c2 = std::make_unique<C2Service>(
      PaillierSecretKey(stack.local->c2_service().secret_key()));
  stack.c2->EnableIntraMessageParallelism(threads);
  stack.c2->EnableRandomizerPool(/*capacity=*/1024,
                                 std::max<std::size_t>(1, threads / 2));
  auto listener = TcpListener::Bind(0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 listener.status().ToString().c_str());
    std::exit(1);
  }
  std::thread accepter([&] {
    auto accepted = listener->Accept();
    if (!accepted.ok()) std::exit(1);
    C2Service* c2_raw = stack.c2.get();
    stack.c2_server = std::make_unique<RpcServer>(
        std::move(accepted).value(),
        [c2_raw](const Message& req) { return c2_raw->Handle(req); },
        threads);
  });
  auto link = ConnectTcp("127.0.0.1", listener->port());
  accepter.join();
  if (!link.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 link.status().ToString().c_str());
    std::exit(1);
  }

  SknnEngine::Options options;
  options.c1_threads = threads;
  auto engine = SknnEngine::CreateWithRemoteC2(
      stack.local->public_key(), EncryptedDatabase(stack.local->database()),
      std::move(link).value(), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "remote engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  stack.engine = std::move(engine).value();

  QueryService::Options service_options;
  service_options.max_in_flight = 16;
  stack.service =
      std::make_unique<QueryService>(stack.engine.get(), service_options);
  if (Status s = stack.service->Start(0); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::exit(1);
  }
  return stack;
}

struct Point {
  std::size_t clients = 0;
  std::size_t queries = 0;
  double seconds = 0;
};

Point DriveClients(ServingStack& stack, std::size_t num_clients,
                   std::size_t total_queries, QueryProtocol protocol) {
  QueryRequest request;
  request.record = stack.query;
  request.protocol = protocol;
  request.k = 2;
  Stopwatch watch;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < num_clients; ++c) {
    std::size_t share = total_queries / num_clients +
                        (c < total_queries % num_clients ? 1 : 0);
    clients.emplace_back([&, share] {
      auto client =
          RemoteQueryClient::Connect("127.0.0.1", stack.service->port());
      if (!client.ok()) std::exit(1);
      for (std::size_t q = 0; q < share; ++q) {
        auto response = (*client)->Query(request);
        if (!response.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       response.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  return {num_clients, total_queries, watch.ElapsedSeconds()};
}

}  // namespace
}  // namespace bench
}  // namespace sknn

int main(int argc, char** argv) {
  using namespace sknn;
  using namespace sknn::bench;
  std::string json_path;
  const bool emit_json = ConsumeJsonFlag(&argc, argv, &json_path);

  const unsigned key_bits = PaperScale() ? 512 : 256;
  const std::size_t n = PaperScale() ? 64 : 16;
  const std::size_t m = 2;
  const unsigned l = 8;
  const std::size_t threads = std::min<std::size_t>(4, BenchThreads());
  const std::vector<std::size_t> client_grid = {1, 4, 8};

  PrintHeader("serving", "thin-client throughput vs concurrency",
              "thin client -> QueryService -> engine -> remote C2 (loopback)");
  ServingStack stack = MakeStack(n, m, l, key_bits, threads);

  // Sanity: the served path answers exactly like the local engine.
  {
    QueryRequest request;
    request.record = stack.query;
    request.k = 2;
    request.protocol = QueryProtocol::kBasic;
    auto local = stack.local->Query(request);
    auto client =
        RemoteQueryClient::Connect("127.0.0.1", stack.service->port());
    if (!client.ok()) return 1;
    auto remote = (*client)->Query(request);
    if (!local.ok() || !remote.ok() || local->records != remote->records) {
      std::fprintf(stderr, "served result does not match local engine\n");
      return 1;
    }
  }

  struct Series {
    const char* name;
    QueryProtocol protocol;
    std::size_t total_queries;
    std::vector<Point> points;
  };
  std::vector<Series> all = {
      {"basic", QueryProtocol::kBasic, std::size_t{16}, {}},
      {"secure", QueryProtocol::kSecure, std::size_t{8}, {}},
  };
  for (auto& series : all) {
    std::printf("# protocol=%s  queries=%zu\n", series.name,
                series.total_queries);
    std::printf("%-8s %-10s %-10s %-8s\n", "clients", "seconds", "qps",
                "speedup");
    double serial_seconds = 0;
    for (std::size_t clients : client_grid) {
      Point point =
          DriveClients(stack, clients, series.total_queries, series.protocol);
      if (clients == 1) serial_seconds = point.seconds;
      series.points.push_back(point);
      std::printf("%-8zu %-10.3f %-10.2f %-8.2f\n", point.clients,
                  point.seconds, point.queries / point.seconds,
                  serial_seconds / point.seconds);
    }
  }

  if (emit_json) {
    std::ostringstream os;
    os << "{\n    \"key_bits\": " << key_bits << ", \"n\": " << n
       << ", \"m\": " << m << ", \"l\": " << l
       << ", \"c1_threads\": " << threads;
    for (const auto& series : all) {
      os << ",\n    \"" << series.name << "\": [";
      for (std::size_t i = 0; i < series.points.size(); ++i) {
        const Point& point = series.points[i];
        os << (i ? ", " : "") << "{\"clients\": " << point.clients
           << ", \"queries\": " << point.queries
           << ", \"seconds\": " << point.seconds
           << ", \"qps\": " << point.queries / point.seconds << "}";
      }
      os << "]";
    }
    os << "\n  }";
    MergeJsonSection(BenchJsonPath(json_path, "BENCH_PR3.json"), "serving",
                     os.str());
  }
  return 0;
}
