// RPC failure-path coverage, parameterized over both transports the stack
// runs on — the in-memory channel and a real loopback TcpSocket: client
// shutdown with calls in flight, a handler returning an error Status, and
// the peer disconnecting mid-call. A serving deployment lives or dies by
// these paths; none of them may hang or crash.
//
// The shard channel (coordinator <-> sknn_c1_shard worker, net/
// shard_wire.h) rides the same RpcClient/RpcServer stack, so its failure
// modes are covered here too: a worker vanishing mid-kShardQuery, calls
// issued AFTER the link already died (they must fail fast — the demux
// thread is gone and nobody would ever complete them), and the typed
// kShardError frames that carry real status codes across the wire.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "net/rpc.h"
#include "net/shard_wire.h"
#include "net/socket.h"
#include "proto/context.h"

namespace sknn {
namespace {

struct EndpointPair {
  std::unique_ptr<Endpoint> client;
  std::unique_ptr<Endpoint> server;
};

EndpointPair MakePair(bool tcp) {
  if (!tcp) {
    Channel::EndpointPair link = Channel::CreatePair();
    return {std::move(link.a), std::move(link.b)};
  }
  auto listener = TcpListener::Bind(0);
  EXPECT_TRUE(listener.ok()) << listener.status();
  EndpointPair pair;
  std::thread accepter([&] {
    auto accepted = listener->Accept();
    EXPECT_TRUE(accepted.ok()) << accepted.status();
    pair.server = std::move(accepted).value();
  });
  auto connected = ConnectTcp("127.0.0.1", listener->port());
  EXPECT_TRUE(connected.ok()) << connected.status();
  pair.client = std::move(connected).value();
  accepter.join();
  return pair;
}

class RpcFailureTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(Transports, RpcFailureTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Tcp" : "Channel";
                         });

TEST_P(RpcFailureTest, ShutdownFailsCallsInFlight) {
  EndpointPair pair = MakePair(GetParam());
  // The handler stalls long enough that Shutdown() races ahead of any
  // response; the blocked Call must fail, not hang.
  RpcServer server(std::move(pair.server),
                   [](const Message& req) -> Result<Message> {
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(400));
                     Message resp;
                     resp.type = req.type;
                     return resp;
                   });
  RpcClient client(std::move(pair.client));

  Result<Message> in_flight = Status::Internal("unset");
  std::thread caller([&] {
    Message req;
    req.type = 7;
    in_flight = client.Call(std::move(req));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.Shutdown();
  caller.join();
  EXPECT_FALSE(in_flight.ok());
  EXPECT_EQ(in_flight.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(in_flight.status().message().find("link closed"),
            std::string::npos)
      << in_flight.status();

  // And the client stays failed-fast for later calls.
  Message again;
  again.type = 8;
  auto after = client.Call(std::move(again));
  EXPECT_FALSE(after.ok());
}

TEST_P(RpcFailureTest, HandlerErrorStatusSurfacesToCaller) {
  EndpointPair pair = MakePair(GetParam());
  RpcServer server(std::move(pair.server),
                   [](const Message&) -> Result<Message> {
                     return Status::Internal("handler exploded");
                   });
  RpcClient client(std::move(pair.client));

  // At the raw RPC layer the exchange succeeds and delivers the kError
  // frame with the status text.
  Message req;
  req.type = OpCode(Op::kPing);
  auto resp = client.Call(std::move(req));
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->type, OpCode(Op::kError));
  std::string text(resp->aux.begin(), resp->aux.end());
  EXPECT_NE(text.find("handler exploded"), std::string::npos) << text;

  // The protocol layer converts the frame into a ProtocolError Status.
  ProtoContext ctx(/*pk=*/nullptr, &client);
  auto converted = ctx.Call(Op::kPing, {});
  ASSERT_FALSE(converted.ok());
  EXPECT_EQ(converted.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(converted.status().message().find("handler exploded"),
            std::string::npos)
      << converted.status();
}

TEST_P(RpcFailureTest, ShardQueryAgainstDeadPeerFailsFastNotForever) {
  EndpointPair pair = MakePair(GetParam());
  // The worker dies before (or while) the coordinator speaks to it: close
  // the server side outright and give the client's demux a moment to
  // observe it.
  pair.server->Close();
  RpcClient client(std::move(pair.client));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  ShardQueryFrame frame;
  frame.query_id = 7;
  frame.k = 2;
  frame.enc_query = {Ciphertext(BigInt(123)), Ciphertext(BigInt(456))};
  // Regression: a Call AFTER the demux loop exited used to block forever if
  // the transport still buffered the send. It must fail, immediately.
  auto first = client.Call(EncodeShardQuery(frame));
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kProtocolError);
  auto second = client.Call(EncodeShardPing());
  EXPECT_FALSE(second.ok());
}

TEST_P(RpcFailureTest, ShardWorkerDisconnectMidQueryFailsTheCall) {
  EndpointPair pair = MakePair(GetParam());
  Endpoint* server_raw = pair.server.get();
  // A worker that reads the query leg and then dies without answering —
  // the kill/disconnect the shard coordinator maps to kUnavailable.
  std::thread peer([&] {
    std::vector<uint8_t> frame;
    (void)server_raw->Recv(&frame);
    server_raw->Close();
  });
  RpcClient client(std::move(pair.client));
  ShardQueryFrame frame;
  frame.query_id = 9;
  frame.k = 1;
  frame.enc_query = {Ciphertext(BigInt(5))};
  auto result = client.Call(EncodeShardQuery(frame));
  peer.join();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kProtocolError);
}

TEST_P(RpcFailureTest, ShardErrorFramesCarryStatusCodesIntact) {
  EndpointPair pair = MakePair(GetParam());
  // A live worker that answers every query frame with a typed error — the
  // path a coordinator uses to distinguish "worker says no" (real code,
  // e.g. CryptoError) from "worker is gone" (kUnavailable).
  RpcServer server(std::move(pair.server),
                   [](const Message& req) -> Result<Message> {
                     if (req.type == ShardOpCode(ShardOp::kShardPing)) {
                       return EncodeShardError(
                           Status::Unavailable("worker draining"));
                     }
                     return EncodeShardError(
                         Status::CryptoError("bad ciphertext"));
                   });
  RpcClient client(std::move(pair.client));

  auto ping = client.Call(EncodeShardPing());
  ASSERT_TRUE(ping.ok()) << ping.status();
  Status drained = DecodeShardError(*ping);
  EXPECT_EQ(drained.code(), StatusCode::kUnavailable);
  EXPECT_EQ(drained.message(), "worker draining");

  ShardQueryFrame frame;
  frame.query_id = 11;
  frame.k = 1;
  frame.enc_query = {Ciphertext(BigInt(5))};
  auto reply = client.Call(EncodeShardQuery(frame));
  ASSERT_TRUE(reply.ok()) << reply.status();
  // DecodeShardCandidates folds a kShardError frame into its Status.
  auto decoded = DecodeShardCandidates(*reply);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCryptoError);
}

TEST_P(RpcFailureTest, HungPeerResolvesToDeadlineExceededNotAStall) {
  EndpointPair pair = MakePair(GetParam());
  Endpoint* server_raw = pair.server.get();
  Mutex release_mutex;
  CondVar release_cv;
  bool released = false;
  // The silent-stall gap: a peer that READS the request and then sits on it
  // — alive (the link never closes) but never answering. Before per-call
  // timeouts, this Call blocked forever; kill -9 was the only way out.
  std::thread peer([&] {
    std::vector<uint8_t> frame;
    (void)server_raw->Recv(&frame);
    MutexLock lock(&release_mutex);
    while (!released) release_cv.Wait(release_mutex);
  });
  RpcClient client(std::move(pair.client));

  Message req;
  req.type = 7;
  const auto started = std::chrono::steady_clock::now();
  auto result = client.Call(std::move(req), std::chrono::milliseconds(200));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
  // Resolved by the timeout, not by some multi-second transport default.
  EXPECT_GE(elapsed.count(), 200);
  EXPECT_LT(elapsed.count(), 5000);

  // The client survives the timed-out call: wake the peer so the link is
  // torn down cleanly and later calls fail with the link error, not UB.
  {
    MutexLock lock(&release_mutex);
    released = true;
    release_cv.NotifyAll();
  }
  peer.join();
  client.Shutdown();
}

TEST_P(RpcFailureTest, PeerDisconnectMidCallFailsAllInFlight) {
  EndpointPair pair = MakePair(GetParam());
  Endpoint* server_raw = pair.server.get();
  // A raw peer that swallows a few requests and then slams the link shut
  // without answering any of them.
  constexpr int kCalls = 3;
  std::thread peer([&] {
    std::vector<uint8_t> frame;
    for (int i = 0; i < kCalls; ++i) {
      if (!server_raw->Recv(&frame)) break;
    }
    server_raw->Close();
  });
  RpcClient client(std::move(pair.client));

  std::vector<std::thread> callers;
  std::vector<Result<Message>> results(kCalls, Status::Internal("unset"));
  for (int i = 0; i < kCalls; ++i) {
    callers.emplace_back([&, i] {
      Message req;
      req.type = static_cast<uint16_t>(100 + i);
      results[i] = client.Call(std::move(req));
    });
  }
  for (auto& t : callers) t.join();
  peer.join();
  for (const auto& result : results) {
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kProtocolError);
  }
}

}  // namespace
}  // namespace sknn
