// The serving QoS subsystem (protocol revision 6, serve/qos/): unit tests
// of the three components — ResultCache, FairAdmission, ApiKeyAuth (plus
// the SHA-256 they build on and the client's retry matrix) — and the
// end-to-end properties over a real TCP front end:
//
//  (1) the DIFFERENTIAL cache proof, per query mode: a cache hit returns
//      records bitwise-identical to the miss that populated it, its
//      ciphertext tail decrypts (under the table's secret key) to exactly
//      those records, and the tail shares no bytes with the miss's — the
//      rerandomization that makes hits unlinkable on the wire;
//  (2) no_cache bypasses the cache without disturbing it;
//  (3) API-key auth end to end: unauthenticated and wrong-key sessions get
//      typed kPermissionDenied, an exhausted quota gets the same
//      kResourceExhausted as overload, per-key counters reach the control
//      plane;
//  (4) weighted fairness: a low-weight table keeps progressing while a
//      heavy neighbor floods the service — the max(1, ...) share floor;
//  (5) the client retries ONLY retryable codes: an invalid request burns
//      exactly one server-side attempt however generous the retry policy.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/sha256.h"
#include "core/clustering.h"
#include "core/data_owner.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "net/query_wire.h"
#include "serve/qos/api_key_auth.h"
#include "serve/qos/fair_admission.h"
#include "serve/qos/result_cache.h"
#include "serve/query_service.h"
#include "serve/remote_query_client.h"
#include "serve/table_registry.h"

namespace sknn {
namespace {

constexpr unsigned kKeyBits = 256;
constexpr unsigned kAttrBits = 4;
constexpr int64_t kMaxValue = 15;  // [0, 2^kAttrBits)

// One key pair for the whole suite: keygen is the expensive part of every
// engine build, and tables sharing a key is a supported deployment shape.
DataOwner& SharedAlice() {
  static DataOwner* alice = [] {
    auto created = DataOwner::Create(kKeyBits);
    SKNN_CHECK(created.ok()) << created.status();
    return new DataOwner(std::move(created).value());
  }();
  return *alice;
}

SknnEngine::Options BaseOptions() {
  SknnEngine::Options options;
  options.c1_threads = 2;
  options.c2_threads = 2;
  options.randomizer_pool_capacity = 32;
  return options;
}

std::unique_ptr<SknnEngine> MakeEngine(const PlainTable& table,
                                       const SknnEngine::Options& options) {
  auto db = SharedAlice().EncryptDatabase(table, kAttrBits);
  SKNN_CHECK(db.ok()) << db.status();
  auto engine = SknnEngine::CreateFromParts(
      SharedAlice().public_key(),
      PaillierSecretKey(SharedAlice().secret_key_for_c2()),
      std::move(db).value(), options);
  SKNN_CHECK(engine.ok()) << engine.status();
  return std::move(engine).value();
}

QueryRequest MakeRequest(std::string table, PlainRecord record, unsigned k,
                         QueryProtocol protocol = QueryProtocol::kBasic) {
  QueryRequest request;
  request.table = std::move(table);
  request.record = std::move(record);
  request.k = k;
  request.protocol = protocol;
  return request;
}

// ---------------------------------------------------------------------------
// SHA-256 (the fingerprint/key-digest primitive)

TEST(Sha256Test, Fips180KnownVectors) {
  EXPECT_EQ(
      Sha256::HexDigest(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      Sha256::HexDigest("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Sha256::HexDigest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                        "nopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog, "
                           "seventy-two bytes of it to cross a block";
  Sha256 streaming;
  for (char c : text) streaming.Update(&c, 1);
  EXPECT_EQ(streaming.Finish(),
            Sha256::Digest(text.data(), text.size()));
}

// ---------------------------------------------------------------------------
// ResultCache

ResultCache::CachedResult MakeCached(int64_t tag, std::size_t attrs = 4) {
  ResultCache::CachedResult cached;
  cached.response.records.push_back(PlainRecord(attrs, tag));
  return cached;
}

ResultCache::Key KeyOf(int64_t tag) {
  QueryRequest request;
  request.k = 1;
  request.record = {tag, 0};
  return ResultCache::Fingerprint("t", request);
}

TEST(ResultCacheTest, DisabledByDefault) {
  ResultCache cache;  // default budget 0 = the pre-revision-6 behavior
  EXPECT_FALSE(cache.enabled());
  cache.Insert(KeyOf(1), MakeCached(1), cache.generation());
  EXPECT_FALSE(cache.Lookup(KeyOf(1)).has_value());
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ResultCacheTest, FingerprintCoversEveryAnswerShapingField) {
  QueryRequest base;
  base.k = 2;
  base.record = {3, 1};
  base.protocol = QueryProtocol::kSecure;
  const ResultCache::Key key = ResultCache::Fingerprint("alpha", base);
  // Same inputs, same key — and EVERY answer-shaping change moves it.
  EXPECT_EQ(ResultCache::Fingerprint("alpha", base), key);
  EXPECT_NE(ResultCache::Fingerprint("beta", base), key);
  QueryRequest changed = base;
  changed.k = 3;
  EXPECT_NE(ResultCache::Fingerprint("alpha", changed), key);
  changed = base;
  changed.record = {3, 2};
  EXPECT_NE(ResultCache::Fingerprint("alpha", changed), key);
  changed = base;
  changed.protocol = QueryProtocol::kFarthest;
  EXPECT_NE(ResultCache::Fingerprint("alpha", changed), key);
  changed = base;
  changed.index_mode = IndexMode::kClustered;
  changed.probe_clusters = 2;
  const ResultCache::Key clustered =
      ResultCache::Fingerprint("alpha", changed);
  EXPECT_NE(clustered, key);
  changed.probe_clusters = 3;
  EXPECT_NE(ResultCache::Fingerprint("alpha", changed), clustered);
  // no_cache and the stats-wanting flags deliberately do NOT move the key:
  // they shape the round trip, not the answer.
  changed = base;
  changed.no_cache = true;
  changed.want_op_counts = true;
  EXPECT_EQ(ResultCache::Fingerprint("alpha", changed), key);
}

TEST(ResultCacheTest, LruEvictsTheColdestEntry) {
  ResultCache cache(/*max_bytes=*/1 << 20, /*max_entries=*/2);
  const uint64_t generation = cache.generation();
  cache.Insert(KeyOf(1), MakeCached(1), generation);
  cache.Insert(KeyOf(2), MakeCached(2), generation);
  // Touch 1, insert 3: the LRU tail is 2.
  ASSERT_TRUE(cache.Lookup(KeyOf(1)).has_value());
  cache.Insert(KeyOf(3), MakeCached(3), generation);
  EXPECT_TRUE(cache.Lookup(KeyOf(1)).has_value());
  EXPECT_FALSE(cache.Lookup(KeyOf(2)).has_value());
  EXPECT_TRUE(cache.Lookup(KeyOf(3)).has_value());
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, ByteBudgetRefusesOversizeAndEvictsToFit) {
  // A budget smaller than any entry: inserts are dropped outright.
  ResultCache tiny(/*max_bytes=*/1);
  tiny.Insert(KeyOf(1), MakeCached(1), tiny.generation());
  EXPECT_EQ(tiny.stats().entries, 0u);
  // A budget fitting exactly one entry (measured, not guessed): the second
  // insert evicts the first.
  ResultCache one(/*max_bytes=*/1 << 20);
  const uint64_t generation = one.generation();
  one.Insert(KeyOf(1), MakeCached(1, /*attrs=*/8), generation);
  ASSERT_EQ(one.stats().entries, 1u);
  const std::size_t cost = one.stats().bytes;
  one.set_budget(cost, ResultCache::kDefaultMaxEntries);
  one.Insert(KeyOf(2), MakeCached(2, /*attrs=*/8), generation);
  EXPECT_FALSE(one.Lookup(KeyOf(1)).has_value());
  EXPECT_TRUE(one.Lookup(KeyOf(2)).has_value());
  EXPECT_LE(one.stats().bytes, cost);
}

TEST(ResultCacheTest, InvalidateClearsAndRefusesStaleGenerations) {
  ResultCache cache(1 << 20);
  const uint64_t pinned = cache.generation();
  cache.Insert(KeyOf(1), MakeCached(1), pinned);
  ASSERT_TRUE(cache.Lookup(KeyOf(1)).has_value());
  cache.Invalidate();
  // Cleared, and the pre-invalidation generation can no longer insert —
  // the hot-reload race: a query that pinned `pinned` before the reload
  // computed its answer against the replaced engine.
  EXPECT_FALSE(cache.Lookup(KeyOf(1)).has_value());
  cache.Insert(KeyOf(1), MakeCached(1), pinned);
  EXPECT_FALSE(cache.Lookup(KeyOf(1)).has_value());
  // The NEW generation inserts fine.
  cache.Insert(KeyOf(1), MakeCached(1), cache.generation());
  EXPECT_TRUE(cache.Lookup(KeyOf(1)).has_value());
}

// ---------------------------------------------------------------------------
// FairAdmission

TEST(FairAdmissionTest, WeightedSharesWithStarvationFloor) {
  FairAdmission admission(
      /*total=*/8, {{"table 'heavy'", /*weight=*/3},
                    {"table 'light'", /*weight=*/1}});
  EXPECT_EQ(admission.share_limit(0), 6u);  // 8 * 3/4
  EXPECT_EQ(admission.share_limit(1), 2u);  // 8 * 1/4
  // However lopsided the weights, the floor keeps every principal at >= 1.
  FairAdmission lopsided(/*total=*/4, {{"a", 1}, {"b", 1000}});
  EXPECT_EQ(lopsided.share_limit(0), 1u);
  EXPECT_GE(lopsided.share_limit(1), 1u);

  // heavy may take its 6 slots, not a 7th — even with the budget free.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(admission.TryAdmit(0).ok()) << i;
  }
  Status over_share = admission.TryAdmit(0);
  ASSERT_FALSE(over_share.ok());
  EXPECT_EQ(over_share.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(over_share.message().find("fair share"), std::string::npos);
  // light's reserved slots are untouched by heavy's saturation.
  ASSERT_TRUE(admission.TryAdmit(1).ok());
  ASSERT_TRUE(admission.TryAdmit(1).ok());
  Status light_full = admission.TryAdmit(1);
  ASSERT_FALSE(light_full.ok());
  EXPECT_EQ(light_full.code(), StatusCode::kResourceExhausted);
  // Releases reopen exactly what they held.
  admission.Release(0);
  EXPECT_TRUE(admission.TryAdmit(0).ok());
  EXPECT_EQ(admission.in_flight(0), 6u);
  EXPECT_EQ(admission.in_flight(1), 2u);
}

TEST(FairAdmissionTest, TokenBucketBoundsSustainedRate) {
  // A bucket of 2 with a (practically) never-refilling rate: exactly two
  // admissions pass, the third is a typed rate rejection — deterministic,
  // no sleeps.
  FairAdmission admission(
      /*total=*/8, {{"table 'limited'", /*weight=*/1, /*rate=*/1e-9,
                     /*burst=*/2}});
  ASSERT_TRUE(admission.TryAdmit(0).ok());
  ASSERT_TRUE(admission.TryAdmit(0).ok());
  Status limited = admission.TryAdmit(0);
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(limited.message().find("rate"), std::string::npos);
  // Releasing concurrency does NOT refill the bucket: rate bounds
  // throughput, not in-flight.
  admission.Release(0);
  admission.Release(0);
  EXPECT_FALSE(admission.TryAdmit(0).ok());
}

TEST(FairAdmissionTest, ShareRejectionDoesNotBurnATokenOrASlot) {
  FairAdmission admission(
      /*total=*/4, {{"a", /*weight=*/1, /*rate=*/1e-9, /*burst=*/2},
                    {"b", /*weight=*/3}});
  // a's share of 4 slots at weight 1/4 is the floor: 1.
  ASSERT_EQ(admission.share_limit(0), 1u);
  ASSERT_TRUE(admission.TryAdmit(0).ok());
  // The share rejection below must not charge the second token...
  ASSERT_FALSE(admission.TryAdmit(0).ok());
  admission.Release(0);
  // ...which this admission still gets to spend.
  EXPECT_TRUE(admission.TryAdmit(0).ok());
}

// ---------------------------------------------------------------------------
// ApiKeyAuth

TEST(ApiKeyAuthTest, AuthenticateQuotaRefundAndSnapshot) {
  auto auth = ApiKeyAuth::FromEntries({
      {"tenant-a", "secret-a", /*quota=*/2, /*weight=*/3},
      {"tenant-b", "secret-b", /*quota=*/0, /*weight=*/1},
  });
  ASSERT_TRUE(auth.ok()) << auth.status();
  auto a = (*auth)->Authenticate("secret-a");
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ((*auth)->id(*a), "tenant-a");
  EXPECT_EQ((*auth)->weight(*a), 3u);
  auto bad = (*auth)->Authenticate("wrong");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kPermissionDenied);

  // Quota 2: two charges pass, the third is typed kResourceExhausted...
  ASSERT_TRUE((*auth)->ChargeQuery(*a).ok());
  ASSERT_TRUE((*auth)->ChargeQuery(*a).ok());
  Status spent = (*auth)->ChargeQuery(*a);
  ASSERT_FALSE(spent.ok());
  EXPECT_EQ(spent.code(), StatusCode::kResourceExhausted);
  // ...and a refund (a charge whose query was then rejected downstream)
  // reopens exactly one.
  (*auth)->RefundQuery(*a);
  EXPECT_TRUE((*auth)->ChargeQuery(*a).ok());
  // Quota 0 = unlimited.
  auto b = (*auth)->Authenticate("secret-b");
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE((*auth)->ChargeQuery(*b).ok());

  (*auth)->NoteCompleted(*a);
  (*auth)->NoteDenied(*a);
  const std::vector<ApiKeyAuth::KeyStats> stats = (*auth)->Snapshot();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].id, "tenant-a");
  EXPECT_EQ(stats[0].completed, 1u);
  EXPECT_EQ(stats[0].denied, 1u);
  EXPECT_EQ(stats[0].quota_rejected, 1u);
  EXPECT_EQ(stats[0].quota, 2u);
  EXPECT_EQ(stats[0].remaining, 0u);
  EXPECT_EQ(stats[1].quota, 0u);
}

TEST(ApiKeyAuthTest, KeysFileParsingAndItsFailureModes) {
  const std::string path = "qos_keys_test.tmp";
  auto write = [&path](const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    out << text;
  };
  // The documented format, comments and blank lines included.
  write("# serving keys\n\n"
        "tenant-a:" + Sha256::HexDigest("secret-a") + ":100:3\n"
        "tenant-b:" + Sha256::HexDigest("secret-b") + ":0:1\n");
  auto auth = ApiKeyAuth::LoadFromFile(path);
  ASSERT_TRUE(auth.ok()) << auth.status();
  EXPECT_EQ((*auth)->size(), 2u);
  EXPECT_TRUE((*auth)->Authenticate("secret-a").ok());
  EXPECT_FALSE((*auth)->Authenticate("secret-c").ok());

  // Malformed digest (wrong length / non-hex): refused, named line.
  write("tenant-a:deadbeef:100:3\n");
  EXPECT_FALSE(ApiKeyAuth::LoadFromFile(path).ok());
  // Duplicate id: refused.
  const std::string digest = Sha256::HexDigest("k");
  write("dup:" + digest + ":0:1\ndup:" + digest + ":0:1\n");
  EXPECT_FALSE(ApiKeyAuth::LoadFromFile(path).ok());
  // An empty key set authenticates nobody — misconfiguration, not open door.
  write("# only comments\n");
  EXPECT_FALSE(ApiKeyAuth::LoadFromFile(path).ok());
  // Missing file.
  EXPECT_FALSE(ApiKeyAuth::LoadFromFile("no-such-keys-file.tmp").ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The client retry matrix

TEST(RetryMatrixTest, OnlyOverloadLossAndDeadlineAreRetryable) {
  EXPECT_TRUE(RetryableStatusCode(StatusCode::kResourceExhausted));
  EXPECT_TRUE(RetryableStatusCode(StatusCode::kUnavailable));
  EXPECT_TRUE(RetryableStatusCode(StatusCode::kDeadlineExceeded));
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kProtocolError, StatusCode::kCryptoError,
        StatusCode::kIoError, StatusCode::kNotFound,
        StatusCode::kPermissionDenied}) {
    EXPECT_FALSE(RetryableStatusCode(code))
        << StatusCodeName(code) << " must fail fast";
  }
}

// ---------------------------------------------------------------------------
// End to end over TCP

struct TableConfig {
  std::string name;
  PlainTable table;
  uint32_t weight = 1;
  std::size_t cache_bytes = ResultCache::kDefaultMaxBytes;
  std::shared_ptr<const ClusterManifest> clusters;
};

// Registry + engines + QueryService on a loopback port, with per-table QoS
// knobs and optional API-key auth — the in-test sknn_c1_server of this
// suite.
class QosTopology {
 public:
  explicit QosTopology(std::vector<TableConfig> tables,
                       std::size_t max_in_flight = 8,
                       std::vector<ApiKeyAuth::KeyEntry> keys = {}) {
    for (TableConfig& config : tables) {
      SknnEngine::Options options = BaseOptions();
      options.clusters = config.clusters;
      SKNN_CHECK(registry_
                     .Register(config.name,
                               MakeEngine(config.table, options))
                     .ok());
      TableRegistry::Entry* entry = registry_.Find(config.name);
      entry->qos_weight = config.weight;
      entry->cache.set_budget(config.cache_bytes,
                              ResultCache::kDefaultMaxEntries);
    }
    QueryService::Options options;
    options.max_in_flight = max_in_flight;
    service_ = std::make_unique<QueryService>(&registry_, options);
    if (!keys.empty()) {
      auto auth = ApiKeyAuth::FromEntries(keys);
      SKNN_CHECK(auth.ok()) << auth.status();
      service_->set_api_key_auth(std::move(auth).value());
    }
    Status started = service_->Start(0);
    SKNN_CHECK(started.ok()) << started;
  }

  ~QosTopology() { service_->Shutdown(); }

  QueryService& service() { return *service_; }

  std::unique_ptr<RemoteQueryClient> NewClient(
      const std::string& api_key = "") {
    auto client = RemoteQueryClient::Connect("127.0.0.1", service_->port());
    SKNN_CHECK(client.ok()) << client.status();
    if (!api_key.empty()) (*client)->set_api_key(api_key);
    return std::move(client).value();
  }

 private:
  TableRegistry registry_;
  std::unique_ptr<QueryService> service_;
};

// Decrypts a response's ciphertext tail under the suite's table key.
std::vector<int64_t> DecryptTail(
    const std::vector<std::vector<uint8_t>>& tail) {
  std::vector<int64_t> out;
  out.reserve(tail.size());
  for (const std::vector<uint8_t>& bytes : tail) {
    auto value = SharedAlice().secret_key_for_c2().Decrypt(
        Ciphertext(BigInt::FromBytes(bytes)));
    auto as_int = value.ToInt64();
    SKNN_CHECK(as_int.ok()) << as_int.status();
    out.push_back(*as_int);
  }
  return out;
}

std::vector<int64_t> Flatten(const PlainTable& records) {
  std::vector<int64_t> out;
  for (const PlainRecord& record : records) {
    out.insert(out.end(), record.begin(), record.end());
  }
  return out;
}

TEST(QosServingTest, CacheDifferentialProofPerQueryMode) {
  PlainTable table = GenerateClusteredTable(18, 2, kMaxValue, {3, 1}, 910);
  auto clusters = BuildClusterManifest(table, 3, 911,
                                       SharedAlice().public_key());
  ASSERT_TRUE(clusters.ok()) << clusters.status();
  QosTopology topology({{
      "alpha", table, /*weight=*/1, ResultCache::kDefaultMaxBytes,
      std::make_shared<const ClusterManifest>(std::move(clusters).value())}});
  auto client = topology.NewClient();

  // Every query mode the wire can express: the three protocols in exact
  // mode, plus the clustered index (whose fingerprint must keep distinct
  // probe budgets apart — covered by the unit test above).
  std::vector<QueryRequest> requests = {
      MakeRequest("alpha", {7, 3}, 2, QueryProtocol::kBasic),
      MakeRequest("alpha", {7, 3}, 2, QueryProtocol::kSecure),
      MakeRequest("alpha", {7, 3}, 2, QueryProtocol::kFarthest),
  };
  QueryRequest clustered =
      MakeRequest("alpha", {7, 3}, 2, QueryProtocol::kSecure);
  clustered.index_mode = IndexMode::kClustered;
  clustered.probe_clusters = 2;
  requests.push_back(clustered);

  for (const QueryRequest& request : requests) {
    SCOPED_TRACE(std::string(QueryProtocolName(request.protocol)) +
                 (request.index_mode == IndexMode::kClustered ? "/clustered"
                                                              : "/exact"));
    auto miss = client->Query(request);
    ASSERT_TRUE(miss.ok()) << miss.status();
    EXPECT_FALSE(miss->cache_hit);
    ASSERT_FALSE(miss->encrypted_records.empty());

    auto hit = client->Query(request);
    ASSERT_TRUE(hit.ok()) << hit.status();
    EXPECT_TRUE(hit->cache_hit);

    // The differential proof. (1) Records bitwise equal after decryption
    // of the demo wire: the hit IS the miss's answer.
    EXPECT_EQ(hit->records, miss->records);
    // (2) The ciphertext tails decrypt — under the TABLE's secret key,
    // which only this test and the real C2 hold — to exactly the records.
    const std::vector<int64_t> expected = Flatten(miss->records);
    EXPECT_EQ(DecryptTail(miss->encrypted_records), expected);
    EXPECT_EQ(DecryptTail(hit->encrypted_records), expected);
    // (3) Unlinkability: the rerandomized hit shares NO ciphertext with
    // the miss on the wire.
    ASSERT_EQ(hit->encrypted_records.size(), miss->encrypted_records.size());
    for (std::size_t i = 0; i < hit->encrypted_records.size(); ++i) {
      EXPECT_NE(hit->encrypted_records[i], miss->encrypted_records[i])
          << "ciphertext " << i << " rode the wire twice unrefreshed";
    }
    // And two hits differ from each other, too.
    auto hit2 = client->Query(request);
    ASSERT_TRUE(hit2.ok()) << hit2.status();
    ASSERT_TRUE(hit2->cache_hit);
    EXPECT_EQ(hit2->records, miss->records);
    for (std::size_t i = 0; i < hit2->encrypted_records.size(); ++i) {
      EXPECT_NE(hit2->encrypted_records[i], hit->encrypted_records[i]);
    }
  }

  // The control plane saw it all: 4 modes x 1 miss, 4 x 2 hits.
  auto stats = client->ServiceStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(stats->tables.size(), 1u);
  EXPECT_EQ(stats->tables[0].cache_hits, 8u);
  EXPECT_EQ(stats->tables[0].cache_misses, 4u);
  EXPECT_EQ(stats->tables[0].cache_entries, 4u);
}

TEST(QosServingTest, NoCacheBypassesWithoutDisturbingTheEntry) {
  QosTopology topology({{"alpha", PlainTable{{1, 0}, {2, 0}, {3, 0}}}});
  auto client = topology.NewClient();
  QueryRequest request = MakeRequest("alpha", {2, 0}, 2);
  auto first = client->Query(request);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->cache_hit);

  // no_cache: a fresh protocol run despite the warm entry...
  request.no_cache = true;
  auto bypass = client->Query(request);
  ASSERT_TRUE(bypass.ok()) << bypass.status();
  EXPECT_FALSE(bypass->cache_hit);
  EXPECT_EQ(bypass->records, first->records);

  // ...and the entry is still there for the next cached request.
  request.no_cache = false;
  auto hit = client->Query(request);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->cache_hit);
}

TEST(QosServingTest, AuthGateQuotaExhaustionAndPerKeyStats) {
  QosTopology topology({{"alpha", PlainTable{{1, 0}, {2, 0}, {3, 0}},
                         /*weight=*/1, /*cache_bytes=*/0}},
                       /*max_in_flight=*/8,
                       {{"tenant-a", "secret-a", /*quota=*/2, /*weight=*/1},
                        {"tenant-b", "secret-b", /*quota=*/0, /*weight=*/1}});
  const QueryRequest request = MakeRequest("alpha", {1, 0}, 1);

  // No key presented: the query frame is refused with a typed
  // kPermissionDenied; the control plane stays open.
  auto anonymous = topology.NewClient();
  auto denied = anonymous->Query(request);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(anonymous->ListTables().ok());

  // A wrong key fails at the kAuthenticate frame itself — also typed, and
  // NOT retried (PermissionDenied is in the fail-fast half of the matrix).
  auto impostor = topology.NewClient("wrong-secret");
  auto rejected = impostor->Query(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kPermissionDenied);

  // The real tenant: quota 2 serves twice, the third is the same typed
  // kResourceExhausted overload wears — one backoff case for clients,
  // distinguished per key for the operator.
  auto tenant = topology.NewClient("secret-a");
  ASSERT_TRUE(tenant->Query(request).ok());
  ASSERT_TRUE(tenant->Query(request).ok());
  auto spent = tenant->Query(request);
  ASSERT_FALSE(spent.ok());
  EXPECT_EQ(spent.status().code(), StatusCode::kResourceExhausted);

  // An unlimited neighbor is untouched by a's exhaustion.
  auto neighbor = topology.NewClient("secret-b");
  ASSERT_TRUE(neighbor->Query(request).ok());

  // Per-key counters over the wire (the control plane needs no key).
  auto stats = anonymous->ServiceStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->auth_enabled);
  ASSERT_EQ(stats->keys.size(), 2u);
  EXPECT_EQ(stats->keys[0].id, "tenant-a");
  EXPECT_EQ(stats->keys[0].completed, 2u);
  EXPECT_EQ(stats->keys[0].quota_rejected, 1u);
  EXPECT_EQ(stats->keys[0].quota, 2u);
  EXPECT_EQ(stats->keys[0].remaining, 0u);
  EXPECT_EQ(stats->keys[1].id, "tenant-b");
  EXPECT_EQ(stats->keys[1].completed, 1u);
  EXPECT_GE(topology.service().stats().auth_rejected, 2u);
}

TEST(QosServingTest, LowWeightTableProgressesUnderAFlood) {
  // heavy outweighs light 100:1 over 4 slots — light's share is the
  // floor's 1 slot, which the flood must never take. Caches off: every
  // query must traverse admission.
  QosTopology topology({{"heavy", PlainTable{{1, 0}, {2, 0}, {3, 0}},
                         /*weight=*/100, /*cache_bytes=*/0},
                        {"light", PlainTable{{4, 0}, {5, 0}, {6, 0}},
                         /*weight=*/1, /*cache_bytes=*/0}},
                       /*max_in_flight=*/4);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> heavy_served{0};
  std::vector<std::thread> flood;
  for (int i = 0; i < 6; ++i) {
    flood.emplace_back([&topology, &stop, &heavy_served] {
      auto client = topology.NewClient();
      const QueryRequest request = MakeRequest("heavy", {1, 0}, 1);
      while (!stop.load()) {
        if (client->Query(request).ok()) heavy_served.fetch_add(1);
      }
    });
  }
  // Under that sustained flood, the light tenant completes a fixed amount
  // of work in bounded retries: its floor slot cannot be starved away.
  auto light = topology.NewClient();
  const QueryRequest request = MakeRequest("light", {4, 0}, 1);
  RetryPolicy policy;
  policy.max_attempts = 200;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(20);
  for (int i = 0; i < 5; ++i) {
    auto served = light->QueryWithRetry(request, policy);
    ASSERT_TRUE(served.ok()) << "light starved at query " << i << ": "
                             << served.status();
  }
  stop.store(true);
  for (std::thread& t : flood) t.join();
  EXPECT_GT(heavy_served.load(), 0u);
}

TEST(QosServingTest, ClientFailsFastOnNonRetryableCodes) {
  QosTopology topology({{"alpha", PlainTable{{1, 0}, {2, 0}}}});
  auto client = topology.NewClient();
  RetryPolicy generous;
  generous.max_attempts = 6;
  generous.initial_backoff = std::chrono::milliseconds(1);

  // k = 0 is kInvalidArgument: exactly ONE server-side attempt despite the
  // 6-attempt policy.
  auto invalid = client->QueryWithRetry(MakeRequest("alpha", {1, 0}, 0),
                                        generous);
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(topology.service().stats().queries_failed, 1u);

  // Unknown table is kNotFound: also one attempt.
  auto missing = client->QueryWithRetry(MakeRequest("beta", {1, 0}, 1),
                                        generous);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(topology.service().stats().queries_failed, 2u);
}

}  // namespace
}  // namespace sknn
