// The multi-table serving contract (PR 5): one QueryService hosting many
// independent tables — each with its own Paillier keys, database and
// geometry — behind the versioned wire protocol of docs/API.md.
//
// What must hold: (1) two tables with different keys and dimensions served
// concurrently return records bitwise-identical to their dedicated
// single-table engines; (2) hello version mismatch, unknown table, and
// pre-hello traffic all yield typed Status codes over the wire, never
// garbage or hangs; (3) the control plane (ListTables / TableInfo /
// ServiceStats) round-trips through RemoteQueryClient; (4) the legacy
// single-table shape (empty table name against a sole-table service) still
// works; (5) the thin-client retry policy backs off with bounded jitter
// under a max-elapsed cap.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/query_wire.h"
#include "net/socket.h"
#include "serve/query_service.h"
#include "serve/remote_query_client.h"
#include "serve/table_registry.h"

namespace sknn {
namespace {

QueryRequest MakeRequest(std::string table, PlainRecord record, unsigned k,
                         QueryProtocol protocol = QueryProtocol::kSecure) {
  QueryRequest request;
  request.table = std::move(table);
  request.record = std::move(record);
  request.k = k;
  request.protocol = protocol;
  return request;
}

// One table's complete backing: a local reference engine (which supplies
// the keys — every MakeTable call therefore mints a DIFFERENT key pair), a
// standalone C2 behind a TCP RpcServer, and the CreateWithRemoteC2 engine
// the front end serves.
struct TableStack {
  std::unique_ptr<SknnEngine> reference;
  std::unique_ptr<C2Service> c2;
  std::unique_ptr<RpcServer> c2_server;
  std::unique_ptr<SknnEngine> engine;
};

TableStack MakeTable(const PlainTable& table, unsigned attr_bits,
                     std::size_t shards = 1) {
  TableStack stack;
  SknnEngine::Options options;
  options.key_bits = 256;
  options.attr_bits = attr_bits;
  options.c1_threads = 2;
  options.c2_threads = 2;
  options.randomizer_pool_capacity = 64;  // keep background fill light
  auto reference = SknnEngine::Create(table, options);
  EXPECT_TRUE(reference.ok()) << reference.status();
  stack.reference = std::move(reference).value();

  stack.c2 = std::make_unique<C2Service>(
      PaillierSecretKey(stack.reference->c2_service().secret_key()));
  stack.c2->EnableRandomizerPool(/*capacity=*/64);
  auto listener = TcpListener::Bind(0);
  EXPECT_TRUE(listener.ok()) << listener.status();
  std::thread accepter([&] {
    auto accepted = listener->Accept();
    EXPECT_TRUE(accepted.ok()) << accepted.status();
    C2Service* c2_raw = stack.c2.get();
    stack.c2_server = std::make_unique<RpcServer>(
        std::move(accepted).value(),
        [c2_raw](const Message& req) { return c2_raw->Handle(req); },
        /*worker_threads=*/2);
  });
  auto c2_link = ConnectTcp("127.0.0.1", listener->port());
  EXPECT_TRUE(c2_link.ok()) << c2_link.status();
  accepter.join();

  options.shards = shards;
  auto engine = SknnEngine::CreateWithRemoteC2(
      stack.reference->public_key(),
      EncryptedDatabase(stack.reference->database()),
      std::move(c2_link).value(), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  stack.engine = std::move(engine).value();
  return stack;
}

// Two tables with nothing in common — keys, dimension, attribute domain —
// behind one service. "alpha": 8 records of 2 attributes in [0, 8);
// "beta": 6 records of 3 attributes in [0, 16), sharded when asked.
class MultiTableTopology {
 public:
  explicit MultiTableTopology(std::size_t beta_shards = 1,
                              std::size_t max_in_flight = 8) {
    PlainTable alpha_table;
    for (int64_t i = 0; i < 8; ++i) alpha_table.push_back({i, 0});
    PlainTable beta_table;
    for (int64_t i = 0; i < 6; ++i) beta_table.push_back({2 * i, 1, 3});
    alpha_ = MakeTable(alpha_table, /*attr_bits=*/3);
    beta_ = MakeTable(beta_table, /*attr_bits=*/4, beta_shards);

    EXPECT_TRUE(registry_.Register("alpha", alpha_.engine.get()).ok());
    EXPECT_TRUE(registry_.Register("beta", beta_.engine.get()).ok());
    QueryService::Options options;
    options.max_in_flight = max_in_flight;
    service_ = std::make_unique<QueryService>(&registry_, options);
    Status started = service_->Start(0);
    EXPECT_TRUE(started.ok()) << started;
  }

  ~MultiTableTopology() {
    if (service_ != nullptr) service_->Shutdown();
  }

  SknnEngine& alpha_reference() { return *alpha_.reference; }
  SknnEngine& beta_reference() { return *beta_.reference; }
  QueryService& service() { return *service_; }
  TableRegistry& registry() { return registry_; }

  std::unique_ptr<RemoteQueryClient> NewClient() {
    auto client = RemoteQueryClient::Connect("127.0.0.1", service_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

  // A raw frame pipe around the client library — for speaking the protocol
  // wrong on purpose.
  std::unique_ptr<RpcClient> NewRawLink() {
    auto link = ConnectTcp("127.0.0.1", service_->port());
    EXPECT_TRUE(link.ok()) << link.status();
    return std::make_unique<RpcClient>(std::move(link).value());
  }

 private:
  // Teardown order: service first (drains clients), then each stack's
  // engine (closes its C2 link), then the C2 servers.
  TableStack alpha_;
  TableStack beta_;
  TableRegistry registry_;
  std::unique_ptr<QueryService> service_;
};

TEST(MultiTableTest, TwoTablesWithDifferentKeysServeConcurrentlyBitwise) {
  MultiTableTopology topology;
  // The dedicated single-table engines are the ground truth; the served
  // multi-table path must be indistinguishable from them, per table.
  struct Case {
    QueryRequest request;
    PlainTable expected;
  };
  std::vector<Case> cases;
  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure}) {
    Case alpha{MakeRequest("alpha", {7, 0}, 2, protocol), {}};
    auto alpha_local = topology.alpha_reference().Query(alpha.request);
    ASSERT_TRUE(alpha_local.ok()) << alpha_local.status();
    alpha.expected = alpha_local->records;
    cases.push_back(std::move(alpha));

    Case beta{MakeRequest("beta", {9, 1, 3}, 3, protocol), {}};
    auto beta_local = topology.beta_reference().Query(beta.request);
    ASSERT_TRUE(beta_local.ok()) << beta_local.status();
    beta.expected = beta_local->records;
    cases.push_back(std::move(beta));
  }

  // All four queries in flight at once, alternating tables, one connection
  // each: cross-table interleaving of outboxes, keys, or responses would
  // corrupt at least one answer.
  std::vector<std::thread> clients;
  std::vector<Result<QueryResponse>> responses(
      cases.size(), Result<QueryResponse>(Status::Internal("unset")));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    clients.emplace_back([&, i] {
      auto client = topology.NewClient();
      responses[i] = client->Query(cases[i].request);
    });
  }
  for (auto& t : clients) t.join();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].status();
    EXPECT_EQ(responses[i]->records, cases[i].expected)
        << "case " << i << " (table " << cases[i].request.table << ")";
  }
  EXPECT_EQ(topology.service().stats().queries_completed, cases.size());
}

TEST(MultiTableTest, ShardedTableBehindTheSameContract) {
  MultiTableTopology topology(/*beta_shards=*/2);
  auto client = topology.NewClient();
  QueryRequest request = MakeRequest("beta", {9, 1, 3}, 3);
  auto local = topology.beta_reference().Query(request);
  ASSERT_TRUE(local.ok()) << local.status();
  auto remote = client->Query(request);
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_EQ(remote->records, local->records);
  EXPECT_EQ(remote->shards.size(), 2u);

  auto info = client->TableInfo("beta");
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->num_shards, 2u);
  EXPECT_FALSE(info->remote_workers);
}

TEST(MultiTableTest, WrongTableNamesYieldTypedStatusCodes) {
  MultiTableTopology topology;
  auto client = topology.NewClient();

  auto unknown = client->Query(MakeRequest("gamma", {1, 0}, 1));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  // Two tables served: the sole-table shorthand (empty name) is ambiguous.
  auto ambiguous = client->Query(MakeRequest("", {1, 0}, 1));
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_EQ(ambiguous.status().code(), StatusCode::kInvalidArgument);

  // Neither failure consumed the admission budget or wedged the session.
  auto fine = client->Query(MakeRequest("alpha", {1, 0}, 1,
                                        QueryProtocol::kBasic));
  EXPECT_TRUE(fine.ok()) << fine.status();
}

TEST(MultiTableTest, OversizedKIsRejectedAtAdmissionWithInvalidArgument) {
  // k > k_max is a malformed REQUEST, caught at admission — typed
  // kInvalidArgument over the wire, before any Paillier work runs. (The
  // regression this pins: the engine used to start the protocol and fail
  // mid-flight with kOutOfRange, burning a full SSED round on C1.)
  MultiTableTopology topology;
  auto client = topology.NewClient();

  auto info = client->TableInfo("alpha");
  ASSERT_TRUE(info.ok()) << info.status();
  ASSERT_EQ(info->k_max, 8u);  // = num_records

  auto too_big = client->Query(MakeRequest("alpha", {1, 0}, info->k_max + 1));
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);

  // The boundary itself is fine, and the rejection neither consumed the
  // admission budget nor wedged the session.
  auto at_max = client->Query(
      MakeRequest("alpha", {1, 0}, info->k_max, QueryProtocol::kBasic));
  EXPECT_TRUE(at_max.ok()) << at_max.status();
  EXPECT_EQ(at_max->records.size(), std::size_t{info->k_max});
}

TEST(MultiTableTest, PreHelloTrafficGetsTypedStatusNeverGarbage) {
  MultiTableTopology topology;
  auto raw = topology.NewRawLink();

  // A perfectly well-formed query — but the session never negotiated.
  auto reply = raw->Call(EncodeQueryRequest(MakeRequest("alpha", {1, 0}, 1)));
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->type, FrontendOpCode(FrontendOp::kQueryError));
  EXPECT_EQ(DecodeQueryError(*reply).code(),
            StatusCode::kFailedPrecondition);

  // Control frames are gated exactly the same.
  auto list_reply = raw->Call(EncodeListTablesRequest());
  ASSERT_TRUE(list_reply.ok()) << list_reply.status();
  ASSERT_EQ(list_reply->type, FrontendOpCode(FrontendOp::kQueryError));
  EXPECT_EQ(DecodeQueryError(*list_reply).code(),
            StatusCode::kFailedPrecondition);

  // The gate is an answer, not a hangup: the same session can still hello
  // and then be served.
  HelloInfo hello;
  auto ack = raw->Call(EncodeHello(hello));
  ASSERT_TRUE(ack.ok()) << ack.status();
  ASSERT_EQ(ack->type, FrontendOpCode(FrontendOp::kHelloAck));
  auto served = raw->Call(EncodeQueryRequest(
      MakeRequest("alpha", {1, 0}, 1, QueryProtocol::kBasic)));
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(served->type, FrontendOpCode(FrontendOp::kQueryResult));
  EXPECT_GT(topology.service().stats().hello_rejected, 0u);
}

TEST(MultiTableTest, HelloVersionMismatchIsRejectedWithTypedStatus) {
  MultiTableTopology topology;
  auto raw = topology.NewRawLink();

  // A revision-1 client (the PR 3/4 era predates the hello frame entirely,
  // but a hypothetical one) and a client from the future both get the same
  // typed answer.
  for (uint32_t revision : {uint32_t{1}, kProtocolRevision + 1}) {
    HelloInfo hello;
    hello.revision = revision;
    auto reply = raw->Call(EncodeHello(hello));
    ASSERT_TRUE(reply.ok()) << reply.status();
    ASSERT_EQ(reply->type, FrontendOpCode(FrontendOp::kQueryError))
        << "revision " << revision;
    EXPECT_EQ(DecodeQueryError(*reply).code(),
              StatusCode::kFailedPrecondition);
  }
  // The rejected hellos did not mark the session negotiated.
  auto still_gated = raw->Call(EncodeQueryRequest(
      MakeRequest("alpha", {1, 0}, 1, QueryProtocol::kBasic)));
  ASSERT_TRUE(still_gated.ok()) << still_gated.status();
  EXPECT_EQ(still_gated->type, FrontendOpCode(FrontendOp::kQueryError));

  // A correct hello on the same session unlocks it.
  auto good = raw->Call(EncodeHello(HelloInfo{}));
  ASSERT_TRUE(good.ok()) << good.status();
  auto decoded = DecodeHelloAck(*good);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->revision, kProtocolRevision);
  EXPECT_EQ(decoded->num_tables, 2u);
}

TEST(MultiTableTest, ControlPlaneRoundTripsThroughRemoteQueryClient) {
  MultiTableTopology topology;
  auto client = topology.NewClient();

  auto hello = client->Hello();
  ASSERT_TRUE(hello.ok()) << hello.status();
  EXPECT_EQ(hello->revision, kProtocolRevision);
  EXPECT_TRUE(hello->features & kFeatureMultiTable);
  EXPECT_EQ(hello->num_tables, 2u);

  auto tables = client->ListTables();
  ASSERT_TRUE(tables.ok()) << tables.status();
  EXPECT_EQ(*tables, (std::vector<std::string>{"alpha", "beta"}));

  auto info = client->TableInfo("alpha");
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->name, "alpha");
  EXPECT_EQ(info->num_records, 8u);
  EXPECT_EQ(info->num_attributes, 2u);
  EXPECT_EQ(info->attr_bits, 3u);
  EXPECT_EQ(info->k_max, 8u);
  EXPECT_EQ(info->num_shards, 1u);
  auto beta_info = client->TableInfo("beta");
  ASSERT_TRUE(beta_info.ok()) << beta_info.status();
  EXPECT_EQ(beta_info->num_attributes, 3u);
  EXPECT_EQ(beta_info->attr_bits, 4u);

  auto missing = client->TableInfo("gamma");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Stats reflect real per-table traffic: run 2 alpha + 1 beta queries and
  // one failing alpha query, then read the counters back over the wire.
  for (int i = 0; i < 2; ++i) {
    auto ok = client->Query(MakeRequest("alpha", {1, 0}, 1,
                                        QueryProtocol::kBasic));
    ASSERT_TRUE(ok.ok()) << ok.status();
  }
  auto ok = client->Query(MakeRequest("beta", {0, 1, 3}, 1,
                                      QueryProtocol::kBasic));
  ASSERT_TRUE(ok.ok()) << ok.status();
  auto bad = client->Query(MakeRequest("alpha", {1, 0}, 99));
  ASSERT_FALSE(bad.ok());

  auto stats = client->ServiceStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->uptime_seconds, 0.0);
  EXPECT_GE(stats->connections_accepted, 1u);
  EXPECT_EQ(stats->in_flight, 0u);
  ASSERT_EQ(stats->tables.size(), 2u);
  EXPECT_EQ(stats->tables[0].name, "alpha");
  EXPECT_EQ(stats->tables[0].completed, 2u);
  EXPECT_EQ(stats->tables[0].failed, 1u);
  EXPECT_EQ(stats->tables[1].name, "beta");
  EXPECT_EQ(stats->tables[1].completed, 1u);
  EXPECT_EQ(stats->tables[1].failed, 0u);
}

TEST(MultiTableTest, LegacySoleTableShapeStillServesEmptyName) {
  // The single-engine QueryService constructor — the PR 3/4 deployments'
  // shape — must keep working, including the empty (sole-table) name.
  PlainTable table;
  for (int64_t i = 0; i < 4; ++i) table.push_back({i, 0});
  TableStack stack = MakeTable(table, /*attr_bits=*/3);
  QueryService::Options options;
  QueryService service(stack.engine.get(), options);
  ASSERT_TRUE(service.Start(0).ok());

  auto client = RemoteQueryClient::Connect("127.0.0.1", service.port());
  ASSERT_TRUE(client.ok()) << client.status();
  QueryRequest request = MakeRequest("", {3, 0}, 2, QueryProtocol::kBasic);
  auto local = stack.reference->Query(request);
  ASSERT_TRUE(local.ok()) << local.status();
  auto remote = (*client)->Query(request);
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_EQ(remote->records, local->records);

  // The sole table is discoverable under its registered name too.
  auto tables = (*client)->ListTables();
  ASSERT_TRUE(tables.ok()) << tables.status();
  EXPECT_EQ(*tables, std::vector<std::string>{"default"});
  auto info = (*client)->TableInfo("");
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->name, "default");
  service.Shutdown();
}

TEST(MultiTableTest, QueryWithRetryRidesOutBackpressure) {
  MultiTableTopology topology(/*beta_shards=*/1, /*max_in_flight=*/1);
  QueryRequest request = MakeRequest("alpha", {7, 0}, 2);
  auto expected = topology.alpha_reference().Query(request);
  ASSERT_TRUE(expected.ok()) << expected.status();

  RetryPolicy policy;
  policy.max_attempts = 200;
  policy.initial_backoff = std::chrono::milliseconds(5);
  policy.max_backoff = std::chrono::milliseconds(40);
  policy.max_elapsed = std::chrono::milliseconds(60000);

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<Result<QueryResponse>> responses(
      kClients, Result<QueryResponse>(Status::Internal("unset")));
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto client = topology.NewClient();
      responses[i] = client->QueryWithRetry(request, policy);
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->records, expected->records);
  }
  // A 1-slot budget under a 4-client burst must have rejected someone, and
  // the rejections must be attributed to the right table.
  auto stats = topology.service().stats();
  EXPECT_GT(stats.queries_rejected, 0u);
  TableRegistry::Entry* alpha = topology.registry().Find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->counters.rejected.load(), stats.queries_rejected);
  EXPECT_EQ(alpha->counters.completed.load(),
            static_cast<uint64_t>(kClients));
}

TEST(MultiTableTest, RetryBackoffGrowsJittersAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff = std::chrono::milliseconds(100);
  policy.max_backoff = std::chrono::milliseconds(1000);
  policy.jitter = 0.5;

  // Deterministic floor: with uniform01 = 0 only the guaranteed share
  // remains; growth is exponential until the cap.
  EXPECT_EQ(RetryBackoff(policy, 1, 0.0).count(), 50);
  EXPECT_EQ(RetryBackoff(policy, 2, 0.0).count(), 100);
  EXPECT_EQ(RetryBackoff(policy, 3, 0.0).count(), 200);
  EXPECT_EQ(RetryBackoff(policy, 5, 0.0).count(), 500);   // capped at 1000
  EXPECT_EQ(RetryBackoff(policy, 50, 0.0).count(), 500);  // shift-safe

  // Jitter ceiling: uniform01 -> 1 approaches the full backoff, never
  // exceeds it.
  EXPECT_LE(RetryBackoff(policy, 1, 0.999).count(), 100);
  EXPECT_GT(RetryBackoff(policy, 1, 0.999).count(), 90);
  EXPECT_LE(RetryBackoff(policy, 10, 0.999).count(), 1000);

  // jitter = 0: fully deterministic regardless of the random draw.
  policy.jitter = 0.0;
  EXPECT_EQ(RetryBackoff(policy, 2, 0.7).count(),
            RetryBackoff(policy, 2, 0.1).count());
  // Degenerate inputs stay sane: attempt 0 behaves as 1, out-of-range
  // jitter and uniform01 are clamped.
  EXPECT_EQ(RetryBackoff(policy, 0, 0.5).count(), 100);
  policy.jitter = 7.0;
  EXPECT_EQ(RetryBackoff(policy, 1, 2.0).count(), 100);
}

TEST(MultiTableTest, QueryWithRetryHonorsTheElapsedCap) {
  // One admission slot, held by a slow secure query; a second client with
  // a tiny elapsed cap must give up with the retry signal promptly instead
  // of sleeping through its full attempt budget.
  MultiTableTopology topology(/*beta_shards=*/1, /*max_in_flight=*/1);
  std::atomic<bool> holder_done{false};
  std::thread holder([&] {
    auto client = topology.NewClient();
    // The holder retries generously: the impatient client's probes below
    // may transiently win the slot.
    RetryPolicy patient;
    patient.max_attempts = 1000;
    patient.initial_backoff = std::chrono::milliseconds(5);
    patient.max_backoff = std::chrono::milliseconds(20);
    patient.max_elapsed = std::chrono::milliseconds(0);  // no cap
    auto slow = client->QueryWithRetry(MakeRequest("alpha", {7, 0}, 4),
                                       patient);
    EXPECT_TRUE(slow.ok()) << slow.status();
    holder_done.store(true);
  });
  // Wait until the slot is actually occupied.
  auto impatient = topology.NewClient();
  while (!holder_done.load()) {
    auto probe = impatient->Query(MakeRequest("alpha", {1, 0}, 1,
                                              QueryProtocol::kBasic));
    if (!probe.ok() &&
        probe.status().code() == StatusCode::kResourceExhausted) {
      break;
    }
  }
  if (!holder_done.load()) {
    RetryPolicy policy;
    policy.max_attempts = 1000;  // attempts would take ages...
    policy.initial_backoff = std::chrono::milliseconds(20);
    policy.max_backoff = std::chrono::milliseconds(20);
    policy.max_elapsed = std::chrono::milliseconds(40);  // ...the cap wins
    const auto started = std::chrono::steady_clock::now();
    auto capped = impatient->QueryWithRetry(
        MakeRequest("alpha", {1, 0}, 1, QueryProtocol::kBasic), policy);
    const auto elapsed = std::chrono::steady_clock::now() - started;
    // Either the cap fired (the expected path) or the holder finished
    // mid-retry and the query went through — both are contract-correct;
    // what may NOT happen is retrying past the cap.
    if (!capped.ok()) {
      EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
      EXPECT_LT(elapsed, std::chrono::seconds(5));
    }
  }
  holder.join();
}

}  // namespace
}  // namespace sknn
