// Tests for assembling the system from persisted artifacts: serialize keys
// and the encrypted database to disk, reload everything, rebuild the engine
// with CreateFromParts, and verify queries still match plaintext kNN — the
// full "resume an outsourced deployment" workflow.
#include <gtest/gtest.h>

#include <cstdio>

#include "baseline/plaintext_knn.h"
#include "core/data_owner.h"
#include "core/db_io.h"
#include "core/engine.h"
#include "crypto/serialization.h"
#include "data/synthetic.h"
#include "tests/query_test_util.h"

namespace sknn {
namespace {

class EnginePartsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = GenerateUniformTable(10, 3, 7, 31415);
    query_ = GenerateUniformQuery(3, 7, 31416);
    auto alice = DataOwner::Create(256);
    ASSERT_TRUE(alice.ok());
    pk_ = alice->public_key();
    sk_ = alice->secret_key_for_c2();
    auto db = alice->EncryptDatabase(table_, 3);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  PlainTable table_;
  PlainRecord query_;
  PaillierPublicKey pk_;
  PaillierSecretKey sk_;
  EncryptedDatabase db_;
  SknnEngine::Options opts_;
};

TEST_F(EnginePartsTest, DirectPartsAssemblyWorks) {
  auto engine = SknnEngine::CreateFromParts(pk_, sk_, db_, opts_);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto result = RunQuery(**engine, query_, 3, QueryProtocol::kSecure);
  ASSERT_TRUE(result.ok()) << result.status();

  std::multiset<int64_t> got, want;
  for (const auto& r : result->records) got.insert(SquaredDistance(r, query_));
  for (const auto& r : PlainKnn(table_, query_, 3)) {
    want.insert(SquaredDistance(r, query_));
  }
  EXPECT_EQ(got, want);
}

TEST_F(EnginePartsTest, FullDiskRoundTripAssembly) {
  std::string pk_path = testing::TempDir() + "/parts_pk.txt";
  std::string sk_path = testing::TempDir() + "/parts_sk.txt";
  std::string db_path = testing::TempDir() + "/parts_db.bin";
  ASSERT_TRUE(WritePublicKeyFile(pk_path, pk_).ok());
  ASSERT_TRUE(WriteSecretKeyFile(sk_path, sk_).ok());
  ASSERT_TRUE(WriteEncryptedDatabase(db_path, db_).ok());

  auto pk = ReadPublicKeyFile(pk_path);
  auto sk = ReadSecretKeyFile(sk_path);
  auto db = ReadEncryptedDatabase(db_path);
  ASSERT_TRUE(pk.ok());
  ASSERT_TRUE(sk.ok());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(ValidateCiphertexts(*db, *pk).ok());

  auto engine = SknnEngine::CreateFromParts(*pk, std::move(*sk),
                                            std::move(*db), opts_);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto result = RunQuery(**engine, query_, 2, QueryProtocol::kBasic);
  ASSERT_TRUE(result.ok()) << result.status();

  std::multiset<int64_t> got, want;
  for (const auto& r : result->records) got.insert(SquaredDistance(r, query_));
  for (const auto& r : PlainKnn(table_, query_, 2)) {
    want.insert(SquaredDistance(r, query_));
  }
  EXPECT_EQ(got, want);

  std::remove(pk_path.c_str());
  std::remove(sk_path.c_str());
  std::remove(db_path.c_str());
}

TEST_F(EnginePartsTest, RejectsMismatchedKeys) {
  Random rng(27182);
  auto other = GeneratePaillierKeyPair(256, rng).value();
  auto engine = SknnEngine::CreateFromParts(pk_, other.sk, db_, opts_);
  EXPECT_FALSE(engine.ok());
}

TEST_F(EnginePartsTest, RejectsEmptyDatabase) {
  auto engine = SknnEngine::CreateFromParts(pk_, sk_, EncryptedDatabase{},
                                            opts_);
  EXPECT_FALSE(engine.ok());
}

TEST_F(EnginePartsTest, PartsAndFreshEngineAgree) {
  auto fresh_opts = opts_;
  fresh_opts.key_bits = 256;
  fresh_opts.attr_bits = 3;
  auto fresh = SknnEngine::Create(table_, fresh_opts);
  auto parts = SknnEngine::CreateFromParts(pk_, sk_, db_, opts_);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(parts.ok());
  auto r1 = RunQuery(**fresh, query_, 2, QueryProtocol::kSecure);
  auto r2 = RunQuery(**parts, query_, 2, QueryProtocol::kSecure);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  std::multiset<int64_t> d1, d2;
  for (const auto& r : r1->records) d1.insert(SquaredDistance(r, query_));
  for (const auto& r : r2->records) d2.insert(SquaredDistance(r, query_));
  EXPECT_EQ(d1, d2);
}

}  // namespace
}  // namespace sknn
