// Tests for the interactive primitives SM, SSED and SBOR against plaintext
// references, including the paper's worked examples (Example 2 and
// Example 3) and randomized property sweeps.
#include <gtest/gtest.h>

#include "proto/sbor.h"
#include "proto/sm.h"
#include "proto/ssed.h"
#include "tests/proto_test_util.h"

namespace sknn {
namespace {

class PrimitiveTest : public ::testing::Test {
 protected:
  TwoPartyHarness harness_;
  Random rng_{123};
};

TEST_F(PrimitiveTest, SmMultipliesSmallValues) {
  const auto& pk = harness_.pk();
  auto result = SecureMultiply(harness_.ctx(), pk.Encrypt(BigInt(6), rng_),
                               pk.Encrypt(BigInt(7), rng_));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(harness_.Decrypt(*result), BigInt(42));
}

TEST_F(PrimitiveTest, SmPaperExample2) {
  // Example 2: a = 59, b = 58 -> Epk(3422).
  const auto& pk = harness_.pk();
  auto result = SecureMultiply(harness_.ctx(), pk.Encrypt(BigInt(59), rng_),
                               pk.Encrypt(BigInt(58), rng_));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(harness_.Decrypt(*result), BigInt(3422));
}

TEST_F(PrimitiveTest, SmHandlesZeroOperands) {
  const auto& pk = harness_.pk();
  for (auto [a, b] : {std::pair<int, int>{0, 5}, {5, 0}, {0, 0}}) {
    auto result = SecureMultiply(harness_.ctx(), pk.Encrypt(BigInt(a), rng_),
                                 pk.Encrypt(BigInt(b), rng_));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(harness_.Decrypt(*result), BigInt(a * b));
  }
}

TEST_F(PrimitiveTest, SmWorksOnNegativeResidues) {
  // (-3) * 4 = -12 under Z_N encoding.
  const auto& pk = harness_.pk();
  Ciphertext minus3 = pk.Encrypt(pk.n() - BigInt(3), rng_);
  auto result =
      SecureMultiply(harness_.ctx(), minus3, pk.Encrypt(BigInt(4), rng_));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(harness_.DecryptSigned(*result), BigInt(-12));
}

TEST_F(PrimitiveTest, SmBatchMatchesElementwise) {
  const auto& pk = harness_.pk();
  std::vector<Ciphertext> as, bs;
  std::vector<int64_t> expected;
  for (int i = 0; i < 17; ++i) {
    int64_t a = static_cast<int64_t>(rng_.UniformUint64(1000));
    int64_t b = static_cast<int64_t>(rng_.UniformUint64(1000));
    as.push_back(pk.Encrypt(BigInt(a), rng_));
    bs.push_back(pk.Encrypt(BigInt(b), rng_));
    expected.push_back(a * b);
  }
  auto result = SecureMultiplyBatch(harness_.ctx(), as, bs);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(harness_.Decrypt((*result)[i]), BigInt(expected[i])) << i;
  }
}

TEST_F(PrimitiveTest, SmBatchRejectsLengthMismatch) {
  const auto& pk = harness_.pk();
  std::vector<Ciphertext> as = {pk.Encrypt(BigInt(1), rng_)};
  std::vector<Ciphertext> bs;
  EXPECT_FALSE(SecureMultiplyBatch(harness_.ctx(), as, bs).ok());
}

TEST_F(PrimitiveTest, SmEmptyBatchIsNoop) {
  auto result = SecureMultiplyBatch(harness_.ctx(), {}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(PrimitiveTest, SsedPaperExample3) {
  // Example 3: records t1 and t2 of Table 1 -> squared distance 813.
  const auto& pk = harness_.pk();
  std::vector<int64_t> t1 = {63, 1, 1, 145, 233, 1, 3, 0, 6, 0};
  std::vector<int64_t> t2 = {56, 1, 3, 130, 256, 1, 2, 1, 6, 2};
  std::vector<Ciphertext> ex, ey;
  for (std::size_t i = 0; i < t1.size(); ++i) {
    ex.push_back(pk.Encrypt(BigInt(t1[i]), rng_));
    ey.push_back(pk.Encrypt(BigInt(t2[i]), rng_));
  }
  auto result = SecureSquaredDistance(harness_.ctx(), ex, ey);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(harness_.Decrypt(*result), BigInt(813));
}

TEST_F(PrimitiveTest, SsedZeroDistanceForIdenticalVectors) {
  const auto& pk = harness_.pk();
  std::vector<Ciphertext> ex, ey;
  for (int64_t v : {3, 1, 4, 1, 5}) {
    ex.push_back(pk.Encrypt(BigInt(v), rng_));
    ey.push_back(pk.Encrypt(BigInt(v), rng_));
  }
  auto result = SecureSquaredDistance(harness_.ctx(), ex, ey);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(harness_.Decrypt(*result).IsZero());
}

TEST_F(PrimitiveTest, SsedBatchMatchesPlaintext) {
  const auto& pk = harness_.pk();
  const std::size_t n = 9, m = 4;
  std::vector<std::vector<int64_t>> records(n, std::vector<int64_t>(m));
  std::vector<int64_t> query(m);
  for (auto& r : records) {
    for (auto& v : r) v = static_cast<int64_t>(rng_.UniformUint64(50));
  }
  for (auto& v : query) v = static_cast<int64_t>(rng_.UniformUint64(50));

  std::vector<std::vector<Ciphertext>> enc_records(n);
  std::vector<Ciphertext> enc_query;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      enc_records[i].push_back(pk.Encrypt(BigInt(records[i][j]), rng_));
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    enc_query.push_back(pk.Encrypt(BigInt(query[j]), rng_));
  }

  auto result =
      SecureSquaredDistanceBatch(harness_.ctx(), enc_records, enc_query);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < n; ++i) {
    int64_t expected = 0;
    for (std::size_t j = 0; j < m; ++j) {
      int64_t d = records[i][j] - query[j];
      expected += d * d;
    }
    EXPECT_EQ(harness_.Decrypt((*result)[i]), BigInt(expected)) << i;
  }
}

TEST_F(PrimitiveTest, SsedRejectsDimensionMismatch) {
  const auto& pk = harness_.pk();
  std::vector<Ciphertext> ex = {pk.Encrypt(BigInt(1), rng_)};
  std::vector<Ciphertext> ey = {pk.Encrypt(BigInt(1), rng_),
                                pk.Encrypt(BigInt(2), rng_)};
  EXPECT_FALSE(SecureSquaredDistance(harness_.ctx(), ex, ey).ok());
}

TEST_F(PrimitiveTest, SborTruthTable) {
  const auto& pk = harness_.pk();
  for (int o1 : {0, 1}) {
    for (int o2 : {0, 1}) {
      auto result =
          SecureBitOr(harness_.ctx(), pk.Encrypt(BigInt(o1), rng_),
                      pk.Encrypt(BigInt(o2), rng_));
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(harness_.Decrypt(*result), BigInt(o1 | o2))
          << o1 << " OR " << o2;
    }
  }
}

TEST_F(PrimitiveTest, SborBatch) {
  const auto& pk = harness_.pk();
  std::vector<Ciphertext> o1s, o2s;
  std::vector<int> expected;
  for (int i = 0; i < 16; ++i) {
    int a = (i >> 1) & 1, b = i & 1;
    o1s.push_back(pk.Encrypt(BigInt(a), rng_));
    o2s.push_back(pk.Encrypt(BigInt(b), rng_));
    expected.push_back(a | b);
  }
  auto result = SecureBitOrBatch(harness_.ctx(), o1s, o2s);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(harness_.Decrypt((*result)[i]), BigInt(expected[i])) << i;
  }
}

// Property sweep: SM over random residue pairs at several key sizes.
class SmProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, uint64_t>> {};

TEST_P(SmProperty, MatchesModularProduct) {
  auto [key_bits, seed] = GetParam();
  TwoPartyHarness harness(key_bits, seed);
  Random rng(seed + 1);
  const auto& pk = harness.pk();
  const BigInt& n = pk.n();
  std::vector<Ciphertext> as, bs;
  std::vector<BigInt> expected;
  for (int i = 0; i < 8; ++i) {
    BigInt a = rng.Below(n), b = rng.Below(n);
    as.push_back(pk.Encrypt(a, rng));
    bs.push_back(pk.Encrypt(b, rng));
    expected.push_back(a.MulMod(b, n));
  }
  auto result = SecureMultiplyBatch(harness.ctx(), as, bs);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(harness.Decrypt((*result)[i]), expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KeySizesAndSeeds, SmProperty,
    ::testing::Combine(::testing::Values(128u, 256u, 512u),
                       ::testing::Values(1u, 2u)));

// SM under parallel execution: same results, chunked round trips.
TEST(PrimitiveParallelTest, SmBatchParallelMatchesSerial) {
  TwoPartyHarness harness(256, 77, /*c1_threads=*/3, /*c2_threads=*/3);
  Random rng(78);
  const auto& pk = harness.pk();
  std::vector<Ciphertext> as, bs;
  std::vector<int64_t> expected;
  for (int i = 0; i < 40; ++i) {
    int64_t a = static_cast<int64_t>(rng.UniformUint64(1 << 20));
    int64_t b = static_cast<int64_t>(rng.UniformUint64(1 << 20));
    as.push_back(pk.Encrypt(BigInt(a), rng));
    bs.push_back(pk.Encrypt(BigInt(b), rng));
    expected.push_back(a * b);
  }
  auto result = SecureMultiplyBatch(harness.ctx(), as, bs);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(harness.Decrypt((*result)[i]), BigInt(expected[i])) << i;
  }
}

}  // namespace
}  // namespace sknn
