// Shared helper for engine-level test suites: one request through the
// request/response query API (the test-side analogue of bench_util.h's
// MustQuery).
#ifndef SKNN_TESTS_QUERY_TEST_UTIL_H_
#define SKNN_TESTS_QUERY_TEST_UTIL_H_

#include "core/engine.h"

namespace sknn {

inline Result<QueryResponse> RunQuery(SknnEngine& engine,
                                      const PlainRecord& record, unsigned k,
                                      QueryProtocol protocol) {
  QueryRequest request;
  request.record = record;
  request.k = k;
  request.protocol = protocol;
  return engine.Query(request);
}

}  // namespace sknn

#endif  // SKNN_TESTS_QUERY_TEST_UTIL_H_
