// Tests of the request/response query surface: Query / Submit / QueryBatch
// must be interchangeable — N concurrent submissions produce results
// identical to a serial loop, under both a serial engine (c1_threads = 1)
// and a parallel one (c1_threads = 4), for all three protocols — and every
// in-flight query's instrumentation (ops, traffic) must be isolated from
// its neighbors'.
#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <vector>

#include "core/engine.h"
#include "data/synthetic.h"

namespace sknn {
namespace {

// Records {i, 0} against query {0, 0} have pairwise-distinct squared
// distances i^2, so every protocol's answer is fully deterministic (no
// random tie-breaking) and results can be compared bitwise.
PlainTable DistinctDistanceTable(std::size_t n) {
  PlainTable table;
  for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
    table.push_back({i, 0});
  }
  return table;
}

std::unique_ptr<SknnEngine> MakeEngine(const PlainTable& table,
                                       std::size_t c1_threads,
                                       std::size_t c2_threads) {
  SknnEngine::Options opts;
  opts.key_bits = 256;
  opts.attr_bits = 3;
  opts.c1_threads = c1_threads;
  opts.c2_threads = c2_threads;
  auto engine = SknnEngine::Create(table, opts);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

// A protocol-mixed workload of independent requests.
std::vector<QueryRequest> MixedWorkload() {
  std::vector<QueryRequest> requests;
  for (auto [k, protocol] : std::vector<std::pair<unsigned, QueryProtocol>>{
           {1, QueryProtocol::kBasic},
           {3, QueryProtocol::kBasic},
           {2, QueryProtocol::kSecure},
           {1, QueryProtocol::kSecure},
           {2, QueryProtocol::kFarthest},
           {4, QueryProtocol::kBasic},
       }) {
    QueryRequest request;
    request.record = {0, 0};
    request.k = k;
    request.protocol = protocol;
    requests.push_back(request);
  }
  return requests;
}

TEST(QueryBatchTest, BatchMatchesSerialLoopAcrossThreadCounts) {
  PlainTable table = DistinctDistanceTable(8);
  for (std::size_t c1_threads : {std::size_t{1}, std::size_t{4}}) {
    auto engine = MakeEngine(table, c1_threads, /*c2_threads=*/2);
    std::vector<QueryRequest> requests = MixedWorkload();

    // Serial reference: one Query() at a time.
    std::vector<PlainTable> serial;
    for (const auto& request : requests) {
      auto response = engine->Query(request);
      ASSERT_TRUE(response.ok()) << response.status();
      serial.push_back(response->records);
    }

    // The same workload as one pipelined batch.
    std::vector<Result<QueryResponse>> batch = engine->QueryBatch(requests);
    ASSERT_EQ(batch.size(), requests.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(batch[i].ok())
          << "c1_threads=" << c1_threads << " i=" << i << ": "
          << batch[i].status();
      EXPECT_EQ(batch[i]->records, serial[i])
          << "c1_threads=" << c1_threads << " request " << i
          << " diverged from the serial loop";
    }
  }
}

TEST(QueryBatchTest, ConcurrentSubmitsMatchSerialLoop) {
  PlainTable table = DistinctDistanceTable(8);
  auto engine = MakeEngine(table, /*c1_threads=*/4, /*c2_threads=*/2);
  std::vector<QueryRequest> requests = MixedWorkload();

  std::vector<PlainTable> serial;
  for (const auto& request : requests) {
    auto response = engine->Query(request);
    ASSERT_TRUE(response.ok()) << response.status();
    serial.push_back(response->records);
  }

  // Fire all Submits before collecting any future: every query is genuinely
  // in flight at once.
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (const auto& request : requests) {
    futures.push_back(engine->Submit(request));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Result<QueryResponse> response = futures[i].get();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->records, serial[i]) << "submission " << i;
  }
}

TEST(QueryBatchTest, PerQueryInstrumentationIsIsolatedUnderConcurrency) {
  // Operation counts are randomness-independent, so k identical requests
  // must report *identical* ops and traffic — and identical to the same
  // request run alone. If concurrent queries leaked into each other's
  // meters (the old engine-global snapshot-delta accounting), these numbers
  // would inflate with the batch size.
  PlainTable table = DistinctDistanceTable(6);
  auto engine = MakeEngine(table, /*c1_threads=*/4, /*c2_threads=*/2);
  QueryRequest request;
  request.record = {0, 0};
  request.k = 2;
  request.protocol = QueryProtocol::kSecure;

  auto alone = engine->Query(request);
  ASSERT_TRUE(alone.ok()) << alone.status();
  ASSERT_GT(alone->ops.encryptions, 0u);
  ASSERT_GT(alone->ops.decryptions, 0u);
  ASSERT_GT(alone->traffic.total_bytes(), 0u);

  std::vector<Result<QueryResponse>> batch =
      engine->QueryBatch({request, request, request, request});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status();
    EXPECT_EQ(batch[i]->ops.encryptions, alone->ops.encryptions) << i;
    EXPECT_EQ(batch[i]->ops.decryptions, alone->ops.decryptions) << i;
    EXPECT_EQ(batch[i]->ops.exponentiations, alone->ops.exponentiations) << i;
    EXPECT_EQ(batch[i]->ops.multiplications, alone->ops.multiplications) << i;
    // Frame counts are deterministic; byte counts wobble by a few bytes
    // because a random ciphertext occasionally serializes one byte shorter
    // (leading zero byte in the big-endian magnitude).
    EXPECT_EQ(batch[i]->traffic.total_frames(), alone->traffic.total_frames())
        << i;
    int64_t byte_delta =
        static_cast<int64_t>(batch[i]->traffic.total_bytes()) -
        static_cast<int64_t>(alone->traffic.total_bytes());
    EXPECT_LT(std::abs(byte_delta), 64) << i;
  }
}

TEST(QueryBatchTest, VectorizedRoundsMatchScalarProtocolBitwise) {
  // The vectorized wire opcodes (kSmVec / kLsbVec / kSminPhase2Vec, plus the
  // fused extract+clamp SM round) must return exactly the records the
  // paper-literal scalar transcript returns, at both thread counts. The
  // distinct-distance table makes every protocol's answer deterministic, so
  // the comparison is bitwise.
  PlainTable table = DistinctDistanceTable(8);
  std::vector<QueryRequest> requests = MixedWorkload();
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SknnEngine::Options scalar_opts;
    scalar_opts.key_bits = 256;
    scalar_opts.attr_bits = 3;
    scalar_opts.c1_threads = threads;
    scalar_opts.c2_threads = threads;
    scalar_opts.vectorized_rounds = false;
    scalar_opts.randomizer_pool = false;
    auto scalar_engine = SknnEngine::Create(table, scalar_opts);
    ASSERT_TRUE(scalar_engine.ok()) << scalar_engine.status();

    SknnEngine::Options vec_opts = scalar_opts;
    vec_opts.vectorized_rounds = true;
    vec_opts.randomizer_pool = true;
    auto vec_engine = SknnEngine::Create(table, vec_opts);
    ASSERT_TRUE(vec_engine.ok()) << vec_engine.status();

    for (std::size_t i = 0; i < requests.size(); ++i) {
      auto scalar = (*scalar_engine)->Query(requests[i]);
      auto vec = (*vec_engine)->Query(requests[i]);
      ASSERT_TRUE(scalar.ok()) << scalar.status();
      ASSERT_TRUE(vec.ok()) << vec.status();
      EXPECT_EQ(vec->records, scalar->records)
          << "threads=" << threads << " request " << i;
      // Identical protocol work, different wire packing: the Paillier op
      // accounting is mode-independent.
      EXPECT_EQ(vec->ops.encryptions, scalar->ops.encryptions) << i;
      EXPECT_EQ(vec->ops.decryptions, scalar->ops.decryptions) << i;
      EXPECT_EQ(vec->ops.exponentiations, scalar->ops.exponentiations) << i;
      EXPECT_EQ(vec->ops.multiplications, scalar->ops.multiplications) << i;
      // The vectorized form never sends more messages than scalar mode, and
      // at c1_threads > 1 it sends strictly fewer (no per-worker chunking).
      EXPECT_LE(vec->traffic.total_frames(), scalar->traffic.total_frames())
          << i;
      if (threads > 1 && requests[i].protocol != QueryProtocol::kBasic) {
        EXPECT_LT(vec->traffic.total_frames(), scalar->traffic.total_frames())
            << i;
      }
    }
  }
}

TEST(QueryBatchTest, ShortRandomizersMatchFullWidthBitwise) {
  // The short-exponent randomizer default (docs/CRYPTO.md) changes only how
  // r^N is minted for the pool, never what the protocols compute: the
  // distinct-distance table makes every answer deterministic, so records —
  // and the paper's Section 4.4 op accounting — must be identical with the
  // flag on and off.
  PlainTable table = DistinctDistanceTable(8);
  std::vector<QueryRequest> requests = MixedWorkload();
  SknnEngine::Options full_opts;
  full_opts.key_bits = 256;
  full_opts.attr_bits = 3;
  full_opts.c1_threads = 2;
  full_opts.c2_threads = 2;
  full_opts.short_randomizers = false;
  auto full_engine = SknnEngine::Create(table, full_opts);
  ASSERT_TRUE(full_engine.ok()) << full_engine.status();

  SknnEngine::Options short_opts = full_opts;
  short_opts.short_randomizers = true;
  auto short_engine = SknnEngine::Create(table, short_opts);
  ASSERT_TRUE(short_engine.ok()) << short_engine.status();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto full = (*full_engine)->Query(requests[i]);
    auto fast = (*short_engine)->Query(requests[i]);
    ASSERT_TRUE(full.ok()) << full.status();
    ASSERT_TRUE(fast.ok()) << fast.status();
    EXPECT_EQ(fast->records, full->records) << "request " << i;
    EXPECT_EQ(fast->ops.encryptions, full->ops.encryptions) << i;
    EXPECT_EQ(fast->ops.decryptions, full->ops.decryptions) << i;
    EXPECT_EQ(fast->ops.exponentiations, full->ops.exponentiations) << i;
    EXPECT_EQ(fast->ops.multiplications, full->ops.multiplications) << i;
  }

  // Satellite observability: the pools on both engines saw the traffic.
  for (auto* engine : {full_engine->get(), short_engine->get()}) {
    SknnEngine::RandomizerPoolStats stats = engine->randomizer_pool_stats();
    EXPECT_GT(stats.c1_capacity, 0u);
    EXPECT_GT(stats.c2_capacity, 0u);
    EXPECT_GT(stats.c1_hits + stats.c1_misses, 0u);
    EXPECT_GT(stats.c2_hits + stats.c2_misses, 0u);
  }
}

TEST(QueryBatchTest, MixedValidityBatchFailsOnlyTheInvalidSlots) {
  PlainTable table = DistinctDistanceTable(5);
  auto engine = MakeEngine(table, /*c1_threads=*/2, /*c2_threads=*/1);
  QueryRequest good;
  good.record = {1, 0};
  good.k = 1;
  good.protocol = QueryProtocol::kBasic;
  QueryRequest bad_k = good;
  bad_k.k = 9;  // > n
  QueryRequest bad_dim = good;
  bad_dim.record = {1, 0, 0};

  auto results = engine->QueryBatch({good, bad_k, good, bad_dim});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[2].ok());
  EXPECT_EQ(results[3].status().code(), StatusCode::kInvalidArgument);
  // The valid slots are unaffected by their failed neighbors.
  EXPECT_EQ(results[0]->records, results[2]->records);
}

TEST(QueryBatchTest, SerialEngineStillAnswersSubmissionsInOrder) {
  // c1_threads = 1: one scheduler dispatcher, so submissions execute
  // one-by-one in submission order — the batch degenerates to the serial
  // loop but through the same async plumbing.
  PlainTable table = DistinctDistanceTable(6);
  auto engine = MakeEngine(table, /*c1_threads=*/1, /*c2_threads=*/1);
  std::vector<std::future<Result<QueryResponse>>> futures;
  for (unsigned k = 1; k <= 4; ++k) {
    QueryRequest request;
    request.record = {0, 0};
    request.k = k;
    request.protocol = QueryProtocol::kBasic;
    futures.push_back(engine->Submit(request));
  }
  for (unsigned k = 1; k <= 4; ++k) {
    Result<QueryResponse> response = futures[k - 1].get();
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->records.size(), k);
    // Nearest record of the distinct-distance table is always {0, 0}.
    EXPECT_EQ(response->records[0], (PlainRecord{0, 0}));
  }
}

}  // namespace
}  // namespace sknn
