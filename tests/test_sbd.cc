// Tests for secure bit-decomposition: exhaustive small domains, the paper's
// Example 4, the verification/retry path under injected wraparound failures,
// and batched decomposition.
#include <gtest/gtest.h>

#include "proto/sbd.h"
#include "tests/proto_test_util.h"

namespace sknn {
namespace {

class SbdTest : public ::testing::Test {
 protected:
  TwoPartyHarness harness_;
  Random rng_{321};
};

TEST_F(SbdTest, PaperExample4) {
  // Example 4: z = 55, l = 6 -> [55] = <1,1,0,1,1,1> MSB first.
  const auto& pk = harness_.pk();
  SbdOptions opts;
  opts.l = 6;
  auto bits = BitDecompose(harness_.ctx(), pk.Encrypt(BigInt(55), rng_), opts);
  ASSERT_TRUE(bits.ok()) << bits.status();
  ASSERT_EQ(bits->size(), 6u);
  std::vector<int> expected = {1, 1, 0, 1, 1, 1};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(harness_.Decrypt((*bits)[i]), BigInt(expected[i])) << "bit " << i;
  }
}

TEST_F(SbdTest, ExhaustiveFourBitDomain) {
  const auto& pk = harness_.pk();
  SbdOptions opts;
  opts.l = 4;
  for (uint64_t z = 0; z < 16; ++z) {
    auto bits = BitDecompose(harness_.ctx(),
                             pk.Encrypt(BigInt(static_cast<int64_t>(z)), rng_),
                             opts);
    ASSERT_TRUE(bits.ok()) << "z=" << z;
    EXPECT_EQ(harness_.DecryptBits(*bits), z);
  }
}

TEST_F(SbdTest, BatchDecomposition) {
  const auto& pk = harness_.pk();
  SbdOptions opts;
  opts.l = 10;
  std::vector<uint64_t> values;
  std::vector<Ciphertext> enc;
  for (int i = 0; i < 25; ++i) {
    uint64_t z = rng_.UniformUint64(1 << 10);
    values.push_back(z);
    enc.push_back(pk.Encrypt(BigInt(static_cast<int64_t>(z)), rng_));
  }
  auto bits = BitDecomposeBatch(harness_.ctx(), enc, opts);
  ASSERT_TRUE(bits.ok());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(harness_.DecryptBits((*bits)[i]), values[i]) << i;
  }
}

TEST_F(SbdTest, BoundaryValues) {
  const auto& pk = harness_.pk();
  SbdOptions opts;
  opts.l = 12;
  for (uint64_t z : {uint64_t{0}, uint64_t{1}, uint64_t{(1 << 12) - 1}}) {
    auto bits = BitDecompose(harness_.ctx(),
                             pk.Encrypt(BigInt(static_cast<int64_t>(z)), rng_),
                             opts);
    ASSERT_TRUE(bits.ok()) << "z=" << z;
    EXPECT_EQ(harness_.DecryptBits(*bits), z);
  }
}

TEST_F(SbdTest, AdversarialMasksForceRetryButStillCorrect) {
  // With r = N-1 every z > 0 wraps mod N and the first pass produces wrong
  // bits; SVR must catch it and the retry (uniform masks) must fix it.
  const auto& pk = harness_.pk();
  SbdOptions opts;
  opts.l = 8;
  opts.adversarial_masks_for_test = true;
  std::vector<Ciphertext> enc;
  std::vector<uint64_t> values = {1, 5, 100, 255};
  for (uint64_t z : values) {
    enc.push_back(pk.Encrypt(BigInt(static_cast<int64_t>(z)), rng_));
  }
  auto bits = BitDecomposeBatch(harness_.ctx(), enc, opts);
  ASSERT_TRUE(bits.ok()) << bits.status();
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(harness_.DecryptBits((*bits)[i]), values[i]) << i;
  }
}

TEST_F(SbdTest, WithoutVerifyAdversarialMasksCorruptBits) {
  // Sanity check that the SVR round is doing real work: when it is disabled
  // the adversarial masks produce a wrong decomposition for some z > 0.
  const auto& pk = harness_.pk();
  SbdOptions opts;
  opts.l = 8;
  opts.verify = false;
  opts.adversarial_masks_for_test = true;
  auto bits =
      BitDecompose(harness_.ctx(), pk.Encrypt(BigInt(200), rng_), opts);
  ASSERT_TRUE(bits.ok());
  uint64_t recovered = 0;
  for (const auto& b : *bits) {
    BigInt v = harness_.Decrypt(b);
    // Bits may not even be 0/1 after a poisoned pass; treat any non-bit as
    // corruption.
    if (v != BigInt(0) && v != BigInt(1)) {
      SUCCEED();
      return;
    }
    recovered = (recovered << 1) | v.ToUint64().value();
  }
  EXPECT_NE(recovered, 200u);
}

TEST_F(SbdTest, RejectsZeroWidth) {
  const auto& pk = harness_.pk();
  SbdOptions opts;
  opts.l = 0;
  EXPECT_FALSE(
      BitDecompose(harness_.ctx(), pk.Encrypt(BigInt(1), rng_), opts).ok());
}

TEST_F(SbdTest, RejectsDomainLargerThanModulus) {
  TwoPartyHarness small(32, 5);
  SbdOptions opts;
  opts.l = 40;  // 2^40 > N for a 32-bit key
  Random rng(6);
  EXPECT_FALSE(
      BitDecompose(small.ctx(), small.pk().Encrypt(BigInt(1), rng), opts)
          .ok());
}

TEST_F(SbdTest, ComposeFromBitsRoundTrip) {
  const auto& pk = harness_.pk();
  SbdOptions opts;
  opts.l = 9;
  for (uint64_t z : {uint64_t{0}, uint64_t{37}, uint64_t{311}, uint64_t{511}}) {
    auto bits = BitDecompose(harness_.ctx(),
                             pk.Encrypt(BigInt(static_cast<int64_t>(z)), rng_),
                             opts);
    ASSERT_TRUE(bits.ok());
    Ciphertext recomposed = ComposeFromBits(pk, *bits);
    EXPECT_EQ(harness_.Decrypt(recomposed), BigInt(static_cast<int64_t>(z)));
  }
}

// Property sweep: random values across widths and key sizes.
class SbdProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(SbdProperty, RandomValuesRoundTrip) {
  auto [l, key_bits] = GetParam();
  TwoPartyHarness harness(key_bits, 1000 + l);
  Random rng(2000 + l);
  const auto& pk = harness.pk();
  SbdOptions opts;
  opts.l = l;
  std::vector<uint64_t> values;
  std::vector<Ciphertext> enc;
  for (int i = 0; i < 10; ++i) {
    uint64_t z = rng.UniformUint64(uint64_t{1} << l);
    values.push_back(z);
    enc.push_back(pk.Encrypt(BigInt(static_cast<int64_t>(z)), rng));
  }
  auto bits = BitDecomposeBatch(harness.ctx(), enc, opts);
  ASSERT_TRUE(bits.ok());
  for (std::size_t i = 0; i < values.size(); ++i) {
    uint64_t out = 0;
    for (const auto& b : (*bits)[i]) {
      BigInt v = harness.c2().secret_key().Decrypt(b);
      ASSERT_TRUE(v == BigInt(0) || v == BigInt(1));
      out = (out << 1) | v.ToUint64().value();
    }
    EXPECT_EQ(out, values[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(WidthsAndKeys, SbdProperty,
                         ::testing::Combine(::testing::Values(1u, 6u, 12u,
                                                              20u),
                                            ::testing::Values(128u, 256u)));

}  // namespace
}  // namespace sknn
