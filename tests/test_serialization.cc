// Tests for the persistence layer: Paillier key text format and the binary
// encrypted-database format, including corruption handling — the artifacts
// of the Alice -> C1 / Alice -> C2 outsourcing hand-off.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bigint/random.h"
#include "core/db_io.h"
#include "core/data_owner.h"
#include "crypto/serialization.h"
#include "data/synthetic.h"

namespace sknn {
namespace {

PaillierKeyPair MakeKeys(unsigned bits = 256, uint64_t seed = 50) {
  Random rng(seed);
  return GeneratePaillierKeyPair(bits, rng).value();
}

TEST(KeySerializationTest, PublicKeyRoundTrip) {
  PaillierKeyPair keys = MakeKeys();
  std::string text = SerializePublicKey(keys.pk);
  EXPECT_NE(text.find("sknn-paillier-public-v1"), std::string::npos);
  auto parsed = ParsePublicKey(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->n(), keys.pk.n());
  EXPECT_EQ(parsed->g(), keys.pk.g());
  EXPECT_EQ(parsed->key_bits(), keys.pk.key_bits());
}

TEST(KeySerializationTest, SecretKeyRoundTripDecrypts) {
  PaillierKeyPair keys = MakeKeys();
  auto parsed = ParseSecretKey(SerializeSecretKey(keys.sk));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Random rng(51);
  for (int i = 0; i < 5; ++i) {
    BigInt m = rng.Below(keys.pk.n());
    Ciphertext c = keys.pk.Encrypt(m, rng);
    EXPECT_EQ(parsed->Decrypt(c), m);
  }
}

TEST(KeySerializationTest, RejectsWrongHeader) {
  PaillierKeyPair keys = MakeKeys();
  // Public text fed to the secret parser and vice versa.
  EXPECT_FALSE(ParseSecretKey(SerializePublicKey(keys.pk)).ok());
  EXPECT_FALSE(ParsePublicKey(SerializeSecretKey(keys.sk)).ok());
  EXPECT_FALSE(ParsePublicKey("").ok());
  EXPECT_FALSE(ParsePublicKey("garbage\n").ok());
}

TEST(KeySerializationTest, RejectsMissingOrCorruptFields) {
  EXPECT_FALSE(
      ParsePublicKey("sknn-paillier-public-v1\nkey_bits: 256\n").ok());
  EXPECT_FALSE(
      ParsePublicKey("sknn-paillier-public-v1\nn: ff\nkey_bits: xyz\n").ok());
  // n inconsistent with key_bits.
  EXPECT_FALSE(
      ParsePublicKey("sknn-paillier-public-v1\nkey_bits: 256\nn: ff\n").ok());
  // Secret key with composite factors.
  EXPECT_FALSE(ParseSecretKey(
                   "sknn-paillier-secret-v1\nkey_bits: 16\np: ff\nq: fd\n")
                   .ok());
}

TEST(KeySerializationTest, FileRoundTrip) {
  PaillierKeyPair keys = MakeKeys();
  std::string pk_path = testing::TempDir() + "/sknn_pk.txt";
  std::string sk_path = testing::TempDir() + "/sknn_sk.txt";
  ASSERT_TRUE(WritePublicKeyFile(pk_path, keys.pk).ok());
  ASSERT_TRUE(WriteSecretKeyFile(sk_path, keys.sk).ok());
  auto pk = ReadPublicKeyFile(pk_path);
  auto sk = ReadSecretKeyFile(sk_path);
  ASSERT_TRUE(pk.ok());
  ASSERT_TRUE(sk.ok());
  EXPECT_EQ(pk->n(), keys.pk.n());
  Random rng(52);
  Ciphertext c = pk->Encrypt(BigInt(777), rng);
  EXPECT_EQ(sk->Decrypt(c), BigInt(777));
  std::remove(pk_path.c_str());
  std::remove(sk_path.c_str());
  EXPECT_FALSE(ReadPublicKeyFile("/nonexistent/pk").ok());
}

class DbIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    keys_ = MakeKeys(256, 60);
    DataOwner alice = [] {
      // DataOwner::Create would generate fresh keys; build the encrypted DB
      // directly so the test controls the key pair.
      return DataOwner::Create(256).value();
    }();
    table_ = GenerateUniformTable(7, 3, 15, 61);
    auto db = alice.EncryptDatabase(table_, 4);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    pk_ = alice.public_key();
    path_ = testing::TempDir() + "/sknn_db.bin";
  }

  void TearDown() override { std::remove(path_.c_str()); }

  PaillierKeyPair keys_;
  PlainTable table_;
  EncryptedDatabase db_;
  PaillierPublicKey pk_;
  std::string path_;
};

TEST_F(DbIoTest, RoundTripPreservesEverything) {
  ASSERT_TRUE(WriteEncryptedDatabase(path_, db_).ok());
  auto loaded = ReadEncryptedDatabase(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_records(), db_.num_records());
  EXPECT_EQ(loaded->num_attributes(), db_.num_attributes());
  EXPECT_EQ(loaded->distance_bits, db_.distance_bits);
  for (std::size_t i = 0; i < db_.num_records(); ++i) {
    for (std::size_t j = 0; j < db_.num_attributes(); ++j) {
      EXPECT_EQ(loaded->records[i][j], db_.records[i][j]);
    }
  }
  EXPECT_TRUE(ValidateCiphertexts(*loaded, pk_).ok());
}

TEST_F(DbIoTest, RejectsBadMagicAndTruncation) {
  ASSERT_TRUE(WriteEncryptedDatabase(path_, db_).ok());
  // Corrupt the magic.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XXXXXXXX", 8);
  }
  EXPECT_FALSE(ReadEncryptedDatabase(path_).ok());

  // Truncate the file.
  ASSERT_TRUE(WriteEncryptedDatabase(path_, db_).ok());
  {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    auto size = in.tellg();
    std::vector<char> buf(static_cast<std::size_t>(size) / 2);
    in.seekg(0);
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
  EXPECT_FALSE(ReadEncryptedDatabase(path_).ok());
}

TEST_F(DbIoTest, RejectsTrailingGarbage) {
  ASSERT_TRUE(WriteEncryptedDatabase(path_, db_).ok());
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write("x", 1);
  }
  EXPECT_FALSE(ReadEncryptedDatabase(path_).ok());
}

TEST_F(DbIoTest, ValidateCatchesForeignKey) {
  // Ciphertexts valid under Alice's key are (overwhelmingly likely) invalid
  // under an unrelated key: either out of range or sharing a factor never —
  // but the range check alone suffices for a smaller modulus.
  Random rng(62);
  auto other = GeneratePaillierKeyPair(128, rng).value();
  EXPECT_FALSE(ValidateCiphertexts(db_, other.pk).ok());
}

TEST_F(DbIoTest, ValidateCatchesTamperedCiphertext) {
  db_.records[2][1] = Ciphertext(pk_.n_squared());  // out of range
  EXPECT_FALSE(ValidateCiphertexts(db_, pk_).ok());
}

TEST(DbIoErrorTest, WriteRejectsEmptyAndUnopenablePaths) {
  EXPECT_FALSE(WriteEncryptedDatabase("/tmp/x.bin", EncryptedDatabase{}).ok());
  EXPECT_FALSE(ReadEncryptedDatabase("/nonexistent/db.bin").ok());
}

}  // namespace
}  // namespace sknn
