// Tests for the persistence layer: Paillier key text format and the binary
// encrypted-database format, including corruption handling — the artifacts
// of the Alice -> C1 / Alice -> C2 outsourcing hand-off.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <set>

#include "bigint/random.h"
#include "core/db_io.h"
#include "core/data_owner.h"
#include "crypto/serialization.h"
#include "data/synthetic.h"
#include "net/query_wire.h"
#include "net/shard_wire.h"

namespace sknn {
namespace {

PaillierKeyPair MakeKeys(unsigned bits = 256, uint64_t seed = 50) {
  Random rng(seed);
  return GeneratePaillierKeyPair(bits, rng).value();
}

TEST(KeySerializationTest, PublicKeyRoundTrip) {
  PaillierKeyPair keys = MakeKeys();
  std::string text = SerializePublicKey(keys.pk);
  EXPECT_NE(text.find("sknn-paillier-public-v1"), std::string::npos);
  auto parsed = ParsePublicKey(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->n(), keys.pk.n());
  EXPECT_EQ(parsed->g(), keys.pk.g());
  EXPECT_EQ(parsed->key_bits(), keys.pk.key_bits());
}

TEST(KeySerializationTest, SecretKeyRoundTripDecrypts) {
  PaillierKeyPair keys = MakeKeys();
  auto parsed = ParseSecretKey(SerializeSecretKey(keys.sk));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Random rng(51);
  for (int i = 0; i < 5; ++i) {
    BigInt m = rng.Below(keys.pk.n());
    Ciphertext c = keys.pk.Encrypt(m, rng);
    EXPECT_EQ(parsed->Decrypt(c), m);
  }
}

TEST(KeySerializationTest, RejectsWrongHeader) {
  PaillierKeyPair keys = MakeKeys();
  // Public text fed to the secret parser and vice versa.
  EXPECT_FALSE(ParseSecretKey(SerializePublicKey(keys.pk)).ok());
  EXPECT_FALSE(ParsePublicKey(SerializeSecretKey(keys.sk)).ok());
  EXPECT_FALSE(ParsePublicKey("").ok());
  EXPECT_FALSE(ParsePublicKey("garbage\n").ok());
}

TEST(KeySerializationTest, RejectsMissingOrCorruptFields) {
  EXPECT_FALSE(
      ParsePublicKey("sknn-paillier-public-v1\nkey_bits: 256\n").ok());
  EXPECT_FALSE(
      ParsePublicKey("sknn-paillier-public-v1\nn: ff\nkey_bits: xyz\n").ok());
  // n inconsistent with key_bits.
  EXPECT_FALSE(
      ParsePublicKey("sknn-paillier-public-v1\nkey_bits: 256\nn: ff\n").ok());
  // Secret key with composite factors.
  EXPECT_FALSE(ParseSecretKey(
                   "sknn-paillier-secret-v1\nkey_bits: 16\np: ff\nq: fd\n")
                   .ok());
}

TEST(KeySerializationTest, FileRoundTrip) {
  PaillierKeyPair keys = MakeKeys();
  std::string pk_path = testing::TempDir() + "/sknn_pk.txt";
  std::string sk_path = testing::TempDir() + "/sknn_sk.txt";
  ASSERT_TRUE(WritePublicKeyFile(pk_path, keys.pk).ok());
  ASSERT_TRUE(WriteSecretKeyFile(sk_path, keys.sk).ok());
  auto pk = ReadPublicKeyFile(pk_path);
  auto sk = ReadSecretKeyFile(sk_path);
  ASSERT_TRUE(pk.ok());
  ASSERT_TRUE(sk.ok());
  EXPECT_EQ(pk->n(), keys.pk.n());
  Random rng(52);
  Ciphertext c = pk->Encrypt(BigInt(777), rng);
  EXPECT_EQ(sk->Decrypt(c), BigInt(777));
  std::remove(pk_path.c_str());
  std::remove(sk_path.c_str());
  EXPECT_FALSE(ReadPublicKeyFile("/nonexistent/pk").ok());
}

class DbIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    keys_ = MakeKeys(256, 60);
    DataOwner alice = [] {
      // DataOwner::Create would generate fresh keys; build the encrypted DB
      // directly so the test controls the key pair.
      return DataOwner::Create(256).value();
    }();
    table_ = GenerateUniformTable(7, 3, 15, 61);
    auto db = alice.EncryptDatabase(table_, 4);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    pk_ = alice.public_key();
    path_ = testing::TempDir() + "/sknn_db.bin";
  }

  void TearDown() override { std::remove(path_.c_str()); }

  PaillierKeyPair keys_;
  PlainTable table_;
  EncryptedDatabase db_;
  PaillierPublicKey pk_;
  std::string path_;
};

TEST_F(DbIoTest, RoundTripPreservesEverything) {
  ASSERT_TRUE(WriteEncryptedDatabase(path_, db_).ok());
  auto loaded = ReadEncryptedDatabase(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_records(), db_.num_records());
  EXPECT_EQ(loaded->num_attributes(), db_.num_attributes());
  EXPECT_EQ(loaded->distance_bits, db_.distance_bits);
  for (std::size_t i = 0; i < db_.num_records(); ++i) {
    for (std::size_t j = 0; j < db_.num_attributes(); ++j) {
      EXPECT_EQ(loaded->records[i][j], db_.records[i][j]);
    }
  }
  EXPECT_TRUE(ValidateCiphertexts(*loaded, pk_).ok());
}

TEST_F(DbIoTest, RejectsBadMagicAndTruncation) {
  ASSERT_TRUE(WriteEncryptedDatabase(path_, db_).ok());
  // Corrupt the magic.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("XXXXXXXX", 8);
  }
  EXPECT_FALSE(ReadEncryptedDatabase(path_).ok());

  // Truncate the file.
  ASSERT_TRUE(WriteEncryptedDatabase(path_, db_).ok());
  {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    auto size = in.tellg();
    std::vector<char> buf(static_cast<std::size_t>(size) / 2);
    in.seekg(0);
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
  EXPECT_FALSE(ReadEncryptedDatabase(path_).ok());
}

TEST_F(DbIoTest, RejectsTrailingGarbage) {
  ASSERT_TRUE(WriteEncryptedDatabase(path_, db_).ok());
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write("x", 1);
  }
  EXPECT_FALSE(ReadEncryptedDatabase(path_).ok());
}

TEST_F(DbIoTest, ValidateCatchesForeignKey) {
  // Ciphertexts valid under Alice's key are (overwhelmingly likely) invalid
  // under an unrelated key: either out of range or sharing a factor never —
  // but the range check alone suffices for a smaller modulus.
  Random rng(62);
  auto other = GeneratePaillierKeyPair(128, rng).value();
  EXPECT_FALSE(ValidateCiphertexts(db_, other.pk).ok());
}

TEST_F(DbIoTest, ValidateCatchesTamperedCiphertext) {
  db_.records[2][1] = Ciphertext(pk_.n_squared());  // out of range
  EXPECT_FALSE(ValidateCiphertexts(db_, pk_).ok());
}

TEST(DbIoErrorTest, WriteRejectsEmptyAndUnopenablePaths) {
  EXPECT_FALSE(WriteEncryptedDatabase("/tmp/x.bin", EncryptedDatabase{}).ok());
  EXPECT_FALSE(ReadEncryptedDatabase("/nonexistent/db.bin").ok());
}

// ---------------------------------------------------------------------------
// Malformed-frame sweep over BOTH wire catalogs (net/query_wire.h,
// net/shard_wire.h): every frame type, truncated at EVERY aux length from 0
// to full. A truncated frame must decode successfully ONLY at the lengths
// the contract documents as valid shorter shapes (kQuery's optional
// revision tails, kShardQuery's optional deadline word, the free-length
// error-message frames); every other cut must come back as a typed error —
// never an out-of-bounds read, which the sanitizer CI leg would turn into a
// crash right here.

// Decodes `full` truncated to every prefix length; `decodes_ok` must return
// true exactly at the lengths in `allowed` (the full length is always
// allowed).
void SweepAuxTruncations(const Message& full,
                         const std::set<std::size_t>& allowed,
                         const std::function<bool(const Message&)>& decodes_ok,
                         const char* what) {
  for (std::size_t cut = 0; cut <= full.aux.size(); ++cut) {
    Message truncated = full;
    truncated.aux.resize(cut);
    const bool ok = decodes_ok(truncated);
    if (cut == full.aux.size() || allowed.count(cut)) {
      EXPECT_TRUE(ok) << what << " must decode at aux length " << cut;
    } else {
      EXPECT_FALSE(ok) << what << " truncated to aux length " << cut << " (of "
                       << full.aux.size() << ") decoded instead of failing";
    }
  }
}

TEST(FrameTruncationSweep, QueryRequestAllowsOnlyDocumentedTails) {
  QueryRequest request;
  request.record = {5, -3, 7};
  request.k = 2;
  request.protocol = QueryProtocol::kSecure;
  request.table = "t1";
  request.deadline_ms = 250;
  request.index_mode = IndexMode::kClustered;
  request.probe_clusters = 2;
  Message full = EncodeQueryRequest(request);
  // header(16) + record(24) = revision-1 shape; + len(4) + "t1"(2) =
  // revision-2; + deadline(4) = revision-3; + mode/probe(8) = revision-5.
  ASSERT_EQ(full.aux.size(), 58u);
  SweepAuxTruncations(
      full, {40, 46, 50},
      [](const Message& m) { return DecodeQueryRequest(m).ok(); }, "kQuery");

  // The exact-mode frame keeps the revision-3/4 shape byte for byte: no
  // clustered tail ever rides a default request (old servers stay
  // compatible with new exact-mode clients).
  request.index_mode = IndexMode::kExact;
  request.deadline_ms = 0;
  EXPECT_EQ(EncodeQueryRequest(request).aux.size(), 46u);
}

TEST(FrameTruncationSweep, QueryResponsePerShardBlocksAreExactSize) {
  QueryResponse response;
  response.records = {{1, 2, 3}, {4, 5, 6}};
  response.shards.resize(2);
  response.shards[0].shard = 0;
  response.shards[0].candidates = 2;
  response.shards[1].shard = 1;
  response.shards[1].pruned = 1;
  response.shards[1].shard_records = 9;
  Message full = EncodeQueryResponse(response);
  SweepAuxTruncations(
      full, {}, [](const Message& m) { return DecodeQueryResponse(m).ok(); },
      "kQueryResult");
  // And the widened revision-5 block actually round-trips.
  auto decoded = DecodeQueryResponse(full);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->shards.size(), 2u);
  EXPECT_EQ(decoded->shards[1].pruned, 1u);
  EXPECT_EQ(decoded->shards[1].shard_records, 9u);
}

TEST(FrameTruncationSweep, ErrorFramesNeedOnlyTheStatusCode) {
  // The message text is free-length: every cut >= 4 is a (shorter) valid
  // frame; cuts 0..3 must fail, not read past the end.
  Message query_error = EncodeQueryError(Status::InvalidArgument("boom"));
  std::set<std::size_t> text_cuts;
  for (std::size_t cut = 4; cut < query_error.aux.size(); ++cut) {
    text_cuts.insert(cut);
  }
  SweepAuxTruncations(query_error, text_cuts,
                      [](const Message& m) {
                        return DecodeQueryError(m).code() ==
                               StatusCode::kInvalidArgument;
                      },
                      "kQueryError");
  Message shard_error = EncodeShardError(Status::InvalidArgument("boom"));
  SweepAuxTruncations(shard_error, text_cuts,
                      [](const Message& m) {
                        return DecodeShardError(m).code() ==
                               StatusCode::kInvalidArgument;
                      },
                      "kShardError");
}

TEST(FrameTruncationSweep, ControlPlaneFramesAreExactSize) {
  SweepAuxTruncations(
      EncodeHello(HelloInfo{}), {},
      [](const Message& m) { return DecodeHello(m).ok(); }, "kHello");
  SweepAuxTruncations(
      EncodeHelloAck(HelloInfo{}), {},
      [](const Message& m) { return DecodeHelloAck(m).ok(); }, "kHelloAck");
  SweepAuxTruncations(
      EncodeTableList({"alpha", "b"}), {},
      [](const Message& m) { return DecodeTableList(m).ok(); }, "kTableList");
  SweepAuxTruncations(
      EncodeTableInfoRequest("tbl"), {},
      [](const Message& m) { return DecodeTableInfoRequest(m).ok(); },
      "kTableInfo");

  TableInfoReply info;
  info.name = "tbl";
  info.num_records = 100;
  info.num_clusters = 8;
  SweepAuxTruncations(
      EncodeTableInfoReply(info), {},
      [](const Message& m) { return DecodeTableInfoReply(m).ok(); },
      "kTableInfoResult");

  ServiceStatsReply stats;
  stats.tables.resize(2);
  stats.tables[0].name = "a";
  stats.tables[1].name = "longer-name";
  SweepAuxTruncations(
      EncodeServiceStatsReply(stats), {},
      [](const Message& m) { return DecodeServiceStatsReply(m).ok(); },
      "kServiceStatsResult");

  HealthReply health;
  health.tables.resize(2);
  health.tables[0].name = "replicated";
  health.tables[0].replicas.resize(2);
  health.tables[1].name = "local";
  SweepAuxTruncations(
      EncodeHealthReply(health), {},
      [](const Message& m) { return DecodeHealthReply(m).ok(); },
      "kHealthResult");

  SweepAuxTruncations(
      EncodeReloadTableRequest({"tbl", "db=/x.bin,shards=2"}), {},
      [](const Message& m) { return DecodeReloadTableRequest(m).ok(); },
      "kReloadTable");
  SweepAuxTruncations(
      EncodeDetachTableRequest("tbl"), {},
      [](const Message& m) { return DecodeDetachTableRequest(m).ok(); },
      "kDetachTable");
  SweepAuxTruncations(
      EncodeAdminAck("tbl"), {},
      [](const Message& m) { return DecodeAdminAck(m).ok(); }, "kAdminAck");
  SweepAuxTruncations(
      EncodeTableChanged({"tbl", TableChangeKind::kDetached}), {},
      [](const Message& m) { return DecodeTableChanged(m).ok(); },
      "kTableChanged");
}

TEST(FrameTruncationSweep, ShardFramesAllowOnlyTheDeadlineTail) {
  ShardGeometry geometry;
  geometry.manifest.num_shards = 4;
  geometry.manifest.total_records = 100;
  geometry.shard_records = 25;
  SweepAuxTruncations(
      EncodeShardGeometry(geometry), {},
      [](const Message& m) { return DecodeShardGeometry(m).ok(); },
      "kShardPing geometry");

  ShardQueryFrame query;
  query.k = 2;
  query.deadline_ms = 500;
  query.enc_query = {Ciphertext(BigInt(7))};
  // aux length 8 = the pre-deadline header, a documented valid shape.
  SweepAuxTruncations(
      EncodeShardQuery(query), {8},
      [](const Message& m) { return DecodeShardQuery(m).ok(); },
      "kShardQuery");

  // Secure-mode candidates: bits + records, no indices/distances.
  ShardCandidatesFrame secure;
  secure.candidates.bits = {{Ciphertext(BigInt(1)), Ciphertext(BigInt(2))},
                            {Ciphertext(BigInt(3)), Ciphertext(BigInt(4))}};
  secure.candidates.records = {{Ciphertext(BigInt(5))},
                               {Ciphertext(BigInt(6))}};
  SweepAuxTruncations(
      EncodeShardCandidates(secure), {},
      [](const Message& m) { return DecodeShardCandidates(m).ok(); },
      "kShardCandidates (secure)");

  // Basic-mode candidates: distances + global indices widen the aux block.
  ShardCandidatesFrame basic;
  basic.candidates.records = {{Ciphertext(BigInt(5))},
                              {Ciphertext(BigInt(6))}};
  basic.candidates.distances = {Ciphertext(BigInt(9)),
                                Ciphertext(BigInt(10))};
  basic.candidates.global_indices = {3, 11};
  SweepAuxTruncations(
      EncodeShardCandidates(basic), {},
      [](const Message& m) { return DecodeShardCandidates(m).ok(); },
      "kShardCandidates (basic)");
}

}  // namespace
}  // namespace sknn
