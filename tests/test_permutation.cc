// Tests for the permutation utility — the access-pattern defense shared by
// SMIN and SkNN_m — including an empirical uniformity check.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "proto/permutation.h"

namespace sknn {
namespace {

TEST(PermutationTest, IdentityByDefault) {
  Permutation p(5);
  std::vector<int> in = {10, 11, 12, 13, 14};
  EXPECT_EQ(p.Apply(in), in);
  EXPECT_EQ(p.ApplyInverse(in), in);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(p.At(i), i);
}

TEST(PermutationTest, ApplyInverseUndoesApply) {
  Random rng(71);
  for (std::size_t n : {1u, 2u, 7u, 64u}) {
    Permutation p = Permutation::Sample(n, rng);
    std::vector<std::size_t> in(n);
    std::iota(in.begin(), in.end(), 100);
    EXPECT_EQ(p.ApplyInverse(p.Apply(in)), in) << "n=" << n;
    EXPECT_EQ(p.Apply(p.ApplyInverse(in)), in) << "n=" << n;
  }
}

TEST(PermutationTest, ApplyIsABijection) {
  Random rng(72);
  Permutation p = Permutation::Sample(20, rng);
  std::vector<std::size_t> in(20);
  std::iota(in.begin(), in.end(), 0);
  std::vector<std::size_t> out = p.Apply(in);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, in);  // every element appears exactly once
}

TEST(PermutationTest, AtMatchesApply) {
  Random rng(73);
  Permutation p = Permutation::Sample(9, rng);
  std::vector<std::size_t> in(9);
  std::iota(in.begin(), in.end(), 0);
  std::vector<std::size_t> out = p.Apply(in);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(out[p.At(i)], in[i]);
  }
}

TEST(PermutationTest, SampleIsRoughlyUniform) {
  // Chi-squared-style smoke test: over many samples of S_3, each of the 6
  // permutations should appear a reasonable number of times.
  Random rng(74);
  std::map<std::vector<std::size_t>, int> counts;
  const int kSamples = 1200;
  for (int s = 0; s < kSamples; ++s) {
    Permutation p = Permutation::Sample(3, rng);
    counts[{p.At(0), p.At(1), p.At(2)}]++;
  }
  ASSERT_EQ(counts.size(), 6u) << "some permutation of S_3 never sampled";
  for (const auto& [perm, count] : counts) {
    // Expected 200 each; Binomial(1200, 1/6) is within [120, 280] except
    // with probability < 1e-8.
    EXPECT_GT(count, 120);
    EXPECT_LT(count, 280);
  }
}

TEST(PermutationTest, SingleElement) {
  Random rng(75);
  Permutation p = Permutation::Sample(1, rng);
  EXPECT_EQ(p.At(0), 0u);
  std::vector<int> in = {42};
  EXPECT_EQ(p.Apply(in), in);
}

}  // namespace
}  // namespace sknn
