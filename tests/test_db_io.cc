// db_io negative paths: every way a persisted artifact can be wrong —
// truncated or corrupted SKNNDB/SKNNSH headers, version skew from a
// different format revision, geometry lies, manifest/database mismatch —
// must come back as a Status error. No crash, no silent partial load, no
// serving a database that is not what Alice exported.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/data_owner.h"
#include "core/db_io.h"

namespace sknn {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/db_io_" + name;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// One small real database on disk, shared by every case: 3 records x 2
// attributes under a 256-bit key (mutations below copy the bytes; the
// original file stays pristine).
class DbIoNegativeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto alice = DataOwner::Create(256);
    ASSERT_TRUE(alice.ok()) << alice.status();
    auto db = alice->EncryptDatabase({{1, 2}, {3, 4}, {5, 6}},
                                     /*attr_bits=*/3);
    ASSERT_TRUE(db.ok()) << db.status();
    db_path_ = new std::string(TempPath("good.bin"));
    ASSERT_TRUE(WriteEncryptedDatabase(*db_path_, *db).ok());
    db_bytes_ = new std::vector<uint8_t>(ReadFileBytes(*db_path_));
    db_ = new EncryptedDatabase(std::move(db).value());

    auto manifest = MakeShardManifest(/*total_records=*/3, /*num_shards=*/3,
                                      ShardScheme::kRoundRobin);
    ASSERT_TRUE(manifest.ok()) << manifest.status();
    manifest_path_ = new std::string(TempPath("good.manifest"));
    ASSERT_TRUE(WriteShardManifest(*manifest_path_, *manifest).ok());
    manifest_bytes_ = new std::vector<uint8_t>(ReadFileBytes(*manifest_path_));
  }

  // Writes a mutated copy and expects the named loader to reject it with a
  // non-crashing error whose message contains `want_substr`.
  template <typename Loader>
  void ExpectRejected(const std::vector<uint8_t>& bytes, Loader loader,
                      const std::string& want_substr,
                      const std::string& tag) {
    const std::string path = TempPath(tag);
    WriteFileBytes(path, bytes);
    auto loaded = loader(path);
    ASSERT_FALSE(loaded.ok()) << tag << ": load unexpectedly succeeded";
    EXPECT_NE(loaded.status().message().find(want_substr), std::string::npos)
        << tag << ": got '" << loaded.status().ToString() << "'";
  }

  static std::string* db_path_;
  static std::vector<uint8_t>* db_bytes_;
  static EncryptedDatabase* db_;
  static std::string* manifest_path_;
  static std::vector<uint8_t>* manifest_bytes_;
};

std::string* DbIoNegativeTest::db_path_ = nullptr;
std::vector<uint8_t>* DbIoNegativeTest::db_bytes_ = nullptr;
EncryptedDatabase* DbIoNegativeTest::db_ = nullptr;
std::string* DbIoNegativeTest::manifest_path_ = nullptr;
std::vector<uint8_t>* DbIoNegativeTest::manifest_bytes_ = nullptr;

auto LoadDb = [](const std::string& path) {
  return ReadEncryptedDatabase(path);
};
auto LoadManifest = [](const std::string& path) {
  return ReadShardManifest(path);
};

TEST_F(DbIoNegativeTest, GoodArtifactsStillLoad) {
  ASSERT_TRUE(ReadEncryptedDatabase(*db_path_).ok());
  ASSERT_TRUE(ReadShardManifest(*manifest_path_).ok());
}

TEST_F(DbIoNegativeTest, MissingFileIsIoError) {
  auto db = ReadEncryptedDatabase(TempPath("no_such_file"));
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kIoError);
  auto manifest = ReadShardManifest(TempPath("no_such_file"));
  ASSERT_FALSE(manifest.ok());
  EXPECT_EQ(manifest.status().code(), StatusCode::kIoError);
}

TEST_F(DbIoNegativeTest, TruncatedDatabaseHeaderRejected) {
  // Every prefix of the header region: magic fragments and partial
  // geometry words.
  for (std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{8},
                          std::size_t{10}, std::size_t{19}}) {
    std::vector<uint8_t> bytes(db_bytes_->begin(),
                               db_bytes_->begin() + static_cast<long>(len));
    const std::string path = TempPath("trunc_hdr_" + std::to_string(len));
    WriteFileBytes(path, bytes);
    auto loaded = ReadEncryptedDatabase(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
  }
}

TEST_F(DbIoNegativeTest, TruncatedCiphertextBodyRejected) {
  // Cut mid-ciphertext: drop the trailing third of the file.
  std::vector<uint8_t> bytes(*db_bytes_);
  bytes.resize(bytes.size() * 2 / 3);
  ExpectRejected(bytes, LoadDb, "truncated", "trunc_body.bin");
}

TEST_F(DbIoNegativeTest, TrailingGarbageRejected) {
  std::vector<uint8_t> bytes(*db_bytes_);
  bytes.push_back(0x5a);
  ExpectRejected(bytes, LoadDb, "trailing", "trailing.bin");
}

TEST_F(DbIoNegativeTest, ForeignMagicRejected) {
  std::vector<uint8_t> bytes(*db_bytes_);
  bytes[0] = 'X';
  ExpectRejected(bytes, LoadDb, "not an sknn database", "foreign.bin");
}

TEST_F(DbIoNegativeTest, DatabaseVersionSkewRejectedExplicitly) {
  // Same family, different format revision: "SKNNDB02". The error must say
  // version, not "bad magic" — the operator's fix (re-export) differs.
  std::vector<uint8_t> bytes(*db_bytes_);
  bytes[7] = '2';
  ExpectRejected(bytes, LoadDb, "unsupported format revision",
                 "version_skew.bin");
}

TEST_F(DbIoNegativeTest, ZeroGeometryRejected) {
  // n = 0 (bytes 8..11 little-endian).
  std::vector<uint8_t> bytes(*db_bytes_);
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0;
  ExpectRejected(bytes, LoadDb, "bad geometry", "zero_n.bin");
}

TEST_F(DbIoNegativeTest, GeometryLyingAboutRecordCountRejected) {
  // Claim 4 records while the body holds 3: the reader must run out of
  // bytes, not fabricate a record.
  std::vector<uint8_t> bytes(*db_bytes_);
  bytes[8] = 4;
  ExpectRejected(bytes, LoadDb, "truncated", "lying_n.bin");
}

TEST_F(DbIoNegativeTest, TruncatedManifestRejected) {
  for (std::size_t len : {std::size_t{0}, std::size_t{5}, std::size_t{8},
                          std::size_t{14}, std::size_t{19}}) {
    std::vector<uint8_t> bytes(manifest_bytes_->begin(),
                               manifest_bytes_->begin() +
                                   static_cast<long>(len));
    const std::string path = TempPath("trunc_man_" + std::to_string(len));
    WriteFileBytes(path, bytes);
    auto loaded = ReadShardManifest(path);
    ASSERT_FALSE(loaded.ok()) << "manifest prefix of " << len << " loaded";
  }
}

TEST_F(DbIoNegativeTest, ManifestVersionSkewRejectedExplicitly) {
  std::vector<uint8_t> bytes(*manifest_bytes_);
  bytes[7] = '9';
  ExpectRejected(bytes, LoadManifest, "unsupported format revision",
                 "manifest_skew.bin");
}

TEST_F(DbIoNegativeTest, ManifestForeignMagicRejected) {
  std::vector<uint8_t> bytes(*manifest_bytes_);
  bytes[2] = 'Z';
  ExpectRejected(bytes, LoadManifest, "not a shard manifest",
                 "manifest_foreign.bin");
}

TEST_F(DbIoNegativeTest, ManifestUnknownSchemeRejected) {
  // scheme (bytes 8..11) = 7: not a ShardScheme.
  std::vector<uint8_t> bytes(*manifest_bytes_);
  bytes[8] = 7;
  ExpectRejected(bytes, LoadManifest, "unknown scheme", "manifest_scheme.bin");
}

TEST_F(DbIoNegativeTest, ManifestImpossiblePartitionRejected) {
  // 3 shards over 0 records: MakeShardManifest's invariant (every shard
  // holds at least one record) must hold for LOADED manifests too.
  std::vector<uint8_t> bytes(*manifest_bytes_);
  bytes[16] = bytes[17] = bytes[18] = bytes[19] = 0;  // total_records = 0
  const std::string path = TempPath("manifest_empty.bin");
  WriteFileBytes(path, bytes);
  auto loaded = ReadShardManifest(path);
  ASSERT_FALSE(loaded.ok());
}

TEST_F(DbIoNegativeTest, ManifestTrailingGarbageRejected) {
  std::vector<uint8_t> bytes(*manifest_bytes_);
  bytes.push_back(0);
  ExpectRejected(bytes, LoadManifest, "trailing", "manifest_trailing.bin");
}

TEST_F(DbIoNegativeTest, ManifestDatabaseMismatchCaughtAtLoad) {
  // A manifest for a 5-record export against the 3-record database: the
  // cross-check every loader runs before serving.
  auto other = MakeShardManifest(/*total_records=*/5, /*num_shards=*/2,
                                 ShardScheme::kContiguous);
  ASSERT_TRUE(other.ok());
  Status mismatch = ValidateManifestForDatabase(*other, *db_);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mismatch.message().find("not from the same export"),
            std::string::npos);

  auto good = ReadShardManifest(*manifest_path_);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(ValidateManifestForDatabase(*good, *db_).ok());
}

}  // namespace
}  // namespace sknn
