// Tests for the baselines: exact plaintext kNN, the small linear-algebra
// kit, the ASPE comparator scheme (order preservation), and the
// known-plaintext attack that breaks it — the security gap motivating the
// paper's protocols.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/aspe.h"
#include "baseline/linalg.h"
#include "baseline/plaintext_knn.h"
#include "data/synthetic.h"

namespace sknn {
namespace {

TEST(PlaintextKnnTest, SquaredDistance) {
  EXPECT_EQ(SquaredDistance({0, 0}, {3, 4}), 25);
  EXPECT_EQ(SquaredDistance({1, 1, 1}, {1, 1, 1}), 0);
  EXPECT_EQ(SquaredDistance({-2}, {2}), 16);
}

TEST(PlaintextKnnTest, FindsNearestInOrder) {
  PlainTable table = {{0, 0}, {10, 0}, {1, 1}, {5, 5}};
  PlainRecord query = {0, 1};
  auto idx = PlainKnnIndices(table, query, 3);
  // distances: 1, 101, 1, 41 -> ties at distance 1 broken by index.
  std::vector<std::size_t> expected = {0, 2, 3};
  EXPECT_EQ(idx, expected);
  PlainTable rows = PlainKnn(table, query, 2);
  PlainTable expected_rows = {{0, 0}, {1, 1}};
  EXPECT_EQ(rows, expected_rows);
}

TEST(PlaintextKnnTest, KEqualsNReturnsAll) {
  PlainTable table = {{5}, {1}, {3}};
  auto idx = PlainKnnIndices(table, {0}, 3);
  std::vector<std::size_t> expected = {1, 2, 0};
  EXPECT_EQ(idx, expected);
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix id = Matrix::Identity(3);
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_EQ(id.MultiplyVector(v), v);
}

TEST(MatrixTest, TransposeSwapsIndices) {
  Matrix m(2, 3);
  m.At(0, 1) = 5.0;
  m.At(1, 2) = 7.0;
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.At(1, 0), 5.0);
  EXPECT_EQ(t.At(2, 1), 7.0);
}

TEST(MatrixTest, InverseRoundTrip) {
  Random rng(7);
  Matrix m = Matrix::RandomInvertible(5, rng);
  auto inv = m.Inverse();
  ASSERT_TRUE(inv.ok());
  Matrix prod = m.Multiply(*inv);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(prod.At(r, c), r == c ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(MatrixTest, SingularMatrixHasNoInverse) {
  Matrix m(2, 2);  // all zeros
  EXPECT_FALSE(m.Inverse().ok());
  Matrix rect(2, 3);
  EXPECT_FALSE(rect.Inverse().ok());
}

TEST(MatrixTest, DotProduct) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

class AspeTest : public ::testing::Test {
 protected:
  Random rng_{2024};
};

TEST_F(AspeTest, PreservesKnnOrder) {
  const std::size_t n = 60, m = 5;
  const int64_t max_value = 100;
  PlainTable table = GenerateUniformTable(n, m, max_value, 1);
  PlainRecord query = GenerateUniformQuery(m, max_value, 2);

  AspeScheme scheme = AspeScheme::Create(m, rng_);
  std::vector<AspeVector> enc_points;
  for (const auto& row : table) enc_points.push_back(scheme.EncryptPoint(row));
  AspeVector enc_query = scheme.EncryptQuery(query, rng_);

  for (unsigned k : {1u, 5u, 10u}) {
    auto secure_idx = AspeScheme::Knn(enc_points, enc_query, k);
    auto plain_idx = PlainKnnIndices(table, query, k);
    // Compare distance multisets (ties may order differently).
    std::multiset<int64_t> a, b;
    for (std::size_t i : secure_idx) a.insert(SquaredDistance(table[i], query));
    for (std::size_t i : plain_idx) b.insert(SquaredDistance(table[i], query));
    EXPECT_EQ(a, b) << "k=" << k;
  }
}

TEST_F(AspeTest, QueryEncryptionIsRandomized) {
  AspeScheme scheme = AspeScheme::Create(3, rng_);
  PlainRecord q = {1, 2, 3};
  AspeVector e1 = scheme.EncryptQuery(q, rng_);
  AspeVector e2 = scheme.EncryptQuery(q, rng_);
  EXPECT_NE(e1, e2) << "query scaling factor must be fresh";
}

TEST_F(AspeTest, KnownPlaintextAttackRecoversEverything) {
  // The break the paper cites (Section 2.1.1): with m+1 known pairs the
  // attacker decrypts the whole outsourced database.
  const std::size_t m = 4;
  const int64_t max_value = 50;
  PlainTable table = GenerateUniformTable(30, m, max_value, 3);
  AspeScheme scheme = AspeScheme::Create(m, rng_);
  std::vector<AspeVector> enc_points;
  for (const auto& row : table) enc_points.push_back(scheme.EncryptPoint(row));

  // Attacker knows the first m+2 records (e.g. via insertion or insider).
  std::size_t known = m + 2;
  std::vector<PlainRecord> known_plain(table.begin(), table.begin() + known);
  std::vector<AspeVector> known_enc(enc_points.begin(),
                                    enc_points.begin() + known);
  auto attack = AspeKnownPlaintextAttack::Fit(known_plain, known_enc);
  ASSERT_TRUE(attack.ok()) << attack.status();

  // Every other ciphertext now decrypts.
  for (std::size_t i = known; i < table.size(); ++i) {
    EXPECT_EQ(attack->Decrypt(enc_points[i]), table[i]) << "record " << i;
  }
}

TEST_F(AspeTest, AttackRequiresEnoughPairs) {
  const std::size_t m = 4;
  PlainTable table = GenerateUniformTable(3, m, 50, 4);  // m+1 = 5 needed
  AspeScheme scheme = AspeScheme::Create(m, rng_);
  std::vector<AspeVector> enc;
  for (const auto& row : table) enc.push_back(scheme.EncryptPoint(row));
  EXPECT_FALSE(AspeKnownPlaintextAttack::Fit(
                   {table.begin(), table.end()}, enc)
                   .ok());
}

}  // namespace
}  // namespace sknn
