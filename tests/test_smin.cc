// Tests for SMIN / SMIN_n: the paper's Example 5, exhaustive small domains
// (including the delicate u == v case), batches, tournaments of every size,
// and property sweeps across bit widths.
#include <gtest/gtest.h>

#include <algorithm>

#include "proto/smin.h"
#include "tests/proto_test_util.h"

namespace sknn {
namespace {

class SminTest : public ::testing::Test {
 protected:
  TwoPartyHarness harness_;
  Random rng_{555};
};

TEST_F(SminTest, PaperExample5) {
  // Example 5: u = 55, v = 58, l = 6 -> [min] = [55].
  auto result = SecureMin(harness_.ctx(), harness_.EncryptBits(55, 6),
                          harness_.EncryptBits(58, 6));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(harness_.DecryptBits(*result), 55u);
}

TEST_F(SminTest, ExhaustiveThreeBitPairs) {
  for (uint64_t u = 0; u < 8; ++u) {
    for (uint64_t v = 0; v < 8; ++v) {
      auto result = SecureMin(harness_.ctx(), harness_.EncryptBits(u, 3),
                              harness_.EncryptBits(v, 3));
      ASSERT_TRUE(result.ok()) << "u=" << u << " v=" << v;
      EXPECT_EQ(harness_.DecryptBits(*result), std::min(u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST_F(SminTest, EqualOperands) {
  // u == v leaves no differing bit: the H chain never fires and alpha must
  // come out 0 — either operand is the correct minimum.
  for (uint64_t z : {uint64_t{0}, uint64_t{9}, uint64_t{63}}) {
    auto result = SecureMin(harness_.ctx(), harness_.EncryptBits(z, 6),
                            harness_.EncryptBits(z, 6));
    ASSERT_TRUE(result.ok()) << "z=" << z;
    EXPECT_EQ(harness_.DecryptBits(*result), z);
  }
}

TEST_F(SminTest, SingleBitWidth) {
  for (uint64_t u = 0; u < 2; ++u) {
    for (uint64_t v = 0; v < 2; ++v) {
      auto result = SecureMin(harness_.ctx(), harness_.EncryptBits(u, 1),
                              harness_.EncryptBits(v, 1));
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(harness_.DecryptBits(*result), std::min(u, v));
    }
  }
}

TEST_F(SminTest, BatchOfPairs) {
  std::vector<EncryptedBits> us, vs;
  std::vector<uint64_t> expected;
  for (int i = 0; i < 12; ++i) {
    uint64_t u = rng_.UniformUint64(1 << 8);
    uint64_t v = rng_.UniformUint64(1 << 8);
    us.push_back(harness_.EncryptBits(u, 8));
    vs.push_back(harness_.EncryptBits(v, 8));
    expected.push_back(std::min(u, v));
  }
  auto result = SecureMinBatch(harness_.ctx(), us, vs);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(harness_.DecryptBits((*result)[i]), expected[i]) << i;
  }
}

TEST_F(SminTest, RejectsRaggedInput) {
  std::vector<EncryptedBits> us = {harness_.EncryptBits(1, 4)};
  std::vector<EncryptedBits> vs = {harness_.EncryptBits(1, 5)};
  EXPECT_FALSE(SecureMinBatch(harness_.ctx(), us, vs).ok());
  EXPECT_FALSE(SecureMinBatch(harness_.ctx(), us, {}).ok());
}

TEST_F(SminTest, MinNOverVariousSizes) {
  // Tournament shapes: 1 (degenerate), 2, 3 (odd carry), 6 (the paper's
  // Figure 1 example), 8 (perfect tree), 13 (repeated carries).
  for (std::size_t n : {1u, 2u, 3u, 6u, 8u, 13u}) {
    std::vector<uint64_t> values;
    std::vector<EncryptedBits> enc;
    for (std::size_t i = 0; i < n; ++i) {
      uint64_t v = rng_.UniformUint64(1 << 10);
      values.push_back(v);
      enc.push_back(harness_.EncryptBits(v, 10));
    }
    auto result = SecureMinN(harness_.ctx(), enc);
    ASSERT_TRUE(result.ok()) << "n=" << n;
    EXPECT_EQ(harness_.DecryptBits(*result),
              *std::min_element(values.begin(), values.end()))
        << "n=" << n;
  }
}

TEST_F(SminTest, MinNWithDuplicatesOfMinimum) {
  std::vector<EncryptedBits> enc;
  for (uint64_t v : {7u, 3u, 9u, 3u, 3u, 8u}) {
    enc.push_back(harness_.EncryptBits(v, 4));
  }
  auto result = SecureMinN(harness_.ctx(), enc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(harness_.DecryptBits(*result), 3u);
}

TEST_F(SminTest, MinNAllEqual) {
  std::vector<EncryptedBits> enc(5, harness_.EncryptBits(42, 6));
  auto result = SecureMinN(harness_.ctx(), enc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(harness_.DecryptBits(*result), 42u);
}

TEST_F(SminTest, MinNRejectsEmpty) {
  EXPECT_FALSE(SecureMinN(harness_.ctx(), {}).ok());
  EXPECT_FALSE(SecureMinNLinear(harness_.ctx(), {}).ok());
}

TEST_F(SminTest, LinearScanMatchesTournament) {
  std::vector<uint64_t> values;
  std::vector<EncryptedBits> enc;
  for (int i = 0; i < 7; ++i) {
    uint64_t v = rng_.UniformUint64(1 << 6);
    values.push_back(v);
    enc.push_back(harness_.EncryptBits(v, 6));
  }
  auto linear = SecureMinNLinear(harness_.ctx(), enc);
  auto tournament = SecureMinN(harness_.ctx(), enc);
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(tournament.ok());
  uint64_t expected = *std::min_element(values.begin(), values.end());
  EXPECT_EQ(harness_.DecryptBits(*linear), expected);
  EXPECT_EQ(harness_.DecryptBits(*tournament), expected);
}

TEST_F(SminTest, MinNZeroIncluded) {
  std::vector<EncryptedBits> enc;
  for (uint64_t v : {5u, 0u, 3u}) {
    enc.push_back(harness_.EncryptBits(v, 5));
  }
  auto result = SecureMinN(harness_.ctx(), enc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(harness_.DecryptBits(*result), 0u);
}

// Property sweeps over widths, sizes and parallelism.
class SminProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(SminProperty, TournamentFindsGlobalMinimum) {
  auto [l, n] = GetParam();
  TwoPartyHarness harness(256, 9000 + l * 100 + n);
  Random rng(17 * l + n);
  std::vector<uint64_t> values;
  std::vector<EncryptedBits> enc;
  for (std::size_t i = 0; i < n; ++i) {
    uint64_t v = rng.UniformUint64(uint64_t{1} << l);
    values.push_back(v);
    enc.push_back(harness.EncryptBits(v, l));
  }
  auto result = SecureMinN(harness.ctx(), enc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(harness.DecryptBits(*result),
            *std::min_element(values.begin(), values.end()));
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSizes, SminProperty,
    ::testing::Combine(::testing::Values(4u, 6u, 12u),
                       ::testing::Values(std::size_t{2}, std::size_t{5},
                                         std::size_t{16})));

TEST(SminParallelTest, ParallelTournamentMatches) {
  TwoPartyHarness harness(256, 4242, /*c1_threads=*/3, /*c2_threads=*/2);
  Random rng(11);
  std::vector<uint64_t> values;
  std::vector<EncryptedBits> enc;
  for (int i = 0; i < 20; ++i) {
    uint64_t v = rng.UniformUint64(1 << 8);
    values.push_back(v);
    enc.push_back(harness.EncryptBits(v, 8));
  }
  auto result = SecureMinN(harness.ctx(), enc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(harness.DecryptBits(*result),
            *std::min_element(values.begin(), values.end()));
}

}  // namespace
}  // namespace sknn
