// Tests for the common utilities: Status/Result, logging levels, the thread
// pool, the stopwatch, and the bench-artifact JSON section emitter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace sknn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kProtocolError, StatusCode::kCryptoError,
        StatusCode::kIoError, StatusCode::kNotFound,
        StatusCode::kResourceExhausted, StatusCode::kUnavailable}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterViaMacro(int v) {
  SKNN_ASSIGN_OR_RETURN(int half, Half(v));
  SKNN_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = Half(8);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 4);
  EXPECT_EQ(*good, 4);

  Result<int> bad = Half(7);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterViaMacro(8).value(), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());  // second Half fails (3 is odd)
  EXPECT_FALSE(QuarterViaMacro(7).ok());  // first Half fails
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(LoggingTest, LevelFiltering) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SKNN_LOG(Info) << "must be suppressed";
  SetLogLevel(before);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 20; ++i) {
    futs.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not run"; });
  int runs = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ZeroRequestedBecomesOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

class MergeJsonSectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/merge_json_section_test.json";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string ReadFile() const {
    std::ifstream in(path_);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  std::string path_;
};

TEST_F(MergeJsonSectionTest, AppendsNewSectionsInOrder) {
  bench::MergeJsonSection(path_, "alpha", "{\"x\": 1}");
  bench::MergeJsonSection(path_, "beta", "[1, 2, 3]");
  EXPECT_EQ(ReadFile(),
            "{\n  \"alpha\": {\"x\": 1},\n  \"beta\": [1, 2, 3]\n}\n");
}

TEST_F(MergeJsonSectionTest, ReRunReplacesInPlaceWithoutTouchingNeighbors) {
  bench::MergeJsonSection(path_, "alpha", "{\"x\": 1}");
  bench::MergeJsonSection(path_, "beta", "{\"kept\": [1, {\"y\": 2}]}");
  bench::MergeJsonSection(path_, "gamma", "3.5");
  // The bug this pins down: re-emitting an existing section used to drop it
  // from its position and append it at the end, shuffling the artifact on
  // every re-run. It must be replaced where it stands, neighbors untouched.
  bench::MergeJsonSection(path_, "alpha", "{\"x\": 99}");
  EXPECT_EQ(ReadFile(),
            "{\n  \"alpha\": {\"x\": 99},\n"
            "  \"beta\": {\"kept\": [1, {\"y\": 2}]},\n"
            "  \"gamma\": 3.5\n}\n");
}

TEST_F(MergeJsonSectionTest, ReRunIsByteStable) {
  bench::MergeJsonSection(path_, "alpha", "{\"x\": 1}");
  bench::MergeJsonSection(path_, "beta", "2");
  std::string before = ReadFile();
  // Identical rewrites must be byte-identical fixpoints (no whitespace
  // accumulation in the untouched sections, no reordering).
  bench::MergeJsonSection(path_, "beta", "2");
  bench::MergeJsonSection(path_, "beta", "2");
  EXPECT_EQ(ReadFile(), before);
}

TEST_F(MergeJsonSectionTest, SurvivesTrickyValues) {
  // Values with nested objects, strings holding braces/commas/escapes, and
  // empty strings must round-trip through the member scanner.
  const std::string tricky =
      "{\"s\": \"a, \\\"b\\\" {c}\", \"empty\": \"\", \"arr\": [[1], {}]}";
  bench::MergeJsonSection(path_, "alpha", tricky);
  bench::MergeJsonSection(path_, "beta", "1");
  bench::MergeJsonSection(path_, "beta", "2");
  EXPECT_EQ(ReadFile(),
            "{\n  \"alpha\": " + tricky + ",\n  \"beta\": 2\n}\n");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.ElapsedMillis(), 15);
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  sw.Reset();
  EXPECT_LT(sw.ElapsedMillis(), 15);
}

}  // namespace
}  // namespace sknn
