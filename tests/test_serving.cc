// End-to-end tests of the serving split (PR 3): thin client ->
// QueryService (C1 query front end) -> SknnEngine::CreateWithRemoteC2 ->
// standalone C2 over a real loopback TCP link — the four-party deployment
// of docs/DEPLOY.md, exercised in one process.
//
// The reference for every assertion is the in-process engine: the remote
// path must return records bitwise-identical to SknnEngine::Query for
// basic, secure and farthest, under concurrency, with per-query
// instrumentation intact across both process boundaries.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/query_wire.h"
#include "net/socket.h"
#include "serve/query_service.h"
#include "serve/remote_query_client.h"

namespace sknn {
namespace {

// Records {i, 0} against queries on the x-axis have pairwise-distinct
// squared distances, so every protocol's answer is deterministic and the
// remote path can be compared to the local engine bitwise.
PlainTable DistinctDistanceTable(std::size_t n) {
  PlainTable table;
  for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
    table.push_back({i, 0});
  }
  return table;
}

QueryRequest MakeRequest(PlainRecord record, unsigned k,
                         QueryProtocol protocol) {
  QueryRequest request;
  request.record = std::move(record);
  request.k = k;
  request.protocol = protocol;
  return request;
}

// The whole deployment in one object: a local reference engine (which also
// supplies the keys), a standalone C2 behind a TCP RpcServer, a
// CreateWithRemoteC2 engine driving it, and a QueryService in front.
class ServingTopology {
 public:
  explicit ServingTopology(const PlainTable& table,
                           std::size_t c1_threads = 2,
                           std::size_t max_in_flight = 8,
                           std::size_t shards = 1) {
    SknnEngine::Options options;
    options.key_bits = 256;
    options.attr_bits = 3;
    options.c1_threads = c1_threads;
    options.c2_threads = 2;
    options.randomizer_pool_capacity = 64;  // keep background fill light
    auto reference = SknnEngine::Create(table, options);
    EXPECT_TRUE(reference.ok()) << reference.status();
    reference_ = std::move(reference).value();

    // The standalone key holder: same secret key, own process in the real
    // deployment, own socket server here.
    c2_ = std::make_unique<C2Service>(
        PaillierSecretKey(reference_->c2_service().secret_key()));
    c2_->EnableRandomizerPool(/*capacity=*/64);
    auto listener = TcpListener::Bind(0);
    EXPECT_TRUE(listener.ok()) << listener.status();
    std::thread accepter([&] {
      auto accepted = listener->Accept();
      EXPECT_TRUE(accepted.ok()) << accepted.status();
      C2Service* c2_raw = c2_.get();
      c2_server_ = std::make_unique<RpcServer>(
          std::move(accepted).value(),
          [c2_raw](const Message& req) { return c2_raw->Handle(req); },
          /*worker_threads=*/2);
    });
    auto c2_link = ConnectTcp("127.0.0.1", listener->port());
    EXPECT_TRUE(c2_link.ok()) << c2_link.status();
    accepter.join();

    // The C1 front end: public artifacts only (pk + Epk(T)) plus the link.
    // The reference engine above stays UNSHARDED on purpose: the sharded
    // front end must be indistinguishable from it on the wire.
    options.shards = shards;
    auto engine = SknnEngine::CreateWithRemoteC2(
        reference_->public_key(), EncryptedDatabase(reference_->database()),
        std::move(c2_link).value(), options);
    EXPECT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();

    QueryService::Options service_options;
    service_options.max_in_flight = max_in_flight;
    service_ = std::make_unique<QueryService>(engine_.get(), service_options);
    Status started = service_->Start(0);
    EXPECT_TRUE(started.ok()) << started;
  }

  ~ServingTopology() {
    if (service_ != nullptr) service_->Shutdown();
  }

  SknnEngine& reference() { return *reference_; }
  QueryService& service() { return *service_; }

  std::unique_ptr<RemoteQueryClient> NewClient() {
    auto client = RemoteQueryClient::Connect("127.0.0.1", service_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

 private:
  // Declaration order is teardown order in reverse: the service goes first
  // (drains clients), then the front-end engine (closes the C2 link, which
  // lets the C2 server's accept loop exit), then the C2 server, then C2.
  std::unique_ptr<SknnEngine> reference_;
  std::unique_ptr<C2Service> c2_;
  std::unique_ptr<RpcServer> c2_server_;
  std::unique_ptr<SknnEngine> engine_;
  std::unique_ptr<QueryService> service_;
};

TEST(ServingTest, RemotePathMatchesLocalEngineBitwise) {
  ServingTopology topology(DistinctDistanceTable(8));
  auto client = topology.NewClient();
  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure,
        QueryProtocol::kFarthest}) {
    QueryRequest request = MakeRequest({7, 0}, 2, protocol);
    auto local = topology.reference().Query(request);
    ASSERT_TRUE(local.ok()) << local.status();
    auto remote = client->Query(request);
    ASSERT_TRUE(remote.ok()) << remote.status();
    EXPECT_EQ(remote->records, local->records)
        << "protocol " << QueryProtocolName(protocol);
    // Instrumentation crossed both wires: the thin client sees the real
    // C1<->C2 traffic and both clouds' Paillier ops.
    EXPECT_GT(remote->traffic.total_frames(), 0u);
    EXPECT_GT(remote->ops.decryptions, 0u);
    if (protocol != QueryProtocol::kBasic) {
      EXPECT_GT(remote->breakdown.total(), 0.0);
    }
  }
}

TEST(ServingTest, ConcurrentThinClientsAllGetTheirOwnAnswer) {
  ServingTopology topology(DistinctDistanceTable(8), /*c1_threads=*/2,
                           /*max_in_flight=*/8);
  // Distinct queries with distinct answers, so any cross-query interleaving
  // of outboxes or responses would be visible.
  std::vector<QueryRequest> requests = {
      MakeRequest({0, 0}, 2, QueryProtocol::kBasic),
      MakeRequest({5, 0}, 1, QueryProtocol::kBasic),
      MakeRequest({7, 0}, 2, QueryProtocol::kSecure),
      MakeRequest({1, 0}, 1, QueryProtocol::kSecure),
  };
  std::vector<PlainTable> expected;
  for (const auto& request : requests) {
    auto local = topology.reference().Query(request);
    ASSERT_TRUE(local.ok()) << local.status();
    expected.push_back(local->records);
  }

  std::vector<std::thread> clients;
  std::vector<Result<QueryResponse>> responses(
      requests.size(), Result<QueryResponse>(Status::Internal("unset")));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    clients.emplace_back([&, i] {
      auto client = topology.NewClient();
      responses[i] = client->Query(requests[i]);
    });
  }
  for (auto& t : clients) t.join();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].status();
    EXPECT_EQ(responses[i]->records, expected[i]) << "request " << i;
  }
  EXPECT_EQ(topology.service().stats().queries_completed, requests.size());
}

TEST(ServingTest, BackpressureRejectsAndRetrySucceeds) {
  ServingTopology topology(DistinctDistanceTable(8), /*c1_threads=*/1,
                           /*max_in_flight=*/1);
  QueryRequest request = MakeRequest({7, 0}, 2, QueryProtocol::kSecure);
  auto expected = topology.reference().Query(request);
  ASSERT_TRUE(expected.ok()) << expected.status();

  constexpr int kClients = 5;
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  std::vector<Result<QueryResponse>> responses(
      kClients, Result<QueryResponse>(Status::Internal("unset")));
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto client = topology.NewClient();
      for (;;) {
        responses[i] = client->Query(request);
        if (responses[i].ok() || responses[i].status().code() !=
                                     StatusCode::kResourceExhausted) {
          return;
        }
        // The thin-client contract: ResourceExhausted means back off and
        // retry; eventually everyone is served.
        rejected.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->records, expected->records);
  }
  // Five secure queries admitted one at a time: the burst must have tripped
  // the admission bound at least once.
  EXPECT_GT(rejected.load(), 0);
  EXPECT_EQ(topology.service().stats().queries_rejected,
            static_cast<uint64_t>(rejected.load()));
  EXPECT_EQ(topology.service().stats().queries_completed,
            static_cast<uint64_t>(kClients));
}

TEST(ServingTest, ShardedServiceBackpressureRejectsNotQueuesAndRetriesSucceed) {
  // The sharded front end under overload: an in-process 2-shard engine
  // behind a QueryService with a one-slot admission budget and a burst of
  // concurrent clients. Backpressure semantics must be exactly the
  // unsharded ones — reject with ResourceExhausted, never queue — and
  // every retried query must come back with the correct (reference-equal)
  // records and per-shard stats.
  ServingTopology topology(DistinctDistanceTable(8), /*c1_threads=*/2,
                           /*max_in_flight=*/1, /*shards=*/2);
  QueryRequest request = MakeRequest({7, 0}, 2, QueryProtocol::kSecure);
  auto expected = topology.reference().Query(request);
  ASSERT_TRUE(expected.ok()) << expected.status();

  constexpr int kClients = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  std::vector<Result<QueryResponse>> responses(
      kClients, Result<QueryResponse>(Status::Internal("unset")));
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto client = topology.NewClient();
      for (;;) {
        responses[i] = client->Query(request);
        if (responses[i].ok() || responses[i].status().code() !=
                                     StatusCode::kResourceExhausted) {
          return;
        }
        rejected.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->records, expected->records)
        << "a retried sharded query returned wrong records";
    // The shard split crossed the client wire intact.
    ASSERT_EQ(response->shards.size(), 2u);
    EXPECT_GT(response->shards[0].traffic.total_frames(), 0u);
    EXPECT_GT(response->shards[1].traffic.total_frames(), 0u);
  }
  EXPECT_GT(rejected.load(), 0);
  EXPECT_EQ(topology.service().stats().queries_rejected,
            static_cast<uint64_t>(rejected.load()));
  EXPECT_EQ(topology.service().stats().queries_completed,
            static_cast<uint64_t>(kClients));
}

TEST(ServingTest, InvalidRequestsGetRealStatusCodesOverTheWire) {
  ServingTopology topology(DistinctDistanceTable(4));
  auto client = topology.NewClient();

  auto k_zero = client->Query(MakeRequest({1, 0}, 0, QueryProtocol::kBasic));
  ASSERT_FALSE(k_zero.ok());
  EXPECT_EQ(k_zero.status().code(), StatusCode::kInvalidArgument);

  auto k_too_big =
      client->Query(MakeRequest({1, 0}, 99, QueryProtocol::kBasic));
  ASSERT_FALSE(k_too_big.ok());
  // k > k_max is a malformed REQUEST (fail fast at admission), not a range
  // overrun mid-protocol: typed kInvalidArgument, before any crypto runs.
  EXPECT_EQ(k_too_big.status().code(), StatusCode::kInvalidArgument);

  auto bad_dim =
      client->Query(MakeRequest({1, 0, 3}, 1, QueryProtocol::kBasic));
  ASSERT_FALSE(bad_dim.ok());
  EXPECT_EQ(bad_dim.status().code(), StatusCode::kInvalidArgument);

  auto out_of_domain =
      client->Query(MakeRequest({12345, 0}, 1, QueryProtocol::kSecure));
  ASSERT_FALSE(out_of_domain.ok());
  EXPECT_EQ(out_of_domain.status().code(), StatusCode::kOutOfRange);

  // The failures above must not have consumed the admission budget.
  auto still_fine =
      client->Query(MakeRequest({1, 0}, 1, QueryProtocol::kBasic));
  EXPECT_TRUE(still_fine.ok()) << still_fine.status();
}

TEST(ServingTest, RetryBackoffSurvivesDegenerateAndExtremePolicies) {
  // The backoff arithmetic must stay positive and finite for ANY policy a
  // config file can express — a mis-parsed zero/negative initial backoff
  // must not busy-loop, and extreme values must not overflow the int64
  // conversion into a zero or negative sleep.
  RetryPolicy policy;
  policy.jitter = 0.0;

  policy.initial_backoff = std::chrono::milliseconds(0);
  EXPECT_EQ(RetryBackoff(policy, 1, 0.5).count(), 1);
  policy.initial_backoff = std::chrono::milliseconds(-50);
  EXPECT_EQ(RetryBackoff(policy, 1, 0.5).count(), 1);
  policy.max_backoff = std::chrono::milliseconds(-1);
  EXPECT_GE(RetryBackoff(policy, 40, 0.5).count(), 1);

  // Huge attempt counts: the exponential shift is capped, the wait lands on
  // max_backoff instead of wrapping to zero/negative.
  policy.initial_backoff = std::chrono::milliseconds(50);
  policy.max_backoff = std::chrono::milliseconds(2000);
  EXPECT_EQ(RetryBackoff(policy, 1000000, 0.5).count(), 2000);
  EXPECT_EQ(RetryBackoff(policy, std::numeric_limits<int>::max(), 0.5).count(),
            2000);

  // milliseconds::max() everywhere: the result is clamped below int64
  // range, still positive, still monotone in spirit (a cap, not a wrap).
  policy.initial_backoff = std::chrono::milliseconds::max();
  policy.max_backoff = std::chrono::milliseconds::max();
  const auto extreme = RetryBackoff(policy, 100, 1.0);
  EXPECT_GT(extreme.count(), 0);
  EXPECT_LE(extreme.count(), static_cast<int64_t>(9.0e15));

  // Jitter never zeroes the wait either: even full jitter with a 0 draw
  // keeps the 1 ms floor.
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(1);
  policy.jitter = 1.0;
  EXPECT_GE(RetryBackoff(policy, 1, 0.0).count(), 1);
}

TEST(ServingTest, DeadlineZeroMeansUnboundedEverywhere) {
  // deadline_ms = 0 is "no deadline" at every layer: the wire omits or
  // zeroes the word, the decoder reproduces 0, and the serving stack runs
  // the query to completion instead of expiring it instantly.
  QueryRequest request = MakeRequest({1, 0}, 2, QueryProtocol::kSecure);
  request.deadline_ms = 0;
  // Exact-mode frames omit the deadline word entirely when it is 0 (the
  // pre-deadline frame shape, byte for byte)...
  Message frame = EncodeQueryRequest(request);
  auto decoded = DecodeQueryRequest(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->deadline_ms, 0u);
  // ...and clustered-mode frames carry it as an explicit 0, which still
  // decodes as unbounded.
  request.index_mode = IndexMode::kClustered;
  Message clustered_frame = EncodeQueryRequest(request);
  EXPECT_EQ(clustered_frame.aux.size(), frame.aux.size() + 12);
  auto clustered_decoded = DecodeQueryRequest(clustered_frame);
  ASSERT_TRUE(clustered_decoded.ok()) << clustered_decoded.status();
  EXPECT_EQ(clustered_decoded->deadline_ms, 0u);

  ServingTopology topology(DistinctDistanceTable(6));
  auto client = topology.NewClient();
  QueryRequest unbounded = MakeRequest({2, 0}, 3, QueryProtocol::kSecure);
  unbounded.deadline_ms = 0;
  auto no_deadline = client->Query(unbounded);
  ASSERT_TRUE(no_deadline.ok()) << no_deadline.status();
  QueryRequest generous = MakeRequest({2, 0}, 3, QueryProtocol::kSecure);
  generous.deadline_ms = 600000;
  auto with_deadline = client->Query(generous);
  ASSERT_TRUE(with_deadline.ok()) << with_deadline.status();
  EXPECT_EQ(no_deadline->records, with_deadline->records);
}

TEST(ServingTest, MalformedFramesAreRejectedNotHung) {
  ServingTopology topology(DistinctDistanceTable(4));
  auto link = ConnectTcp("127.0.0.1", topology.service().port());
  ASSERT_TRUE(link.ok()) << link.status();
  RpcClient raw(std::move(link).value());

  // A frame with the right opcode and garbage aux.
  Message garbage;
  garbage.type = FrontendOpCode(FrontendOp::kQuery);
  garbage.aux = {1, 2, 3};
  auto reply = raw.Call(std::move(garbage));
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->type, FrontendOpCode(FrontendOp::kQueryError));
  EXPECT_EQ(DecodeQueryError(*reply).code(), StatusCode::kProtocolError);

  // A frame from the wrong opcode space entirely (a C1<->C2 opcode).
  Message wrong_space;
  wrong_space.type = 2;  // Op::kSmBatch
  auto reply2 = raw.Call(std::move(wrong_space));
  ASSERT_TRUE(reply2.ok()) << reply2.status();
  EXPECT_EQ(reply2->type, FrontendOpCode(FrontendOp::kQueryError));
}

TEST(ServingTest, CreateWithRemoteC2FailsFastOnDeadLink) {
  PlainTable table = DistinctDistanceTable(4);
  SknnEngine::Options options;
  options.key_bits = 256;
  options.attr_bits = 3;
  auto reference = SknnEngine::Create(table, options);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // A listener that is immediately closed: the connect may succeed at the
  // TCP level, but the ping gets no answer.
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  uint16_t dead_port = listener->port();
  auto link = ConnectTcp("127.0.0.1", dead_port);
  listener->Close();
  if (!link.ok()) return;  // connect itself failed: equally fine
  auto engine = SknnEngine::CreateWithRemoteC2(
      (*reference)->public_key(), EncryptedDatabase((*reference)->database()),
      std::move(link).value(), options);
  EXPECT_FALSE(engine.ok());
}

}  // namespace
}  // namespace sknn
