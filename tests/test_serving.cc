// End-to-end tests of the serving split (PR 3): thin client ->
// QueryService (C1 query front end) -> SknnEngine::CreateWithRemoteC2 ->
// standalone C2 over a real loopback TCP link — the four-party deployment
// of docs/DEPLOY.md, exercised in one process.
//
// The reference for every assertion is the in-process engine: the remote
// path must return records bitwise-identical to SknnEngine::Query for
// basic, secure and farthest, under concurrency, with per-query
// instrumentation intact across both process boundaries.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/query_wire.h"
#include "net/socket.h"
#include "serve/query_service.h"
#include "serve/remote_query_client.h"

namespace sknn {
namespace {

// Records {i, 0} against queries on the x-axis have pairwise-distinct
// squared distances, so every protocol's answer is deterministic and the
// remote path can be compared to the local engine bitwise.
PlainTable DistinctDistanceTable(std::size_t n) {
  PlainTable table;
  for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
    table.push_back({i, 0});
  }
  return table;
}

QueryRequest MakeRequest(PlainRecord record, unsigned k,
                         QueryProtocol protocol) {
  QueryRequest request;
  request.record = std::move(record);
  request.k = k;
  request.protocol = protocol;
  return request;
}

// The whole deployment in one object: a local reference engine (which also
// supplies the keys), a standalone C2 behind a TCP RpcServer, a
// CreateWithRemoteC2 engine driving it, and a QueryService in front.
class ServingTopology {
 public:
  explicit ServingTopology(const PlainTable& table,
                           std::size_t c1_threads = 2,
                           std::size_t max_in_flight = 8,
                           std::size_t shards = 1) {
    SknnEngine::Options options;
    options.key_bits = 256;
    options.attr_bits = 3;
    options.c1_threads = c1_threads;
    options.c2_threads = 2;
    options.randomizer_pool_capacity = 64;  // keep background fill light
    auto reference = SknnEngine::Create(table, options);
    EXPECT_TRUE(reference.ok()) << reference.status();
    reference_ = std::move(reference).value();

    // The standalone key holder: same secret key, own process in the real
    // deployment, own socket server here.
    c2_ = std::make_unique<C2Service>(
        PaillierSecretKey(reference_->c2_service().secret_key()));
    c2_->EnableRandomizerPool(/*capacity=*/64);
    auto listener = TcpListener::Bind(0);
    EXPECT_TRUE(listener.ok()) << listener.status();
    std::thread accepter([&] {
      auto accepted = listener->Accept();
      EXPECT_TRUE(accepted.ok()) << accepted.status();
      C2Service* c2_raw = c2_.get();
      c2_server_ = std::make_unique<RpcServer>(
          std::move(accepted).value(),
          [c2_raw](const Message& req) { return c2_raw->Handle(req); },
          /*worker_threads=*/2);
    });
    auto c2_link = ConnectTcp("127.0.0.1", listener->port());
    EXPECT_TRUE(c2_link.ok()) << c2_link.status();
    accepter.join();

    // The C1 front end: public artifacts only (pk + Epk(T)) plus the link.
    // The reference engine above stays UNSHARDED on purpose: the sharded
    // front end must be indistinguishable from it on the wire.
    options.shards = shards;
    auto engine = SknnEngine::CreateWithRemoteC2(
        reference_->public_key(), EncryptedDatabase(reference_->database()),
        std::move(c2_link).value(), options);
    EXPECT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();

    QueryService::Options service_options;
    service_options.max_in_flight = max_in_flight;
    service_ = std::make_unique<QueryService>(engine_.get(), service_options);
    Status started = service_->Start(0);
    EXPECT_TRUE(started.ok()) << started;
  }

  ~ServingTopology() {
    if (service_ != nullptr) service_->Shutdown();
  }

  SknnEngine& reference() { return *reference_; }
  QueryService& service() { return *service_; }

  std::unique_ptr<RemoteQueryClient> NewClient() {
    auto client = RemoteQueryClient::Connect("127.0.0.1", service_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return std::move(client).value();
  }

 private:
  // Declaration order is teardown order in reverse: the service goes first
  // (drains clients), then the front-end engine (closes the C2 link, which
  // lets the C2 server's accept loop exit), then the C2 server, then C2.
  std::unique_ptr<SknnEngine> reference_;
  std::unique_ptr<C2Service> c2_;
  std::unique_ptr<RpcServer> c2_server_;
  std::unique_ptr<SknnEngine> engine_;
  std::unique_ptr<QueryService> service_;
};

TEST(ServingTest, RemotePathMatchesLocalEngineBitwise) {
  ServingTopology topology(DistinctDistanceTable(8));
  auto client = topology.NewClient();
  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure,
        QueryProtocol::kFarthest}) {
    QueryRequest request = MakeRequest({7, 0}, 2, protocol);
    auto local = topology.reference().Query(request);
    ASSERT_TRUE(local.ok()) << local.status();
    auto remote = client->Query(request);
    ASSERT_TRUE(remote.ok()) << remote.status();
    EXPECT_EQ(remote->records, local->records)
        << "protocol " << QueryProtocolName(protocol);
    // Instrumentation crossed both wires: the thin client sees the real
    // C1<->C2 traffic and both clouds' Paillier ops.
    EXPECT_GT(remote->traffic.total_frames(), 0u);
    EXPECT_GT(remote->ops.decryptions, 0u);
    if (protocol != QueryProtocol::kBasic) {
      EXPECT_GT(remote->breakdown.total(), 0.0);
    }
  }
}

TEST(ServingTest, ConcurrentThinClientsAllGetTheirOwnAnswer) {
  ServingTopology topology(DistinctDistanceTable(8), /*c1_threads=*/2,
                           /*max_in_flight=*/8);
  // Distinct queries with distinct answers, so any cross-query interleaving
  // of outboxes or responses would be visible.
  std::vector<QueryRequest> requests = {
      MakeRequest({0, 0}, 2, QueryProtocol::kBasic),
      MakeRequest({5, 0}, 1, QueryProtocol::kBasic),
      MakeRequest({7, 0}, 2, QueryProtocol::kSecure),
      MakeRequest({1, 0}, 1, QueryProtocol::kSecure),
  };
  std::vector<PlainTable> expected;
  for (const auto& request : requests) {
    auto local = topology.reference().Query(request);
    ASSERT_TRUE(local.ok()) << local.status();
    expected.push_back(local->records);
  }

  std::vector<std::thread> clients;
  std::vector<Result<QueryResponse>> responses(
      requests.size(), Result<QueryResponse>(Status::Internal("unset")));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    clients.emplace_back([&, i] {
      auto client = topology.NewClient();
      responses[i] = client->Query(requests[i]);
    });
  }
  for (auto& t : clients) t.join();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(responses[i].ok()) << responses[i].status();
    EXPECT_EQ(responses[i]->records, expected[i]) << "request " << i;
  }
  EXPECT_EQ(topology.service().stats().queries_completed, requests.size());
}

TEST(ServingTest, BackpressureRejectsAndRetrySucceeds) {
  ServingTopology topology(DistinctDistanceTable(8), /*c1_threads=*/1,
                           /*max_in_flight=*/1);
  QueryRequest request = MakeRequest({7, 0}, 2, QueryProtocol::kSecure);
  auto expected = topology.reference().Query(request);
  ASSERT_TRUE(expected.ok()) << expected.status();

  constexpr int kClients = 5;
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  std::vector<Result<QueryResponse>> responses(
      kClients, Result<QueryResponse>(Status::Internal("unset")));
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto client = topology.NewClient();
      for (;;) {
        responses[i] = client->Query(request);
        if (responses[i].ok() || responses[i].status().code() !=
                                     StatusCode::kResourceExhausted) {
          return;
        }
        // The thin-client contract: ResourceExhausted means back off and
        // retry; eventually everyone is served.
        rejected.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->records, expected->records);
  }
  // Five secure queries admitted one at a time: the burst must have tripped
  // the admission bound at least once.
  EXPECT_GT(rejected.load(), 0);
  EXPECT_EQ(topology.service().stats().queries_rejected,
            static_cast<uint64_t>(rejected.load()));
  EXPECT_EQ(topology.service().stats().queries_completed,
            static_cast<uint64_t>(kClients));
}

TEST(ServingTest, ShardedServiceBackpressureRejectsNotQueuesAndRetriesSucceed) {
  // The sharded front end under overload: an in-process 2-shard engine
  // behind a QueryService with a one-slot admission budget and a burst of
  // concurrent clients. Backpressure semantics must be exactly the
  // unsharded ones — reject with ResourceExhausted, never queue — and
  // every retried query must come back with the correct (reference-equal)
  // records and per-shard stats.
  ServingTopology topology(DistinctDistanceTable(8), /*c1_threads=*/2,
                           /*max_in_flight=*/1, /*shards=*/2);
  QueryRequest request = MakeRequest({7, 0}, 2, QueryProtocol::kSecure);
  auto expected = topology.reference().Query(request);
  ASSERT_TRUE(expected.ok()) << expected.status();

  constexpr int kClients = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  std::vector<Result<QueryResponse>> responses(
      kClients, Result<QueryResponse>(Status::Internal("unset")));
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto client = topology.NewClient();
      for (;;) {
        responses[i] = client->Query(request);
        if (responses[i].ok() || responses[i].status().code() !=
                                     StatusCode::kResourceExhausted) {
          return;
        }
        rejected.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->records, expected->records)
        << "a retried sharded query returned wrong records";
    // The shard split crossed the client wire intact.
    ASSERT_EQ(response->shards.size(), 2u);
    EXPECT_GT(response->shards[0].traffic.total_frames(), 0u);
    EXPECT_GT(response->shards[1].traffic.total_frames(), 0u);
  }
  EXPECT_GT(rejected.load(), 0);
  EXPECT_EQ(topology.service().stats().queries_rejected,
            static_cast<uint64_t>(rejected.load()));
  EXPECT_EQ(topology.service().stats().queries_completed,
            static_cast<uint64_t>(kClients));
}

TEST(ServingTest, InvalidRequestsGetRealStatusCodesOverTheWire) {
  ServingTopology topology(DistinctDistanceTable(4));
  auto client = topology.NewClient();

  auto k_zero = client->Query(MakeRequest({1, 0}, 0, QueryProtocol::kBasic));
  ASSERT_FALSE(k_zero.ok());
  EXPECT_EQ(k_zero.status().code(), StatusCode::kInvalidArgument);

  auto k_too_big =
      client->Query(MakeRequest({1, 0}, 99, QueryProtocol::kBasic));
  ASSERT_FALSE(k_too_big.ok());
  EXPECT_EQ(k_too_big.status().code(), StatusCode::kOutOfRange);

  auto bad_dim =
      client->Query(MakeRequest({1, 0, 3}, 1, QueryProtocol::kBasic));
  ASSERT_FALSE(bad_dim.ok());
  EXPECT_EQ(bad_dim.status().code(), StatusCode::kInvalidArgument);

  auto out_of_domain =
      client->Query(MakeRequest({12345, 0}, 1, QueryProtocol::kSecure));
  ASSERT_FALSE(out_of_domain.ok());
  EXPECT_EQ(out_of_domain.status().code(), StatusCode::kOutOfRange);

  // The failures above must not have consumed the admission budget.
  auto still_fine =
      client->Query(MakeRequest({1, 0}, 1, QueryProtocol::kBasic));
  EXPECT_TRUE(still_fine.ok()) << still_fine.status();
}

TEST(ServingTest, MalformedFramesAreRejectedNotHung) {
  ServingTopology topology(DistinctDistanceTable(4));
  auto link = ConnectTcp("127.0.0.1", topology.service().port());
  ASSERT_TRUE(link.ok()) << link.status();
  RpcClient raw(std::move(link).value());

  // A frame with the right opcode and garbage aux.
  Message garbage;
  garbage.type = FrontendOpCode(FrontendOp::kQuery);
  garbage.aux = {1, 2, 3};
  auto reply = raw.Call(std::move(garbage));
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->type, FrontendOpCode(FrontendOp::kQueryError));
  EXPECT_EQ(DecodeQueryError(*reply).code(), StatusCode::kProtocolError);

  // A frame from the wrong opcode space entirely (a C1<->C2 opcode).
  Message wrong_space;
  wrong_space.type = 2;  // Op::kSmBatch
  auto reply2 = raw.Call(std::move(wrong_space));
  ASSERT_TRUE(reply2.ok()) << reply2.status();
  EXPECT_EQ(reply2->type, FrontendOpCode(FrontendOp::kQueryError));
}

TEST(ServingTest, CreateWithRemoteC2FailsFastOnDeadLink) {
  PlainTable table = DistinctDistanceTable(4);
  SknnEngine::Options options;
  options.key_bits = 256;
  options.attr_bits = 3;
  auto reference = SknnEngine::Create(table, options);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // A listener that is immediately closed: the connect may succeed at the
  // TCP level, but the ping gets no answer.
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  uint16_t dead_port = listener->port();
  auto link = ConnectTcp("127.0.0.1", dead_port);
  listener->Close();
  if (!link.ok()) return;  // connect itself failed: equally fine
  auto engine = SknnEngine::CreateWithRemoteC2(
      (*reference)->public_key(), EncryptedDatabase((*reference)->database()),
      std::move(link).value(), options);
  EXPECT_FALSE(engine.ok());
}

}  // namespace
}  // namespace sknn
