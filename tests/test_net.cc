// Tests for the network substrate: wire codec round trips and malformed
// frames, channel semantics (FIFO, close, traffic accounting), and the RPC
// layer including concurrent correlated calls — the property the parallel
// protocol variant depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/channel.h"
#include "net/message.h"
#include "net/rpc.h"

namespace sknn {
namespace {

TEST(WireCodecTest, RoundTripAllFields) {
  Message msg;
  msg.type = 7;
  msg.correlation_id = 0xDEADBEEFCAFEBABEull;
  msg.query_id = 0x0123456789ABCDEFull;
  msg.ints = {BigInt(0), BigInt(255),
              BigInt::FromString("123456789012345678901234567890").value()};
  msg.aux = {1, 2, 3, 0, 255};

  auto decoded = WireCodec::Decode(WireCodec::Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->correlation_id, msg.correlation_id);
  EXPECT_EQ(decoded->query_id, msg.query_id);
  ASSERT_EQ(decoded->ints.size(), msg.ints.size());
  for (std::size_t i = 0; i < msg.ints.size(); ++i) {
    EXPECT_EQ(decoded->ints[i], msg.ints[i]);
  }
  EXPECT_EQ(decoded->aux, msg.aux);
}

TEST(WireCodecTest, EmptyMessage) {
  Message msg;
  auto decoded = WireCodec::Decode(WireCodec::Encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->ints.empty());
  EXPECT_TRUE(decoded->aux.empty());
}

TEST(WireCodecTest, WireSizeMatchesEncodedSize) {
  Message msg;
  msg.type = 3;
  msg.ints = {BigInt(12345), BigInt(0)};
  msg.aux = {9, 9};
  EXPECT_EQ(WireCodec::Encode(msg).size(), msg.WireSize());
}

TEST(WireCodecTest, RejectsTruncatedFrames) {
  Message msg;
  msg.ints = {BigInt(1000)};
  std::vector<uint8_t> bytes = WireCodec::Encode(msg);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(WireCodec::Decode(truncated).ok()) << "cut at " << cut;
  }
}

TEST(WireCodecTest, RejectsTrailingBytes) {
  std::vector<uint8_t> bytes = WireCodec::Encode(Message{});
  bytes.push_back(0);
  EXPECT_FALSE(WireCodec::Decode(bytes).ok());
}

TEST(ChannelTest, FifoDelivery) {
  auto pair = Channel::CreatePair();
  EXPECT_TRUE(pair.a->Send({1}));
  EXPECT_TRUE(pair.a->Send({2}));
  std::vector<uint8_t> frame;
  ASSERT_TRUE(pair.b->Recv(&frame));
  EXPECT_EQ(frame, std::vector<uint8_t>{1});
  ASSERT_TRUE(pair.b->Recv(&frame));
  EXPECT_EQ(frame, std::vector<uint8_t>{2});
}

TEST(ChannelTest, BidirectionalTrafficAccounting) {
  auto pair = Channel::CreatePair();
  pair.a->Send({1, 2, 3});
  pair.b->Send({4, 5});
  TrafficStats stats = pair.a->channel().stats();
  EXPECT_EQ(stats.frames_a_to_b, 1u);
  EXPECT_EQ(stats.bytes_a_to_b, 3u);
  EXPECT_EQ(stats.frames_b_to_a, 1u);
  EXPECT_EQ(stats.bytes_b_to_a, 2u);
  EXPECT_EQ(stats.total_bytes(), 5u);
  EXPECT_EQ(stats.total_frames(), 2u);
  pair.a->channel().ResetStats();
  EXPECT_EQ(pair.a->channel().stats().total_bytes(), 0u);
}

TEST(ChannelTest, CloseUnblocksReceiver) {
  auto pair = Channel::CreatePair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pair.a->Close();
  });
  std::vector<uint8_t> frame;
  EXPECT_FALSE(pair.b->Recv(&frame));
  closer.join();
  EXPECT_FALSE(pair.a->Send({1}));
}

TEST(ChannelTest, SimulatedLatencyDelaysDelivery) {
  auto pair = Channel::CreatePair();
  pair.a->channel().set_latency(std::chrono::microseconds(30000));
  EXPECT_EQ(pair.a->channel().latency(), std::chrono::microseconds(30000));
  auto start = std::chrono::steady_clock::now();
  pair.a->Send({1});
  std::vector<uint8_t> frame;
  ASSERT_TRUE(pair.b->Recv(&frame));
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
}

TEST(ChannelTest, ZeroLatencyDeliversImmediately) {
  auto pair = Channel::CreatePair();
  auto start = std::chrono::steady_clock::now();
  pair.a->Send({1});
  std::vector<uint8_t> frame;
  ASSERT_TRUE(pair.b->Recv(&frame));
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            50);
}

TEST(ChannelTest, DrainsQueuedFramesAfterClose) {
  auto pair = Channel::CreatePair();
  pair.a->Send({7});
  pair.a->Close();
  std::vector<uint8_t> frame;
  EXPECT_TRUE(pair.b->Recv(&frame));  // queued frame still delivered
  EXPECT_EQ(frame, std::vector<uint8_t>{7});
  EXPECT_FALSE(pair.b->Recv(&frame));
}

class EchoServerFixture : public ::testing::Test {
 protected:
  void StartServer(std::size_t workers) {
    auto pair = Channel::CreatePair();
    server_ = std::make_unique<RpcServer>(
        std::move(pair.b),
        [](const Message& req) -> Result<Message> {
          if (req.type == 99) return Status::InvalidArgument("boom");
          Message resp;
          resp.type = req.type + 1;
          resp.ints = req.ints;
          resp.aux = req.aux;
          return resp;
        },  // NOTE: the server echoes the request's query id into responses
        workers);
    client_ = std::make_unique<RpcClient>(std::move(pair.a));
  }

  std::unique_ptr<RpcServer> server_;
  std::unique_ptr<RpcClient> client_;
};

TEST_F(EchoServerFixture, BasicCall) {
  StartServer(1);
  Message req;
  req.type = 5;
  req.query_id = 42;
  req.ints = {BigInt(77)};
  auto resp = client_->Call(std::move(req));
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->type, 6);
  ASSERT_EQ(resp->ints.size(), 1u);
  EXPECT_EQ(resp->ints[0], BigInt(77));
  // The RPC server stamps every response with the request's query id, so
  // per-query demux state on the caller side can trust it.
  EXPECT_EQ(resp->query_id, 42u);
}

TEST_F(EchoServerFixture, HandlerErrorSurfacesAsErrorFrame) {
  StartServer(1);
  Message req;
  req.type = 99;
  auto resp = client_->Call(std::move(req));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->type, 0xFFFF);
  std::string text(resp->aux.begin(), resp->aux.end());
  EXPECT_NE(text.find("boom"), std::string::npos);
}

TEST_F(EchoServerFixture, ConcurrentCallsAreCorrectlyCorrelated) {
  StartServer(4);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        Message req;
        req.type = 10;
        req.ints = {BigInt(t * 1000 + i)};
        auto resp = client_->Call(std::move(req));
        if (!resp.ok() || resp->ints.size() != 1 ||
            resp->ints[0] != BigInt(t * 1000 + i)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(EchoServerFixture, CallAfterShutdownFails) {
  StartServer(1);
  client_->Shutdown();
  Message req;
  req.type = 1;
  EXPECT_FALSE(client_->Call(std::move(req)).ok());
}

}  // namespace
}  // namespace sknn
