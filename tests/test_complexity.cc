// Complexity-accounting tests — Section 4.4 made executable.
//
// The paper bounds each protocol in counts of Paillier encryptions,
// decryptions and exponentiations. These tests measure the actual counters
// and check the claimed growth laws *exactly*, using the fact that a
// function is linear iff its second differences vanish:
//   * SM / SBOR: constant ops per instance;
//   * SSED: linear in m;  SBD: linear in l;  SMIN: linear in l;
//   * SMIN_n: exactly (n-1) SMINs worth of ops;
//   * SkNN_b: linear in n (at fixed m, k);
//   * SkNN_m: linear in k (at fixed n, m, l).
// Operation counts are randomness-independent (only *values* are random),
// so the comparisons are exact, not statistical.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "crypto/op_counters.h"
#include "data/synthetic.h"
#include "proto/sbd.h"
#include "proto/sbor.h"
#include "proto/sm.h"
#include "proto/smin.h"
#include "proto/ssed.h"
#include "tests/proto_test_util.h"

namespace sknn {
namespace {

struct Ops {
  uint64_t enc, dec, exp, mul;
  bool operator==(const Ops&) const = default;
};

Ops Measure(const std::function<void()>& fn) {
  OpSnapshot before = OpCounters::Snapshot();
  fn();
  OpSnapshot d = OpCounters::Snapshot() - before;
  return {d.encryptions, d.decryptions, d.exponentiations, d.multiplications};
}

Ops Scale(const Ops& o, uint64_t f) {
  return {o.enc * f, o.dec * f, o.exp * f, o.mul * f};
}

Ops Diff(const Ops& a, const Ops& b) {
  return {a.enc - b.enc, a.dec - b.dec, a.exp - b.exp, a.mul - b.mul};
}

class ComplexityTest : public ::testing::Test {
 protected:
  TwoPartyHarness harness_;
  Random rng_{424242};

  std::vector<Ciphertext> EncryptMany(std::size_t count, int64_t bound) {
    std::vector<Ciphertext> out;
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(harness_.pk().Encrypt(
          BigInt(static_cast<int64_t>(rng_.UniformUint64(bound))), rng_));
    }
    return out;
  }
};

TEST_F(ComplexityTest, SmIsConstantPerInstance) {
  auto run = [&](std::size_t batch) {
    return Measure([&] {
      auto as = EncryptMany(batch, 100);
      auto bs = EncryptMany(batch, 100);
      OpSnapshot setup_excluded = OpCounters::Snapshot();
      (void)setup_excluded;
      ASSERT_TRUE(SecureMultiplyBatch(harness_.ctx(), as, bs).ok());
    });
  };
  // Setup encryptions scale with batch too, but both linearly: second
  // difference over batch sizes 2, 4, 6 must vanish.
  Ops o2 = run(2), o4 = run(4), o6 = run(6);
  EXPECT_EQ(Diff(o6, o4), Diff(o4, o2)) << "SM ops not linear in batch size";
  // And per instance: 4x the batch = 4x the ops.
  Ops o8 = run(8);
  EXPECT_EQ(Scale(Diff(o4, o2), 3), Diff(o8, o2));
}

TEST_F(ComplexityTest, SborIsOneSmPlusConstant) {
  auto as = EncryptMany(3, 2);
  auto bs = EncryptMany(3, 2);
  Ops sbor = Measure([&] {
    ASSERT_TRUE(SecureBitOrBatch(harness_.ctx(), as, bs).ok());
  });
  Ops sm = Measure([&] {
    ASSERT_TRUE(SecureMultiplyBatch(harness_.ctx(), as, bs).ok());
  });
  // SBOR = SM + 2 homomorphic multiplications (Add, Sub incl. Negate exp).
  EXPECT_EQ(sbor.enc, sm.enc);
  EXPECT_EQ(sbor.dec, sm.dec);
  EXPECT_EQ(sbor.exp, sm.exp + 3);  // Negate inside Sub is one exp per item
  EXPECT_GT(sbor.mul, sm.mul);
}

TEST_F(ComplexityTest, SsedIsLinearInM) {
  auto run = [&](std::size_t m) {
    auto x = EncryptMany(m, 50);
    auto y = EncryptMany(m, 50);
    return Measure([&] {
      ASSERT_TRUE(SecureSquaredDistance(harness_.ctx(), x, y).ok());
    });
  };
  Ops o2 = run(2), o4 = run(4), o6 = run(6);
  EXPECT_EQ(Diff(o6, o4), Diff(o4, o2)) << "SSED ops not linear in m";
}

TEST_F(ComplexityTest, SbdIsLinearInL) {
  Ciphertext z = harness_.pk().Encrypt(BigInt(3), rng_);
  auto run = [&](unsigned l) {
    SbdOptions opts;
    opts.l = l;
    return Measure(
        [&] { ASSERT_TRUE(BitDecompose(harness_.ctx(), z, opts).ok()); });
  };
  Ops o4 = run(4), o8 = run(8), o12 = run(12);
  EXPECT_EQ(Diff(o12, o8), Diff(o8, o4)) << "SBD ops not linear in l";
}

TEST_F(ComplexityTest, SminIsLinearInL) {
  auto run = [&](unsigned l) {
    auto u = harness_.EncryptBits(1, l);
    auto v = harness_.EncryptBits(2 % (1u << l), l);
    return Measure(
        [&] { ASSERT_TRUE(SecureMin(harness_.ctx(), u, v).ok()); });
  };
  Ops o4 = run(4), o8 = run(8), o12 = run(12);
  EXPECT_EQ(Diff(o12, o8), Diff(o8, o4)) << "SMIN ops not linear in l";
}

TEST_F(ComplexityTest, SminNCostsExactlyNMinusOneSmins) {
  const unsigned l = 5;
  auto run = [&](std::size_t n) {
    std::vector<EncryptedBits> ds;
    for (std::size_t i = 0; i < n; ++i) {
      ds.push_back(harness_.EncryptBits(i % (1u << l), l));
    }
    return Measure(
        [&] { ASSERT_TRUE(SecureMinN(harness_.ctx(), ds).ok()); });
  };
  // n-1 SMINs: 4 for n=5, 8 for n=9 -> exactly double the ops.
  Ops o5 = run(5), o9 = run(9);
  Ops per_smin = {o5.enc / 4, o5.dec / 4, o5.exp / 4, o5.mul / 4};
  EXPECT_EQ(Scale(per_smin, 4), o5) << "SMIN_n(5) not a multiple of 4 SMINs";
  EXPECT_EQ(Scale(per_smin, 8), o9) << "SMIN_n(9) != 8 SMINs worth of ops";
}

TEST_F(ComplexityTest, PaperBoundForSkNNm) {
  // Section 4.4: SkNN_m is O(n * (l + m + k*l*log2 n)) encryptions and
  // exponentiations. Check the measured counts against the explicit bound
  // with a generous constant.
  const std::size_t n = 8, m = 3;
  const unsigned k = 2;
  PlainTable table = GenerateUniformTable(n, m, 3, 5);
  SknnEngine::Options opts;
  opts.key_bits = 256;
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  const unsigned l = (*engine)->distance_bits();
  QueryRequest request;
  request.record = {1, 1, 1};
  request.k = k;
  request.protocol = QueryProtocol::kSecure;
  auto result = (*engine)->Query(request);
  ASSERT_TRUE(result.ok());
  const double bound =
      static_cast<double>(n) *
      (l + m + static_cast<double>(k) * l * std::log2(double(n)));
  const double kConstant = 40.0;  // generous per-unit constant
  EXPECT_LT(static_cast<double>(result->ops.encryptions), kConstant * bound);
  EXPECT_LT(static_cast<double>(result->ops.exponentiations),
            kConstant * bound);
}

TEST_F(ComplexityTest, SkNNmRoundCountIsIndependentOfNPerStage) {
  // PR 2 regression: with the vectorized wire opcodes, one SkNN_m query
  // exchanges O(l + k*l) C1->C2 messages — NOT O(n*l). The exact count,
  // from the per-query QueryMeter (frames_to_c2 == frames_from_c2, each
  // exchange is one round trip):
  //   SSED            1                  (one fused SM stage)
  //   SBD             l + 1              (one kLsbVec per bit + one SVR)
  //   per iteration   2*ceil(log2 n)     (SMIN_n tournament: SM + phase2
  //                                       per level)
  //                   + 1                (min pointer)
  //                   + 1                (fused extract+clamp SM)
  //   finalize        1                  (masked ship to Bob)
  // Since n <= 2^l here, ceil(log2 n) <= l and the whole query is <= the
  // paper-shaped bound 2 + l + k*(2*l + 2) + 1 — and independent of n per
  // stage (doubling n adds at most one tournament level per iteration).
  unsigned l = 0;
  auto frames_for = [&](std::size_t n, unsigned k) -> uint64_t {
    PlainTable table = GenerateUniformTable(n, 2, 3, 99);
    SknnEngine::Options opts;
    opts.key_bits = 256;
    opts.attr_bits = 2;
    opts.c1_threads = 4;  // fan-out must not multiply the message count
    opts.c2_threads = 4;
    auto engine = SknnEngine::Create(table, opts);
    EXPECT_TRUE(engine.ok()) << engine.status();
    l = (*engine)->distance_bits();
    QueryRequest request;
    request.record = {1, 1};
    request.k = k;
    request.protocol = QueryProtocol::kSecure;
    auto result = (*engine)->Query(request);
    EXPECT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->traffic.frames_a_to_b, result->traffic.frames_b_to_a);
    return result->traffic.frames_a_to_b;
  };

  auto exact = [&](std::size_t n, unsigned k) -> uint64_t {
    uint64_t levels = static_cast<uint64_t>(std::ceil(std::log2(double(n))));
    return 1 + (l + 1) + k * (2 * levels + 2) + 1;
  };
  for (auto [n, k] : std::vector<std::pair<std::size_t, unsigned>>{
           {8, 1}, {8, 2}, {16, 2}}) {
    uint64_t frames = frames_for(n, k);
    ASSERT_GE(l, 4u);  // sanity: log2(n) <= l must hold for the O-bound
    EXPECT_EQ(frames, exact(n, k)) << "n=" << n << " k=" << k;
    // The O(l + k*l) law itself (would be wildly exceeded by O(n*l)).
    EXPECT_LE(frames, 2 * (l + uint64_t{k} * l) + 4) << "n=" << n;
  }
  // Doubling n must cost at most one extra tournament level (2 rounds) per
  // iteration — the signature of O(k log n), not O(n).
  EXPECT_LE(frames_for(16, 2) - frames_for(8, 2), 2u * 2u);
}

TEST_F(ComplexityTest, SkNNbOpsLinearInN) {
  const std::size_t m = 3;
  auto run = [&](std::size_t n) {
    PlainTable table = GenerateUniformTable(n, m, 3, n);
    SknnEngine::Options opts;
    opts.key_bits = 256;
    opts.attr_bits = 2;
    auto engine = SknnEngine::Create(table, opts);
    EXPECT_TRUE(engine.ok());
    QueryRequest request;
    request.record = {1, 2, 3};
    request.k = 2;
    request.protocol = QueryProtocol::kBasic;
    auto result = (*engine)->Query(request);
    EXPECT_TRUE(result.ok());
    return Ops{result->ops.encryptions, result->ops.decryptions,
               result->ops.exponentiations, result->ops.multiplications};
  };
  Ops o4 = run(4), o8 = run(8), o12 = run(12);
  EXPECT_EQ(Diff(o12, o8), Diff(o8, o4)) << "SkNN_b ops not linear in n";
}

TEST_F(ComplexityTest, SkNNmOpsLinearInK) {
  const std::size_t n = 6, m = 2;
  PlainTable table = GenerateUniformTable(n, m, 3, 77);
  SknnEngine::Options opts;
  opts.key_bits = 256;
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto run = [&](unsigned k) {
    QueryRequest request;
    request.record = {1, 1};
    request.k = k;
    request.protocol = QueryProtocol::kSecure;
    auto result = (*engine)->Query(request);
    EXPECT_TRUE(result.ok());
    return Ops{result->ops.encryptions, result->ops.decryptions,
               result->ops.exponentiations, result->ops.multiplications};
  };
  // Iterations 2..k are identical in op count; iteration k skips the SBOR
  // update, so compare k in {2,3,4}: second difference of the *middle*
  // iterations vanishes.
  Ops o2 = run(2), o3 = run(3), o4 = run(4);
  EXPECT_EQ(Diff(o4, o3), Diff(o3, o2)) << "SkNN_m ops not linear in k";
}

}  // namespace
}  // namespace sknn
