// Hot table reload under live traffic (ISSUE 7): a served table can be
// rebuilt and atomically swapped — or detached — without restarting the
// front end or disturbing in-flight queries.
//
// What must hold: (1) after kReloadTable the very next query answers from
// the NEW engine, bitwise its dedicated reference (the new build may even
// hold different Paillier keys — nothing of the old table leaks through);
// (2) a query in flight across the swap completes on the engine it
// resolved, with the OLD answer — the shared_ptr drain, not a lock around
// the whole query; (3) kDetachTable tombstones the name (typed kNotFound,
// gone from kListTables) and a later reload revives it; (4) every connected
// session hears about either mutation through the kTableChanged note; (5)
// a reload with an empty spec rebuilds from the spec recorded at
// registration, and the failure modes — no loader installed, unknown
// table, loader error — are typed Statuses that leave the old table
// serving.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "core/engine.h"
#include "net/query_wire.h"
#include "serve/query_service.h"
#include "serve/remote_query_client.h"
#include "serve/table_registry.h"

namespace sknn {
namespace {

// Small keys keep the many engine builds (every reload is a full build,
// keygen included) affordable; correctness does not depend on key size.
SknnEngine::Options BuildOptions() {
  SknnEngine::Options options;
  options.key_bits = 256;
  options.attr_bits = 3;
  options.c1_threads = 2;
  options.c2_threads = 2;
  options.randomizer_pool_capacity = 32;
  return options;
}

// The two versions of the served table: disjoint contents, so which engine
// answered is visible in every record.
PlainTable TableV1() {
  return PlainTable{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
}
PlainTable TableV2() {
  return PlainTable{{5, 1}, {6, 1}, {7, 1}, {0, 1}, {3, 1}};
}

Result<std::unique_ptr<SknnEngine>> BuildVersion(const std::string& spec) {
  if (spec == "v1") return SknnEngine::Create(TableV1(), BuildOptions());
  if (spec == "v2") return SknnEngine::Create(TableV2(), BuildOptions());
  return Status::InvalidArgument("unknown table spec '" + spec + "'");
}

QueryRequest MakeRequest(std::string table, PlainRecord record, unsigned k,
                         QueryProtocol protocol = QueryProtocol::kBasic) {
  QueryRequest request;
  request.table = std::move(table);
  request.record = std::move(record);
  request.k = k;
  request.protocol = protocol;
  return request;
}

// One served table ("alpha", registered as v1 with spec "v1") behind a TCP
// QueryService with the version-aware loader installed — the in-test
// sknn_c1_server.
class ReloadTopology {
 public:
  ReloadTopology() {
    auto engine = BuildVersion("v1");
    SKNN_CHECK(engine.ok()) << engine.status();
    SKNN_CHECK(
        registry_.Register("alpha", std::move(engine).value(), "v1").ok());
    QueryService::Options options;
    options.connection_workers = 2;  // a note must reach a busy session too
    service_ = std::make_unique<QueryService>(&registry_, options);
    service_->set_table_loader(
        [this](const std::string& name, const std::string& spec)
            -> Result<std::unique_ptr<SknnEngine>> {
          loads_.fetch_add(1);
          last_loaded_spec_ = spec;
          if (name != "alpha") {
            return Status::InvalidArgument("unexpected table " + name);
          }
          return BuildVersion(spec);
        });
    Status started = service_->Start(0);
    SKNN_CHECK(started.ok()) << started;
  }

  ~ReloadTopology() { service_->Shutdown(); }

  QueryService& service() { return *service_; }
  TableRegistry& registry() { return registry_; }
  int loads() const { return loads_.load(); }
  std::string last_loaded_spec() const { return last_loaded_spec_; }

  std::unique_ptr<RemoteQueryClient> NewClient() {
    auto client = RemoteQueryClient::Connect("127.0.0.1", service_->port());
    SKNN_CHECK(client.ok()) << client.status();
    return std::move(client).value();
  }

  // The records a dedicated engine of `spec` returns for `request` — the
  // ground truth a post-reload query must match bitwise.
  PlainTable Reference(const std::string& spec, const QueryRequest& request) {
    auto engine = BuildVersion(spec);
    SKNN_CHECK(engine.ok()) << engine.status();
    auto response = (*engine)->Query(request);
    SKNN_CHECK(response.ok()) << response.status();
    return response->records;
  }

 private:
  TableRegistry registry_;
  std::unique_ptr<QueryService> service_;
  std::atomic<int> loads_{0};
  std::string last_loaded_spec_;  // written only under the service's reload
};

TEST(HotReloadTest, ReloadSwapsToTheNewBuildBitwise) {
  ReloadTopology topology;
  auto client = topology.NewClient();
  const QueryRequest request = MakeRequest("alpha", {3, 0}, 2);

  auto before = client->Query(request);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->records, topology.Reference("v1", request));

  auto acked = client->ReloadTable("alpha", "v2");
  ASSERT_TRUE(acked.ok()) << acked.status();
  EXPECT_EQ(*acked, "alpha");
  EXPECT_EQ(topology.loads(), 1);
  EXPECT_EQ(topology.last_loaded_spec(), "v2");

  // The very next query — same session, no reconnect — answers from v2,
  // bitwise a dedicated v2 engine (which holds DIFFERENT keys: a full swap,
  // not a data patch).
  auto after = client->Query(request);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->records, topology.Reference("v2", request));
  EXPECT_NE(after->records, before->records);

  // The control plane reflects the new geometry (v2 has 5 records).
  auto info = client->TableInfo("alpha");
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->num_records, 5u);

  // An empty-spec reload rebuilds from the RECORDED spec — which the v2
  // reload updated, so this rebuilds v2, not v1.
  auto again = client->ReloadTable("alpha");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(topology.loads(), 2);
  EXPECT_EQ(topology.last_loaded_spec(), "v2");
}

TEST(HotReloadTest, DetachTombstonesAndReloadRevives) {
  ReloadTopology topology;
  auto client = topology.NewClient();
  const QueryRequest request = MakeRequest("alpha", {1, 0}, 1);
  ASSERT_TRUE(client->Query(request).ok());

  auto detached = client->DetachTable("alpha");
  ASSERT_TRUE(detached.ok()) << detached.status();
  EXPECT_EQ(*detached, "alpha");

  // Typed kNotFound — the session survives, the name is gone from the
  // catalog, and the service keeps answering its control plane.
  auto gone = client->Query(request);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  auto tables = client->ListTables();
  ASSERT_TRUE(tables.ok()) << tables.status();
  EXPECT_TRUE(tables->empty());

  // Reload revives the tombstone (empty spec: the recorded "v1").
  auto revived = client->ReloadTable("alpha");
  ASSERT_TRUE(revived.ok()) << revived.status();
  auto back = client->Query(request);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->records, topology.Reference("v1", request));
}

TEST(HotReloadTest, TableChangedNotesReachEveryConnectedClient) {
  ReloadTopology topology;
  // Two bystander sessions plus the admin session itself: ALL of them must
  // hear both mutations.
  auto bystander_a = topology.NewClient();
  auto bystander_b = topology.NewClient();
  auto admin = topology.NewClient();
  // Notes only reach live sessions; make sure each client has one before
  // the mutation (the handshake connects lazily).
  ASSERT_TRUE(bystander_a->Hello().ok());
  ASSERT_TRUE(bystander_b->Hello().ok());

  Mutex mutex;
  CondVar cv;
  std::vector<std::pair<std::string, TableChangeKind>> notes;  // guarded
  int listeners_total = 0;
  auto listen = [&](RemoteQueryClient& client) {
    client.set_table_changed_handler([&](const TableChangedNote& note) {
      MutexLock lock(&mutex);
      notes.emplace_back(note.table, note.kind);
      cv.NotifyAll();
    });
    ++listeners_total;
  };
  listen(*bystander_a);
  listen(*bystander_b);
  listen(*admin);

  auto wait_for_notes = [&](int expected) {
    MutexLock lock(&mutex);
    while (static_cast<int>(notes.size()) < expected) cv.Wait(mutex);
  };

  ASSERT_TRUE(admin->ReloadTable("alpha", "v2").ok());
  wait_for_notes(listeners_total);
  {
    MutexLock lock(&mutex);
    for (const auto& [table, kind] : notes) {
      EXPECT_EQ(table, "alpha");
      EXPECT_EQ(kind, TableChangeKind::kReloaded);
    }
  }

  ASSERT_TRUE(admin->DetachTable("alpha").ok());
  wait_for_notes(2 * listeners_total);
  {
    MutexLock lock(&mutex);
    for (std::size_t i = listeners_total; i < notes.size(); ++i) {
      EXPECT_EQ(notes[i].first, "alpha");
      EXPECT_EQ(notes[i].second, TableChangeKind::kDetached);
    }
  }
}

TEST(HotReloadTest, InFlightQueryDrainsOnTheOldEngine) {
  ReloadTopology topology;
  const QueryRequest slow_request =
      MakeRequest("alpha", {2, 0}, 3, QueryProtocol::kSecure);
  const PlainTable v1_answer = topology.Reference("v1", slow_request);

  // A slow secure query launched just before the reload: whichever side of
  // the swap it lands on is timing, but a query that RESOLVED v1 must
  // return the v1 answer even when v1 is replaced (and destructed) under
  // it — never an error, never a v1/v2 chimera.
  auto runner = topology.NewClient();
  ASSERT_TRUE(runner->Hello().ok());
  std::thread querier([&] {
    auto response = runner->Query(slow_request);
    ASSERT_TRUE(response.ok()) << response.status();
    const PlainTable v2_answer = topology.Reference("v2", slow_request);
    EXPECT_TRUE(response->records == v1_answer ||
                response->records == v2_answer);
  });
  auto admin = topology.NewClient();
  ASSERT_TRUE(admin->ReloadTable("alpha", "v2").ok());
  querier.join();

  // After both settle, the old engine has fully drained and the service
  // answers v2.
  auto after = runner->Query(slow_request);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->records, topology.Reference("v2", slow_request));
}

TEST(HotReloadTest, ReloadAndDetachInvalidateTheResultCache) {
  // Revision 6: a reload (or detach) must clear the table's result cache —
  // a hit computed against the old build answering for the new one is the
  // one bug the cache must never have.
  ReloadTopology topology;
  TableRegistry::Entry* entry = topology.registry().Find("alpha");
  entry->cache.set_budget(ResultCache::kDefaultMaxBytes,
                          ResultCache::kDefaultMaxEntries);
  auto client = topology.NewClient();
  const QueryRequest request = MakeRequest("alpha", {3, 0}, 2);

  auto miss = client->Query(request);
  ASSERT_TRUE(miss.ok()) << miss.status();
  EXPECT_FALSE(miss->cache_hit);
  auto hit = client->Query(request);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->cache_hit);
  EXPECT_EQ(hit->records, topology.Reference("v1", request));

  // The reload empties the cache: the next query is a MISS answering v2.
  ASSERT_TRUE(client->ReloadTable("alpha", "v2").ok());
  auto after = client->Query(request);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->cache_hit);
  EXPECT_EQ(after->records, topology.Reference("v2", request));
  // ...and v2 hits serve v2.
  auto v2_hit = client->Query(request);
  ASSERT_TRUE(v2_hit.ok()) << v2_hit.status();
  EXPECT_TRUE(v2_hit->cache_hit);
  EXPECT_EQ(v2_hit->records, after->records);

  // Detach invalidates too: after the revival (empty spec = the recorded
  // "v2"), the first query is a fresh miss.
  ASSERT_TRUE(client->DetachTable("alpha").ok());
  ASSERT_TRUE(client->ReloadTable("alpha").ok());
  auto revived = client->Query(request);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_FALSE(revived->cache_hit);
  EXPECT_EQ(revived->records, topology.Reference("v2", request));
}

TEST(HotReloadTest, ReloadRacingAnInFlightCachedQueryNeverServesStale) {
  // The ordering argument of serve/qos/result_cache.h, end to end: a query
  // pins the cache generation BEFORE resolving its engine; ReplaceEngine
  // swaps the engine BEFORE invalidating. A slow query in flight across the
  // swap therefore either ran on v2 (fine to cache) or ran on v1 with a
  // stale generation (its insert is refused) — so the first post-reload
  // query can never be served a v1 answer out of the cache.
  ReloadTopology topology;
  topology.registry().Find("alpha")->cache.set_budget(
      ResultCache::kDefaultMaxBytes, ResultCache::kDefaultMaxEntries);
  const QueryRequest request =
      MakeRequest("alpha", {2, 0}, 3, QueryProtocol::kSecure);
  const PlainTable v1 = topology.Reference("v1", request);
  const PlainTable v2 = topology.Reference("v2", request);
  ASSERT_NE(v1, v2);

  auto runner = topology.NewClient();
  ASSERT_TRUE(runner->Hello().ok());
  // A slow secure query launched just before the reload: whichever side of
  // the swap it resolves is timing, and either answer is legal FOR IT...
  std::thread querier([&] {
    auto response = runner->Query(request);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->records == v1 || response->records == v2);
  });
  auto admin = topology.NewClient();
  ASSERT_TRUE(admin->ReloadTable("alpha", "v2").ok());
  querier.join();

  // ...but whatever it answered, every post-reload query MUST say v2: had
  // the drained v1 run planted its result past the invalidation, this
  // lookup would hit a stale entry and say v1.
  for (int i = 0; i < 3; ++i) {
    auto after = runner->Query(request);
    ASSERT_TRUE(after.ok()) << after.status();
    EXPECT_EQ(after->records, v2) << "stale cache hit after reload, query "
                                  << i;
  }
}

TEST(HotReloadTest, ReloadFailureModesAreTypedAndNonDestructive) {
  ReloadTopology topology;
  auto client = topology.NewClient();
  const QueryRequest request = MakeRequest("alpha", {1, 0}, 1);
  const PlainTable v1_answer = topology.Reference("v1", request);

  // Unknown table: the set is frozen at startup, reload only replaces.
  auto unknown = client->ReloadTable("beta", "v1");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  // A loader error (bogus spec) surfaces as its Status — and the OLD
  // engine keeps serving, untouched.
  auto bogus = client->ReloadTable("alpha", "v999");
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);
  auto still = client->Query(request);
  ASSERT_TRUE(still.ok()) << still.status();
  EXPECT_EQ(still->records, v1_answer);

  // Detach of an unknown name is typed too.
  auto missing = client->DetachTable("beta");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(HotReloadTest, ReloadWithoutALoaderIsFailedPrecondition) {
  // A service whose operator never installed a loader (the pre-ISSUE-7
  // shape): the admin frame is understood and refused, not a crash or a
  // silent no-op.
  TableRegistry registry;
  auto engine = BuildVersion("v1");
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE(registry.Register("alpha", std::move(engine).value()).ok());
  QueryService service(&registry, QueryService::Options{});
  ASSERT_TRUE(service.Start(0).ok());

  auto client = RemoteQueryClient::Connect("127.0.0.1", service.port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto refused = (*client)->ReloadTable("alpha", "v2");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // And with no recorded spec, a spec-less reload cannot work either once a
  // loader exists — but serving was never disturbed.
  auto fine = (*client)->Query(MakeRequest("alpha", {1, 0}, 1));
  EXPECT_TRUE(fine.ok()) << fine.status();
  service.Shutdown();
}

}  // namespace
}  // namespace sknn
