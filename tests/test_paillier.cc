// Unit and property tests for the Paillier cryptosystem: key generation,
// encryption/decryption round trips, every homomorphic identity the
// protocols rely on (Section 2.3), CRT consistency, and signed decoding.
#include "crypto/paillier.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bigint/random.h"
#include "common/thread_pool.h"
#include "crypto/op_counters.h"

namespace sknn {
namespace {

PaillierKeyPair MakeKeys(unsigned bits, uint64_t seed) {
  Random rng(seed);
  auto keys = GeneratePaillierKeyPair(bits, rng);
  EXPECT_TRUE(keys.ok()) << keys.status();
  return std::move(keys).value();
}

TEST(PaillierTest, KeyGenRejectsTinyKeys) {
  Random rng(1);
  EXPECT_FALSE(GeneratePaillierKeyPair(8, rng).ok());
}

TEST(PaillierTest, KeyHasRequestedSize) {
  for (unsigned bits : {256u, 512u}) {
    PaillierKeyPair keys = MakeKeys(bits, bits);
    EXPECT_EQ(keys.pk.n().BitLength(), bits);
    EXPECT_EQ(keys.pk.g(), keys.pk.n() + BigInt(1));
    EXPECT_EQ(keys.pk.n_squared(), keys.pk.n() * keys.pk.n());
  }
}

TEST(PaillierTest, EncryptDecryptRoundTrip) {
  PaillierKeyPair keys = MakeKeys(256, 7);
  Random rng(8);
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{255}, int64_t{1} << 40}) {
    Ciphertext c = keys.pk.Encrypt(BigInt(v), rng);
    EXPECT_EQ(keys.sk.Decrypt(c), BigInt(v)) << v;
  }
}

TEST(PaillierTest, EncryptReducesModN) {
  PaillierKeyPair keys = MakeKeys(256, 9);
  Random rng(10);
  BigInt big = keys.pk.n() + BigInt(5);
  Ciphertext c = keys.pk.Encrypt(big, rng);
  EXPECT_EQ(keys.sk.Decrypt(c), BigInt(5));
}

TEST(PaillierTest, EncryptionIsProbabilistic) {
  PaillierKeyPair keys = MakeKeys(256, 11);
  Random rng(12);
  Ciphertext c1 = keys.pk.Encrypt(BigInt(42), rng);
  Ciphertext c2 = keys.pk.Encrypt(BigInt(42), rng);
  EXPECT_NE(c1, c2) << "semantic security requires fresh randomness";
  EXPECT_EQ(keys.sk.Decrypt(c1), keys.sk.Decrypt(c2));
}

TEST(PaillierTest, DeterministicEncodingDecrypts) {
  PaillierKeyPair keys = MakeKeys(256, 13);
  Ciphertext c = keys.pk.EncodeDeterministic(BigInt(77));
  EXPECT_EQ(keys.sk.Decrypt(c), BigInt(77));
}

TEST(PaillierTest, HomomorphicAddition) {
  PaillierKeyPair keys = MakeKeys(256, 14);
  Random rng(15);
  Ciphertext ca = keys.pk.Encrypt(BigInt(1000), rng);
  Ciphertext cb = keys.pk.Encrypt(BigInt(2345), rng);
  EXPECT_EQ(keys.sk.Decrypt(keys.pk.Add(ca, cb)), BigInt(3345));
}

TEST(PaillierTest, HomomorphicAddPlain) {
  PaillierKeyPair keys = MakeKeys(256, 16);
  Random rng(17);
  Ciphertext ca = keys.pk.Encrypt(BigInt(10), rng);
  EXPECT_EQ(keys.sk.Decrypt(keys.pk.AddPlain(ca, BigInt(32))), BigInt(42));
}

TEST(PaillierTest, HomomorphicScalarMultiply) {
  PaillierKeyPair keys = MakeKeys(256, 18);
  Random rng(19);
  Ciphertext ca = keys.pk.Encrypt(BigInt(111), rng);
  EXPECT_EQ(keys.sk.Decrypt(keys.pk.MulScalar(ca, BigInt(3))), BigInt(333));
}

TEST(PaillierTest, HomomorphicNegateAndSub) {
  PaillierKeyPair keys = MakeKeys(256, 20);
  Random rng(21);
  Ciphertext ca = keys.pk.Encrypt(BigInt(5), rng);
  Ciphertext cb = keys.pk.Encrypt(BigInt(8), rng);
  // 5 - 8 = -3, i.e. N - 3 in Z_N.
  BigInt raw = keys.sk.Decrypt(keys.pk.Sub(ca, cb));
  EXPECT_EQ(raw, keys.pk.n() - BigInt(3));
  EXPECT_EQ(DecodeSigned(raw, keys.pk.n()), BigInt(-3));
  EXPECT_EQ(keys.sk.DecryptSigned(keys.pk.Sub(ca, cb)), BigInt(-3));
}

TEST(PaillierTest, RerandomizePreservesPlaintext) {
  PaillierKeyPair keys = MakeKeys(256, 22);
  Random rng(23);
  Ciphertext c = keys.pk.Encrypt(BigInt(42), rng);
  Ciphertext r = keys.pk.Rerandomize(c, rng);
  EXPECT_NE(c, r);
  EXPECT_EQ(keys.sk.Decrypt(r), BigInt(42));
}

TEST(PaillierTest, CrtMatchesStandardDecryption) {
  PaillierKeyPair keys = MakeKeys(512, 24);
  Random rng(25);
  PaillierSecretKey sk_std = keys.sk;
  sk_std.set_use_crt(false);
  for (int i = 0; i < 20; ++i) {
    BigInt m = rng.Below(keys.pk.n());
    Ciphertext c = keys.pk.Encrypt(m, rng);
    EXPECT_EQ(keys.sk.Decrypt(c), m);
    EXPECT_EQ(sk_std.Decrypt(c), m);
  }
}

TEST(PaillierTest, IsValidCiphertext) {
  PaillierKeyPair keys = MakeKeys(256, 26);
  Random rng(27);
  Ciphertext good = keys.pk.Encrypt(BigInt(1), rng);
  EXPECT_TRUE(keys.pk.IsValidCiphertext(good));
  EXPECT_FALSE(keys.pk.IsValidCiphertext(Ciphertext(keys.pk.n_squared())));
  EXPECT_FALSE(keys.pk.IsValidCiphertext(Ciphertext(-BigInt(1))));
}

TEST(PaillierTest, FromPrimesRejectsBadInput) {
  BigInt p(104729);
  EXPECT_FALSE(PaillierSecretKey::FromPrimes(p, p, 34).ok());       // p == q
  EXPECT_FALSE(
      PaillierSecretKey::FromPrimes(p, BigInt(100), 24).ok());      // composite
}

TEST(PaillierTest, EncryptVectorMatchesElementwise) {
  PaillierKeyPair keys = MakeKeys(256, 28);
  Random rng(29);
  std::vector<BigInt> values = {BigInt(1), BigInt(2), BigInt(3)};
  auto encrypted = EncryptVector(keys.pk, values, rng);
  ASSERT_EQ(encrypted.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(keys.sk.Decrypt(encrypted[i]), values[i]);
  }
}

TEST(PaillierTest, DecodeSignedBoundary) {
  BigInt n(101);
  EXPECT_EQ(DecodeSigned(BigInt(50), n), BigInt(50));   // n/2 = 50
  EXPECT_EQ(DecodeSigned(BigInt(51), n), BigInt(-50));
  EXPECT_EQ(DecodeSigned(BigInt(100), n), BigInt(-1));
  EXPECT_EQ(DecodeSigned(BigInt(0), n), BigInt(0));
}

TEST(PaillierTest, OpCountersTrackOperations) {
  PaillierKeyPair keys = MakeKeys(256, 30);
  Random rng(31);
  OpCounters::Reset();
  Ciphertext a = keys.pk.Encrypt(BigInt(1), rng);
  Ciphertext b = keys.pk.Encrypt(BigInt(2), rng);
  Ciphertext sum = keys.pk.Add(a, b);
  Ciphertext scaled = keys.pk.MulScalar(sum, BigInt(3));
  keys.sk.Decrypt(scaled);
  OpSnapshot snap = OpCounters::Snapshot();
  EXPECT_EQ(snap.encryptions, 2u);
  EXPECT_EQ(snap.multiplications, 1u);
  EXPECT_EQ(snap.exponentiations, 1u);
  EXPECT_EQ(snap.decryptions, 1u);
}

// -- Property sweeps over random plaintext pairs ------------------------------

class PaillierHomomorphismProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    keys_ = MakeKeys(256, GetParam());
    rng_ = std::make_unique<Random>(GetParam() * 31 + 1);
  }
  PaillierKeyPair keys_;
  std::unique_ptr<Random> rng_;
};

TEST_P(PaillierHomomorphismProperty, AddMatchesPlaintextAdd) {
  const BigInt& n = keys_.pk.n();
  for (int i = 0; i < 10; ++i) {
    BigInt a = rng_->Below(n), b = rng_->Below(n);
    Ciphertext c = keys_.pk.Add(keys_.pk.Encrypt(a, *rng_),
                                keys_.pk.Encrypt(b, *rng_));
    EXPECT_EQ(keys_.sk.Decrypt(c), a.AddMod(b, n));
  }
}

TEST_P(PaillierHomomorphismProperty, MulScalarMatchesPlaintextMul) {
  const BigInt& n = keys_.pk.n();
  for (int i = 0; i < 10; ++i) {
    BigInt a = rng_->Below(n), s = rng_->Below(n);
    Ciphertext c = keys_.pk.MulScalar(keys_.pk.Encrypt(a, *rng_), s);
    EXPECT_EQ(keys_.sk.Decrypt(c), a.MulMod(s, n));
  }
}

TEST_P(PaillierHomomorphismProperty, NegateIsAdditiveInverse) {
  const BigInt& n = keys_.pk.n();
  for (int i = 0; i < 10; ++i) {
    BigInt a = rng_->Below(n);
    Ciphertext c = keys_.pk.Encrypt(a, *rng_);
    Ciphertext zero = keys_.pk.Add(c, keys_.pk.Negate(c));
    EXPECT_TRUE(keys_.sk.Decrypt(zero).IsZero());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaillierHomomorphismProperty,
                         ::testing::Values(101u, 202u, 303u));

// -- RandomizerPool (the PR 2 hot-path precomputation) --

TEST(RandomizerPoolTest, NeverHandsOutADuplicate) {
  PaillierKeyPair keys = MakeKeys(256, 404);
  // Capacity smaller than the draw count so both the pooled path and the
  // inline-compute fallback are exercised.
  RandomizerPool pool(keys.pk.n(), /*capacity=*/128);
  pool.WaitUntilFull();
  std::set<std::string> seen;
  for (int i = 0; i < 400; ++i) {
    EXPECT_TRUE(seen.insert(pool.Take().ToString()).second)
        << "duplicate r^N at draw " << i;
  }
  EXPECT_GT(pool.hits(), 0u);
}

TEST(RandomizerPoolTest, PooledEncryptionsDecryptAndStayProbabilistic) {
  PaillierKeyPair keys = MakeKeys(256, 405);
  RandomizerPool pool(keys.pk.n(), /*capacity=*/64);
  keys.pk.set_randomizer_pool(&pool);
  Random rng(406);
  std::set<std::string> ciphertexts;
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{12345}, int64_t{1} << 33}) {
    Ciphertext c = keys.pk.Encrypt(BigInt(v), rng);
    EXPECT_EQ(keys.sk.Decrypt(c), BigInt(v)) << v;
    EXPECT_TRUE(ciphertexts.insert(c.value().ToString()).second);
  }
  // Same plaintext twice: pooled randomizers are still fresh per encryption.
  Ciphertext a = keys.pk.Encrypt(BigInt(9), rng);
  Ciphertext b = keys.pk.Encrypt(BigInt(9), rng);
  EXPECT_NE(a, b);
  EXPECT_EQ(keys.sk.Decrypt(keys.pk.Rerandomize(a, rng)), BigInt(9));
}

TEST(RandomizerPoolTest, SafeUnderConcurrentEncrypt) {
  PaillierKeyPair keys = MakeKeys(256, 407);
  RandomizerPool pool(keys.pk.n(), /*capacity=*/256, /*workers=*/2);
  keys.pk.set_randomizer_pool(&pool);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::vector<Ciphertext>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        results[t].push_back(
            keys.pk.Encrypt(BigInt(t * kPerThread + i), Random::ThreadLocal()));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::string> distinct;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_EQ(keys.sk.Decrypt(results[t][i]), BigInt(t * kPerThread + i));
      distinct.insert(results[t][i].value().ToString());
    }
  }
  // Distinct randomizers => distinct ciphertexts, even across threads.
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

// -- PR 8 batch APIs and the short-exponent randomizer source
// -- (docs/CRYPTO.md): batch calls must match the scalar loop in values,
// -- op accounting, and edge behavior, serial and fanned alike.

TEST(PaillierBatchTest, EncryptManyMatchesScalarSemantics) {
  PaillierKeyPair keys = MakeKeys(256, 501);
  ThreadPool pool(3);
  std::vector<BigInt> ms;
  for (int64_t i = 0; i < 17; ++i) ms.push_back(BigInt(i * 3 - 5));
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    OpCounters::Reset();
    std::vector<Ciphertext> cs = keys.pk.EncryptMany(ms, p);
    ASSERT_EQ(cs.size(), ms.size());
    // Same op attribution as 17 scalar Encrypts, even across pool workers.
    EXPECT_EQ(OpCounters::Snapshot().encryptions, ms.size());
    OpCounters::Reset();
    std::vector<BigInt> back = keys.sk.DecryptMany(cs, p);
    EXPECT_EQ(OpCounters::Snapshot().decryptions, ms.size());
    ASSERT_EQ(back.size(), ms.size());
    for (std::size_t i = 0; i < ms.size(); ++i) {
      EXPECT_EQ(back[i], ms[i].Mod(keys.pk.n())) << i;
    }
    // Fresh randomness per element: all ciphertexts distinct.
    std::set<std::string> distinct;
    for (const auto& c : cs) distinct.insert(c.value().ToString());
    EXPECT_EQ(distinct.size(), ms.size());
  }
  EXPECT_TRUE(keys.pk.EncryptMany({}, &pool).empty());
}

TEST(PaillierBatchTest, RerandomizeManyPreservesPlaintexts) {
  PaillierKeyPair keys = MakeKeys(256, 502);
  Random rng(503);
  ThreadPool pool(2);
  std::vector<Ciphertext> cs;
  for (int64_t i = 0; i < 9; ++i) cs.push_back(keys.pk.Encrypt(BigInt(i), rng));
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    std::vector<Ciphertext> fresh = keys.pk.RerandomizeMany(cs, p);
    ASSERT_EQ(fresh.size(), cs.size());
    for (std::size_t i = 0; i < cs.size(); ++i) {
      EXPECT_NE(fresh[i], cs[i]) << i;  // new blinding
      EXPECT_EQ(keys.sk.Decrypt(fresh[i]), BigInt(static_cast<int64_t>(i)));
    }
  }
}

TEST(RandomizerSourceTest, ShortAndFullWidthMintValidRandomizers) {
  // 512-bit key so the short path is genuinely short: s has
  // max(256, 512/4) = 256 bits against the 512-bit full-width draw.
  PaillierKeyPair keys = MakeKeys(512, 504);
  Random rng(505);
  for (bool short_exponents : {false, true}) {
    RandomizerPoolOptions options;
    options.short_exponents = short_exponents;
    RandomizerSource source(keys.pk.n(), options);
    EXPECT_EQ(source.short_exponents(), short_exponents);
    if (short_exponents) EXPECT_EQ(source.short_exponent_bits(), 256u);
    for (int i = 0; i < 6; ++i) {
      BigInt rn = source.Next(rng);
      // A valid randomizer is an N-th power that blinds without changing
      // the plaintext: (1 + 7N) * r^N must still decrypt to 7.
      Ciphertext blinded(keys.pk.EncodeDeterministic(BigInt(7)).value().MulMod(
          rn, keys.pk.n_squared()));
      EXPECT_EQ(keys.sk.Decrypt(blinded), BigInt(7)) << short_exponents;
    }
  }
}

TEST(RandomizerPoolTest, ShortExponentPoolBacksEncryptCorrectly) {
  PaillierKeyPair keys = MakeKeys(256, 506);
  RandomizerPoolOptions options;
  options.workers = 2;
  RandomizerPool pool(keys.pk.n(), /*capacity=*/64, options);
  pool.WaitUntilFull();
  keys.pk.set_randomizer_pool(&pool);
  EXPECT_EQ(pool.capacity(), 64u);
  for (int64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(
        keys.sk.Decrypt(keys.pk.Encrypt(BigInt(i), Random::ThreadLocal())),
        BigInt(i));
  }
  EXPECT_GT(pool.hits(), 0u);
}

TEST(RandomizerPoolTest, DisableSwitchForcesInlineComputation) {
  PaillierKeyPair keys = MakeKeys(256, 408);
  RandomizerPool pool(keys.pk.n(), /*capacity=*/32);
  pool.WaitUntilFull();
  pool.set_enabled(false);
  uint64_t misses_before = pool.misses();
  BigInt rn = pool.Take();  // computed inline despite a full stock
  EXPECT_EQ(pool.misses(), misses_before + 1);
  EXPECT_EQ(pool.stock(), 32u);
  // The inline value is still a valid randomizer.
  keys.pk.set_randomizer_pool(&pool);
  EXPECT_EQ(keys.sk.Decrypt(keys.pk.Encrypt(BigInt(5), Random::ThreadLocal())),
            BigInt(5));
  (void)rn;
}

}  // namespace
}  // namespace sknn
