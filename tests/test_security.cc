// Security property tests — code-level checks of the Section 4.3 analysis.
//
// The semi-honest security argument says everything C2 decrypts during the
// fully secure protocol is either a uniformly random residue or a value the
// protocol explicitly concedes (and in SkNN_b, the conceded values are the
// true distances). These tests instrument C2's decryption views and check:
//   * blinding freshness (same inputs -> different views),
//   * the SMIN functionality coin is actually random (alpha ~ Bernoulli(1/2)),
//   * the min-pointer vector beta shows C2 exactly one zero and otherwise
//     unstructured residues,
//   * SkNN_m views never reveal small (distance-sized) plaintexts,
//   * the SkNN_b distance leak exists exactly as documented,
//   * access-pattern defenses: the permuted zero position varies per query.
#include <gtest/gtest.h>

#include <set>

#include "baseline/plaintext_knn.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "proto/sm.h"
#include "proto/smin.h"
#include "tests/proto_test_util.h"
#include "tests/query_test_util.h"

namespace sknn {
namespace {

TEST(SecurityTest, SmBlindingIsFreshPerInvocation) {
  TwoPartyHarness harness(256, 31337);
  harness.c2().set_record_views(true);
  Random rng(1);
  const auto& pk = harness.pk();
  Ciphertext ea = pk.Encrypt(BigInt(5), rng);
  Ciphertext eb = pk.Encrypt(BigInt(6), rng);

  std::set<std::string> seen;
  for (int run = 0; run < 8; ++run) {
    auto result = SecureMultiply(harness.ctx(), ea, eb);
    ASSERT_TRUE(result.ok());
    for (const auto& view : harness.c2().TakeViews()) {
      if (view.op == Op::kSmBatch) {
        seen.insert(view.plaintext.ToString());
      }
    }
  }
  // 8 runs x 2 blinded operands: all 16 views distinct with overwhelming
  // probability if blinding is fresh.
  EXPECT_EQ(seen.size(), 16u);
}

TEST(SecurityTest, SminAlphaIsARandomCoin) {
  // For fixed u < v, alpha equals [F == (v > u)], and F is C1's private
  // coin: over many runs both outcomes must occur. (If the implementation
  // leaked a fixed functionality, C2 would learn the comparison result.)
  TwoPartyHarness harness(256, 99);
  harness.c2().set_record_views(true);
  int alpha_one = 0;
  const int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    auto result = SecureMin(harness.ctx(), harness.EncryptBits(12, 6),
                            harness.EncryptBits(49, 6));
    ASSERT_TRUE(result.ok());
    bool saw_one = false;
    for (const auto& view : harness.c2().TakeViews()) {
      if (view.op == Op::kSminPhase2Batch && view.plaintext == BigInt(1)) {
        saw_one = true;
      }
    }
    alpha_one += saw_one ? 1 : 0;
  }
  // Binomial(40, 1/2): [5, 35] fails with probability < 1e-6.
  EXPECT_GT(alpha_one, 5);
  EXPECT_LT(alpha_one, 35);
}

TEST(SecurityTest, SminViewsAreRerandomizedAcrossRuns) {
  TwoPartyHarness harness(256, 100);
  harness.c2().set_record_views(true);
  std::set<std::string> l_views;
  std::size_t total = 0;
  for (int run = 0; run < 6; ++run) {
    auto result = SecureMin(harness.ctx(), harness.EncryptBits(3, 4),
                            harness.EncryptBits(11, 4));
    ASSERT_TRUE(result.ok());
    for (const auto& view : harness.c2().TakeViews()) {
      if (view.op != Op::kSminPhase2Batch) continue;
      ++total;
      l_views.insert(view.plaintext.ToString());
    }
  }
  // Non-deciding L entries are randomized per run; only the deciding entry
  // may repeat (it is 0 or 1). Expect near-total distinctness.
  EXPECT_GE(l_views.size(), total - 12);
}

class SkNNmSecurityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = GenerateUniformTable(10, 3, 5, 777);
    query_ = GenerateUniformQuery(3, 5, 778);
    SknnEngine::Options opts;
    opts.key_bits = 256;
    opts.attr_bits = 3;
    opts.record_c2_views = true;
    auto engine = SknnEngine::Create(table_, opts);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
  }

  PlainTable table_;
  PlainRecord query_;
  std::unique_ptr<SknnEngine> engine_;
};

TEST(SkNNmSecurityZeroTest, BetaShowsExactlyOneZeroPerIteration) {
  // Rows {i,0,0} against query {0,0,0} give pairwise-distinct distances i^2,
  // so each iteration's beta must contain exactly one zero.
  PlainTable table;
  for (int64_t i = 0; i < 8; ++i) table.push_back({i, 0, 0});
  SknnEngine::Options opts;
  opts.key_bits = 256;
  opts.attr_bits = 3;
  opts.record_c2_views = true;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok()) << engine.status();

  const unsigned k = 3;
  auto result = RunQuery(**engine, {0, 0, 0}, k, QueryProtocol::kSecure);
  ASSERT_TRUE(result.ok()) << result.status();
  std::size_t zeros = 0, pointer_views = 0;
  for (const auto& view : (*engine)->c2_service().TakeViews()) {
    if (view.op != Op::kMinPointerBatch) continue;
    ++pointer_views;
    if (view.plaintext.IsZero()) ++zeros;
  }
  EXPECT_EQ(pointer_views, k * table.size());
  EXPECT_EQ(zeros, k);
}

TEST_F(SkNNmSecurityTest, NoSmallPlaintextEverReachesC2) {
  // Every value C2 decrypts in SkNN_m (SM blinds, LSB blinds, SMIN L-views,
  // non-zero beta entries, masked records) must be indistinguishable from a
  // random residue — in particular, never a "small" value like a distance
  // or an attribute, except the protocol's explicit bit/flag values {0, 1}.
  auto result = RunQuery(*engine_, query_, 2, QueryProtocol::kSecure);
  ASSERT_TRUE(result.ok()) << result.status();
  const BigInt distance_bound = BigInt::PowerOfTwo(24);
  std::size_t suspicious = 0, total = 0;
  for (const auto& view : engine_->c2_service().TakeViews()) {
    ++total;
    if (view.plaintext <= BigInt(1)) continue;  // protocol bits / zeros
    if (view.plaintext < distance_bound) ++suspicious;
  }
  EXPECT_GT(total, 100u);  // the instrumentation really saw the protocol
  // A uniform residue mod a 256-bit N is < 2^24 with probability 2^-232.
  EXPECT_EQ(suspicious, 0u);
}

TEST_F(SkNNmSecurityTest, AccessPatternVariesUnderPermutation) {
  // The zero C2 finds in beta sits at a pi-permuted position: across many
  // runs of the *same* query, the position must jump around, otherwise C2
  // could correlate iterations with records.
  std::set<std::size_t> zero_positions;
  for (int run = 0; run < 8; ++run) {
    auto result = RunQuery(*engine_, query_, 1, QueryProtocol::kSecure);
    ASSERT_TRUE(result.ok());
    std::size_t pos = 0, idx = 0;
    for (const auto& view : engine_->c2_service().TakeViews()) {
      if (view.op != Op::kMinPointerBatch) continue;
      if (view.plaintext.IsZero()) pos = idx;
      ++idx;
    }
    zero_positions.insert(pos);
  }
  // 8 draws over 10 positions: seeing a single fixed position would mean
  // the permutation is broken (P < 1e-8 for uniform permutations).
  EXPECT_GT(zero_positions.size(), 1u);
}

TEST_F(SkNNmSecurityTest, MaskedRecordsForBobLookRandomToC2) {
  auto result = RunQuery(*engine_, query_, 2, QueryProtocol::kSecure);
  ASSERT_TRUE(result.ok());
  // Re-run and compare the kMaskedDecryptToBob views: masks are fresh, so
  // the masked attribute values C2 forwards to Bob differ run to run.
  std::set<std::string> first, second;
  for (const auto& view : engine_->c2_service().TakeViews()) {
    if (view.op == Op::kMaskedDecryptToBob) {
      first.insert(view.plaintext.ToString());
    }
  }
  auto result2 = RunQuery(*engine_, query_, 2, QueryProtocol::kSecure);
  ASSERT_TRUE(result2.ok());
  for (const auto& view : engine_->c2_service().TakeViews()) {
    if (view.op == Op::kMaskedDecryptToBob) {
      second.insert(view.plaintext.ToString());
    }
  }
  EXPECT_FALSE(first.empty());
  for (const auto& v : second) {
    EXPECT_EQ(first.count(v), 0u) << "mask reuse across queries";
  }
}

TEST(SecurityTest, SkNNbLeaksDistancesExactlyAsDocumented) {
  // The basic protocol's accepted leak (Section 4.3): C2 sees the true
  // squared distances. Verify the leak is exactly that — the multiset of
  // kTopKIndices views equals the plaintext distance multiset.
  PlainTable table = GenerateUniformTable(8, 2, 5, 888);
  PlainRecord query = GenerateUniformQuery(2, 5, 889);
  SknnEngine::Options opts;
  opts.key_bits = 256;
  opts.attr_bits = 3;
  opts.record_c2_views = true;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = RunQuery(**engine, query, 2, QueryProtocol::kBasic);
  ASSERT_TRUE(result.ok());

  std::multiset<int64_t> leaked;
  for (const auto& view : (*engine)->c2_service().TakeViews()) {
    if (view.op == Op::kTopKIndices) {
      leaked.insert(view.plaintext.ToInt64().value());
    }
  }
  std::multiset<int64_t> actual;
  for (const auto& row : table) {
    actual.insert(SquaredDistance(row, query));
  }
  EXPECT_EQ(leaked, actual);
}

TEST(SecurityTest, BobOutboxIsConsumedByQuery) {
  PlainTable table = GenerateUniformTable(6, 2, 3, 999);
  SknnEngine::Options opts;
  opts.key_bits = 256;
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = RunQuery(**engine, {1, 1}, 1, QueryProtocol::kSecure);
  ASSERT_TRUE(result.ok());
  // Nothing intended for Bob lingers on C2 after the query completes — the
  // engine drains exactly its query's outbox bucket.
  EXPECT_TRUE((*engine)->c2_service().TakeBobOutbox().empty());
}

TEST(SecurityTest, CiphertextsAreRerandomizedNotForwarded) {
  // U returned by C2 and the SMIN M' vector must be fresh encryptions, so
  // re-running the identical request yields different ciphertexts.
  TwoPartyHarness harness(256, 1234);
  Random rng(4321);
  const auto& pk = harness.pk();
  std::vector<BigInt> beta;
  for (int i = 0; i < 4; ++i) {
    beta.push_back(
        pk.Encrypt(BigInt(i == 2 ? 0 : 1000 + i), rng).value());
  }
  auto r1 = harness.ctx().Call(Op::kMinPointerBatch, beta);
  auto r2 = harness.ctx().Call(Op::kMinPointerBatch, beta);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NE(r1->ints[i], r2->ints[i]) << "stale ciphertext at " << i;
    EXPECT_EQ(harness.Decrypt(Ciphertext(r1->ints[i])),
              harness.Decrypt(Ciphertext(r2->ints[i])));
  }
}

}  // namespace
}  // namespace sknn
