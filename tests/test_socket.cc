// Tests for the TCP transport: framing round trips over localhost, close
// semantics, the Endpoint abstraction under the RPC layer, and a full
// secure-multiplication protocol run over real sockets — the two-process
// deployment path exercised in one process.
#include <gtest/gtest.h>

#include <thread>

#include "net/rpc.h"
#include "net/socket.h"
#include "proto/c2_service.h"
#include "proto/sm.h"
#include "tests/proto_test_util.h"

namespace sknn {
namespace {

struct SocketPair {
  std::unique_ptr<SocketEndpoint> client;
  std::unique_ptr<SocketEndpoint> server;
};

SocketPair MakeConnectedPair() {
  auto listener = TcpListener::Bind(0);
  EXPECT_TRUE(listener.ok()) << listener.status();
  SocketPair pair;
  std::thread accepter([&] {
    auto accepted = listener->Accept();
    EXPECT_TRUE(accepted.ok()) << accepted.status();
    pair.server = std::move(accepted).value();
  });
  auto connected = ConnectTcp("127.0.0.1", listener->port());
  EXPECT_TRUE(connected.ok()) << connected.status();
  pair.client = std::move(connected).value();
  accepter.join();
  return pair;
}

TEST(SocketTest, FrameRoundTrip) {
  SocketPair pair = MakeConnectedPair();
  ASSERT_TRUE(pair.client->Send({1, 2, 3, 4, 5}));
  std::vector<uint8_t> frame;
  ASSERT_TRUE(pair.server->Recv(&frame));
  EXPECT_EQ(frame, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  // And the other direction.
  ASSERT_TRUE(pair.server->Send({9}));
  ASSERT_TRUE(pair.client->Recv(&frame));
  EXPECT_EQ(frame, std::vector<uint8_t>{9});
}

TEST(SocketTest, EmptyFrame) {
  SocketPair pair = MakeConnectedPair();
  ASSERT_TRUE(pair.client->Send({}));
  std::vector<uint8_t> frame = {42};
  ASSERT_TRUE(pair.server->Recv(&frame));
  EXPECT_TRUE(frame.empty());
}

TEST(SocketTest, LargeFrame) {
  SocketPair pair = MakeConnectedPair();
  std::vector<uint8_t> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 31);
  }
  ASSERT_TRUE(pair.client->Send(big));
  std::vector<uint8_t> frame;
  ASSERT_TRUE(pair.server->Recv(&frame));
  EXPECT_EQ(frame, big);
}

TEST(SocketTest, TrafficCounters) {
  SocketPair pair = MakeConnectedPair();
  pair.client->Send({1, 2, 3});
  std::vector<uint8_t> frame;
  pair.server->Recv(&frame);
  EXPECT_EQ(pair.client->bytes_sent(), 7u);  // 4-byte prefix + 3 payload
  EXPECT_EQ(pair.server->bytes_received(), 7u);
}

TEST(SocketTest, CloseUnblocksPeerRecv) {
  SocketPair pair = MakeConnectedPair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pair.client->Close();
  });
  std::vector<uint8_t> frame;
  EXPECT_FALSE(pair.server->Recv(&frame));
  closer.join();
  EXPECT_FALSE(pair.client->Send({1}));
}

TEST(SocketTest, ConnectFailsToClosedPort) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  uint16_t port = listener->port();
  listener->Close();
  EXPECT_FALSE(ConnectTcp("127.0.0.1", port).ok());
}

TEST(SocketTest, ConnectRejectsBadAddress) {
  EXPECT_FALSE(ConnectTcp("not-an-address", 1).ok());
}

TEST(SocketTest, RpcOverTcp) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<RpcServer> server;
  std::thread accepter([&] {
    auto accepted = listener->Accept();
    ASSERT_TRUE(accepted.ok());
    server = std::make_unique<RpcServer>(
        std::move(accepted).value(),
        [](const Message& req) -> Result<Message> {
          Message resp;
          resp.type = req.type + 1;
          resp.ints = req.ints;
          return resp;
        },
        1);
  });
  auto connected = ConnectTcp("127.0.0.1", listener->port());
  ASSERT_TRUE(connected.ok());
  accepter.join();
  RpcClient client(std::move(connected).value());

  Message req;
  req.type = 41;
  req.ints = {BigInt(12345)};
  auto resp = client.Call(std::move(req));
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->type, 42);
  EXPECT_EQ(resp->ints[0], BigInt(12345));
}

TEST(SocketTest, SecureMultiplicationOverRealSockets) {
  // The full two-cloud topology over TCP: C2 behind a socket RPC server,
  // C1 driving SM through a socket RPC client.
  Random rng(2025);
  auto keys = GeneratePaillierKeyPair(256, rng).value();
  C2Service c2(std::move(keys.sk));

  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<RpcServer> server;
  std::thread accepter([&] {
    auto accepted = listener->Accept();
    ASSERT_TRUE(accepted.ok());
    server = std::make_unique<RpcServer>(
        std::move(accepted).value(),
        [&c2](const Message& req) { return c2.Handle(req); }, 1);
  });
  auto connected = ConnectTcp("127.0.0.1", listener->port());
  ASSERT_TRUE(connected.ok());
  accepter.join();

  RpcClient client(std::move(connected).value());
  ProtoContext ctx(&keys.pk, &client);
  auto product = SecureMultiply(ctx, keys.pk.Encrypt(BigInt(59), rng),
                                keys.pk.Encrypt(BigInt(58), rng));
  ASSERT_TRUE(product.ok()) << product.status();
  EXPECT_EQ(c2.secret_key().Decrypt(*product), BigInt(3422));
}

TEST(SocketTest, BobOutboxFetchOpcode) {
  // The two-process pickup path: decrypted masked values queued for Bob are
  // returned (and cleared) by kFetchBobOutbox.
  TwoPartyHarness harness(256, 3030);
  Random rng(3031);
  const auto& pk = harness.pk();
  std::vector<BigInt> gamma = {pk.Encrypt(BigInt(11), rng).value(),
                               pk.Encrypt(BigInt(22), rng).value()};
  ASSERT_TRUE(harness.ctx().Call(Op::kMaskedDecryptToBob, gamma).ok());
  auto fetched = harness.ctx().Call(Op::kFetchBobOutbox, {});
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched->ints.size(), 2u);
  EXPECT_EQ(fetched->ints[0], BigInt(11));
  EXPECT_EQ(fetched->ints[1], BigInt(22));
  // Second fetch: empty.
  auto again = harness.ctx().Call(Op::kFetchBobOutbox, {});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->ints.empty());
}

}  // namespace
}  // namespace sknn
