// Tests for SMAX / SMAX_n (the De-Morgan dual of SMIN) and for the secure
// k-farthest-neighbor query built on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "baseline/plaintext_knn.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "proto/smax.h"
#include "tests/proto_test_util.h"
#include "tests/query_test_util.h"

namespace sknn {
namespace {

class SmaxTest : public ::testing::Test {
 protected:
  TwoPartyHarness harness_;
  Random rng_{808};
};

TEST_F(SmaxTest, ComplementBitsFlipsEveryBit) {
  auto bits = harness_.EncryptBits(0b1010, 4);
  EncryptedBits flipped = ComplementBits(harness_.pk(), bits);
  EXPECT_EQ(harness_.DecryptBits(flipped), 0b0101u);
  // Double complement is the identity.
  EncryptedBits twice = ComplementBits(harness_.pk(), flipped);
  EXPECT_EQ(harness_.DecryptBits(twice), 0b1010u);
}

TEST_F(SmaxTest, ExhaustiveThreeBitPairs) {
  for (uint64_t u = 0; u < 8; ++u) {
    for (uint64_t v = 0; v < 8; ++v) {
      auto result = SecureMax(harness_.ctx(), harness_.EncryptBits(u, 3),
                              harness_.EncryptBits(v, 3));
      ASSERT_TRUE(result.ok()) << "u=" << u << " v=" << v;
      EXPECT_EQ(harness_.DecryptBits(*result), std::max(u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST_F(SmaxTest, EqualOperands) {
  for (uint64_t z : {uint64_t{0}, uint64_t{31}, uint64_t{17}}) {
    auto result = SecureMax(harness_.ctx(), harness_.EncryptBits(z, 5),
                            harness_.EncryptBits(z, 5));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(harness_.DecryptBits(*result), z);
  }
}

TEST_F(SmaxTest, BatchOfPairs) {
  std::vector<EncryptedBits> us, vs;
  std::vector<uint64_t> expected;
  for (int i = 0; i < 10; ++i) {
    uint64_t u = rng_.UniformUint64(1 << 7);
    uint64_t v = rng_.UniformUint64(1 << 7);
    us.push_back(harness_.EncryptBits(u, 7));
    vs.push_back(harness_.EncryptBits(v, 7));
    expected.push_back(std::max(u, v));
  }
  auto result = SecureMaxBatch(harness_.ctx(), us, vs);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(harness_.DecryptBits((*result)[i]), expected[i]) << i;
  }
}

TEST_F(SmaxTest, MaxNOverVariousSizes) {
  for (std::size_t n : {1u, 2u, 5u, 9u}) {
    std::vector<uint64_t> values;
    std::vector<EncryptedBits> enc;
    for (std::size_t i = 0; i < n; ++i) {
      uint64_t v = rng_.UniformUint64(1 << 8);
      values.push_back(v);
      enc.push_back(harness_.EncryptBits(v, 8));
    }
    auto result = SecureMaxN(harness_.ctx(), enc);
    ASSERT_TRUE(result.ok()) << "n=" << n;
    EXPECT_EQ(harness_.DecryptBits(*result),
              *std::max_element(values.begin(), values.end()))
        << "n=" << n;
  }
}

TEST_F(SmaxTest, MaxNRejectsEmpty) {
  EXPECT_FALSE(SecureMaxN(harness_.ctx(), {}).ok());
}

// Min/max duality on the same inputs.
class MinMaxDuality : public ::testing::TestWithParam<unsigned> {};

TEST_P(MinMaxDuality, MinPlusMaxEqualsSumForPairs) {
  unsigned l = GetParam();
  TwoPartyHarness harness(256, 6000 + l);
  Random rng(l);
  for (int i = 0; i < 5; ++i) {
    uint64_t u = rng.UniformUint64(uint64_t{1} << l);
    uint64_t v = rng.UniformUint64(uint64_t{1} << l);
    auto min_r = SecureMin(harness.ctx(), harness.EncryptBits(u, l),
                           harness.EncryptBits(v, l));
    auto max_r = SecureMax(harness.ctx(), harness.EncryptBits(u, l),
                           harness.EncryptBits(v, l));
    ASSERT_TRUE(min_r.ok());
    ASSERT_TRUE(max_r.ok());
    EXPECT_EQ(harness.DecryptBits(*min_r) + harness.DecryptBits(*max_r),
              u + v);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MinMaxDuality,
                         ::testing::Values(3u, 6u, 12u));

// -- Secure k-farthest neighbors over the engine ------------------------------

std::multiset<int64_t> DistanceSet(const PlainTable& rows,
                                   const PlainRecord& q) {
  std::multiset<int64_t> out;
  for (const auto& r : rows) out.insert(SquaredDistance(r, q));
  return out;
}

PlainTable PlainFarthest(const PlainTable& table, const PlainRecord& query,
                         unsigned k) {
  std::vector<std::size_t> idx(table.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    int64_t da = SquaredDistance(table[a], query);
    int64_t db = SquaredDistance(table[b], query);
    return da != db ? da > db : a < b;
  });
  PlainTable out;
  for (unsigned j = 0; j < k; ++j) out.push_back(table[idx[j]]);
  return out;
}

TEST(FarthestQueryTest, MatchesPlaintextFarthest) {
  const std::size_t n = 10, m = 3;
  PlainTable table = GenerateUniformTable(n, m, 6, 7001);
  PlainRecord query = GenerateUniformQuery(m, 6, 7002);
  SknnEngine::Options opts;
  opts.key_bits = 256;
  opts.attr_bits = 3;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok()) << engine.status();
  for (unsigned k : {1u, 3u}) {
    auto result = RunQuery(**engine, query, k, QueryProtocol::kFarthest);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(DistanceSet(result->records, query),
              DistanceSet(PlainFarthest(table, query, k), query))
        << "k=" << k;
  }
}

TEST(FarthestQueryTest, FarthestFirstOrdering) {
  PlainTable table = {{0, 0}, {7, 7}, {3, 3}, {5, 1}};
  PlainRecord query = {0, 0};
  SknnEngine::Options opts;
  opts.key_bits = 256;
  opts.attr_bits = 3;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = RunQuery(**engine, query, 3, QueryProtocol::kFarthest);
  ASSERT_TRUE(result.ok());
  for (std::size_t j = 1; j < result->records.size(); ++j) {
    EXPECT_GE(SquaredDistance(result->records[j - 1], query),
              SquaredDistance(result->records[j], query));
  }
  EXPECT_EQ(result->records[0], (PlainRecord{7, 7}));
}

TEST(FarthestQueryTest, NearestAndFarthestPartitionExtremes) {
  // With k = n the nearest and farthest queries return the same multiset.
  PlainTable table = GenerateUniformTable(6, 2, 5, 7003);
  PlainRecord query = GenerateUniformQuery(2, 5, 7004);
  SknnEngine::Options opts;
  opts.key_bits = 256;
  opts.attr_bits = 3;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto nearest = RunQuery(**engine, query, 6, QueryProtocol::kSecure);
  auto farthest = RunQuery(**engine, query, 6, QueryProtocol::kFarthest);
  ASSERT_TRUE(nearest.ok());
  ASSERT_TRUE(farthest.ok());
  EXPECT_EQ(DistanceSet(nearest->records, query),
            DistanceSet(farthest->records, query));
}

}  // namespace
}  // namespace sknn
