// Shared fixture utilities for protocol tests: spins up the two-cloud
// topology (C2 service behind the RPC server, C1-side context) around a
// fresh key pair. Small keys (256 bit) keep the suites fast; protocol
// correctness is key-size independent.
#ifndef SKNN_TESTS_PROTO_TEST_UTIL_H_
#define SKNN_TESTS_PROTO_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "bigint/random.h"
#include "crypto/paillier.h"
#include "net/rpc.h"
#include "proto/c2_service.h"
#include "proto/context.h"

namespace sknn {

class TwoPartyHarness {
 public:
  explicit TwoPartyHarness(unsigned key_bits = 256, uint64_t seed = 42,
                           std::size_t c1_threads = 1,
                           std::size_t c2_threads = 1) {
    Random rng(seed);
    auto keys = GeneratePaillierKeyPair(key_bits, rng);
    EXPECT_TRUE(keys.ok()) << keys.status();
    pk_ = keys->pk;
    c2_ = std::make_unique<C2Service>(std::move(keys->sk));

    Channel::EndpointPair link = Channel::CreatePair();
    channel_ = &link.a->channel();
    C2Service* c2_raw = c2_.get();
    server_ = std::make_unique<RpcServer>(
        std::move(link.b),
        [c2_raw](const Message& req) { return c2_raw->Handle(req); },
        c2_threads);
    client_ = std::make_unique<RpcClient>(std::move(link.a));
    if (c1_threads > 1) pool_ = std::make_unique<ThreadPool>(c1_threads);
    ctx_ = std::make_unique<ProtoContext>(&pk_, client_.get(), pool_.get());
  }

  const PaillierPublicKey& pk() const { return pk_; }
  ProtoContext& ctx() { return *ctx_; }
  C2Service& c2() { return *c2_; }
  Channel& channel() { return *channel_; }

  /// \brief Decrypt helper for assertions ("the test plays both parties").
  BigInt Decrypt(const Ciphertext& c) { return c2_->secret_key().Decrypt(c); }
  BigInt DecryptSigned(const Ciphertext& c) {
    return c2_->secret_key().DecryptSigned(c);
  }

  /// \brief Encrypts the l-bit binary expansion of `value`, MSB first — the
  /// paper's [value] notation.
  std::vector<Ciphertext> EncryptBits(uint64_t value, unsigned l) {
    Random& rng = Random::ThreadLocal();
    std::vector<Ciphertext> out(l);
    for (unsigned i = 0; i < l; ++i) {
      int bit = (value >> (l - 1 - i)) & 1;
      out[i] = pk_.Encrypt(BigInt(bit), rng);
    }
    return out;
  }

  /// \brief Decrypts an encrypted MSB-first bit vector back to an integer,
  /// failing the test if any entry is not a bit.
  uint64_t DecryptBits(const std::vector<Ciphertext>& bits) {
    uint64_t out = 0;
    for (const auto& b : bits) {
      BigInt v = Decrypt(b);
      EXPECT_TRUE(v == BigInt(0) || v == BigInt(1))
          << "non-bit plaintext: " << v;
      out = (out << 1) | v.ToUint64().value();
    }
    return out;
  }

 private:
  PaillierPublicKey pk_;
  std::unique_ptr<C2Service> c2_;
  Channel* channel_ = nullptr;
  std::unique_ptr<RpcServer> server_;
  std::unique_ptr<RpcClient> client_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ProtoContext> ctx_;
};

}  // namespace sknn

#endif  // SKNN_TESTS_PROTO_TEST_UTIL_H_
