// The sharded-execution proof harness (ISSUE 4 tentpole): sharded query
// execution must be indistinguishable — record for record, byte for byte —
// from the unsharded engine, which itself must match the plaintext oracle.
//
// Three layers of evidence:
//   1. a seeded differential sweep over (n, m, k, s, scheme, protocol) —
//      random tables (ties included: the deterministic tie-break makes them
//      safe), every combination checked sharded vs unsharded vs oracle,
//      with the edge cases the coordinator must survive: k > n/s (shards
//      smaller than k), s = 1 (degenerate sharding), s > k, k = n;
//   2. adversarial tie tables — many records at exactly equal distance,
//      distinct payloads — asserted identical across shard counts and
//      schemes (the lower-global-index tie-break, end to end);
//   3. the remote topology: real ShardWorker instances behind loopback TCP
//      RpcServers, a shared C2 service, SknnEngine::CreateWithShardWorkers
//      — plus fault injection: a worker killed or disconnecting mid-query
//      must surface StatusCode::kUnavailable, never a hang, and a
//      misassembled worker set must be rejected at construction.
//
// Plus, since ISSUE 7, replication: several workers per shard are replicas,
// a replica dying or hanging mid-query fails over to a sibling within the
// query without changing a single output bit, and when EVERY replica of a
// shard is silent the per-query deadline resolves to kDeadlineExceeded in
// bounded time.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"

#include "baseline/plaintext_knn.h"
#include "core/data_owner.h"
#include "core/db_io.h"
#include "core/engine.h"
#include "core/sharding.h"
#include "data/synthetic.h"
#include "net/shard_wire.h"
#include "net/socket.h"
#include "serve/shard_worker.h"
#include "tests/query_test_util.h"

namespace sknn {
namespace {

constexpr unsigned kKeyBits = 256;
constexpr unsigned kAttrBits = 3;
constexpr int64_t kMaxValue = 7;  // [0, 2^kAttrBits)

// One Alice for the whole binary: keygen dominates setup, and every engine
// under test may share the same key pair (they simulate ONE deployment).
DataOwner& SharedAlice() {
  static DataOwner* alice = [] {
    auto created = DataOwner::Create(kKeyBits);
    SKNN_CHECK(created.ok()) << created.status();
    return new DataOwner(std::move(created).value());
  }();
  return *alice;
}

SknnEngine::Options BaseOptions() {
  SknnEngine::Options options;
  options.c1_threads = 2;
  options.c2_threads = 2;
  options.randomizer_pool_capacity = 32;  // keep background fill light
  return options;
}

std::unique_ptr<SknnEngine> MakeEngine(const PlainTable& table,
                                       const SknnEngine::Options& options) {
  auto db = SharedAlice().EncryptDatabase(table, kAttrBits);
  EXPECT_TRUE(db.ok()) << db.status();
  auto engine = SknnEngine::CreateFromParts(
      SharedAlice().public_key(),
      PaillierSecretKey(SharedAlice().secret_key_for_c2()),
      std::move(db).value(), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

// The farthest-first oracle (mirrors tools/sknn_plain_knn --farthest):
// descending distance, ties by lower index.
PlainTable FarthestOracle(const PlainTable& table, const PlainRecord& query,
                          unsigned k) {
  std::vector<std::size_t> order(table.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return SquaredDistance(table[a], query) >
                            SquaredDistance(table[b], query);
                   });
  PlainTable out;
  for (unsigned j = 0; j < k; ++j) out.push_back(table[order[j]]);
  return out;
}

PlainTable Oracle(const PlainTable& table, const PlainRecord& query,
                  unsigned k, QueryProtocol protocol) {
  return protocol == QueryProtocol::kFarthest
             ? FarthestOracle(table, query, k)
             : PlainKnn(table, query, k);
}

// ---------------------------------------------------------------------------
// 1. Seeded differential sweep.

struct SweepCase {
  std::size_t n, m;
  unsigned k;
  std::size_t s;
  ShardScheme scheme;
  QueryProtocol protocol;
  uint64_t seed;
};

std::string CaseName(const SweepCase& c) {
  return std::string(QueryProtocolName(c.protocol)) + " n=" +
         std::to_string(c.n) + " m=" + std::to_string(c.m) + " k=" +
         std::to_string(c.k) + " s=" + std::to_string(c.s) + " " +
         ShardSchemeName(c.scheme) + " seed=" + std::to_string(c.seed);
}

TEST(ShardedQueryDifferential, SweepMatchesUnshardedAndOracle) {
  const std::vector<SweepCase> sweep = {
      // Plain shapes, both schemes, all protocols.
      {8, 2, 2, 2, ShardScheme::kContiguous, QueryProtocol::kSecure, 1001},
      {9, 3, 3, 3, ShardScheme::kRoundRobin, QueryProtocol::kSecure, 1002},
      {8, 2, 3, 2, ShardScheme::kContiguous, QueryProtocol::kBasic, 1003},
      {9, 2, 4, 4, ShardScheme::kRoundRobin, QueryProtocol::kBasic, 1004},
      {8, 2, 2, 2, ShardScheme::kRoundRobin, QueryProtocol::kFarthest, 1005},
      // k > n/s: shards smaller than k contribute all their records.
      {6, 2, 4, 3, ShardScheme::kContiguous, QueryProtocol::kSecure, 1006},
      {6, 2, 5, 3, ShardScheme::kRoundRobin, QueryProtocol::kBasic, 1007},
      // s = 1: the coordinator path degenerates to re-extraction.
      {8, 2, 2, 1, ShardScheme::kContiguous, QueryProtocol::kSecure, 1008},
      // s > k, uneven partition (8 records over 5 shards).
      {8, 2, 2, 5, ShardScheme::kRoundRobin, QueryProtocol::kSecure, 1009},
      // k = n: every record comes back, in global order.
      {6, 2, 6, 3, ShardScheme::kContiguous, QueryProtocol::kBasic, 1010},
      {5, 2, 5, 2, ShardScheme::kContiguous, QueryProtocol::kFarthest, 1011},
  };
  for (const SweepCase& c : sweep) {
    SCOPED_TRACE(CaseName(c));
    PlainTable table = GenerateUniformTable(c.n, c.m, kMaxValue, c.seed);
    PlainRecord query = GenerateUniformQuery(c.m, kMaxValue, c.seed + 1);

    auto unsharded = MakeEngine(table, BaseOptions());
    SknnEngine::Options sharded_options = BaseOptions();
    sharded_options.shards = c.s;
    sharded_options.shard_scheme = c.scheme;
    auto sharded = MakeEngine(table, sharded_options);

    auto reference = RunQuery(*unsharded, query, c.k, c.protocol);
    ASSERT_TRUE(reference.ok()) << reference.status();
    auto result = RunQuery(*sharded, query, c.k, c.protocol);
    ASSERT_TRUE(result.ok()) << result.status();

    // The three-way differential: oracle == unsharded == sharded.
    EXPECT_EQ(reference->records, Oracle(table, query, c.k, c.protocol));
    EXPECT_EQ(result->records, reference->records);

    // s = 1 in-process is BY DESIGN the unsharded engine (Options::shards
    // doc) — the answer must still agree, with no shard stats. The true
    // one-shard coordinator path is exercised by the remote topology below
    // (SingleWorkerCoordinatorDegeneratesCorrectly).
    if (c.s == 1) {
      EXPECT_TRUE(result->shards.empty());
      continue;
    }
    // Per-shard instrumentation: every shard reports, candidate counts are
    // exactly min(k, shard size), and the shard stages' cost is folded into
    // the query totals.
    ASSERT_EQ(result->shards.size(), c.s);
    auto manifest = MakeShardManifest(c.n, c.s, c.scheme);
    ASSERT_TRUE(manifest.ok()) << manifest.status();
    uint64_t shard_frames = 0;
    for (std::size_t shard = 0; shard < c.s; ++shard) {
      const ShardQueryStats& stats = result->shards[shard];
      EXPECT_EQ(stats.shard, shard);
      const std::size_t shard_n =
          ShardRecordIndices(*manifest, shard).size();
      EXPECT_EQ(static_cast<std::size_t>(stats.candidates),
                std::min<std::size_t>(c.k, shard_n));
      EXPECT_GT(stats.traffic.total_frames(), 0u) << "shard " << shard;
      EXPECT_GT(stats.ops.encryptions, 0u) << "shard " << shard;
      shard_frames += stats.traffic.total_frames();
    }
    EXPECT_GE(result->traffic.total_frames(), shard_frames)
        << "shard traffic not folded into the query total";
    EXPECT_GE(result->merge_seconds, 0.0);
    EXPECT_TRUE(reference->shards.empty());
  }
}

// ---------------------------------------------------------------------------
// 2. Tied distances: the deterministic lower-global-index tie-break must
// hold across shard counts and schemes, for distinct records at equal
// distances (the case a random tie-pick would scramble).

TEST(ShardedQueryDifferential, TiedDistancesBreakDeterministicallyAcrossShardCounts) {
  // From query {0,0}: records 0-3 all at squared distance 25 with DISTINCT
  // payloads, records 4-5 nearer, record 6 a duplicate of record 1 (also at
  // 25). k=4 cuts through the tie group; k=2 (farthest) picks among the
  // tied-farthest four.
  const PlainTable table = {{0, 5}, {3, 4}, {4, 3}, {5, 0},
                           {1, 0}, {0, 2}, {3, 4}};
  const PlainRecord query = {0, 0};

  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure,
        QueryProtocol::kFarthest}) {
    SCOPED_TRACE(QueryProtocolName(protocol));
    const unsigned k = 4;
    const PlainTable want = Oracle(table, query, k, protocol);
    for (ShardScheme scheme :
         {ShardScheme::kContiguous, ShardScheme::kRoundRobin}) {
      for (std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
        SCOPED_TRACE(std::string(ShardSchemeName(scheme)) + " s=" +
                     std::to_string(s));
        SknnEngine::Options options = BaseOptions();
        options.shards = s;
        options.shard_scheme = scheme;
        auto engine = MakeEngine(table, options);
        auto result = RunQuery(*engine, query, k, protocol);
        ASSERT_TRUE(result.ok()) << result.status();
        EXPECT_EQ(result->records, want)
            << "tie-break diverged from the lower-global-index order";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Partitioner / manifest units (the geometry the whole scheme rests on).

TEST(ShardManifestTest, BothSchemesPartitionExactly) {
  for (ShardScheme scheme :
       {ShardScheme::kContiguous, ShardScheme::kRoundRobin}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{12}}) {
      for (std::size_t s = 1; s <= n; ++s) {
        auto manifest = MakeShardManifest(n, s, scheme);
        ASSERT_TRUE(manifest.ok()) << manifest.status();
        std::vector<bool> seen(n, false);
        for (std::size_t shard = 0; shard < s; ++shard) {
          std::vector<std::size_t> indices =
              ShardRecordIndices(*manifest, shard);
          EXPECT_FALSE(indices.empty())
              << ShardSchemeName(scheme) << " n=" << n << " s=" << s
              << " shard " << shard << " is empty";
          EXPECT_TRUE(std::is_sorted(indices.begin(), indices.end()));
          for (std::size_t gidx : indices) {
            ASSERT_LT(gidx, n);
            EXPECT_FALSE(seen[gidx]) << "index " << gidx << " assigned twice";
            seen[gidx] = true;
          }
        }
        EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                                [](bool b) { return b; }))
            << ShardSchemeName(scheme) << " n=" << n << " s=" << s
            << " left records unassigned";
      }
    }
  }
}

TEST(ShardManifestTest, RejectsDegenerateShapes) {
  EXPECT_FALSE(MakeShardManifest(0, 1, ShardScheme::kContiguous).ok());
  EXPECT_FALSE(MakeShardManifest(4, 0, ShardScheme::kContiguous).ok());
  EXPECT_FALSE(MakeShardManifest(4, 5, ShardScheme::kContiguous).ok());

  // Over-sharded engine construction fails up front, not at query time.
  PlainTable table = GenerateUniformTable(4, 2, kMaxValue, 7);
  auto db = SharedAlice().EncryptDatabase(table, kAttrBits);
  ASSERT_TRUE(db.ok());
  SknnEngine::Options options = BaseOptions();
  options.shards = 9;
  auto engine = SknnEngine::CreateFromParts(
      SharedAlice().public_key(),
      PaillierSecretKey(SharedAlice().secret_key_for_c2()),
      std::move(db).value(), options);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardManifestTest, RoundTripsThroughDbIo) {
  const std::string path =
      ::testing::TempDir() + "/sharded_query_manifest.bin";
  auto manifest = MakeShardManifest(12, 3, ShardScheme::kRoundRobin);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(WriteShardManifest(path, *manifest).ok());
  auto loaded = ReadShardManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, *manifest);

  // Corruption is detected, not interpreted.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "SKNNSH01garbage";
  }
  EXPECT_FALSE(ReadShardManifest(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// 4. The remote topology: real workers over loopback TCP + fault injection.

// A C2 key holder accepting any number of TCP connections (the engine's and
// every worker's), one RpcServer per link — the in-test stand-in for
// tools/sknn_c2_server.
class TcpC2 {
 public:
  explicit TcpC2(PaillierSecretKey sk) : c2_(std::move(sk)) {
    c2_.EnableRandomizerPool(/*capacity=*/32);
    auto listener = TcpListener::Bind(0);
    SKNN_CHECK(listener.ok()) << listener.status();
    listener_.emplace(std::move(listener).value());
    accept_thread_ = std::thread([this] {
      for (;;) {
        auto endpoint = listener_->Accept();
        if (!endpoint.ok()) return;  // closed
        MutexLock lock(&mutex_);
        sessions_.push_back(std::make_unique<RpcServer>(
            std::move(endpoint).value(),
            [this](const Message& req) { return c2_.Handle(req); },
            /*worker_threads=*/2));
      }
    });
  }

  ~TcpC2() {
    listener_->Close();
    if (auto kick = ConnectTcp("127.0.0.1", port()); kick.ok()) {
      (*kick)->Close();
    }
    accept_thread_.join();
    MutexLock lock(&mutex_);
    for (auto& session : sessions_) session->Shutdown();
  }

  uint16_t port() const { return listener_->port(); }

  std::unique_ptr<Endpoint> Connect() {
    auto link = ConnectTcp("127.0.0.1", port());
    SKNN_CHECK(link.ok()) << link.status();
    return std::move(link).value();
  }

 private:
  C2Service c2_;
  std::optional<TcpListener> listener_;
  std::thread accept_thread_;
  Mutex mutex_;
  std::vector<std::unique_ptr<RpcServer>> sessions_ GUARDED_BY(mutex_);
};

// One shard worker served over a loopback TCP link (the in-test
// tools/sknn_c1_shard). Handler may be overridden for fault injection.
class TcpWorker {
 public:
  TcpWorker(std::unique_ptr<ShardWorker> worker, RpcServer::Handler handler)
      : worker_(std::move(worker)) {
    auto listener = TcpListener::Bind(0);
    SKNN_CHECK(listener.ok()) << listener.status();
    port_ = listener->port();
    std::thread accepter([&] {
      auto accepted = listener->Accept();
      SKNN_CHECK(accepted.ok()) << accepted.status();
      server_ = std::make_unique<RpcServer>(
          std::move(accepted).value(), std::move(handler),
          /*worker_threads=*/2);
    });
    link_ = ConnectTcp("127.0.0.1", port_);
    SKNN_CHECK(link_.ok()) << link_.status();
    accepter.join();
  }

  static RpcServer::Handler Passthrough(ShardWorker* worker) {
    return [worker](const Message& req) { return worker->Handle(req); };
  }

  std::unique_ptr<Endpoint> TakeLink() { return std::move(link_).value(); }
  RpcServer& server() { return *server_; }
  ShardWorker* worker() { return worker_.get(); }

 private:
  std::unique_ptr<ShardWorker> worker_;
  uint16_t port_ = 0;
  std::unique_ptr<RpcServer> server_;
  Result<std::unique_ptr<SocketEndpoint>> link_ =
      Status::Internal("not connected");
};

struct RemoteTopology {
  PlainTable table;
  EncryptedDatabase db;
  ShardManifest manifest;
  std::unique_ptr<TcpC2> c2;
  std::vector<std::unique_ptr<TcpWorker>> workers;

  RemoteTopology(std::size_t n, std::size_t s, uint64_t seed) {
    table = GenerateUniformTable(n, 2, kMaxValue, seed);
    auto encrypted = SharedAlice().EncryptDatabase(table, kAttrBits);
    SKNN_CHECK(encrypted.ok()) << encrypted.status();
    db = std::move(encrypted).value();
    auto made = MakeShardManifest(n, s, ShardScheme::kContiguous);
    SKNN_CHECK(made.ok()) << made.status();
    manifest = std::move(made).value();
    c2 = std::make_unique<TcpC2>(
        PaillierSecretKey(SharedAlice().secret_key_for_c2()));
  }

  std::unique_ptr<ShardWorker> MakeWorker(std::size_t shard) {
    ShardWorker::Options options;
    options.threads = 2;
    options.randomizer_pool_capacity = 32;
    auto worker = ShardWorker::Create(SharedAlice().public_key(), db,
                                      manifest, shard, c2->Connect(),
                                      options);
    SKNN_CHECK(worker.ok()) << worker.status();
    return std::move(worker).value();
  }

  void AddWorker(std::size_t shard) {
    auto worker = MakeWorker(shard);
    ShardWorker* raw = worker.get();
    workers.push_back(std::make_unique<TcpWorker>(
        std::move(worker), TcpWorker::Passthrough(raw)));
  }

  Result<std::unique_ptr<SknnEngine>> MakeEngine() {
    std::vector<std::unique_ptr<Endpoint>> links;
    for (auto& worker : workers) links.push_back(worker->TakeLink());
    return SknnEngine::CreateWithShardWorkers(SharedAlice().public_key(),
                                              std::move(links), c2->Connect(),
                                              BaseOptions());
  }
};

TEST(ShardedQueryRemote, WorkerTopologyMatchesUnshardedBitwise) {
  RemoteTopology topology(/*n=*/8, /*s=*/2, /*seed=*/2201);
  // Register workers out of order on purpose: the coordinator must index
  // them by their REPORTED shard, not by connection order.
  topology.AddWorker(1);
  topology.AddWorker(0);
  auto engine = topology.MakeEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_TRUE((*engine)->database().records.empty())
      << "a worker-backed front end must not host records";
  EXPECT_EQ((*engine)->num_records(), 8u);

  auto reference = MakeEngine(topology.table, BaseOptions());
  PlainRecord query = GenerateUniformQuery(2, kMaxValue, 2202);
  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure,
        QueryProtocol::kFarthest}) {
    SCOPED_TRACE(QueryProtocolName(protocol));
    for (unsigned k : {1u, 3u}) {
      auto local = RunQuery(*reference, query, k, protocol);
      ASSERT_TRUE(local.ok()) << local.status();
      auto remote = RunQuery(**engine, query, k, protocol);
      ASSERT_TRUE(remote.ok()) << remote.status();
      EXPECT_EQ(remote->records, local->records);
      EXPECT_EQ(remote->records, Oracle(topology.table, query, k, protocol));
      ASSERT_EQ(remote->shards.size(), 2u);
      for (const auto& shard : remote->shards) {
        EXPECT_GT(shard.traffic.total_frames(), 0u);
        EXPECT_GT(shard.ops.encryptions, 0u);
      }
      // Both clouds' ops crossed both process boundaries: the response must
      // see C2 decryptions (ledger fetch) and the workers' C1-side work.
      EXPECT_GT(remote->ops.decryptions, 0u);
    }
  }
}

TEST(ShardedQueryRemote, SingleWorkerCoordinatorDegeneratesCorrectly) {
  // s = 1 through the REAL coordinator: one worker holds everything, the
  // merge re-extracts from that worker's own candidates — and the answer is
  // still bitwise the unsharded one.
  RemoteTopology topology(/*n=*/6, /*s=*/1, /*seed=*/2601);
  topology.AddWorker(0);
  auto engine = topology.MakeEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto reference = MakeEngine(topology.table, BaseOptions());
  PlainRecord query = GenerateUniformQuery(2, kMaxValue, 2602);
  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure}) {
    SCOPED_TRACE(QueryProtocolName(protocol));
    auto local = RunQuery(*reference, query, 2, protocol);
    ASSERT_TRUE(local.ok()) << local.status();
    auto remote = RunQuery(**engine, query, 2, protocol);
    ASSERT_TRUE(remote.ok()) << remote.status();
    EXPECT_EQ(remote->records, local->records);
    ASSERT_EQ(remote->shards.size(), 1u);
    EXPECT_EQ(remote->shards[0].candidates, 2u);
  }
}

TEST(ShardedQueryRemote, MisassembledWorkerSetsAreRejected) {
  RemoteTopology topology(/*n=*/6, /*s=*/2, /*seed=*/2301);
  // Two workers claiming the same shard are legal now (replicas) — but
  // shard 1 of the two-shard manifest is still uncovered, so the set is
  // rejected all the same.
  topology.AddWorker(0);
  topology.AddWorker(0);
  auto engine = topology.MakeEngine();
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);

  // One worker for a two-shard manifest.
  RemoteTopology short_set(/*n=*/6, /*s=*/2, /*seed=*/2302);
  short_set.AddWorker(0);
  auto incomplete = short_set.MakeEngine();
  ASSERT_FALSE(incomplete.ok());
  EXPECT_EQ(incomplete.status().code(), StatusCode::kInvalidArgument);
}

// A fake shard worker for fault injection: answers the construction-time
// ping with a consistent geometry, then misbehaves on the query leg.
class FaultyWorker {
 public:
  enum class Mode { kHangUntilKilled, kDisconnect };

  FaultyWorker(const ShardGeometry& geometry, Mode mode)
      : geometry_(geometry), mode_(mode) {
    auto listener = TcpListener::Bind(0);
    SKNN_CHECK(listener.ok()) << listener.status();
    std::thread accepter([&] {
      auto accepted = listener->Accept();
      SKNN_CHECK(accepted.ok()) << accepted.status();
      server_ = std::make_unique<RpcServer>(
          std::move(accepted).value(),
          [this](const Message& req) { return Handle(req); },
          /*worker_threads=*/1);
    });
    link_ = ConnectTcp("127.0.0.1", listener->port());
    SKNN_CHECK(link_.ok()) << link_.status();
    accepter.join();
  }

  ~FaultyWorker() {
    Kill();
    Release();
  }

  std::unique_ptr<Endpoint> TakeLink() { return std::move(link_).value(); }

  /// Blocks until the faulty worker has received the query leg.
  void WaitForQuery() { query_seen_.get_future().wait(); }

  /// The "kill -9": slams the worker's link shut mid-query.
  void Kill() { server_->Shutdown(); }

  void Release() {
    if (!released_.exchange(true)) hold_.set_value();
  }

 private:
  Result<Message> Handle(const Message& req) {
    if (req.type == ShardOpCode(ShardOp::kShardPing)) {
      return EncodeShardGeometry(geometry_);
    }
    if (!seen_.exchange(true)) query_seen_.set_value();
    if (mode_ == Mode::kDisconnect) {
      // Slam the link from inside the handler: the coordinator observes a
      // disconnect with its call in flight.
      server_->Shutdown();
      return Status::Unavailable("disconnected");
    }
    hold_.get_future().wait();  // hang until the test kills or releases us
    return Status::Unavailable("killed");
  }

  ShardGeometry geometry_;
  Mode mode_;
  std::unique_ptr<RpcServer> server_;
  Result<std::unique_ptr<SocketEndpoint>> link_ =
      Status::Internal("not connected");
  std::promise<void> query_seen_;
  std::atomic<bool> seen_{false};
  std::promise<void> hold_;
  std::atomic<bool> released_{false};
};

class ShardFaultInjection
    : public ::testing::TestWithParam<FaultyWorker::Mode> {};

INSTANTIATE_TEST_SUITE_P(
    Modes, ShardFaultInjection,
    ::testing::Values(FaultyWorker::Mode::kHangUntilKilled,
                      FaultyWorker::Mode::kDisconnect),
    [](const ::testing::TestParamInfo<FaultyWorker::Mode>& info) {
      return info.param == FaultyWorker::Mode::kHangUntilKilled
                 ? "KilledMidQuery"
                 : "DisconnectMidQuery";
    });

TEST_P(ShardFaultInjection, DeadWorkerSurfacesUnavailableNotHang) {
  RemoteTopology topology(/*n=*/6, /*s=*/2, /*seed=*/2401);
  topology.AddWorker(0);  // shard 0: a real worker
  // Shard 1: the faulty one, advertising a geometry consistent with the
  // real set so construction succeeds and the failure strikes mid-query.
  ShardGeometry geometry = topology.workers[0]->worker()->geometry();
  geometry.shard = 1;
  FaultyWorker faulty(geometry, GetParam());

  std::vector<std::unique_ptr<Endpoint>> links;
  links.push_back(topology.workers[0]->TakeLink());
  links.push_back(faulty.TakeLink());
  auto engine = SknnEngine::CreateWithShardWorkers(
      SharedAlice().public_key(), std::move(links), topology.c2->Connect(),
      BaseOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();

  PlainRecord query = GenerateUniformQuery(2, kMaxValue, 2402);
  auto pending = std::async(std::launch::async, [&] {
    return RunQuery(**engine, query, 2, QueryProtocol::kSecure);
  });
  faulty.WaitForQuery();
  if (GetParam() == FaultyWorker::Mode::kHangUntilKilled) {
    faulty.Kill();  // the disconnect mode killed itself inside the handler
  }
  // The coordinator must fail the query with a real status — a hang here
  // trips the ctest timeout, which is exactly the regression this guards.
  auto result = pending.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status();
  faulty.Release();

  // The engine itself is still alive for follow-up queries? No — its shard
  // set is degraded; but it must keep FAILING CLEANLY, not hang or crash.
  auto after = RunQuery(**engine, query, 1, QueryProtocol::kBasic);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// 5. Replicated shards (ISSUE 7): several workers per shard index are
// replicas; a replica dying or hanging mid-query fails over to a sibling
// WITHIN the query, and the answer stays bitwise the oracle's — the
// deterministic tie-break makes the result a pure function of
// (table, query, k), so which replica served a stage cannot show through.

TEST(ShardedQueryReplicas, DuplicateWorkersWithFullCoverageAreReplicas) {
  RemoteTopology topology(/*n=*/8, /*s=*/2, /*seed=*/2701);
  topology.AddWorker(0);
  topology.AddWorker(0);  // second worker for shard 0 = its replica
  topology.AddWorker(1);
  auto engine = topology.MakeEngine();
  ASSERT_TRUE(engine.ok()) << engine.status();
  const ShardCoordinator* coordinator = (*engine)->shard_coordinator();
  ASSERT_NE(coordinator, nullptr);
  EXPECT_EQ(coordinator->replicas(0), 2u);
  EXPECT_EQ(coordinator->replicas(1), 1u);

  auto reference = MakeEngine(topology.table, BaseOptions());
  PlainRecord query = GenerateUniformQuery(2, kMaxValue, 2702);
  auto local = RunQuery(*reference, query, 3, QueryProtocol::kSecure);
  ASSERT_TRUE(local.ok()) << local.status();
  auto remote = RunQuery(**engine, query, 3, QueryProtocol::kSecure);
  ASSERT_TRUE(remote.ok()) << remote.status();
  EXPECT_EQ(remote->records, local->records);

  // Health plumbing end to end: three replicas reported, all healthy, none
  // ever failed over.
  auto statuses = coordinator->ReplicaStatuses();
  ASSERT_EQ(statuses.size(), 3u);
  for (const auto& status : statuses) {
    EXPECT_TRUE(status.healthy);
    EXPECT_EQ(status.failovers, 0u);
    EXPECT_GE(status.last_ok_age_seconds, 0.0);
  }
}

struct FailoverCase {
  uint64_t seed;
  QueryProtocol protocol;
  unsigned k;
  FaultyWorker::Mode mode;
  uint32_t deadline_ms;  // 0 = none (the disconnect path needs no timer)
};

TEST(ShardedQueryReplicas, MidQueryReplicaKillIsBitwiseInvisible) {
  // The seeded kill sweep: replica 0 of shard 0 dies mid-query (disconnect
  // or hang), the stage retries on replica 1, and the answer must equal the
  // plaintext oracle bit for bit — across protocols and seeds.
  const std::vector<FailoverCase> sweep = {
      {2801, QueryProtocol::kSecure, 2, FaultyWorker::Mode::kDisconnect, 0},
      {2802, QueryProtocol::kBasic, 3, FaultyWorker::Mode::kDisconnect, 0},
      {2803, QueryProtocol::kFarthest, 2, FaultyWorker::Mode::kDisconnect, 0},
      // The hang needs a deadline: the per-attempt budget (deadline split
      // over untried replicas) is what turns a silent worker into an
      // in-query failover instead of a stall.
      {2804, QueryProtocol::kSecure, 2, FaultyWorker::Mode::kHangUntilKilled,
       5000},
  };
  for (const FailoverCase& c : sweep) {
    SCOPED_TRACE(std::string(QueryProtocolName(c.protocol)) + " seed=" +
                 std::to_string(c.seed) + " deadline=" +
                 std::to_string(c.deadline_ms));
    RemoteTopology topology(/*n=*/8, /*s=*/2, c.seed);
    topology.AddWorker(0);
    topology.AddWorker(1);
    ShardGeometry geometry = topology.workers[0]->worker()->geometry();
    FaultyWorker faulty(geometry, c.mode);

    // Connection order makes the faulty worker replica 0 — the preferred
    // first attempt — so every case exercises a real mid-query failover.
    std::vector<std::unique_ptr<Endpoint>> links;
    links.push_back(faulty.TakeLink());
    links.push_back(topology.workers[0]->TakeLink());
    links.push_back(topology.workers[1]->TakeLink());
    auto engine = SknnEngine::CreateWithShardWorkers(
        SharedAlice().public_key(), std::move(links), topology.c2->Connect(),
        BaseOptions());
    ASSERT_TRUE(engine.ok()) << engine.status();

    QueryRequest request;
    request.record = GenerateUniformQuery(2, kMaxValue, c.seed + 1);
    request.k = c.k;
    request.protocol = c.protocol;
    request.deadline_ms = c.deadline_ms;
    const PlainTable expected =
        Oracle(topology.table, request.record, c.k, c.protocol);

    auto response = (*engine)->Query(request);
    if (c.mode == FaultyWorker::Mode::kHangUntilKilled) faulty.Release();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->records, expected)
        << "failover changed the answer — determinism broken";
    ASSERT_EQ(response->shards.size(), 2u);
    EXPECT_GE(response->shards[0].failovers, 1u);
    EXPECT_EQ(response->shards[0].replica, 1u)
        << "the answer should have come from the surviving replica";
    EXPECT_EQ(response->shards[1].failovers, 0u);

    // The coordinator learned: replica 1 is now preferred, so the next
    // query succeeds with zero failovers (and the same bits).
    auto again = (*engine)->Query(request);
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(again->records, expected);
    EXPECT_EQ(again->shards[0].failovers, 0u);
    EXPECT_EQ(again->shards[0].replica, 1u);

    auto statuses = (*engine)->shard_coordinator()->ReplicaStatuses();
    ASSERT_EQ(statuses.size(), 3u);
    EXPECT_GE(statuses[0].failovers, 1u);  // shard 0, replica 0: charged
  }
}

TEST(ShardedQueryReplicas, EveryReplicaHungYieldsDeadlineExceededInBudget) {
  // Both replicas of shard 0 are alive-but-silent (the SIGSTOP shape). The
  // deadline must resolve the query to a typed kDeadlineExceeded in bounded
  // time — the silent-stall gap this PR closes.
  RemoteTopology topology(/*n=*/6, /*s=*/2, /*seed=*/2901);
  topology.AddWorker(1);
  auto geometry_worker = topology.MakeWorker(0);
  const ShardGeometry geometry = geometry_worker->geometry();
  FaultyWorker hung_a(geometry, FaultyWorker::Mode::kHangUntilKilled);
  FaultyWorker hung_b(geometry, FaultyWorker::Mode::kHangUntilKilled);

  std::vector<std::unique_ptr<Endpoint>> links;
  links.push_back(hung_a.TakeLink());
  links.push_back(hung_b.TakeLink());
  links.push_back(topology.workers[0]->TakeLink());
  auto engine = SknnEngine::CreateWithShardWorkers(
      SharedAlice().public_key(), std::move(links), topology.c2->Connect(),
      BaseOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();

  QueryRequest request;
  request.record = GenerateUniformQuery(2, kMaxValue, 2902);
  request.k = 1;
  request.protocol = QueryProtocol::kBasic;
  request.deadline_ms = 800;
  const auto started = std::chrono::steady_clock::now();
  auto response = (*engine)->Query(request);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  hung_a.Release();
  hung_b.Release();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status();
  // Bounded: the deadline (plus scheduling slack), not a transport default
  // measured in minutes.
  EXPECT_LT(elapsed.count(), 10000) << "deadline did not bound the stall";
}

TEST(ShardedQueryRemote, WorkerAnswersMalformedFramesWithTypedErrors) {
  RemoteTopology topology(/*n=*/4, /*s=*/2, /*seed=*/2501);
  auto worker = topology.MakeWorker(0);

  // Unknown opcode in the shard space.
  Message bogus;
  bogus.type = 0x02FF;
  auto resp = worker->Handle(bogus);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->type, ShardOpCode(ShardOp::kShardError));
  EXPECT_EQ(DecodeShardError(*resp).code(), StatusCode::kProtocolError);

  // A query frame with garbage geometry.
  Message garbage;
  garbage.type = ShardOpCode(ShardOp::kShardQuery);
  garbage.aux = {1, 2, 3};
  resp = worker->Handle(garbage);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->type, ShardOpCode(ShardOp::kShardError));

  // A well-formed frame whose ciphertexts are not valid under the key.
  ShardQueryFrame frame;
  frame.query_id = 42;
  frame.k = 1;
  frame.enc_query = {Ciphertext(BigInt(0)), Ciphertext(BigInt(0))};
  resp = worker->Handle(EncodeShardQuery(frame));
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->type, ShardOpCode(ShardOp::kShardError));
  EXPECT_EQ(DecodeShardError(*resp).code(), StatusCode::kCryptoError);
}

}  // namespace
}  // namespace sknn
