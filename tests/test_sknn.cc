// End-to-end tests of SkNN_b and SkNN_m through the SknnEngine, checked
// against exact plaintext kNN: the paper's worked Example 1, randomized
// tables, duplicate-distance ties, both serial and parallel execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/plaintext_knn.h"
#include "core/engine.h"
#include "data/heart_dataset.h"
#include "data/synthetic.h"

namespace sknn {
namespace {

// Sorting neighbor sets makes comparisons robust to tie ordering.
PlainTable Sorted(PlainTable t) {
  std::sort(t.begin(), t.end());
  return t;
}

// Distance multiset w.r.t. the query — the invariant a correct kNN answer
// must satisfy even when different tied records are returned.
std::multiset<int64_t> DistanceSet(const PlainTable& rows,
                                   const PlainRecord& q) {
  std::multiset<int64_t> out;
  for (const auto& r : rows) out.insert(SquaredDistance(r, q));
  return out;
}

SknnEngine::Options FastOptions() {
  SknnEngine::Options opts;
  opts.key_bits = 256;  // correctness is key-size independent; keep CI fast
  return opts;
}

TEST(SkNNbEndToEnd, HeartDiseaseExample1) {
  // Example 1: the 2-NN of Q in Table 1 are t4 and t5.
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = HeartAttrBits();
  auto engine = SknnEngine::Create(HeartFeatures(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto result = (*engine)->QueryBasic(HeartExampleQuery(), 2);
  ASSERT_TRUE(result.ok()) << result.status();
  const PlainTable& features = HeartFeatures();
  PlainTable expected = {features[4], features[3]};  // t5 (dist 119), t4 (139)
  EXPECT_EQ(result->neighbors, expected);
}

TEST(SkNNmEndToEnd, HeartDiseaseExample1) {
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = HeartAttrBits();
  auto engine = SknnEngine::Create(HeartFeatures(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto result = (*engine)->QueryMaxSecure(HeartExampleQuery(), 2);
  ASSERT_TRUE(result.ok()) << result.status();
  const PlainTable& features = HeartFeatures();
  PlainTable expected = {features[4], features[3]};
  EXPECT_EQ(result->neighbors, expected);
}

TEST(SkNNbEndToEnd, MatchesPlaintextKnnOnRandomTable) {
  const std::size_t n = 40, m = 4;
  const int64_t max_value = 30;
  PlainTable table = GenerateUniformTable(n, m, max_value, 101);
  PlainRecord query = GenerateUniformQuery(m, max_value, 102);

  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = BitsForMaxValue(max_value);
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (unsigned k : {1u, 3u, 7u}) {
    auto result = (*engine)->QueryBasic(query, k);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->neighbors.size(), k);
    EXPECT_EQ(DistanceSet(result->neighbors, query),
              DistanceSet(PlainKnn(table, query, k), query))
        << "k=" << k;
  }
}

TEST(SkNNmEndToEnd, MatchesPlaintextKnnOnRandomTable) {
  const std::size_t n = 12, m = 3;
  const int64_t max_value = 6;
  PlainTable table = GenerateUniformTable(n, m, max_value, 201);
  PlainRecord query = GenerateUniformQuery(m, max_value, 202);

  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = BitsForMaxValue(max_value);
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (unsigned k : {1u, 2u, 4u}) {
    auto result = (*engine)->QueryMaxSecure(query, k);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->neighbors.size(), k);
    EXPECT_EQ(DistanceSet(result->neighbors, query),
              DistanceSet(PlainKnn(table, query, k), query))
        << "k=" << k;
  }
}

TEST(SkNNmEndToEnd, NeighborsAreInIncreasingDistanceOrder) {
  const std::size_t n = 10, m = 2;
  PlainTable table = GenerateUniformTable(n, m, 7, 301);
  PlainRecord query = GenerateUniformQuery(m, 7, 302);
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 3;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->QueryMaxSecure(query, 4);
  ASSERT_TRUE(result.ok());
  for (std::size_t j = 1; j < result->neighbors.size(); ++j) {
    EXPECT_LE(SquaredDistance(result->neighbors[j - 1], query),
              SquaredDistance(result->neighbors[j], query));
  }
}

TEST(SkNNmEndToEnd, HandlesDuplicateRecords) {
  // Several records identical to the query: ties at distance zero must be
  // resolved without double-returning the same tournament winner.
  PlainTable table = {{1, 1}, {5, 5}, {1, 1}, {6, 2}, {1, 1}, {7, 7}};
  PlainRecord query = {1, 1};
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 3;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->QueryMaxSecure(query, 3);
  ASSERT_TRUE(result.ok()) << result.status();
  // All three zero-distance copies must be returned.
  PlainTable expected = {{1, 1}, {1, 1}, {1, 1}};
  EXPECT_EQ(Sorted(result->neighbors), expected);
}

TEST(SkNNmEndToEnd, KEqualsN) {
  PlainTable table = {{0, 0}, {3, 1}, {1, 2}};
  PlainRecord query = {1, 1};
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->QueryMaxSecure(query, 3);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(Sorted(result->neighbors), Sorted(table));
}

TEST(SkNNEndToEnd, SingleRecordDatabase) {
  PlainTable table = {{2, 3}};
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  for (bool secure : {false, true}) {
    auto result = secure ? (*engine)->QueryMaxSecure({0, 0}, 1)
                         : (*engine)->QueryBasic({0, 0}, 1);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->neighbors, table);
  }
}

TEST(SkNNEndToEnd, InvalidArgumentsAreRejected) {
  PlainTable table = GenerateUniformTable(5, 3, 3, 401);
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE((*engine)->QueryBasic({1, 1, 1}, 0).ok());    // k = 0
  EXPECT_FALSE((*engine)->QueryBasic({1, 1, 1}, 6).ok());    // k > n
  EXPECT_FALSE((*engine)->QueryBasic({1, 1}, 2).ok());       // bad dimension
  EXPECT_FALSE((*engine)->QueryMaxSecure({1, 1, 1}, 0).ok());
}

TEST(SkNNEndToEnd, EngineRejectsBadSetup) {
  SknnEngine::Options opts = FastOptions();
  EXPECT_FALSE(SknnEngine::Create({}, opts).ok());  // empty table
  PlainTable table = {{100}};
  opts.attr_bits = 3;  // 100 >= 2^3
  EXPECT_FALSE(SknnEngine::Create(table, opts).ok());
}

TEST(SkNNEndToEnd, ParallelEnginesMatchSerial) {
  const std::size_t n = 16, m = 3;
  PlainTable table = GenerateUniformTable(n, m, 7, 501);
  PlainRecord query = GenerateUniformQuery(m, 7, 502);

  SknnEngine::Options serial = FastOptions();
  serial.attr_bits = 3;
  SknnEngine::Options parallel = serial;
  parallel.c1_threads = 3;
  parallel.c2_threads = 2;

  auto engine_s = SknnEngine::Create(table, serial);
  auto engine_p = SknnEngine::Create(table, parallel);
  ASSERT_TRUE(engine_s.ok());
  ASSERT_TRUE(engine_p.ok());

  for (unsigned k : {1u, 3u}) {
    auto rs = (*engine_s)->QueryMaxSecure(query, k);
    auto rp = (*engine_p)->QueryMaxSecure(query, k);
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rp.ok());
    EXPECT_EQ(DistanceSet(rs->neighbors, query),
              DistanceSet(rp->neighbors, query));
    auto rbs = (*engine_s)->QueryBasic(query, k);
    auto rbp = (*engine_p)->QueryBasic(query, k);
    ASSERT_TRUE(rbs.ok());
    ASSERT_TRUE(rbp.ok());
    EXPECT_EQ(DistanceSet(rbs->neighbors, query),
              DistanceSet(rbp->neighbors, query));
  }
}

TEST(SkNNEndToEnd, MetricsArePopulated) {
  PlainTable table = GenerateUniformTable(8, 2, 3, 601);
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->QueryMaxSecure({1, 2}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->cloud_seconds, 0.0);
  EXPECT_GT(result->traffic.total_bytes(), 0u);
  EXPECT_GT(result->ops.encryptions, 0u);
  EXPECT_GT(result->ops.decryptions, 0u);
  // SkNN_m breakdown must roughly cover the cloud time.
  EXPECT_GT(result->breakdown.sminn_seconds, 0.0);
  EXPECT_GT(result->breakdown.ssed_seconds, 0.0);
  EXPECT_GT(result->breakdown.sbd_seconds, 0.0);
  EXPECT_LE(result->breakdown.total(), result->cloud_seconds * 1.5 + 0.1);

  auto basic = (*engine)->QueryBasic({1, 2}, 2);
  ASSERT_TRUE(basic.ok());
  // The fully secure protocol must cost strictly more than the basic one —
  // the security/efficiency trade-off of Figure 2(f).
  EXPECT_GT(result->ops.encryptions, basic->ops.encryptions);
  EXPECT_GT(result->traffic.total_bytes(), basic->traffic.total_bytes());
}

}  // namespace
}  // namespace sknn
