// End-to-end tests of SkNN_b and SkNN_m through the SknnEngine's
// request/response API, checked against exact plaintext kNN: the paper's
// worked Example 1, randomized tables, duplicate-distance ties, both serial
// and parallel execution, request validation, and the deprecated wrappers.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/plaintext_knn.h"
#include "core/engine.h"
#include "data/heart_dataset.h"
#include "data/synthetic.h"
#include "tests/query_test_util.h"

namespace sknn {
namespace {

// Sorting neighbor sets makes comparisons robust to tie ordering.
PlainTable Sorted(PlainTable t) {
  std::sort(t.begin(), t.end());
  return t;
}

// Distance multiset w.r.t. the query — the invariant a correct kNN answer
// must satisfy even when different tied records are returned.
std::multiset<int64_t> DistanceSet(const PlainTable& rows,
                                   const PlainRecord& q) {
  std::multiset<int64_t> out;
  for (const auto& r : rows) out.insert(SquaredDistance(r, q));
  return out;
}

SknnEngine::Options FastOptions() {
  SknnEngine::Options opts;
  opts.key_bits = 256;  // correctness is key-size independent; keep CI fast
  return opts;
}

TEST(SkNNbEndToEnd, HeartDiseaseExample1) {
  // Example 1: the 2-NN of Q in Table 1 are t4 and t5.
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = HeartAttrBits();
  auto engine = SknnEngine::Create(HeartFeatures(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto result = RunQuery(**engine, HeartExampleQuery(), 2, QueryProtocol::kBasic);
  ASSERT_TRUE(result.ok()) << result.status();
  const PlainTable& features = HeartFeatures();
  PlainTable expected = {features[4], features[3]};  // t5 (dist 119), t4 (139)
  EXPECT_EQ(result->records, expected);
}

TEST(SkNNmEndToEnd, HeartDiseaseExample1) {
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = HeartAttrBits();
  auto engine = SknnEngine::Create(HeartFeatures(), opts);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto result = RunQuery(**engine, HeartExampleQuery(), 2, QueryProtocol::kSecure);
  ASSERT_TRUE(result.ok()) << result.status();
  const PlainTable& features = HeartFeatures();
  PlainTable expected = {features[4], features[3]};
  EXPECT_EQ(result->records, expected);
}

TEST(SkNNbEndToEnd, MatchesPlaintextKnnOnRandomTable) {
  const std::size_t n = 40, m = 4;
  const int64_t max_value = 30;
  PlainTable table = GenerateUniformTable(n, m, max_value, 101);
  PlainRecord query = GenerateUniformQuery(m, max_value, 102);

  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = BitsForMaxValue(max_value);
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (unsigned k : {1u, 3u, 7u}) {
    auto result = RunQuery(**engine, query, k, QueryProtocol::kBasic);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->records.size(), k);
    EXPECT_EQ(DistanceSet(result->records, query),
              DistanceSet(PlainKnn(table, query, k), query))
        << "k=" << k;
  }
}

TEST(SkNNmEndToEnd, MatchesPlaintextKnnOnRandomTable) {
  const std::size_t n = 12, m = 3;
  const int64_t max_value = 6;
  PlainTable table = GenerateUniformTable(n, m, max_value, 201);
  PlainRecord query = GenerateUniformQuery(m, max_value, 202);

  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = BitsForMaxValue(max_value);
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok()) << engine.status();

  for (unsigned k : {1u, 2u, 4u}) {
    auto result = RunQuery(**engine, query, k, QueryProtocol::kSecure);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->records.size(), k);
    EXPECT_EQ(DistanceSet(result->records, query),
              DistanceSet(PlainKnn(table, query, k), query))
        << "k=" << k;
  }
}

TEST(SkNNmEndToEnd, NeighborsAreInIncreasingDistanceOrder) {
  const std::size_t n = 10, m = 2;
  PlainTable table = GenerateUniformTable(n, m, 7, 301);
  PlainRecord query = GenerateUniformQuery(m, 7, 302);
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 3;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = RunQuery(**engine, query, 4, QueryProtocol::kSecure);
  ASSERT_TRUE(result.ok());
  for (std::size_t j = 1; j < result->records.size(); ++j) {
    EXPECT_LE(SquaredDistance(result->records[j - 1], query),
              SquaredDistance(result->records[j], query));
  }
}

TEST(SkNNmEndToEnd, HandlesDuplicateRecords) {
  // Several records identical to the query: ties at distance zero must be
  // resolved without double-returning the same tournament winner.
  PlainTable table = {{1, 1}, {5, 5}, {1, 1}, {6, 2}, {1, 1}, {7, 7}};
  PlainRecord query = {1, 1};
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 3;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = RunQuery(**engine, query, 3, QueryProtocol::kSecure);
  ASSERT_TRUE(result.ok()) << result.status();
  // All three zero-distance copies must be returned.
  PlainTable expected = {{1, 1}, {1, 1}, {1, 1}};
  EXPECT_EQ(Sorted(result->records), expected);
}

TEST(SkNNmEndToEnd, KEqualsN) {
  PlainTable table = {{0, 0}, {3, 1}, {1, 2}};
  PlainRecord query = {1, 1};
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = RunQuery(**engine, query, 3, QueryProtocol::kSecure);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(Sorted(result->records), Sorted(table));
}

TEST(SkNNEndToEnd, SingleRecordDatabase) {
  PlainTable table = {{2, 3}};
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure}) {
    auto result = RunQuery(**engine, {0, 0}, 1, protocol);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->records, table);
  }
}

TEST(SkNNEndToEnd, InvalidRequestsAreRejected) {
  PlainTable table = GenerateUniformTable(5, 3, 3, 401);
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  // k = 0.
  auto r = RunQuery(**engine, {1, 1, 1}, 0, QueryProtocol::kBasic);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // k > n (= k_max): rejected at admission with kInvalidArgument.
  r = RunQuery(**engine, {1, 1, 1}, 6, QueryProtocol::kBasic);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Dimension mismatch.
  r = RunQuery(**engine, {1, 1}, 2, QueryProtocol::kBasic);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Attribute outside [0, 2^attr_bits) — would overflow the l-bit distance
  // domain and produce undefined protocol behavior; must be caught up front.
  r = RunQuery(**engine, {1, 1, 9}, 2, QueryProtocol::kSecure);
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  r = RunQuery(**engine, {1, -1, 1}, 2, QueryProtocol::kSecure);
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  // Same validation through the async path.
  auto future = (*engine)->Submit(
      QueryRequest{{1, 1, 1}, 0, QueryProtocol::kSecure});
  EXPECT_EQ(future.get().status().code(), StatusCode::kInvalidArgument);
}

TEST(SkNNEndToEnd, EngineRejectsBadSetup) {
  SknnEngine::Options opts = FastOptions();
  EXPECT_FALSE(SknnEngine::Create({}, opts).ok());  // empty table
  PlainTable table = {{100}};
  opts.attr_bits = 3;  // 100 >= 2^3
  EXPECT_FALSE(SknnEngine::Create(table, opts).ok());
}

TEST(SkNNEndToEnd, ParallelEnginesMatchSerial) {
  const std::size_t n = 16, m = 3;
  PlainTable table = GenerateUniformTable(n, m, 7, 501);
  PlainRecord query = GenerateUniformQuery(m, 7, 502);

  SknnEngine::Options serial = FastOptions();
  serial.attr_bits = 3;
  SknnEngine::Options parallel = serial;
  parallel.c1_threads = 3;
  parallel.c2_threads = 2;

  auto engine_s = SknnEngine::Create(table, serial);
  auto engine_p = SknnEngine::Create(table, parallel);
  ASSERT_TRUE(engine_s.ok());
  ASSERT_TRUE(engine_p.ok());

  for (unsigned k : {1u, 3u}) {
    auto rs = RunQuery(**engine_s, query, k, QueryProtocol::kSecure);
    auto rp = RunQuery(**engine_p, query, k, QueryProtocol::kSecure);
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rp.ok());
    EXPECT_EQ(DistanceSet(rs->records, query),
              DistanceSet(rp->records, query));
    auto rbs = RunQuery(**engine_s, query, k, QueryProtocol::kBasic);
    auto rbp = RunQuery(**engine_p, query, k, QueryProtocol::kBasic);
    ASSERT_TRUE(rbs.ok());
    ASSERT_TRUE(rbp.ok());
    EXPECT_EQ(DistanceSet(rbs->records, query),
              DistanceSet(rbp->records, query));
  }
}

TEST(SkNNEndToEnd, MetricsArePopulated) {
  PlainTable table = GenerateUniformTable(8, 2, 3, 601);
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  auto result = RunQuery(**engine, {1, 2}, 2, QueryProtocol::kSecure);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->cloud_seconds, 0.0);
  EXPECT_GT(result->traffic.total_bytes(), 0u);
  EXPECT_GT(result->ops.encryptions, 0u);
  EXPECT_GT(result->ops.decryptions, 0u);
  // SkNN_m breakdown must roughly cover the cloud time.
  EXPECT_GT(result->breakdown.sminn_seconds, 0.0);
  EXPECT_GT(result->breakdown.ssed_seconds, 0.0);
  EXPECT_GT(result->breakdown.sbd_seconds, 0.0);
  EXPECT_LE(result->breakdown.total(), result->cloud_seconds * 1.5 + 0.1);

  auto basic = RunQuery(**engine, {1, 2}, 2, QueryProtocol::kBasic);
  ASSERT_TRUE(basic.ok());
  // The fully secure protocol must cost strictly more than the basic one —
  // the security/efficiency trade-off of Figure 2(f).
  EXPECT_GT(result->ops.encryptions, basic->ops.encryptions);
  EXPECT_GT(result->traffic.total_bytes(), basic->traffic.total_bytes());
}

TEST(SkNNEndToEnd, InstrumentationIsOptIn) {
  PlainTable table = GenerateUniformTable(6, 2, 3, 701);
  SknnEngine::Options opts = FastOptions();
  opts.attr_bits = 2;
  auto engine = SknnEngine::Create(table, opts);
  ASSERT_TRUE(engine.ok());
  QueryRequest request;
  request.record = {1, 2};
  request.k = 1;
  request.want_breakdown = false;
  request.want_op_counts = false;
  auto result = (*engine)->Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.size(), 1u);
  EXPECT_EQ(result->ops.encryptions, 0u);
  EXPECT_EQ(result->breakdown.total(), 0.0);
  // Traffic metering is free and always exact.
  EXPECT_GT(result->traffic.total_bytes(), 0u);
}

}  // namespace
}  // namespace sknn
