// Unit and property tests for the GMP BigInt wrapper and the CSPRNG.
#include "bigint/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bigint/modexp.h"
#include "bigint/random.h"
#include "common/thread_pool.h"

namespace sknn {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt v;
  EXPECT_TRUE(v.IsZero());
  EXPECT_EQ(v.ToString(), "0");
  EXPECT_EQ(v.BitLength(), 0u);
}

TEST(BigIntTest, ConstructFromInt64) {
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-7).ToString(), "-7");
  EXPECT_EQ(BigInt(int64_t{1} << 62).BitLength(), 63u);
}

TEST(BigIntTest, FromStringRoundTrip) {
  const std::string decimal =
      "123456789012345678901234567890123456789012345678901234567890";
  auto v = BigInt::FromString(decimal);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToString(), decimal);
}

TEST(BigIntTest, FromStringHex) {
  auto v = BigInt::FromString("ff", 16);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, BigInt(255));
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("12x34").ok());
  EXPECT_FALSE(BigInt::FromString("").ok());
}

TEST(BigIntTest, ArithmeticBasics) {
  BigInt a(100), b(7);
  EXPECT_EQ(a + b, BigInt(107));
  EXPECT_EQ(a - b, BigInt(93));
  EXPECT_EQ(a * b, BigInt(700));
  EXPECT_EQ(a / b, BigInt(14));
  EXPECT_EQ(-a, BigInt(-100));
}

TEST(BigIntTest, CompoundAssignment) {
  BigInt a(10);
  a += BigInt(5);
  EXPECT_EQ(a, BigInt(15));
  a -= BigInt(20);
  EXPECT_EQ(a, BigInt(-5));
  a *= BigInt(-3);
  EXPECT_EQ(a, BigInt(15));
}

TEST(BigIntTest, ModIsAlwaysNonNegative) {
  EXPECT_EQ(BigInt(-1).Mod(BigInt(5)), BigInt(4));
  EXPECT_EQ(BigInt(-10).Mod(BigInt(3)), BigInt(2));
  EXPECT_EQ(BigInt(7).Mod(BigInt(3)), BigInt(1));
}

TEST(BigIntTest, ModularHelpers) {
  BigInt m(97);
  EXPECT_EQ(BigInt(90).AddMod(BigInt(10), m), BigInt(3));
  EXPECT_EQ(BigInt(5).SubMod(BigInt(10), m), BigInt(92));
  EXPECT_EQ(BigInt(10).MulMod(BigInt(10), m), BigInt(3));
}

TEST(BigIntTest, PowMod) {
  // 2^10 mod 1000 = 24.
  EXPECT_EQ(BigInt(2).PowMod(BigInt(10), BigInt(1000)), BigInt(24));
  // Fermat: a^(p-1) = 1 mod p.
  BigInt p(104729);  // prime
  EXPECT_EQ(BigInt(12345).PowMod(p - BigInt(1), p), BigInt(1));
}

TEST(BigIntTest, InvMod) {
  BigInt m(97);
  auto inv = BigInt(35).InvMod(m);
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(BigInt(35).MulMod(*inv, m), BigInt(1));
}

TEST(BigIntTest, InvModFailsWhenNotCoprime) {
  EXPECT_FALSE(BigInt(6).InvMod(BigInt(9)).ok());
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt(12).Gcd(BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt(4).Lcm(BigInt(6)), BigInt(12));
}

TEST(BigIntTest, BitAccess) {
  BigInt v(0b101101);
  EXPECT_EQ(v.BitLength(), 6u);
  EXPECT_EQ(v.Bit(0), 1);
  EXPECT_EQ(v.Bit(1), 0);
  EXPECT_EQ(v.Bit(2), 1);
  EXPECT_EQ(v.Bit(3), 1);
  EXPECT_EQ(v.Bit(4), 0);
  EXPECT_EQ(v.Bit(5), 1);
  EXPECT_EQ(v.Bit(6), 0);
}

TEST(BigIntTest, Shifts) {
  EXPECT_EQ(BigInt(5).ShiftLeft(3), BigInt(40));
  EXPECT_EQ(BigInt(40).ShiftRight(3), BigInt(5));
  EXPECT_EQ(BigInt(41).ShiftRight(3), BigInt(5));  // floor
}

TEST(BigIntTest, PowerOfTwo) {
  EXPECT_EQ(BigInt::PowerOfTwo(0), BigInt(1));
  EXPECT_EQ(BigInt::PowerOfTwo(10), BigInt(1024));
  EXPECT_EQ(BigInt::PowerOfTwo(100).BitLength(), 101u);
}

TEST(BigIntTest, ParityChecks) {
  EXPECT_TRUE(BigInt(4).IsEven());
  EXPECT_TRUE(BigInt(7).IsOdd());
  EXPECT_TRUE(BigInt(0).IsEven());
  EXPECT_TRUE(BigInt(-3).IsOdd());
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_GT(BigInt(2), BigInt(1));
  EXPECT_LE(BigInt(2), BigInt(2));
  EXPECT_GE(BigInt(2), BigInt(2));
  EXPECT_NE(BigInt(1), BigInt(-1));
  EXPECT_LT(BigInt(-5), BigInt(-4));
}

TEST(BigIntTest, ToInt64Bounds) {
  EXPECT_EQ(BigInt(123).ToInt64().value(), 123);
  EXPECT_EQ(BigInt(-123).ToInt64().value(), -123);
  BigInt too_big = BigInt::PowerOfTwo(70);
  EXPECT_FALSE(too_big.ToInt64().ok());
}

TEST(BigIntTest, ToUint64RejectsNegative) {
  EXPECT_FALSE(BigInt(-1).ToUint64().ok());
  EXPECT_EQ(BigInt(uint64_t{42}).ToUint64().value(), 42u);
}

TEST(BigIntTest, BytesRoundTrip) {
  auto v = BigInt::FromString("987654321987654321987654321");
  ASSERT_TRUE(v.ok());
  std::vector<uint8_t> bytes = v->ToBytes();
  EXPECT_EQ(BigInt::FromBytes(bytes), *v);
}

TEST(BigIntTest, BytesOfZeroIsEmpty) {
  EXPECT_TRUE(BigInt(0).ToBytes().empty());
  EXPECT_TRUE(BigInt::FromBytes({}).IsZero());
}

TEST(BigIntTest, IsProbablePrime) {
  EXPECT_TRUE(BigInt(2).IsProbablePrime());
  EXPECT_TRUE(BigInt(104729).IsProbablePrime());
  EXPECT_FALSE(BigInt(104730).IsProbablePrime());
  EXPECT_FALSE(BigInt(1).IsProbablePrime());
}

TEST(BigIntTest, NextPrime) {
  EXPECT_EQ(BigInt(10).NextPrime(), BigInt(11));
  EXPECT_EQ(BigInt(11).NextPrime(), BigInt(13));
}

TEST(BigIntTest, CopyAndMoveSemantics) {
  BigInt a(42);
  BigInt b = a;        // copy
  BigInt c = std::move(a);
  EXPECT_EQ(b, BigInt(42));
  EXPECT_EQ(c, BigInt(42));
  b = c;               // copy assign
  EXPECT_EQ(b, BigInt(42));
  BigInt d;
  d = std::move(c);    // move assign
  EXPECT_EQ(d, BigInt(42));
}

// -- Property-style sweeps ---------------------------------------------------

class BigIntModularProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntModularProperty, SubModAddModInverse) {
  Random rng(GetParam());
  BigInt m = rng.Prime(64);
  for (int i = 0; i < 50; ++i) {
    BigInt a = rng.Below(m);
    BigInt b = rng.Below(m);
    EXPECT_EQ(a.AddMod(b, m).SubMod(b, m), a);
    EXPECT_EQ(a.SubMod(b, m).AddMod(b, m), a);
  }
}

TEST_P(BigIntModularProperty, PowModMatchesRepeatedMul) {
  Random rng(GetParam());
  BigInt m = rng.Prime(48);
  BigInt base = rng.Below(m);
  BigInt acc(1);
  for (uint64_t e = 0; e < 16; ++e) {
    EXPECT_EQ(base.PowMod(BigInt(static_cast<int64_t>(e)), m), acc)
        << "exponent " << e;
    acc = acc.MulMod(base, m);
  }
}

TEST_P(BigIntModularProperty, InverseIsTwoSided) {
  Random rng(GetParam());
  BigInt m = rng.Prime(64);
  for (int i = 0; i < 25; ++i) {
    BigInt a = rng.NonZeroBelow(m);
    auto inv = a.InvMod(m);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(a.MulMod(*inv, m), BigInt(1));
    EXPECT_EQ(inv->MulMod(a, m), BigInt(1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntModularProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234567u));

// -- Random ------------------------------------------------------------------

TEST(RandomTest, BelowIsInRange) {
  Random rng(99);
  BigInt bound(1000);
  for (int i = 0; i < 200; ++i) {
    BigInt v = rng.Below(bound);
    EXPECT_FALSE(v.IsNegative());
    EXPECT_LT(v, bound);
  }
}

TEST(RandomTest, NonZeroBelowNeverZero) {
  Random rng(7);
  BigInt bound(2);  // only possible value: 1
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.NonZeroBelow(bound), BigInt(1));
  }
}

TEST(RandomTest, BitsHasExactLength) {
  Random rng(5);
  for (unsigned bits : {1u, 2u, 8u, 63u, 200u}) {
    EXPECT_EQ(rng.Bits(bits).BitLength(), bits) << bits << " bits";
  }
}

TEST(RandomTest, PrimeHasExactLengthAndIsPrime) {
  Random rng(11);
  for (unsigned bits : {16u, 24u, 48u}) {
    BigInt p = rng.Prime(bits);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(p.IsProbablePrime());
  }
}

TEST(RandomTest, UnitModuloIsCoprime) {
  Random rng(13);
  BigInt n = BigInt(61) * BigInt(67);
  for (int i = 0; i < 50; ++i) {
    BigInt u = rng.UnitModulo(n);
    EXPECT_EQ(u.Gcd(n), BigInt(1));
  }
}

TEST(RandomTest, DeterministicSeedsReproduce) {
  Random a(42), b(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Below(BigInt::PowerOfTwo(64)), b.Below(BigInt::PowerOfTwo(64)));
  }
}

TEST(RandomTest, UniformUint64Bounds) {
  Random rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.UniformUint64(10), 10u);
  }
  // bound 1 always yields 0.
  EXPECT_EQ(rng.UniformUint64(1), 0u);
}

// -- FixedBaseWindow / PowModMany (bigint/modexp.h): both must be bitwise
// -- compatible with BigInt::PowMod, i.e. with mpz_powm.

TEST(FixedBaseWindowTest, MatchesGenericPowModAcrossWindowWidths) {
  Random rng(91);
  BigInt m = rng.Prime(96) * rng.Prime(96);
  BigInt base = rng.Below(m);
  for (unsigned w = 1; w <= 6; ++w) {
    FixedBaseWindow window(base, m, 192, w);
    EXPECT_EQ(window.window_bits(), w);
    // digits * (2^w - 1) precomputed residues, nothing more.
    EXPECT_EQ(window.table_size(),
              ((192 + w - 1) / w) * ((std::size_t{1} << w) - 1));
    for (int i = 0; i < 20; ++i) {
      BigInt e = rng.Bits(1 + static_cast<unsigned>(rng.UniformUint64(192)));
      EXPECT_EQ(window.PowMod(e), base.PowMod(e, m)) << "w=" << w;
    }
  }
}

TEST(FixedBaseWindowTest, EdgeCases) {
  BigInt m(1000003);
  FixedBaseWindow window(BigInt(2), m, 64);
  EXPECT_EQ(window.PowMod(BigInt(0)), BigInt(1));  // e = 0 -> 1 mod m
  EXPECT_EQ(window.PowMod(BigInt(1)), BigInt(2));
  // Degenerate bases: 0^e = 0 (e > 0), 1^e = 1, base >= m reduced up front.
  EXPECT_EQ(FixedBaseWindow(BigInt(0), m, 64).PowMod(BigInt(5)), BigInt(0));
  EXPECT_EQ(FixedBaseWindow(BigInt(0), m, 64).PowMod(BigInt(0)), BigInt(1));
  EXPECT_EQ(FixedBaseWindow(BigInt(1), m, 64).PowMod(BigInt(5)), BigInt(1));
  EXPECT_EQ(FixedBaseWindow(m + BigInt(3), m, 64).PowMod(BigInt(4)),
            BigInt(3).PowMod(BigInt(4), m));
  // Modulus 1: every residue is 0, including the empty product.
  EXPECT_EQ(FixedBaseWindow(BigInt(7), BigInt(1), 64).PowMod(BigInt(9)),
            BigInt(0));
  EXPECT_EQ(FixedBaseWindow(BigInt(7), BigInt(1), 64).PowMod(BigInt(0)),
            BigInt(0));
}

TEST(FixedBaseWindowTest, OversizedAndNegativeExponentsFallBack) {
  Random rng(93);
  BigInt m = rng.Prime(64) * rng.Prime(64);
  BigInt base = rng.UnitModulo(m);  // invertible, so e < 0 is defined
  FixedBaseWindow window(base, m, 32);
  BigInt wide = rng.Bits(200);  // wider than the 32-bit table
  EXPECT_EQ(window.PowMod(wide), base.PowMod(wide, m));
  BigInt neg = BigInt(0) - BigInt(3);
  EXPECT_EQ(window.PowMod(neg), base.PowMod(neg, m));
}

TEST(FixedBaseWindowTest, RecommendedWindowWidensWithExponent) {
  EXPECT_EQ(FixedBaseWindow::RecommendedWindowBits(16), 2u);
  EXPECT_EQ(FixedBaseWindow::RecommendedWindowBits(64), 3u);
  EXPECT_EQ(FixedBaseWindow::RecommendedWindowBits(128), 4u);
  EXPECT_EQ(FixedBaseWindow::RecommendedWindowBits(256), 6u);
  EXPECT_EQ(FixedBaseWindow::RecommendedWindowBits(1024), 6u);
}

TEST(PowModManyTest, AllOverloadsMatchScalarSerialAndPooled) {
  Random rng(94);
  BigInt m = rng.Prime(80) * rng.Prime(80);
  std::vector<BigInt> bases, exps;
  for (int i = 0; i < 33; ++i) {
    bases.push_back(rng.Below(m));
    exps.push_back(rng.Bits(1 + static_cast<unsigned>(rng.UniformUint64(160))));
  }
  BigInt shared = rng.Bits(160);
  FixedBaseWindow window(bases[0], m, 160);
  ThreadPool pool(3);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    std::vector<BigInt> per_element = PowModMany(bases, exps, m, p);
    std::vector<BigInt> shared_exp = PowModMany(bases, shared, m, p);
    std::vector<BigInt> fixed_base = PowModMany(window, exps, p);
    ASSERT_EQ(per_element.size(), bases.size());
    ASSERT_EQ(shared_exp.size(), bases.size());
    ASSERT_EQ(fixed_base.size(), exps.size());
    for (std::size_t i = 0; i < bases.size(); ++i) {
      EXPECT_EQ(per_element[i], bases[i].PowMod(exps[i], m)) << i;
      EXPECT_EQ(shared_exp[i], bases[i].PowMod(shared, m)) << i;
      EXPECT_EQ(fixed_base[i], bases[0].PowMod(exps[i], m)) << i;
    }
  }
  const std::vector<BigInt> none;
  EXPECT_TRUE(PowModMany(none, none, m).empty());
  EXPECT_TRUE(PowModMany(none, shared, m).empty());
  EXPECT_TRUE(PowModMany(window, none).empty());
}

}  // namespace
}  // namespace sknn
