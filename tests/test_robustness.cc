// Robustness tests: C2Service under malformed or adversarial requests, and
// the chunked-call plumbing's edge cases. A semi-honest C2 still receives
// requests over a real link — bad geometry must produce a clean protocol
// error, never a crash or a silent wrong answer.
#include <gtest/gtest.h>

#include "proto/sm.h"
#include "tests/proto_test_util.h"

namespace sknn {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  // Sends a raw request and expects a clean error response.
  void ExpectError(Op op, std::vector<BigInt> ints,
                   std::vector<uint8_t> aux = {}) {
    auto resp = harness_.ctx().Call(op, std::move(ints), std::move(aux));
    EXPECT_FALSE(resp.ok()) << "opcode " << OpCode(op)
                            << " accepted malformed input";
    EXPECT_EQ(resp.status().code(), StatusCode::kProtocolError);
  }

  TwoPartyHarness harness_;
  Random rng_{12321};
};

TEST_F(RobustnessTest, UnknownOpcodeIsRejected) {
  ExpectError(static_cast<Op>(0x7777), {});
}

TEST_F(RobustnessTest, SmBatchOddOperandCount) {
  ExpectError(Op::kSmBatch, {harness_.pk().Encrypt(BigInt(1), rng_).value()});
}

TEST_F(RobustnessTest, SminPhase2BadAux) {
  const auto& pk = harness_.pk();
  // Missing aux entirely.
  ExpectError(Op::kSminPhase2Batch, {pk.Encrypt(BigInt(1), rng_).value()});
  // Aux present but geometry inconsistent: l=4, count=1 needs 8 ints.
  std::vector<uint8_t> aux = {4, 0, 0, 0, 1, 0, 0, 0};
  ExpectError(Op::kSminPhase2Batch, {pk.Encrypt(BigInt(1), rng_).value()},
              aux);
  // l = 0.
  std::vector<uint8_t> zero_l = {0, 0, 0, 0, 1, 0, 0, 0};
  ExpectError(Op::kSminPhase2Batch, {}, zero_l);
}

TEST_F(RobustnessTest, MinPointerWithNoZeroEntry) {
  // A beta vector with no zero is a protocol violation (the minimum always
  // matches itself); C2 must flag it rather than fabricate a pointer.
  const auto& pk = harness_.pk();
  std::vector<BigInt> beta;
  for (int i = 1; i <= 4; ++i) {
    beta.push_back(pk.Encrypt(BigInt(i), rng_).value());
  }
  ExpectError(Op::kMinPointerBatch, std::move(beta));
}

TEST_F(RobustnessTest, TopKBadK) {
  const auto& pk = harness_.pk();
  std::vector<BigInt> dists = {pk.Encrypt(BigInt(5), rng_).value(),
                               pk.Encrypt(BigInt(9), rng_).value()};
  std::vector<uint8_t> k0 = {0, 0, 0, 0};
  ExpectError(Op::kTopKIndices, dists, k0);
  std::vector<uint8_t> k3 = {3, 0, 0, 0};  // k > n
  ExpectError(Op::kTopKIndices, dists, k3);
  ExpectError(Op::kTopKIndices, dists, {});  // no aux at all
}

TEST_F(RobustnessTest, TopKHappyPathStillWorks) {
  const auto& pk = harness_.pk();
  std::vector<BigInt> dists = {pk.Encrypt(BigInt(9), rng_).value(),
                               pk.Encrypt(BigInt(5), rng_).value(),
                               pk.Encrypt(BigInt(7), rng_).value()};
  std::vector<uint8_t> k2 = {2, 0, 0, 0};
  auto resp = harness_.ctx().Call(Op::kTopKIndices, dists, k2);
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->aux.size(), 8u);
  EXPECT_EQ(resp->aux[0], 1);  // index of distance 5
  EXPECT_EQ(resp->aux[4], 2);  // index of distance 7
}

TEST_F(RobustnessTest, PingRoundTrip) {
  auto resp = harness_.ctx().Call(Op::kPing, {});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->type, OpCode(Op::kPing));
}

TEST_F(RobustnessTest, CallChunkedRejectsBadArity) {
  std::vector<BigInt> three = {BigInt(1), BigInt(2), BigInt(3)};
  auto r = harness_.ctx().CallChunked(Op::kSmBatch, three, 2, 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  auto zero = harness_.ctx().CallChunked(Op::kSmBatch, three, 0, 1);
  EXPECT_FALSE(zero.ok());
}

TEST_F(RobustnessTest, CallChunkedEmptyInputShortCircuits) {
  auto r = harness_.ctx().CallChunked(Op::kSmBatch, {}, 2, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST_F(RobustnessTest, GarbageCiphertextsFailCleanly) {
  // Values that are not valid ciphertexts (not units mod N^2) still decrypt
  // to *something* under Paillier math or error out; either way the call
  // must return, and the protocol layer never crashes.
  std::vector<BigInt> garbage = {BigInt(0), harness_.pk().n_squared(),
                                 BigInt(12345), BigInt(1)};
  auto resp = harness_.ctx().Call(Op::kLsbBatch, garbage);
  // Accept either a clean error or a response of the right shape.
  if (resp.ok()) {
    EXPECT_EQ(resp->ints.size(), garbage.size());
  }
}

TEST_F(RobustnessTest, SmSurvivesManySequentialBatches) {
  // Soak: repeated batches over one connection (correlation ids keep
  // increasing, allocations recycle).
  const auto& pk = harness_.pk();
  for (int round = 0; round < 20; ++round) {
    std::vector<Ciphertext> as, bs;
    for (int i = 0; i < 5; ++i) {
      as.push_back(pk.Encrypt(BigInt(round + i), rng_));
      bs.push_back(pk.Encrypt(BigInt(2 * i + 1), rng_));
    }
    auto r = SecureMultiplyBatch(harness_.ctx(), as, bs);
    ASSERT_TRUE(r.ok()) << "round " << round;
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(harness_.Decrypt((*r)[i]),
                BigInt((round + i) * (2 * i + 1)));
    }
  }
}

}  // namespace
}  // namespace sknn
