// Tests for the data substrate: synthetic generators, the Table 1 heart
// dataset (values cross-checked against the paper), fixed-point encoding,
// and CSV round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "baseline/plaintext_knn.h"
#include "data/csv.h"
#include "data/encoding.h"
#include "data/heart_dataset.h"
#include "data/synthetic.h"

namespace sknn {
namespace {

TEST(SyntheticTest, UniformTableShapeAndDomain) {
  PlainTable t = GenerateUniformTable(20, 5, 9, 42);
  ASSERT_EQ(t.size(), 20u);
  for (const auto& row : t) {
    ASSERT_EQ(row.size(), 5u);
    for (int64_t v : row) {
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 9);
    }
  }
}

TEST(SyntheticTest, DeterministicInSeed) {
  EXPECT_EQ(GenerateUniformTable(5, 3, 100, 7),
            GenerateUniformTable(5, 3, 100, 7));
  EXPECT_NE(GenerateUniformTable(5, 3, 100, 7),
            GenerateUniformTable(5, 3, 100, 8));
}

TEST(SyntheticTest, ClusteredTablePointsStayNearCentroids) {
  ClusterSpec spec;
  spec.num_clusters = 3;
  spec.spread = 1;
  PlainTable t = GenerateClusteredTable(30, 4, 50, spec, 11);
  ASSERT_EQ(t.size(), 30u);
  // Points of the same cluster (i % 3) are within 2*spread per attribute.
  for (std::size_t i = 3; i < t.size(); ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_LE(std::abs(t[i][j] - t[i % 3][j]), 2 * spec.spread);
    }
  }
}

TEST(SyntheticTest, BitsForMaxValue) {
  EXPECT_EQ(BitsForMaxValue(0), 1u);
  EXPECT_EQ(BitsForMaxValue(1), 1u);
  EXPECT_EQ(BitsForMaxValue(2), 2u);
  EXPECT_EQ(BitsForMaxValue(255), 8u);
  EXPECT_EQ(BitsForMaxValue(256), 9u);
}

TEST(SyntheticTest, MaxValueForDistanceBits) {
  // l = 6, m = 6: need 6*v^2 <= 63 -> v = 3.
  EXPECT_EQ(MaxValueForDistanceBits(6, 6), 3);
  // l = 12, m = 6: 6*v^2 <= 4095 -> v = 26.
  EXPECT_EQ(MaxValueForDistanceBits(6, 12), 26);
  // Consistency: distances generated at this value really fit in l bits.
  for (unsigned l : {6u, 12u, 20u}) {
    std::size_t m = 6;
    int64_t v = MaxValueForDistanceBits(m, l);
    EXPECT_LT(static_cast<int64_t>(m) * v * v, int64_t{1} << l);
  }
}

TEST(HeartDatasetTest, MatchesPaperTable1) {
  const PlainTable& full = HeartFullRecords();
  ASSERT_EQ(full.size(), 6u);
  ASSERT_EQ(full[0].size(), 10u);
  // Spot-check t1 and t6 against Table 1.
  PlainRecord t1 = {63, 1, 1, 145, 233, 1, 3, 0, 6, 0};
  PlainRecord t6 = {77, 1, 4, 125, 304, 0, 1, 3, 3, 4};
  EXPECT_EQ(full[0], t1);
  EXPECT_EQ(full[5], t6);
  EXPECT_EQ(HeartFeatures()[0].size(), 9u);
  EXPECT_EQ(HeartLabels(), (std::vector<int64_t>{0, 2, 1, 3, 3, 4}));
  EXPECT_EQ(HeartAttributeNames().size(), 9u);
}

TEST(HeartDatasetTest, Example1NearestNeighborsAreT4T5) {
  // The paper's Example 1, verified on plaintext.
  auto idx = PlainKnnIndices(HeartFeatures(), HeartExampleQuery(), 2);
  std::set<std::size_t> expected = {3, 4};  // t4, t5 (0-based)
  EXPECT_EQ(std::set<std::size_t>(idx.begin(), idx.end()), expected);
}

TEST(HeartDatasetTest, AttrBitsCoverDomain) {
  unsigned bits = HeartAttrBits();
  EXPECT_EQ(bits, 9u);  // max value 304 -> 9 bits
  for (const auto& row : HeartFullRecords()) {
    for (int64_t v : row) {
      EXPECT_LT(v, int64_t{1} << bits);
    }
  }
}

TEST(FixedPointEncoderTest, RoundTripWithinTolerance) {
  auto enc = FixedPointEncoder::Create(-1.0, 1.0, 10);
  ASSERT_TRUE(enc.ok());
  for (double v : {-1.0, -0.5, 0.0, 0.123, 0.999, 1.0}) {
    auto code = enc->Encode(v);
    ASSERT_TRUE(code.ok()) << v;
    EXPECT_GE(*code, 0);
    EXPECT_LT(*code, int64_t{1} << 10);
    EXPECT_NEAR(enc->Decode(*code), v, 2.0 / 1023.0) << v;
  }
}

TEST(FixedPointEncoderTest, RejectsOutOfRangeAndBadParams) {
  auto enc = FixedPointEncoder::Create(0.0, 10.0, 8);
  ASSERT_TRUE(enc.ok());
  EXPECT_FALSE(enc->Encode(-0.1).ok());
  EXPECT_FALSE(enc->Encode(10.1).ok());
  EXPECT_FALSE(FixedPointEncoder::Create(5.0, 1.0, 8).ok());
  EXPECT_FALSE(FixedPointEncoder::Create(0.0, 1.0, 0).ok());
  EXPECT_FALSE(FixedPointEncoder::Create(0.0, 1.0, 40).ok());
}

TEST(FixedPointEncoderTest, ConstantColumnEncodesToZero) {
  auto enc = FixedPointEncoder::Create(3.5, 3.5, 8);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->Encode(3.5).value(), 0);
}

TEST(TableEncoderTest, PreservesKnnOrderApproximately) {
  // Encode a real-valued table; the nearest neighbor in encoded space must
  // match the nearest neighbor in real space when quantization is fine.
  std::vector<std::vector<double>> table = {
      {0.10, 0.90}, {0.80, 0.20}, {0.12, 0.88}, {0.50, 0.50}};
  auto enc = TableEncoder::Fit(table, 12);
  ASSERT_TRUE(enc.ok());
  auto encoded = enc->Encode(table);
  ASSERT_TRUE(encoded.ok());
  auto query = enc->EncodeRow({0.11, 0.89});
  ASSERT_TRUE(query.ok());
  auto idx = PlainKnnIndices(*encoded, *query, 2);
  std::set<std::size_t> expected = {0, 2};
  EXPECT_EQ(std::set<std::size_t>(idx.begin(), idx.end()), expected);
}

TEST(TableEncoderTest, DecodeInvertsEncode) {
  std::vector<std::vector<double>> table = {{1.0, -2.0}, {3.0, 4.0}};
  auto enc = TableEncoder::Fit(table, 16);
  ASSERT_TRUE(enc.ok());
  auto encoded = enc->Encode(table);
  ASSERT_TRUE(encoded.ok());
  auto decoded = enc->Decode(*encoded);
  for (std::size_t i = 0; i < table.size(); ++i) {
    for (std::size_t j = 0; j < table[i].size(); ++j) {
      EXPECT_NEAR(decoded[i][j], table[i][j], 1e-3);
    }
  }
}

TEST(CsvTest, WriteReadRoundTrip) {
  PlainTable table = {{1, 2, 3}, {-4, 5, 6}};
  std::string path = testing::TempDir() + "/sknn_test.csv";
  ASSERT_TRUE(WriteCsv(path, table, {"a", "b", "c"}).ok());
  auto with_header = ReadCsv(path, /*skip_header=*/true);
  ASSERT_TRUE(with_header.ok()) << with_header.status();
  EXPECT_EQ(*with_header, table);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadErrors) {
  EXPECT_FALSE(ReadCsv("/nonexistent/file.csv").ok());
  std::string path = testing::TempDir() + "/sknn_bad.csv";
  {
    std::ofstream out(path);
    out << "1,2\n3,abc\n";
  }
  EXPECT_FALSE(ReadCsv(path).ok());
  {
    std::ofstream out(path);
    out << "1,2\n3\n";  // ragged
  }
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sknn
