// The clustered-index proof harness (ISSUE 9 tentpole): the approximate
// (clustered) index mode must degrade EXACTLY as specified and nowhere
// else.
//
// Layers of evidence:
//   1. k-means unit behavior — deterministic in the seed, every cluster
//      non-empty, k capped at n, garbage rejected;
//   2. the SKNNCL01 manifest round-trips bit-exactly through db_io and
//      malformed/truncated/foreign files are rejected with typed errors;
//   3. THE differential anchor: probe_clusters >= num_clusters is
//      bitwise-identical to the exact engine — records AND per-query op
//      counts — because the engine falls through to the exact path;
//   4. a seeded recall@k sweep: recall grows with probe_clusters and a
//      well-separated table reaches recall 1.0 well before probe = all;
//   5. the sharded topology: in-process ShardScheme::kByCluster shards,
//      pruned shards report pruned = 1 with zero traffic, and the sharded
//      clustered answer equals the unsharded clustered answer probe for
//      probe;
//   6. the greedy candidate expansion: probe = 1 with k larger than the
//      nearest cluster silently widens to enough clusters to honor k.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"

#include "baseline/plaintext_knn.h"
#include "core/clustering.h"
#include "core/data_owner.h"
#include "core/db_io.h"
#include "core/engine.h"
#include "core/sharding.h"
#include "data/synthetic.h"
#include "tests/query_test_util.h"

namespace sknn {
namespace {

constexpr unsigned kKeyBits = 256;
constexpr unsigned kAttrBits = 4;
constexpr int64_t kMaxValue = 15;  // [0, 2^kAttrBits)

DataOwner& SharedAlice() {
  static DataOwner* alice = [] {
    auto created = DataOwner::Create(kKeyBits);
    SKNN_CHECK(created.ok()) << created.status();
    return new DataOwner(std::move(created).value());
  }();
  return *alice;
}

SknnEngine::Options BaseOptions() {
  SknnEngine::Options options;
  options.c1_threads = 2;
  options.c2_threads = 2;
  options.randomizer_pool_capacity = 32;
  return options;
}

std::shared_ptr<const ClusterManifest> MakeManifest(const PlainTable& table,
                                                    uint32_t clusters,
                                                    uint64_t seed) {
  auto built = BuildClusterManifest(table, clusters, seed,
                                    SharedAlice().public_key());
  EXPECT_TRUE(built.ok()) << built.status();
  return std::make_shared<const ClusterManifest>(std::move(built).value());
}

std::unique_ptr<SknnEngine> MakeEngine(const PlainTable& table,
                                       const SknnEngine::Options& options) {
  auto db = SharedAlice().EncryptDatabase(table, kAttrBits);
  EXPECT_TRUE(db.ok()) << db.status();
  auto engine = SknnEngine::CreateFromParts(
      SharedAlice().public_key(),
      PaillierSecretKey(SharedAlice().secret_key_for_c2()),
      std::move(db).value(), options);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

Result<QueryResponse> RunClustered(SknnEngine& engine,
                                   const PlainRecord& record, unsigned k,
                                   QueryProtocol protocol, uint32_t probe) {
  QueryRequest request;
  request.record = record;
  request.k = k;
  request.protocol = protocol;
  request.index_mode = IndexMode::kClustered;
  request.probe_clusters = probe;
  request.want_op_counts = true;
  return engine.Query(request);
}

// recall@k against the plaintext oracle, multiset semantics (random tables
// contain duplicate rows).
double RecallAtK(const PlainTable& got, const PlainTable& want) {
  std::map<PlainRecord, int> pool;
  for (const PlainRecord& r : want) ++pool[r];
  std::size_t hits = 0;
  for (const PlainRecord& r : got) {
    auto it = pool.find(r);
    if (it != pool.end() && it->second > 0) {
      --it->second;
      ++hits;
    }
  }
  return want.empty() ? 1.0 : static_cast<double>(hits) / want.size();
}

// ---------------------------------------------------------------------------
// 1. k-means unit behavior.

TEST(KMeansPartition, DeterministicAndCoversEveryCluster) {
  PlainTable table = GenerateClusteredTable(40, 3, kMaxValue,
                                            {4, /*spread=*/1}, 901);
  auto a = KMeansPartition(table, 4, /*seed=*/7);
  auto b = KMeansPartition(table, 4, /*seed=*/7);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_EQ(a->centroids, b->centroids);
  ASSERT_EQ(a->assignment.size(), table.size());
  // Every cluster holds at least one record (the post-pass fixup invariant
  // PartitionDatabaseByCluster depends on).
  std::vector<int> counts(4, 0);
  for (uint32_t c : a->assignment) {
    ASSERT_LT(c, 4u);
    ++counts[c];
  }
  for (int count : counts) EXPECT_GT(count, 0);
  // Centroids stay inside the attribute domain.
  for (const PlainRecord& centroid : a->centroids) {
    for (int64_t v : centroid) {
      EXPECT_GE(v, 0);
      EXPECT_LE(v, kMaxValue);
    }
  }
}

TEST(KMeansPartition, CapsClustersAtRecordCountAndRejectsGarbage) {
  PlainTable tiny = {{1, 1}, {2, 2}, {14, 14}};
  auto capped = KMeansPartition(tiny, 10, 3);
  ASSERT_TRUE(capped.ok()) << capped.status();
  EXPECT_EQ(capped->centroids.size(), 3u);  // k = min(10, n)

  EXPECT_FALSE(KMeansPartition(tiny, 0, 3).ok());
  EXPECT_FALSE(KMeansPartition(PlainTable{}, 2, 3).ok());
  PlainTable ragged = {{1, 2}, {3}};
  EXPECT_FALSE(KMeansPartition(ragged, 2, 3).ok());
}

// ---------------------------------------------------------------------------
// 2. SKNNCL01 persistence.

TEST(ClusterManifestIo, RoundTripsBitExactly) {
  PlainTable table = GenerateClusteredTable(24, 2, kMaxValue, {3, 1}, 902);
  auto manifest = MakeManifest(table, 3, 11);
  const std::string path = ::testing::TempDir() + "/clusters_rt.bin";
  ASSERT_TRUE(WriteClusterManifest(path, *manifest).ok());
  auto loaded = ReadClusterManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_clusters, manifest->num_clusters);
  EXPECT_EQ(loaded->num_attributes, manifest->num_attributes);
  EXPECT_EQ(loaded->total_records, manifest->total_records);
  EXPECT_EQ(loaded->assignment, manifest->assignment);
  ASSERT_EQ(loaded->centroids.size(), manifest->centroids.size());
  for (std::size_t c = 0; c < manifest->centroids.size(); ++c) {
    ASSERT_EQ(loaded->centroids[c].size(), manifest->centroids[c].size());
    for (std::size_t j = 0; j < manifest->centroids[c].size(); ++j) {
      EXPECT_EQ(loaded->centroids[c][j].value(),
                manifest->centroids[c][j].value())
          << "centroid " << c << " attr " << j;
    }
  }
}

TEST(ClusterManifestIo, RejectsForeignTruncatedAndTrailing) {
  PlainTable table = GenerateClusteredTable(12, 2, kMaxValue, {2, 1}, 903);
  auto manifest = MakeManifest(table, 2, 5);
  const std::string path = ::testing::TempDir() + "/clusters_bad.bin";
  ASSERT_TRUE(WriteClusterManifest(path, *manifest).ok());

  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
      bytes.append(buf, got);
    }
    std::fclose(f);
  }
  auto write_bytes = [&](const std::string& data) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
  };

  // Foreign magic.
  {
    std::string foreign = bytes;
    foreign[0] = 'X';
    write_bytes(foreign);
    EXPECT_FALSE(ReadClusterManifest(path).ok());
  }
  // Truncation at several depths: header, assignment, centroid bytes.
  for (std::size_t cut : {std::size_t{4}, std::size_t{12}, std::size_t{21},
                          bytes.size() - 1}) {
    write_bytes(bytes.substr(0, cut));
    EXPECT_FALSE(ReadClusterManifest(path).ok()) << "cut at " << cut;
  }
  // Trailing bytes.
  write_bytes(bytes + "junk");
  EXPECT_FALSE(ReadClusterManifest(path).ok());
}

// ---------------------------------------------------------------------------
// 3. probe = all is bitwise-exact (the differential anchor).

TEST(ClusteredIndex, ProbeAllIsBitwiseIdenticalToExact) {
  PlainTable table = GenerateClusteredTable(30, 2, kMaxValue, {3, 1}, 904);
  PlainRecord query = GenerateUniformQuery(2, kMaxValue, 905);
  SknnEngine::Options options = BaseOptions();
  options.clusters = MakeManifest(table, 3, 17);
  auto clustered = MakeEngine(table, options);
  auto exact = MakeEngine(table, BaseOptions());
  EXPECT_EQ(clustered->info().num_clusters, 3u);

  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure,
        QueryProtocol::kFarthest}) {
    SCOPED_TRACE(QueryProtocolName(protocol));
    QueryRequest request;
    request.record = query;
    request.k = 4;
    request.protocol = protocol;
    request.want_op_counts = true;
    auto reference = exact->Query(request);
    ASSERT_TRUE(reference.ok()) << reference.status();
    // probe = num_clusters and probe > num_clusters both fall through.
    for (uint32_t probe : {3u, 100u}) {
      auto result = RunClustered(*clustered, query, 4, protocol, probe);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result->records, reference->records) << "probe " << probe;
      // Bitwise identity includes the WORK: no probe round ran at all.
      EXPECT_EQ(result->ops.encryptions, reference->ops.encryptions)
          << "probe " << probe;
    }
  }
}

// ---------------------------------------------------------------------------
// 4. recall@k vs probe_clusters.

TEST(ClusteredIndex, RecallGrowsWithProbeAndSaturates) {
  // Well-separated clusters (spread 1 over a 0..15 domain) so the geometry
  // is meaningful; seeds fixed so the sweep is reproducible.
  const std::size_t n = 48, m = 2;
  const uint32_t num_clusters = 4;
  PlainTable table =
      GenerateClusteredTable(n, m, kMaxValue, {num_clusters, 1}, 906);
  SknnEngine::Options options = BaseOptions();
  options.clusters = MakeManifest(table, num_clusters, 23);
  auto engine = MakeEngine(table, options);

  const unsigned k = 4;
  std::vector<PlainRecord> queries;
  for (uint64_t seed = 910; seed < 916; ++seed) {
    queries.push_back(GenerateUniformQuery(m, kMaxValue, seed));
  }
  double last_mean = 0;
  for (uint32_t probe = 1; probe <= num_clusters; ++probe) {
    double total = 0;
    for (const PlainRecord& query : queries) {
      auto result =
          RunClustered(*engine, query, k, QueryProtocol::kBasic, probe);
      ASSERT_TRUE(result.ok()) << result.status();
      ASSERT_EQ(result->records.size(), k);
      total += RecallAtK(result->records, PlainKnn(table, query, k));
    }
    const double mean = total / queries.size();
    // Monotone within noise: probing MORE clusters can only add candidates.
    EXPECT_GE(mean, last_mean - 1e-9) << "probe " << probe;
    last_mean = mean;
  }
  // probe = all is exact, and the knee arrives earlier: half the clusters
  // already clear the deployment guidance bar of 0.9.
  EXPECT_EQ(last_mean, 1.0);
  double total_half = 0;
  for (const PlainRecord& query : queries) {
    auto result = RunClustered(*engine, query, k, QueryProtocol::kBasic,
                               num_clusters / 2);
    ASSERT_TRUE(result.ok()) << result.status();
    total_half += RecallAtK(result->records, PlainKnn(table, query, k));
  }
  EXPECT_GE(total_half / queries.size(), 0.9);
}

// ---------------------------------------------------------------------------
// 5. sharded (kByCluster) topology.

TEST(ClusteredIndex, ShardedByClusterPrunesAndMatchesUnsharded) {
  PlainTable table = GenerateClusteredTable(32, 2, kMaxValue, {4, 1}, 907);
  PlainRecord query = GenerateUniformQuery(2, kMaxValue, 908);
  auto manifest = MakeManifest(table, 4, 29);

  SknnEngine::Options unsharded_options = BaseOptions();
  unsharded_options.clusters = manifest;
  auto unsharded = MakeEngine(table, unsharded_options);

  SknnEngine::Options sharded_options = BaseOptions();
  sharded_options.clusters = manifest;
  sharded_options.shards = 4;  // any value > 1: the manifest decides
  auto sharded = MakeEngine(table, sharded_options);
  EXPECT_EQ(sharded->info().shard_scheme, ShardScheme::kByCluster);
  EXPECT_EQ(sharded->info().num_shards, 4u);

  for (QueryProtocol protocol :
       {QueryProtocol::kBasic, QueryProtocol::kSecure}) {
    for (uint32_t probe = 1; probe <= 4; ++probe) {
      SCOPED_TRACE(std::string(QueryProtocolName(protocol)) + " probe " +
                   std::to_string(probe));
      auto reference =
          RunClustered(*unsharded, query, 3, protocol, probe);
      ASSERT_TRUE(reference.ok()) << reference.status();
      auto result = RunClustered(*sharded, query, 3, protocol, probe);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result->records, reference->records);
      if (probe >= 4) continue;  // fell through to exact: stats covered
                                 // by the sharded-query suite
      ASSERT_EQ(result->shards.size(), 4u);
      uint32_t pruned = 0, total_records = 0;
      for (const ShardQueryStats& stats : result->shards) {
        total_records += stats.shard_records;
        EXPECT_GT(stats.shard_records, 0u);
        if (stats.pruned != 0) {
          ++pruned;
          // A pruned shard never saw the query: no candidates, no traffic.
          EXPECT_EQ(stats.candidates, 0u);
          EXPECT_EQ(stats.traffic.total_frames(), 0u);
          EXPECT_EQ(stats.ops.encryptions, 0u);
        } else {
          EXPECT_GT(stats.candidates, 0u);
        }
      }
      EXPECT_EQ(total_records, 32u);
      // The probe round prunes exactly the unprobed clusters (the greedy
      // expansion may keep extras only when k demands it; k=3 fits any
      // single cluster of this table).
      EXPECT_EQ(pruned, 4u - probe);
    }
  }
}

// ---------------------------------------------------------------------------
// 6. edge cases and admission.

TEST(ClusteredIndex, GreedyExpansionHonorsKBeyondNearestCluster) {
  // 3 tight clusters of 5 records each; k = 12 needs at least 3 clusters
  // even though probe asks for 1.
  PlainTable table = GenerateClusteredTable(15, 2, kMaxValue, {3, 1}, 909);
  SknnEngine::Options options = BaseOptions();
  options.clusters = MakeManifest(table, 3, 31);
  auto engine = MakeEngine(table, options);
  auto result = RunClustered(*engine, {7, 7}, 12, QueryProtocol::kBasic, 1);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->records.size(), 12u);
  // Expanding to >= 12 candidates forces every cluster in: the answer is
  // the exact one.
  EXPECT_EQ(result->records, PlainKnn(table, {7, 7}, 12));
}

TEST(ClusteredIndex, ClusteredRequestWithoutManifestIsInvalidArgument) {
  PlainTable table = GenerateUniformTable(8, 2, kMaxValue, 910);
  auto engine = MakeEngine(table, BaseOptions());
  auto result =
      RunClustered(*engine, {1, 1}, 2, QueryProtocol::kBasic, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusteredIndex, ProbeZeroBehavesAsOne) {
  PlainTable table = GenerateClusteredTable(16, 2, kMaxValue, {2, 1}, 911);
  SknnEngine::Options options = BaseOptions();
  options.clusters = MakeManifest(table, 2, 37);
  auto engine = MakeEngine(table, options);
  auto zero = RunClustered(*engine, {3, 3}, 2, QueryProtocol::kBasic, 0);
  auto one = RunClustered(*engine, {3, 3}, 2, QueryProtocol::kBasic, 1);
  ASSERT_TRUE(zero.ok()) << zero.status();
  ASSERT_TRUE(one.ok()) << one.status();
  EXPECT_EQ(zero->records, one->records);
}

}  // namespace
}  // namespace sknn
