// Concurrency stress for ThreadSanitizer — and regression tests for the
// data races the sanitizer pass surfaced.
//
// Every scenario here is chosen for the interleavings it provokes, not for
// protocol coverage (the differential suites own correctness):
//
//  * many thin clients hammering one QueryService under a deliberately tiny
//    admission budget, so the backpressure CAS loop, the per-table atomic
//    counters and the stats mutex all contend while the control plane
//    (kServiceStats / kListTables) reads them;
//  * a shard worker killed mid-serving, so the coordinator's failure path
//    races live queries;
//  * concurrent Shutdown callers racing each other and the accept thread
//    (regression: two callers used to race to accept_thread_.join(), which
//    is undefined behavior on a std::thread);
//  * TcpListener::Close against a blocked Accept (regression: the listening
//    fd was a plain int written by Close while Accept read it);
//  * RandomizerPool::set_enabled toggled against Take and the fill threads;
//  * the revision-6 result cache churned by concurrent hits, misses,
//    no_cache bypasses, LRU evictions and hot-reload-style invalidation
//    while the stats plane reads its counters.
//
// The suite is part of the regular ctest run (it must also PASS functionally)
// and is the workload of the tsan CI job, where the whole binary runs under
// -fsanitize=thread and any report fails the build.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/data_owner.h"
#include "core/engine.h"
#include "core/sharding.h"
#include "data/synthetic.h"
#include "net/shard_wire.h"
#include "net/socket.h"
#include "proto/c2_service.h"
#include "serve/qos/result_cache.h"
#include "serve/query_service.h"
#include "serve/remote_query_client.h"
#include "serve/shard_worker.h"
#include "serve/table_registry.h"
#include "tests/query_test_util.h"

namespace sknn {
namespace {

constexpr unsigned kKeyBits = 256;
constexpr unsigned kAttrBits = 3;
constexpr int64_t kMaxValue = 7;  // [0, 2^kAttrBits)

// One Alice for the whole binary: keygen dominates setup, and every engine
// under test may share the same key pair (they simulate ONE deployment).
DataOwner& SharedAlice() {
  static DataOwner* alice = [] {
    auto created = DataOwner::Create(kKeyBits);
    SKNN_CHECK(created.ok()) << created.status();
    return new DataOwner(std::move(created).value());
  }();
  return *alice;
}

SknnEngine::Options BaseOptions() {
  SknnEngine::Options options;
  options.c1_threads = 2;
  options.c2_threads = 2;
  options.randomizer_pool_capacity = 32;  // keep background fill light
  return options;
}

std::unique_ptr<SknnEngine> MakeLocalEngine(const PlainTable& table) {
  auto db = SharedAlice().EncryptDatabase(table, kAttrBits);
  SKNN_CHECK(db.ok()) << db.status();
  auto engine = SknnEngine::CreateFromParts(
      SharedAlice().public_key(),
      PaillierSecretKey(SharedAlice().secret_key_for_c2()),
      std::move(db).value(), BaseOptions());
  SKNN_CHECK(engine.ok()) << engine.status();
  return std::move(engine).value();
}

QueryRequest MakeRequest(PlainRecord record, unsigned k) {
  QueryRequest request;
  request.record = std::move(record);
  request.k = k;
  request.protocol = QueryProtocol::kBasic;
  return request;
}

RetryPolicy PatientRetry() {
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = std::chrono::milliseconds(5);
  policy.max_backoff = std::chrono::milliseconds(100);
  policy.max_elapsed = std::chrono::milliseconds(0);  // no elapsed cap
  policy.jitter = 0.5;
  return policy;
}

// ---------------------------------------------------------------------------
// 1. Concurrent clients vs a one-slot admission budget + control plane.

TEST(TsanStress, ConcurrentClientsBackpressureAndControlPlane) {
  PlainTable table = GenerateUniformTable(8, 2, kMaxValue, 9001);
  std::unique_ptr<SknnEngine> engine = MakeLocalEngine(table);

  QueryService::Options options;
  // One slot for four clients: most arrivals bounce with kResourceExhausted
  // and re-enter through QueryWithRetry, so the admission CAS and the
  // rejection counters are contended the whole run.
  options.max_in_flight = 1;
  options.connection_workers = 1;
  QueryService service(engine.get(), options);
  ASSERT_TRUE(service.Start(0).ok());

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 3;
  const PlainRecord query = GenerateUniformQuery(2, kMaxValue, 9002);
  const auto expected = RunQuery(*engine, query, 2, QueryProtocol::kBasic);
  ASSERT_TRUE(expected.ok()) << expected.status();

  std::atomic<bool> done{false};
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto client = RemoteQueryClient::Connect("127.0.0.1", service.port());
      ASSERT_TRUE(client.ok()) << client.status();
      for (int q = 0; q < kQueriesPerClient; ++q) {
        auto response =
            (*client)->QueryWithRetry(MakeRequest(query, 2), PatientRetry());
        ASSERT_TRUE(response.ok()) << response.status();
        EXPECT_EQ(response->records, expected->records);
        successes.fetch_add(1);
      }
    });
  }
  // The control plane polls while queries are in flight: kServiceStats
  // snapshots the same counters the handlers are writing.
  std::thread poller([&] {
    auto client = RemoteQueryClient::Connect("127.0.0.1", service.port());
    ASSERT_TRUE(client.ok()) << client.status();
    while (!done.load()) {
      auto stats = (*client)->ServiceStats();
      ASSERT_TRUE(stats.ok()) << stats.status();
      EXPECT_LE(stats->in_flight, options.max_in_flight);
      auto tables = (*client)->ListTables();
      ASSERT_TRUE(tables.ok()) << tables.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& t : clients) t.join();
  done.store(true);
  poller.join();

  EXPECT_EQ(successes.load(), kClients * kQueriesPerClient);
  const QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries_completed,
            static_cast<uint64_t>(kClients * kQueriesPerClient));
  EXPECT_EQ(stats.queries_failed, 0u);
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// 2. Concurrent Shutdown callers (regression for the double-join race).

TEST(TsanStress, ConcurrentShutdownIsSerialized) {
  PlainTable table = GenerateUniformTable(4, 2, kMaxValue, 9101);
  std::unique_ptr<SknnEngine> engine = MakeLocalEngine(table);
  QueryService service(engine.get(), QueryService::Options{});
  ASSERT_TRUE(service.Start(0).ok());

  // A client keeps the accept loop and a session busy while the shutdowns
  // race it.
  auto client = RemoteQueryClient::Connect("127.0.0.1", service.port());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)->Hello().ok());

  // Before Shutdown was serialized, every caller past the first took the
  // "already stopping" path and joined accept_thread_ — several threads
  // joining ONE std::thread concurrently is undefined behavior.
  std::vector<std::thread> killers;
  for (int i = 0; i < 4; ++i) {
    killers.emplace_back([&] { service.Shutdown(); });
  }
  for (auto& t : killers) t.join();
  EXPECT_EQ(service.active_sessions(), 0u);
}

// ---------------------------------------------------------------------------
// 3. TcpListener::Close vs a blocked Accept (regression for the plain-int
//    listening fd).

TEST(TsanStress, ListenerCloseRacesBlockedAccept) {
  for (int round = 0; round < 8; ++round) {
    auto listener = TcpListener::Bind(0);
    ASSERT_TRUE(listener.ok()) << listener.status();
    std::thread acceptor([&] {
      // Either outcome is fine — an error after Close, or a connection that
      // sneaked in first; the point is that the fd handoff is clean.
      auto accepted = listener->Accept();
      (void)accepted;
    });
    // No sleep: sometimes Close lands before Accept blocks, sometimes
    // after — both orders must be race-free.
    listener->Close();
    // Unblock platforms where shutdown(2) does not wake a parked accept(2).
    if (auto kick = ConnectTcp("127.0.0.1", listener->port()); kick.ok()) {
      (*kick)->Close();
    }
    acceptor.join();
    EXPECT_FALSE(listener->Accept().ok());  // closed for good
  }
}

// ---------------------------------------------------------------------------
// 4. RandomizerPool: set_enabled toggled against Take and the fill threads.

TEST(TsanStress, RandomizerPoolToggleUnderLoad) {
  const PaillierPublicKey& pk = SharedAlice().public_key();
  RandomizerPool pool(pk.n(), /*capacity=*/16, /*workers=*/2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> takers;
  for (int t = 0; t < 3; ++t) {
    takers.emplace_back([&] {
      while (!stop.load()) {
        BigInt r = pool.Take();
        EXPECT_NE(r, BigInt(0));
      }
    });
  }
  std::thread toggler([&] {
    for (int i = 0; i < 50; ++i) {
      pool.set_enabled(i % 2 == 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    pool.set_enabled(true);
  });
  toggler.join();
  pool.WaitUntilFull();
  stop.store(true);
  for (auto& t : takers) t.join();
  EXPECT_GT(pool.hits() + pool.misses(), 0u);
}

// ---------------------------------------------------------------------------
// 5. A shard worker dies mid-serving; the front end must fail queries with
//    a Status and keep its control plane alive, never crash or hang.

// A C2 key holder accepting any number of TCP connections (the engine's and
// every worker's) — the in-test stand-in for tools/sknn_c2_server.
class StressC2 {
 public:
  StressC2() : c2_(PaillierSecretKey(SharedAlice().secret_key_for_c2())) {
    c2_.EnableRandomizerPool(/*capacity=*/32);
    auto listener = TcpListener::Bind(0);
    SKNN_CHECK(listener.ok()) << listener.status();
    listener_.emplace(std::move(listener).value());
    accept_thread_ = std::thread([this] {
      for (;;) {
        auto endpoint = listener_->Accept();
        if (!endpoint.ok()) return;  // closed
        MutexLock lock(&mutex_);
        sessions_.push_back(std::make_unique<RpcServer>(
            std::move(endpoint).value(),
            [this](const Message& req) { return c2_.Handle(req); },
            /*worker_threads=*/2));
      }
    });
  }

  ~StressC2() {
    listener_->Close();
    if (auto kick = ConnectTcp("127.0.0.1", port()); kick.ok()) {
      (*kick)->Close();
    }
    accept_thread_.join();
    MutexLock lock(&mutex_);
    for (auto& session : sessions_) session->Shutdown();
  }

  uint16_t port() const { return listener_->port(); }

  std::unique_ptr<Endpoint> Connect() {
    auto link = ConnectTcp("127.0.0.1", port());
    SKNN_CHECK(link.ok()) << link.status();
    return std::move(link).value();
  }

 private:
  C2Service c2_;
  std::optional<TcpListener> listener_;
  std::thread accept_thread_;
  Mutex mutex_;
  std::vector<std::unique_ptr<RpcServer>> sessions_ GUARDED_BY(mutex_);
};

// One shard worker served over a loopback TCP link (the in-test
// tools/sknn_c1_shard), killable mid-run.
class StressWorker {
 public:
  StressWorker(const EncryptedDatabase& db, const ShardManifest& manifest,
               std::size_t shard, StressC2* c2) {
    ShardWorker::Options options;
    options.threads = 2;
    options.randomizer_pool_capacity = 32;
    auto worker = ShardWorker::Create(SharedAlice().public_key(), db,
                                     manifest, shard, c2->Connect(), options);
    SKNN_CHECK(worker.ok()) << worker.status();
    worker_ = std::move(worker).value();

    auto listener = TcpListener::Bind(0);
    SKNN_CHECK(listener.ok()) << listener.status();
    std::thread accepter([&] {
      auto accepted = listener->Accept();
      SKNN_CHECK(accepted.ok()) << accepted.status();
      ShardWorker* raw = worker_.get();
      server_ = std::make_unique<RpcServer>(
          std::move(accepted).value(),
          [raw](const Message& req) { return raw->Handle(req); },
          /*worker_threads=*/2);
    });
    link_ = ConnectTcp("127.0.0.1", listener->port());
    SKNN_CHECK(link_.ok()) << link_.status();
    accepter.join();
  }

  std::unique_ptr<Endpoint> TakeLink() { return std::move(link_).value(); }

  /// The "kill -9": slams the worker's link shut.
  void Kill() { server_->Shutdown(); }

 private:
  std::unique_ptr<ShardWorker> worker_;
  std::unique_ptr<RpcServer> server_;
  Result<std::unique_ptr<SocketEndpoint>> link_ =
      Status::Internal("not connected");
};

TEST(TsanStress, ShardWorkerKilledMidServing) {
  PlainTable table = GenerateUniformTable(8, 2, kMaxValue, 9201);
  auto encrypted = SharedAlice().EncryptDatabase(table, kAttrBits);
  ASSERT_TRUE(encrypted.ok()) << encrypted.status();
  EncryptedDatabase db = std::move(encrypted).value();
  auto manifest = MakeShardManifest(8, 2, ShardScheme::kContiguous);
  ASSERT_TRUE(manifest.ok()) << manifest.status();

  StressC2 c2;
  auto worker0 = std::make_unique<StressWorker>(db, *manifest, 0, &c2);
  auto worker1 = std::make_unique<StressWorker>(db, *manifest, 1, &c2);
  std::vector<std::unique_ptr<Endpoint>> links;
  links.push_back(worker0->TakeLink());
  links.push_back(worker1->TakeLink());
  auto engine = SknnEngine::CreateWithShardWorkers(
      SharedAlice().public_key(), std::move(links), c2.Connect(),
      BaseOptions());
  ASSERT_TRUE(engine.ok()) << engine.status();

  QueryService service(engine->get(), QueryService::Options{});
  ASSERT_TRUE(service.Start(0).ok());
  auto client = RemoteQueryClient::Connect("127.0.0.1", service.port());
  ASSERT_TRUE(client.ok()) << client.status();

  const PlainRecord query = GenerateUniformQuery(2, kMaxValue, 9202);
  auto healthy = (*client)->Query(MakeRequest(query, 2));
  ASSERT_TRUE(healthy.ok()) << healthy.status();

  // Kill one worker while two clients keep querying: every subsequent
  // query must come back as a Status (the dead shard surfaces as an
  // engine error through the wire), never hang or crash the front end.
  worker1->Kill();
  std::vector<std::thread> mourners;
  for (int t = 0; t < 2; ++t) {
    mourners.emplace_back([&] {
      auto doomed = RemoteQueryClient::Connect("127.0.0.1", service.port());
      ASSERT_TRUE(doomed.ok()) << doomed.status();
      for (int q = 0; q < 2; ++q) {
        auto response = (*doomed)->Query(MakeRequest(query, 2));
        EXPECT_FALSE(response.ok());
      }
    });
  }
  for (auto& t : mourners) t.join();

  // The control plane must still answer after the data plane degraded.
  auto stats = (*client)->ServiceStats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->tables.at(0).failed, 4u);
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// 6. Replica churn (ISSUE 7): replicas killed mid-load while clients hammer
//    the front end and the health plane polls over the wire. Queries must
//    keep SUCCEEDING — the sibling replica absorbs each stage — and every
//    concurrent reader of the per-replica health state (query path, probe
//    thread, kHealth snapshots) must be race-free.

TEST(TsanStress, ReplicaChurnUnderLoad) {
  PlainTable table = GenerateUniformTable(8, 2, kMaxValue, 9301);
  auto encrypted = SharedAlice().EncryptDatabase(table, kAttrBits);
  ASSERT_TRUE(encrypted.ok()) << encrypted.status();
  EncryptedDatabase db = std::move(encrypted).value();
  auto manifest = MakeShardManifest(8, 2, ShardScheme::kContiguous);
  ASSERT_TRUE(manifest.ok()) << manifest.status();

  StressC2 c2;
  // Two replicas per shard; the killer later takes one of EACH shard, so
  // both failover paths run while full coverage survives.
  auto shard0_a = std::make_unique<StressWorker>(db, *manifest, 0, &c2);
  auto shard0_b = std::make_unique<StressWorker>(db, *manifest, 0, &c2);
  auto shard1_a = std::make_unique<StressWorker>(db, *manifest, 1, &c2);
  auto shard1_b = std::make_unique<StressWorker>(db, *manifest, 1, &c2);
  std::vector<std::unique_ptr<Endpoint>> links;
  links.push_back(shard0_a->TakeLink());
  links.push_back(shard0_b->TakeLink());
  links.push_back(shard1_a->TakeLink());
  links.push_back(shard1_b->TakeLink());
  SknnEngine::Options options = BaseOptions();
  // An aggressive probe cadence: the probe thread's MarkFailed/MarkOk churn
  // races the query path's replica selection the whole run.
  options.shard_probe_interval = std::chrono::milliseconds(25);
  auto engine = SknnEngine::CreateWithShardWorkers(
      SharedAlice().public_key(), std::move(links), c2.Connect(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();

  QueryService service(engine->get(), QueryService::Options{});
  ASSERT_TRUE(service.Start(0).ok());

  const PlainRecord query = GenerateUniformQuery(2, kMaxValue, 9302);
  auto reference = (*engine)->Query(MakeRequest(query, 2));
  ASSERT_TRUE(reference.ok()) << reference.status();

  std::atomic<bool> done{false};
  std::atomic<int> first_batch_done{0};
  std::atomic<bool> killed{false};
  constexpr int kChurnClients = 2;
  std::vector<std::thread> clients;
  for (int t = 0; t < kChurnClients; ++t) {
    clients.emplace_back([&] {
      auto client = RemoteQueryClient::Connect("127.0.0.1", service.port());
      ASSERT_TRUE(client.ok()) << client.status();
      for (int q = 0; q < 4; ++q) {
        if (q == 2) {
          // Halfway barrier: the kills land between the warm first batch
          // (which parked `preferred` on the doomed replicas) and the
          // second, so the later queries MUST take the failover path.
          first_batch_done.fetch_add(1);
          while (!killed.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        auto response =
            (*client)->QueryWithRetry(MakeRequest(query, 2), PatientRetry());
        ASSERT_TRUE(response.ok()) << response.status();
        EXPECT_EQ(response->records, reference->records);
      }
    });
  }
  // The health plane polls over the wire while replicas die: kHealth reads
  // the same per-replica state the query path and probe thread write.
  std::thread health_poller([&] {
    auto client = RemoteQueryClient::Connect("127.0.0.1", service.port());
    ASSERT_TRUE(client.ok()) << client.status();
    while (!done.load()) {
      auto health = (*client)->Health();
      ASSERT_TRUE(health.ok()) << health.status();
      ASSERT_EQ(health->tables.size(), 1u);
      EXPECT_EQ(health->tables[0].replicas.size(), 4u);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Mid-load, one replica of each shard dies.
  while (first_batch_done.load() < kChurnClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  shard0_a->Kill();
  shard1_b->Kill();
  killed.store(true);

  for (auto& t : clients) t.join();
  done.store(true);
  health_poller.join();

  // Zero client-visible failures through the churn — failover absorbed
  // every kill inside the queries themselves.
  const QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.queries_failed, 0u);
  auto statuses = (*engine)->shard_coordinator()->ReplicaStatuses();
  ASSERT_EQ(statuses.size(), 4u);
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// 7. Result cache under fire (revision 6): clients mixing hits, misses and
//    no_cache bypasses against a 2-entry cache (so LRU eviction churns the
//    whole run), while an invalidator thread replays the hot-reload
//    invalidation path and a stats poller snapshots the cache counters over
//    the wire. Every answer must still be CORRECT — a torn entry or a
//    generation race would surface as a wrong record set, not just a report.

TEST(TsanStress, ResultCacheHitsEvictionsAndInvalidationRace) {
  PlainTable table = GenerateUniformTable(8, 2, kMaxValue, 9401);
  std::unique_ptr<SknnEngine> engine = MakeLocalEngine(table);
  TableRegistry registry;
  ASSERT_TRUE(registry.Register("t", engine.get()).ok());
  TableRegistry::Entry* entry = registry.Find("t");
  ASSERT_NE(entry, nullptr);
  // Two slots for three distinct queries: every insert past warmup evicts,
  // so Lookup/Insert/unlink-relink on the LRU list stay contended.
  entry->cache.set_budget(ResultCache::kDefaultMaxBytes, /*max_entries=*/2);

  QueryService service(&registry, QueryService::Options{});
  ASSERT_TRUE(service.Start(0).ok());

  constexpr int kDistinctQueries = 3;
  std::vector<QueryRequest> requests;
  std::vector<PlainTable> expected;
  for (int i = 0; i < kDistinctQueries; ++i) {
    QueryRequest request = MakeRequest({i, i % 2}, 2);
    request.table = "t";
    auto reference = engine->Query(request);
    ASSERT_TRUE(reference.ok()) << reference.status();
    requests.push_back(std::move(request));
    expected.push_back(reference->records);
  }

  std::atomic<bool> done{false};
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      auto client = RemoteQueryClient::Connect("127.0.0.1", service.port());
      ASSERT_TRUE(client.ok()) << client.status();
      for (int q = 0; q < 6; ++q) {
        QueryRequest request = requests[(t + q) % kDistinctQueries];
        // Every third query bypasses the cache: the miss path (full
        // protocol run + insert) keeps racing the hit path instead of the
        // cache going warm and quiet.
        request.no_cache = (q % 3 == 0);
        auto response =
            (*client)->QueryWithRetry(request, PatientRetry());
        ASSERT_TRUE(response.ok()) << response.status();
        EXPECT_EQ(response->records, expected[(t + q) % kDistinctQueries]);
        if (request.no_cache) EXPECT_FALSE(response->cache_hit);
      }
    });
  }
  // The invalidator replays what ReplaceEngine/Detach do under hot reload:
  // bump the generation, drop every entry — racing in-flight inserts whose
  // pinned generation just went stale.
  std::thread invalidator([&] {
    while (!done.load()) {
      entry->cache.Invalidate();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // And the control plane reads the counters the data plane is writing.
  std::thread poller([&] {
    auto client = RemoteQueryClient::Connect("127.0.0.1", service.port());
    ASSERT_TRUE(client.ok()) << client.status();
    while (!done.load()) {
      auto stats = (*client)->ServiceStats();
      ASSERT_TRUE(stats.ok()) << stats.status();
      ASSERT_EQ(stats->tables.size(), 1u);
      EXPECT_LE(stats->tables[0].cache_entries, 2u);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& t : clients) t.join();
  done.store(true);
  invalidator.join();
  poller.join();

  const ResultCache::Stats cache = entry->cache.stats();
  // Every query either hit, missed, or bypassed — and nothing failed.
  EXPECT_GT(cache.misses, 0u);
  EXPECT_EQ(service.stats().queries_failed, 0u);
  service.Shutdown();
}

}  // namespace
}  // namespace sknn
