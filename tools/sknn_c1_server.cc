// sknn_c1_server — the standing C1 query front end of the serving
// deployment (docs/DEPLOY.md), serving one or MANY encrypted tables behind
// the versioned wire contract of docs/API.md.
//
// Single table (the PR 3/4 shape):
//
//   sknn_c1_server --public pk.txt --db db.bin --port 9100 \
//                  --c2-host 127.0.0.1 --c2-port 9000 \
//                  [--threads N] [--max-in-flight M] [--queries N] \
//                  [--shards S] [--shard-scheme contiguous|roundrobin] \
//                  [--shard-workers host:port,host:port,...]
//
// Multi-table: repeat --table once per table. Each spec is
//   --table <name>=<db.bin>[,manifest=<file>][,public=<pk>]
//                          [,c2-host=<ip>][,c2-port=<p>]
//                          [,shards=<s>][,scheme=contiguous|roundrobin]
//                          [,clusters=<file>]
//                          [,weight=<w>][,rate=<qps>][,burst=<b>]
//                          [,cache=<bytes>]
// where public/c2-host/c2-port default to the global flags — so tables MAY
// have entirely different Paillier keys, each pointing at the C2 server
// holding its own secret key, or share one key and one C2. A manifest
// (sknn_encrypt --manifest-out) shards that table in-process with the
// partitioning Alice persisted. A clusters file (sknn_encrypt
// --clusters-out) arms the clustered (approximate) index mode: queries with
// index_mode=clustered prune to the probe_clusters nearest clusters; with
// shards > 1 the table is partitioned by cluster so pruned shards never see
// the query.
//
//   sknn_c1_server --port 9100 --c2-host 127.0.0.1 --c2-port 9000 \
//                  --public pk_a.txt \
//                  --table users=users.bin \
//                  --table genes=genes.bin,public=pk_b.txt,c2-port=9001
//
// Every engine is registered in one TableRegistry behind one QueryService:
// clients hello, then name the table per query; sknn_admin lists tables,
// geometry and per-table admission counters over the same port.
//
// QoS (protocol revision 6, docs/DEPLOY.md "multi-tenant operations"):
// weight= sets the table's share of the --max-in-flight budget under
// contention (weighted fair admission; default 1), rate=/burst= arm a
// token-bucket QPS limit (default off), and cache= bounds the table's
// rerandomized result cache in bytes — the tool defaults it ON at
// ResultCache::kDefaultMaxBytes; cache=0 disables it. --api-keys <file>
// enables per-user authentication and quotas: each line of the file is
// id:sha256(key):quota:weight, sessions must kAuthenticate before kQuery.
//
// --queries N exits after N queries have been answered (scripted smoke
// runs); the default serves until SIGINT/SIGTERM, either of which unbinds,
// drains in-flight queries and exits 0 (clean teardown for supervisors and
// scripts alike).
#include <charconv>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/clustering.h"
#include "core/db_io.h"
#include "core/engine.h"
#include "core/sharding.h"
#include "crypto/serialization.h"
#include "net/socket.h"
#include "serve/qos/api_key_auth.h"
#include "serve/qos/result_cache.h"
#include "serve/query_service.h"
#include "serve/table_registry.h"
#include "tools/tool_util.h"

namespace {

using namespace sknn;
using namespace sknn::tools;

// One --table spec, defaults already resolved against the global flags.
struct TableSpec {
  std::string name;
  std::string db_path;        // empty allowed when worker_addrs is set
  std::string manifest_path;  // empty = unsharded (or shards/scheme below)
  std::string clusters_path;  // empty = exact-only table
  std::string pk_path;
  std::string c2_host;
  uint16_t c2_port = 0;
  std::size_t shards = 1;
  ShardScheme scheme = ShardScheme::kContiguous;
  // Standing sknn_c1_shard workers ("host:port"); duplicates of a shard
  // index are replicas. '|'-separated in the spec string (the item
  // separator is ',').
  std::vector<std::string> worker_addrs;
  // QoS knobs (serve/qos/): fair-admission weight, token-bucket rate/burst
  // (0 = unlimited), and the result-cache byte budget — the TOOL's default
  // is cache ON, so operators opt OUT with cache=0 (the library default is
  // off so unconfigured embedders keep the pre-revision-6 behavior).
  uint32_t weight = 1;
  double rate = 0;
  double burst = 0;
  std::size_t cache_bytes = ResultCache::kDefaultMaxBytes;
};

// Strict whole-string non-negative double parse (rate=/burst= values);
// std::from_chars so a malformed spec is a Status, never an exception.
bool ParseSpecDouble(const std::string& value, double* out) {
  const char* begin = value.data();
  const char* end = begin + value.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end && *out >= 0;
}

// "<name>=<db>[,key=value...]" -> TableSpec. The same grammar serves both
// the --table flag and the recorded rebuild spec behind kReloadTable, so
// malformed text is a Status here: at startup the caller dies with usage,
// at reload time the admin gets the error and the server keeps serving.
Result<TableSpec> TryParseTableSpec(const std::string& text) {
  auto malformed = [&text](const std::string& why) {
    return Status::InvalidArgument("table spec '" + text + "': " + why);
  };
  TableSpec spec;
  std::stringstream ss(text);
  std::string item;
  bool first = true;
  while (std::getline(ss, item, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      return malformed("item '" + item + "' is not key=value");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (first) {
      spec.name = key;
      // "-" = no database file (the remote-worker form hosts no records).
      if (value != "-") spec.db_path = value;
      first = false;
      continue;
    }
    if (key == "manifest") {
      spec.manifest_path = value;
    } else if (key == "clusters") {
      spec.clusters_path = value;
    } else if (key == "public") {
      spec.pk_path = value;
    } else if (key == "c2-host") {
      spec.c2_host = value;
    } else if (key == "c2-port" || key == "shards") {
      unsigned parsed = 0;
      const char* begin = value.data();
      const char* end = begin + value.size();
      auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc() || ptr != end || parsed > 65535 ||
          (key == "c2-port" && parsed == 0)) {
        return malformed("bad " + key + " '" + value + "'");
      }
      if (key == "c2-port") {
        spec.c2_port = static_cast<uint16_t>(parsed);
      } else {
        spec.shards = parsed;
      }
    } else if (key == "scheme") {
      auto scheme = ParseShardScheme(value);
      if (!scheme.ok()) return malformed("bad scheme '" + value + "'");
      spec.scheme = *scheme;
    } else if (key == "weight") {
      uint32_t parsed = 0;
      const char* begin = value.data();
      const char* end = begin + value.size();
      auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc() || ptr != end || parsed == 0) {
        return malformed("bad weight '" + value + "' (want >= 1)");
      }
      spec.weight = parsed;
    } else if (key == "rate" || key == "burst") {
      double parsed = 0;
      if (!ParseSpecDouble(value, &parsed)) {
        return malformed("bad " + key + " '" + value + "'");
      }
      (key == "rate" ? spec.rate : spec.burst) = parsed;
    } else if (key == "cache") {
      std::size_t parsed = 0;
      const char* begin = value.data();
      const char* end = begin + value.size();
      auto [ptr, ec] = std::from_chars(begin, end, parsed);
      if (ec != std::errc() || ptr != end) {
        return malformed("bad cache '" + value + "' (bytes; 0 disables)");
      }
      spec.cache_bytes = parsed;
    } else if (key == "workers") {
      std::stringstream ws(value);
      std::string addr;
      while (std::getline(ws, addr, '|')) {
        if (!addr.empty()) spec.worker_addrs.push_back(addr);
      }
      if (spec.worker_addrs.empty()) {
        return malformed("empty workers list");
      }
    } else {
      return malformed("unknown key '" + key + "'");
    }
  }
  if (spec.name.empty()) return malformed("missing table name");
  if (spec.db_path.empty() && spec.worker_addrs.empty()) {
    return malformed("a database file (or workers=...) is required");
  }
  return spec;
}

// The --table flag's parse: dies with usage on malformed specs so a typo'd
// deployment refuses to start instead of serving the wrong table.
TableSpec ParseTableSpec(const std::string& text, const char* usage) {
  auto spec = TryParseTableSpec(text);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    DieBadFlag("table", text, usage);
  }
  return *spec;
}

// The inverse of TryParseTableSpec: the canonical rebuild spec recorded at
// registration, which a spec-less kReloadTable parses back.
std::string FormatTableSpec(const TableSpec& spec) {
  std::string out =
      spec.name + "=" + (spec.db_path.empty() ? "-" : spec.db_path);
  if (!spec.manifest_path.empty()) out += ",manifest=" + spec.manifest_path;
  if (!spec.clusters_path.empty()) out += ",clusters=" + spec.clusters_path;
  out += ",public=" + spec.pk_path;
  out += ",c2-host=" + spec.c2_host;
  out += ",c2-port=" + std::to_string(spec.c2_port);
  out += ",shards=" + std::to_string(spec.shards);
  out += ",scheme=" + std::string(ShardSchemeName(spec.scheme));
  // QoS keys only when off-default, so pre-revision-6 recorded specs and
  // new default ones stay byte-identical.
  if (spec.weight != 1) out += ",weight=" + std::to_string(spec.weight);
  if (spec.rate > 0) out += ",rate=" + std::to_string(spec.rate);
  if (spec.burst > 0) out += ",burst=" + std::to_string(spec.burst);
  if (spec.cache_bytes != ResultCache::kDefaultMaxBytes) {
    out += ",cache=" + std::to_string(spec.cache_bytes);
  }
  if (!spec.worker_addrs.empty()) {
    out += ",workers=";
    for (std::size_t i = 0; i < spec.worker_addrs.size(); ++i) {
      if (i) out += "|";
      out += spec.worker_addrs[i];
    }
  }
  return out;
}

// Loads one spec's artifacts and assembles its engine — own key, own
// database (or remote shard workers), own C2 connection. Runs at startup
// AND at every kReloadTable, where it rebuilds beside the live engine.
Result<std::unique_ptr<SknnEngine>> BuildTableEngine(
    const TableSpec& spec, const SknnEngine::Options& base_options) {
  SKNN_ASSIGN_OR_RETURN(PaillierPublicKey pk,
                        ReadPublicKeyFile(spec.pk_path));
  SknnEngine::Options options = base_options;
  if (!spec.clusters_path.empty()) {
    SKNN_ASSIGN_OR_RETURN(ClusterManifest clusters,
                          ReadClusterManifest(spec.clusters_path));
    options.clusters =
        std::make_shared<const ClusterManifest>(std::move(clusters));
  }
  EncryptedDatabase db;
  std::size_t shards = spec.shards;
  ShardScheme scheme = spec.scheme;
  if (spec.worker_addrs.empty()) {
    SKNN_ASSIGN_OR_RETURN(db, ReadEncryptedDatabase(spec.db_path));
    SKNN_RETURN_NOT_OK(ValidateCiphertexts(db, pk));
    if (!spec.manifest_path.empty()) {
      SKNN_ASSIGN_OR_RETURN(ShardManifest manifest,
                            ReadShardManifest(spec.manifest_path));
      SKNN_RETURN_NOT_OK(ValidateManifestForDatabase(manifest, db));
      shards = manifest.num_shards;
      scheme = manifest.scheme;
    }
    if (shards == 0) shards = 1;
  }
  if (scheme == ShardScheme::kByCluster && options.clusters == nullptr) {
    return Status::InvalidArgument(
        "table '" + spec.name +
        "': a bycluster shard manifest needs the cluster manifest too "
        "(clusters=<file>)");
  }
  // With a cluster manifest and shards > 1 the engine partitions BY CLUSTER
  // (one shard per cluster); the scheme/shard count here are then only the
  // operator's intent marker.
  if (options.clusters != nullptr && shards > 1) {
    shards = options.clusters->num_clusters;
    scheme = ShardScheme::kByCluster;
  }

  auto c2_link = ConnectTcp(spec.c2_host, spec.c2_port);
  if (!c2_link.ok()) {
    return Status::Unavailable("table '" + spec.name +
                               "': cannot reach C2 at " + spec.c2_host + ":" +
                               std::to_string(spec.c2_port) + ": " +
                               c2_link.status().message());
  }
  return QueryService::CreateShardedEngine(pk, std::move(db),
                                           std::move(c2_link).value(),
                                           options, shards, scheme,
                                           spec.worker_addrs);
}

}  // namespace

int main(int argc, char** argv) {
  const char* usage =
      "sknn_c1_server --port <p> [--public <pk>] [--db <db.bin>] "
      "[--c2-host <ip>] [--c2-port <p>] [--threads N] [--max-in-flight M] "
      "[--queries N] [--shards S] [--shard-scheme contiguous|roundrobin] "
      "[--shard-workers host:port,...] [--clusters <file>] "
      "[--no-short-randomizers] [--api-keys <file>] "
      "[--table name=db.bin[,manifest=f][,clusters=f][,public=pk]"
      "[,c2-host=ip][,c2-port=p][,shards=s][,scheme=sch]"
      "[,weight=w][,rate=qps][,burst=b][,cache=bytes]]...";
  auto flag_list = ParseFlagList(argc, argv);
  std::map<std::string, std::string> flags;
  for (auto& [key, value] : flag_list) flags[key] = value;
  uint16_t port = ParsePortOrDie(RequireFlag(flags, "port", usage), "port",
                                 usage);
  std::string c2_host = FlagOr(flags, "c2-host", "127.0.0.1");
  std::size_t threads = static_cast<std::size_t>(ParseUint64OrDie(
      FlagOr(flags, "threads", "1"), "threads", usage, 1, 4096));
  std::size_t max_in_flight = static_cast<std::size_t>(ParseUint64OrDie(
      FlagOr(flags, "max-in-flight", "8"), "max-in-flight", usage, 1, 65536));
  int64_t target_queries = ParseInt64OrDie(FlagOr(flags, "queries", "-1"),
                                           "queries", usage, -1);
  // 0 = "not set": with --shard-workers the worker count (and the workers'
  // manifest) decides; without it the default is the unsharded engine.
  std::size_t shards = static_cast<std::size_t>(ParseUint64OrDie(
      FlagOr(flags, "shards", "0"), "shards", usage, 0, 65535));
  auto scheme = ParseShardScheme(FlagOr(flags, "shard-scheme", "contiguous"));
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\nusage: %s\n", scheme.status().ToString().c_str(),
                 usage);
    return 2;
  }
  std::vector<std::string> worker_addrs;
  if (flags.count("shard-workers")) {
    std::stringstream ss(flags.at("shard-workers"));
    std::string addr;
    while (std::getline(ss, addr, ',')) {
      if (!addr.empty()) worker_addrs.push_back(addr);
    }
    if (worker_addrs.empty()) {
      DieBadFlag("shard-workers", flags.at("shard-workers"), usage);
    }
  }

  SknnEngine::Options base_options;
  base_options.c1_threads = threads;
  // Front-end (C1-side) randomizer pool refill strategy; the remote C2
  // server picks its own via sknn_c2_server --no-short-randomizers.
  base_options.short_randomizers = !flags.count("no-short-randomizers");

  TableRegistry registry;
  const std::vector<std::string> table_flags = FlagValues(flag_list, "table");
  if (!table_flags.empty()) {
    // The single-table-only globals must not be silently ignored: an
    // operator who writes `--shards 4 --table ...` expects sharding, and
    // getting an unsharded server instead would only surface under load.
    for (const char* single_only : {"shard-workers", "shards",
                                    "shard-scheme", "db", "clusters"}) {
      if (flags.count(single_only)) {
        std::fprintf(stderr,
                     "--%s applies to the single-table form only; with "
                     "--table, put db/manifest/shards/scheme inside each "
                     "table spec\nusage: %s\n",
                     single_only, usage);
        return 2;
      }
    }
  }

  // Every table is registered with its resolved spec string, so
  // kReloadTable can rebuild it from scratch (same artifacts, fresh
  // engine) without the admin repeating the command line.
  std::vector<TableSpec> specs;
  if (table_flags.empty()) {
    // The single-table form: global flags describe the sole table, served
    // under the name "default" (clients with an empty table name reach it).
    TableSpec spec;
    spec.name = "default";
    spec.pk_path = RequireFlag(flags, "public", usage);
    spec.c2_host = c2_host;
    spec.c2_port = ParsePortOrDie(RequireFlag(flags, "c2-port", usage),
                                  "c2-port", usage);
    spec.shards = shards;
    spec.scheme = *scheme;
    spec.clusters_path = FlagOr(flags, "clusters", "");
    spec.worker_addrs = worker_addrs;
    // With remote shard workers the front end hosts no records; the
    // database is only required (and only loaded) when this process runs
    // the protocol over Epk(T) itself.
    if (worker_addrs.empty()) {
      spec.db_path = RequireFlag(flags, "db", usage);
    }
    specs.push_back(std::move(spec));
  } else {
    for (const std::string& text : table_flags) {
      TableSpec spec = ParseTableSpec(text, usage);
      if (spec.pk_path.empty()) {
        spec.pk_path = RequireFlag(flags, "public", usage);
      }
      if (spec.c2_host.empty()) spec.c2_host = c2_host;
      if (spec.c2_port == 0) {
        spec.c2_port = ParsePortOrDie(RequireFlag(flags, "c2-port", usage),
                                      "c2-port", usage);
      }
      specs.push_back(std::move(spec));
    }
  }
  for (const TableSpec& spec : specs) {
    auto engine = BuildTableEngine(spec, base_options);
    if (!engine.ok()) {
      std::fprintf(stderr, "table '%s' setup failed: %s\n", spec.name.c_str(),
                   engine.status().ToString().c_str());
      return 1;
    }
    if (Status s = registry.Register(spec.name, std::move(engine).value(),
                                     FormatTableSpec(spec));
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    // QoS knobs land on the registry entry, where QueryService::Start reads
    // them when building the fair-admission table and where the per-table
    // cache lives.
    TableRegistry::Entry* entry = registry.Find(spec.name);
    entry->qos_weight = spec.weight;
    entry->qos_rate = spec.rate;
    entry->qos_burst = spec.burst;
    entry->cache.set_budget(spec.cache_bytes, ResultCache::kDefaultMaxEntries);
  }

  QueryService::Options service_options;
  service_options.max_in_flight = max_in_flight;
  QueryService service(&registry, service_options);
  if (flags.count("api-keys")) {
    auto auth = ApiKeyAuth::LoadFromFile(flags.at("api-keys"));
    if (!auth.ok()) {
      std::fprintf(stderr, "--api-keys: %s\n",
                   auth.status().ToString().c_str());
      return 1;
    }
    service.set_api_key_auth(std::move(auth).value());
  }
  // Hot reload: kReloadTable hands this loader the recorded (or an
  // admin-supplied) spec string; the fresh engine is built beside the live
  // one and swapped in by the registry.
  service.set_table_loader(
      [base_options](const std::string& name, const std::string& spec)
          -> Result<std::unique_ptr<SknnEngine>> {
        if (spec.empty()) {
          return Status::FailedPrecondition(
              "table '" + name +
              "' has no recorded build spec; pass one with the reload");
        }
        SKNN_ASSIGN_OR_RETURN(TableSpec parsed, TryParseTableSpec(spec));
        parsed.name = name;  // the frame's table name wins over the spec's
        return BuildTableEngine(parsed, base_options);
      });
  if (Status s = service.Start(port); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  // The main loop polls; the handler only needs to set the flag (no
  // blocked accept to wake — QueryService owns its own listener thread).
  InstallShutdownHandler(-1);

  std::printf("C1 query front end serving on 127.0.0.1:%u "
              "(protocol rev %u, %zu table%s, threads=%zu, "
              "max-in-flight=%zu)\n",
              service.port(), kProtocolRevision, registry.size(),
              registry.size() == 1 ? "" : "s", threads, max_in_flight);
  for (const sknn::TableRegistry::Entry* entry : registry.snapshot()) {
    const SknnEngine::Info info = entry->engine()->info();
    std::printf("  table %-16s n=%zu m=%zu attr_bits=%u shards=%zu%s",
                entry->name.c_str(), info.num_records, info.num_attributes,
                info.attr_bits, info.num_shards,
                info.remote_shard_workers ? " (remote workers)" : "");
    if (info.num_clusters > 0) {
      std::printf(" clusters=%u", info.num_clusters);
    }
    std::printf(" weight=%u cache=%zu\n",
                entry->qos_weight, entry->cache.max_bytes());
  }
  std::fflush(stdout);

  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (ShutdownRequested()) break;
    if (target_queries < 0) continue;
    QueryService::Stats stats = service.stats();
    if (stats.queries_completed + stats.queries_failed >=
        static_cast<uint64_t>(target_queries)) {
      break;
    }
  }
  // Drain before Shutdown: the Nth completion is counted a hair before the
  // response frame is written, so wait (bounded) for the clients to read
  // their answers and hang up rather than cutting the last send off.
  for (int grace = 0; grace < 100 && service.active_sessions() > 0; ++grace) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  QueryService::Stats stats = service.stats();
  service.Shutdown();
  std::printf("served %llu queries (%llu failed, %llu rejected)%s; "
              "shutting down\n",
              static_cast<unsigned long long>(stats.queries_completed),
              static_cast<unsigned long long>(stats.queries_failed),
              static_cast<unsigned long long>(stats.queries_rejected),
              ShutdownRequested() ? " on signal" : "");
  return 0;
}
