// sknn_c1_server — the standing C1 query front end of the serving
// deployment (docs/DEPLOY.md).
//
//   sknn_c1_server --public pk.txt --db db.bin --port 9100 \
//                  --c2-host 127.0.0.1 --c2-port 9000 \
//                  [--threads N] [--max-in-flight M] [--queries N] \
//                  [--shards S] [--shard-scheme contiguous|roundrobin] \
//                  [--shard-workers host:port,host:port,...]
//
// Loads the public key and the encrypted database ONCE, connects to the
// standalone C2 key holder, and serves any number of thin clients
// (sknn_query / serve/RemoteQueryClient) speaking QueryRequest/QueryResponse
// frames on --port. Up to --threads admitted queries execute concurrently
// over the shared C1 pool; beyond --max-in-flight, requests are rejected
// with ResourceExhausted so clients back off instead of piling into an
// unbounded queue.
//
// Sharded record fan-out (same wire contract, per-shard stats in every
// response): --shards S partitions Epk(T) into S in-process shards; with
// --shard-workers the shards instead live in standing sknn_c1_shard worker
// processes (one address per shard, any order — the workers' manifest is
// cross-checked at connect) and --db may be omitted, since this process
// then never hosts records itself.
//
// --queries N exits after N queries have been answered (scripted smoke
// runs); the default serves until killed.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "core/db_io.h"
#include "core/engine.h"
#include "crypto/serialization.h"
#include "net/socket.h"
#include "serve/query_service.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace sknn;
  using namespace sknn::tools;
  const char* usage =
      "sknn_c1_server --public <pk> [--db <db.bin>] --port <p> "
      "--c2-host <ip> --c2-port <p> [--threads N] [--max-in-flight M] "
      "[--queries N] [--shards S] [--shard-scheme contiguous|roundrobin] "
      "[--shard-workers host:port,...]";
  auto flags = ParseFlags(argc, argv);
  std::string pk_path = RequireFlag(flags, "public", usage);
  uint16_t port = ParsePortOrDie(RequireFlag(flags, "port", usage), "port",
                                 usage);
  std::string c2_host = FlagOr(flags, "c2-host", "127.0.0.1");
  uint16_t c2_port = ParsePortOrDie(RequireFlag(flags, "c2-port", usage),
                                    "c2-port", usage);
  std::size_t threads = static_cast<std::size_t>(ParseUint64OrDie(
      FlagOr(flags, "threads", "1"), "threads", usage, 1, 4096));
  std::size_t max_in_flight = static_cast<std::size_t>(ParseUint64OrDie(
      FlagOr(flags, "max-in-flight", "8"), "max-in-flight", usage, 1, 65536));
  int64_t target_queries = ParseInt64OrDie(FlagOr(flags, "queries", "-1"),
                                           "queries", usage, -1);
  // 0 = "not set": with --shard-workers the worker count (and the workers'
  // manifest) decides; without it the default is the unsharded engine.
  std::size_t shards = static_cast<std::size_t>(ParseUint64OrDie(
      FlagOr(flags, "shards", "0"), "shards", usage, 0, 65535));
  auto scheme = ParseShardScheme(FlagOr(flags, "shard-scheme", "contiguous"));
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\nusage: %s\n", scheme.status().ToString().c_str(),
                 usage);
    return 2;
  }
  std::vector<std::string> worker_addrs;
  if (flags.count("shard-workers")) {
    std::stringstream ss(flags.at("shard-workers"));
    std::string addr;
    while (std::getline(ss, addr, ',')) {
      if (!addr.empty()) worker_addrs.push_back(addr);
    }
    if (worker_addrs.empty()) {
      DieBadFlag("shard-workers", flags.at("shard-workers"), usage);
    }
  }
  if (worker_addrs.empty() && shards == 0) shards = 1;

  auto pk = ReadPublicKeyFile(pk_path);
  if (!pk.ok()) {
    std::fprintf(stderr, "%s\n", pk.status().ToString().c_str());
    return 1;
  }
  // With remote shard workers the front end hosts no records; the database
  // is only required (and only loaded) when this process runs the protocol
  // over Epk(T) itself.
  EncryptedDatabase db;
  if (worker_addrs.empty()) {
    std::string db_path = RequireFlag(flags, "db", usage);
    auto loaded = ReadEncryptedDatabase(db_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    if (Status s = ValidateCiphertexts(*loaded, *pk); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    db = std::move(loaded).value();
  }

  auto c2_link = ConnectTcp(c2_host, c2_port);
  if (!c2_link.ok()) {
    std::fprintf(stderr, "cannot reach C2 at %s:%u: %s\n", c2_host.c_str(),
                 c2_port, c2_link.status().ToString().c_str());
    return 1;
  }

  SknnEngine::Options options;
  options.c1_threads = threads;
  auto engine = QueryService::CreateShardedEngine(
      *pk, std::move(db), std::move(c2_link).value(), options, shards,
      *scheme, worker_addrs);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine setup failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  const std::size_t n = (*engine)->num_records();
  const std::size_t m = (*engine)->num_attributes();
  const std::size_t effective_shards =
      (*engine)->shard_coordinator() != nullptr
          ? (*engine)->shard_coordinator()->manifest().num_shards
          : 1;

  QueryService::Options service_options;
  service_options.max_in_flight = max_in_flight;
  QueryService service(engine->get(), service_options);
  if (Status s = service.Start(port); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "C1 query front end serving on 127.0.0.1:%u "
      "(n=%zu records, m=%zu attributes, threads=%zu, max-in-flight=%zu, "
      "shards=%zu%s)\n",
      service.port(), n, m, threads, max_in_flight, effective_shards,
      worker_addrs.empty() ? "" : " via workers");
  std::fflush(stdout);

  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (target_queries < 0) continue;
    QueryService::Stats stats = service.stats();
    if (stats.queries_completed + stats.queries_failed >=
        static_cast<uint64_t>(target_queries)) {
      break;
    }
  }
  // Drain before Shutdown: the Nth completion is counted a hair before the
  // response frame is written, so wait (bounded) for the clients to read
  // their answers and hang up rather than cutting the last send off.
  for (int grace = 0; grace < 100 && service.active_sessions() > 0; ++grace) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  QueryService::Stats stats = service.stats();
  service.Shutdown();
  std::printf("served %llu queries (%llu failed, %llu rejected); "
              "shutting down\n",
              static_cast<unsigned long long>(stats.queries_completed),
              static_cast<unsigned long long>(stats.queries_failed),
              static_cast<unsigned long long>(stats.queries_rejected));
  return 0;
}
