// sknn_c2_server — the standalone key-holder cloud C2.
//
//   sknn_c2_server --secret sk.txt --port 9000 [--workers 2]
//                  [--connections N] [--pool-capacity N]
//                  [--no-randomizer-pool] [--no-short-randomizers]
//
// Serves the C2 side of every sub-protocol over TCP. C1 connects with one
// link; each querying user (Bob) connects with his own link to pick up
// results — C2 never routes Bob's data through C1. With --connections N the
// server exits after N links close (for scripted runs); otherwise it serves
// until SIGINT/SIGTERM, either of which stops accepting, drains in-flight
// handlers and exits 0. --workers also enables intra-message fan-out for
// the vectorized opcodes; the response-encryption randomizer pool is on by
// default (disable it to measure the paper's unamortized cost), holds
// --pool-capacity precomputed r^N values, and refills on background threads
// sized from --workers. Refills use the short-exponent fixed-base path
// (docs/CRYPTO.md); --no-short-randomizers selects the assumption-free
// full-width reference generation instead.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "crypto/serialization.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "proto/c2_service.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace sknn;
  using namespace sknn::tools;
  const char* usage =
      "sknn_c2_server --secret <sk-file> --port <p> [--workers N] "
      "[--connections N] [--pool-capacity N] [--no-randomizer-pool] "
      "[--no-short-randomizers]";
  auto flags = ParseFlags(argc, argv);
  std::string sk_path = RequireFlag(flags, "secret", usage);
  uint16_t port = ParsePortOrDie(RequireFlag(flags, "port", usage), "port",
                                 usage);
  std::size_t workers = static_cast<std::size_t>(ParseUint64OrDie(
      FlagOr(flags, "workers", "1"), "workers", usage, 1, 4096));
  long connections = static_cast<long>(ParseInt64OrDie(
      FlagOr(flags, "connections", "-1"), "connections", usage, -1));
  std::size_t pool_capacity = static_cast<std::size_t>(
      ParseUint64OrDie(FlagOr(flags, "pool-capacity", "4096"),
                       "pool-capacity", usage, 1, uint64_t{1} << 30));

  auto sk = ReadSecretKeyFile(sk_path);
  if (!sk.ok()) {
    std::fprintf(stderr, "%s\n", sk.status().ToString().c_str());
    return 1;
  }
  C2Service c2(std::move(sk).value());
  if (workers > 1) c2.EnableIntraMessageParallelism(workers);
  if (!flags.count("no-randomizer-pool")) {
    // Refill threads scale with the serving fan-out: half the handler
    // workers (at least one) keeps the stock warm under load without
    // starving the handlers themselves of cores.
    RandomizerPoolOptions pool_options;
    pool_options.workers = std::max<std::size_t>(1, workers / 2);
    pool_options.short_exponents = !flags.count("no-short-randomizers");
    c2.EnableRandomizerPool(pool_capacity, pool_options);
  }

  auto listener = TcpListener::Bind(port);
  if (!listener.ok()) {
    std::fprintf(stderr, "%s\n", listener.status().ToString().c_str());
    return 1;
  }
  // SIGINT/SIGTERM: the handler shutdown(2)s the listening fd, so the
  // blocked Accept below returns and the drain path runs.
  InstallShutdownHandler(listener->native_handle());
  std::printf("C2 key-holder serving on 127.0.0.1:%u (workers=%zu)\n",
              listener->port(), workers);
  std::fflush(stdout);

  std::vector<std::unique_ptr<RpcServer>> sessions;
  for (long served = 0; connections < 0 || served < connections; ++served) {
    auto endpoint = listener->Accept();
    if (ShutdownRequested()) break;
    if (!endpoint.ok()) {
      std::fprintf(stderr, "accept failed: %s\n",
                   endpoint.status().ToString().c_str());
      break;
    }
    std::printf("connection %ld established\n", served + 1);
    std::fflush(stdout);
    sessions.push_back(std::make_unique<RpcServer>(
        std::move(endpoint).value(),
        [&c2](const Message& req) { return c2.Handle(req); }, workers));
  }
  if (ShutdownRequested()) {
    // Signal: unbind (done — the handler killed the listener), finish any
    // in-flight handlers, close the links, exit clean.
    listener->Close();
    for (auto& session : sessions) session->Shutdown();
    std::printf("signal received; drained %zu connection%s and shut down\n",
                sessions.size(), sessions.size() == 1 ? "" : "s");
    return 0;
  }
  // Scripted mode: serve every accepted link to completion, then exit.
  for (auto& session : sessions) session->WaitForClose();
  std::printf("all connections closed; shutting down\n");
  return 0;
}
