// sknn_encrypt — Alice's outsourcing step: attribute-wise encryption of a
// CSV table into the binary database C1 hosts.
//
//   sknn_encrypt --public pk.txt --csv patients.csv --attr-bits 9 \
//                --out db.bin [--skip-header] \
//                [--shards s [--shard-scheme contiguous|roundrobin] \
//                 --manifest-out manifest.bin] \
//                [--clusters c [--cluster-seed s] --clusters-out cl.bin]
//
// With --shards, Alice also emits the shard manifest (core/sharding.h) —
// the small artifact every sknn_c1_shard worker and the coordinator load
// (--manifest) so the partitioning provably agrees across the deployment.
//
// With --clusters, Alice learns a k-means partitioning over her PLAINTEXT
// records (core/clustering.h — the one party who may see them) and emits
// the cluster manifest: assignments plus Paillier-encrypted centroids, the
// artifact behind the clustered (approximate) index mode. Deterministic for
// a fixed --cluster-seed, so re-exports agree across the deployment.
#include <cstdio>

#include "bigint/random.h"
#include "core/clustering.h"
#include "core/data_owner.h"
#include "core/db_io.h"
#include "crypto/serialization.h"
#include "data/csv.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace sknn;
  using namespace sknn::tools;
  const char* usage =
      "sknn_encrypt --public <pk> --csv <table.csv> --attr-bits <a> --out "
      "<db.bin> [--skip-header] [--shards s [--shard-scheme x] "
      "--manifest-out <file>] [--clusters c [--cluster-seed s] "
      "--clusters-out <file>]";
  auto flags = ParseFlags(argc, argv);
  std::string pk_path = RequireFlag(flags, "public", usage);
  std::string csv_path = RequireFlag(flags, "csv", usage);
  std::string out_path = RequireFlag(flags, "out", usage);
  unsigned attr_bits = static_cast<unsigned>(ParseUint64OrDie(
      RequireFlag(flags, "attr-bits", usage), "attr-bits", usage, 1, 62));
  bool skip_header = flags.count("skip-header") > 0;

  auto pk = ReadPublicKeyFile(pk_path);
  if (!pk.ok()) {
    std::fprintf(stderr, "%s\n", pk.status().ToString().c_str());
    return 1;
  }
  auto table = ReadCsv(csv_path, skip_header);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  const std::size_t n = table->size(), m = (*table)[0].size();
  const int64_t bound = int64_t{1} << attr_bits;
  EncryptedDatabase db;
  db.records.reserve(n);
  Random& rng = Random::ThreadLocal();
  for (const auto& row : *table) {
    std::vector<Ciphertext> enc_row;
    enc_row.reserve(m);
    for (int64_t v : row) {
      if (v < 0 || v >= bound) {
        std::fprintf(stderr,
                     "value %lld outside [0, 2^%u) — re-encode the table "
                     "(see data/encoding.h)\n",
                     static_cast<long long>(v), attr_bits);
        return 1;
      }
      enc_row.push_back(pk->Encrypt(BigInt(v), rng));
    }
    db.records.push_back(std::move(enc_row));
  }
  db.distance_bits = DataOwner::RequiredDistanceBits(m, attr_bits);

  Status s = WriteEncryptedDatabase(out_path, db);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("encrypted %zu records x %zu attributes -> %s (l = %u bits)\n",
              n, m, out_path.c_str(), db.distance_bits);

  if (flags.count("shards")) {
    std::string manifest_path = RequireFlag(flags, "manifest-out", usage);
    std::size_t shards = static_cast<std::size_t>(ParseUint64OrDie(
        flags.at("shards"), "shards", usage, 1, 65535));
    auto scheme =
        ParseShardScheme(FlagOr(flags, "shard-scheme", "contiguous"));
    if (!scheme.ok()) {
      std::fprintf(stderr, "%s\nusage: %s\n",
                   scheme.status().ToString().c_str(), usage);
      return 2;
    }
    auto manifest = MakeShardManifest(n, shards, *scheme);
    if (!manifest.ok()) {
      std::fprintf(stderr, "%s\n", manifest.status().ToString().c_str());
      return 1;
    }
    if (Status ms = WriteShardManifest(manifest_path, *manifest); !ms.ok()) {
      std::fprintf(stderr, "%s\n", ms.ToString().c_str());
      return 1;
    }
    std::printf("shard manifest (%zu %s shards) -> %s\n", shards,
                ShardSchemeName(*scheme), manifest_path.c_str());
  }

  if (flags.count("clusters")) {
    std::string clusters_path = RequireFlag(flags, "clusters-out", usage);
    uint32_t num_clusters = static_cast<uint32_t>(ParseUint64OrDie(
        flags.at("clusters"), "clusters", usage, 1, 65535));
    uint64_t seed = ParseUint64OrDie(FlagOr(flags, "cluster-seed", "1"),
                                     "cluster-seed", usage, 0,
                                     UINT64_MAX);
    auto clusters = BuildClusterManifest(*table, num_clusters, seed, *pk);
    if (!clusters.ok()) {
      std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
      return 1;
    }
    if (Status cs = WriteClusterManifest(clusters_path, *clusters);
        !cs.ok()) {
      std::fprintf(stderr, "%s\n", cs.ToString().c_str());
      return 1;
    }
    std::printf("cluster manifest (%u clusters, seed %llu) -> %s\n",
                clusters->num_clusters,
                static_cast<unsigned long long>(seed), clusters_path.c_str());
  }
  return 0;
}
