// sknn_c1_shard — one C1 shard worker of the sharded serving deployment
// (docs/DEPLOY.md).
//
//   sknn_c1_shard --public pk.txt --db db.bin --port 9200 \
//                 --c2-host 127.0.0.1 --c2-port 9000 \
//                 --shards 4 --shard-index 1 [--scheme contiguous] \
//                 [--manifest manifest.bin] [--clusters clusters.bin] \
//                 [--threads N] [--connections N]
//
// Loads the public key and the FULL encrypted database once, keeps only its
// shard of the records (the manifest — either derived from --shards /
// --scheme or loaded from --manifest, which wins — says which), connects to
// the C2 key holder, and serves the coordinator's kShardPing / kShardQuery
// frames (net/shard_wire.h) on --port. Every worker of one deployment must
// be launched with the SAME manifest parameters against the SAME database;
// the coordinator cross-checks this at connect time and refuses a
// mismatched set.
//
// --clusters (instead of --shards/--scheme/--manifest) makes this worker
// shard `--shard-index` of a CLUSTER-partitioned deployment: it hosts the
// records of cluster i of the sknn_encrypt --clusters manifest, so a
// clustered front end can prune this whole worker out of a query.
//
// --connections N exits after N coordinator links close (scripted smoke
// runs); the default serves until SIGINT/SIGTERM, either of which stops
// accepting, drains in-flight shard stages and exits 0.
#include <cstdio>
#include <optional>
#include <vector>

#include "core/db_io.h"
#include "crypto/serialization.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "serve/shard_worker.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace sknn;
  using namespace sknn::tools;
  const char* usage =
      "sknn_c1_shard --public <pk> --db <db.bin> --port <p> "
      "--c2-host <ip> --c2-port <p> --shards <s> --shard-index <i> "
      "[--scheme contiguous|roundrobin] [--manifest <file>] "
      "[--clusters <file>] [--threads N] [--connections N]";
  auto flags = ParseFlags(argc, argv);
  std::string pk_path = RequireFlag(flags, "public", usage);
  std::string db_path = RequireFlag(flags, "db", usage);
  uint16_t port = ParsePortOrDie(RequireFlag(flags, "port", usage), "port",
                                 usage);
  std::string c2_host = FlagOr(flags, "c2-host", "127.0.0.1");
  uint16_t c2_port = ParsePortOrDie(RequireFlag(flags, "c2-port", usage),
                                    "c2-port", usage);
  std::size_t shard_index = static_cast<std::size_t>(ParseUint64OrDie(
      RequireFlag(flags, "shard-index", usage), "shard-index", usage, 0,
      65535));
  std::size_t threads = static_cast<std::size_t>(ParseUint64OrDie(
      FlagOr(flags, "threads", "1"), "threads", usage, 1, 4096));
  long connections = static_cast<long>(ParseInt64OrDie(
      FlagOr(flags, "connections", "-1"), "connections", usage, -1));

  auto pk = ReadPublicKeyFile(pk_path);
  if (!pk.ok()) {
    std::fprintf(stderr, "%s\n", pk.status().ToString().c_str());
    return 1;
  }
  auto db = ReadEncryptedDatabase(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  if (Status s = ValidateCiphertexts(*db, *pk); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  ShardManifest manifest;
  std::optional<ClusterManifest> clusters;
  if (flags.count("clusters")) {
    auto loaded = ReadClusterManifest(flags.at("clusters"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    clusters = std::move(loaded).value();
    if (Status s = ValidateClusterManifestForDatabase(*clusters, *db);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    auto made = MakeShardManifest(db->num_records(), clusters->num_clusters,
                                  ShardScheme::kByCluster);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    manifest = std::move(made).value();
  } else if (flags.count("manifest")) {
    auto loaded = ReadShardManifest(flags.at("manifest"));
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    manifest = std::move(loaded).value();
    // A manifest from a different export would misassign every record;
    // refuse to serve rather than answer wrong.
    if (Status s = ValidateManifestForDatabase(manifest, *db); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  } else {
    std::size_t shards = static_cast<std::size_t>(ParseUint64OrDie(
        RequireFlag(flags, "shards", usage), "shards", usage, 1, 65535));
    auto scheme = ParseShardScheme(FlagOr(flags, "scheme", "contiguous"));
    if (!scheme.ok()) {
      std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
      return 1;
    }
    auto made = MakeShardManifest(db->num_records(), shards, *scheme);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    manifest = std::move(made).value();
  }

  auto c2_link = ConnectTcp(c2_host, c2_port);
  if (!c2_link.ok()) {
    std::fprintf(stderr, "cannot reach C2 at %s:%u: %s\n", c2_host.c_str(),
                 c2_port, c2_link.status().ToString().c_str());
    return 1;
  }

  ShardWorker::Options options;
  options.threads = threads;
  auto worker =
      clusters.has_value()
          ? ShardWorker::Create(*pk, *db, *clusters, shard_index,
                                std::move(c2_link).value(), options)
          : ShardWorker::Create(*pk, *db, manifest, shard_index,
                                std::move(c2_link).value(), options);
  if (!worker.ok()) {
    std::fprintf(stderr, "shard worker setup failed: %s\n",
                 worker.status().ToString().c_str());
    return 1;
  }
  db->records.clear();  // only the slice is needed from here on

  auto listener = TcpListener::Bind(port);
  if (!listener.ok()) {
    std::fprintf(stderr, "%s\n", listener.status().ToString().c_str());
    return 1;
  }
  // SIGINT/SIGTERM: wake the blocked Accept and run the drain path below.
  InstallShutdownHandler(listener->native_handle());
  std::printf(
      "C1 shard %zu/%zu (%s, %zu records) serving on 127.0.0.1:%u\n",
      shard_index, manifest.num_shards, ShardSchemeName(manifest.scheme),
      (*worker)->shard_records(), listener->port());
  std::fflush(stdout);

  ShardWorker* worker_raw = worker->get();
  std::vector<std::unique_ptr<RpcServer>> sessions;
  for (long served = 0; connections < 0 || served < connections; ++served) {
    auto endpoint = listener->Accept();
    if (ShutdownRequested()) break;
    if (!endpoint.ok()) {
      std::fprintf(stderr, "accept failed: %s\n",
                   endpoint.status().ToString().c_str());
      break;
    }
    std::printf("coordinator connection %ld established\n", served + 1);
    std::fflush(stdout);
    sessions.push_back(std::make_unique<RpcServer>(
        std::move(endpoint).value(),
        [worker_raw](const Message& req) { return worker_raw->Handle(req); },
        threads));
  }
  if (ShutdownRequested()) {
    listener->Close();
    for (auto& session : sessions) session->Shutdown();
    std::printf("signal received; drained %zu coordinator connection%s and "
                "shut down\n",
                sessions.size(), sessions.size() == 1 ? "" : "s");
    return 0;
  }
  for (auto& session : sessions) session->WaitForClose();
  std::printf("all coordinator connections closed; shutting down\n");
  return 0;
}
