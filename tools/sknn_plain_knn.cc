// sknn_plain_knn — the plaintext kNN oracle as a CLI, for diffing the
// secure deployment's answers in scripted smoke runs (scripts/
// smoke_deploy.sh): same CSV, same query, no cryptography.
//
//   sknn_plain_knn --csv table.csv --query "1,2,3" --k 2 \
//                  [--skip-header] [--farthest]
//
// Output: k rows of comma-separated attributes, nearest first (farthest
// first with --farthest) — the same row format sknn_query prints after its
// header line. Ties are broken by lower record index, the same
// deterministic order the protocols implement (core/sknn_m.h tie-break
// augmentation), so the diff is exact even on tied-distance data.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "baseline/plaintext_knn.h"
#include "data/csv.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace sknn;
  using namespace sknn::tools;
  const char* usage =
      "sknn_plain_knn --csv <table.csv> --query \"v1,v2,...\" --k <k> "
      "[--skip-header] [--farthest]";
  auto flags = ParseFlags(argc, argv);
  std::string csv_path = RequireFlag(flags, "csv", usage);
  PlainRecord query = ParseRecord(RequireFlag(flags, "query", usage), usage);
  std::size_t k = static_cast<std::size_t>(ParseUint64OrDie(
      RequireFlag(flags, "k", usage), "k", usage, 1, 1u << 30));
  bool skip_header = flags.count("skip-header") > 0;
  bool farthest = flags.count("farthest") > 0;

  auto table = ReadCsv(csv_path, skip_header);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  if (table->empty() || (*table)[0].size() != query.size()) {
    std::fprintf(stderr, "query has %zu attributes, table has %zu\n",
                 query.size(),
                 table->empty() ? std::size_t{0} : (*table)[0].size());
    return 1;
  }
  if (k > table->size()) {
    std::fprintf(stderr, "k = %zu exceeds the %zu table records\n", k,
                 table->size());
    return 1;
  }

  std::vector<std::size_t> order;
  if (farthest) {
    order.resize(table->size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return SquaredDistance((*table)[a], query) >
                              SquaredDistance((*table)[b], query);
                     });
    order.resize(k);
  } else {
    order = PlainKnnIndices(*table, query, static_cast<unsigned>(k));
  }
  for (std::size_t i : order) {
    const PlainRecord& row = (*table)[i];
    for (std::size_t j = 0; j < row.size(); ++j) {
      std::printf("%s%lld", j ? "," : "", static_cast<long long>(row[j]));
    }
    std::printf("\n");
  }
  return 0;
}
