// sknn_keygen — Alice's key ceremony.
//
//   sknn_keygen --bits 1024 --public pk.txt --secret sk.txt
//
// The public key file travels with the encrypted database to C1 (and to
// every authorized user); the secret key file goes to C2 only.
#include <cstdio>

#include "crypto/serialization.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace sknn;
  using namespace sknn::tools;
  const char* usage =
      "sknn_keygen --bits <N> --public <pk-file> --secret <sk-file>";
  auto flags = ParseFlags(argc, argv);
  unsigned bits = static_cast<unsigned>(ParseUint64OrDie(
      FlagOr(flags, "bits", "1024"), "bits", usage, 16, 1u << 20));
  std::string pk_path = RequireFlag(flags, "public", usage);
  std::string sk_path = RequireFlag(flags, "secret", usage);

  auto keys = GeneratePaillierKeyPair(bits);
  if (!keys.ok()) {
    std::fprintf(stderr, "keygen failed: %s\n",
                 keys.status().ToString().c_str());
    return 1;
  }
  Status s = WritePublicKeyFile(pk_path, keys->pk);
  if (s.ok()) s = WriteSecretKeyFile(sk_path, keys->sk);
  if (!s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("generated %u-bit Paillier key pair\n  public: %s\n  secret: %s"
              "\n(ship the secret key to C2 only)\n",
              bits, pk_path.c_str(), sk_path.c_str());
  return 0;
}
