// sknn_admin — operator's window into a serving front end.
//
//   sknn_admin --host 127.0.0.1 --port 9100 <command>
//     --hello              negotiation check: protocol revision + features
//     --list-tables        the served table names, one per line
//     --table-info [name]  one table's geometry + shard topology
//                          (no name = every table)
//     --stats              uptime, in-flight, per-table admission counters,
//                          per-cloud randomizer-pool hit/miss/stock rows
//     --health             per-table, per-shard replica liveness: health,
//                          consecutive failures, failover count, last-ok age
//     --reload-table name [--spec spec]
//                          hot reload: rebuild the table (from --spec, or
//                          the spec recorded at startup) and swap it in
//                          under live traffic
//     --detach-table name  tombstone the table: queries answer kNotFound
//                          until a reload revives it
//
// Control plane over the data port: every command is one hello handshake
// plus one frame of net/query_wire.h through the same port the data path
// uses, so what this prints is exactly what any RemoteQueryClient can
// learn (and the mutations exactly what any client could send). Exit 0 on
// success, 1 on any error (including a front end from the wrong protocol
// era, which answers the hello with a typed status instead of garbage).
#include <cstdio>
#include <string>

#include "core/sharding.h"
#include "serve/remote_query_client.h"
#include "tools/tool_util.h"

namespace {

using namespace sknn;

int PrintTableInfo(RemoteQueryClient& client, const std::string& name) {
  auto info = client.TableInfo(name);
  if (!info.ok()) {
    std::fprintf(stderr, "table-info failed: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("table %s\n", info->name.c_str());
  std::printf("  records        %llu\n",
              static_cast<unsigned long long>(info->num_records));
  std::printf("  attributes     %u\n", info->num_attributes);
  std::printf("  attr_bits      %u   (values in [0, 2^%u))\n",
              info->attr_bits, info->attr_bits);
  std::printf("  k_max          %u\n", info->k_max);
  std::printf("  distance_bits  %u\n", info->distance_bits);
  if (info->num_shards > 1) {
    std::printf("  shards         %u (%s, %s)\n", info->num_shards,
                ShardSchemeName(static_cast<ShardScheme>(info->shard_scheme)),
                info->remote_workers ? "remote workers" : "in-process");
  } else {
    std::printf("  shards         1 (unsharded)\n");
  }
  if (info->num_clusters > 0) {
    std::printf("  clusters       %u   (clustered index: probe_clusters in "
                "[1, %u])\n",
                info->num_clusters, info->num_clusters);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sknn::tools;
  const char* usage =
      "sknn_admin --host <ip> --port <p> "
      "(--hello | --list-tables | --table-info [name] | --stats | --health | "
      "--reload-table <name> [--spec <spec>] | --detach-table <name>)";
  auto flags = ParseFlags(argc, argv);
  std::string host = FlagOr(flags, "host", "127.0.0.1");
  uint16_t port = ParsePortOrDie(RequireFlag(flags, "port", usage), "port",
                                 usage);

  auto client = RemoteQueryClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "cannot reach front end at %s:%u: %s\n",
                 host.c_str(), port, client.status().ToString().c_str());
    return 1;
  }

  if (flags.count("hello")) {
    auto ack = (*client)->Hello();
    if (!ack.ok()) {
      std::fprintf(stderr, "hello failed: %s\n",
                   ack.status().ToString().c_str());
      return 1;
    }
    std::printf("protocol revision %u, features 0x%x, %u table%s\n",
                ack->revision, ack->features, ack->num_tables,
                ack->num_tables == 1 ? "" : "s");
    return 0;
  }
  if (flags.count("list-tables")) {
    auto tables = (*client)->ListTables();
    if (!tables.ok()) {
      std::fprintf(stderr, "list-tables failed: %s\n",
                   tables.status().ToString().c_str());
      return 1;
    }
    for (const std::string& name : *tables) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (flags.count("table-info")) {
    std::string name = flags.at("table-info");
    if (name != "true") return PrintTableInfo(**client, name);
    // "true" is the flag parser's bare-flag sentinel, but it is also a
    // legal table name — resolve the collision in favor of a real table
    // with that name; only fall back to print-every-table when none exists.
    auto tables = (*client)->ListTables();
    if (!tables.ok()) {
      std::fprintf(stderr, "list-tables failed: %s\n",
                   tables.status().ToString().c_str());
      return 1;
    }
    for (const std::string& table : *tables) {
      if (table == "true") return PrintTableInfo(**client, table);
    }
    for (const std::string& table : *tables) {
      if (int rc = PrintTableInfo(**client, table); rc != 0) return rc;
    }
    return 0;
  }
  if (flags.count("stats")) {
    auto stats = (*client)->ServiceStats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("uptime %.1fs  connections %llu  in-flight %llu\n",
                stats->uptime_seconds,
                static_cast<unsigned long long>(stats->connections_accepted),
                static_cast<unsigned long long>(stats->in_flight));
    std::printf("%-20s %10s %10s %10s %10s\n", "table", "completed", "failed",
                "rejected", "in-flight");
    for (const TableStatsEntry& table : stats->tables) {
      std::printf("%-20s %10llu %10llu %10llu %10llu\n", table.name.c_str(),
                  static_cast<unsigned long long>(table.completed),
                  static_cast<unsigned long long>(table.failed),
                  static_cast<unsigned long long>(table.rejected),
                  static_cast<unsigned long long>(table.in_flight));
    }
    // Randomizer-pool effectiveness per table and cloud (revision 4).
    // hits/misses = encryptions served from precomputed stock vs inline
    // full modexps; stock/capacity = how warm the pool is right now.
    // capacity 0 = that cloud runs without a pool (row elided).
    std::printf("%-20s %-3s %12s %12s %10s %10s\n", "randomizer pool",
                "", "hits", "misses", "stock", "capacity");
    for (const TableStatsEntry& table : stats->tables) {
      if (table.c1_pool_capacity > 0) {
        std::printf("%-20s %-3s %12llu %12llu %10llu %10llu\n",
                    table.name.c_str(), "C1",
                    static_cast<unsigned long long>(table.c1_pool_hits),
                    static_cast<unsigned long long>(table.c1_pool_misses),
                    static_cast<unsigned long long>(table.c1_pool_stock),
                    static_cast<unsigned long long>(table.c1_pool_capacity));
      }
      if (table.c2_pool_capacity > 0) {
        std::printf("%-20s %-3s %12llu %12llu %10llu %10llu\n",
                    table.name.c_str(), "C2",
                    static_cast<unsigned long long>(table.c2_pool_hits),
                    static_cast<unsigned long long>(table.c2_pool_misses),
                    static_cast<unsigned long long>(table.c2_pool_stock),
                    static_cast<unsigned long long>(table.c2_pool_capacity));
      }
    }
    return 0;
  }
  if (flags.count("health")) {
    auto health = (*client)->Health();
    if (!health.ok()) {
      std::fprintf(stderr, "health failed: %s\n",
                   health.status().ToString().c_str());
      return 1;
    }
    for (const TableHealthEntry& table : health->tables) {
      if (table.replicas.empty()) {
        std::printf("table %-16s (no replicated shard workers)\n",
                    table.name.c_str());
        continue;
      }
      std::printf("table %s\n", table.name.c_str());
      for (const ReplicaHealthEntry& replica : table.replicas) {
        std::printf("  shard %-3u replica %-3u %-9s failures=%u "
                    "failovers=%llu last_ok=%s\n",
                    replica.shard, replica.replica,
                    replica.healthy ? "healthy" : "UNHEALTHY",
                    replica.consecutive_failures,
                    static_cast<unsigned long long>(replica.failovers),
                    replica.last_ok_age_seconds < 0
                        ? "never"
                        : (std::to_string(replica.last_ok_age_seconds) + "s")
                              .c_str());
      }
    }
    return 0;
  }
  if (flags.count("reload-table")) {
    const std::string name = flags.at("reload-table");
    const std::string spec = FlagOr(flags, "spec", "");
    auto acked = (*client)->ReloadTable(name, spec);
    if (!acked.ok()) {
      std::fprintf(stderr, "reload-table failed: %s\n",
                   acked.status().ToString().c_str());
      return 1;
    }
    std::printf("reloaded %s\n", acked->c_str());
    return 0;
  }
  if (flags.count("detach-table")) {
    auto acked = (*client)->DetachTable(flags.at("detach-table"));
    if (!acked.ok()) {
      std::fprintf(stderr, "detach-table failed: %s\n",
                   acked.status().ToString().c_str());
      return 1;
    }
    std::printf("detached %s\n", acked->c_str());
    return 0;
  }
  std::fprintf(stderr, "no command given\nusage: %s\n", usage);
  return 2;
}
