// sknn_admin — operator's window into a serving front end.
//
//   sknn_admin --host 127.0.0.1 --port 9100 [--json] <command>
//     --hello              negotiation check: protocol revision + features
//     --list-tables        the served table names, one per line
//     --table-info [name]  one table's geometry + shard topology
//                          (no name = every table)
//     --stats              uptime, in-flight, per-table admission counters
//                          (weight + fair share since revision 6),
//                          per-cloud randomizer-pool hit/miss/stock rows,
//                          per-table result-cache counters, and — when the
//                          front end authenticates — per-API-key quotas
//     --health             per-table, per-shard replica liveness: health,
//                          consecutive failures, failover count, last-ok age
//     --reload-table name [--spec spec]
//                          hot reload: rebuild the table (from --spec, or
//                          the spec recorded at startup) and swap it in
//                          under live traffic
//     --detach-table name  tombstone the table: queries answer kNotFound
//                          until a reload revives it
//
// --json switches --hello/--list-tables/--table-info/--stats/--health to a
// single JSON document on stdout — the machine-readable form scripted
// deployments (scripts/smoke_deploy.sh) assert against, stable across the
// human-format tweaks the text output is free to make.
//
// Control plane over the data port: every command is one hello handshake
// plus one frame of net/query_wire.h through the same port the data path
// uses, so what this prints is exactly what any RemoteQueryClient can
// learn (and the mutations exactly what any client could send). Exit 0 on
// success, 1 on any error (including a front end from the wrong protocol
// era, which answers the hello with a typed status instead of garbage).
#include <cstdio>
#include <string>
#include <vector>

#include "core/sharding.h"
#include "serve/remote_query_client.h"
#include "tools/tool_util.h"

namespace {

using namespace sknn;

// Minimal JSON string escaping: the names that reach this tool (table
// names, key ids, scheme names) are benign, but a quote or backslash in a
// key id must not break the document.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonU64(uint64_t v) { return std::to_string(v); }

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string TableInfoJson(const TableInfoReply& info) {
  std::string out = "{";
  out += "\"name\":\"" + JsonEscape(info.name) + "\"";
  out += ",\"records\":" + JsonU64(info.num_records);
  out += ",\"attributes\":" + JsonU64(info.num_attributes);
  out += ",\"attr_bits\":" + JsonU64(info.attr_bits);
  out += ",\"k_max\":" + JsonU64(info.k_max);
  out += ",\"distance_bits\":" + JsonU64(info.distance_bits);
  out += ",\"shards\":" + JsonU64(info.num_shards);
  out += ",\"shard_scheme\":\"" +
         JsonEscape(ShardSchemeName(
             static_cast<ShardScheme>(info.shard_scheme))) +
         "\"";
  out += std::string(",\"remote_workers\":") +
         (info.remote_workers ? "true" : "false");
  out += ",\"clusters\":" + JsonU64(info.num_clusters);
  out += "}";
  return out;
}

int PrintTableInfo(RemoteQueryClient& client, const std::string& name) {
  auto info = client.TableInfo(name);
  if (!info.ok()) {
    std::fprintf(stderr, "table-info failed: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf("table %s\n", info->name.c_str());
  std::printf("  records        %llu\n",
              static_cast<unsigned long long>(info->num_records));
  std::printf("  attributes     %u\n", info->num_attributes);
  std::printf("  attr_bits      %u   (values in [0, 2^%u))\n",
              info->attr_bits, info->attr_bits);
  std::printf("  k_max          %u\n", info->k_max);
  std::printf("  distance_bits  %u\n", info->distance_bits);
  if (info->num_shards > 1) {
    std::printf("  shards         %u (%s, %s)\n", info->num_shards,
                ShardSchemeName(static_cast<ShardScheme>(info->shard_scheme)),
                info->remote_workers ? "remote workers" : "in-process");
  } else {
    std::printf("  shards         1 (unsharded)\n");
  }
  if (info->num_clusters > 0) {
    std::printf("  clusters       %u   (clustered index: probe_clusters in "
                "[1, %u])\n",
                info->num_clusters, info->num_clusters);
  }
  return 0;
}

// --table-info resolution: an explicit name means that table; the bare
// flag means every served table. Returns the reply list or an exit code.
int CollectTableInfos(RemoteQueryClient& client, const std::string& flag_value,
                      std::vector<TableInfoReply>* out) {
  auto fetch = [&client, out](const std::string& name) -> int {
    auto info = client.TableInfo(name);
    if (!info.ok()) {
      std::fprintf(stderr, "table-info failed: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    out->push_back(std::move(info).value());
    return 0;
  };
  if (flag_value != "true") return fetch(flag_value);
  // "true" is the flag parser's bare-flag sentinel, but it is also a
  // legal table name — resolve the collision in favor of a real table
  // with that name; only fall back to every-table when none exists.
  auto tables = client.ListTables();
  if (!tables.ok()) {
    std::fprintf(stderr, "list-tables failed: %s\n",
                 tables.status().ToString().c_str());
    return 1;
  }
  for (const std::string& table : *tables) {
    if (table == "true") return fetch(table);
  }
  for (const std::string& table : *tables) {
    if (int rc = fetch(table); rc != 0) return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sknn::tools;
  const char* usage =
      "sknn_admin --host <ip> --port <p> [--json] "
      "(--hello | --list-tables | --table-info [name] | --stats | --health | "
      "--reload-table <name> [--spec <spec>] | --detach-table <name>)";
  auto flags = ParseFlags(argc, argv);
  std::string host = FlagOr(flags, "host", "127.0.0.1");
  uint16_t port = ParsePortOrDie(RequireFlag(flags, "port", usage), "port",
                                 usage);
  const bool json = flags.count("json") > 0;

  auto client = RemoteQueryClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "cannot reach front end at %s:%u: %s\n",
                 host.c_str(), port, client.status().ToString().c_str());
    return 1;
  }

  if (flags.count("hello")) {
    auto ack = (*client)->Hello();
    if (!ack.ok()) {
      std::fprintf(stderr, "hello failed: %s\n",
                   ack.status().ToString().c_str());
      return 1;
    }
    if (json) {
      std::printf("{\"revision\":%u,\"features\":%u,\"num_tables\":%u}\n",
                  ack->revision, ack->features, ack->num_tables);
      return 0;
    }
    std::printf("protocol revision %u, features 0x%x, %u table%s\n",
                ack->revision, ack->features, ack->num_tables,
                ack->num_tables == 1 ? "" : "s");
    return 0;
  }
  if (flags.count("list-tables")) {
    auto tables = (*client)->ListTables();
    if (!tables.ok()) {
      std::fprintf(stderr, "list-tables failed: %s\n",
                   tables.status().ToString().c_str());
      return 1;
    }
    if (json) {
      std::string out = "[";
      for (std::size_t i = 0; i < tables->size(); ++i) {
        if (i) out += ",";
        out += "\"" + JsonEscape((*tables)[i]) + "\"";
      }
      out += "]";
      std::printf("%s\n", out.c_str());
      return 0;
    }
    for (const std::string& name : *tables) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (flags.count("table-info")) {
    const std::string name = flags.at("table-info");
    if (json) {
      std::vector<TableInfoReply> infos;
      if (int rc = CollectTableInfos(**client, name, &infos); rc != 0) {
        return rc;
      }
      std::string out = "[";
      for (std::size_t i = 0; i < infos.size(); ++i) {
        if (i) out += ",";
        out += TableInfoJson(infos[i]);
      }
      out += "]";
      std::printf("%s\n", out.c_str());
      return 0;
    }
    if (name != "true") return PrintTableInfo(**client, name);
    auto tables = (*client)->ListTables();
    if (!tables.ok()) {
      std::fprintf(stderr, "list-tables failed: %s\n",
                   tables.status().ToString().c_str());
      return 1;
    }
    for (const std::string& table : *tables) {
      if (table == "true") return PrintTableInfo(**client, table);
    }
    for (const std::string& table : *tables) {
      if (int rc = PrintTableInfo(**client, table); rc != 0) return rc;
    }
    return 0;
  }
  if (flags.count("stats")) {
    auto stats = (*client)->ServiceStats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (json) {
      std::string out = "{";
      out += "\"uptime_seconds\":" + JsonDouble(stats->uptime_seconds);
      out += ",\"connections\":" + JsonU64(stats->connections_accepted);
      out += ",\"in_flight\":" + JsonU64(stats->in_flight);
      out += std::string(",\"auth_enabled\":") +
             (stats->auth_enabled ? "true" : "false");
      out += ",\"tables\":[";
      for (std::size_t i = 0; i < stats->tables.size(); ++i) {
        const TableStatsEntry& t = stats->tables[i];
        if (i) out += ",";
        out += "{\"name\":\"" + JsonEscape(t.name) + "\"";
        out += ",\"completed\":" + JsonU64(t.completed);
        out += ",\"failed\":" + JsonU64(t.failed);
        out += ",\"rejected\":" + JsonU64(t.rejected);
        out += ",\"in_flight\":" + JsonU64(t.in_flight);
        out += ",\"weight\":" + JsonU64(t.weight);
        out += ",\"share_limit\":" + JsonU64(t.share_limit);
        out += ",\"cache_hits\":" + JsonU64(t.cache_hits);
        out += ",\"cache_misses\":" + JsonU64(t.cache_misses);
        out += ",\"cache_evictions\":" + JsonU64(t.cache_evictions);
        out += ",\"cache_entries\":" + JsonU64(t.cache_entries);
        out += ",\"cache_bytes\":" + JsonU64(t.cache_bytes);
        out += ",\"c1_pool_hits\":" + JsonU64(t.c1_pool_hits);
        out += ",\"c1_pool_misses\":" + JsonU64(t.c1_pool_misses);
        out += ",\"c1_pool_stock\":" + JsonU64(t.c1_pool_stock);
        out += ",\"c1_pool_capacity\":" + JsonU64(t.c1_pool_capacity);
        out += ",\"c2_pool_hits\":" + JsonU64(t.c2_pool_hits);
        out += ",\"c2_pool_misses\":" + JsonU64(t.c2_pool_misses);
        out += ",\"c2_pool_stock\":" + JsonU64(t.c2_pool_stock);
        out += ",\"c2_pool_capacity\":" + JsonU64(t.c2_pool_capacity);
        out += "}";
      }
      out += "],\"keys\":[";
      for (std::size_t i = 0; i < stats->keys.size(); ++i) {
        const ApiKeyStatsEntry& k = stats->keys[i];
        if (i) out += ",";
        out += "{\"id\":\"" + JsonEscape(k.id) + "\"";
        out += ",\"completed\":" + JsonU64(k.completed);
        out += ",\"denied\":" + JsonU64(k.denied);
        out += ",\"quota_rejected\":" + JsonU64(k.quota_rejected);
        out += ",\"quota\":" + JsonU64(k.quota);
        out += ",\"remaining\":" + JsonU64(k.remaining);
        out += ",\"weight\":" + JsonU64(k.weight);
        out += "}";
      }
      out += "]}";
      std::printf("%s\n", out.c_str());
      return 0;
    }
    std::printf("uptime %.1fs  connections %llu  in-flight %llu  auth %s\n",
                stats->uptime_seconds,
                static_cast<unsigned long long>(stats->connections_accepted),
                static_cast<unsigned long long>(stats->in_flight),
                stats->auth_enabled ? "on" : "off");
    std::printf("%-20s %10s %10s %10s %10s %7s %6s\n", "table", "completed",
                "failed", "rejected", "in-flight", "weight", "share");
    for (const TableStatsEntry& table : stats->tables) {
      std::printf("%-20s %10llu %10llu %10llu %10llu %7u %6u\n",
                  table.name.c_str(),
                  static_cast<unsigned long long>(table.completed),
                  static_cast<unsigned long long>(table.failed),
                  static_cast<unsigned long long>(table.rejected),
                  static_cast<unsigned long long>(table.in_flight),
                  table.weight, table.share_limit);
    }
    // Result-cache effectiveness per table (revision 6). A table serving
    // with the cache disabled shows an all-zero row.
    std::printf("%-20s %12s %12s %10s %10s %12s\n", "result cache", "hits",
                "misses", "evictions", "entries", "bytes");
    for (const TableStatsEntry& table : stats->tables) {
      std::printf("%-20s %12llu %12llu %10llu %10llu %12llu\n",
                  table.name.c_str(),
                  static_cast<unsigned long long>(table.cache_hits),
                  static_cast<unsigned long long>(table.cache_misses),
                  static_cast<unsigned long long>(table.cache_evictions),
                  static_cast<unsigned long long>(table.cache_entries),
                  static_cast<unsigned long long>(table.cache_bytes));
    }
    // Randomizer-pool effectiveness per table and cloud (revision 4).
    // hits/misses = encryptions served from precomputed stock vs inline
    // full modexps; stock/capacity = how warm the pool is right now.
    // capacity 0 = that cloud runs without a pool (row elided).
    std::printf("%-20s %-3s %12s %12s %10s %10s\n", "randomizer pool",
                "", "hits", "misses", "stock", "capacity");
    for (const TableStatsEntry& table : stats->tables) {
      if (table.c1_pool_capacity > 0) {
        std::printf("%-20s %-3s %12llu %12llu %10llu %10llu\n",
                    table.name.c_str(), "C1",
                    static_cast<unsigned long long>(table.c1_pool_hits),
                    static_cast<unsigned long long>(table.c1_pool_misses),
                    static_cast<unsigned long long>(table.c1_pool_stock),
                    static_cast<unsigned long long>(table.c1_pool_capacity));
      }
      if (table.c2_pool_capacity > 0) {
        std::printf("%-20s %-3s %12llu %12llu %10llu %10llu\n",
                    table.name.c_str(), "C2",
                    static_cast<unsigned long long>(table.c2_pool_hits),
                    static_cast<unsigned long long>(table.c2_pool_misses),
                    static_cast<unsigned long long>(table.c2_pool_stock),
                    static_cast<unsigned long long>(table.c2_pool_capacity));
      }
    }
    // Per-API-key quotas and counters, present when the front end runs
    // with --api-keys (revision 6).
    if (stats->auth_enabled) {
      std::printf("%-20s %10s %10s %10s %10s %10s %7s\n", "api key",
                  "completed", "denied", "quota-rej", "quota", "remaining",
                  "weight");
      for (const ApiKeyStatsEntry& key : stats->keys) {
        std::printf("%-20s %10llu %10llu %10llu %10llu %10llu %7u\n",
                    key.id.c_str(),
                    static_cast<unsigned long long>(key.completed),
                    static_cast<unsigned long long>(key.denied),
                    static_cast<unsigned long long>(key.quota_rejected),
                    static_cast<unsigned long long>(key.quota),
                    static_cast<unsigned long long>(key.remaining),
                    key.weight);
      }
    }
    return 0;
  }
  if (flags.count("health")) {
    auto health = (*client)->Health();
    if (!health.ok()) {
      std::fprintf(stderr, "health failed: %s\n",
                   health.status().ToString().c_str());
      return 1;
    }
    if (json) {
      std::string out = "{\"tables\":[";
      for (std::size_t i = 0; i < health->tables.size(); ++i) {
        const TableHealthEntry& table = health->tables[i];
        if (i) out += ",";
        out += "{\"name\":\"" + JsonEscape(table.name) + "\",\"replicas\":[";
        for (std::size_t j = 0; j < table.replicas.size(); ++j) {
          const ReplicaHealthEntry& r = table.replicas[j];
          if (j) out += ",";
          out += "{\"shard\":" + JsonU64(r.shard);
          out += ",\"replica\":" + JsonU64(r.replica);
          out += std::string(",\"healthy\":") + (r.healthy ? "true" : "false");
          out += ",\"consecutive_failures\":" +
                 JsonU64(r.consecutive_failures);
          out += ",\"failovers\":" + JsonU64(r.failovers);
          out += ",\"last_ok_age_seconds\":" +
                 JsonDouble(r.last_ok_age_seconds);
          out += "}";
        }
        out += "]}";
      }
      out += "]}";
      std::printf("%s\n", out.c_str());
      return 0;
    }
    for (const TableHealthEntry& table : health->tables) {
      if (table.replicas.empty()) {
        std::printf("table %-16s (no replicated shard workers)\n",
                    table.name.c_str());
        continue;
      }
      std::printf("table %s\n", table.name.c_str());
      for (const ReplicaHealthEntry& replica : table.replicas) {
        std::printf("  shard %-3u replica %-3u %-9s failures=%u "
                    "failovers=%llu last_ok=%s\n",
                    replica.shard, replica.replica,
                    replica.healthy ? "healthy" : "UNHEALTHY",
                    replica.consecutive_failures,
                    static_cast<unsigned long long>(replica.failovers),
                    replica.last_ok_age_seconds < 0
                        ? "never"
                        : (std::to_string(replica.last_ok_age_seconds) + "s")
                              .c_str());
      }
    }
    return 0;
  }
  if (flags.count("reload-table")) {
    const std::string name = flags.at("reload-table");
    const std::string spec = FlagOr(flags, "spec", "");
    auto acked = (*client)->ReloadTable(name, spec);
    if (!acked.ok()) {
      std::fprintf(stderr, "reload-table failed: %s\n",
                   acked.status().ToString().c_str());
      return 1;
    }
    std::printf("reloaded %s\n", acked->c_str());
    return 0;
  }
  if (flags.count("detach-table")) {
    auto acked = (*client)->DetachTable(flags.at("detach-table"));
    if (!acked.ok()) {
      std::fprintf(stderr, "detach-table failed: %s\n",
                   acked.status().ToString().c_str());
      return 1;
    }
    std::printf("detached %s\n", acked->c_str());
    return 0;
  }
  std::fprintf(stderr, "no command given\nusage: %s\n", usage);
  return 2;
}
