// sknn_query — drives one secure kNN query against a remote C2.
//
//   sknn_query --public pk.txt --db db.bin --host 127.0.0.1 --port 9000 \
//              --query "58,1,4,133,196,1,2,1,6" --k 2 [--protocol secure]
//
// This process plays two roles with two separate TCP links, mirroring the
// deployment topology:
//   * C1: hosts the encrypted database, drives SkNN_b / SkNN_m against C2;
//   * Bob: encrypts the query, and — on his own connection — picks up the
//     decrypted masked result from C2 and strips C1's masks.
//
// Every exchange carries a per-query id (the in-process engine's
// Query/Submit/QueryBatch API assigns these automatically), so any number
// of sknn_query processes may run against one C2 concurrently: C2 keys
// each Bob's outbox by the id and each Bob fetches exactly his own result.
//
// protocols: basic (SkNN_b), secure (SkNN_m, default), farthest (k-FN).
#include <cstdio>

#include "bigint/random.h"
#include "core/data_owner.h"
#include "core/db_io.h"
#include "core/query_client.h"
#include "core/sknn_b.h"
#include "core/sknn_m.h"
#include "crypto/serialization.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace sknn;
  using namespace sknn::tools;
  const char* usage =
      "sknn_query --public <pk> --db <db.bin> --host <ip> --port <p> "
      "--query \"v1,v2,...\" --k <k> [--protocol basic|secure|farthest]\n"
      "  basic:    SkNN_b — fast; C2 learns distances + access patterns\n"
      "  secure:   SkNN_m — fully secure k nearest neighbors (default)\n"
      "  farthest: SkNN_m on complemented distances — k farthest neighbors\n"
      "Safe to run many instances against one C2 concurrently (per-query\n"
      "ids keep the C2->Bob outboxes separate).";
  auto flags = ParseFlags(argc, argv);
  std::string pk_path = RequireFlag(flags, "public", usage);
  std::string db_path = RequireFlag(flags, "db", usage);
  std::string host = FlagOr(flags, "host", "127.0.0.1");
  uint16_t port =
      static_cast<uint16_t>(std::stoul(RequireFlag(flags, "port", usage)));
  PlainRecord query = ParseRecord(RequireFlag(flags, "query", usage));
  unsigned k =
      static_cast<unsigned>(std::stoul(RequireFlag(flags, "k", usage)));
  std::string protocol = FlagOr(flags, "protocol", "secure");

  auto pk = ReadPublicKeyFile(pk_path);
  if (!pk.ok()) {
    std::fprintf(stderr, "%s\n", pk.status().ToString().c_str());
    return 1;
  }
  auto db = ReadEncryptedDatabase(db_path);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  if (Status s = ValidateCiphertexts(*db, *pk); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (query.size() != db->num_attributes()) {
    std::fprintf(stderr, "query has %zu attributes, database has %zu\n",
                 query.size(), db->num_attributes());
    return 1;
  }
  // Same up-front domain validation the engine applies to QueryRequests:
  // attributes outside [0, 2^attr_bits) would overflow the database's l-bit
  // distance domain and silently corrupt the protocol arithmetic.
  const unsigned attr_bits =
      DataOwner::ImpliedAttrBits(db->num_attributes(), db->distance_bits);
  for (int64_t v : query) {
    if (v < 0 || v >= (int64_t{1} << attr_bits)) {
      std::fprintf(stderr,
                   "query value %lld outside the database's attribute domain "
                   "[0, 2^%u)\n",
                   static_cast<long long>(v), attr_bits);
      return 1;
    }
  }

  // C1's link and Bob's link — two independent TCP connections.
  auto c1_link = ConnectTcp(host, port);
  auto bob_link = ConnectTcp(host, port);
  if (!c1_link.ok() || !bob_link.ok()) {
    std::fprintf(stderr, "cannot reach C2 at %s:%u\n", host.c_str(), port);
    return 1;
  }
  RpcClient c1_rpc(std::move(c1_link).value());
  RpcClient bob_rpc(std::move(bob_link).value());

  // A random non-zero id isolates this query's state on C2 from any other
  // sknn_query process sharing the server.
  uint64_t query_id = 0;
  while (query_id == 0) {
    query_id = Random::ThreadLocal().UniformUint64(UINT64_MAX);
  }
  ProtoContext ctx(&*pk, &c1_rpc, /*pool=*/nullptr, query_id);

  // Bob encrypts his query and hands Epk(Q) to C1.
  QueryClient bob(*pk);
  std::vector<Ciphertext> enc_query = bob.EncryptQuery(query);

  // C1 runs the chosen protocol against C2.
  Result<CloudQueryOutput> out =
      Status::InvalidArgument("unknown --protocol '" + protocol + "'");
  if (protocol == "basic") {
    out = RunSkNNb(ctx, *db, enc_query, k);
  } else if (protocol == "secure" || protocol == "farthest") {
    SkNNmOptions opts;
    opts.farthest = protocol == "farthest";
    out = RunSkNNm(ctx, *db, enc_query, k, nullptr, opts);
  }
  if (!out.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 out.status().ToString().c_str());
    return 1;
  }

  // Bob fetches his half from C2 on his own connection and unmasks. The
  // fetch is tagged with the query id, so he gets exactly his records even
  // if other queries are in flight on the same C2.
  Message fetch;
  fetch.type = OpCode(Op::kFetchBobOutbox);
  fetch.query_id = query_id;
  auto picked_up = bob_rpc.Call(std::move(fetch));
  if (!picked_up.ok()) {
    std::fprintf(stderr, "outbox fetch failed: %s\n",
                 picked_up.status().ToString().c_str());
    return 1;
  }
  auto records = bob.RecoverRecords(picked_up->ints, out->masks_for_bob, k,
                                    db->num_attributes());
  if (!records.ok()) {
    std::fprintf(stderr, "unmasking failed: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }

  std::printf("%s %u-%s of <", protocol.c_str(), k,
              protocol == "farthest" ? "farthest" : "nearest");
  for (std::size_t j = 0; j < query.size(); ++j) {
    std::printf("%s%lld", j ? "," : "", static_cast<long long>(query[j]));
  }
  std::printf(">:\n");
  for (const auto& row : *records) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      std::printf("%s%lld", j ? "," : "", static_cast<long long>(row[j]));
    }
    std::printf("\n");
  }
  return 0;
}
