// sknn_query — Bob's thin client: one secure kNN query against a standing
// C1 query front end (sknn_c1_server).
//
//   sknn_query --host 127.0.0.1 --port 9100 \
//              --query "58,1,4,133,196,1,2,1,6" --k 2 \
//              [--table name] [--protocol secure] [--retries 5] \
//              [--max-wait-ms 30000] [--deadline-ms D] [--stats] \
//              [--index-mode exact|clustered] [--probe-clusters P] \
//              [--server host:port,host:port,...] \
//              [--api-key KEY] [--no-cache]
//
// --api-key authenticates the session (kAuthenticate, revision 6) against
// a front end started with --api-keys; without it such a front end rejects
// every query with PermissionDenied. --no-cache asks the front end to
// bypass its result cache for this query (a fresh protocol run, e.g. to
// cross-check a cached answer); --stats prints whether the answer was a
// cache hit.
//
// --index-mode clustered asks the front end for the table's approximate
// clustered index (sknn_encrypt --clusters): one secure centroid-scoring
// round prunes the search to the --probe-clusters nearest clusters — far
// fewer encryptions per query, at a recall cost sknn_admin --table-info
// helps you budget (it reports the table's cluster count).
//
// This process neither loads the encrypted database nor drives the
// protocol: it negotiates the versioned wire contract (hello), then sends
// one plaintext-record QueryRequest frame — naming the target table when
// the front end serves several (sknn_admin --list-tables enumerates them)
// — and receives the records plus per-query instrumentation. If the front
// end's admission budget is full (ResourceExhausted), the client backs off
// with exponential, jittered delays (RetryPolicy) up to --retries retries
// or --max-wait-ms total, then gives up with exit code 3.
//
// --deadline-ms arms the per-query deadline: the front end turns a hung
// shard worker into a typed kDeadlineExceeded (exit code 4) instead of
// letting the query stall. --server takes a comma-separated list of
// equivalent front ends; the client fails over between them when one dies
// (and retries worker-loss errors by default, as a replica list implies).
//
// protocols: basic (SkNN_b), secure (SkNN_m, default), farthest (k-FN).
#include <cstdio>

#include "serve/remote_query_client.h"
#include "tools/tool_util.h"

int main(int argc, char** argv) {
  using namespace sknn;
  using namespace sknn::tools;
  const char* usage =
      "sknn_query (--host <ip> --port <p> | --server host:port,...) "
      "--query \"v1,v2,...\" --k <k> "
      "[--table name] [--protocol basic|secure|farthest] [--retries N] "
      "[--max-wait-ms M] [--deadline-ms D] [--stats] "
      "[--index-mode exact|clustered] [--probe-clusters P] "
      "[--api-key KEY] [--no-cache]\n"
      "  basic:    SkNN_b — fast; C2 learns distances + access patterns\n"
      "  secure:   SkNN_m — fully secure k nearest neighbors (default)\n"
      "  farthest: SkNN_m on complemented distances — k farthest neighbors\n"
      "Thin client: talks to a sknn_c1_server front end, which hosts the\n"
      "encrypted table(s) and drives the clouds. Run as many instances\n"
      "concurrently as the front end's --max-in-flight admits.";
  auto flags = ParseFlags(argc, argv);
  std::vector<std::string> endpoints;
  if (flags.count("server")) {
    std::stringstream ss(flags.at("server"));
    std::string addr;
    while (std::getline(ss, addr, ',')) {
      if (!addr.empty()) endpoints.push_back(addr);
    }
    if (endpoints.empty()) DieBadFlag("server", flags.at("server"), usage);
  } else {
    std::string host = FlagOr(flags, "host", "127.0.0.1");
    uint16_t port = ParsePortOrDie(RequireFlag(flags, "port", usage), "port",
                                   usage);
    endpoints.push_back(host + ":" + std::to_string(port));
  }
  QueryRequest request;
  request.table = FlagOr(flags, "table", "");
  // Ops/breakdown collection costs the front end an extra C1<->C2 round
  // trip per query; only pay it when --stats will print it.
  request.want_op_counts = flags.count("stats") > 0;
  request.want_breakdown = flags.count("stats") > 0;
  request.no_cache = flags.count("no-cache") > 0;
  request.record = ParseRecord(RequireFlag(flags, "query", usage), usage);
  request.k = static_cast<unsigned>(ParseUint64OrDie(
      RequireFlag(flags, "k", usage), "k", usage, 1, 1u << 30));
  request.deadline_ms = static_cast<uint32_t>(ParseUint64OrDie(
      FlagOr(flags, "deadline-ms", "0"), "deadline-ms", usage, 0, 86400000));
  std::string protocol = FlagOr(flags, "protocol", "secure");
  if (protocol == "basic") {
    request.protocol = QueryProtocol::kBasic;
  } else if (protocol == "secure") {
    request.protocol = QueryProtocol::kSecure;
  } else if (protocol == "farthest") {
    request.protocol = QueryProtocol::kFarthest;
  } else {
    DieBadFlag("protocol", protocol, usage);
  }
  std::string index_mode = FlagOr(flags, "index-mode", "exact");
  if (index_mode == "clustered") {
    request.index_mode = IndexMode::kClustered;
    request.probe_clusters = static_cast<uint32_t>(ParseUint64OrDie(
        FlagOr(flags, "probe-clusters", "1"), "probe-clusters", usage, 1,
        65535));
  } else if (index_mode != "exact") {
    DieBadFlag("index-mode", index_mode, usage);
  } else if (flags.count("probe-clusters")) {
    std::fprintf(stderr,
                 "--probe-clusters only applies with --index-mode "
                 "clustered\nusage: %s\n",
                 usage);
    return 2;
  }
  RetryPolicy policy;
  policy.max_attempts = 1 + static_cast<int>(ParseInt64OrDie(
      FlagOr(flags, "retries", "5"), "retries", usage, 0, 1000000));
  policy.max_elapsed =
      std::chrono::milliseconds(ParseInt64OrDie(
          FlagOr(flags, "max-wait-ms", "30000"), "max-wait-ms", usage, 0,
          86400000));

  auto client = RemoteQueryClient::Connect(endpoints);
  if (!client.ok()) {
    std::fprintf(stderr, "cannot reach front end at %s: %s\n",
                 endpoints.front().c_str(),
                 client.status().ToString().c_str());
    return 1;
  }
  if (flags.count("api-key")) {
    (*client)->set_api_key(flags.at("api-key"));
  }

  Result<QueryResponse> response = (*client)->QueryWithRetry(request, policy);
  if (!response.ok()) {
    if (response.status().code() == StatusCode::kResourceExhausted) {
      std::fprintf(stderr, "front end saturated, gave up: %s\n",
                   response.status().ToString().c_str());
      return 3;
    }
    if (response.status().code() == StatusCode::kDeadlineExceeded) {
      std::fprintf(stderr, "deadline exceeded: %s\n",
                   response.status().ToString().c_str());
      return 4;
    }
    if (response.status().code() == StatusCode::kPermissionDenied) {
      std::fprintf(stderr, "authentication rejected: %s\n",
                   response.status().ToString().c_str());
      return 5;
    }
    std::fprintf(stderr, "query failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  std::printf("%s %u-%s of <", protocol.c_str(), request.k,
              protocol == "farthest" ? "farthest" : "nearest");
  for (std::size_t j = 0; j < request.record.size(); ++j) {
    std::printf("%s%lld", j ? "," : "",
                static_cast<long long>(request.record[j]));
  }
  std::printf(">:\n");
  for (const auto& row : response->records) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      std::printf("%s%lld", j ? "," : "", static_cast<long long>(row[j]));
    }
    std::printf("\n");
  }
  if (flags.count("stats")) {
    std::printf("# cache %s  encrypted-results %zu\n",
                response->cache_hit ? "hit" : "miss",
                response->encrypted_records.size());
    std::printf("# bob %.6fs  cloud %.6fs  traffic %s  ops %s\n",
                response->bob_seconds, response->cloud_seconds,
                response->traffic.ToString().c_str(),
                response->ops.ToString().c_str());
    const SkNNmBreakdown& phases = response->breakdown;
    if (phases.total() > 0) {  // basic has no phases to split
      std::printf(
          "# phases: ssed %.3fs  sbd %.3fs  smin_n %.3fs  extract %.3fs  "
          "update %.3fs  finalize %.3fs\n",
          phases.ssed_seconds, phases.sbd_seconds, phases.sminn_seconds,
          phases.extract_seconds, phases.update_seconds,
          phases.finalize_seconds);
    }
    if (!response->shards.empty()) {
      uint32_t pruned = 0;
      for (const ShardQueryStats& shard : response->shards) {
        pruned += shard.pruned;
      }
      if (pruned > 0) {
        std::printf("# clustered: pruned %u of %zu shards\n", pruned,
                    response->shards.size());
      }
    }
  }
  return 0;
}
