// Tiny --flag=value / --flag value parser shared by the CLI tools, plus
// defensive numeric parsing: a malformed flag value ("--port abc", an
// out-of-range count, trailing garbage) prints the offending flag and the
// tool's usage string and exits 2 — it never throws out of std::sto* and
// aborts the process. Also the servers' shared SIGINT/SIGTERM machinery
// (InstallShutdownHandler): a signal requests a clean unbind-and-drain
// instead of killing the process mid-response.
#ifndef SKNN_TOOLS_TOOL_UTIL_H_
#define SKNN_TOOLS_TOOL_UTIL_H_

#include <sys/socket.h>

#include <charconv>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"

namespace sknn {
namespace tools {

/// \brief Flags in command-line order, repeats preserved — for flags that
/// may legitimately appear many times (sknn_c1_server --table).
inline std::vector<std::pair<std::string, std::string>> ParseFlagList(
    int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      std::exit(2);
    }
    std::string key = arg.substr(2);
    std::size_t eq = key.find('=');
    if (eq != std::string::npos) {
      flags.emplace_back(key.substr(0, eq), key.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.emplace_back(std::move(key), argv[++i]);
    } else {
      flags.emplace_back(std::move(key), "true");
    }
  }
  return flags;
}

inline std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (auto& [key, value] : ParseFlagList(argc, argv)) {
    flags[key] = value;  // last occurrence wins, as before
  }
  return flags;
}

/// \brief Every value a repeated flag was given, command-line order.
inline std::vector<std::string> FlagValues(
    const std::vector<std::pair<std::string, std::string>>& flags,
    const std::string& name) {
  std::vector<std::string> values;
  for (const auto& [key, value] : flags) {
    if (key == name) values.push_back(value);
  }
  return values;
}

// -- Clean shutdown on SIGINT/SIGTERM ---------------------------------------
//
// The standing servers must drain on a signal, not vanish: unbind the
// listener (no new connections), let in-flight handlers finish, exit 0 —
// so scripted deployments (scripts/smoke_deploy.sh) can `kill -TERM` and
// `wait` for a real exit code instead of kill-and-hope.
//
// Mechanics: the handler (installed WITHOUT SA_RESTART) sets a flag and
// shutdown(2)s the listening fd — both async-signal-safe — which wakes a
// blocked accept(2) with an error; the accept loop sees the flag and
// returns to the drain path. A second signal during a stubborn drain
// restores the default disposition, so repeated Ctrl-C still kills.

inline volatile std::sig_atomic_t g_shutdown_requested = 0;
inline volatile int g_shutdown_wake_fd = -1;

inline void ShutdownSignalHandler(int signum) {
  if (g_shutdown_requested) {
    std::signal(signum, SIG_DFL);
    std::raise(signum);
    return;
  }
  g_shutdown_requested = 1;
  const int fd = g_shutdown_wake_fd;
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

/// \brief Routes SIGINT and SIGTERM into the drain path. `wake_fd` is the
/// listening socket a blocked accept(2) waits on (pass -1 for servers that
/// poll instead of block).
inline void InstallShutdownHandler(int wake_fd) {
  g_shutdown_wake_fd = wake_fd;
  struct sigaction sa = {};
  sa.sa_handler = ShutdownSignalHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: accept() must return
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

inline bool ShutdownRequested() { return g_shutdown_requested != 0; }

inline std::string RequireFlag(const std::map<std::string, std::string>& flags,
                               const std::string& name, const char* usage) {
  auto it = flags.find(name);
  if (it == flags.end()) {
    std::fprintf(stderr, "missing --%s\nusage: %s\n", name.c_str(), usage);
    std::exit(2);
  }
  return it->second;
}

inline std::string FlagOr(const std::map<std::string, std::string>& flags,
                          const std::string& name, const std::string& def) {
  auto it = flags.find(name);
  return it == flags.end() ? def : it->second;
}

[[noreturn]] inline void DieBadFlag(const std::string& name,
                                    const std::string& value,
                                    const char* usage) {
  std::fprintf(stderr, "bad value '%s' for --%s\nusage: %s\n", value.c_str(),
               name.c_str(), usage);
  std::exit(2);
}

/// \brief Strict whole-string signed parse of a flag value; dies with the
/// usage string on garbage, partial parses, or values outside [min, max].
inline int64_t ParseInt64OrDie(const std::string& value,
                               const std::string& name, const char* usage,
                               int64_t min = INT64_MIN,
                               int64_t max = INT64_MAX) {
  int64_t out = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end || out < min || out > max) {
    DieBadFlag(name, value, usage);
  }
  return out;
}

/// \brief Unsigned counterpart of ParseInt64OrDie (rejects '-').
inline uint64_t ParseUint64OrDie(const std::string& value,
                                 const std::string& name, const char* usage,
                                 uint64_t min = 0, uint64_t max = UINT64_MAX) {
  uint64_t out = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end || out < min || out > max) {
    DieBadFlag(name, value, usage);
  }
  return out;
}

/// \brief A TCP port flag: 0 (= pick an ephemeral port) through 65535.
inline uint16_t ParsePortOrDie(const std::string& value,
                               const std::string& name, const char* usage) {
  return static_cast<uint16_t>(ParseUint64OrDie(value, name, usage, 0, 65535));
}

/// \brief "1,2,3" -> {1, 2, 3}; dies with the usage string on any malformed
/// cell ("1,,3", "1,x") instead of throwing out of std::stoll.
inline PlainRecord ParseRecord(const std::string& text, const char* usage) {
  PlainRecord out;
  std::stringstream ss(text);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    out.push_back(ParseInt64OrDie(cell, "query", usage));
  }
  if (out.empty()) DieBadFlag("query", text, usage);
  return out;
}

}  // namespace tools
}  // namespace sknn

#endif  // SKNN_TOOLS_TOOL_UTIL_H_
