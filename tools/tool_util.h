// Tiny --flag=value / --flag value parser shared by the CLI tools.
#ifndef SKNN_TOOLS_TOOL_UTIL_H_
#define SKNN_TOOLS_TOOL_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/types.h"

namespace sknn {
namespace tools {

inline std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      std::exit(2);
    }
    std::string key = arg.substr(2);
    std::size_t eq = key.find('=');
    if (eq != std::string::npos) {
      flags[key.substr(0, eq)] = key.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[key] = argv[++i];
    } else {
      flags[key] = "true";
    }
  }
  return flags;
}

inline std::string RequireFlag(const std::map<std::string, std::string>& flags,
                               const std::string& name, const char* usage) {
  auto it = flags.find(name);
  if (it == flags.end()) {
    std::fprintf(stderr, "missing --%s\nusage: %s\n", name.c_str(), usage);
    std::exit(2);
  }
  return it->second;
}

inline std::string FlagOr(const std::map<std::string, std::string>& flags,
                          const std::string& name, const std::string& def) {
  auto it = flags.find(name);
  return it == flags.end() ? def : it->second;
}

/// \brief "1,2,3" -> {1, 2, 3}.
inline PlainRecord ParseRecord(const std::string& text) {
  PlainRecord out;
  std::stringstream ss(text);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    out.push_back(std::stoll(cell));
  }
  return out;
}

}  // namespace tools
}  // namespace sknn

#endif  // SKNN_TOOLS_TOOL_UTIL_H_
