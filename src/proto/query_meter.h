// Per-query instrumentation sink, threaded through ProtoContext into the
// protocol drivers (sknn_b / sknn_m). One QueryMeter lives for the duration
// of one query; it accumulates
//   * the Paillier operations performed on the query's behalf (via the
//     thread-local OpCounters sink, installed by the engine and propagated
//     into pool workers by ProtoContext::ForEach), and
//   * the exact C1<->C2 wire traffic of the query's RPC exchanges (counted
//     at the call layer, not from channel-level globals, so concurrent
//     queries cannot pollute each other's numbers).
// This replaces the engine-level OpCounters::Snapshot() delta and
// Channel::ResetStats() accounting, which are only correct for one query at
// a time.
#ifndef SKNN_PROTO_QUERY_METER_H_
#define SKNN_PROTO_QUERY_METER_H_

#include <atomic>
#include <cstdint>

#include "crypto/op_counters.h"
#include "net/channel.h"

namespace sknn {

class QueryMeter {
 public:
  /// \brief C1-side Paillier operation sink for this query.
  OpAccumulator& ops() { return ops_; }

  /// \brief Accounts one request/response RPC exchange with C2.
  void CountExchange(std::size_t request_bytes, std::size_t response_bytes) {
    frames_to_c2_.fetch_add(1, kOrder);
    bytes_to_c2_.fetch_add(request_bytes, kOrder);
    frames_from_c2_.fetch_add(1, kOrder);
    bytes_from_c2_.fetch_add(response_bytes, kOrder);
  }

  /// \brief The query's C1<->C2 traffic, in channel.h vocabulary (C1 is the
  /// "A" side of the link).
  TrafficStats traffic() const {
    return {frames_to_c2_.load(kOrder), bytes_to_c2_.load(kOrder),
            frames_from_c2_.load(kOrder), bytes_from_c2_.load(kOrder)};
  }

 private:
  static constexpr std::memory_order kOrder = std::memory_order_relaxed;
  OpAccumulator ops_;
  std::atomic<uint64_t> frames_to_c2_{0};
  std::atomic<uint64_t> bytes_to_c2_{0};
  std::atomic<uint64_t> frames_from_c2_{0};
  std::atomic<uint64_t> bytes_from_c2_{0};
};

}  // namespace sknn

#endif  // SKNN_PROTO_QUERY_METER_H_
