// Opcodes of the C1 -> C2 RPC vocabulary.
//
// Every interactive step of the paper's sub-protocols maps to one opcode.
// All opcodes are *batched*: a request carries many independent instances so
// that, e.g., the n secure multiplications of an SSED round over the whole
// database cost one round trip, not n. Batching does not change what C2
// learns (each instance is processed independently) — it only amortizes
// message framing, exactly like the paper's remark that per-record
// computations are independent (Section 5.3).
#ifndef SKNN_PROTO_OPCODES_H_
#define SKNN_PROTO_OPCODES_H_

#include <cstdint>

namespace sknn {

enum class Op : uint16_t {
  kPing = 1,

  /// SM, Algorithm 1 step 2. ints = [a'_0, b'_0, a'_1, b'_1, ...];
  /// response ints = [h'_0, h'_1, ...] where h_i = D(a'_i)*D(b'_i) mod N.
  kSmBatch = 2,

  /// SBD Encrypted-LSB step (Samanthula-Jiang [21]). ints = [Y_0, Y_1, ...]
  /// with Y_i = Epk(z_i + r_i); response ints = [Epk(y_0 mod 2), ...].
  kLsbBatch = 3,

  /// SBD verification round (SVR). ints = [Epk(v_i * gamma_i), ...];
  /// response aux[i] = 1 if D(.) == 0 (decomposition correct) else 0.
  kSvrCheckBatch = 4,

  /// SMIN, Algorithm 3 step 2. aux = [l:u32][count:u32]; ints = count blocks
  /// of [Gamma'_1..Gamma'_l, L'_1..L'_l]; response ints = count blocks of
  /// [M'_1..M'_l, Epk(alpha)].
  kSminPhase2Batch = 5,

  /// SkNN_m, Algorithm 6 step 3(c). ints = [beta_0..beta_{n-1}];
  /// response ints = [U_0..U_{n-1}], exactly one U_i = Epk(1).
  kMinPointerBatch = 6,

  /// SkNN_b, Algorithm 5 step 3. aux = [k:u32]; ints = [Epk(d_0), ...];
  /// response aux = k little-endian u32 indices (top-k smallest).
  kTopKIndices = 7,

  /// SkNN_b step 5 / SkNN_m final step: C1 sends randomized records gamma;
  /// C2 decrypts them *into its Bob outbox* (they are sent to Bob, never
  /// back to C1). Response is an empty ack.
  kMaskedDecryptToBob = 8,

  /// Bob's pickup of his decrypted masked result (C2 -> Bob leg). Issued on
  /// Bob's OWN connection to C2 in the two-process deployment — never on
  /// C1's connection, or C1 could unmask the result. Response ints = the
  /// outbox contents, which are cleared.
  kFetchBobOutbox = 9,

  // -- Vectorized wire forms (PR 2 hot path) --
  //
  // Semantically identical to their scalar counterparts, but C1 ships the
  // ENTIRE stage vector in one message instead of one chunk per C1 worker,
  // and C2 fans the independent instances out across its own thread pool.
  // Per-stage message count becomes exactly 1 regardless of record count and
  // thread fan-out; what C2 decrypts is unchanged, so the security argument
  // carries over verbatim.

  /// Vectorized kSmBatch: same geometry, whole SM stage in one message.
  kSmVec = 10,

  /// Vectorized kLsbBatch: one message per SBD bit-round for all instances.
  kLsbVec = 11,

  /// Vectorized kSminPhase2Batch: one message per SMIN tournament level.
  kSminPhase2Vec = 12,

  /// Drains C2's Paillier-operation ledger entry for the tagged query:
  /// response aux = 4 little-endian u64 (encryptions, decryptions,
  /// exponentiations, multiplications). Issued by a C1 front end running
  /// against a REMOTE C2 (engine CreateWithRemoteC2) after the protocol
  /// finishes, so QueryResponse::ops stays exact across process boundaries.
  kFetchQueryOps = 13,

  /// Drains nothing: reports C2's randomizer-pool effectiveness counters.
  /// Response aux = 4 little-endian u64 (hits, misses, stock, capacity);
  /// capacity = 0 when no pool is attached. Issued by a C1 front end
  /// answering a kServiceStats control-plane frame, so operators see both
  /// clouds' pools in one place.
  kFetchPoolStats = 14,

  /// Error response emitted by the RPC server (status text in aux).
  kError = 0xFFFF,
};

/// \brief The vectorized wire form of `op`, or `op` itself when the opcode
/// has no vector form (it is already a single-message exchange).
inline Op VectorForm(Op op) {
  switch (op) {
    case Op::kSmBatch:
      return Op::kSmVec;
    case Op::kLsbBatch:
      return Op::kLsbVec;
    case Op::kSminPhase2Batch:
      return Op::kSminPhase2Vec;
    default:
      return op;
  }
}

inline uint16_t OpCode(Op op) { return static_cast<uint16_t>(op); }

}  // namespace sknn

#endif  // SKNN_PROTO_OPCODES_H_
