// C2: the cloud that holds the Paillier secret key (Section 4, federated
// cloud model). C2 never sees the encrypted database; it answers the
// randomized sub-protocol requests issued by C1 and forwards decrypted,
// still-masked query results to Bob.
//
// Security instrumentation: when view recording is enabled, every plaintext
// C2 decrypts is captured. The property test suite uses this to check the
// central claim of Section 4.3 — everything C2 sees is either a uniformly
// random residue or a value the protocol explicitly allows it to learn.
#ifndef SKNN_PROTO_C2_SERVICE_H_
#define SKNN_PROTO_C2_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "crypto/op_counters.h"
#include "crypto/paillier.h"
#include "net/message.h"
#include "proto/opcodes.h"

namespace sknn {

/// \brief One decrypted value observed by C2, tagged with the opcode that
/// produced it (for the simulation-paradigm security tests).
struct C2View {
  Op op;
  BigInt plaintext;
};

class C2Service {
 public:
  explicit C2Service(PaillierSecretKey sk) : sk_(std::move(sk)) {}

  /// \brief RPC dispatch entry point; thread-safe. Requests tagged with a
  /// non-zero query id get their Paillier work attributed to that query's
  /// ledger entry and their Bob-bound output keyed to that query.
  Result<Message> Handle(const Message& request);

  /// \brief Drains the decrypted masked records destined for Bob across all
  /// queries, in query-id order. In a real deployment this is a direct
  /// C2 -> Bob message; the in-process engine hands it to the QueryClient.
  /// Never routed through C1.
  std::vector<BigInt> TakeBobOutbox();

  /// \brief Drains one query's Bob-bound records — the demux that lets many
  /// queries be in flight without interleaving their results.
  std::vector<BigInt> TakeBobOutbox(uint64_t query_id);

  /// \brief Removes and returns the Paillier operations C2 performed for
  /// `query_id` (zeros if unknown).
  OpSnapshot TakeQueryOps(uint64_t query_id);

  /// \brief Spins up `threads` workers that fan the independent instances of
  /// one vectorized request (kSmVec / kLsbVec / kSminPhase2Vec /
  /// kMinPointerBatch) out in parallel — the C2 half of the within-query
  /// record parallelism. Without this, vectorized messages are processed
  /// serially (still correct, just one core).
  void EnableIntraMessageParallelism(std::size_t threads);

  /// \brief Creates (and owns) a randomizer pool of `capacity` r^N values
  /// backing every encryption C2 performs — the response re-encryptions of
  /// the sub-protocol handlers are its hottest loop. See RandomizerPool in
  /// crypto/paillier.h for semantics and the disable switch. The options
  /// form selects the refill strategy (short-exponent fixed-base vs the
  /// full-width reference — docs/CRYPTO.md); the workers form keeps the
  /// default strategy.
  void EnableRandomizerPool(std::size_t capacity, std::size_t workers = 1);
  void EnableRandomizerPool(std::size_t capacity,
                            const RandomizerPoolOptions& options);
  RandomizerPool* randomizer_pool() { return rand_pool_.get(); }

  // -- Security-test instrumentation --
  void set_record_views(bool record) {
    MutexLock lock(&mutex_);
    record_views_ = record;
    if (!record) views_.clear();
  }
  std::vector<C2View> TakeViews();

  const PaillierPublicKey& public_key() const { return sk_.public_key(); }
  PaillierSecretKey& secret_key() { return sk_; }

 private:
  Result<Message> Dispatch(const Message& request);
  void RecordQueryOps(uint64_t query_id, const OpSnapshot& ops);

  /// \brief The fan-out pool the batched crypto calls of one request use:
  /// the intra-message pool when the opcode's vectorized form asked for
  /// parallelism (and one exists), else null (serial — the scalar wire
  /// forms keep their one-chunk-per-C1-worker concurrency model).
  ThreadPool* FanPool(bool parallel) {
    return parallel ? intra_pool_.get() : nullptr;
  }

  Result<Message> HandleSmBatch(const Message& req, bool parallel);
  Result<Message> HandleLsbBatch(const Message& req, bool parallel);
  Result<Message> HandleSvrCheckBatch(const Message& req);
  Result<Message> HandleSminPhase2Batch(const Message& req, bool parallel);
  Result<Message> HandleMinPointerBatch(const Message& req);
  Result<Message> HandleTopKIndices(const Message& req);
  Result<Message> HandleMaskedDecryptToBob(const Message& req);

  void RecordView(Op op, const BigInt& plaintext);

  PaillierSecretKey sk_;
  std::unique_ptr<ThreadPool> intra_pool_;
  std::unique_ptr<RandomizerPool> rand_pool_;
  Mutex mutex_;  // guards views_, bob_outbox_ and the op ledger
  bool record_views_ GUARDED_BY(mutex_) = false;
  std::vector<C2View> views_ GUARDED_BY(mutex_);
  /// Bob-bound plaintexts, keyed by the query id that produced them
  /// (0 = untagged legacy traffic). FIFO-bounded like the op ledger: a
  /// front end that vanishes before fetching must not leak its bucket on a
  /// standing server.
  std::map<uint64_t, std::vector<BigInt>> bob_outbox_ GUARDED_BY(mutex_);
  std::deque<uint64_t> outbox_order_ GUARDED_BY(mutex_);
  /// Per-query operation accounting, FIFO-bounded so an abandoned query on
  /// a long-running server cannot leak ledger entries forever.
  static constexpr std::size_t kMaxLedgerEntries = 4096;
  std::map<uint64_t, OpSnapshot> op_ledger_ GUARDED_BY(mutex_);
  std::deque<uint64_t> op_ledger_order_ GUARDED_BY(mutex_);
};

}  // namespace sknn

#endif  // SKNN_PROTO_C2_SERVICE_H_
