#include "proto/c2_service.h"

#include <algorithm>
#include <numeric>

#include "bigint/random.h"

namespace sknn {

namespace {

/// Instrumentation/pickup opcodes perform no Paillier work of their own;
/// attributing them would re-create a just-drained ledger entry.
bool IsMetaOp(uint16_t type) {
  switch (static_cast<Op>(type)) {
    case Op::kPing:
    case Op::kFetchBobOutbox:
    case Op::kFetchQueryOps:
    case Op::kFetchPoolStats:
      return true;
    default:
      return false;
  }
}

/// req.ints[first, first + count) as ciphertexts, ready for DecryptMany.
std::vector<Ciphertext> CiphertextsAt(const Message& req, std::size_t first,
                                      std::size_t count) {
  std::vector<Ciphertext> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(req.ints[first + i]);
  }
  return out;
}

}  // namespace

Result<Message> C2Service::Handle(const Message& request) {
  if (request.query_id == 0 || IsMetaOp(request.type)) {
    return Dispatch(request);
  }
  // Attribute every Paillier operation this request causes to its query, so
  // C1 can report exact per-query cost even with many queries in flight.
  OpAccumulator local;
  Result<Message> resp = [&] {
    ScopedOpSink sink(&local);
    return Dispatch(request);
  }();
  RecordQueryOps(request.query_id, local.snapshot());
  return resp;
}

Result<Message> C2Service::Dispatch(const Message& request) {
  switch (static_cast<Op>(request.type)) {
    case Op::kPing: {
      Message resp;
      resp.type = OpCode(Op::kPing);
      return resp;
    }
    case Op::kSmBatch:
      return HandleSmBatch(request, /*parallel=*/false);
    case Op::kSmVec:
      return HandleSmBatch(request, /*parallel=*/true);
    case Op::kLsbBatch:
      return HandleLsbBatch(request, /*parallel=*/false);
    case Op::kLsbVec:
      return HandleLsbBatch(request, /*parallel=*/true);
    case Op::kSvrCheckBatch:
      return HandleSvrCheckBatch(request);
    case Op::kSminPhase2Batch:
      return HandleSminPhase2Batch(request, /*parallel=*/false);
    case Op::kSminPhase2Vec:
      return HandleSminPhase2Batch(request, /*parallel=*/true);
    case Op::kMinPointerBatch:
      return HandleMinPointerBatch(request);
    case Op::kTopKIndices:
      return HandleTopKIndices(request);
    case Op::kMaskedDecryptToBob:
      return HandleMaskedDecryptToBob(request);
    case Op::kFetchBobOutbox: {
      // Bob's pickup on his own connection: tagged fetches return exactly
      // his query's records, untagged fetches drain everything (the legacy
      // single-query deployment).
      Message resp;
      resp.type = OpCode(Op::kFetchBobOutbox);
      resp.ints = request.query_id != 0 ? TakeBobOutbox(request.query_id)
                                        : TakeBobOutbox();
      return resp;
    }
    case Op::kFetchQueryOps: {
      // A remote C1 front end collecting this query's C2-side Paillier cost
      // (the in-process engine calls TakeQueryOps directly instead).
      OpSnapshot ops = TakeQueryOps(request.query_id);
      Message resp;
      resp.type = OpCode(Op::kFetchQueryOps);
      resp.AppendAuxU64(ops.encryptions);
      resp.AppendAuxU64(ops.decryptions);
      resp.AppendAuxU64(ops.exponentiations);
      resp.AppendAuxU64(ops.multiplications);
      return resp;
    }
    case Op::kFetchPoolStats: {
      // A C1 front end answering a kServiceStats control-plane frame:
      // report this cloud's randomizer-pool effectiveness (capacity 0 =
      // no pool attached).
      Message resp;
      resp.type = OpCode(Op::kFetchPoolStats);
      resp.AppendAuxU64(rand_pool_ != nullptr ? rand_pool_->hits() : 0);
      resp.AppendAuxU64(rand_pool_ != nullptr ? rand_pool_->misses() : 0);
      resp.AppendAuxU64(rand_pool_ != nullptr ? rand_pool_->stock() : 0);
      resp.AppendAuxU64(rand_pool_ != nullptr ? rand_pool_->capacity() : 0);
      return resp;
    }
    default:
      return Status::ProtocolError("C2Service: unknown opcode " +
                                   std::to_string(request.type));
  }
}

void C2Service::EnableIntraMessageParallelism(std::size_t threads) {
  if (threads > 1) intra_pool_ = std::make_unique<ThreadPool>(threads);
}

void C2Service::EnableRandomizerPool(std::size_t capacity,
                                     std::size_t workers) {
  RandomizerPoolOptions options;
  options.workers = workers;
  EnableRandomizerPool(capacity, options);
}

void C2Service::EnableRandomizerPool(std::size_t capacity,
                                     const RandomizerPoolOptions& options) {
  rand_pool_ = std::make_unique<RandomizerPool>(sk_.public_key().n(),
                                                capacity, options);
  sk_.mutable_public_key().set_randomizer_pool(rand_pool_.get());
}

std::vector<BigInt> C2Service::TakeBobOutbox() {
  MutexLock lock(&mutex_);
  std::vector<BigInt> out;
  for (auto& [qid, bucket] : bob_outbox_) {
    (void)qid;
    for (auto& v : bucket) out.push_back(std::move(v));
  }
  bob_outbox_.clear();
  return out;
}

std::vector<BigInt> C2Service::TakeBobOutbox(uint64_t query_id) {
  MutexLock lock(&mutex_);
  auto it = bob_outbox_.find(query_id);
  if (it == bob_outbox_.end()) return {};
  std::vector<BigInt> out = std::move(it->second);
  bob_outbox_.erase(it);
  return out;
}

OpSnapshot C2Service::TakeQueryOps(uint64_t query_id) {
  MutexLock lock(&mutex_);
  auto it = op_ledger_.find(query_id);
  if (it == op_ledger_.end()) return {};
  OpSnapshot ops = it->second;
  op_ledger_.erase(it);
  return ops;
}

void C2Service::RecordQueryOps(uint64_t query_id, const OpSnapshot& ops) {
  MutexLock lock(&mutex_);
  auto [it, inserted] = op_ledger_.try_emplace(query_id);
  it->second = it->second + ops;
  if (inserted) {
    // Every ledger key is in the order deque, so bounding the deque bounds
    // the ledger (entries already drained by TakeQueryOps erase as no-ops).
    op_ledger_order_.push_back(query_id);
    while (op_ledger_order_.size() > kMaxLedgerEntries) {
      op_ledger_.erase(op_ledger_order_.front());
      op_ledger_order_.pop_front();
    }
  }
}

std::vector<C2View> C2Service::TakeViews() {
  MutexLock lock(&mutex_);
  std::vector<C2View> out;
  out.swap(views_);
  return out;
}

void C2Service::RecordView(Op op, const BigInt& plaintext) {
  MutexLock lock(&mutex_);
  if (record_views_) views_.push_back({op, plaintext});
}

// SM, Algorithm 1 step 2: h_i = D(a'_i) * D(b'_i) mod N, returned encrypted.
// The whole message runs through the batched crypto API: one DecryptMany
// over both operand columns, the cheap modmuls in the middle, one
// EncryptMany for the response — the vectorized form fans both batches
// across the intra-message pool. Views are still recorded in instance order.
Result<Message> C2Service::HandleSmBatch(const Message& req, bool parallel) {
  if (req.ints.size() % 2 != 0) {
    return Status::ProtocolError("kSmBatch: odd number of ciphertexts");
  }
  const std::size_t count = req.ints.size() / 2;
  const PaillierPublicKey& pk = sk_.public_key();
  ThreadPool* fan = FanPool(parallel);
  std::vector<BigInt> plain =
      sk_.DecryptMany(CiphertextsAt(req, 0, req.ints.size()), fan);
  std::vector<BigInt> hs(count);
  for (std::size_t i = 0; i < count; ++i) {
    hs[i] = plain[2 * i].MulMod(plain[2 * i + 1], pk.n());
  }
  std::vector<Ciphertext> enc = pk.EncryptMany(hs, fan);
  Message resp;
  resp.type = req.type;
  resp.ints.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    resp.ints[i] = enc[i].value();
    RecordView(Op::kSmBatch, plain[2 * i]);
    RecordView(Op::kSmBatch, plain[2 * i + 1]);
  }
  return resp;
}

// SBD Encrypted-LSB step: return a fresh encryption of parity(D(Y_i)).
Result<Message> C2Service::HandleLsbBatch(const Message& req, bool parallel) {
  const PaillierPublicKey& pk = sk_.public_key();
  const std::size_t count = req.ints.size();
  ThreadPool* fan = FanPool(parallel);
  std::vector<BigInt> plain =
      sk_.DecryptMany(CiphertextsAt(req, 0, count), fan);
  std::vector<BigInt> parities(count);
  for (std::size_t i = 0; i < count; ++i) {
    parities[i] = BigInt(plain[i].IsOdd() ? 1 : 0);
  }
  std::vector<Ciphertext> enc = pk.EncryptMany(parities, fan);
  Message resp;
  resp.type = req.type;
  resp.ints.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    resp.ints[i] = enc[i].value();
    RecordView(Op::kLsbBatch, plain[i]);
  }
  return resp;
}

// SVR: report (in aux) whether each blinded difference decrypts to zero.
Result<Message> C2Service::HandleSvrCheckBatch(const Message& req) {
  std::vector<BigInt> plain = sk_.DecryptMany(
      CiphertextsAt(req, 0, req.ints.size()), intra_pool_.get());
  Message resp;
  resp.type = OpCode(Op::kSvrCheckBatch);
  resp.aux.reserve(plain.size());
  for (const BigInt& v : plain) {
    RecordView(Op::kSvrCheckBatch, v);
    resp.aux.push_back(v.IsZero() ? 1 : 0);
  }
  return resp;
}

// SMIN, Algorithm 3 step 2. Per block: decrypt L', derive alpha, raise each
// Gamma' to alpha and RE-RANDOMIZE it (the re-encryption keeps alpha hidden
// from C1 when alpha = 0 — Gamma'^0 would otherwise be the identity
// ciphertext, a visible giveaway; the paper's security argument assumes all
// values C1 receives are fresh randomized encryptions, Section 4.3).
//
// Batched shape: one DecryptMany over every block's L' column, then ONE
// RerandomizeMany over the whole response. An alpha=0 slot rerandomizes
// the deterministic encoding of 0 (1 * r^N) and the trailing alpha slot
// rerandomizes EncodeDeterministic(alpha) ((1 + alpha*N) * r^N) — value
// for value what Encrypt would have produced, with identical op counts
// (Rerandomize and Encrypt both cost/count one encryption).
Result<Message> C2Service::HandleSminPhase2Batch(const Message& req,
                                                 bool parallel) {
  if (req.aux.size() != 8) {
    return Status::ProtocolError("kSminPhase2Batch: bad aux header");
  }
  uint32_t l = req.AuxU32At(0);
  uint32_t count = req.AuxU32At(4);
  if (l == 0 || req.ints.size() != static_cast<std::size_t>(2 * l) * count) {
    return Status::ProtocolError("kSminPhase2Batch: bad block geometry");
  }
  const PaillierPublicKey& pk = sk_.public_key();
  const BigInt one(1);
  ThreadPool* fan = FanPool(parallel);
  // Decrypt the permuted L' vectors of every block in one batch.
  std::vector<Ciphertext> l_cts;
  l_cts.reserve(static_cast<std::size_t>(l) * count);
  for (std::size_t b = 0; b < count; ++b) {
    const std::size_t base = b * 2 * l;
    for (uint32_t i = 0; i < l; ++i) {
      l_cts.emplace_back(req.ints[base + l + i]);
    }
  }
  std::vector<BigInt> plain = sk_.DecryptMany(l_cts, fan);
  // alpha_b = 1 iff some decrypted entry of block b equals 1.
  const Ciphertext zero_seed = pk.EncodeDeterministic(BigInt(0));
  std::vector<Ciphertext> carriers(static_cast<std::size_t>(l + 1) * count);
  for (std::size_t b = 0; b < count; ++b) {
    bool alpha = false;
    for (uint32_t i = 0; i < l; ++i) {
      if (plain[b * l + i] == one) alpha = true;
    }
    const std::size_t base = b * 2 * l;
    const std::size_t out_base = b * (l + 1);
    for (uint32_t i = 0; i < l; ++i) {
      carriers[out_base + i] =
          alpha ? Ciphertext(req.ints[base + i]) : zero_seed;
    }
    carriers[out_base + l] = pk.EncodeDeterministic(BigInt(alpha ? 1 : 0));
  }
  std::vector<Ciphertext> randomized = pk.RerandomizeMany(carriers, fan);
  Message resp;
  resp.type = req.type;
  resp.ints.resize(randomized.size());
  for (std::size_t i = 0; i < randomized.size(); ++i) {
    resp.ints[i] = randomized[i].value();
  }
  for (const BigInt& m : plain) RecordView(Op::kSminPhase2Batch, m);
  return resp;
}

// SkNN_m step 3(c): U has Epk(1) at (one of) the zero position(s) of the
// decrypted beta, Epk(0) elsewhere. One DecryptMany over beta, one
// EncryptMany for the one-hot response.
Result<Message> C2Service::HandleMinPointerBatch(const Message& req) {
  const PaillierPublicKey& pk = sk_.public_key();
  const std::size_t n = req.ints.size();
  ThreadPool* fan = intra_pool_.get();
  std::vector<BigInt> plain = sk_.DecryptMany(CiphertextsAt(req, 0, n), fan);
  std::vector<std::size_t> zero_positions;
  for (std::size_t i = 0; i < n; ++i) {
    RecordView(Op::kMinPointerBatch, plain[i]);
    if (plain[i].IsZero()) zero_positions.push_back(i);
  }
  if (zero_positions.empty()) {
    return Status::ProtocolError(
        "kMinPointerBatch: no zero entry in beta (protocol violation)");
  }
  // Ties (several records at the global minimum distance) are broken by a
  // random pick, exactly as prescribed in Section 4.2.
  std::size_t chosen =
      zero_positions[Random::ThreadLocal().UniformUint64(
          zero_positions.size())];
  std::vector<BigInt> one_hot(n);
  for (std::size_t i = 0; i < n; ++i) one_hot[i] = BigInt(i == chosen ? 1 : 0);
  std::vector<Ciphertext> enc = pk.EncryptMany(one_hot, fan);
  Message resp;
  resp.type = OpCode(Op::kMinPointerBatch);
  resp.ints.resize(n);
  for (std::size_t i = 0; i < n; ++i) resp.ints[i] = enc[i].value();
  return resp;
}

// SkNN_b step 3: decrypt all distances, return the k smallest indices.
Result<Message> C2Service::HandleTopKIndices(const Message& req) {
  if (req.aux.size() != 4) {
    return Status::ProtocolError("kTopKIndices: bad aux header");
  }
  uint32_t k = req.AuxU32At(0);
  if (k == 0 || k > req.ints.size()) {
    return Status::ProtocolError("kTopKIndices: k out of range");
  }
  std::vector<BigInt> dist = sk_.DecryptMany(
      CiphertextsAt(req, 0, req.ints.size()), intra_pool_.get());
  for (const auto& d : dist) RecordView(Op::kTopKIndices, d);
  std::vector<uint32_t> idx(dist.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](uint32_t a, uint32_t b) {
                      int c = dist[a].Compare(dist[b]);
                      return c != 0 ? c < 0 : a < b;  // deterministic ties
                    });
  Message resp;
  resp.type = OpCode(Op::kTopKIndices);
  for (uint32_t j = 0; j < k; ++j) resp.AppendAuxU32(idx[j]);
  return resp;
}

// Final step of both protocols: decrypt the randomized records and queue the
// plaintexts for Bob (C2 -> Bob leg; never sent back to C1).
Result<Message> C2Service::HandleMaskedDecryptToBob(const Message& req) {
  std::vector<BigInt> decrypted = sk_.DecryptMany(
      CiphertextsAt(req, 0, req.ints.size()), intra_pool_.get());
  for (const auto& v : decrypted) RecordView(Op::kMaskedDecryptToBob, v);
  {
    MutexLock lock(&mutex_);
    auto [it, inserted] = bob_outbox_.try_emplace(req.query_id);
    for (auto& v : decrypted) it->second.push_back(std::move(v));
    if (inserted) {
      // Same FIFO bound as the op ledger: a front end that crashes between
      // shipping the masked records and fetching them (or a dropped link on
      // the best-effort error-path drain) must not leak its bucket on a
      // long-running server forever. Drained buckets erase as no-ops.
      outbox_order_.push_back(req.query_id);
      while (outbox_order_.size() > kMaxLedgerEntries) {
        bob_outbox_.erase(outbox_order_.front());
        outbox_order_.pop_front();
      }
    }
  }
  Message resp;
  resp.type = OpCode(Op::kMaskedDecryptToBob);
  return resp;
}

}  // namespace sknn
