// Execution context shared by the C1-side protocol drivers: the public key,
// the RPC client to C2, and an optional thread pool for the parallel variant
// (paper Section 5.3). When a pool is present, batched requests are split
// into one chunk per worker and issued concurrently, and local homomorphic
// work fans out with ParallelFor — this is the library's analogue of the
// paper's OpenMP parallelization.
#ifndef SKNN_PROTO_CONTEXT_H_
#define SKNN_PROTO_CONTEXT_H_

#include <chrono>
#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/paillier.h"
#include "net/rpc.h"
#include "proto/opcodes.h"
#include "proto/query_meter.h"

namespace sknn {

class ProtoContext {
 public:
  /// `query_id` tags every RPC issued through this context so C2 can key its
  /// per-query state (Bob outbox, op ledger) — 0 means untagged. `meter`, if
  /// set, receives the context's exact per-query wire-traffic accounting.
  /// `vectorized` switches CallChunked to the vectorized wire forms: the
  /// whole batch rides in ONE message (C2 parallelizes internally) instead
  /// of one chunk per C1 worker. Default off = the paper-literal scalar
  /// protocol, kept as the bitwise reference for the vectorized path.
  ProtoContext(const PaillierPublicKey* pk, RpcClient* client,
               ThreadPool* pool = nullptr, uint64_t query_id = 0,
               QueryMeter* meter = nullptr, bool vectorized = false)
      : pk_(pk), client_(client), pool_(pool), query_id_(query_id),
        meter_(meter), vectorized_(vectorized) {}

  const PaillierPublicKey& pk() const { return *pk_; }
  /// \brief The C2 link, so a caller can derive sibling contexts for the
  /// same query (e.g. one per shard stage, each with its own meter).
  RpcClient* client() const { return client_; }
  ThreadPool* pool() const { return pool_; }
  uint64_t query_id() const { return query_id_; }
  QueryMeter* meter() const { return meter_; }
  bool vectorized() const { return vectorized_; }

  /// \brief Arms a per-query deadline: every Exchange from here on bounds
  /// its RPC wait by the time remaining and fails with kDeadlineExceeded
  /// once it runs out — so a hung C2 (or a hung worker, via the shard
  /// context that copies this) can never stall a query past its budget.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// \brief Single RPC round trip. Fails if C2 reported an error.
  Result<Message> Call(Op op, std::vector<BigInt> ints,
                       std::vector<uint8_t> aux = {});

  /// \brief Runs `fn(i)` for i in [0, count), parallel when a pool is set.
  void ForEach(std::size_t count,
               const std::function<void(std::size_t)>& fn) const;

  /// \brief Chunked batch call: `count` independent items, each contributing
  /// `in_arity` request ints and producing `out_arity` response ints.
  /// `make_aux(chunk_items)` builds the per-chunk aux header (may return
  /// empty). Responses are reassembled in item order. With a pool, one chunk
  /// per worker is issued concurrently (C2 then also decrypts in parallel).
  /// In vectorized mode the batch is never split: one message with the
  /// opcode's VectorForm carries every item, and C2 fans the instances out
  /// across its own pool — per-stage message count is 1 regardless of
  /// c1_threads.
  Result<std::vector<BigInt>> CallChunked(
      Op op, std::vector<BigInt> ints, std::size_t in_arity,
      std::size_t out_arity,
      const std::function<std::vector<uint8_t>(std::size_t)>& make_aux = {});

 private:
  /// \brief Issues one tagged, metered RPC (shared by Call / CallChunked).
  Result<Message> Exchange(Message request);

  const PaillierPublicKey* pk_;
  RpcClient* client_;
  ThreadPool* pool_;
  uint64_t query_id_ = 0;
  QueryMeter* meter_ = nullptr;
  bool vectorized_ = false;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace sknn

#endif  // SKNN_PROTO_CONTEXT_H_
