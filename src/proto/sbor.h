// Secure Bit-OR (SBOR), Section 3: Epk(o1 OR o2) from encrypted bits, via
// o1 OR o2 = o1 + o2 - o1*o2 with the product from one SM call. SkNN_m uses
// n*l SBORs per iteration to obliviously clamp the chosen record's distance
// to the all-ones maximum (Algorithm 6 step 3(e)).
#ifndef SKNN_PROTO_SBOR_H_
#define SKNN_PROTO_SBOR_H_

#include <vector>

#include "proto/context.h"

namespace sknn {

/// \brief Epk(o1 OR o2); operands must encrypt bits.
Result<Ciphertext> SecureBitOr(ProtoContext& ctx, const Ciphertext& o1,
                               const Ciphertext& o2);

/// \brief Element-wise OR over two bit vectors in one batched round trip.
Result<std::vector<Ciphertext>> SecureBitOrBatch(
    ProtoContext& ctx, const std::vector<Ciphertext>& o1s,
    const std::vector<Ciphertext>& o2s);

}  // namespace sknn

#endif  // SKNN_PROTO_SBOR_H_
