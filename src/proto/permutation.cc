#include "proto/permutation.h"

#include <numeric>

namespace sknn {

Permutation::Permutation(std::size_t n) : forward_(n) {
  std::iota(forward_.begin(), forward_.end(), 0);
}

Permutation Permutation::Sample(std::size_t n, Random& rng) {
  Permutation p(n);
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = rng.UniformUint64(i);  // j in [0, i)
    std::swap(p.forward_[i - 1], p.forward_[j]);
  }
  return p;
}

}  // namespace sknn
