// Secure Squared Euclidean Distance (SSED), Algorithm 2.
//
// C1 holds two attribute-wise encrypted vectors; the squared distance
// |X-Y|^2 = sum_i (x_i - y_i)^2 is assembled from homomorphic differences,
// one batched SM for the squares, and a homomorphic sum. Only squared
// distances are ever computed — the paper notes squaring preserves the
// ordering kNN needs, and exact roots are infeasible on ciphertexts.
#ifndef SKNN_PROTO_SSED_H_
#define SKNN_PROTO_SSED_H_

#include <vector>

#include "proto/context.h"

namespace sknn {

/// \brief Epk(|X - Y|^2) from Epk(X), Epk(Y) (equal-length vectors).
Result<Ciphertext> SecureSquaredDistance(ProtoContext& ctx,
                                         const std::vector<Ciphertext>& ex,
                                         const std::vector<Ciphertext>& ey);

/// \brief Distances from one encrypted query to many encrypted records in a
/// single batched SM round trip: out[i] = Epk(|records[i] - query|^2).
Result<std::vector<Ciphertext>> SecureSquaredDistanceBatch(
    ProtoContext& ctx, const std::vector<std::vector<Ciphertext>>& records,
    const std::vector<Ciphertext>& query);

}  // namespace sknn

#endif  // SKNN_PROTO_SSED_H_
