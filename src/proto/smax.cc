#include "proto/smax.h"

namespace sknn {
namespace {

std::vector<EncryptedBits> ComplementAll(const PaillierPublicKey& pk,
                                         const std::vector<EncryptedBits>& v) {
  std::vector<EncryptedBits> out;
  out.reserve(v.size());
  for (const auto& bits : v) out.push_back(ComplementBits(pk, bits));
  return out;
}

}  // namespace

EncryptedBits ComplementBits(const PaillierPublicKey& pk,
                             const EncryptedBits& bits) {
  Random& rng = Random::ThreadLocal();
  EncryptedBits out;
  out.reserve(bits.size());
  for (const auto& b : bits) {
    // batch-exempt: l encryptions per call (l = bit length, not records)
    out.push_back(pk.Sub(pk.Encrypt(BigInt(1), rng), b));
  }
  return out;
}

Result<std::vector<EncryptedBits>> SecureMaxBatch(
    ProtoContext& ctx, const std::vector<EncryptedBits>& us,
    const std::vector<EncryptedBits>& vs) {
  const PaillierPublicKey& pk = ctx.pk();
  SKNN_ASSIGN_OR_RETURN(
      std::vector<EncryptedBits> mins,
      SecureMinBatch(ctx, ComplementAll(pk, us), ComplementAll(pk, vs)));
  return ComplementAll(pk, mins);
}

Result<EncryptedBits> SecureMax(ProtoContext& ctx, const EncryptedBits& u,
                                const EncryptedBits& v) {
  SKNN_ASSIGN_OR_RETURN(std::vector<EncryptedBits> out,
                        SecureMaxBatch(ctx, {u}, {v}));
  return std::move(out[0]);
}

Result<EncryptedBits> SecureMaxN(ProtoContext& ctx,
                                 const std::vector<EncryptedBits>& ds) {
  const PaillierPublicKey& pk = ctx.pk();
  SKNN_ASSIGN_OR_RETURN(EncryptedBits min_bits,
                        SecureMinN(ctx, ComplementAll(pk, ds)));
  return ComplementBits(pk, min_bits);
}

}  // namespace sknn
