#include "proto/sbor.h"

#include "proto/sm.h"

namespace sknn {

Result<std::vector<Ciphertext>> SecureBitOrBatch(
    ProtoContext& ctx, const std::vector<Ciphertext>& o1s,
    const std::vector<Ciphertext>& o2s) {
  if (o1s.size() != o2s.size()) {
    return Status::InvalidArgument("SBOR: operand vectors differ in length");
  }
  const PaillierPublicKey& pk = ctx.pk();
  SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> ands,
                        SecureMultiplyBatch(ctx, o1s, o2s));
  std::vector<Ciphertext> out(o1s.size());
  ctx.ForEach(o1s.size(), [&](std::size_t i) {
    out[i] = pk.Sub(pk.Add(o1s[i], o2s[i]), ands[i]);
  });
  return out;
}

Result<Ciphertext> SecureBitOr(ProtoContext& ctx, const Ciphertext& o1,
                               const Ciphertext& o2) {
  SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> out,
                        SecureBitOrBatch(ctx, {o1}, {o2}));
  return out[0];
}

}  // namespace sknn
