#include "proto/context.h"

#include <string>

namespace sknn {

Result<Message> ProtoContext::Exchange(Message request) {
  request.query_id = query_id_;
  const std::size_t request_bytes = request.WireSize();
  std::chrono::milliseconds timeout{0};  // 0 = wait forever
  if (has_deadline_) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline_ - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::DeadlineExceeded("query deadline elapsed before the "
                                      "next protocol round");
    }
    timeout = remaining;
  }
  SKNN_ASSIGN_OR_RETURN(Message resp,
                        client_->Call(std::move(request), timeout));
  if (meter_ != nullptr) meter_->CountExchange(request_bytes, resp.WireSize());
  if (resp.type == OpCode(Op::kError)) {
    return Status::ProtocolError(
        "C2 error: " + std::string(resp.aux.begin(), resp.aux.end()));
  }
  return resp;
}

Result<Message> ProtoContext::Call(Op op, std::vector<BigInt> ints,
                                   std::vector<uint8_t> aux) {
  Message req;
  req.type = OpCode(op);
  req.ints = std::move(ints);
  req.aux = std::move(aux);
  return Exchange(std::move(req));
}

void ProtoContext::ForEach(std::size_t count,
                           const std::function<void(std::size_t)>& fn) const {
  if (pool_ != nullptr) {
    // Pool workers run iterations on behalf of this thread's query: carry
    // the caller's op sink across so per-query attribution stays exact.
    OpAccumulator* sink = OpCounters::ThreadSink();
    if (sink != nullptr) {
      pool_->ParallelFor(count, [&fn, sink](std::size_t i) {
        ScopedOpSink scoped(sink);
        fn(i);
      });
    } else {
      pool_->ParallelFor(count, fn);
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

Result<std::vector<BigInt>> ProtoContext::CallChunked(
    Op op, std::vector<BigInt> ints, std::size_t in_arity,
    std::size_t out_arity,
    const std::function<std::vector<uint8_t>(std::size_t)>& make_aux) {
  if (in_arity == 0 || ints.size() % in_arity != 0) {
    return Status::InvalidArgument("CallChunked: size not divisible by arity");
  }
  const std::size_t count = ints.size() / in_arity;
  if (count == 0) return std::vector<BigInt>{};

  if (vectorized_) {
    Message req;
    req.type = OpCode(VectorForm(op));
    req.ints = std::move(ints);
    if (make_aux) req.aux = make_aux(count);
    SKNN_ASSIGN_OR_RETURN(Message resp, Exchange(std::move(req)));
    if (resp.ints.size() != count * out_arity) {
      return Status::ProtocolError("CallChunked: bad vectorized response");
    }
    return std::move(resp.ints);
  }

  const std::size_t num_chunks =
      (pool_ == nullptr) ? 1 : std::min(count, pool_->num_threads());
  const std::size_t per_chunk = (count + num_chunks - 1) / num_chunks;

  std::vector<std::size_t> chunk_begin;  // in items
  for (std::size_t b = 0; b < count; b += per_chunk) chunk_begin.push_back(b);

  std::vector<Result<Message>> responses(
      chunk_begin.size(), Result<Message>(Status::Internal("unset")));
  auto issue = [&](std::size_t c) {
    std::size_t begin = chunk_begin[c];
    std::size_t end = std::min(begin + per_chunk, count);
    Message req;
    req.type = OpCode(op);
    req.ints.assign(ints.begin() + begin * in_arity,
                    ints.begin() + end * in_arity);
    if (make_aux) req.aux = make_aux(end - begin);
    responses[c] = Exchange(std::move(req));
  };
  if (pool_ != nullptr && chunk_begin.size() > 1) {
    std::vector<std::future<void>> futs;
    futs.reserve(chunk_begin.size());
    for (std::size_t c = 0; c < chunk_begin.size(); ++c) {
      futs.push_back(pool_->Submit([&, c] { issue(c); }));
    }
    for (auto& f : futs) f.get();
  } else {
    for (std::size_t c = 0; c < chunk_begin.size(); ++c) issue(c);
  }

  std::vector<BigInt> out;
  out.reserve(count * out_arity);
  for (std::size_t c = 0; c < chunk_begin.size(); ++c) {
    if (!responses[c].ok()) return responses[c].status();
    Message& resp = *responses[c];
    std::size_t begin = chunk_begin[c];
    std::size_t end = std::min(begin + per_chunk, count);
    if (resp.ints.size() != (end - begin) * out_arity) {
      return Status::ProtocolError("CallChunked: bad response arity");
    }
    for (auto& v : resp.ints) out.push_back(std::move(v));
  }
  return out;
}

}  // namespace sknn
