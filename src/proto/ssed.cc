#include "proto/ssed.h"

#include "proto/sm.h"

namespace sknn {

Result<std::vector<Ciphertext>> SecureSquaredDistanceBatch(
    ProtoContext& ctx, const std::vector<std::vector<Ciphertext>>& records,
    const std::vector<Ciphertext>& query) {
  const std::size_t n = records.size();
  const std::size_t m = query.size();
  if (n == 0) return std::vector<Ciphertext>{};
  for (const auto& rec : records) {
    if (rec.size() != m) {
      return Status::InvalidArgument("SSED: record/query dimension mismatch");
    }
  }
  const PaillierPublicKey& pk = ctx.pk();

  // Step 1: Epk(x_i - y_i) for every record and attribute, locally.
  std::vector<Ciphertext> diffs(n * m);
  ctx.ForEach(n, [&](std::size_t i) {
    for (std::size_t j = 0; j < m; ++j) {
      diffs[i * m + j] = pk.Sub(records[i][j], query[j]);
    }
  });

  // Step 2: Epk((x_i - y_i)^2) via one batched SM (diff * diff).
  SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> squares,
                        SecureMultiplyBatch(ctx, diffs, diffs));

  // Step 3: homomorphic sum per record.
  std::vector<Ciphertext> out(n);
  ctx.ForEach(n, [&](std::size_t i) {
    Ciphertext acc = squares[i * m];
    for (std::size_t j = 1; j < m; ++j) {
      acc = pk.Add(acc, squares[i * m + j]);
    }
    out[i] = std::move(acc);
  });
  return out;
}

Result<Ciphertext> SecureSquaredDistance(ProtoContext& ctx,
                                         const std::vector<Ciphertext>& ex,
                                         const std::vector<Ciphertext>& ey) {
  SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> out,
                        SecureSquaredDistanceBatch(ctx, {ex}, ey));
  return out[0];
}

}  // namespace sknn
