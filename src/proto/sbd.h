// Secure Bit-Decomposition (SBD) — the Samanthula-Jiang probabilistic
// protocol the paper adopts (reference [21], ASIACCS 2013).
//
// C1 holds Epk(z) with 0 <= z < 2^l; the output is [z] =
// <Epk(z_1), ..., Epk(z_l)> (MSB first, matching the paper's notation),
// known only to C1. The protocol extracts one encrypted LSB per round:
//
//   1. C1 blinds:  Y = Epk(z) * Epk(r),  r uniform in Z_N.
//   2. C2 returns a fresh encryption of parity(z + r mod N).
//   3. C1 un-flips the parity if r is odd:  Epk(lsb) or Epk(1 - lsb).
//   4. C1 shifts:  Epk(z) <- (Epk(z) * Epk(lsb)^{N-1})^{2^{-1} mod N}.
//
// Step 2 is wrong exactly when z + r wraps around N (probability < 2^l / N,
// N is odd so the wrap flips parity) — hence the verification round (SVR):
// C1 re-composes the bits, blinds the difference to the original with a
// random non-zero factor and asks C2 whether it decrypts to zero; failed
// instances are re-run with fresh randomness.
#ifndef SKNN_PROTO_SBD_H_
#define SKNN_PROTO_SBD_H_

#include <vector>

#include "proto/context.h"

namespace sknn {

struct SbdOptions {
  /// Bit width of the decomposition; caller guarantees z < 2^l.
  unsigned l = 0;
  /// Run the verification round and retry failures (recommended).
  bool verify = true;
  /// Give up after this many re-runs of a failing instance.
  int max_retries = 16;
  /// TEST HOOK: blind with r = N - 1 instead of a uniform r, which forces
  /// the mod-N wraparound for every z > 0 and so exercises the SVR/retry
  /// path deterministically. Never set outside tests.
  bool adversarial_masks_for_test = false;
};

/// \brief [z] (MSB-first, length opts.l) from Epk(z).
Result<std::vector<Ciphertext>> BitDecompose(ProtoContext& ctx,
                                             const Ciphertext& ez,
                                             const SbdOptions& opts);

/// \brief Batched decomposition of many values; one round trip per bit
/// position plus one verification round trip (independent of batch size).
Result<std::vector<std::vector<Ciphertext>>> BitDecomposeBatch(
    ProtoContext& ctx, const std::vector<Ciphertext>& ezs,
    const SbdOptions& opts);

/// \brief Homomorphically recomposes Epk(z) = prod Epk(z_i)^{2^{l-i}} from
/// MSB-first encrypted bits (used by SkNN_m step 3(b) and by SVR).
Ciphertext ComposeFromBits(const PaillierPublicKey& pk,
                           const std::vector<Ciphertext>& bits);

}  // namespace sknn

#endif  // SKNN_PROTO_SBD_H_
