#include "proto/sbd.h"

#include <algorithm>
#include <numeric>

namespace sknn {
namespace {

// One full (unverified) decomposition pass over the given instances.
// Returns LSB-first bits per instance.
Result<std::vector<std::vector<Ciphertext>>> DecomposePass(
    ProtoContext& ctx, const std::vector<Ciphertext>& ezs,
    const SbdOptions& opts) {
  const std::size_t count = ezs.size();
  const PaillierPublicKey& pk = ctx.pk();
  const BigInt& n = pk.n();
  // 2^{-1} mod N = (N+1)/2: the exact-division-by-two exponent.
  const BigInt inv2 = (n + BigInt(1)).ShiftRight(1);

  std::vector<Ciphertext> current(ezs.begin(), ezs.end());
  std::vector<std::vector<Ciphertext>> bits_lsb_first(
      count, std::vector<Ciphertext>(opts.l));

  for (unsigned t = 0; t < opts.l; ++t) {
    // Step 1: blind every instance (mask encryptions via the batch API —
    // this runs once per bit round over every in-flight instance).
    std::vector<BigInt> masks(count);
    for (std::size_t i = 0; i < count; ++i) {
      masks[i] = opts.adversarial_masks_for_test
                     ? n - BigInt(1)
                     : Random::ThreadLocal().Below(n);
    }
    std::vector<Ciphertext> enc_masks = pk.EncryptMany(masks, ctx.pool());
    std::vector<BigInt> request(count);
    ctx.ForEach(count, [&](std::size_t i) {
      request[i] = pk.Add(current[i], enc_masks[i]).value();
    });

    // Step 2: C2 returns Epk(parity(z + r mod N)).
    SKNN_ASSIGN_OR_RETURN(std::vector<BigInt> parities,
                          ctx.CallChunked(Op::kLsbBatch, std::move(request),
                                          /*in_arity=*/1, /*out_arity=*/1));

    // Steps 3-4: recover the encrypted LSB and shift right. With b = the
    // mask's parity (known to C1): lsb = b + (-1)^b * parity, i.e. parity
    // itself for even masks and its complement for odd ones. Both branches
    // are computed through the same formula (1 enc + 1 exp + 1 mul) so the
    // operation count is independent of the secret coin — no cost side
    // channel, and deterministic complexity accounting.
    std::vector<BigInt> parity_bits(count);
    for (std::size_t i = 0; i < count; ++i) {
      parity_bits[i] = BigInt(masks[i].IsOdd() ? 1 : 0);
    }
    std::vector<Ciphertext> enc_bits =
        pk.EncryptMany(parity_bits, ctx.pool());
    ctx.ForEach(count, [&](std::size_t i) {
      Ciphertext parity(parities[i]);
      const bool odd = masks[i].IsOdd();
      BigInt sign = odd ? n - BigInt(1) : BigInt(1);
      Ciphertext lsb = pk.Add(enc_bits[i], pk.MulScalar(parity, sign));
      bits_lsb_first[i][t] = lsb;
      current[i] = pk.MulScalar(pk.Sub(current[i], lsb), inv2);
    });
  }
  return bits_lsb_first;
}

}  // namespace

Ciphertext ComposeFromBits(const PaillierPublicKey& pk,
                           const std::vector<Ciphertext>& bits) {
  // bits are MSB first: z = sum_i bits[i] * 2^{l-1-i}.
  const std::size_t l = bits.size();
  Ciphertext acc = pk.MulScalar(bits[0], BigInt::PowerOfTwo(l - 1));
  for (std::size_t i = 1; i < l; ++i) {
    acc = pk.Add(acc, pk.MulScalar(bits[i], BigInt::PowerOfTwo(l - 1 - i)));
  }
  return acc;
}

Result<std::vector<std::vector<Ciphertext>>> BitDecomposeBatch(
    ProtoContext& ctx, const std::vector<Ciphertext>& ezs,
    const SbdOptions& opts) {
  if (opts.l == 0) {
    return Status::InvalidArgument("SBD: bit width l must be positive");
  }
  const std::size_t count = ezs.size();
  if (count == 0) return std::vector<std::vector<Ciphertext>>{};
  const PaillierPublicKey& pk = ctx.pk();
  const BigInt& n = pk.n();
  if (BigInt::PowerOfTwo(opts.l) >= n) {
    return Status::InvalidArgument(
        "SBD: 2^l must be smaller than the Paillier modulus");
  }

  std::vector<std::vector<Ciphertext>> result(count);
  std::vector<std::size_t> todo(count);
  std::iota(todo.begin(), todo.end(), 0);

  SbdOptions pass_opts = opts;
  for (int attempt = 0; !todo.empty(); ++attempt) {
    if (attempt > opts.max_retries) {
      return Status::ProtocolError(
          "SBD: exceeded retry budget (is z really < 2^l?)");
    }
    std::vector<Ciphertext> pending;
    pending.reserve(todo.size());
    for (std::size_t i : todo) pending.push_back(ezs[i]);

    SKNN_ASSIGN_OR_RETURN(std::vector<std::vector<Ciphertext>> passed,
                          DecomposePass(ctx, pending, pass_opts));
    // The adversarial hook only poisons the first pass, so retry converges.
    pass_opts.adversarial_masks_for_test = false;

    // Reverse to MSB-first, the paper's [z] convention.
    for (auto& bits : passed) {
      std::reverse(bits.begin(), bits.end());
    }

    if (!opts.verify) {
      for (std::size_t j = 0; j < todo.size(); ++j) {
        result[todo[j]] = std::move(passed[j]);
      }
      break;
    }

    // SVR: v = (recomposed - z) * gamma with gamma nonzero; C2 reports
    // whether each v decrypts to zero. gamma hides the error magnitude.
    std::vector<BigInt> check(todo.size());
    ctx.ForEach(todo.size(), [&](std::size_t j) {
      Random& rng = Random::ThreadLocal();
      Ciphertext recomposed = ComposeFromBits(pk, passed[j]);
      Ciphertext diff = pk.Sub(recomposed, ezs[todo[j]]);
      check[j] = pk.MulScalar(diff, rng.NonZeroBelow(n)).value();
    });
    SKNN_ASSIGN_OR_RETURN(Message resp,
                          ctx.Call(Op::kSvrCheckBatch, std::move(check)));
    if (resp.aux.size() != todo.size()) {
      return Status::ProtocolError("SBD: bad SVR response size");
    }

    std::vector<std::size_t> failed;
    for (std::size_t j = 0; j < todo.size(); ++j) {
      if (resp.aux[j] == 1) {
        result[todo[j]] = std::move(passed[j]);
      } else {
        failed.push_back(todo[j]);
      }
    }
    todo = std::move(failed);
  }
  return result;
}

Result<std::vector<Ciphertext>> BitDecompose(ProtoContext& ctx,
                                             const Ciphertext& ez,
                                             const SbdOptions& opts) {
  SKNN_ASSIGN_OR_RETURN(std::vector<std::vector<Ciphertext>> out,
                        BitDecomposeBatch(ctx, {ez}, opts));
  return std::move(out[0]);
}

}  // namespace sknn
