// Secure Minimum (SMIN, Algorithm 3) and Secure Minimum out of n numbers
// (SMIN_n, Algorithm 4).
//
// SMIN: C1 holds [u], [v] — encrypted bit vectors (MSB first, length l) —
// and learns [min(u,v)] without either party learning which operand won:
//
//   * C1 flips a private coin F in {u > v, v > u} and evaluates the chosen
//     comparison obliviously: W_i encrypts "bit i decides F", Gamma_i the
//     blinded bit difference, G_i = u_i XOR v_i, the H chain marks the first
//     differing position, Phi_i is zero exactly there, and L_i = W_i +
//     r'_i * Phi_i exposes the deciding W only at that position.
//   * C1 permutes Gamma and L with fresh permutations pi_1, pi_2 and sends
//     them; C2 decrypts L, sets alpha = [some entry == 1] (the outcome of F,
//     meaningless to C2 since F is secret), and returns re-randomized
//     Gamma^alpha plus Epk(alpha).
//   * C1 un-permutes, strips the Gamma blinding and recombines:
//     min_i = u_i + alpha*(v_i - u_i) when F: u > v (symmetrically for v).
//
// SMIN_n runs a bottom-up tournament of SMINs (ceil(log2 n) rounds); all
// pairs of a round ride in the same batched round trips.
#ifndef SKNN_PROTO_SMIN_H_
#define SKNN_PROTO_SMIN_H_

#include <vector>

#include "proto/context.h"

namespace sknn {

/// \brief An encrypted bit vector [z], MSB first — the paper's bracket
/// notation.
using EncryptedBits = std::vector<Ciphertext>;

/// \brief [min(u,v)] from [u], [v] (equal length l >= 1).
Result<EncryptedBits> SecureMin(ProtoContext& ctx, const EncryptedBits& u,
                                const EncryptedBits& v);

/// \brief Pairwise SMIN over a batch: out[i] = [min(us[i], vs[i])]. Two
/// round trips total regardless of batch size.
Result<std::vector<EncryptedBits>> SecureMinBatch(
    ProtoContext& ctx, const std::vector<EncryptedBits>& us,
    const std::vector<EncryptedBits>& vs);

/// \brief [min(d_1, ..., d_n)] via the tournament of Algorithm 4.
/// 2*ceil(log2 n) round trips.
Result<EncryptedBits> SecureMinN(ProtoContext& ctx,
                                 const std::vector<EncryptedBits>& ds);

/// \brief The naive ordering Algorithm 4 improves on: a sequential linear
/// scan (min = SMIN(min, d_i) one pair at a time). Same O(n-1) SMIN count
/// but 2*(n-1) round trips and no batching — kept as the ablation baseline
/// for the tournament design choice (see bench_ablation).
Result<EncryptedBits> SecureMinNLinear(ProtoContext& ctx,
                                       const std::vector<EncryptedBits>& ds);

}  // namespace sknn

#endif  // SKNN_PROTO_SMIN_H_
