#include "proto/smin.h"

#include <cstdint>

#include "proto/permutation.h"
#include "proto/sm.h"

namespace sknn {
namespace {

void AppendU32(std::vector<uint8_t>& aux, uint32_t v) {
  for (int i = 0; i < 4; ++i) aux.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

// Per-pair state C1 must remember between phase 1 and phase 3.
struct PairState {
  bool f_u_greater_v;        // the private functionality F
  std::vector<BigInt> r_hat; // Gamma blinding, length l
  Permutation pi1{0};        // applied to Gamma
};

}  // namespace

Result<std::vector<EncryptedBits>> SecureMinBatch(
    ProtoContext& ctx, const std::vector<EncryptedBits>& us,
    const std::vector<EncryptedBits>& vs) {
  if (us.size() != vs.size()) {
    return Status::InvalidArgument("SMIN: batch sizes differ");
  }
  const std::size_t count = us.size();
  if (count == 0) return std::vector<EncryptedBits>{};
  const std::size_t l = us[0].size();
  if (l == 0) {
    return Status::InvalidArgument("SMIN: empty bit vectors");
  }
  for (std::size_t b = 0; b < count; ++b) {
    if (us[b].size() != l || vs[b].size() != l) {
      return Status::InvalidArgument("SMIN: ragged bit vectors");
    }
  }
  const PaillierPublicKey& pk = ctx.pk();
  const BigInt& n = pk.n();
  const BigInt n_minus_1 = n - BigInt(1);
  const BigInt n_minus_2 = n - BigInt(2);

  // -- Round trip 1: Epk(u_i * v_i) for every pair and bit via batched SM.
  std::vector<Ciphertext> flat_u(count * l), flat_v(count * l);
  for (std::size_t b = 0; b < count; ++b) {
    for (std::size_t i = 0; i < l; ++i) {
      flat_u[b * l + i] = us[b][i];
      flat_v[b * l + i] = vs[b][i];
    }
  }
  SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> uv,
                        SecureMultiplyBatch(ctx, flat_u, flat_v));

  // -- Phase 1 (local): W, Gamma, G, H, Phi, L per Algorithm 3 step 1.
  std::vector<PairState> state(count);
  // Request layout per block: Gamma'_1..Gamma'_l, L'_1..L'_l.
  std::vector<BigInt> request(count * 2 * l);
  ctx.ForEach(count, [&](std::size_t b) {
    Random& rng = Random::ThreadLocal();
    PairState& st = state[b];
    st.f_u_greater_v = rng.UniformUint64(2) == 0;
    st.r_hat.resize(l);

    std::vector<Ciphertext> gamma(l), big_l(l);
    // batch-exempt: H_0 seed — one encryption per block
    Ciphertext h_prev = pk.Encrypt(BigInt(0), rng);  // H_0 = Epk(0)
    for (std::size_t i = 0; i < l; ++i) {
      const Ciphertext& ui = us[b][i];
      const Ciphertext& vi = vs[b][i];
      const Ciphertext& uivi = uv[b * l + i];

      Ciphertext w;
      Ciphertext diff;  // Epk(v_i - u_i) or Epk(u_i - v_i), by F
      if (st.f_u_greater_v) {
        w = pk.Sub(ui, uivi);       // Epk(u_i * (1 - v_i))
        diff = pk.Sub(vi, ui);
      } else {
        w = pk.Sub(vi, uivi);       // Epk(v_i * (1 - u_i))
        diff = pk.Sub(ui, vi);
      }
      st.r_hat[i] = rng.NonZeroBelow(n);
      // The H_i chain below is sequentially dependent, so this loop cannot
      // fan out; the pooled randomizers already cover its encryptions.
      // batch-exempt: sequential H-chain, cannot batch
      gamma[i] = pk.Add(diff, pk.Encrypt(st.r_hat[i], rng));

      // G_i = Epk(u_i XOR v_i) = Epk(u_i + v_i - 2 u_i v_i).
      Ciphertext g =
          pk.Add(pk.Add(ui, vi), pk.MulScalar(uivi, n_minus_2));
      // H_i = H_{i-1}^{r_i} * G_i with r_i nonzero: preserves the first
      // Epk(1), randomizes everything after it.
      Ciphertext h = pk.Add(pk.MulScalar(h_prev, rng.NonZeroBelow(n)), g);
      h_prev = h;
      // Phi_i = Epk(-1) * H_i: zero exactly at the first differing bit.
      // batch-exempt: depends on H_i from the sequential chain above
      Ciphertext phi = pk.Add(pk.Encrypt(n_minus_1, rng), h);
      // L_i = W_i * Phi_i^{r'_i}: the deciding W leaks only where Phi = 0.
      big_l[i] = pk.Add(w, pk.MulScalar(phi, rng.NonZeroBelow(n)));
    }

    st.pi1 = Permutation::Sample(l, rng);
    Permutation pi2 = Permutation::Sample(l, rng);
    std::vector<Ciphertext> gamma_perm = st.pi1.Apply(gamma);
    std::vector<Ciphertext> l_perm = pi2.Apply(big_l);
    for (std::size_t i = 0; i < l; ++i) {
      request[b * 2 * l + i] = gamma_perm[i].value();
      request[b * 2 * l + l + i] = l_perm[i].value();
    }
  });

  // -- Round trip 2: C2 derives alpha per block, returns M' and Epk(alpha).
  auto make_aux = [l](std::size_t chunk_items) {
    std::vector<uint8_t> aux;
    AppendU32(aux, static_cast<uint32_t>(l));
    AppendU32(aux, static_cast<uint32_t>(chunk_items));
    return aux;
  };
  SKNN_ASSIGN_OR_RETURN(
      std::vector<BigInt> response,
      ctx.CallChunked(Op::kSminPhase2Batch, std::move(request),
                      /*in_arity=*/2 * l, /*out_arity=*/l + 1, make_aux));

  // -- Phase 3 (local): strip blinding, recombine min bits.
  std::vector<EncryptedBits> out(count, EncryptedBits(l));
  ctx.ForEach(count, [&](std::size_t b) {
    const PairState& st = state[b];
    std::vector<Ciphertext> m_perm(l);
    for (std::size_t i = 0; i < l; ++i) {
      m_perm[i] = Ciphertext(response[b * (l + 1) + i]);
    }
    Ciphertext e_alpha(response[b * (l + 1) + l]);
    std::vector<Ciphertext> m = st.pi1.ApplyInverse(m_perm);
    for (std::size_t i = 0; i < l; ++i) {
      // lambda_i = M~_i * Epk(alpha)^{N - r^_i} = Epk(alpha*(diff_i)).
      Ciphertext lambda =
          pk.Add(m[i], pk.MulScalar(e_alpha, n - st.r_hat[i]));
      // min_i = u_i + alpha*(v_i - u_i)  (or v/u swapped when F: v > u).
      const Ciphertext& base = st.f_u_greater_v ? us[b][i] : vs[b][i];
      out[b][i] = pk.Add(base, lambda);
    }
  });
  return out;
}

Result<EncryptedBits> SecureMin(ProtoContext& ctx, const EncryptedBits& u,
                                const EncryptedBits& v) {
  SKNN_ASSIGN_OR_RETURN(std::vector<EncryptedBits> out,
                        SecureMinBatch(ctx, {u}, {v}));
  return std::move(out[0]);
}

Result<EncryptedBits> SecureMinNLinear(ProtoContext& ctx,
                                       const std::vector<EncryptedBits>& ds) {
  if (ds.empty()) {
    return Status::InvalidArgument("SMIN_n: empty input");
  }
  EncryptedBits acc = ds[0];
  for (std::size_t i = 1; i < ds.size(); ++i) {
    SKNN_ASSIGN_OR_RETURN(acc, SecureMin(ctx, acc, ds[i]));
  }
  return acc;
}

Result<EncryptedBits> SecureMinN(ProtoContext& ctx,
                                 const std::vector<EncryptedBits>& ds) {
  if (ds.empty()) {
    return Status::InvalidArgument("SMIN_n: empty input");
  }
  // Algorithm 4: bottom-up binary tournament. Each round pairs up the
  // surviving vectors; odd survivor advances unchanged. All SMINs of a
  // round share two batched round trips.
  std::vector<EncryptedBits> alive = ds;
  while (alive.size() > 1) {
    std::vector<EncryptedBits> us, vs;
    us.reserve(alive.size() / 2);
    vs.reserve(alive.size() / 2);
    for (std::size_t j = 0; j + 1 < alive.size(); j += 2) {
      us.push_back(std::move(alive[j]));
      vs.push_back(std::move(alive[j + 1]));
    }
    bool carry = (alive.size() % 2) == 1;
    EncryptedBits carried;
    if (carry) carried = std::move(alive.back());

    SKNN_ASSIGN_OR_RETURN(std::vector<EncryptedBits> winners,
                          SecureMinBatch(ctx, us, vs));
    alive = std::move(winners);
    if (carry) alive.push_back(std::move(carried));
  }
  return std::move(alive[0]);
}

}  // namespace sknn
