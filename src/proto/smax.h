// Secure Maximum — the De-Morgan dual of SMIN, built with zero additional
// interaction machinery:
//
//   max(u, v) = NOT min(NOT u, NOT v)
//
// where NOT flips every bit of the l-bit representation, a purely local
// homomorphic operation (1 - b = Epk(1) * Epk(b)^{N-1}). Security is
// inherited verbatim from SMIN.
//
// SMAX_n powers the secure k-FARTHEST-neighbor query (core/sknn_f.h) — the
// building block for the distance-based outlier detection the paper lists
// among downstream applications (Section 2.1.1).
#ifndef SKNN_PROTO_SMAX_H_
#define SKNN_PROTO_SMAX_H_

#include <vector>

#include "proto/context.h"
#include "proto/smin.h"

namespace sknn {

/// \brief Homomorphic bitwise complement of an encrypted bit vector:
/// out_i = Epk(1 - b_i). Local (no interaction).
EncryptedBits ComplementBits(const PaillierPublicKey& pk,
                             const EncryptedBits& bits);

/// \brief [max(u,v)] from [u], [v] (equal length l >= 1).
Result<EncryptedBits> SecureMax(ProtoContext& ctx, const EncryptedBits& u,
                                const EncryptedBits& v);

/// \brief Pairwise SMAX over a batch; two round trips total.
Result<std::vector<EncryptedBits>> SecureMaxBatch(
    ProtoContext& ctx, const std::vector<EncryptedBits>& us,
    const std::vector<EncryptedBits>& vs);

/// \brief [max(d_1, ..., d_n)] via the complemented SMIN_n tournament.
Result<EncryptedBits> SecureMaxN(ProtoContext& ctx,
                                 const std::vector<EncryptedBits>& ds);

}  // namespace sknn

#endif  // SKNN_PROTO_SMAX_H_
