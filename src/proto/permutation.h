// Random permutations — C1's access-pattern defense. SMIN permutes the
// Gamma and L vectors before C2 sees them (Algorithm 3 step 1(c,d)) and
// SkNN_m permutes the blinded distance differences (Algorithm 6 step 3(b)).
#ifndef SKNN_PROTO_PERMUTATION_H_
#define SKNN_PROTO_PERMUTATION_H_

#include <cstddef>
#include <vector>

#include "bigint/random.h"
#include "common/logging.h"

namespace sknn {

class Permutation {
 public:
  /// \brief Identity permutation of size n.
  explicit Permutation(std::size_t n);

  /// \brief Uniform random permutation (Fisher-Yates over the CSPRNG).
  static Permutation Sample(std::size_t n, Random& rng);

  std::size_t size() const { return forward_.size(); }

  /// \brief Image of index i: where element i of the input lands.
  std::size_t At(std::size_t i) const { return forward_[i]; }

  /// \brief out[pi(i)] = in[i].
  template <typename T>
  std::vector<T> Apply(const std::vector<T>& in) const {
    SKNN_CHECK(in.size() == forward_.size()) << "Permutation size mismatch";
    std::vector<T> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[forward_[i]] = in[i];
    return out;
  }

  /// \brief out[i] = in[pi(i)] — undoes Apply.
  template <typename T>
  std::vector<T> ApplyInverse(const std::vector<T>& in) const {
    SKNN_CHECK(in.size() == forward_.size()) << "Permutation size mismatch";
    std::vector<T> out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[forward_[i]];
    return out;
  }

 private:
  std::vector<std::size_t> forward_;
};

}  // namespace sknn

#endif  // SKNN_PROTO_PERMUTATION_H_
