#include "proto/sm.h"

namespace sknn {

Result<std::vector<Ciphertext>> SecureMultiplyBatch(
    ProtoContext& ctx, const std::vector<Ciphertext>& eas,
    const std::vector<Ciphertext>& ebs) {
  if (eas.size() != ebs.size()) {
    return Status::InvalidArgument("SM: operand vectors differ in length");
  }
  const std::size_t count = eas.size();
  if (count == 0) return std::vector<Ciphertext>{};
  const PaillierPublicKey& pk = ctx.pk();
  const BigInt& n = pk.n();

  // Step 1: blind both operands. ra, rb stay local to C1.
  std::vector<BigInt> ra(count), rb(count);
  std::vector<BigInt> request(2 * count);
  ctx.ForEach(count, [&](std::size_t i) {
    Random& rng = Random::ThreadLocal();
    ra[i] = rng.Below(n);
    rb[i] = rng.Below(n);
    Ciphertext a_blind = pk.Add(eas[i], pk.Encrypt(ra[i], rng));
    Ciphertext b_blind = pk.Add(ebs[i], pk.Encrypt(rb[i], rng));
    request[2 * i] = a_blind.value();
    request[2 * i + 1] = b_blind.value();
  });

  // Step 2: C2 decrypts, multiplies, re-encrypts h = (a+ra)(b+rb) mod N.
  SKNN_ASSIGN_OR_RETURN(
      std::vector<BigInt> h,
      ctx.CallChunked(Op::kSmBatch, std::move(request), /*in_arity=*/2,
                      /*out_arity=*/1));

  // Step 3: strip the cross terms:
  //   Epk(ab) = h' * Epk(a)^{N-rb} * Epk(b)^{N-ra} * Epk(ra*rb)^{N-1}.
  std::vector<Ciphertext> out(count);
  ctx.ForEach(count, [&](std::size_t i) {
    Random& rng = Random::ThreadLocal();
    Ciphertext s = pk.Add(Ciphertext(h[i]), pk.MulScalar(eas[i], n - rb[i]));
    Ciphertext s_prime = pk.Add(s, pk.MulScalar(ebs[i], n - ra[i]));
    Ciphertext cross = pk.Encrypt(ra[i].MulMod(rb[i], n), rng);
    out[i] = pk.Add(s_prime, pk.MulScalar(cross, n - BigInt(1)));
  });
  return out;
}

Result<Ciphertext> SecureMultiply(ProtoContext& ctx, const Ciphertext& ea,
                                  const Ciphertext& eb) {
  SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> out,
                        SecureMultiplyBatch(ctx, {ea}, {eb}));
  return out[0];
}

}  // namespace sknn
