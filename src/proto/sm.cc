#include "proto/sm.h"

namespace sknn {

Result<std::vector<Ciphertext>> SecureMultiplyBatch(
    ProtoContext& ctx, const std::vector<Ciphertext>& eas,
    const std::vector<Ciphertext>& ebs) {
  if (eas.size() != ebs.size()) {
    return Status::InvalidArgument("SM: operand vectors differ in length");
  }
  const std::size_t count = eas.size();
  if (count == 0) return std::vector<Ciphertext>{};
  const PaillierPublicKey& pk = ctx.pk();
  const BigInt& n = pk.n();

  // Step 1: blind both operands. ra, rb stay local to C1. The 2n blinding
  // encryptions — the hottest C1 loop of the whole protocol — go through
  // the batched API so they share the randomizer pool and fan out together.
  std::vector<BigInt> ra(count), rb(count);
  std::vector<BigInt> blinds(2 * count);
  for (std::size_t i = 0; i < count; ++i) {
    Random& rng = Random::ThreadLocal();
    ra[i] = rng.Below(n);
    rb[i] = rng.Below(n);
    blinds[2 * i] = ra[i];
    blinds[2 * i + 1] = rb[i];
  }
  std::vector<Ciphertext> enc_blinds = pk.EncryptMany(blinds, ctx.pool());
  std::vector<BigInt> request(2 * count);
  ctx.ForEach(count, [&](std::size_t i) {
    request[2 * i] = pk.Add(eas[i], enc_blinds[2 * i]).value();
    request[2 * i + 1] = pk.Add(ebs[i], enc_blinds[2 * i + 1]).value();
  });

  // Step 2: C2 decrypts, multiplies, re-encrypts h = (a+ra)(b+rb) mod N.
  SKNN_ASSIGN_OR_RETURN(
      std::vector<BigInt> h,
      ctx.CallChunked(Op::kSmBatch, std::move(request), /*in_arity=*/2,
                      /*out_arity=*/1));

  // Step 3: strip the cross terms:
  //   Epk(ab) = h' * Epk(a)^{N-rb} * Epk(b)^{N-ra} * Epk(ra*rb)^{N-1}.
  std::vector<BigInt> cross_plain(count);
  for (std::size_t i = 0; i < count; ++i) {
    cross_plain[i] = ra[i].MulMod(rb[i], n);
  }
  std::vector<Ciphertext> cross = pk.EncryptMany(cross_plain, ctx.pool());
  std::vector<Ciphertext> out(count);
  ctx.ForEach(count, [&](std::size_t i) {
    Ciphertext s = pk.Add(Ciphertext(h[i]), pk.MulScalar(eas[i], n - rb[i]));
    Ciphertext s_prime = pk.Add(s, pk.MulScalar(ebs[i], n - ra[i]));
    out[i] = pk.Add(s_prime, pk.MulScalar(cross[i], n - BigInt(1)));
  });
  return out;
}

Result<Ciphertext> SecureMultiply(ProtoContext& ctx, const Ciphertext& ea,
                                  const Ciphertext& eb) {
  SKNN_ASSIGN_OR_RETURN(std::vector<Ciphertext> out,
                        SecureMultiplyBatch(ctx, {ea}, {eb}));
  return out[0];
}

}  // namespace sknn
