// Secure Multiplication (SM), Algorithm 1.
//
// C1 holds Epk(a), Epk(b); C2 holds sk. Output Epk(a*b) is known only to C1.
// Based on the identity (Equation 1):
//   a*b = (a + r_a)(b + r_b) - a*r_b - b*r_a - r_a*r_b   (mod N)
// C1 blinds both operands, C2 decrypts and multiplies the blinded values,
// and C1 strips the three cross terms homomorphically.
#ifndef SKNN_PROTO_SM_H_
#define SKNN_PROTO_SM_H_

#include <vector>

#include "proto/context.h"

namespace sknn {

/// \brief Epk(a*b) from Epk(a), Epk(b); one round trip.
Result<Ciphertext> SecureMultiply(ProtoContext& ctx, const Ciphertext& ea,
                                  const Ciphertext& eb);

/// \brief Element-wise SM over two equal-length vectors in one (chunked)
/// round trip. This batching is what makes the per-record independence of
/// Section 5.3 exploitable.
Result<std::vector<Ciphertext>> SecureMultiplyBatch(
    ProtoContext& ctx, const std::vector<Ciphertext>& eas,
    const std::vector<Ciphertext>& ebs);

}  // namespace sknn

#endif  // SKNN_PROTO_SM_H_
