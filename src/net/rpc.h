// Request/response layer over an Endpoint (in-memory channel or socket).
//
// RpcClient is used by C1 (the protocol driver): Call() serializes a request,
// assigns a fresh correlation id and blocks until the matching response
// arrives. Many threads may Call() concurrently — a demux thread routes
// responses by correlation id, which is what makes the paper's parallel
// variant (Section 5.3) possible without one channel per worker.
//
// RpcServer is used by C2 (the key holder): it loops over incoming requests
// and dispatches them to a Handler, optionally on a worker pool.
#ifndef SKNN_NET_RPC_H_
#define SKNN_NET_RPC_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "net/channel.h"
#include "net/message.h"

namespace sknn {

class RpcClient {
 public:
  explicit RpcClient(std::unique_ptr<Endpoint> endpoint);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// \brief Sends `request` (correlation id is assigned internally) and
  /// blocks until the response with the same id arrives. Thread-safe.
  ///
  /// `timeout` bounds the wait: zero means wait forever (the pre-deadline
  /// behavior); a positive timeout resolves a call whose peer is alive but
  /// silent — hung, SIGSTOPped, overloaded — to kDeadlineExceeded instead
  /// of blocking until the link dies. A response that arrives after the
  /// timeout is dropped by the demux as an unknown correlation id.
  Result<Message> Call(Message request,
                       std::chrono::milliseconds timeout =
                           std::chrono::milliseconds{0});

  /// \brief Installs a handler for unsolicited server->client notes (frames
  /// with correlation id 0, which no Call ever uses — see RpcServer::Push).
  /// Runs on the demux thread: keep it fast and non-blocking. Pass nullptr
  /// to uninstall. Thread-safe.
  void SetNoteHandler(std::function<void(const Message&)> handler);

  /// \brief Closes the underlying link; outstanding calls fail.
  void Shutdown();

 private:
  void DemuxLoop();

  struct PendingCall {
    Mutex mutex;
    CondVar cv;
    bool done GUARDED_BY(mutex) = false;
    Result<Message> result GUARDED_BY(mutex) =
        Status::ProtocolError("uninitialized");
  };

  std::unique_ptr<Endpoint> endpoint_;
  std::atomic<uint64_t> next_id_{1};
  Mutex pending_mutex_;
  std::map<uint64_t, std::shared_ptr<PendingCall>> pending_
      GUARDED_BY(pending_mutex_);
  Mutex note_mutex_;
  std::function<void(const Message&)> note_handler_ GUARDED_BY(note_mutex_);
  std::thread demux_thread_;
  std::atomic<bool> shutdown_{false};
  /// Set by the demux loop on its way out (peer closed the link): calls
  /// issued AFTER the final pending sweep must fail fast, not wait on a
  /// response thread that no longer exists.
  std::atomic<bool> link_down_{false};
};

class RpcServer {
 public:
  /// \brief Handler maps a request to a response. It runs on server threads
  /// and must be thread-safe when worker_threads > 1. The response's
  /// correlation id is overwritten with the request's.
  using Handler = std::function<Result<Message>(const Message&)>;

  RpcServer(std::unique_ptr<Endpoint> endpoint, Handler handler,
            std::size_t worker_threads = 1);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// \brief Stops the accept loop and joins workers.
  void Shutdown();

  /// \brief Sends an unsolicited server->client note. The frame goes out
  /// with correlation id 0 — an id Call never assigns — so the client's
  /// demux routes it to its note handler (RpcClient::SetNoteHandler)
  /// instead of a pending call. Returns false once the link is down.
  bool Push(Message note);

  /// \brief Blocks until the peer closes the link (accept loop exits).
  /// Used by the standalone C2 server to serve a connection to completion.
  void WaitForClose();

  /// \brief True once the peer has closed the link and the accept loop has
  /// exited (queued pool work may still be draining). Lets a connection
  /// manager (serve/QueryService) reap dead sessions without blocking.
  bool Finished() const { return finished_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void HandleFrame(std::vector<uint8_t> frame);

  std::unique_ptr<Endpoint> endpoint_;
  Handler handler_;
  std::unique_ptr<ThreadPool> pool_;  // null => handle inline
  std::thread accept_thread_;
  /// Serializes response frames from concurrent pool workers; guards no
  /// field — the endpoint itself is internally synchronized, the mutex only
  /// keeps whole frames from interleaving on the wire.
  Mutex send_mutex_;
  std::atomic<bool> finished_{false};
};

}  // namespace sknn

#endif  // SKNN_NET_RPC_H_
