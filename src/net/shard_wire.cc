#include "net/shard_wire.h"

#include <bit>
#include <string>

namespace sknn {
namespace {

Status BadFrame(const char* what) {
  return Status::ProtocolError(std::string("shard frame: ") + what);
}

void AppendF64(Message& msg, double v) {
  msg.AppendAuxU64(std::bit_cast<uint64_t>(v));
}

double F64At(const Message& msg, std::size_t offset) {
  return std::bit_cast<double>(msg.AuxU64At(offset));
}

}  // namespace

Message EncodeShardPing() {
  Message msg;
  msg.type = ShardOpCode(ShardOp::kShardPing);
  return msg;
}

Message EncodeShardGeometry(const ShardGeometry& geometry) {
  Message msg;
  msg.type = ShardOpCode(ShardOp::kShardPing);
  msg.AppendAuxU32(geometry.shard);
  msg.AppendAuxU32(static_cast<uint32_t>(geometry.manifest.scheme));
  msg.AppendAuxU32(static_cast<uint32_t>(geometry.manifest.num_shards));
  msg.AppendAuxU32(static_cast<uint32_t>(geometry.manifest.total_records));
  msg.AppendAuxU32(geometry.num_attributes);
  msg.AppendAuxU32(geometry.distance_bits);
  msg.AppendAuxU32(geometry.shard_records);
  return msg;
}

Result<ShardGeometry> DecodeShardGeometry(const Message& msg) {
  if (msg.type != ShardOpCode(ShardOp::kShardPing)) {
    return BadFrame("not a kShardPing response");
  }
  // Coordinator and workers deploy as a unit (same build), so the geometry
  // frame carries no compatibility tail: it is exactly 28 bytes.
  if (msg.aux.size() != 28) return BadFrame("bad geometry payload");
  ShardGeometry geometry;
  geometry.shard = msg.AuxU32At(0);
  const uint32_t scheme = msg.AuxU32At(4);
  if (scheme > static_cast<uint32_t>(ShardScheme::kByCluster)) {
    return BadFrame("unknown shard scheme");
  }
  geometry.manifest.scheme = static_cast<ShardScheme>(scheme);
  geometry.manifest.num_shards = msg.AuxU32At(8);
  geometry.manifest.total_records = msg.AuxU32At(12);
  geometry.num_attributes = msg.AuxU32At(16);
  geometry.distance_bits = msg.AuxU32At(20);
  geometry.shard_records = msg.AuxU32At(24);
  return geometry;
}

Message EncodeShardQuery(const ShardQueryFrame& frame) {
  Message msg;
  msg.type = ShardOpCode(ShardOp::kShardQuery);
  msg.query_id = frame.query_id;
  msg.AppendAuxU32(frame.k);
  msg.AppendAuxU32(static_cast<uint32_t>(frame.protocol));
  if (frame.deadline_ms != 0) msg.AppendAuxU32(frame.deadline_ms);
  msg.ints.reserve(frame.enc_query.size());
  for (const auto& c : frame.enc_query) msg.ints.push_back(c.value());
  return msg;
}

Result<ShardQueryFrame> DecodeShardQuery(const Message& msg) {
  if (msg.type != ShardOpCode(ShardOp::kShardQuery)) {
    return BadFrame("not a kShardQuery frame");
  }
  // 8 bytes = the original header; 12 = with the trailing deadline word.
  if (msg.aux.size() != 8 && msg.aux.size() != 12) {
    return BadFrame("bad kShardQuery header");
  }
  ShardQueryFrame frame;
  frame.query_id = msg.query_id;
  frame.k = msg.AuxU32At(0);
  if (msg.aux.size() == 12) frame.deadline_ms = msg.AuxU32At(8);
  const uint32_t protocol = msg.AuxU32At(4);
  if (protocol > static_cast<uint32_t>(QueryProtocol::kFarthest)) {
    return BadFrame("unknown protocol");
  }
  frame.protocol = static_cast<QueryProtocol>(protocol);
  if (frame.k == 0) return BadFrame("k must be at least 1");
  if (msg.ints.empty()) return BadFrame("empty query vector");
  frame.enc_query.reserve(msg.ints.size());
  for (const auto& v : msg.ints) frame.enc_query.emplace_back(v);
  return frame;
}

Message EncodeShardCandidates(const ShardCandidatesFrame& frame) {
  const ShardCandidates& c = frame.candidates;
  const std::size_t count = c.count();
  const std::size_t bits_per = c.bits.empty() ? 0 : c.bits[0].size();
  const std::size_t m = c.records.empty() ? 0 : c.records[0].size();
  Message msg;
  msg.type = ShardOpCode(ShardOp::kShardCandidates);
  msg.AppendAuxU32(static_cast<uint32_t>(count));
  msg.AppendAuxU32(static_cast<uint32_t>(bits_per));
  msg.AppendAuxU32(static_cast<uint32_t>(m));
  msg.AppendAuxU32(c.distances.empty() ? 0 : 1);
  for (uint32_t gidx : c.global_indices) msg.AppendAuxU32(gidx);
  AppendF64(msg, frame.seconds);
  msg.AppendAuxU64(frame.traffic.frames_a_to_b);
  msg.AppendAuxU64(frame.traffic.bytes_a_to_b);
  msg.AppendAuxU64(frame.traffic.frames_b_to_a);
  msg.AppendAuxU64(frame.traffic.bytes_b_to_a);
  msg.AppendAuxU64(frame.ops.encryptions);
  msg.AppendAuxU64(frame.ops.decryptions);
  msg.AppendAuxU64(frame.ops.exponentiations);
  msg.AppendAuxU64(frame.ops.multiplications);
  msg.ints.reserve(count * (bits_per + m) + c.distances.size());
  for (const auto& bits : c.bits) {
    for (const auto& b : bits) msg.ints.push_back(b.value());
  }
  for (const auto& record : c.records) {
    for (const auto& attr : record) msg.ints.push_back(attr.value());
  }
  for (const auto& d : c.distances) msg.ints.push_back(d.value());
  return msg;
}

Result<ShardCandidatesFrame> DecodeShardCandidates(const Message& msg) {
  if (msg.type == ShardOpCode(ShardOp::kShardError)) {
    return DecodeShardError(msg);
  }
  if (msg.type != ShardOpCode(ShardOp::kShardCandidates)) {
    return BadFrame("not a kShardCandidates frame");
  }
  if (msg.aux.size() < 16) return BadFrame("truncated candidates header");
  const std::size_t count = msg.AuxU32At(0);
  const std::size_t bits_per = msg.AuxU32At(4);
  const std::size_t m = msg.AuxU32At(8);
  const bool has_distances = msg.AuxU32At(12) != 0;
  constexpr std::size_t kMaxDim = std::size_t{1} << 20;
  if (count == 0 || count > kMaxDim || bits_per > kMaxDim || m == 0 ||
      m > kMaxDim) {
    return BadFrame("candidates geometry implausible");
  }
  const std::size_t index_count = has_distances ? count : 0;
  // Header, per-candidate global indices (basic only), seconds, 4 traffic
  // counters, 4 op counters.
  if (msg.aux.size() != 16 + index_count * 4 + (1 + 4 + 4) * 8) {
    return BadFrame("candidates aux geometry mismatch");
  }
  const std::size_t want_ints =
      count * (bits_per + m) + (has_distances ? count : 0);
  if (msg.ints.size() != want_ints) {
    return BadFrame("candidates payload geometry mismatch");
  }
  if (has_distances == (bits_per > 0)) {
    return BadFrame("candidates must carry bits XOR distances");
  }
  ShardCandidatesFrame frame;
  ShardCandidates& c = frame.candidates;
  std::size_t at = 0;
  if (bits_per > 0) {
    c.bits.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      EncryptedBits bits;
      bits.reserve(bits_per);
      for (std::size_t g = 0; g < bits_per; ++g) {
        bits.emplace_back(msg.ints[at++]);
      }
      c.bits.push_back(std::move(bits));
    }
  }
  c.records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<Ciphertext> record;
    record.reserve(m);
    for (std::size_t j = 0; j < m; ++j) record.emplace_back(msg.ints[at++]);
    c.records.push_back(std::move(record));
  }
  if (has_distances) {
    c.distances.reserve(count);
    c.global_indices.reserve(count);
    for (std::size_t i = 0; i < count; ++i) c.distances.emplace_back(msg.ints[at++]);
    for (std::size_t i = 0; i < count; ++i) {
      c.global_indices.push_back(msg.AuxU32At(16 + i * 4));
    }
  }
  const std::size_t tail = 16 + index_count * 4;
  frame.seconds = F64At(msg, tail);
  frame.traffic.frames_a_to_b = msg.AuxU64At(tail + 8);
  frame.traffic.bytes_a_to_b = msg.AuxU64At(tail + 16);
  frame.traffic.frames_b_to_a = msg.AuxU64At(tail + 24);
  frame.traffic.bytes_b_to_a = msg.AuxU64At(tail + 32);
  frame.ops.encryptions = msg.AuxU64At(tail + 40);
  frame.ops.decryptions = msg.AuxU64At(tail + 48);
  frame.ops.exponentiations = msg.AuxU64At(tail + 56);
  frame.ops.multiplications = msg.AuxU64At(tail + 64);
  return frame;
}

Message EncodeShardError(const Status& status) {
  Message msg;
  msg.type = ShardOpCode(ShardOp::kShardError);
  msg.AppendAuxU32(static_cast<uint32_t>(status.code()));
  const std::string& text = status.message();
  msg.aux.insert(msg.aux.end(), text.begin(), text.end());
  return msg;
}

Status DecodeShardError(const Message& msg) {
  if (msg.type != ShardOpCode(ShardOp::kShardError) || msg.aux.size() < 4) {
    return BadFrame("malformed kShardError frame");
  }
  const uint32_t code = msg.AuxU32At(0);
  if (code == 0 ||
      code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return BadFrame("kShardError carries an unknown status code");
  }
  return Status(static_cast<StatusCode>(code),
                std::string(msg.aux.begin() + 4, msg.aux.end()));
}

}  // namespace sknn
