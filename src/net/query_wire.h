// Front-end wire contract: the versioned client <-> C1 serving protocol.
//
// The serving topology (docs/DEPLOY.md) splits Bob from C1: a thin client
// connects to the standing C1 query front end (serve/query_service.h),
// NEGOTIATES the contract with one kHello/kHelloAck exchange — protocol
// revision plus feature bits, so a client from the wrong era gets a typed
// kQueryError instead of silent garbage — and then sends kQuery frames,
// each naming the TABLE it targets (the front end may host many independent
// encrypted tables behind one port; empty = the sole table, the pre-
// multi-table client shape). Answers are kQueryResult frames carrying the
// records plus the full instrumentation payload, or kQueryError frames
// carrying a real Status — code and message — so callers can distinguish
// "retry later" (ResourceExhausted backpressure, Unavailable) from "fix
// your request" (InvalidArgument/OutOfRange/NotFound).
//
// Alongside the data path rides a small control plane: kListTables (what is
// served), kTableInfo (one table's geometry and shard topology), and
// kServiceStats (per-table admission counters, in-flight, uptime) — the
// same frames sknn_admin prints and every later scaling PR (per-table
// caching, replication, resharding) introspects.
//
// Frames ride the existing Message/WireCodec/Endpoint stack, so the client
// <-> front-end link reuses RpcClient/RpcServer unchanged (correlation-id
// demux, length-prefixed framing) over TCP or the in-memory channel. The
// FrontendOp opcode space is disjoint from the C1<->C2 Op space: a frame
// from the wrong link is rejected, never misinterpreted.
//
// The full frame catalog, negotiation rules and version-compatibility
// policy are specified in docs/API.md.
#ifndef SKNN_NET_QUERY_WIRE_H_
#define SKNN_NET_QUERY_WIRE_H_

#include <string>
#include <vector>

#include "core/query_api.h"
#include "net/message.h"

namespace sknn {

/// \brief Revision of the client-facing wire contract this build speaks.
/// Revision history:
///   1 — PR 3/4: unversioned kQuery/kQueryResult/kQueryError only.
///   2 — PR 5: hello/negotiation mandatory, kQuery carries a table name,
///       control-plane frames (list/info/stats).
///   3 — PR 7: per-query deadlines (kQuery gains a trailing deadline_ms),
///       replica stats in kQueryResult's per-shard block (a LAYOUT change —
///       revision-2 decoders would misread it, hence the min bump), replica
///       health (kHealth), hot table reload/detach (kReloadTable /
///       kDetachTable / kAdminAck) and the kTableChanged server note.
///   4 — PR 8: randomizer-pool counters in kServiceStatsResult's per-table
///       block (8 trailing u64 per table — a LAYOUT change, revision-3
///       decoders would misparse the widened entry, hence the min bump).
///   5 — PR 9: clustered (approximate) index mode. kQuery grows an optional
///       [index_mode:u32][probe_clusters:u32] tail after the deadline,
///       kQueryResult's per-shard block widens by [pruned:u32]
///       [shard_records:u32] (a LAYOUT change — revision-4 decoders would
///       misread the 96-byte entries, hence the min bump), and
///       kTableInfoResult appends [num_clusters:u32].
///   6 — PR 10: serving QoS. kQueryResult appends a mandatory cache tail
///       after the shard blocks ([cache_hit:u32][enc_count:u32] plus the
///       rerandomized result ciphertexts — a LAYOUT change: a revision-5
///       decoder's exact-size check rejects every revision-6 result, hence
///       the min bump), kQuery gains flags bit 2 (no_cache),
///       kServiceStatsResult's per-table block widens by the admission
///       weight/share and result-cache counters and the reply appends a
///       per-API-key section, kAuthenticate/kAuthAck gate the data plane
///       when the server runs with an API-key registry, and the
///       kPermissionDenied status code crosses the wire.
constexpr uint32_t kProtocolRevision = 6;
/// \brief Oldest client revision the server still accepts. Revision 5
/// clients would reject the widened kQueryResult (their exact-size check
/// fails on the cache tail), so the hello gate turns them away with a typed
/// error instead of letting them decode garbage. Revision 1 clients cannot
/// hello at all; their first kQuery gets the typed missing-hello error.
constexpr uint32_t kMinSupportedRevision = 6;

/// \brief Feature bits advertised in kHello/kHelloAck. A client MUST ignore
/// bits it does not know; a server advertises exactly what it implements.
enum FrontendFeature : uint32_t {
  /// kQuery dispatches on a table name; kListTables/kTableInfo exist.
  kFeatureMultiTable = 1u << 0,
  /// QueryResponse carries per-shard stats for sharded tables.
  kFeatureShardStats = 1u << 1,
  /// kServiceStats exists.
  kFeatureServiceStats = 1u << 2,
  /// kQuery honors deadline_ms; overruns surface as kDeadlineExceeded.
  kFeatureDeadlines = 1u << 3,
  /// kHealth exists; kQueryResult per-shard blocks carry replica/failovers.
  kFeatureReplicaHealth = 1u << 4,
  /// kReloadTable/kDetachTable exist; kTableChanged notes are pushed.
  kFeatureHotReload = 1u << 5,
  /// kQuery honors index_mode/probe_clusters (clustered approximate mode);
  /// kTableInfoResult reports num_clusters.
  kFeatureClusteredIndex = 1u << 6,
  /// The server may answer kQuery from a per-table result cache with
  /// rerandomized ciphertexts; kQueryResult carries the cache tail and
  /// kQuery honors the no_cache flag (bit 2).
  kFeatureResultCache = 1u << 7,
  /// Admission is per-table weighted fair sharing + token buckets instead
  /// of one service-wide budget; kServiceStatsResult reports weight/share.
  kFeatureFairAdmission = 1u << 8,
  /// kAuthenticate/kAuthAck exist; when the server runs with an API-key
  /// registry, kQuery requires a successful kAuthenticate after the hello.
  kFeatureApiKeyAuth = 1u << 9,
};

/// \brief Every feature this build implements.
constexpr uint32_t kSupportedFeatures =
    kFeatureMultiTable | kFeatureShardStats | kFeatureServiceStats |
    kFeatureDeadlines | kFeatureReplicaHealth | kFeatureHotReload |
    kFeatureClusteredIndex | kFeatureResultCache | kFeatureFairAdmission |
    kFeatureApiKeyAuth;

enum class FrontendOp : uint16_t {
  /// One Bob query. aux = [k:u32][protocol:u32][flags:u32][m:u32][m x i64]
  /// [table_len:u32][table bytes], flags bit 0 = want_breakdown, bit 1 =
  /// want_op_counts, bit 2 (revision 6) = no_cache (bypass the server's
  /// result cache); attributes as two's-complement little-endian u64
  /// (requests are validated server-side, so out-of-domain values must
  /// survive the wire intact to be rejected with a proper Status). The
  /// table suffix is absent in revision-1 frames; decoding treats that as
  /// the empty (sole-table) name so the frame shape itself stays readable.
  /// Revision 3 appends an optional [deadline_ms:u32] after the table: the
  /// query's end-to-end budget in milliseconds, 0/absent = unbounded.
  /// Revision 5 may append [index_mode:u32][probe_clusters:u32] after the
  /// deadline (the deadline word is then always present, 0 = unbounded):
  /// index_mode 0 = exact, 1 = clustered approximate search probing the
  /// probe_clusters nearest clusters. The tail after the table is therefore
  /// 0, 4 or 12 bytes — any other length is malformed.
  kQuery = 0x0101,
  /// Success. aux = [rows:u32][cols:u32][rows*cols x i64]
  /// [bob_seconds:f64][cloud_seconds:f64][traffic:4 x u64][ops:4 x u64]
  /// [breakdown:6 x f64][merge_seconds:f64][num_shards:u32] then per shard
  /// [shard:u32][candidates:u32][replica:u32][failovers:u32][pruned:u32]
  /// [shard_records:u32][seconds:f64][traffic:4 x u64][ops:4 x u64]
  /// (num_shards = 0 for unsharded execution), f64 as IEEE-754 bit patterns
  /// in u64. The replica/failovers words are revision 3's layout change:
  /// which replica served the shard and how many replica attempts failed
  /// first. The pruned/shard_records words are revision 5's layout change:
  /// whether the clustered probe round skipped the shard entirely, and how
  /// many records the shard holds (cluster sizes are unequal). Revision 6
  /// appends a MANDATORY cache tail after the shard blocks:
  /// [cache_hit:u32][enc_count:u32] then per ciphertext [len:u32][bytes] —
  /// the k*m result attributes encrypted under the table's key, refreshed
  /// with RerandomizeMany on every cache hit so repeated hits are
  /// unlinkable on the wire (enc_count = 0 when the query was not
  /// cache-eligible).
  kQueryResult = 0x0102,
  /// Failure. aux = [status code:u32][message bytes].
  kQueryError = 0x0103,

  // -- Session handshake (revision 2) --

  /// Client -> server, first frame of every session.
  /// aux = [revision:u32][features:u32][reserved:u32] — the same 12-byte
  /// shape as kHelloAck; the third word is 0 in this direction.
  kHello = 0x0110,
  /// Server -> client on an accepted hello.
  /// aux = [revision:u32][features:u32][num_tables:u32].
  kHelloAck = 0x0111,

  // -- Control plane (revision 2) --

  /// Client -> server: enumerate served tables. aux empty.
  kListTables = 0x0112,
  /// Server -> client. aux = [count:u32] then per table
  /// [name_len:u32][name bytes].
  kTableList = 0x0113,
  /// Client -> server: one table's metadata.
  /// aux = [name_len:u32][name bytes] (empty name = sole table).
  kTableInfo = 0x0114,
  /// Server -> client. aux = [name_len:u32][name bytes][n:u64][m:u32]
  /// [attr_bits:u32][k_max:u32][distance_bits:u32][num_shards:u32]
  /// [scheme:u32][remote_workers:u32][num_clusters:u32] (the last word is
  /// revision 5: 0 = exact-only table, otherwise the clustered index's
  /// cluster count — the admissible probe_clusters range is [1, that]).
  kTableInfoResult = 0x0115,
  /// Client -> server: service-wide counters. aux empty.
  kServiceStats = 0x0116,
  /// Server -> client. aux = [uptime_seconds:f64][connections:u64]
  /// [in_flight:u64][num_tables:u32] then per table
  /// [name_len:u32][name bytes][completed:u64][failed:u64][rejected:u64]
  /// [in_flight:u64] followed (revision 4) by the table engine's
  /// randomizer-pool counters, C1 then C2:
  /// [c1_hits:u64][c1_misses:u64][c1_stock:u64][c1_capacity:u64]
  /// [c2_hits:u64][c2_misses:u64][c2_stock:u64][c2_capacity:u64]
  /// (capacity 0 = that cloud runs without a pool), followed (revision 6)
  /// by the table's admission weight/share and result-cache counters:
  /// [weight:u32][share_limit:u32][cache_hits:u64][cache_misses:u64]
  /// [cache_evictions:u64][cache_entries:u64][cache_bytes:u64].
  /// Revision 6 then appends a per-API-key section after the table blocks:
  /// [auth_enabled:u32][num_keys:u32] then per key [id_len:u32][id bytes]
  /// [completed:u64][denied:u64][quota_rejected:u64][quota:u64]
  /// [remaining:u64][weight:u32] (num_keys = 0 when auth is off).
  kServiceStatsResult = 0x0117,

  // -- Replica health and hot reload (revision 3) --

  /// Client -> server: per-replica shard-worker liveness. aux empty.
  kHealth = 0x0118,
  /// Server -> client. aux = [num_tables:u32] then per table
  /// [name_len:u32][name bytes][num_replicas:u32] then per replica
  /// [shard:u32][replica:u32][healthy:u32][consecutive_failures:u32]
  /// [failovers:u64][last_ok_age_seconds:f64]. Tables without remote shard
  /// replicas report num_replicas = 0.
  kHealthResult = 0x0119,
  /// Client -> server: rebuild one table's engine and swap it in under live
  /// traffic. aux = [name_len:u32][name bytes][spec_len:u32][spec bytes];
  /// an empty spec reuses the spec the table was registered with. Answered
  /// with kAdminAck or kQueryError.
  kReloadTable = 0x011A,
  /// Client -> server: stop serving one table (in-flight queries finish on
  /// the old engine). aux = [name_len:u32][name bytes]. Answered with
  /// kAdminAck or kQueryError.
  kDetachTable = 0x011B,
  /// Server -> client: a reload or detach succeeded.
  /// aux = [name_len:u32][name bytes].
  kAdminAck = 0x011C,
  /// Server -> client, UNSOLICITED (correlation id 0 — see RpcServer::Push):
  /// a table this session may be querying changed under it.
  /// aux = [name_len:u32][name bytes][kind:u32], kind 0 = reloaded,
  /// 1 = detached.
  kTableChanged = 0x011D,

  // -- API-key authentication (revision 6) --

  /// Client -> server, after the hello: present an API key for this
  /// session. aux = [key_len:u32][key bytes] (the raw key; the server
  /// stores only SHA-256 digests of its keys). Answered with kAuthAck on
  /// success or kQueryError(PermissionDenied) on an unknown/revoked key.
  /// Against a server running WITHOUT an API-key registry the frame is
  /// acked too (auth is then a no-op), so clients can always present
  /// their key. Only kQuery is gated: the control plane stays open so
  /// operators can introspect a misconfigured deployment.
  kAuthenticate = 0x011E,
  /// Server -> client: the key was accepted.
  /// aux = [key_id_len:u32][key id bytes] — the key's registered id (its
  /// stats name in kServiceStatsResult), never the key itself.
  kAuthAck = 0x011F,
};

inline uint16_t FrontendOpCode(FrontendOp op) {
  return static_cast<uint16_t>(op);
}

/// \brief The negotiated session parameters a kHello/kHelloAck exchange
/// carries (client -> server: what the client speaks; server -> client:
/// what the server speaks plus how many tables it serves).
struct HelloInfo {
  uint32_t revision = kProtocolRevision;
  uint32_t features = kSupportedFeatures;
  /// Only meaningful in the ack direction.
  uint32_t num_tables = 0;
};

/// \brief One table's metadata as kTableInfoResult reports it.
struct TableInfoReply {
  std::string name;
  uint64_t num_records = 0;
  uint32_t num_attributes = 0;
  /// Attribute domain: valid query values are [0, 2^attr_bits).
  uint32_t attr_bits = 0;
  /// Largest admissible k (= num_records).
  uint32_t k_max = 0;
  uint32_t distance_bits = 0;
  /// 1 = unsharded.
  uint32_t num_shards = 1;
  /// ShardScheme as u32 (meaningful when num_shards > 1).
  uint32_t shard_scheme = 0;
  /// True when the shards live in sknn_c1_shard worker processes.
  bool remote_workers = false;
  /// Clustered-index geometry: 0 = exact-only table, otherwise the number
  /// of clusters (= the admissible probe_clusters upper bound).
  uint32_t num_clusters = 0;
};

/// \brief One table's admission counters inside kServiceStatsResult.
/// Revision 4 widened the entry with the randomizer-pool effectiveness
/// counters of both clouds (SknnEngine::RandomizerPoolStats): hits = takes
/// served from precomputed stock, misses = inline full modexps, stock =
/// randomizers ready right now, capacity = pool size (0 = no pool).
struct TableStatsEntry {
  std::string name;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t rejected = 0;
  uint64_t in_flight = 0;
  uint64_t c1_pool_hits = 0;
  uint64_t c1_pool_misses = 0;
  uint64_t c1_pool_stock = 0;
  uint64_t c1_pool_capacity = 0;
  uint64_t c2_pool_hits = 0;
  uint64_t c2_pool_misses = 0;
  uint64_t c2_pool_stock = 0;
  uint64_t c2_pool_capacity = 0;
  /// Revision 6: the table's weighted-fair-admission weight and the
  /// in-flight share that weight currently buys it (serve/qos/
  /// fair_admission.h), plus its result-cache effectiveness counters
  /// (serve/qos/result_cache.h; all five zero for a table serving with
  /// the cache disabled).
  uint32_t weight = 1;
  uint32_t share_limit = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
};

/// \brief One API key's serving counters inside kServiceStatsResult
/// (revision 6). `id` is the key's registered name — the key itself never
/// crosses the wire in this direction.
struct ApiKeyStatsEntry {
  std::string id;
  /// Queries this key completed.
  uint64_t completed = 0;
  /// Query frames denied because the session's key did not cover them.
  uint64_t denied = 0;
  /// Queries rejected because the key's quota bucket was empty.
  uint64_t quota_rejected = 0;
  /// The key's configured quota (queries per refill window; 0 = unlimited).
  uint64_t quota = 0;
  /// Tokens left in the quota bucket right now (quota = 0 reports 0).
  uint64_t remaining = 0;
  /// The key's admission weight (multiplies its fair share).
  uint32_t weight = 1;
};

/// \brief Service-wide counters as kServiceStatsResult reports them.
struct ServiceStatsReply {
  double uptime_seconds = 0;
  uint64_t connections_accepted = 0;
  uint64_t in_flight = 0;
  std::vector<TableStatsEntry> tables;
  /// Revision 6: whether the server gates kQuery behind kAuthenticate, and
  /// the per-key counters when it does (empty otherwise).
  bool auth_enabled = false;
  std::vector<ApiKeyStatsEntry> keys;
};

/// \brief One shard replica's liveness inside kHealthResult (mirrors
/// ShardCoordinator::ReplicaStatus).
struct ReplicaHealthEntry {
  uint32_t shard = 0;
  uint32_t replica = 0;
  bool healthy = true;
  uint32_t consecutive_failures = 0;
  uint64_t failovers = 0;
  /// Seconds since the replica last answered; negative = never.
  double last_ok_age_seconds = -1;
};

/// \brief One table's replica set inside kHealthResult. Empty `replicas`
/// = the table runs without remote shard workers (local or unsharded).
struct TableHealthEntry {
  std::string name;
  std::vector<ReplicaHealthEntry> replicas;
};

/// \brief Everything kHealthResult carries.
struct HealthReply {
  std::vector<TableHealthEntry> tables;
};

/// \brief kReloadTable's payload: which table, and (optionally) a fresh
/// build spec; empty spec = rebuild from the spec the table was registered
/// with.
struct ReloadTableRequest {
  std::string table;
  std::string spec;
};

/// \brief What happened to the table a kTableChanged note names.
enum class TableChangeKind : uint32_t {
  kReloaded = 0,
  kDetached = 1,
};

/// \brief The unsolicited kTableChanged server note (correlation id 0).
struct TableChangedNote {
  std::string table;
  TableChangeKind kind = TableChangeKind::kReloaded;
};

Message EncodeQueryRequest(const QueryRequest& request);
Result<QueryRequest> DecodeQueryRequest(const Message& msg);

Message EncodeQueryResponse(const QueryResponse& response);
Result<QueryResponse> DecodeQueryResponse(const Message& msg);

/// \brief `status` must be an error; the code crosses the wire intact.
Message EncodeQueryError(const Status& status);
/// \brief The Status carried by a kQueryError frame (never OK).
Status DecodeQueryError(const Message& msg);

Message EncodeHello(const HelloInfo& hello);
Result<HelloInfo> DecodeHello(const Message& msg);
Message EncodeHelloAck(const HelloInfo& ack);
Result<HelloInfo> DecodeHelloAck(const Message& msg);

Message EncodeListTablesRequest();
Message EncodeTableList(const std::vector<std::string>& names);
Result<std::vector<std::string>> DecodeTableList(const Message& msg);

Message EncodeTableInfoRequest(const std::string& name);
Result<std::string> DecodeTableInfoRequest(const Message& msg);
Message EncodeTableInfoReply(const TableInfoReply& info);
Result<TableInfoReply> DecodeTableInfoReply(const Message& msg);

Message EncodeServiceStatsRequest();
Message EncodeServiceStatsReply(const ServiceStatsReply& stats);
Result<ServiceStatsReply> DecodeServiceStatsReply(const Message& msg);

Message EncodeHealthRequest();
Message EncodeHealthReply(const HealthReply& health);
Result<HealthReply> DecodeHealthReply(const Message& msg);

Message EncodeReloadTableRequest(const ReloadTableRequest& request);
Result<ReloadTableRequest> DecodeReloadTableRequest(const Message& msg);
Message EncodeDetachTableRequest(const std::string& name);
Result<std::string> DecodeDetachTableRequest(const Message& msg);
Message EncodeAdminAck(const std::string& name);
Result<std::string> DecodeAdminAck(const Message& msg);

Message EncodeTableChanged(const TableChangedNote& note);
Result<TableChangedNote> DecodeTableChanged(const Message& msg);

Message EncodeAuthenticateRequest(const std::string& key);
Result<std::string> DecodeAuthenticateRequest(const Message& msg);
Message EncodeAuthAck(const std::string& key_id);
Result<std::string> DecodeAuthAck(const Message& msg);

}  // namespace sknn

#endif  // SKNN_NET_QUERY_WIRE_H_
