// Front-end wire frames: QueryRequest/QueryResponse as Messages.
//
// The serving topology (docs/DEPLOY.md) splits Bob from C1: a thin client
// sends one kQuery frame to the standing C1 query front end
// (serve/query_service.h) and gets back either a kQueryResult carrying the
// records plus the full instrumentation payload (timings, traffic, ops,
// breakdown) or a kQueryError carrying a real Status — code and message —
// so callers can distinguish "retry later" (ResourceExhausted backpressure)
// from "fix your request" (InvalidArgument/OutOfRange).
//
// Frames ride the existing Message/WireCodec/Endpoint stack, so the client
// <-> front-end link reuses RpcClient/RpcServer unchanged (correlation-id
// demux, length-prefixed framing) over TCP or the in-memory channel. The
// FrontendOp opcode space is disjoint from the C1<->C2 Op space: a frame
// from the wrong link is rejected, never misinterpreted.
#ifndef SKNN_NET_QUERY_WIRE_H_
#define SKNN_NET_QUERY_WIRE_H_

#include "core/query_api.h"
#include "net/message.h"

namespace sknn {

enum class FrontendOp : uint16_t {
  /// One Bob query. aux = [k:u32][protocol:u32][flags:u32][m:u32][m x i64],
  /// flags bit 0 = want_breakdown, bit 1 = want_op_counts; attributes as
  /// two's-complement little-endian u64 (requests are validated server-side,
  /// so out-of-domain values must survive the wire intact to be rejected
  /// with a proper Status).
  kQuery = 0x0101,
  /// Success. aux = [rows:u32][cols:u32][rows*cols x i64]
  /// [bob_seconds:f64][cloud_seconds:f64][traffic:4 x u64][ops:4 x u64]
  /// [breakdown:6 x f64][merge_seconds:f64][num_shards:u32] then per shard
  /// [shard:u32][candidates:u32][seconds:f64][traffic:4 x u64][ops:4 x u64]
  /// (num_shards = 0 for unsharded execution), f64 as IEEE-754 bit
  /// patterns in u64.
  kQueryResult = 0x0102,
  /// Failure. aux = [status code:u32][message bytes].
  kQueryError = 0x0103,
};

inline uint16_t FrontendOpCode(FrontendOp op) {
  return static_cast<uint16_t>(op);
}

Message EncodeQueryRequest(const QueryRequest& request);
Result<QueryRequest> DecodeQueryRequest(const Message& msg);

Message EncodeQueryResponse(const QueryResponse& response);
Result<QueryResponse> DecodeQueryResponse(const Message& msg);

/// \brief `status` must be an error; the code crosses the wire intact.
Message EncodeQueryError(const Status& status);
/// \brief The Status carried by a kQueryError frame (never OK).
Status DecodeQueryError(const Message& msg);

}  // namespace sknn

#endif  // SKNN_NET_QUERY_WIRE_H_
