#include "net/query_wire.h"

#include <bit>
#include <string>

namespace sknn {
namespace {

constexpr uint32_t kFlagBreakdown = 1;
constexpr uint32_t kFlagOpCounts = 2;
// Revision 6: bypass the server's result cache for this request.
constexpr uint32_t kFlagNoCache = 4;

// A serialized Paillier ciphertext is at most 2*|N| bits; 64 KiB covers
// keys far beyond anything this system runs. Anything longer in the
// kQueryResult cache tail is a hostile or corrupt frame.
constexpr std::size_t kMaxCiphertextLen = std::size_t{1} << 16;

void AppendF64(Message& msg, double v) {
  msg.AppendAuxU64(std::bit_cast<uint64_t>(v));
}

double F64At(const Message& msg, std::size_t offset) {
  return std::bit_cast<double>(msg.AuxU64At(offset));
}

Status BadFrame(const char* what) {
  return Status::ProtocolError(std::string("front-end frame: ") + what);
}

// Table and frame names cross the wire length-prefixed; anything longer is
// a hostile or corrupt frame, not a legitimate identifier. Table build
// SPECS (kReloadTable) are the one longer payload — paths and options —
// and get their own, still-bounded cap.
constexpr std::size_t kMaxNameLen = 256;
constexpr std::size_t kMaxSpecLen = 4096;

void AppendString(Message& msg, const std::string& text) {
  msg.AppendAuxU32(static_cast<uint32_t>(text.size()));
  msg.aux.insert(msg.aux.end(), text.begin(), text.end());
}

// Reads [len:u32][bytes] at `at`, advancing it; false on any overrun.
bool StringAt(const Message& msg, std::size_t* at, std::string* out,
              std::size_t max_len = kMaxNameLen) {
  if (msg.aux.size() < *at + 4) return false;
  const std::size_t len = msg.AuxU32At(*at);
  *at += 4;
  if (len > max_len || msg.aux.size() < *at + len) return false;
  out->assign(msg.aux.begin() + static_cast<std::ptrdiff_t>(*at),
              msg.aux.begin() + static_cast<std::ptrdiff_t>(*at + len));
  *at += len;
  return true;
}

}  // namespace

Message EncodeQueryRequest(const QueryRequest& request) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kQuery);
  msg.AppendAuxU32(request.k);
  msg.AppendAuxU32(static_cast<uint32_t>(request.protocol));
  msg.AppendAuxU32((request.want_breakdown ? kFlagBreakdown : 0) |
                   (request.want_op_counts ? kFlagOpCounts : 0) |
                   (request.no_cache ? kFlagNoCache : 0));
  msg.AppendAuxU32(static_cast<uint32_t>(request.record.size()));
  for (int64_t v : request.record) {
    msg.AppendAuxU64(static_cast<uint64_t>(v));
  }
  AppendString(msg, request.table);
  // Exact-mode requests keep the revision-3/4 shape (optional lone deadline
  // word) so their frames stay byte-identical across the revision bump.
  // Clustered requests emit the full revision-5 tail: the deadline word is
  // then always present (0 = unbounded) so the index_mode/probe words have
  // a fixed offset.
  if (request.index_mode != IndexMode::kExact) {
    msg.AppendAuxU32(request.deadline_ms);
    msg.AppendAuxU32(static_cast<uint32_t>(request.index_mode));
    msg.AppendAuxU32(request.probe_clusters);
  } else if (request.deadline_ms != 0) {
    msg.AppendAuxU32(request.deadline_ms);
  }
  return msg;
}

Result<QueryRequest> DecodeQueryRequest(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kQuery)) {
    return BadFrame("not a kQuery frame");
  }
  if (msg.aux.size() < 16) return BadFrame("truncated kQuery header");
  QueryRequest request;
  request.k = msg.AuxU32At(0);
  const uint32_t protocol = msg.AuxU32At(4);
  if (protocol > static_cast<uint32_t>(QueryProtocol::kFarthest)) {
    return BadFrame("unknown protocol");
  }
  request.protocol = static_cast<QueryProtocol>(protocol);
  const uint32_t flags = msg.AuxU32At(8);
  request.want_breakdown = (flags & kFlagBreakdown) != 0;
  request.want_op_counts = (flags & kFlagOpCounts) != 0;
  request.no_cache = (flags & kFlagNoCache) != 0;
  const uint32_t m = msg.AuxU32At(12);
  std::size_t at = 16 + std::size_t{m} * 8;
  if (msg.aux.size() < at) return BadFrame("kQuery geometry mismatch");
  request.record.reserve(m);
  for (uint32_t j = 0; j < m; ++j) {
    request.record.push_back(
        static_cast<int64_t>(msg.AuxU64At(16 + std::size_t{j} * 8)));
  }
  // Revision-1 frames end at the record; revision-2 frames append the table
  // name; revision-3 frames may append a trailing deadline word after it;
  // revision-5 frames may follow the deadline with the index_mode and
  // probe_clusters words. Every shape decodes (sole-table / no-deadline /
  // exact-mode defaults), so the hello gate — not a parse failure — is what
  // tells an old client it must upgrade.
  if (msg.aux.size() == at) return request;
  if (!StringAt(msg, &at, &request.table)) {
    return BadFrame("kQuery table-name geometry mismatch");
  }
  if (msg.aux.size() == at) return request;
  const std::size_t tail = msg.aux.size() - at;
  if (tail != 4 && tail != 12) {
    return BadFrame("kQuery deadline geometry mismatch");
  }
  request.deadline_ms = msg.AuxU32At(at);
  if (tail == 12) {
    const uint32_t mode = msg.AuxU32At(at + 4);
    if (mode > static_cast<uint32_t>(IndexMode::kClustered)) {
      return BadFrame("kQuery carries an unknown index mode");
    }
    request.index_mode = static_cast<IndexMode>(mode);
    request.probe_clusters = msg.AuxU32At(at + 8);
  }
  return request;
}

Message EncodeQueryResponse(const QueryResponse& response) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kQueryResult);
  const std::size_t rows = response.records.size();
  const std::size_t cols = rows == 0 ? 0 : response.records[0].size();
  msg.AppendAuxU32(static_cast<uint32_t>(rows));
  msg.AppendAuxU32(static_cast<uint32_t>(cols));
  for (const auto& row : response.records) {
    for (int64_t v : row) msg.AppendAuxU64(static_cast<uint64_t>(v));
  }
  AppendF64(msg, response.bob_seconds);
  AppendF64(msg, response.cloud_seconds);
  msg.AppendAuxU64(response.traffic.frames_a_to_b);
  msg.AppendAuxU64(response.traffic.bytes_a_to_b);
  msg.AppendAuxU64(response.traffic.frames_b_to_a);
  msg.AppendAuxU64(response.traffic.bytes_b_to_a);
  msg.AppendAuxU64(response.ops.encryptions);
  msg.AppendAuxU64(response.ops.decryptions);
  msg.AppendAuxU64(response.ops.exponentiations);
  msg.AppendAuxU64(response.ops.multiplications);
  AppendF64(msg, response.breakdown.ssed_seconds);
  AppendF64(msg, response.breakdown.sbd_seconds);
  AppendF64(msg, response.breakdown.sminn_seconds);
  AppendF64(msg, response.breakdown.extract_seconds);
  AppendF64(msg, response.breakdown.update_seconds);
  AppendF64(msg, response.breakdown.finalize_seconds);
  AppendF64(msg, response.merge_seconds);
  msg.AppendAuxU32(static_cast<uint32_t>(response.shards.size()));
  for (const ShardQueryStats& shard : response.shards) {
    msg.AppendAuxU32(shard.shard);
    msg.AppendAuxU32(shard.candidates);
    msg.AppendAuxU32(shard.replica);
    msg.AppendAuxU32(shard.failovers);
    msg.AppendAuxU32(shard.pruned);
    msg.AppendAuxU32(shard.shard_records);
    AppendF64(msg, shard.seconds);
    msg.AppendAuxU64(shard.traffic.frames_a_to_b);
    msg.AppendAuxU64(shard.traffic.bytes_a_to_b);
    msg.AppendAuxU64(shard.traffic.frames_b_to_a);
    msg.AppendAuxU64(shard.traffic.bytes_b_to_a);
    msg.AppendAuxU64(shard.ops.encryptions);
    msg.AppendAuxU64(shard.ops.decryptions);
    msg.AppendAuxU64(shard.ops.exponentiations);
    msg.AppendAuxU64(shard.ops.multiplications);
  }
  // Revision 6's mandatory cache tail: whether the result came from the
  // server's cache, and the rerandomized result-attribute ciphertexts for
  // cache-eligible queries (empty otherwise).
  msg.AppendAuxU32(response.cache_hit ? 1 : 0);
  msg.AppendAuxU32(static_cast<uint32_t>(response.encrypted_records.size()));
  for (const std::vector<uint8_t>& ct : response.encrypted_records) {
    msg.AppendAuxU32(static_cast<uint32_t>(ct.size()));
    msg.aux.insert(msg.aux.end(), ct.begin(), ct.end());
  }
  return msg;
}

Result<QueryResponse> DecodeQueryResponse(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kQueryResult)) {
    return BadFrame("not a kQueryResult frame");
  }
  if (msg.aux.size() < 8) return BadFrame("truncated kQueryResult header");
  const std::size_t rows = msg.AuxU32At(0);
  const std::size_t cols = msg.AuxU32At(4);
  // Bound the claimed geometry BEFORE arithmetic: unchecked u32 dimensions
  // could overflow `expected` into a small value and defeat the size check,
  // turning a hostile frame into a huge out-of-bounds read below.
  constexpr std::size_t kMaxDim = std::size_t{1} << 20;
  if (rows > kMaxDim || cols > kMaxDim) {
    return BadFrame("kQueryResult geometry implausible");
  }
  // Records, two timings, 4 traffic counters, 4 op counters, 6 phases,
  // merge seconds — then the shard-count u32 and its per-shard blocks.
  const std::size_t fixed = 8 + (rows * cols + 2 + 4 + 4 + 6 + 1) * 8 + 4;
  if (msg.aux.size() < fixed) {
    return BadFrame("kQueryResult geometry mismatch");
  }
  const std::size_t num_shards = msg.AuxU32At(fixed - 4);
  // Revision 5 layout: shard, candidates, replica, failovers, pruned,
  // shard_records, seconds, 4 traffic counters, 4 op counters. Revision 6
  // appends the mandatory 8-byte cache-tail header after the shard blocks,
  // so the exact-size check becomes a lower bound here and an exact check
  // once the tail's variable-length ciphertexts are walked.
  constexpr std::size_t kPerShard = 4 + 4 + 4 + 4 + 4 + 4 + 9 * 8;
  if (num_shards > kMaxDim ||
      msg.aux.size() < fixed + num_shards * kPerShard + 8) {
    return BadFrame("kQueryResult shard-stats geometry mismatch");
  }
  QueryResponse response;
  std::size_t at = 8;
  response.records.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    PlainRecord row;
    row.reserve(cols);
    for (std::size_t j = 0; j < cols; ++j, at += 8) {
      row.push_back(static_cast<int64_t>(msg.AuxU64At(at)));
    }
    response.records.push_back(std::move(row));
  }
  response.bob_seconds = F64At(msg, at);
  response.cloud_seconds = F64At(msg, at + 8);
  response.traffic.frames_a_to_b = msg.AuxU64At(at + 16);
  response.traffic.bytes_a_to_b = msg.AuxU64At(at + 24);
  response.traffic.frames_b_to_a = msg.AuxU64At(at + 32);
  response.traffic.bytes_b_to_a = msg.AuxU64At(at + 40);
  response.ops.encryptions = msg.AuxU64At(at + 48);
  response.ops.decryptions = msg.AuxU64At(at + 56);
  response.ops.exponentiations = msg.AuxU64At(at + 64);
  response.ops.multiplications = msg.AuxU64At(at + 72);
  response.breakdown.ssed_seconds = F64At(msg, at + 80);
  response.breakdown.sbd_seconds = F64At(msg, at + 88);
  response.breakdown.sminn_seconds = F64At(msg, at + 96);
  response.breakdown.extract_seconds = F64At(msg, at + 104);
  response.breakdown.update_seconds = F64At(msg, at + 112);
  response.breakdown.finalize_seconds = F64At(msg, at + 120);
  response.merge_seconds = F64At(msg, at + 128);
  at += 140;  // past the counters/phases block and the shard-count u32
  response.shards.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    ShardQueryStats shard;
    shard.shard = msg.AuxU32At(at);
    shard.candidates = msg.AuxU32At(at + 4);
    shard.replica = msg.AuxU32At(at + 8);
    shard.failovers = msg.AuxU32At(at + 12);
    shard.pruned = msg.AuxU32At(at + 16);
    shard.shard_records = msg.AuxU32At(at + 20);
    shard.seconds = F64At(msg, at + 24);
    shard.traffic.frames_a_to_b = msg.AuxU64At(at + 32);
    shard.traffic.bytes_a_to_b = msg.AuxU64At(at + 40);
    shard.traffic.frames_b_to_a = msg.AuxU64At(at + 48);
    shard.traffic.bytes_b_to_a = msg.AuxU64At(at + 56);
    shard.ops.encryptions = msg.AuxU64At(at + 64);
    shard.ops.decryptions = msg.AuxU64At(at + 72);
    shard.ops.exponentiations = msg.AuxU64At(at + 80);
    shard.ops.multiplications = msg.AuxU64At(at + 88);
    response.shards.push_back(shard);
    at += kPerShard;
  }
  // The revision-6 cache tail (its 8-byte header was size-checked above).
  response.cache_hit = msg.AuxU32At(at) != 0;
  const std::size_t enc_count = msg.AuxU32At(at + 4);
  at += 8;
  // Implausible-count guard before reserve: each ciphertext needs at least
  // its 4-byte length prefix.
  if (enc_count * 4 > msg.aux.size() - at) {
    return BadFrame("kQueryResult ciphertext count implausible");
  }
  response.encrypted_records.reserve(enc_count);
  for (std::size_t i = 0; i < enc_count; ++i) {
    if (msg.aux.size() < at + 4) {
      return BadFrame("kQueryResult ciphertext geometry mismatch");
    }
    const std::size_t len = msg.AuxU32At(at);
    at += 4;
    if (len > kMaxCiphertextLen || msg.aux.size() < at + len) {
      return BadFrame("kQueryResult ciphertext geometry mismatch");
    }
    response.encrypted_records.emplace_back(
        msg.aux.begin() + static_cast<std::ptrdiff_t>(at),
        msg.aux.begin() + static_cast<std::ptrdiff_t>(at + len));
    at += len;
  }
  if (at != msg.aux.size()) return BadFrame("kQueryResult trailing bytes");
  return response;
}

Message EncodeQueryError(const Status& status) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kQueryError);
  msg.AppendAuxU32(static_cast<uint32_t>(status.code()));
  const std::string& text = status.message();
  msg.aux.insert(msg.aux.end(), text.begin(), text.end());
  return msg;
}

Status DecodeQueryError(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kQueryError) ||
      msg.aux.size() < 4) {
    return BadFrame("malformed kQueryError frame");
  }
  const uint32_t code = msg.AuxU32At(0);
  if (code == 0 ||
      code > static_cast<uint32_t>(StatusCode::kPermissionDenied)) {
    return BadFrame("kQueryError carries an unknown status code");
  }
  return Status(static_cast<StatusCode>(code),
                std::string(msg.aux.begin() + 4, msg.aux.end()));
}

namespace {

// kHello and kHelloAck share one shape; only the opcode (and whether
// num_tables is meaningful) differs.
Message EncodeHelloShape(FrontendOp op, const HelloInfo& hello) {
  Message msg;
  msg.type = FrontendOpCode(op);
  msg.AppendAuxU32(hello.revision);
  msg.AppendAuxU32(hello.features);
  msg.AppendAuxU32(hello.num_tables);
  return msg;
}

Result<HelloInfo> DecodeHelloShape(FrontendOp op, const char* what,
                                   const Message& msg) {
  if (msg.type != FrontendOpCode(op)) return BadFrame(what);
  if (msg.aux.size() != 12) return BadFrame(what);
  HelloInfo hello;
  hello.revision = msg.AuxU32At(0);
  hello.features = msg.AuxU32At(4);
  hello.num_tables = msg.AuxU32At(8);
  return hello;
}

}  // namespace

Message EncodeHello(const HelloInfo& hello) {
  return EncodeHelloShape(FrontendOp::kHello, hello);
}

Result<HelloInfo> DecodeHello(const Message& msg) {
  return DecodeHelloShape(FrontendOp::kHello, "malformed kHello frame", msg);
}

Message EncodeHelloAck(const HelloInfo& ack) {
  return EncodeHelloShape(FrontendOp::kHelloAck, ack);
}

Result<HelloInfo> DecodeHelloAck(const Message& msg) {
  return DecodeHelloShape(FrontendOp::kHelloAck, "malformed kHelloAck frame",
                          msg);
}

Message EncodeListTablesRequest() {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kListTables);
  return msg;
}

Message EncodeTableList(const std::vector<std::string>& names) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kTableList);
  msg.AppendAuxU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) AppendString(msg, name);
  return msg;
}

Result<std::vector<std::string>> DecodeTableList(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kTableList)) {
    return BadFrame("not a kTableList frame");
  }
  if (msg.aux.size() < 4) return BadFrame("truncated kTableList");
  const uint32_t count = msg.AuxU32At(0);
  // Bound the claimed count BEFORE reserving: each entry needs at least its
  // 4-byte length prefix, so a hostile count cannot force a huge allocation
  // ahead of the per-entry bounds checks.
  if (std::size_t{count} * 4 > msg.aux.size() - 4) {
    return BadFrame("kTableList count implausible");
  }
  std::size_t at = 4;
  std::vector<std::string> names;
  names.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!StringAt(msg, &at, &name)) {
      return BadFrame("kTableList geometry mismatch");
    }
    names.push_back(std::move(name));
  }
  if (at != msg.aux.size()) return BadFrame("kTableList trailing bytes");
  return names;
}

Message EncodeTableInfoRequest(const std::string& name) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kTableInfo);
  AppendString(msg, name);
  return msg;
}

Result<std::string> DecodeTableInfoRequest(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kTableInfo)) {
    return BadFrame("not a kTableInfo frame");
  }
  std::size_t at = 0;
  std::string name;
  if (!StringAt(msg, &at, &name) || at != msg.aux.size()) {
    return BadFrame("kTableInfo geometry mismatch");
  }
  return name;
}

Message EncodeTableInfoReply(const TableInfoReply& info) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kTableInfoResult);
  AppendString(msg, info.name);
  msg.AppendAuxU64(info.num_records);
  msg.AppendAuxU32(info.num_attributes);
  msg.AppendAuxU32(info.attr_bits);
  msg.AppendAuxU32(info.k_max);
  msg.AppendAuxU32(info.distance_bits);
  msg.AppendAuxU32(info.num_shards);
  msg.AppendAuxU32(info.shard_scheme);
  msg.AppendAuxU32(info.remote_workers ? 1 : 0);
  msg.AppendAuxU32(info.num_clusters);
  return msg;
}

Result<TableInfoReply> DecodeTableInfoReply(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kTableInfoResult)) {
    return BadFrame("not a kTableInfoResult frame");
  }
  std::size_t at = 0;
  TableInfoReply info;
  if (!StringAt(msg, &at, &info.name) ||
      msg.aux.size() != at + 8 + 8 * 4) {
    return BadFrame("kTableInfoResult geometry mismatch");
  }
  info.num_records = msg.AuxU64At(at);
  info.num_attributes = msg.AuxU32At(at + 8);
  info.attr_bits = msg.AuxU32At(at + 12);
  info.k_max = msg.AuxU32At(at + 16);
  info.distance_bits = msg.AuxU32At(at + 20);
  info.num_shards = msg.AuxU32At(at + 24);
  info.shard_scheme = msg.AuxU32At(at + 28);
  info.remote_workers = msg.AuxU32At(at + 32) != 0;
  info.num_clusters = msg.AuxU32At(at + 36);
  return info;
}

Message EncodeServiceStatsRequest() {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kServiceStats);
  return msg;
}

Message EncodeServiceStatsReply(const ServiceStatsReply& stats) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kServiceStatsResult);
  AppendF64(msg, stats.uptime_seconds);
  msg.AppendAuxU64(stats.connections_accepted);
  msg.AppendAuxU64(stats.in_flight);
  msg.AppendAuxU32(static_cast<uint32_t>(stats.tables.size()));
  for (const TableStatsEntry& table : stats.tables) {
    AppendString(msg, table.name);
    msg.AppendAuxU64(table.completed);
    msg.AppendAuxU64(table.failed);
    msg.AppendAuxU64(table.rejected);
    msg.AppendAuxU64(table.in_flight);
    msg.AppendAuxU64(table.c1_pool_hits);
    msg.AppendAuxU64(table.c1_pool_misses);
    msg.AppendAuxU64(table.c1_pool_stock);
    msg.AppendAuxU64(table.c1_pool_capacity);
    msg.AppendAuxU64(table.c2_pool_hits);
    msg.AppendAuxU64(table.c2_pool_misses);
    msg.AppendAuxU64(table.c2_pool_stock);
    msg.AppendAuxU64(table.c2_pool_capacity);
    // Revision 6: QoS admission and result-cache counters.
    msg.AppendAuxU32(table.weight);
    msg.AppendAuxU32(table.share_limit);
    msg.AppendAuxU64(table.cache_hits);
    msg.AppendAuxU64(table.cache_misses);
    msg.AppendAuxU64(table.cache_evictions);
    msg.AppendAuxU64(table.cache_entries);
    msg.AppendAuxU64(table.cache_bytes);
  }
  // Revision 6: per-API-key section after the table blocks.
  msg.AppendAuxU32(stats.auth_enabled ? 1 : 0);
  msg.AppendAuxU32(static_cast<uint32_t>(stats.keys.size()));
  for (const ApiKeyStatsEntry& key : stats.keys) {
    AppendString(msg, key.id);
    msg.AppendAuxU64(key.completed);
    msg.AppendAuxU64(key.denied);
    msg.AppendAuxU64(key.quota_rejected);
    msg.AppendAuxU64(key.quota);
    msg.AppendAuxU64(key.remaining);
    msg.AppendAuxU32(key.weight);
  }
  return msg;
}

Result<ServiceStatsReply> DecodeServiceStatsReply(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kServiceStatsResult)) {
    return BadFrame("not a kServiceStatsResult frame");
  }
  if (msg.aux.size() < 28) return BadFrame("truncated kServiceStatsResult");
  ServiceStatsReply stats;
  stats.uptime_seconds = F64At(msg, 0);
  stats.connections_accepted = msg.AuxU64At(8);
  stats.in_flight = msg.AuxU64At(16);
  const uint32_t count = msg.AuxU32At(24);
  // Same implausible-count guard as kTableList: a per-table block is at
  // least 148 bytes (name length prefix + 144 bytes of fixed counters).
  if (std::size_t{count} * 148 > msg.aux.size() - 28) {
    return BadFrame("kServiceStatsResult count implausible");
  }
  std::size_t at = 28;
  stats.tables.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TableStatsEntry table;
    if (!StringAt(msg, &at, &table.name) || msg.aux.size() < at + 144) {
      return BadFrame("kServiceStatsResult geometry mismatch");
    }
    table.completed = msg.AuxU64At(at);
    table.failed = msg.AuxU64At(at + 8);
    table.rejected = msg.AuxU64At(at + 16);
    table.in_flight = msg.AuxU64At(at + 24);
    table.c1_pool_hits = msg.AuxU64At(at + 32);
    table.c1_pool_misses = msg.AuxU64At(at + 40);
    table.c1_pool_stock = msg.AuxU64At(at + 48);
    table.c1_pool_capacity = msg.AuxU64At(at + 56);
    table.c2_pool_hits = msg.AuxU64At(at + 64);
    table.c2_pool_misses = msg.AuxU64At(at + 72);
    table.c2_pool_stock = msg.AuxU64At(at + 80);
    table.c2_pool_capacity = msg.AuxU64At(at + 88);
    table.weight = msg.AuxU32At(at + 96);
    table.share_limit = msg.AuxU32At(at + 100);
    table.cache_hits = msg.AuxU64At(at + 104);
    table.cache_misses = msg.AuxU64At(at + 112);
    table.cache_evictions = msg.AuxU64At(at + 120);
    table.cache_entries = msg.AuxU64At(at + 128);
    table.cache_bytes = msg.AuxU64At(at + 136);
    at += 144;
    stats.tables.push_back(std::move(table));
  }
  // Revision 6's per-API-key section: [auth_enabled:u32][num_keys:u32] then
  // one block per key.
  if (msg.aux.size() < at + 8) {
    return BadFrame("kServiceStatsResult key section truncated");
  }
  stats.auth_enabled = msg.AuxU32At(at) != 0;
  const uint32_t num_keys = msg.AuxU32At(at + 4);
  at += 8;
  // A per-key block is at least 48 bytes (id length prefix + five u64
  // counters + weight).
  if (std::size_t{num_keys} * 48 > msg.aux.size() - at) {
    return BadFrame("kServiceStatsResult key count implausible");
  }
  stats.keys.reserve(num_keys);
  for (uint32_t i = 0; i < num_keys; ++i) {
    ApiKeyStatsEntry key;
    if (!StringAt(msg, &at, &key.id) || msg.aux.size() < at + 44) {
      return BadFrame("kServiceStatsResult key geometry mismatch");
    }
    key.completed = msg.AuxU64At(at);
    key.denied = msg.AuxU64At(at + 8);
    key.quota_rejected = msg.AuxU64At(at + 16);
    key.quota = msg.AuxU64At(at + 24);
    key.remaining = msg.AuxU64At(at + 32);
    key.weight = msg.AuxU32At(at + 40);
    at += 44;
    stats.keys.push_back(std::move(key));
  }
  if (at != msg.aux.size()) {
    return BadFrame("kServiceStatsResult trailing bytes");
  }
  return stats;
}

Message EncodeHealthRequest() {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kHealth);
  return msg;
}

Message EncodeHealthReply(const HealthReply& health) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kHealthResult);
  msg.AppendAuxU32(static_cast<uint32_t>(health.tables.size()));
  for (const TableHealthEntry& table : health.tables) {
    AppendString(msg, table.name);
    msg.AppendAuxU32(static_cast<uint32_t>(table.replicas.size()));
    for (const ReplicaHealthEntry& replica : table.replicas) {
      msg.AppendAuxU32(replica.shard);
      msg.AppendAuxU32(replica.replica);
      msg.AppendAuxU32(replica.healthy ? 1 : 0);
      msg.AppendAuxU32(replica.consecutive_failures);
      msg.AppendAuxU64(replica.failovers);
      AppendF64(msg, replica.last_ok_age_seconds);
    }
  }
  return msg;
}

Result<HealthReply> DecodeHealthReply(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kHealthResult)) {
    return BadFrame("not a kHealthResult frame");
  }
  if (msg.aux.size() < 4) return BadFrame("truncated kHealthResult");
  const uint32_t num_tables = msg.AuxU32At(0);
  // Every table block needs at least its name length prefix and replica
  // count — the same implausible-count guard as kTableList.
  if (std::size_t{num_tables} * 8 > msg.aux.size() - 4) {
    return BadFrame("kHealthResult table count implausible");
  }
  constexpr std::size_t kPerReplica = 4 * 4 + 8 + 8;
  HealthReply health;
  health.tables.reserve(num_tables);
  std::size_t at = 4;
  for (uint32_t t = 0; t < num_tables; ++t) {
    TableHealthEntry table;
    if (!StringAt(msg, &at, &table.name) || msg.aux.size() < at + 4) {
      return BadFrame("kHealthResult table geometry mismatch");
    }
    const uint32_t num_replicas = msg.AuxU32At(at);
    at += 4;
    if (num_replicas > (std::size_t{1} << 20) ||
        msg.aux.size() < at + std::size_t{num_replicas} * kPerReplica) {
      return BadFrame("kHealthResult replica count implausible");
    }
    table.replicas.reserve(num_replicas);
    for (uint32_t r = 0; r < num_replicas; ++r) {
      ReplicaHealthEntry replica;
      replica.shard = msg.AuxU32At(at);
      replica.replica = msg.AuxU32At(at + 4);
      replica.healthy = msg.AuxU32At(at + 8) != 0;
      replica.consecutive_failures = msg.AuxU32At(at + 12);
      replica.failovers = msg.AuxU64At(at + 16);
      replica.last_ok_age_seconds = F64At(msg, at + 24);
      at += kPerReplica;
      table.replicas.push_back(replica);
    }
    health.tables.push_back(std::move(table));
  }
  if (at != msg.aux.size()) return BadFrame("kHealthResult trailing bytes");
  return health;
}

Message EncodeReloadTableRequest(const ReloadTableRequest& request) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kReloadTable);
  AppendString(msg, request.table);
  AppendString(msg, request.spec);
  return msg;
}

Result<ReloadTableRequest> DecodeReloadTableRequest(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kReloadTable)) {
    return BadFrame("not a kReloadTable frame");
  }
  std::size_t at = 0;
  ReloadTableRequest request;
  if (!StringAt(msg, &at, &request.table) ||
      !StringAt(msg, &at, &request.spec, kMaxSpecLen) ||
      at != msg.aux.size()) {
    return BadFrame("kReloadTable geometry mismatch");
  }
  return request;
}

namespace {

// kDetachTable and kAdminAck share one shape: a single table name.
Message EncodeNameShape(FrontendOp op, const std::string& name) {
  Message msg;
  msg.type = FrontendOpCode(op);
  AppendString(msg, name);
  return msg;
}

Result<std::string> DecodeNameShape(FrontendOp op, const char* what,
                                    const Message& msg) {
  if (msg.type != FrontendOpCode(op)) return BadFrame(what);
  std::size_t at = 0;
  std::string name;
  if (!StringAt(msg, &at, &name) || at != msg.aux.size()) {
    return BadFrame(what);
  }
  return name;
}

}  // namespace

Message EncodeDetachTableRequest(const std::string& name) {
  return EncodeNameShape(FrontendOp::kDetachTable, name);
}

Result<std::string> DecodeDetachTableRequest(const Message& msg) {
  return DecodeNameShape(FrontendOp::kDetachTable,
                         "malformed kDetachTable frame", msg);
}

Message EncodeAdminAck(const std::string& name) {
  return EncodeNameShape(FrontendOp::kAdminAck, name);
}

Result<std::string> DecodeAdminAck(const Message& msg) {
  return DecodeNameShape(FrontendOp::kAdminAck, "malformed kAdminAck frame",
                         msg);
}

Message EncodeTableChanged(const TableChangedNote& note) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kTableChanged);
  AppendString(msg, note.table);
  msg.AppendAuxU32(static_cast<uint32_t>(note.kind));
  return msg;
}

Result<TableChangedNote> DecodeTableChanged(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kTableChanged)) {
    return BadFrame("not a kTableChanged note");
  }
  std::size_t at = 0;
  TableChangedNote note;
  if (!StringAt(msg, &at, &note.table) || msg.aux.size() != at + 4) {
    return BadFrame("kTableChanged geometry mismatch");
  }
  const uint32_t kind = msg.AuxU32At(at);
  if (kind > static_cast<uint32_t>(TableChangeKind::kDetached)) {
    return BadFrame("kTableChanged carries an unknown kind");
  }
  note.kind = static_cast<TableChangeKind>(kind);
  return note;
}

Message EncodeAuthenticateRequest(const std::string& key) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kAuthenticate);
  AppendString(msg, key);
  return msg;
}

Result<std::string> DecodeAuthenticateRequest(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kAuthenticate)) {
    return BadFrame("not a kAuthenticate frame");
  }
  std::size_t at = 0;
  std::string key;
  if (!StringAt(msg, &at, &key) || at != msg.aux.size()) {
    return BadFrame("kAuthenticate geometry mismatch");
  }
  return key;
}

Message EncodeAuthAck(const std::string& key_id) {
  return EncodeNameShape(FrontendOp::kAuthAck, key_id);
}

Result<std::string> DecodeAuthAck(const Message& msg) {
  return DecodeNameShape(FrontendOp::kAuthAck, "malformed kAuthAck frame",
                         msg);
}

}  // namespace sknn
