#include "net/query_wire.h"

#include <bit>
#include <string>

namespace sknn {
namespace {

constexpr uint32_t kFlagBreakdown = 1;
constexpr uint32_t kFlagOpCounts = 2;

void AppendF64(Message& msg, double v) {
  msg.AppendAuxU64(std::bit_cast<uint64_t>(v));
}

double F64At(const Message& msg, std::size_t offset) {
  return std::bit_cast<double>(msg.AuxU64At(offset));
}

Status BadFrame(const char* what) {
  return Status::ProtocolError(std::string("front-end frame: ") + what);
}

}  // namespace

Message EncodeQueryRequest(const QueryRequest& request) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kQuery);
  msg.AppendAuxU32(request.k);
  msg.AppendAuxU32(static_cast<uint32_t>(request.protocol));
  msg.AppendAuxU32((request.want_breakdown ? kFlagBreakdown : 0) |
                   (request.want_op_counts ? kFlagOpCounts : 0));
  msg.AppendAuxU32(static_cast<uint32_t>(request.record.size()));
  for (int64_t v : request.record) {
    msg.AppendAuxU64(static_cast<uint64_t>(v));
  }
  return msg;
}

Result<QueryRequest> DecodeQueryRequest(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kQuery)) {
    return BadFrame("not a kQuery frame");
  }
  if (msg.aux.size() < 16) return BadFrame("truncated kQuery header");
  QueryRequest request;
  request.k = msg.AuxU32At(0);
  const uint32_t protocol = msg.AuxU32At(4);
  if (protocol > static_cast<uint32_t>(QueryProtocol::kFarthest)) {
    return BadFrame("unknown protocol");
  }
  request.protocol = static_cast<QueryProtocol>(protocol);
  const uint32_t flags = msg.AuxU32At(8);
  request.want_breakdown = (flags & kFlagBreakdown) != 0;
  request.want_op_counts = (flags & kFlagOpCounts) != 0;
  const uint32_t m = msg.AuxU32At(12);
  if (msg.aux.size() != 16 + std::size_t{m} * 8) {
    return BadFrame("kQuery geometry mismatch");
  }
  request.record.reserve(m);
  for (uint32_t j = 0; j < m; ++j) {
    request.record.push_back(
        static_cast<int64_t>(msg.AuxU64At(16 + std::size_t{j} * 8)));
  }
  return request;
}

Message EncodeQueryResponse(const QueryResponse& response) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kQueryResult);
  const std::size_t rows = response.records.size();
  const std::size_t cols = rows == 0 ? 0 : response.records[0].size();
  msg.AppendAuxU32(static_cast<uint32_t>(rows));
  msg.AppendAuxU32(static_cast<uint32_t>(cols));
  for (const auto& row : response.records) {
    for (int64_t v : row) msg.AppendAuxU64(static_cast<uint64_t>(v));
  }
  AppendF64(msg, response.bob_seconds);
  AppendF64(msg, response.cloud_seconds);
  msg.AppendAuxU64(response.traffic.frames_a_to_b);
  msg.AppendAuxU64(response.traffic.bytes_a_to_b);
  msg.AppendAuxU64(response.traffic.frames_b_to_a);
  msg.AppendAuxU64(response.traffic.bytes_b_to_a);
  msg.AppendAuxU64(response.ops.encryptions);
  msg.AppendAuxU64(response.ops.decryptions);
  msg.AppendAuxU64(response.ops.exponentiations);
  msg.AppendAuxU64(response.ops.multiplications);
  AppendF64(msg, response.breakdown.ssed_seconds);
  AppendF64(msg, response.breakdown.sbd_seconds);
  AppendF64(msg, response.breakdown.sminn_seconds);
  AppendF64(msg, response.breakdown.extract_seconds);
  AppendF64(msg, response.breakdown.update_seconds);
  AppendF64(msg, response.breakdown.finalize_seconds);
  AppendF64(msg, response.merge_seconds);
  msg.AppendAuxU32(static_cast<uint32_t>(response.shards.size()));
  for (const ShardQueryStats& shard : response.shards) {
    msg.AppendAuxU32(shard.shard);
    msg.AppendAuxU32(shard.candidates);
    AppendF64(msg, shard.seconds);
    msg.AppendAuxU64(shard.traffic.frames_a_to_b);
    msg.AppendAuxU64(shard.traffic.bytes_a_to_b);
    msg.AppendAuxU64(shard.traffic.frames_b_to_a);
    msg.AppendAuxU64(shard.traffic.bytes_b_to_a);
    msg.AppendAuxU64(shard.ops.encryptions);
    msg.AppendAuxU64(shard.ops.decryptions);
    msg.AppendAuxU64(shard.ops.exponentiations);
    msg.AppendAuxU64(shard.ops.multiplications);
  }
  return msg;
}

Result<QueryResponse> DecodeQueryResponse(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kQueryResult)) {
    return BadFrame("not a kQueryResult frame");
  }
  if (msg.aux.size() < 8) return BadFrame("truncated kQueryResult header");
  const std::size_t rows = msg.AuxU32At(0);
  const std::size_t cols = msg.AuxU32At(4);
  // Bound the claimed geometry BEFORE arithmetic: unchecked u32 dimensions
  // could overflow `expected` into a small value and defeat the size check,
  // turning a hostile frame into a huge out-of-bounds read below.
  constexpr std::size_t kMaxDim = std::size_t{1} << 20;
  if (rows > kMaxDim || cols > kMaxDim) {
    return BadFrame("kQueryResult geometry implausible");
  }
  // Records, two timings, 4 traffic counters, 4 op counters, 6 phases,
  // merge seconds — then the shard-count u32 and its per-shard blocks.
  const std::size_t fixed = 8 + (rows * cols + 2 + 4 + 4 + 6 + 1) * 8 + 4;
  if (msg.aux.size() < fixed) {
    return BadFrame("kQueryResult geometry mismatch");
  }
  const std::size_t num_shards = msg.AuxU32At(fixed - 4);
  constexpr std::size_t kPerShard = 4 + 4 + 9 * 8;
  if (num_shards > kMaxDim ||
      msg.aux.size() != fixed + num_shards * kPerShard) {
    return BadFrame("kQueryResult shard-stats geometry mismatch");
  }
  QueryResponse response;
  std::size_t at = 8;
  response.records.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    PlainRecord row;
    row.reserve(cols);
    for (std::size_t j = 0; j < cols; ++j, at += 8) {
      row.push_back(static_cast<int64_t>(msg.AuxU64At(at)));
    }
    response.records.push_back(std::move(row));
  }
  response.bob_seconds = F64At(msg, at);
  response.cloud_seconds = F64At(msg, at + 8);
  response.traffic.frames_a_to_b = msg.AuxU64At(at + 16);
  response.traffic.bytes_a_to_b = msg.AuxU64At(at + 24);
  response.traffic.frames_b_to_a = msg.AuxU64At(at + 32);
  response.traffic.bytes_b_to_a = msg.AuxU64At(at + 40);
  response.ops.encryptions = msg.AuxU64At(at + 48);
  response.ops.decryptions = msg.AuxU64At(at + 56);
  response.ops.exponentiations = msg.AuxU64At(at + 64);
  response.ops.multiplications = msg.AuxU64At(at + 72);
  response.breakdown.ssed_seconds = F64At(msg, at + 80);
  response.breakdown.sbd_seconds = F64At(msg, at + 88);
  response.breakdown.sminn_seconds = F64At(msg, at + 96);
  response.breakdown.extract_seconds = F64At(msg, at + 104);
  response.breakdown.update_seconds = F64At(msg, at + 112);
  response.breakdown.finalize_seconds = F64At(msg, at + 120);
  response.merge_seconds = F64At(msg, at + 128);
  at += 140;  // past the counters/phases block and the shard-count u32
  response.shards.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    ShardQueryStats shard;
    shard.shard = msg.AuxU32At(at);
    shard.candidates = msg.AuxU32At(at + 4);
    shard.seconds = F64At(msg, at + 8);
    shard.traffic.frames_a_to_b = msg.AuxU64At(at + 16);
    shard.traffic.bytes_a_to_b = msg.AuxU64At(at + 24);
    shard.traffic.frames_b_to_a = msg.AuxU64At(at + 32);
    shard.traffic.bytes_b_to_a = msg.AuxU64At(at + 40);
    shard.ops.encryptions = msg.AuxU64At(at + 48);
    shard.ops.decryptions = msg.AuxU64At(at + 56);
    shard.ops.exponentiations = msg.AuxU64At(at + 64);
    shard.ops.multiplications = msg.AuxU64At(at + 72);
    response.shards.push_back(shard);
    at += kPerShard;
  }
  return response;
}

Message EncodeQueryError(const Status& status) {
  Message msg;
  msg.type = FrontendOpCode(FrontendOp::kQueryError);
  msg.AppendAuxU32(static_cast<uint32_t>(status.code()));
  const std::string& text = status.message();
  msg.aux.insert(msg.aux.end(), text.begin(), text.end());
  return msg;
}

Status DecodeQueryError(const Message& msg) {
  if (msg.type != FrontendOpCode(FrontendOp::kQueryError) ||
      msg.aux.size() < 4) {
    return BadFrame("malformed kQueryError frame");
  }
  const uint32_t code = msg.AuxU32At(0);
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return BadFrame("kQueryError carries an unknown status code");
  }
  return Status(static_cast<StatusCode>(code),
                std::string(msg.aux.begin() + 4, msg.aux.end()));
}

}  // namespace sknn
