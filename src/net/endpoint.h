// Transport-neutral frame endpoint. The RPC layer is written against this
// interface, so the same protocol code runs over the in-memory channel
// (single-process simulation, traffic-accounted) or over TCP sockets
// (real two-process deployment; see net/socket.h and tools/).
#ifndef SKNN_NET_ENDPOINT_H_
#define SKNN_NET_ENDPOINT_H_

#include <cstdint>
#include <vector>

namespace sknn {

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// \brief Enqueues/writes one frame. Returns false once closed.
  virtual bool Send(std::vector<uint8_t> frame) = 0;

  /// \brief Blocks for the next frame; false when closed and drained.
  virtual bool Recv(std::vector<uint8_t>* frame) = 0;

  /// \brief Closes the link; unblocks any waiting Recv on both sides.
  virtual void Close() = 0;
};

}  // namespace sknn

#endif  // SKNN_NET_ENDPOINT_H_
