// TCP transport: the real two-process deployment of the federated cloud.
//
// SocketEndpoint speaks the same framing as the in-memory channel — each
// frame is a little-endian u32 length prefix followed by the WireCodec
// bytes — so RpcClient/RpcServer and all protocol code run unchanged over
// it. tools/ uses this to run C2 as a standalone key-holder server and the
// C1 driver (plus Bob) as separate processes.
#ifndef SKNN_NET_SOCKET_H_
#define SKNN_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/endpoint.h"

namespace sknn {

class SocketEndpoint : public Endpoint {
 public:
  /// \brief Takes ownership of a connected stream-socket fd.
  explicit SocketEndpoint(int fd) : fd_(fd) {}
  ~SocketEndpoint() override;

  bool Send(std::vector<uint8_t> frame) override;
  bool Recv(std::vector<uint8_t>* frame) override;

  /// \brief Half-closes the connection: shutdown(2) unblocks any thread
  /// sitting in Send/Recv and fails future calls. The fd itself is released
  /// by the destructor only — a concurrent reader must never observe its fd
  /// number closed (and potentially reused by another open()) under it.
  void Close() override;

  /// \brief Bytes written/read so far (communication-cost accounting for
  /// the socket deployment, mirroring Channel's TrafficStats).
  uint64_t bytes_sent() const { return bytes_sent_.load(); }
  uint64_t bytes_received() const { return bytes_received_.load(); }

 private:
  /// Assigned once at construction, closed by the destructor. Concurrent
  /// Send/Recv/Close only ever read it.
  const int fd_;
  Mutex send_mutex_;  // serializes writers: frames must not interleave
  Mutex recv_mutex_;  // serializes readers: one frame per caller
  std::atomic<bool> closed_{false};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
};

/// \brief Connects to host:port (IPv4 dotted quad or "localhost").
Result<std::unique_ptr<SocketEndpoint>> ConnectTcp(const std::string& host,
                                                   uint16_t port);

/// \brief Listening socket; Bind with port 0 chooses an ephemeral port
/// (query it with port() — used by tests and printed by the C2 server).
class TcpListener {
 public:
  static Result<TcpListener> Bind(uint16_t port);
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// \brief Blocks for the next inbound connection.
  Result<std::unique_ptr<SocketEndpoint>> Accept();

  /// \brief Stops accepting; a blocked Accept returns an error. Safe to
  /// call from another thread than the accept loop's (the shutdown state is
  /// atomic — the serving front end's Shutdown races its accept thread by
  /// design).
  void Close();

  uint16_t port() const { return port_; }

  /// \brief The listening fd, for the servers' signal handlers ONLY:
  /// shutdown(2) is async-signal-safe and wakes a blocked accept(2), which
  /// is how SIGINT/SIGTERM turn into a clean unbind-and-drain instead of a
  /// kill -9 (tools/tool_util.h InstallShutdownHandler).
  int native_handle() const { return fd_.load(std::memory_order_acquire); }

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  /// -1 once closed (or moved from). Atomic because Close() is called from
  /// a shutdown thread while the accept thread reads it — previously a
  /// plain int, which was a data race TSan flagged on every clean shutdown.
  std::atomic<int> fd_;
  uint16_t port_;
};

}  // namespace sknn

#endif  // SKNN_NET_SOCKET_H_
