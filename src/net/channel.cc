#include "net/channel.h"

#include <sstream>

namespace sknn {

std::string TrafficStats::ToString() const {
  std::ostringstream os;
  os << "C1->C2: " << frames_a_to_b << " frames / " << bytes_a_to_b
     << " B; C2->C1: " << frames_b_to_a << " frames / " << bytes_b_to_a
     << " B";
  return os.str();
}

Channel::EndpointPair Channel::CreatePair() {
  auto channel = std::shared_ptr<Channel>(new Channel());
  EndpointPair pair;
  pair.a = std::make_unique<ChannelEndpoint>(channel, /*is_a=*/true);
  pair.b = std::make_unique<ChannelEndpoint>(channel, /*is_a=*/false);
  return pair;
}

TrafficStats Channel::stats() const {
  MutexLock lock(&mutex_);
  return stats_;
}

void Channel::ResetStats() {
  MutexLock lock(&mutex_);
  stats_ = TrafficStats{};
}

void Channel::set_latency(std::chrono::microseconds latency) {
  MutexLock lock(&mutex_);
  latency_ = latency;
}

std::chrono::microseconds Channel::latency() const {
  MutexLock lock(&mutex_);
  return latency_;
}

bool ChannelEndpoint::Send(std::vector<uint8_t> frame) {
  Channel& ch = *channel_;
  MutexLock lock(&ch.mutex_);
  if (ch.closed_) return false;
  Channel::Queue& q = is_a_ ? ch.a_to_b_ : ch.b_to_a_;
  if (is_a_) {
    ch.stats_.frames_a_to_b++;
    ch.stats_.bytes_a_to_b += frame.size();
  } else {
    ch.stats_.frames_b_to_a++;
    ch.stats_.bytes_b_to_a += frame.size();
  }
  q.frames.push_back(
      {Channel::Clock::now() + ch.latency_, std::move(frame)});
  q.cv.NotifyOne();
  return true;
}

bool ChannelEndpoint::Recv(std::vector<uint8_t>* frame) {
  Channel& ch = *channel_;
  MutexLock lock(&ch.mutex_);
  Channel::Queue& q = is_a_ ? ch.b_to_a_ : ch.a_to_b_;
  for (;;) {
    while (!ch.closed_ && q.frames.empty()) q.cv.Wait(ch.mutex_);
    if (q.frames.empty()) return false;  // closed and drained
    // Honor the simulated link latency: frames are FIFO, so only the head's
    // delivery time matters.
    Channel::Clock::time_point ready_at = q.frames.front().deliver_at;
    if (ready_at <= Channel::Clock::now()) break;
    q.cv.WaitUntil(ch.mutex_, ready_at);
  }
  *frame = std::move(q.frames.front().bytes);
  q.frames.pop_front();
  return true;
}

void ChannelEndpoint::Close() {
  Channel& ch = *channel_;
  MutexLock lock(&ch.mutex_);
  if (ch.closed_) return;
  ch.closed_ = true;
  ch.a_to_b_.cv.NotifyAll();
  ch.b_to_a_.cv.NotifyAll();
}

}  // namespace sknn
