// Coordinator <-> shard-worker wire frames.
//
// A sharded front end (docs/DEPLOY.md) fans each query out to s shard
// workers (tools/sknn_c1_shard), each holding one slice of Epk(T) and its
// own link to C2. The frames ride the existing Message/WireCodec/RpcClient
// stack, in an opcode space disjoint from both the C1<->C2 Op space and the
// client-facing FrontendOp space, so a frame from the wrong link is
// rejected, never misinterpreted.
//
//   kShardPing       coordinator -> worker at connect: the worker answers
//                    with its geometry (shard index, manifest, db shape) so
//                    a misconfigured worker set fails fast, not per query.
//   kShardQuery      one query's fan-out leg: Epk(Q), k, protocol; the
//                    query id rides the Message header so the worker tags
//                    its C2 exchanges with it (one ledger entry per query
//                    across coordinator AND workers).
//   kShardCandidates the worker's min(k, shard size) local candidates plus
//                    its stage instrumentation (seconds, C2 traffic, ops).
//   kShardError      a real Status, code included — the coordinator
//                    distinguishes a worker-side protocol failure from a
//                    dead link (which surfaces as kUnavailable).
#ifndef SKNN_NET_SHARD_WIRE_H_
#define SKNN_NET_SHARD_WIRE_H_

#include "core/query_api.h"
#include "core/sharding.h"
#include "net/message.h"

namespace sknn {

enum class ShardOp : uint16_t {
  kShardPing = 0x0201,
  kShardQuery = 0x0202,
  kShardCandidates = 0x0203,
  kShardError = 0x0204,
};

inline uint16_t ShardOpCode(ShardOp op) { return static_cast<uint16_t>(op); }

/// \brief What a worker reports about itself at connect time.
struct ShardGeometry {
  uint32_t shard = 0;
  ShardManifest manifest;
  uint32_t num_attributes = 0;
  uint32_t distance_bits = 0;
  /// Records this worker's slice holds. For kContiguous/kRoundRobin this is
  /// derivable from the manifest; for kByCluster (data-dependent slices) it
  /// is the only way the coordinator learns shard sizes, which the clustered
  /// candidate-selection rule and per-shard stats need.
  uint32_t shard_records = 0;

  bool operator==(const ShardGeometry&) const = default;
};

Message EncodeShardPing();
Message EncodeShardGeometry(const ShardGeometry& geometry);
Result<ShardGeometry> DecodeShardGeometry(const Message& msg);

/// \brief One query's shard leg.
struct ShardQueryFrame {
  uint64_t query_id = 0;
  unsigned k = 1;
  QueryProtocol protocol = QueryProtocol::kSecure;
  /// Milliseconds this attempt may take, 0 = unbounded. The worker arms its
  /// ProtoContext deadline with it so a hung C2 fails the stage as
  /// kDeadlineExceeded instead of pinning the worker thread forever. Rides
  /// as an OPTIONAL trailing aux word: pre-deadline workers never see it,
  /// pre-deadline coordinators never send it.
  uint32_t deadline_ms = 0;
  std::vector<Ciphertext> enc_query;
};

Message EncodeShardQuery(const ShardQueryFrame& frame);
Result<ShardQueryFrame> DecodeShardQuery(const Message& msg);

/// \brief A worker's answer: candidates plus stage instrumentation.
struct ShardCandidatesFrame {
  ShardCandidates candidates;
  double seconds = 0;
  TrafficStats traffic;
  OpSnapshot ops;
};

Message EncodeShardCandidates(const ShardCandidatesFrame& frame);
Result<ShardCandidatesFrame> DecodeShardCandidates(const Message& msg);

/// \brief `status` must be an error; the code crosses the wire intact.
Message EncodeShardError(const Status& status);
/// \brief The Status carried by a kShardError frame (never OK).
Status DecodeShardError(const Message& msg);

}  // namespace sknn

#endif  // SKNN_NET_SHARD_WIRE_H_
