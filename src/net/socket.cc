#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sknn {
namespace {

// Writes the whole buffer, looping over partial writes and EINTR.
bool WriteAll(int fd, const uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads exactly len bytes; false on EOF or error.
bool ReadAll(int fd, uint8_t* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    ssize_t n = ::recv(fd, data + done, len - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // orderly shutdown
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketEndpoint::~SocketEndpoint() {
  Close();
  // The fd is released here and only here: Close() may run while another
  // thread is blocked inside recv(2)/send(2) on this fd, and closing it
  // under that thread would let the kernel recycle the number for an
  // unrelated descriptor mid-read. By destruction time no other thread may
  // touch the endpoint, so the close is safe.
  ::close(fd_);
}

bool SocketEndpoint::Send(std::vector<uint8_t> frame) {
  if (closed_.load(std::memory_order_acquire)) return false;
  // Oversized frames would wrap the length prefix.
  if (frame.size() > 0xFFFFFFFFu) return false;
  uint8_t header[4];
  uint32_t len = static_cast<uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<uint8_t>(len >> (8 * i));
  MutexLock lock(&send_mutex_);
  if (!WriteAll(fd_, header, 4) ||
      !WriteAll(fd_, frame.data(), frame.size())) {
    return false;
  }
  bytes_sent_.fetch_add(4 + frame.size(), std::memory_order_relaxed);
  return true;
}

bool SocketEndpoint::Recv(std::vector<uint8_t>* frame) {
  MutexLock lock(&recv_mutex_);
  uint8_t header[4];
  if (!ReadAll(fd_, header, 4)) return false;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[i]) << (8 * i);
  frame->resize(len);
  if (len > 0 && !ReadAll(fd_, frame->data(), len)) return false;
  bytes_received_.fetch_add(4 + len, std::memory_order_relaxed);
  return true;
}

void SocketEndpoint::Close() {
  bool expected = false;
  if (closed_.compare_exchange_strong(expected, true)) {
    // shutdown(2), not close(2): unblocks any reader/writer without
    // releasing the fd number while they still hold it (see ~SocketEndpoint).
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Result<std::unique_ptr<SocketEndpoint>> ConnectTcp(const std::string& host,
                                                   uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(): " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("ConnectTcp: bad IPv4 address '" + host +
                                   "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("connect(" + host + ":" + std::to_string(port) +
                           "): " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketEndpoint>(fd);
}

Result<TcpListener> TcpListener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(): " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind(:" + std::to_string(port) +
                           "): " + std::strerror(errno));
  }
  if (::listen(fd, 8) != 0) {
    ::close(fd);
    return Status::IoError("listen(): " + std::string(std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return Status::IoError("getsockname(): " +
                           std::string(std::strerror(errno)));
  }
  return TcpListener(fd, ntohs(addr.sin_port));
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)),
      port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
              std::memory_order_release);
    port_ = other.port_;
  }
  return *this;
}

Result<std::unique_ptr<SocketEndpoint>> TcpListener::Accept() {
  // Read the fd once: Close() may flip it to -1 concurrently (the front
  // end's shutdown path), and a blocked accept(2) on the old fd then fails
  // with EBADF/EINVAL — which the caller's stop flag turns into a clean
  // exit.
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) {
    return Status::IoError("accept(): listener is closed");
  }
  int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) {
    return Status::IoError("accept(): " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<SocketEndpoint>(client);
}

void TcpListener::Close() {
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace sknn
