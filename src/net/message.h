// Typed protocol message and its wire codec.
//
// The two clouds exchange Messages: an opcode, a correlation id (so many
// requests can be in flight during parallel record fan-out), a query id (so
// many *queries* can be in flight — C2 keys its per-query state, e.g. Bob's
// outbox, by it), a vector of big integers (ciphertexts / plaintext
// residues) and optional raw bytes. Messages are actually serialized to a
// length-prefixed wire format — the traffic counters in channel.h therefore
// measure real communication cost, and the same codec would work over a
// socket.
#ifndef SKNN_NET_MESSAGE_H_
#define SKNN_NET_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"
#include "common/status.h"

namespace sknn {

struct Message {
  uint16_t type = 0;
  uint64_t correlation_id = 0;
  /// Identifies which client query this exchange belongs to (0 = untagged).
  /// Assigned by C1's request scheduler; echoed back in responses.
  uint64_t query_id = 0;
  std::vector<BigInt> ints;
  std::vector<uint8_t> aux;

  /// \brief Serialized size in bytes (what the codec will emit).
  std::size_t WireSize() const;

  /// \brief Appends a little-endian u32 to aux — the aux-header convention
  /// shared by every opcode that carries geometry (l, count, k, indices).
  void AppendAuxU32(uint32_t v);
  /// \brief Reads the little-endian u32 at aux[offset..offset+4). The caller
  /// must have validated aux.size().
  uint32_t AuxU32At(std::size_t offset) const;

  /// \brief Little-endian u64 aux accessors — the front-end frames
  /// (net/query_wire.h) carry record attributes, counters and f64 bit
  /// patterns this wide.
  void AppendAuxU64(uint64_t v);
  uint64_t AuxU64At(std::size_t offset) const;
};

/// \brief Wire format:
///   [type:2][cid:8][qid:8][n_ints:4]([len:4][bytes])*[aux_len:4][aux]
/// all integers little-endian; BigInts as big-endian magnitudes (values are
/// protocol residues, always non-negative).
class WireCodec {
 public:
  static std::vector<uint8_t> Encode(const Message& msg);
  static Result<Message> Decode(const std::vector<uint8_t>& bytes);
};

}  // namespace sknn

#endif  // SKNN_NET_MESSAGE_H_
