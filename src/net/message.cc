#include "net/message.h"

namespace sknn {
namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

bool GetU16(const std::vector<uint8_t>& in, std::size_t& pos, uint16_t* v) {
  if (pos + 2 > in.size()) return false;
  *v = static_cast<uint16_t>(in[pos]) | (static_cast<uint16_t>(in[pos + 1]) << 8);
  pos += 2;
  return true;
}

bool GetU32(const std::vector<uint8_t>& in, std::size_t& pos, uint32_t* v) {
  if (pos + 4 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(in[pos + i]) << (8 * i);
  pos += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& in, std::size_t& pos, uint64_t* v) {
  if (pos + 8 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(in[pos + i]) << (8 * i);
  pos += 8;
  return true;
}

}  // namespace

void Message::AppendAuxU32(uint32_t v) { PutU32(aux, v); }

uint32_t Message::AuxU32At(std::size_t offset) const {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(aux[offset + i]) << (8 * i);
  }
  return v;
}

void Message::AppendAuxU64(uint64_t v) { PutU64(aux, v); }

uint64_t Message::AuxU64At(std::size_t offset) const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(aux[offset + i]) << (8 * i);
  }
  return v;
}

std::size_t Message::WireSize() const {
  std::size_t size = 2 + 8 + 8 + 4 + 4 + aux.size();
  for (const auto& v : ints) {
    size += 4 + (v.IsZero() ? 0 : (v.BitLength() + 7) / 8);
  }
  return size;
}

std::vector<uint8_t> WireCodec::Encode(const Message& msg) {
  std::vector<uint8_t> out;
  out.reserve(msg.WireSize());
  PutU16(out, msg.type);
  PutU64(out, msg.correlation_id);
  PutU64(out, msg.query_id);
  PutU32(out, static_cast<uint32_t>(msg.ints.size()));
  for (const auto& v : msg.ints) {
    std::vector<uint8_t> bytes = v.ToBytes();
    PutU32(out, static_cast<uint32_t>(bytes.size()));
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  PutU32(out, static_cast<uint32_t>(msg.aux.size()));
  out.insert(out.end(), msg.aux.begin(), msg.aux.end());
  return out;
}

Result<Message> WireCodec::Decode(const std::vector<uint8_t>& bytes) {
  Message msg;
  std::size_t pos = 0;
  uint32_t n_ints = 0, aux_len = 0;
  if (!GetU16(bytes, pos, &msg.type) ||
      !GetU64(bytes, pos, &msg.correlation_id) ||
      !GetU64(bytes, pos, &msg.query_id) ||
      !GetU32(bytes, pos, &n_ints)) {
    return Status::ProtocolError("WireCodec: truncated header");
  }
  msg.ints.reserve(n_ints);
  for (uint32_t i = 0; i < n_ints; ++i) {
    uint32_t len = 0;
    if (!GetU32(bytes, pos, &len) || pos + len > bytes.size()) {
      return Status::ProtocolError("WireCodec: truncated integer");
    }
    std::vector<uint8_t> chunk(bytes.begin() + pos, bytes.begin() + pos + len);
    msg.ints.push_back(BigInt::FromBytes(chunk));
    pos += len;
  }
  if (!GetU32(bytes, pos, &aux_len) || pos + aux_len > bytes.size()) {
    return Status::ProtocolError("WireCodec: truncated aux");
  }
  msg.aux.assign(bytes.begin() + pos, bytes.begin() + pos + aux_len);
  pos += aux_len;
  if (pos != bytes.size()) {
    return Status::ProtocolError("WireCodec: trailing bytes");
  }
  return msg;
}

}  // namespace sknn
