#include "net/rpc.h"

#include <string>

#include "common/logging.h"

namespace sknn {

RpcClient::RpcClient(std::unique_ptr<Endpoint> endpoint)
    : endpoint_(std::move(endpoint)) {
  demux_thread_ = std::thread([this] { DemuxLoop(); });
}

RpcClient::~RpcClient() {
  Shutdown();
  if (demux_thread_.joinable()) demux_thread_.join();
}

Result<Message> RpcClient::Call(Message request,
                                std::chrono::milliseconds timeout) {
  if (shutdown_.load()) {
    return Status::ProtocolError("RpcClient: already shut down");
  }
  if (link_down_.load()) {
    return Status::ProtocolError("RpcClient: link closed");
  }
  uint64_t id = next_id_.fetch_add(1);
  request.correlation_id = id;
  auto call = std::make_shared<PendingCall>();
  {
    MutexLock lock(&pending_mutex_);
    pending_[id] = call;
  }
  if (!endpoint_->Send(WireCodec::Encode(request))) {
    MutexLock lock(&pending_mutex_);
    pending_.erase(id);
    return Status::ProtocolError("RpcClient: link closed on send");
  }
  // Re-check AFTER registering: a TCP send can still succeed (buffered)
  // once the peer is gone, and if the demux loop exited before our entry
  // landed in pending_, nobody would ever complete this call. The demux
  // sets link_down_ before its final sweep, so one of the two — the sweep
  // or this check — always settles the call instead of letting it hang.
  // Only a call still IN pending_ is failed here: if the demux already
  // took it, it was completed (a real response that raced the link close,
  // or the sweep's error) and that result must be delivered as-is.
  if (link_down_.load()) {
    bool still_pending;
    {
      MutexLock lock(&pending_mutex_);
      still_pending = pending_.erase(id) > 0;
    }
    if (still_pending) {
      return Status::ProtocolError("RpcClient: link closed");
    }
  }
  PendingCall& pending = *call;
  if (timeout.count() <= 0) {
    MutexLock lock(&pending.mutex);
    while (!pending.done) pending.cv.Wait(pending.mutex);
    return std::move(pending.result);
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  {
    MutexLock lock(&pending.mutex);
    while (!pending.done) {
      if (std::chrono::steady_clock::now() >= deadline) break;
      pending.cv.WaitUntil(pending.mutex, deadline);
    }
    if (pending.done) return std::move(pending.result);
  }
  // Timed out. Unregister so the demux drops the late response as an
  // unknown correlation id. Lock order matters: pending.mutex was released
  // above, because the demux takes pending_mutex_ BEFORE a call's mutex.
  bool erased;
  {
    MutexLock lock(&pending_mutex_);
    erased = pending_.erase(id) > 0;
  }
  if (erased) {
    return Status::DeadlineExceeded(
        "RpcClient: no response within " + std::to_string(timeout.count()) +
        " ms");
  }
  // The demux claimed the entry between our timeout and the erase: a result
  // is being delivered right now — take it instead of fabricating a timeout.
  MutexLock lock(&pending.mutex);
  while (!pending.done) pending.cv.Wait(pending.mutex);
  return std::move(pending.result);
}

void RpcClient::SetNoteHandler(std::function<void(const Message&)> handler) {
  MutexLock lock(&note_mutex_);
  note_handler_ = std::move(handler);
}

void RpcClient::Shutdown() {
  shutdown_.store(true);
  endpoint_->Close();
}

void RpcClient::DemuxLoop() {
  std::vector<uint8_t> frame;
  while (endpoint_->Recv(&frame)) {
    Result<Message> decoded = WireCodec::Decode(frame);
    if (decoded.ok() && decoded->correlation_id == 0) {
      // Correlation id 0 is never assigned to a Call: it marks an
      // unsolicited server note (RpcServer::Push). Deliver it to the note
      // handler; clients that installed none simply ignore notes.
      std::function<void(const Message&)> handler;
      {
        MutexLock lock(&note_mutex_);
        handler = note_handler_;
      }
      if (handler) handler(*decoded);
      continue;
    }
    std::shared_ptr<PendingCall> call;
    if (decoded.ok()) {
      MutexLock lock(&pending_mutex_);
      auto it = pending_.find(decoded->correlation_id);
      if (it != pending_.end()) {
        call = it->second;
        pending_.erase(it);
      }
    }
    if (!call) {
      SKNN_LOG(Warning) << "RpcClient: dropping frame (unknown correlation "
                           "id or decode failure)";
      continue;
    }
    PendingCall& pending = *call;
    {
      MutexLock lock(&pending.mutex);
      pending.result = std::move(decoded);
      pending.done = true;
    }
    pending.cv.NotifyOne();
  }
  // Link closed: refuse new calls, then fail everything still pending.
  link_down_.store(true);
  std::map<uint64_t, std::shared_ptr<PendingCall>> leftover;
  {
    MutexLock lock(&pending_mutex_);
    leftover.swap(pending_);
  }
  for (auto& [id, call] : leftover) {
    (void)id;
    PendingCall& pending = *call;
    {
      MutexLock lock(&pending.mutex);
      pending.result = Status::ProtocolError("RpcClient: link closed");
      pending.done = true;
    }
    pending.cv.NotifyOne();
  }
}

RpcServer::RpcServer(std::unique_ptr<Endpoint> endpoint,
                     Handler handler, std::size_t worker_threads)
    : endpoint_(std::move(endpoint)), handler_(std::move(handler)) {
  if (worker_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(worker_threads);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

RpcServer::~RpcServer() {
  Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_.reset();  // joins workers (pending tasks finish first)
}

void RpcServer::Shutdown() { endpoint_->Close(); }

bool RpcServer::Push(Message note) {
  note.correlation_id = 0;
  MutexLock lock(&send_mutex_);
  return endpoint_->Send(WireCodec::Encode(note));
}

void RpcServer::WaitForClose() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void RpcServer::AcceptLoop() {
  std::vector<uint8_t> frame;
  while (endpoint_->Recv(&frame)) {
    if (pool_) {
      auto owned = std::make_shared<std::vector<uint8_t>>(std::move(frame));
      pool_->Submit([this, owned] { HandleFrame(std::move(*owned)); });
    } else {
      HandleFrame(std::move(frame));
    }
  }
  finished_.store(true, std::memory_order_release);
}

void RpcServer::HandleFrame(std::vector<uint8_t> frame) {
  Result<Message> request = WireCodec::Decode(frame);
  if (!request.ok()) {
    SKNN_LOG(Warning) << "RpcServer: dropping undecodable frame: "
                      << request.status();
    return;
  }
  uint64_t cid = request->correlation_id;
  Result<Message> response = handler_(*request);
  Message out;
  if (response.ok()) {
    out = std::move(*response);
  } else {
    // Error responses carry the status message in aux with type 0xFFFF so
    // the client surfaces a ProtocolError instead of hanging.
    out.type = 0xFFFF;
    const std::string& text = response.status().ToString();
    out.aux.assign(text.begin(), text.end());
  }
  out.correlation_id = cid;
  out.query_id = request->query_id;
  MutexLock lock(&send_mutex_);
  endpoint_->Send(WireCodec::Encode(out));
}

}  // namespace sknn
