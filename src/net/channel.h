// In-memory duplex link simulating the C1 <-> C2 connection.
//
// Channel::CreatePair() returns two endpoints; frames sent on one are
// received on the other, FIFO. All traffic is accounted (frames and bytes per
// direction), which is how the benchmark harness reports the communication
// cost of each protocol. Closing either endpoint unblocks receivers.
#ifndef SKNN_NET_CHANNEL_H_
#define SKNN_NET_CHANNEL_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/endpoint.h"

namespace sknn {

struct TrafficStats {
  uint64_t frames_a_to_b = 0;
  uint64_t bytes_a_to_b = 0;
  uint64_t frames_b_to_a = 0;
  uint64_t bytes_b_to_a = 0;

  uint64_t total_bytes() const { return bytes_a_to_b + bytes_b_to_a; }
  uint64_t total_frames() const { return frames_a_to_b + frames_b_to_a; }
  TrafficStats operator+(const TrafficStats& o) const {
    return {frames_a_to_b + o.frames_a_to_b, bytes_a_to_b + o.bytes_a_to_b,
            frames_b_to_a + o.frames_b_to_a, bytes_b_to_a + o.bytes_b_to_a};
  }
  std::string ToString() const;
};

class ChannelEndpoint;

/// \brief Shared state of a duplex link between two endpoints (A and B).
/// One mutex guards the whole link: both queues, the stats, the latency
/// knob and the closed flag (frames are multi-KB ciphertext vectors, so
/// finer-grained locking would buy nothing).
class Channel {
 public:
  struct EndpointPair {
    std::unique_ptr<ChannelEndpoint> a;
    std::unique_ptr<ChannelEndpoint> b;
  };

  /// \brief Creates a connected endpoint pair.
  static EndpointPair CreatePair();

  TrafficStats stats() const;
  void ResetStats();

  /// \brief Simulated one-way link latency (default zero). Frames become
  /// visible to the receiver `latency` after Send — this is how the bench
  /// harness models a WAN between the two clouds, making round-trip-depth
  /// differences (e.g. SMIN_n tournament vs linear scan) measurable.
  void set_latency(std::chrono::microseconds latency);
  std::chrono::microseconds latency() const;

 private:
  friend class ChannelEndpoint;

  using Clock = std::chrono::steady_clock;

  struct TimedFrame {
    Clock::time_point deliver_at;
    std::vector<uint8_t> bytes;
  };

  struct Queue {
    std::deque<TimedFrame> frames;
    CondVar cv;
  };

  mutable Mutex mutex_;
  Queue a_to_b_ GUARDED_BY(mutex_);
  Queue b_to_a_ GUARDED_BY(mutex_);
  TrafficStats stats_ GUARDED_BY(mutex_);
  std::chrono::microseconds latency_ GUARDED_BY(mutex_){0};
  bool closed_ GUARDED_BY(mutex_) = false;
};

/// \brief One side of a Channel. Send/Recv are thread-safe.
class ChannelEndpoint : public Endpoint {
 public:
  ChannelEndpoint(std::shared_ptr<Channel> channel, bool is_a)
      : channel_(std::move(channel)), is_a_(is_a) {}
  ~ChannelEndpoint() override { Close(); }

  /// \brief Enqueues a frame for the peer. Returns false if closed.
  bool Send(std::vector<uint8_t> frame) override;

  /// \brief Blocks for the next frame. Returns false when the link is closed
  /// and drained.
  bool Recv(std::vector<uint8_t>* frame) override;

  /// \brief Closes the link in both directions; wakes all blocked receivers.
  void Close() override;

  Channel& channel() { return *channel_; }

 private:
  std::shared_ptr<Channel> channel_;
  bool is_a_;
};

}  // namespace sknn

#endif  // SKNN_NET_CHANNEL_H_
