#include "crypto/serialization.h"

#include <fstream>
#include <map>
#include <sstream>

namespace sknn {
namespace {

constexpr char kPublicHeader[] = "sknn-paillier-public-v1";
constexpr char kSecretHeader[] = "sknn-paillier-secret-v1";

// Parses "header\nkey: value\n..." into a map, checking the header line.
Result<std::map<std::string, std::string>> ParseKeyValueBlock(
    const std::string& text, const std::string& expected_header) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != expected_header) {
    return Status::InvalidArgument("key parse: bad or missing header (want '" +
                                   expected_header + "')");
  }
  std::map<std::string, std::string> fields;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::size_t colon = line.find(": ");
    if (colon == std::string::npos) {
      return Status::InvalidArgument("key parse: malformed line '" + line +
                                     "'");
    }
    fields[line.substr(0, colon)] = line.substr(colon + 2);
  }
  return fields;
}

Result<BigInt> HexField(const std::map<std::string, std::string>& fields,
                        const std::string& name) {
  auto it = fields.find(name);
  if (it == fields.end()) {
    return Status::InvalidArgument("key parse: missing field '" + name + "'");
  }
  return BigInt::FromString(it->second, 16);
}

Result<unsigned> BitsField(const std::map<std::string, std::string>& fields) {
  auto it = fields.find("key_bits");
  if (it == fields.end()) {
    return Status::InvalidArgument("key parse: missing field 'key_bits'");
  }
  try {
    return static_cast<unsigned>(std::stoul(it->second));
  } catch (const std::exception&) {
    return Status::InvalidArgument("key parse: bad key_bits");
  }
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << content;
  if (!out.good()) return Status::IoError("write failure on " + path);
  return Status::OK();
}

}  // namespace

std::string SerializePublicKey(const PaillierPublicKey& pk) {
  std::ostringstream out;
  out << kPublicHeader << "\n";
  out << "key_bits: " << pk.key_bits() << "\n";
  out << "n: " << pk.n().ToString(16) << "\n";
  return out.str();
}

Result<PaillierPublicKey> ParsePublicKey(const std::string& text) {
  SKNN_ASSIGN_OR_RETURN(auto fields, ParseKeyValueBlock(text, kPublicHeader));
  SKNN_ASSIGN_OR_RETURN(unsigned bits, BitsField(fields));
  SKNN_ASSIGN_OR_RETURN(BigInt n, HexField(fields, "n"));
  if (n.BitLength() != bits) {
    return Status::InvalidArgument("public key parse: n does not match "
                                   "key_bits");
  }
  return PaillierPublicKey(std::move(n), bits);
}

std::string SerializeSecretKey(const PaillierSecretKey& sk) {
  std::ostringstream out;
  out << kSecretHeader << "\n";
  out << "key_bits: " << sk.public_key().key_bits() << "\n";
  out << "p: " << sk.p().ToString(16) << "\n";
  out << "q: " << sk.q().ToString(16) << "\n";
  return out.str();
}

Result<PaillierSecretKey> ParseSecretKey(const std::string& text) {
  SKNN_ASSIGN_OR_RETURN(auto fields, ParseKeyValueBlock(text, kSecretHeader));
  SKNN_ASSIGN_OR_RETURN(unsigned bits, BitsField(fields));
  SKNN_ASSIGN_OR_RETURN(BigInt p, HexField(fields, "p"));
  SKNN_ASSIGN_OR_RETURN(BigInt q, HexField(fields, "q"));
  return PaillierSecretKey::FromPrimes(p, q, bits);
}

Status WritePublicKeyFile(const std::string& path,
                          const PaillierPublicKey& pk) {
  return WriteFile(path, SerializePublicKey(pk));
}

Result<PaillierPublicKey> ReadPublicKeyFile(const std::string& path) {
  SKNN_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParsePublicKey(text);
}

Status WriteSecretKeyFile(const std::string& path,
                          const PaillierSecretKey& sk) {
  return WriteFile(path, SerializeSecretKey(sk));
}

Result<PaillierSecretKey> ReadSecretKeyFile(const std::string& path) {
  SKNN_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseSecretKey(text);
}

}  // namespace sknn
