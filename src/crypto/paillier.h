// Paillier cryptosystem (Paillier, EUROCRYPT'99) — the additively
// homomorphic, semantically secure scheme the paper assumes (Section 2.3).
//
// Properties used throughout the protocols:
//   Epk(a+b) = Epk(a) * Epk(b)        mod N^2   (homomorphic addition)
//   Epk(a*b) = Epk(a)^b               mod N^2   (homomorphic scalar multiply)
//   Epk(-a)  = Epk(a)^(N-1)           mod N^2   ("N - x is -x under Z_N")
//
// Implementation notes:
//  * g = N + 1, so encryption is c = (1 + mN) * r^N mod N^2 — one modexp.
//  * Decryption uses L(c^lambda mod N^2) * mu mod N, with an optional
//    CRT-accelerated path (two half-size exponentiations, ~3-4x faster);
//    the ablation bench measures exactly this design choice.
//  * Plaintexts live in Z_N; DecodeSigned maps (N/2, N) to negatives.
#ifndef SKNN_CRYPTO_PAILLIER_H_
#define SKNN_CRYPTO_PAILLIER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/modexp.h"
#include "bigint/random.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace sknn {

/// \brief How a RandomizerPool (or a bare RandomizerSource) generates its
/// r^N mod N^2 values.
struct RandomizerPoolOptions {
  /// Background fill threads of the pool.
  std::size_t workers = 1;
  /// Short-exponent refill (docs/CRYPTO.md): precompute h_N = h^N mod N^2
  /// for one random unit h per key, then derive every randomizer as
  /// h_N^s for a short random s through a fixed-base window table —
  /// equivalently r = h^s, so r^N = h_N^s. Each refill costs ~bits(s)/w
  /// modmuls instead of a full |N|-bit modexp. Sound under the standard
  /// short-exponent indistinguishability assumption; set false for the
  /// assumption-free full-width reference path (r drawn uniformly from
  /// Z*_N, one mpz_powm per refill).
  bool short_exponents = true;
  /// Bit length of the short exponent s; 0 = auto
  /// (min(|N|, max(256, |N|/4)) — 256 bits at the paper's key sizes).
  unsigned short_exponent_bits = 0;
  /// Fixed-base window width w; 0 = FixedBaseWindow::RecommendedWindowBits.
  unsigned window_bits = 0;
};

/// \brief Generates Paillier randomizers r^N mod N^2 — the refill primitive
/// under RandomizerPool, exposed so benchmarks and tests can measure the
/// short-exponent fixed-base path against the full-width reference
/// directly. Immutable after construction; Next() is safe to call from many
/// threads concurrently (each with its own Random).
class RandomizerSource {
 public:
  RandomizerSource(const BigInt& n, const RandomizerPoolOptions& options);

  /// \brief One fresh r^N mod N^2.
  BigInt Next(Random& rng) const;

  bool short_exponents() const { return window_ != nullptr; }
  /// \brief Bits of the short exponent (0 on the full-width path).
  unsigned short_exponent_bits() const { return short_exponent_bits_; }

 private:
  BigInt n_;
  BigInt n_squared_;
  /// Short path only: the 2^w-ary table over h_N, and the draw bound 2^s.
  std::unique_ptr<FixedBaseWindow> window_;
  BigInt exponent_bound_;
  unsigned short_exponent_bits_ = 0;
};

/// \brief Precomputed-randomizer pool: a thread-safe stock of r^N mod N^2
/// values backing Encrypt/Rerandomize.
///
/// The r^N modexp is the entire online cost of a Paillier encryption (with
/// g = N+1 the g^m part is a modmul), and the paper attributes essentially
/// all protocol cost to these exponentiations. The randomizer r is
/// independent of the message, so it can be computed *before* the message is
/// known: background workers keep the pool filled, and a pooled Encrypt pays
/// one modmul instead of a full-width modexp. Refills are triggered whenever
/// the stock falls below the low watermark (capacity / 4), so the workers
/// soak up exactly the idle time the protocol spends stalled on C1<->C2
/// round trips.
///
/// Semantics and when to disable:
///  * Pooled randomizers are drawn by the pool's own RNG instead of the
///    Encrypt caller's, so ciphertext *values* differ from the unpooled path
///    (fresh uniform randomness either way — decryptions and protocol
///    results are unaffected).
///  * Operation counters still count a pooled Encrypt as one encryption:
///    the paper's Section 4.4 accounting is semantic, and the modexp was
///    still performed — just off the critical path. Complexity tests
///    therefore keep working with the pool on.
///  * Disable the pool (set_enabled(false), or simply never attach one)
///    when measuring the *unamortized* cost of the paper's protocols — e.g.
///    latency microbenchmarks of Encrypt itself — or when a deployment
///    cannot spare a background thread. Take() then always computes inline.
///
/// Lifetime: PaillierPublicKey holds a non-owning pointer; the pool must
/// outlive every key copy that references it (the engine owns its pools and
/// destroys them last).
class RandomizerPool {
 public:
  /// \brief Starts `workers` background fill threads for a pool of up to
  /// `capacity` randomizers of the modulus `n`, with the default generation
  /// strategy (short-exponent fixed-base refill — see RandomizerPoolOptions).
  RandomizerPool(const BigInt& n, std::size_t capacity,
                 std::size_t workers = 1);
  /// \brief Full-control constructor: worker count AND generation strategy.
  RandomizerPool(const BigInt& n, std::size_t capacity,
                 const RandomizerPoolOptions& options);
  ~RandomizerPool();

  RandomizerPool(const RandomizerPool&) = delete;
  RandomizerPool& operator=(const RandomizerPool&) = delete;

  /// \brief Pops a precomputed r^N mod N^2; computes one inline (a fresh
  /// modexp, counted in misses()) if the pool is empty or disabled.
  BigInt Take();

  /// \brief Blocks until the pool is filled to capacity (benchmark /
  /// test setup; refills happen in the background afterwards).
  void WaitUntilFull();

  /// \brief The disable switch: when false, Take() always computes inline
  /// and the workers idle, so measurements see the unpooled cost.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::size_t capacity() const { return capacity_; }
  std::size_t stock() const;
  /// \brief Takes served from the precomputed stock / computed inline.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// \brief The generation strategy behind this pool (benchmarks measure it
  /// directly; kServiceStats reports whether the short path is active).
  const RandomizerSource& source() const { return source_; }

 private:
  void FillLoop();
  BigInt ComputeOne(Random& rng) const;

  const BigInt n_;
  const BigInt n_squared_;
  const RandomizerSource source_;
  const std::size_t capacity_;
  const std::size_t low_watermark_;

  mutable Mutex mutex_;
  CondVar fill_cv_;  // wakes workers (low stock / stop)
  CondVar full_cv_;  // wakes WaitUntilFull
  std::deque<BigInt> stock_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  /// Atomic, not guarded: Take()'s fast path and enabled() read it without
  /// the lock; set_enabled() still stores it under mutex_ so a fill worker
  /// between predicate check and block cannot miss the wakeup.
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::vector<std::thread> workers_;
};

/// \brief A Paillier ciphertext: an element of Z*_{N^2}.
///
/// Distinct type (not a bare BigInt) so plaintexts and ciphertexts cannot be
/// mixed up in protocol code.
class Ciphertext {
 public:
  Ciphertext() = default;
  explicit Ciphertext(BigInt value) : value_(std::move(value)) {}

  const BigInt& value() const { return value_; }

  bool operator==(const Ciphertext& o) const { return value_ == o.value_; }
  bool operator!=(const Ciphertext& o) const { return value_ != o.value_; }

 private:
  BigInt value_;
};

/// \brief Public key (N, g) with cached N^2. Safe to share across threads.
class PaillierPublicKey {
 public:
  PaillierPublicKey() = default;
  PaillierPublicKey(BigInt n, unsigned key_bits);

  const BigInt& n() const { return n_; }
  const BigInt& n_squared() const { return n_squared_; }
  /// \brief g = N + 1 (fixed by this implementation).
  const BigInt& g() const { return g_; }
  unsigned key_bits() const { return key_bits_; }

  /// \brief Epk(m) with fresh randomness. m is reduced mod N. When a
  /// RandomizerPool is attached, the r^N factor comes from the pool (one
  /// modmul online); otherwise it is computed from `rng` (one modexp).
  Ciphertext Encrypt(const BigInt& m, Random& rng) const;
  /// \brief Epk(m) using the calling thread's RNG.
  Ciphertext Encrypt(const BigInt& m) const {
    return Encrypt(m, Random::ThreadLocal());
  }

  /// \brief Epk(m_i) for every plaintext, fanned across `pool` (serial when
  /// null). Each element draws its randomness from the executing thread's
  /// RNG (and the attached RandomizerPool, when one is set) and counts one
  /// encryption; the caller's per-query op sink is carried into the pool
  /// workers, so attribution matches the scalar loop exactly.
  std::vector<Ciphertext> EncryptMany(const std::vector<BigInt>& ms,
                                      ThreadPool* pool = nullptr) const;

  /// \brief Rerandomize(c_i) for every ciphertext, fanned across `pool`.
  /// Same op accounting and randomness sourcing as EncryptMany.
  std::vector<Ciphertext> RerandomizeMany(const std::vector<Ciphertext>& cs,
                                          ThreadPool* pool = nullptr) const;

  /// \brief Deterministic "encryption" with fixed randomness r=1:
  /// c = 1 + mN. NOT semantically secure; used only where the protocol
  /// explicitly wants an unrandomized encoding (e.g. constant Epk(0) seeds
  /// that are immediately blinded). Exposed for tests.
  Ciphertext EncodeDeterministic(const BigInt& m) const;

  // -- Homomorphic operations (all O(1) modexp/modmul on N^2) --

  /// \brief Epk(a + b) from Epk(a), Epk(b).
  Ciphertext Add(const Ciphertext& a, const Ciphertext& b) const;
  /// \brief Epk(a + m) from Epk(a) and plaintext m (binomial shortcut,
  /// no modexp).
  Ciphertext AddPlain(const Ciphertext& a, const BigInt& m) const;
  /// \brief Epk(a * s) from Epk(a) and plaintext scalar s (reduced mod N).
  Ciphertext MulScalar(const Ciphertext& a, const BigInt& s) const;
  /// \brief Epk(-a) = Epk(a)^(N-1).
  Ciphertext Negate(const Ciphertext& a) const;
  /// \brief Epk(a - b).
  Ciphertext Sub(const Ciphertext& a, const Ciphertext& b) const;
  /// \brief Fresh randomization of the same plaintext: c * r^N.
  Ciphertext Rerandomize(const Ciphertext& a, Random& rng) const;
  Ciphertext Rerandomize(const Ciphertext& a) const {
    return Rerandomize(a, Random::ThreadLocal());
  }

  /// \brief True if c is a structurally valid ciphertext (in [0, N^2),
  /// coprime to N).
  bool IsValidCiphertext(const Ciphertext& c) const;

  /// \brief Attaches (or detaches, with null) a precomputed-randomizer pool
  /// backing Encrypt/Rerandomize. Non-owning: the pool must outlive every
  /// copy of this key that carries the pointer. The pool must have been
  /// built for this key's modulus.
  void set_randomizer_pool(RandomizerPool* pool) { randomizer_pool_ = pool; }
  RandomizerPool* randomizer_pool() const { return randomizer_pool_; }

  bool operator==(const PaillierPublicKey& o) const { return n_ == o.n_; }

 private:
  /// \brief r^N mod N^2 — pooled when a pool is attached, else from rng.
  BigInt Randomizer(Random& rng) const;

  BigInt n_;
  BigInt n_squared_;
  BigInt g_;
  unsigned key_bits_ = 0;
  RandomizerPool* randomizer_pool_ = nullptr;
};

/// \brief Secret key: factorization of N plus precomputed CRT constants.
class PaillierSecretKey {
 public:
  PaillierSecretKey() = default;
  /// \brief Builds a secret key (and all precomputations) from the factors.
  static Result<PaillierSecretKey> FromPrimes(const BigInt& p, const BigInt& q,
                                              unsigned key_bits);

  const PaillierPublicKey& public_key() const { return pk_; }
  /// \brief Mutable access for attaching a RandomizerPool to the embedded
  /// public key (C2 encrypts through its secret key's pk copy).
  PaillierPublicKey& mutable_public_key() { return pk_; }

  /// \brief Dsk(c), in [0, N). Uses the CRT fast path unless disabled.
  BigInt Decrypt(const Ciphertext& c) const;

  /// \brief Dsk(c) decoded to a signed value in (-N/2, N/2].
  BigInt DecryptSigned(const Ciphertext& c) const;

  /// \brief Dsk(c_i) for every ciphertext, fanned across `pool` (serial
  /// when null). Counts one decryption per element and carries the
  /// caller's op sink into the pool workers, like EncryptMany.
  std::vector<BigInt> DecryptMany(const std::vector<Ciphertext>& cs,
                                  ThreadPool* pool = nullptr) const;

  /// \brief Toggles CRT-accelerated decryption (default on). For the
  /// ablation benchmark.
  void set_use_crt(bool use_crt) { use_crt_ = use_crt; }
  bool use_crt() const { return use_crt_; }

  /// \brief The prime factors (serialization only — handle with care).
  const BigInt& p() const { return p_; }
  const BigInt& q() const { return q_; }

 private:
  BigInt DecryptStandard(const Ciphertext& c) const;
  BigInt DecryptCrt(const Ciphertext& c) const;

  PaillierPublicKey pk_;
  BigInt p_, q_;
  BigInt lambda_;  // lcm(p-1, q-1)
  BigInt mu_;      // (L(g^lambda mod N^2))^-1 mod N
  // CRT precomputations.
  BigInt p_squared_, q_squared_;
  BigInt hp_, hq_;     // L_p(g^{p-1} mod p^2)^{-1} mod p, and q analogue
  BigInt p_inv_q_;     // p^{-1} mod q
  bool use_crt_ = true;
};

struct PaillierKeyPair {
  PaillierPublicKey pk;
  PaillierSecretKey sk;
};

/// \brief Generates a fresh key pair with an N of `key_bits` bits.
///
/// key_bits must be >= 16 (tiny keys are allowed for tests; real deployments
/// use >= 1024 — the paper evaluates K in {512, 1024}).
Result<PaillierKeyPair> GeneratePaillierKeyPair(unsigned key_bits,
                                                Random& rng);
Result<PaillierKeyPair> GeneratePaillierKeyPair(unsigned key_bits);

/// \brief Maps a decrypted value in [0, N) to (-N/2, N/2].
BigInt DecodeSigned(const BigInt& value, const BigInt& n);

/// \brief Encrypts a vector attribute-wise, as Alice does with each record.
std::vector<Ciphertext> EncryptVector(const PaillierPublicKey& pk,
                                      const std::vector<BigInt>& values,
                                      Random& rng);

}  // namespace sknn

#endif  // SKNN_CRYPTO_PAILLIER_H_
