// Paillier cryptosystem (Paillier, EUROCRYPT'99) — the additively
// homomorphic, semantically secure scheme the paper assumes (Section 2.3).
//
// Properties used throughout the protocols:
//   Epk(a+b) = Epk(a) * Epk(b)        mod N^2   (homomorphic addition)
//   Epk(a*b) = Epk(a)^b               mod N^2   (homomorphic scalar multiply)
//   Epk(-a)  = Epk(a)^(N-1)           mod N^2   ("N - x is -x under Z_N")
//
// Implementation notes:
//  * g = N + 1, so encryption is c = (1 + mN) * r^N mod N^2 — one modexp.
//  * Decryption uses L(c^lambda mod N^2) * mu mod N, with an optional
//    CRT-accelerated path (two half-size exponentiations, ~3-4x faster);
//    the ablation bench measures exactly this design choice.
//  * Plaintexts live in Z_N; DecodeSigned maps (N/2, N) to negatives.
#ifndef SKNN_CRYPTO_PAILLIER_H_
#define SKNN_CRYPTO_PAILLIER_H_

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/random.h"
#include "common/status.h"

namespace sknn {

/// \brief A Paillier ciphertext: an element of Z*_{N^2}.
///
/// Distinct type (not a bare BigInt) so plaintexts and ciphertexts cannot be
/// mixed up in protocol code.
class Ciphertext {
 public:
  Ciphertext() = default;
  explicit Ciphertext(BigInt value) : value_(std::move(value)) {}

  const BigInt& value() const { return value_; }

  bool operator==(const Ciphertext& o) const { return value_ == o.value_; }
  bool operator!=(const Ciphertext& o) const { return value_ != o.value_; }

 private:
  BigInt value_;
};

/// \brief Public key (N, g) with cached N^2. Safe to share across threads.
class PaillierPublicKey {
 public:
  PaillierPublicKey() = default;
  PaillierPublicKey(BigInt n, unsigned key_bits);

  const BigInt& n() const { return n_; }
  const BigInt& n_squared() const { return n_squared_; }
  /// \brief g = N + 1 (fixed by this implementation).
  const BigInt& g() const { return g_; }
  unsigned key_bits() const { return key_bits_; }

  /// \brief Epk(m) with fresh randomness. m is reduced mod N.
  Ciphertext Encrypt(const BigInt& m, Random& rng) const;
  /// \brief Epk(m) using the calling thread's RNG.
  Ciphertext Encrypt(const BigInt& m) const {
    return Encrypt(m, Random::ThreadLocal());
  }

  /// \brief Deterministic "encryption" with fixed randomness r=1:
  /// c = 1 + mN. NOT semantically secure; used only where the protocol
  /// explicitly wants an unrandomized encoding (e.g. constant Epk(0) seeds
  /// that are immediately blinded). Exposed for tests.
  Ciphertext EncodeDeterministic(const BigInt& m) const;

  // -- Homomorphic operations (all O(1) modexp/modmul on N^2) --

  /// \brief Epk(a + b) from Epk(a), Epk(b).
  Ciphertext Add(const Ciphertext& a, const Ciphertext& b) const;
  /// \brief Epk(a + m) from Epk(a) and plaintext m (binomial shortcut,
  /// no modexp).
  Ciphertext AddPlain(const Ciphertext& a, const BigInt& m) const;
  /// \brief Epk(a * s) from Epk(a) and plaintext scalar s (reduced mod N).
  Ciphertext MulScalar(const Ciphertext& a, const BigInt& s) const;
  /// \brief Epk(-a) = Epk(a)^(N-1).
  Ciphertext Negate(const Ciphertext& a) const;
  /// \brief Epk(a - b).
  Ciphertext Sub(const Ciphertext& a, const Ciphertext& b) const;
  /// \brief Fresh randomization of the same plaintext: c * r^N.
  Ciphertext Rerandomize(const Ciphertext& a, Random& rng) const;
  Ciphertext Rerandomize(const Ciphertext& a) const {
    return Rerandomize(a, Random::ThreadLocal());
  }

  /// \brief True if c is a structurally valid ciphertext (in [0, N^2),
  /// coprime to N).
  bool IsValidCiphertext(const Ciphertext& c) const;

  bool operator==(const PaillierPublicKey& o) const { return n_ == o.n_; }

 private:
  BigInt n_;
  BigInt n_squared_;
  BigInt g_;
  unsigned key_bits_ = 0;
};

/// \brief Secret key: factorization of N plus precomputed CRT constants.
class PaillierSecretKey {
 public:
  PaillierSecretKey() = default;
  /// \brief Builds a secret key (and all precomputations) from the factors.
  static Result<PaillierSecretKey> FromPrimes(const BigInt& p, const BigInt& q,
                                              unsigned key_bits);

  const PaillierPublicKey& public_key() const { return pk_; }

  /// \brief Dsk(c), in [0, N). Uses the CRT fast path unless disabled.
  BigInt Decrypt(const Ciphertext& c) const;

  /// \brief Dsk(c) decoded to a signed value in (-N/2, N/2].
  BigInt DecryptSigned(const Ciphertext& c) const;

  /// \brief Toggles CRT-accelerated decryption (default on). For the
  /// ablation benchmark.
  void set_use_crt(bool use_crt) { use_crt_ = use_crt; }
  bool use_crt() const { return use_crt_; }

  /// \brief The prime factors (serialization only — handle with care).
  const BigInt& p() const { return p_; }
  const BigInt& q() const { return q_; }

 private:
  BigInt DecryptStandard(const Ciphertext& c) const;
  BigInt DecryptCrt(const Ciphertext& c) const;

  PaillierPublicKey pk_;
  BigInt p_, q_;
  BigInt lambda_;  // lcm(p-1, q-1)
  BigInt mu_;      // (L(g^lambda mod N^2))^-1 mod N
  // CRT precomputations.
  BigInt p_squared_, q_squared_;
  BigInt hp_, hq_;     // L_p(g^{p-1} mod p^2)^{-1} mod p, and q analogue
  BigInt p_inv_q_;     // p^{-1} mod q
  bool use_crt_ = true;
};

struct PaillierKeyPair {
  PaillierPublicKey pk;
  PaillierSecretKey sk;
};

/// \brief Generates a fresh key pair with an N of `key_bits` bits.
///
/// key_bits must be >= 16 (tiny keys are allowed for tests; real deployments
/// use >= 1024 — the paper evaluates K in {512, 1024}).
Result<PaillierKeyPair> GeneratePaillierKeyPair(unsigned key_bits,
                                                Random& rng);
Result<PaillierKeyPair> GeneratePaillierKeyPair(unsigned key_bits);

/// \brief Maps a decrypted value in [0, N) to (-N/2, N/2].
BigInt DecodeSigned(const BigInt& value, const BigInt& n);

/// \brief Encrypts a vector attribute-wise, as Alice does with each record.
std::vector<Ciphertext> EncryptVector(const PaillierPublicKey& pk,
                                      const std::vector<BigInt>& values,
                                      Random& rng);

}  // namespace sknn

#endif  // SKNN_CRYPTO_PAILLIER_H_
