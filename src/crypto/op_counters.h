// Global operation counters for the complexity accounting of Section 4.4:
// the paper states costs in numbers of encryptions, decryptions and
// exponentiations. Benchmarks enable these to verify e.g. that SkNN_m is
// bounded by O(n * (l + m + k*l*log2 n)) encryptions/exponentiations.
#ifndef SKNN_CRYPTO_OP_COUNTERS_H_
#define SKNN_CRYPTO_OP_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace sknn {

struct OpSnapshot {
  uint64_t encryptions = 0;
  uint64_t decryptions = 0;
  uint64_t exponentiations = 0;  // ciphertext^scalar (homomorphic scalar mul)
  uint64_t multiplications = 0;  // ciphertext*ciphertext (homomorphic add)

  OpSnapshot operator-(const OpSnapshot& o) const {
    return {encryptions - o.encryptions, decryptions - o.decryptions,
            exponentiations - o.exponentiations,
            multiplications - o.multiplications};
  }
  OpSnapshot operator+(const OpSnapshot& o) const {
    return {encryptions + o.encryptions, decryptions + o.decryptions,
            exponentiations + o.exponentiations,
            multiplications + o.multiplications};
  }
  std::string ToString() const;
};

/// \brief Thread-safe accumulator for attributing operations to one scope
/// (one query, one RPC) while other scopes run concurrently on other
/// threads. Installed per-thread via ScopedOpSink; many threads may share
/// one accumulator (the per-query fan-out workers all sink into the query's
/// meter).
class OpAccumulator {
 public:
  void Add(uint64_t enc, uint64_t dec, uint64_t exp, uint64_t mul) {
    enc_.fetch_add(enc, kOrder);
    dec_.fetch_add(dec, kOrder);
    exp_.fetch_add(exp, kOrder);
    mul_.fetch_add(mul, kOrder);
  }

  OpSnapshot snapshot() const {
    return {enc_.load(kOrder), dec_.load(kOrder), exp_.load(kOrder),
            mul_.load(kOrder)};
  }

 private:
  friend class OpCounters;
  static constexpr std::memory_order kOrder = std::memory_order_relaxed;
  std::atomic<uint64_t> enc_{0};
  std::atomic<uint64_t> dec_{0};
  std::atomic<uint64_t> exp_{0};
  std::atomic<uint64_t> mul_{0};
};

/// \brief Process-wide relaxed-atomic counters; negligible overhead next to
/// the modular exponentiations they count. Each count additionally lands in
/// the calling thread's sink accumulator, if one is installed — this is how
/// concurrent queries get exact per-query operation accounting without
/// engine-level snapshot deltas.
class OpCounters {
 public:
  static void CountEncryption() {
    enc_.fetch_add(1, kOrder);
    if (sink_ != nullptr) sink_->enc_.fetch_add(1, kOrder);
  }
  static void CountDecryption() {
    dec_.fetch_add(1, kOrder);
    if (sink_ != nullptr) sink_->dec_.fetch_add(1, kOrder);
  }
  static void CountExponentiation() {
    exp_.fetch_add(1, kOrder);
    if (sink_ != nullptr) sink_->exp_.fetch_add(1, kOrder);
  }
  static void CountMultiplication() {
    mul_.fetch_add(1, kOrder);
    if (sink_ != nullptr) sink_->mul_.fetch_add(1, kOrder);
  }

  static OpSnapshot Snapshot() {
    return {enc_.load(kOrder), dec_.load(kOrder), exp_.load(kOrder),
            mul_.load(kOrder)};
  }
  static void Reset();

  /// \brief This thread's current sink (null if none) — capture it before
  /// fanning work out to a pool, re-install inside the workers.
  static OpAccumulator* ThreadSink() { return sink_; }
  /// \brief Installs `sink` on this thread, returns the previous one.
  /// Defined out of line: gcc 12's -fsanitize=null misfires on an inlined
  /// store to this thread_local at -O1 and above (the TLS slot is reported
  /// as a null pointer), and the swap is nowhere near a hot path.
  static OpAccumulator* SwapThreadSink(OpAccumulator* sink);

 private:
  static constexpr std::memory_order kOrder = std::memory_order_relaxed;
  static std::atomic<uint64_t> enc_;
  static std::atomic<uint64_t> dec_;
  static std::atomic<uint64_t> exp_;
  static std::atomic<uint64_t> mul_;
  static thread_local OpAccumulator* sink_;
};

/// \brief RAII sink installer: ops counted on this thread while the scope is
/// alive are also attributed to `sink` (pass null to detach the thread).
class ScopedOpSink {
 public:
  explicit ScopedOpSink(OpAccumulator* sink)
      : prev_(OpCounters::SwapThreadSink(sink)) {}
  ~ScopedOpSink() { OpCounters::SwapThreadSink(prev_); }

  ScopedOpSink(const ScopedOpSink&) = delete;
  ScopedOpSink& operator=(const ScopedOpSink&) = delete;

 private:
  OpAccumulator* prev_;
};

}  // namespace sknn

#endif  // SKNN_CRYPTO_OP_COUNTERS_H_
