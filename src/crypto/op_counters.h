// Global operation counters for the complexity accounting of Section 4.4:
// the paper states costs in numbers of encryptions, decryptions and
// exponentiations. Benchmarks enable these to verify e.g. that SkNN_m is
// bounded by O(n * (l + m + k*l*log2 n)) encryptions/exponentiations.
#ifndef SKNN_CRYPTO_OP_COUNTERS_H_
#define SKNN_CRYPTO_OP_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace sknn {

struct OpSnapshot {
  uint64_t encryptions = 0;
  uint64_t decryptions = 0;
  uint64_t exponentiations = 0;  // ciphertext^scalar (homomorphic scalar mul)
  uint64_t multiplications = 0;  // ciphertext*ciphertext (homomorphic add)

  OpSnapshot operator-(const OpSnapshot& o) const {
    return {encryptions - o.encryptions, decryptions - o.decryptions,
            exponentiations - o.exponentiations,
            multiplications - o.multiplications};
  }
  std::string ToString() const;
};

/// \brief Process-wide relaxed-atomic counters; negligible overhead next to
/// the modular exponentiations they count.
class OpCounters {
 public:
  static void CountEncryption() { enc_.fetch_add(1, kOrder); }
  static void CountDecryption() { dec_.fetch_add(1, kOrder); }
  static void CountExponentiation() { exp_.fetch_add(1, kOrder); }
  static void CountMultiplication() { mul_.fetch_add(1, kOrder); }

  static OpSnapshot Snapshot() {
    return {enc_.load(kOrder), dec_.load(kOrder), exp_.load(kOrder),
            mul_.load(kOrder)};
  }
  static void Reset();

 private:
  static constexpr std::memory_order kOrder = std::memory_order_relaxed;
  static std::atomic<uint64_t> enc_;
  static std::atomic<uint64_t> dec_;
  static std::atomic<uint64_t> exp_;
  static std::atomic<uint64_t> mul_;
};

}  // namespace sknn

#endif  // SKNN_CRYPTO_OP_COUNTERS_H_
