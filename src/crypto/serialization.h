// Key serialization — the artifact formats of the outsourcing hand-off:
// Alice ships the public key with the encrypted database to C1, and the
// secret key (over a secure channel) to C2.
//
// Text format, versioned, line-oriented:
//
//   sknn-paillier-public-v1        sknn-paillier-secret-v1
//   key_bits: 512                  key_bits: 512
//   n: <hex>                       p: <hex>
//                                  q: <hex>
//
// The secret key stores only the factorization; every derived constant
// (lambda, mu, CRT tables) is recomputed on load, so a parsed key is
// byte-for-byte equivalent to a freshly generated one.
#ifndef SKNN_CRYPTO_SERIALIZATION_H_
#define SKNN_CRYPTO_SERIALIZATION_H_

#include <string>

#include "crypto/paillier.h"

namespace sknn {

std::string SerializePublicKey(const PaillierPublicKey& pk);
Result<PaillierPublicKey> ParsePublicKey(const std::string& text);

std::string SerializeSecretKey(const PaillierSecretKey& sk);
Result<PaillierSecretKey> ParseSecretKey(const std::string& text);

/// \brief Convenience file wrappers.
Status WritePublicKeyFile(const std::string& path,
                          const PaillierPublicKey& pk);
Result<PaillierPublicKey> ReadPublicKeyFile(const std::string& path);
Status WriteSecretKeyFile(const std::string& path,
                          const PaillierSecretKey& sk);
Result<PaillierSecretKey> ReadSecretKeyFile(const std::string& path);

}  // namespace sknn

#endif  // SKNN_CRYPTO_SERIALIZATION_H_
