#include "crypto/paillier.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "crypto/op_counters.h"

namespace sknn {
namespace {

// L(u) = (u - 1) / d, defined on u = 1 mod d.
BigInt LFunction(const BigInt& u, const BigInt& d) {
  return (u - BigInt(1)) / d;
}

/// Runs fn(i) for i in [0, count) across `pool` (serial when null),
/// carrying the calling thread's op sink into the workers so per-query
/// attribution matches a scalar loop — the same contract C2Service's
/// intra-message fan-out keeps.
void ParallelWithOpSink(ThreadPool* pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  OpAccumulator* sink = OpCounters::ThreadSink();
  if (sink != nullptr) {
    pool->ParallelFor(count, [&fn, sink](std::size_t i) {
      ScopedOpSink scoped(sink);
      fn(i);
    });
  } else {
    pool->ParallelFor(count, fn);
  }
}

}  // namespace

RandomizerSource::RandomizerSource(const BigInt& n,
                                   const RandomizerPoolOptions& options)
    : n_(n), n_squared_(n * n) {
  if (!options.short_exponents) return;
  const unsigned n_bits = static_cast<unsigned>(n.BitLength());
  unsigned s_bits = options.short_exponent_bits;
  if (s_bits == 0) s_bits = std::max(256u, n_bits / 4);
  short_exponent_bits_ = std::min(s_bits, n_bits);
  // h_N = h^N mod N^2 for a random unit h: every h_N^s is an N-th power
  // (r^N with r = h^s), i.e. a valid Paillier randomizer.
  BigInt h_n =
      Random::ThreadLocal().UnitModulo(n_).PowMod(n_, n_squared_);
  window_ = std::make_unique<FixedBaseWindow>(
      h_n, n_squared_, short_exponent_bits_, options.window_bits);
  exponent_bound_ = BigInt::PowerOfTwo(short_exponent_bits_);
}

BigInt RandomizerSource::Next(Random& rng) const {
  if (window_ != nullptr) {
    return window_->PowMod(rng.Below(exponent_bound_));
  }
  return rng.UnitModulo(n_).PowMod(n_, n_squared_);
}

RandomizerPool::RandomizerPool(const BigInt& n, std::size_t capacity,
                               std::size_t workers)
    : RandomizerPool(n, capacity, [workers] {
        RandomizerPoolOptions options;
        options.workers = workers;
        return options;
      }()) {}

RandomizerPool::RandomizerPool(const BigInt& n, std::size_t capacity,
                               const RandomizerPoolOptions& options)
    : n_(n),
      n_squared_(n * n),
      source_(n, options),
      capacity_(std::max<std::size_t>(1, capacity)),
      low_watermark_(std::max<std::size_t>(1, capacity / 4)) {
  const std::size_t workers = std::max<std::size_t>(1, options.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { FillLoop(); });
  }
}

RandomizerPool::~RandomizerPool() {
  {
    MutexLock lock(&mutex_);
    stop_ = true;
  }
  fill_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

BigInt RandomizerPool::ComputeOne(Random& rng) const {
  return source_.Next(rng);
}

void RandomizerPool::FillLoop() {
  Random& rng = Random::ThreadLocal();
  for (;;) {
    {
      MutexLock lock(&mutex_);
      while (!stop_ && !(enabled() && stock_.size() < capacity_)) {
        fill_cv_.Wait(mutex_);
      }
      if (stop_) return;
    }
    // The modexp runs unlocked so consumers never wait on a producer.
    BigInt rn = ComputeOne(rng);
    bool full = false;
    {
      MutexLock lock(&mutex_);
      if (stock_.size() < capacity_) stock_.push_back(std::move(rn));
      full = stock_.size() >= capacity_;
    }
    if (full) full_cv_.NotifyAll();
  }
}

BigInt RandomizerPool::Take() {
  if (enabled()) {
    BigInt rn;
    bool hit = false;
    bool low = false;
    {
      MutexLock lock(&mutex_);
      if (!stock_.empty()) {
        rn = std::move(stock_.front());
        stock_.pop_front();
        low = stock_.size() < low_watermark_;
        hit = true;
      }
    }
    if (hit) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (low) fill_cv_.NotifyAll();
      return rn;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return ComputeOne(Random::ThreadLocal());
}

void RandomizerPool::WaitUntilFull() {
  fill_cv_.NotifyAll();
  MutexLock lock(&mutex_);
  while (!stop_ && enabled() && stock_.size() < capacity_) {
    full_cv_.Wait(mutex_);
  }
}

void RandomizerPool::set_enabled(bool enabled) {
  {
    // The store happens under the mutex so a fill worker between its
    // predicate check and its block cannot miss the wakeup.
    MutexLock lock(&mutex_);
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  if (enabled) {
    fill_cv_.NotifyAll();
  } else {
    full_cv_.NotifyAll();
  }
}

std::size_t RandomizerPool::stock() const {
  MutexLock lock(&mutex_);
  return stock_.size();
}

PaillierPublicKey::PaillierPublicKey(BigInt n, unsigned key_bits)
    : n_(std::move(n)),
      n_squared_(n_ * n_),
      g_(n_ + BigInt(1)),
      key_bits_(key_bits) {}

BigInt PaillierPublicKey::Randomizer(Random& rng) const {
  if (randomizer_pool_ != nullptr) return randomizer_pool_->Take();
  return rng.UnitModulo(n_).PowMod(n_, n_squared_);
}

Ciphertext PaillierPublicKey::Encrypt(const BigInt& m, Random& rng) const {
  OpCounters::CountEncryption();
  BigInt reduced = m.Mod(n_);
  // (1 + mN) mod N^2 — binomial expansion of g^m with g = N+1.
  BigInt gm = (BigInt(1) + reduced * n_).Mod(n_squared_);
  BigInt rn = Randomizer(rng);
  return Ciphertext(gm.MulMod(rn, n_squared_));
}

Ciphertext PaillierPublicKey::EncodeDeterministic(const BigInt& m) const {
  BigInt reduced = m.Mod(n_);
  return Ciphertext((BigInt(1) + reduced * n_).Mod(n_squared_));
}

Ciphertext PaillierPublicKey::Add(const Ciphertext& a,
                                  const Ciphertext& b) const {
  OpCounters::CountMultiplication();
  return Ciphertext(a.value().MulMod(b.value(), n_squared_));
}

Ciphertext PaillierPublicKey::AddPlain(const Ciphertext& a,
                                       const BigInt& m) const {
  OpCounters::CountMultiplication();
  BigInt gm = (BigInt(1) + m.Mod(n_) * n_).Mod(n_squared_);
  return Ciphertext(a.value().MulMod(gm, n_squared_));
}

Ciphertext PaillierPublicKey::MulScalar(const Ciphertext& a,
                                        const BigInt& s) const {
  OpCounters::CountExponentiation();
  return Ciphertext(a.value().PowMod(s.Mod(n_), n_squared_));
}

Ciphertext PaillierPublicKey::Negate(const Ciphertext& a) const {
  return MulScalar(a, n_ - BigInt(1));
}

Ciphertext PaillierPublicKey::Sub(const Ciphertext& a,
                                  const Ciphertext& b) const {
  return Add(a, Negate(b));
}

Ciphertext PaillierPublicKey::Rerandomize(const Ciphertext& a,
                                          Random& rng) const {
  OpCounters::CountEncryption();  // costs one r^N modexp, same as encryption
  BigInt rn = Randomizer(rng);
  return Ciphertext(a.value().MulMod(rn, n_squared_));
}

std::vector<Ciphertext> PaillierPublicKey::EncryptMany(
    const std::vector<BigInt>& ms, ThreadPool* pool) const {
  std::vector<Ciphertext> out(ms.size());
  ParallelWithOpSink(pool, ms.size(), [&](std::size_t i) {
    out[i] = Encrypt(ms[i], Random::ThreadLocal());
  });
  return out;
}

std::vector<Ciphertext> PaillierPublicKey::RerandomizeMany(
    const std::vector<Ciphertext>& cs, ThreadPool* pool) const {
  std::vector<Ciphertext> out(cs.size());
  ParallelWithOpSink(pool, cs.size(), [&](std::size_t i) {
    out[i] = Rerandomize(cs[i], Random::ThreadLocal());
  });
  return out;
}

bool PaillierPublicKey::IsValidCiphertext(const Ciphertext& c) const {
  const BigInt& v = c.value();
  if (v.IsNegative() || v >= n_squared_) return false;
  return v.Gcd(n_) == BigInt(1);
}

Result<PaillierSecretKey> PaillierSecretKey::FromPrimes(const BigInt& p,
                                                        const BigInt& q,
                                                        unsigned key_bits) {
  if (p == q) {
    return Status::CryptoError("Paillier: p and q must be distinct");
  }
  if (!p.IsProbablePrime() || !q.IsProbablePrime()) {
    return Status::CryptoError("Paillier: p and q must be prime");
  }
  PaillierSecretKey sk;
  sk.p_ = p;
  sk.q_ = q;
  BigInt n = p * q;
  // gcd(N, phi(N)) must be 1; holds whenever p, q are distinct primes of the
  // same bit length, but verify to be safe with caller-provided primes.
  BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
  if (n.Gcd(phi) != BigInt(1)) {
    return Status::CryptoError("Paillier: gcd(N, phi(N)) != 1");
  }
  sk.pk_ = PaillierPublicKey(n, key_bits);
  sk.lambda_ = (p - BigInt(1)).Lcm(q - BigInt(1));
  // With g = N+1: g^lambda mod N^2 = 1 + lambda*N, so
  // L(g^lambda mod N^2) = lambda mod N and mu = lambda^{-1} mod N.
  SKNN_ASSIGN_OR_RETURN(sk.mu_, sk.lambda_.Mod(n).InvMod(n));

  // CRT precomputations (Paillier Section 7 / standard optimization).
  sk.p_squared_ = p * p;
  sk.q_squared_ = q * q;
  BigInt gp = sk.pk_.g().Mod(sk.p_squared_);
  BigInt gq = sk.pk_.g().Mod(sk.q_squared_);
  BigInt lp = LFunction(gp.PowMod(p - BigInt(1), sk.p_squared_), p);
  BigInt lq = LFunction(gq.PowMod(q - BigInt(1), sk.q_squared_), q);
  SKNN_ASSIGN_OR_RETURN(sk.hp_, lp.Mod(p).InvMod(p));
  SKNN_ASSIGN_OR_RETURN(sk.hq_, lq.Mod(q).InvMod(q));
  SKNN_ASSIGN_OR_RETURN(sk.p_inv_q_, p.Mod(q).InvMod(q));
  return sk;
}

BigInt PaillierSecretKey::Decrypt(const Ciphertext& c) const {
  OpCounters::CountDecryption();
  return use_crt_ ? DecryptCrt(c) : DecryptStandard(c);
}

BigInt PaillierSecretKey::DecryptSigned(const Ciphertext& c) const {
  return DecodeSigned(Decrypt(c), pk_.n());
}

std::vector<BigInt> PaillierSecretKey::DecryptMany(
    const std::vector<Ciphertext>& cs, ThreadPool* pool) const {
  std::vector<BigInt> out(cs.size());
  ParallelWithOpSink(pool, cs.size(), [&](std::size_t i) {
    out[i] = Decrypt(cs[i]);
  });
  return out;
}

BigInt PaillierSecretKey::DecryptStandard(const Ciphertext& c) const {
  BigInt u = c.value().PowMod(lambda_, pk_.n_squared());
  return LFunction(u, pk_.n()).MulMod(mu_, pk_.n());
}

BigInt PaillierSecretKey::DecryptCrt(const Ciphertext& c) const {
  // m_p = L_p(c^{p-1} mod p^2) * hp mod p, likewise mod q; then CRT.
  BigInt cp = c.value().Mod(p_squared_);
  BigInt cq = c.value().Mod(q_squared_);
  BigInt mp =
      LFunction(cp.PowMod(p_ - BigInt(1), p_squared_), p_).MulMod(hp_, p_);
  BigInt mq =
      LFunction(cq.PowMod(q_ - BigInt(1), q_squared_), q_).MulMod(hq_, q_);
  // Garner: m = mp + p * ((mq - mp) * p^{-1} mod q).
  BigInt diff = mq.SubMod(mp, q_);
  BigInt t = diff.MulMod(p_inv_q_, q_);
  return mp + p_ * t;
}

Result<PaillierKeyPair> GeneratePaillierKeyPair(unsigned key_bits,
                                                Random& rng) {
  if (key_bits < 16) {
    return Status::InvalidArgument(
        "Paillier key size must be >= 16 bits, got " +
        std::to_string(key_bits));
  }
  unsigned half = key_bits / 2;
  for (int attempt = 0; attempt < 64; ++attempt) {
    BigInt p = rng.Prime(half);
    BigInt q = rng.Prime(key_bits - half);
    if (p == q) continue;
    BigInt n = p * q;
    if (n.BitLength() != key_bits) continue;
    auto sk = PaillierSecretKey::FromPrimes(p, q, key_bits);
    if (!sk.ok()) continue;
    return PaillierKeyPair{sk->public_key(), std::move(sk).value()};
  }
  return Status::CryptoError("Paillier key generation failed to converge");
}

Result<PaillierKeyPair> GeneratePaillierKeyPair(unsigned key_bits) {
  return GeneratePaillierKeyPair(key_bits, Random::ThreadLocal());
}

BigInt DecodeSigned(const BigInt& value, const BigInt& n) {
  BigInt half = n.ShiftRight(1);
  if (value > half) return value - n;
  return value;
}

std::vector<Ciphertext> EncryptVector(const PaillierPublicKey& pk,
                                      const std::vector<BigInt>& values,
                                      Random& rng) {
  std::vector<Ciphertext> out;
  out.reserve(values.size());
  for (const auto& v : values) out.push_back(pk.Encrypt(v, rng));
  return out;
}

}  // namespace sknn
