#include "crypto/op_counters.h"

#include <sstream>

namespace sknn {

std::atomic<uint64_t> OpCounters::enc_{0};
std::atomic<uint64_t> OpCounters::dec_{0};
std::atomic<uint64_t> OpCounters::exp_{0};
std::atomic<uint64_t> OpCounters::mul_{0};
thread_local OpAccumulator* OpCounters::sink_ = nullptr;

OpAccumulator* OpCounters::SwapThreadSink(OpAccumulator* sink) {
  OpAccumulator* prev = sink_;
  sink_ = sink;
  return prev;
}

void OpCounters::Reset() {
  enc_.store(0, kOrder);
  dec_.store(0, kOrder);
  exp_.store(0, kOrder);
  mul_.store(0, kOrder);
}

std::string OpSnapshot::ToString() const {
  std::ostringstream os;
  os << "enc=" << encryptions << " dec=" << decryptions
     << " exp=" << exponentiations << " mul=" << multiplications;
  return os.str();
}

}  // namespace sknn
