// SknnEngine — the whole outsourced system in one object, for applications
// and benchmarks: Alice's one-time setup (key generation + database
// encryption + outsourcing), the federated cloud (C1 protocol driver, C2
// key-holder service, the link between them), and Bob's query round trip.
//
// The engine is the in-process simulation of the paper's deployment; every
// inter-party byte still crosses the (accounted) channel, so computation
// and communication measurements match the real topology.
//
// The query surface is request-oriented (core/query_api.h): Query() runs
// one QueryRequest synchronously, Submit() returns a future, and
// QueryBatch() pipelines independent requests — up to c1_threads of them in
// flight — over the shared C1 pool and the correlation-id RPC demux. Each
// in-flight query is isolated end to end by its query id (C2 Bob-outbox
// bucket, traffic meter, op ledger), so concurrent responses are exactly
// what a serial loop would produce.
#ifndef SKNN_CORE_ENGINE_H_
#define SKNN_CORE_ENGINE_H_

#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/clustering.h"
#include "core/query_api.h"
#include "core/query_client.h"
#include "core/shard_coordinator.h"
#include "core/sharding.h"
#include "core/sknn_b.h"
#include "core/sknn_m.h"
#include "core/types.h"
#include "net/rpc.h"
#include "proto/c2_service.h"
#include "proto/context.h"

namespace sknn {

class SknnEngine {
 public:
  struct Options {
    /// Paillier modulus size K; the paper evaluates 512 and 1024.
    unsigned key_bits = 512;
    /// Attribute domain: values in [0, 2^attr_bits). Determines l.
    unsigned attr_bits = 8;
    /// C1-side worker threads (1 = the paper's serial variant). Also bounds
    /// how many submitted queries execute concurrently.
    std::size_t c1_threads = 1;
    /// C2-side worker threads.
    std::size_t c2_threads = 1;
    /// Simulated one-way latency of the C1 <-> C2 link (default zero =
    /// colocated clouds). Models the WAN between the two cloud providers of
    /// the paper's deployment; round-trip-bound protocols stall on it, which
    /// is exactly the idle time QueryBatch's pipelining reclaims
    /// (bench/bench_batch.cc).
    std::chrono::microseconds c1_c2_latency{0};
    /// Capture every plaintext C2 decrypts (security tests only).
    bool record_c2_views = false;
    /// Run SBD's verification round inside SkNN_m.
    bool verify_sbd = true;
    /// Use the vectorized wire opcodes: each batched protocol stage ships
    /// ONE message carrying the whole vector (C2 fans the instances out
    /// across c2_threads), and SkNN_m fuses the record-extraction and
    /// distance-clamp SM stages into one round. Results are identical to
    /// the scalar (paper-literal) protocol; only message count and wall
    /// time change. Off = the reference scalar transcript.
    bool vectorized_rounds = true;
    /// Back both clouds' encryptions with precomputed-randomizer pools
    /// (crypto/paillier.h): the r^N modexp moves off the critical path into
    /// background workers that soak up C1<->C2 round-trip stalls. Disable
    /// to measure the paper's unamortized online cost.
    bool randomizer_pool = true;
    /// Per-cloud randomizer pool capacity (r^N values held ready).
    std::size_t randomizer_pool_capacity = 4096;
    /// Refill the randomizer pools via the short-exponent fixed-base path
    /// (r^N = h_N^s for a short random s — docs/CRYPTO.md): refills are an
    /// order of magnitude cheaper than full-width r^N modexps, under the
    /// standard short-exponent indistinguishability assumption. Disable for
    /// the assumption-free full-width reference path; decrypted results are
    /// identical either way, only randomizer distribution economics change.
    bool short_randomizers = true;
    /// Shard the record fan-out: partition Epk(T) into this many in-process
    /// shards, run each query's distance + local-top-k stages per shard
    /// concurrently, and merge the s*k candidates through the coordinator
    /// (core/shard_coordinator.h). Results are bitwise-identical to the
    /// unsharded execution for every protocol. 1 = unsharded. For shards in
    /// separate worker PROCESSES use CreateWithShardWorkers instead, which
    /// ignores this option.
    std::size_t shards = 1;
    /// How the records are partitioned across shards.
    ShardScheme shard_scheme = ShardScheme::kContiguous;
    /// CreateWithShardWorkers only: "host:port" redial addresses, parallel
    /// to `shard_links`. A replica whose link dies is re-connected by the
    /// coordinator's probe thread at this address (a restarted worker on
    /// the same port is reinstated automatically). Empty = no redial.
    std::vector<std::string> shard_worker_redial_addrs;
    /// CreateWithShardWorkers only: cadence of the coordinator's replica
    /// health probes; zero disables probing (and redial).
    std::chrono::milliseconds shard_probe_interval{500};
    /// Clustered index mode: the k-means manifest built by `sknn_encrypt
    /// --clusters` (core/clustering.h, loaded via db_io). Non-null enables
    /// IndexMode::kClustered requests against this engine; exact requests
    /// are unaffected. With `shards > 1` the in-process partitioning
    /// becomes BY CLUSTER — one shard per cluster, the `shards` count and
    /// `shard_scheme` are ignored — so a pruned cluster's shard never runs
    /// its stage. A CreateWithShardWorkers engine requires the workers to
    /// have been partitioned by this same manifest (sknn_c1_shard
    /// --clusters); construction fails otherwise.
    std::shared_ptr<const ClusterManifest> clusters;
  };

  /// \brief One-time setup: Alice keygens, encrypts `table` and outsources.
  static Result<std::unique_ptr<SknnEngine>> Create(const PlainTable& table,
                                                    const Options& options);

  /// \brief Assembles the system from pre-existing artifacts — a key pair
  /// (e.g. loaded via crypto/serialization) and an already-encrypted
  /// database (e.g. loaded via core/db_io) — skipping Alice's encryption
  /// pass. Options::key_bits/attr_bits are ignored (implied by the parts).
  static Result<std::unique_ptr<SknnEngine>> CreateFromParts(
      const PaillierPublicKey& pk, PaillierSecretKey sk, EncryptedDatabase db,
      const Options& options);

  /// \brief Assembles a C1-only engine: the key holder C2 lives behind
  /// `c2_link` (typically a TCP connection to a standalone sknn_c2_server;
  /// any Endpoint works) instead of in-process. This is the construction
  /// path of the serving deployment (tools/sknn_c1_server): one standing
  /// engine instance holds pk + Epk(T) and drives the protocols over the
  /// link, while thin clients talk to it through serve/QueryService.
  ///
  /// Identical query semantics to the in-process engine — the Bob outbox and
  /// the C2 op ledger are fetched over the wire (kFetchBobOutbox /
  /// kFetchQueryOps) instead of by direct call, and both fetches are tagged
  /// with the query id, so many front ends may share one C2. The query-id
  /// space is seeded randomly per engine to keep concurrent front ends
  /// disjoint. Options that configure the in-process C2 (c2_threads,
  /// record_c2_views, c1_c2_latency) are ignored: the remote server owns its
  /// own parallelism and the WAN is real. Fails fast (ping) if the link is
  /// dead.
  static Result<std::unique_ptr<SknnEngine>> CreateWithRemoteC2(
      const PaillierPublicKey& pk, EncryptedDatabase db,
      std::unique_ptr<Endpoint> c2_link, const Options& options);

  /// \brief Assembles the sharded front end of the scaled-out deployment:
  /// every shard of Epk(T) is hosted by a sknn_c1_shard worker process
  /// behind one of `shard_links`, and C2 is behind `c2_link` (the workers
  /// hold their own C2 connections). The coordinator learns the database
  /// geometry from the workers at connect time, so this engine never loads
  /// Epk(T) itself; `database()` is empty. Queries behave exactly like any
  /// other engine's — bitwise-identical records, per-shard stats in
  /// QueryResponse::shards — and a worker dying mid-query surfaces as
  /// StatusCode::kUnavailable. Options::shards/shard_scheme are ignored
  /// (the workers' manifest wins).
  static Result<std::unique_ptr<SknnEngine>> CreateWithShardWorkers(
      const PaillierPublicKey& pk,
      std::vector<std::unique_ptr<Endpoint>> shard_links,
      std::unique_ptr<Endpoint> c2_link, const Options& options);

  ~SknnEngine();

  /// \brief Runs one request synchronously on the calling thread — the one
  /// blocking entry point everything else is built on.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// \brief Enqueues a request on the engine's scheduler; the future
  /// resolves when the query completes. Up to Options::c1_threads submitted
  /// queries run concurrently, pipelined over the shared C1 pool and the
  /// correlation-id RPC demux.
  std::future<Result<QueryResponse>> Submit(QueryRequest request);

  /// \brief Submits every request and waits for all of them; results are in
  /// request order. Independent queries overlap, so with c1_threads > 1 a
  /// batch finishes well ahead of the equivalent serial loop
  /// (bench/bench_batch.cc measures the gap).
  std::vector<Result<QueryResponse>> QueryBatch(
      std::vector<QueryRequest> requests);

  /// \brief The up-front request validation Query/Submit/QueryBatch apply
  /// — and the serving front end applies at ADMISSION, before any crypto
  /// work: k in [1, k_max] (k_max = n; oversized k is kInvalidArgument),
  /// matching dimension, attributes in [0, 2^attr_bits), and clustered
  /// requests only against a table that has a cluster manifest.
  Status ValidateRequest(const QueryRequest& request) const;

  /// \brief Everything a serving control plane reports about this engine in
  /// one copyable value: the database geometry, the attribute domain, the
  /// admissible-k bound, and the shard topology. This is what a front end's
  /// kTableInfo frame (net/query_wire.h) carries per table.
  struct Info {
    std::size_t num_records = 0;
    std::size_t num_attributes = 0;
    unsigned attr_bits = 0;
    unsigned distance_bits = 0;
    /// Largest k ValidateRequest admits (= num_records).
    unsigned k_max = 0;
    /// 1 = unsharded execution.
    std::size_t num_shards = 1;
    /// Meaningful when num_shards > 1.
    ShardScheme shard_scheme = ShardScheme::kContiguous;
    /// True when the shards are sknn_c1_shard worker processes
    /// (CreateWithShardWorkers) rather than in-process slices.
    bool remote_shard_workers = false;
    /// Clusters of the table's k-means index; 0 = no cluster index (the
    /// table only serves IndexMode::kExact).
    uint32_t num_clusters = 0;
  };
  Info info() const;

  const PaillierPublicKey& public_key() const { return pk_; }
  /// \brief Epk(T) as hosted by this process — EMPTY for sharded engines:
  /// a CreateWithShardWorkers engine's records live in the workers, and an
  /// in-process shard set (Options::shards > 1) holds them in the
  /// coordinator's slices instead.
  const EncryptedDatabase& database() const { return db_; }
  std::size_t num_records() const { return num_records_; }
  std::size_t num_attributes() const { return num_attributes_; }
  unsigned distance_bits() const { return distance_bits_; }
  /// \brief Attribute domain bound: valid values are [0, 2^attr_bits()).
  unsigned attr_bits() const { return attr_bits_; }
  /// \brief Non-null when queries execute sharded (Options::shards > 1 or
  /// CreateWithShardWorkers).
  const ShardCoordinator* shard_coordinator() const {
    return coordinator_.get();
  }

  /// \brief True when C2 runs in-process (Create / CreateFromParts); false
  /// for a CreateWithRemoteC2 engine, whose C2 is on the far side of a link.
  bool has_local_c2() const { return c2_ != nullptr; }

  /// \brief C2 instrumentation hooks (security tests). Only valid when
  /// has_local_c2().
  C2Service& c2_service() { return *c2_; }

  /// \brief Both clouds' randomizer-pool effectiveness counters, merged for
  /// the serving control plane (kServiceStats) and sknn_admin --stats.
  /// capacity = 0 means that cloud runs without a pool. C1's numbers come
  /// from the local pool; C2's are fetched over the link (kFetchPoolStats)
  /// for a remote C2 and read directly otherwise. Best-effort: a failed
  /// remote fetch reports zeros, never an error.
  struct RandomizerPoolStats {
    uint64_t c1_hits = 0;
    uint64_t c1_misses = 0;
    uint64_t c1_stock = 0;
    uint64_t c1_capacity = 0;
    uint64_t c2_hits = 0;
    uint64_t c2_misses = 0;
    uint64_t c2_stock = 0;
    uint64_t c2_capacity = 0;
  };
  RandomizerPoolStats randomizer_pool_stats();

 private:
  SknnEngine() = default;

  struct QueryJob {
    QueryRequest request;
    std::promise<Result<QueryResponse>> promise;
  };

  /// \brief The request-driven execution path shared by Query and the
  /// scheduler: validate, assign a query id, run the protocol with
  /// per-query instrumentation, and recover Bob's records.
  Result<QueryResponse> ExecuteQuery(const QueryRequest& request);
  Result<CloudQueryOutput> Dispatch(ProtoContext& ctx,
                                    const QueryRequest& request,
                                    const std::vector<Ciphertext>& enc_query,
                                    QueryResponse* response);
  /// \brief The clustered index path: one secure centroid-scoring round
  /// prunes to the top-probe_clusters clusters, then the exact machinery
  /// runs over the surviving candidates only (via the by-cluster
  /// coordinator when sharded, over a gathered candidate slice otherwise).
  Result<CloudQueryOutput> DispatchClustered(
      ProtoContext& ctx, const QueryRequest& request,
      const std::vector<Ciphertext>& enc_query, QueryResponse* response,
      SkNNmBreakdown* breakdown);
  void SchedulerLoop();

  /// \brief The construction tail shared by every factory: geometry and
  /// attribute domain, C1 pool, Bob's client, the C1-side randomizer pool
  /// (plus the in-process C2's pools when one exists), and the local shard
  /// coordinator when Options::shards > 1.
  Status InitCommon();
  /// \brief One query's Bob-bound records — direct call for the in-process
  /// C2, a tagged kFetchBobOutbox exchange (metered through `ctx`) for a
  /// remote one.
  Result<std::vector<BigInt>> TakeC2Outbox(ProtoContext& ctx,
                                           uint64_t query_id);
  /// \brief One query's C2-side Paillier ledger entry; zeros if the remote
  /// fetch fails (instrumentation is best-effort, results are not).
  OpSnapshot TakeC2QueryOps(ProtoContext& ctx, uint64_t query_id);

  Options options_;
  unsigned attr_bits_ = 0;
  PaillierPublicKey pk_;
  EncryptedDatabase db_;
  /// Database geometry — mirrors db_ normally; reported by the shard
  /// workers for a CreateWithShardWorkers engine (whose db_ is empty).
  std::size_t num_records_ = 0;
  std::size_t num_attributes_ = 0;
  unsigned distance_bits_ = 0;
  std::unique_ptr<ShardCoordinator> coordinator_;
  /// Clustered index state (null/empty without Options::clusters).
  std::shared_ptr<const ClusterManifest> clusters_;
  std::vector<uint32_t> cluster_sizes_;
  std::unique_ptr<C2Service> c2_;
  Channel* channel_ = nullptr;  // owned by the endpoints inside client/server
  std::unique_ptr<RpcServer> server_;
  std::unique_ptr<RpcClient> client_;
  std::unique_ptr<ThreadPool> c1_pool_;
  /// C1's precomputed-randomizer stock, referenced by pk_ (C2's equivalent
  /// lives inside C2Service). Declared after everything that encrypts
  /// through pk_ so it is destroyed first only once queries have drained.
  std::unique_ptr<RandomizerPool> c1_rand_pool_;
  std::unique_ptr<QueryClient> bob_;

  std::atomic<uint64_t> next_query_id_{1};

  // Request scheduler: dedicated dispatcher threads (one per allowed
  // in-flight query, spawned lazily on the first Submit) drive the
  // protocol; all heavy homomorphic work inside a query still fans out
  // over the shared c1_pool_.
  Mutex sched_mutex_;
  CondVar sched_cv_;
  std::deque<QueryJob> sched_queue_ GUARDED_BY(sched_mutex_);
  std::vector<std::thread> sched_threads_ GUARDED_BY(sched_mutex_);
  bool sched_stop_ GUARDED_BY(sched_mutex_) = false;
};

}  // namespace sknn

#endif  // SKNN_CORE_ENGINE_H_
