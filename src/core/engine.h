// SknnEngine — the whole outsourced system in one object, for applications
// and benchmarks: Alice's one-time setup (key generation + database
// encryption + outsourcing), the federated cloud (C1 protocol driver, C2
// key-holder service, the link between them), and Bob's query round trip.
//
// The engine is the in-process simulation of the paper's deployment; every
// inter-party byte still crosses the (accounted) channel, so computation
// and communication measurements match the real topology.
#ifndef SKNN_CORE_ENGINE_H_
#define SKNN_CORE_ENGINE_H_

#include <memory>

#include "common/thread_pool.h"
#include "core/query_client.h"
#include "core/sknn_b.h"
#include "core/sknn_m.h"
#include "core/types.h"
#include "net/rpc.h"
#include "proto/c2_service.h"
#include "proto/context.h"

namespace sknn {

class SknnEngine {
 public:
  struct Options {
    /// Paillier modulus size K; the paper evaluates 512 and 1024.
    unsigned key_bits = 512;
    /// Attribute domain: values in [0, 2^attr_bits). Determines l.
    unsigned attr_bits = 8;
    /// C1-side worker threads (1 = the paper's serial variant).
    std::size_t c1_threads = 1;
    /// C2-side worker threads.
    std::size_t c2_threads = 1;
    /// Capture every plaintext C2 decrypts (security tests only).
    bool record_c2_views = false;
    /// Run SBD's verification round inside SkNN_m.
    bool verify_sbd = true;
  };

  /// \brief One-time setup: Alice keygens, encrypts `table` and outsources.
  static Result<std::unique_ptr<SknnEngine>> Create(const PlainTable& table,
                                                    const Options& options);

  /// \brief Assembles the system from pre-existing artifacts — a key pair
  /// (e.g. loaded via crypto/serialization) and an already-encrypted
  /// database (e.g. loaded via core/db_io) — skipping Alice's encryption
  /// pass. Options::key_bits/attr_bits are ignored (implied by the parts).
  static Result<std::unique_ptr<SknnEngine>> CreateFromParts(
      const PaillierPublicKey& pk, PaillierSecretKey sk, EncryptedDatabase db,
      const Options& options);

  /// \brief Full SkNN_b round trip for Bob's query (k neighbors).
  Result<QueryResult> QueryBasic(const PlainRecord& query, unsigned k);

  /// \brief Full SkNN_m round trip for Bob's query (k neighbors).
  Result<QueryResult> QueryMaxSecure(const PlainRecord& query, unsigned k);

  /// \brief Secure k-FARTHEST neighbors (fully secure, SkNN_m machinery on
  /// complemented distances): the k records most dissimilar to the query,
  /// farthest first. See SkNNmOptions::farthest for semantics and caveats.
  Result<QueryResult> QueryFarthest(const PlainRecord& query, unsigned k);

  const PaillierPublicKey& public_key() const { return pk_; }
  const EncryptedDatabase& database() const { return db_; }
  unsigned distance_bits() const { return db_.distance_bits; }

  /// \brief C2 instrumentation hooks (security tests).
  C2Service& c2_service() { return *c2_; }
  /// \brief Primitive-level access for examples/tests built on the engine.
  ProtoContext& c1_context() { return *ctx_; }

 private:
  SknnEngine() = default;

  enum class Protocol { kBasic, kMaxSecure, kFarthest };

  Result<QueryResult> RunQuery(const PlainRecord& query, unsigned k,
                               Protocol protocol);
  Result<CloudQueryOutput> Dispatch(Protocol protocol,
                                    const std::vector<Ciphertext>& q,
                                    unsigned k, SkNNmBreakdown* bd);

  Options options_;
  PaillierPublicKey pk_;
  EncryptedDatabase db_;
  std::unique_ptr<C2Service> c2_;
  Channel* channel_ = nullptr;  // owned by the endpoints inside client/server
  std::unique_ptr<RpcServer> server_;
  std::unique_ptr<RpcClient> client_;
  std::unique_ptr<ThreadPool> c1_pool_;
  std::unique_ptr<ProtoContext> ctx_;
  std::unique_ptr<QueryClient> bob_;
};

}  // namespace sknn

#endif  // SKNN_CORE_ENGINE_H_
