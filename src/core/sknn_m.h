// SkNN_m — the fully secure protocol (Algorithm 6).
//
// After SSED + SBD give C1 the encrypted bit vectors [d_i] of all squared
// distances, the k winners are extracted one per iteration:
//
//   (a) SMIN_n yields [d_min] (known only to C1, value known to nobody);
//   (b) C1 recomposes Epk(d_min - d_i), blinds each difference with a fresh
//       non-zero factor and permutes the vector (pi) before sending it;
//   (c) C2 sees a zero only at the minimum position (random residues
//       elsewhere) and returns the encrypted one-hot vector U;
//   (d) C1 un-permutes U into V and extracts the winning record
//       obliviously: Epk(t'_s,j) = prod_i SM(V_i, Epk(t_{i,j}));
//   (e) the winner's bits are clamped to all-ones via SBOR with V_i so it
//       can never win again — without C1 learning which record it was.
//
// Deterministic tie-break (the departure from the paper's literal Section
// 4.2, which lets C2 pick among tied minima at random): every comparison
// runs on an AUGMENTED bit vector
//
//     [extracted-flag | d_i (l bits) | global record index]
//
// so the compared values are pairwise distinct — ties in d are broken by
// the lower global index, and already-extracted records (flag forced to 1
// by the clamp) sort above everything still alive. The protocol's answer
// becomes a pure function of (table, query, k), which is what lets a
// sharded execution (core/shard_coordinator.h) merge per-shard candidates
// into bitwise-identical results, and C2 now sees EXACTLY one zero in every
// min-pointer round instead of leaking the multiplicity of the tie. The
// index bits are data-independent public values; everything C2 decrypts is
// blinded exactly as before, so the Section 4.3 security argument is
// unchanged.
//
// Neither cloud learns distances, the query, the records, or which records
// form the answer: access patterns are hidden (Section 4.3).
#ifndef SKNN_CORE_SKNN_M_H_
#define SKNN_CORE_SKNN_M_H_

#include <vector>

#include "core/sknn_b.h"
#include "core/types.h"
#include "proto/context.h"
#include "proto/sbd.h"
#include "proto/smin.h"

namespace sknn {

struct SkNNmOptions {
  /// Run SBD's verification round (recommended; see SbdOptions::verify).
  bool verify_sbd = true;
  /// Secure k-FARTHEST neighbors instead of nearest: the distance bits are
  /// complemented after SBD (max(d) = NOT min(NOT d)), and the rest of
  /// Algorithm 6 runs unchanged — extraction clamps a winner's complemented
  /// distance to all-ones, i.e. its true distance to 0. This is the
  /// building block for distance-based outlier detection (Section 2.1.1).
  /// Ties (equal true distance) are broken by the lower global index, same
  /// as the nearest-neighbor direction.
  bool farthest = false;
};

/// \brief Width of the global-index field of the augmented bit vectors for
/// a database of `total_records` records (0 when a single record needs no
/// tie-break).
unsigned TieBreakIndexBits(std::size_t total_records);

/// \brief Total augmented vector width: flag + l distance bits + index.
inline unsigned AugmentedBitWidth(unsigned l, std::size_t total_records) {
  return 1 + l + TieBreakIndexBits(total_records);
}

/// \brief Steps 2-3(b-prep) of Algorithm 6 for `records` (all of Epk(T), or
/// one shard of it): SSED distances, SBD bit decomposition (complemented
/// for `farthest`), then the tie-break augmentation described above.
/// `global_indices` names each record's index in the FULL database (null =
/// identity, the unsharded case); `total_records` sizes the index field so
/// every shard of one database augments identically. `breakdown`, if
/// non-null, accumulates the ssed/sbd phase timings.
Result<std::vector<EncryptedBits>> PrepareDistanceBits(
    ProtoContext& ctx, const std::vector<std::vector<Ciphertext>>& records,
    const std::vector<Ciphertext>& enc_query, unsigned l,
    const std::vector<std::size_t>* global_indices, std::size_t total_records,
    bool farthest, bool verify_sbd, SkNNmBreakdown* breakdown = nullptr);

/// \brief What k rounds of step 3 produce: per iteration the winner's
/// (still encrypted) record, and optionally its augmented bit vector — the
/// handle a shard hands the coordinator so the merge can re-compare
/// candidates without re-deriving distances.
struct TopKExtraction {
  /// winner s's record, attribute-wise encrypted (m ciphertexts each).
  std::vector<std::vector<Ciphertext>> records;
  /// winner s's augmented bits (only when keep_winner_bits).
  std::vector<EncryptedBits> winner_bits;
};

/// \brief Runs k iterations of Algorithm 6 step 3 — SMIN_n, min pointer,
/// oblivious record extraction, SBOR clamp — over any (records, bits) pool:
/// the full database, one shard, or a set of merge candidates. `bits` are
/// augmented vectors (PrepareDistanceBits or a shard's winner_bits) and are
/// mutated in place: each winner is clamped to all-ones (the clamp after
/// the final iteration is skipped — it only matters for a further SMIN_n).
/// `breakdown`, if non-null, accumulates the sminn/extract/update timings.
Result<TopKExtraction> ExtractTopK(
    ProtoContext& ctx, const std::vector<std::vector<Ciphertext>>& records,
    std::vector<EncryptedBits>& bits, unsigned k, bool keep_winner_bits,
    SkNNmBreakdown* breakdown = nullptr);

/// \brief Runs Algorithm 6 on C1's side; the masked result lands in C2's
/// Bob outbox and the returned masks complete Bob's view. `breakdown`, if
/// non-null, receives the per-phase timing split of Section 5.2.
Result<CloudQueryOutput> RunSkNNm(ProtoContext& ctx,
                                  const EncryptedDatabase& db,
                                  const std::vector<Ciphertext>& enc_query,
                                  unsigned k,
                                  SkNNmBreakdown* breakdown = nullptr,
                                  const SkNNmOptions& options = {});

}  // namespace sknn

#endif  // SKNN_CORE_SKNN_M_H_
