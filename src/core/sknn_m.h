// SkNN_m — the fully secure protocol (Algorithm 6).
//
// After SSED + SBD give C1 the encrypted bit vectors [d_i] of all squared
// distances, the k winners are extracted one per iteration:
//
//   (a) SMIN_n yields [d_min] (known only to C1, value known to nobody);
//   (b) C1 recomposes Epk(d_min - d_i), blinds each difference with a fresh
//       non-zero factor and permutes the vector (pi) before sending it;
//   (c) C2 sees zeros only at minimum positions (random residues elsewhere),
//       picks one and returns the encrypted one-hot vector U;
//   (d) C1 un-permutes U into V and extracts the winning record
//       obliviously: Epk(t'_s,j) = prod_i SM(V_i, Epk(t_{i,j}));
//   (e) the winner's distance bits are clamped to all-ones via SBOR with V_i
//       so it can never win again — without C1 learning which record it was.
//
// Neither cloud learns distances, the query, the records, or which records
// form the answer: access patterns are hidden (Section 4.3).
#ifndef SKNN_CORE_SKNN_M_H_
#define SKNN_CORE_SKNN_M_H_

#include <vector>

#include "core/sknn_b.h"
#include "core/types.h"
#include "proto/context.h"
#include "proto/sbd.h"

namespace sknn {

struct SkNNmOptions {
  /// Run SBD's verification round (recommended; see SbdOptions::verify).
  bool verify_sbd = true;
  /// Secure k-FARTHEST neighbors instead of nearest: the distance bits are
  /// complemented after SBD (max(d) = NOT min(NOT d)), and the rest of
  /// Algorithm 6 runs unchanged — extraction clamps a winner's complemented
  /// distance to all-ones, i.e. its true distance to 0. This is the
  /// building block for distance-based outlier detection (Section 2.1.1).
  /// Caveat (mirrors the nearest-neighbor clamp): records at true distance
  /// 0 from Q tie with already-extracted winners once k exceeds the number
  /// of records at non-zero distance.
  bool farthest = false;
};

/// \brief Runs Algorithm 6 on C1's side; the masked result lands in C2's
/// Bob outbox and the returned masks complete Bob's view. `breakdown`, if
/// non-null, receives the per-phase timing split of Section 5.2.
Result<CloudQueryOutput> RunSkNNm(ProtoContext& ctx,
                                  const EncryptedDatabase& db,
                                  const std::vector<Ciphertext>& enc_query,
                                  unsigned k,
                                  SkNNmBreakdown* breakdown = nullptr,
                                  const SkNNmOptions& options = {});

}  // namespace sknn

#endif  // SKNN_CORE_SKNN_M_H_
