#include "core/engine.h"

#include "common/stopwatch.h"
#include "core/data_owner.h"
#include "crypto/op_counters.h"

namespace sknn {

Result<std::unique_ptr<SknnEngine>> SknnEngine::Create(
    const PlainTable& table, const Options& options) {
  // Alice: keygen + attribute-wise encryption (her one-time cost).
  SKNN_ASSIGN_OR_RETURN(DataOwner alice, DataOwner::Create(options.key_bits));
  std::unique_ptr<ThreadPool> setup_pool;
  ThreadPool* pool_ptr = nullptr;
  if (options.c1_threads > 1) {
    setup_pool = std::make_unique<ThreadPool>(options.c1_threads);
    pool_ptr = setup_pool.get();
  }
  SKNN_ASSIGN_OR_RETURN(
      EncryptedDatabase db,
      alice.EncryptDatabase(table, options.attr_bits, pool_ptr));
  return CreateFromParts(alice.public_key(), alice.secret_key_for_c2(),
                         std::move(db), options);
}

Result<std::unique_ptr<SknnEngine>> SknnEngine::CreateFromParts(
    const PaillierPublicKey& pk, PaillierSecretKey sk, EncryptedDatabase db,
    const Options& options) {
  if (db.records.empty() || db.distance_bits == 0) {
    return Status::InvalidArgument("CreateFromParts: empty database");
  }
  if (sk.public_key().n() != pk.n()) {
    return Status::InvalidArgument(
        "CreateFromParts: public and secret key do not match");
  }
  auto engine = std::unique_ptr<SknnEngine>(new SknnEngine());
  engine->options_ = options;
  engine->pk_ = pk;
  engine->db_ = std::move(db);

  // Outsourcing split: Epk(T) is C1's copy; sk goes to C2.
  engine->c2_ = std::make_unique<C2Service>(std::move(sk));
  engine->c2_->set_record_views(options.record_c2_views);

  // The C1 <-> C2 link.
  Channel::EndpointPair link = Channel::CreatePair();
  engine->channel_ = &link.a->channel();
  C2Service* c2_raw = engine->c2_.get();
  engine->server_ = std::make_unique<RpcServer>(
      std::move(link.b),
      [c2_raw](const Message& req) { return c2_raw->Handle(req); },
      options.c2_threads);
  engine->client_ = std::make_unique<RpcClient>(std::move(link.a));

  if (options.c1_threads > 1) {
    engine->c1_pool_ = std::make_unique<ThreadPool>(options.c1_threads);
  }
  engine->ctx_ = std::make_unique<ProtoContext>(
      &engine->pk_, engine->client_.get(), engine->c1_pool_.get());
  engine->bob_ = std::make_unique<QueryClient>(engine->pk_);
  return engine;
}

Result<CloudQueryOutput> SknnEngine::Dispatch(Protocol protocol,
                                              const std::vector<Ciphertext>& q,
                                              unsigned k, SkNNmBreakdown* bd) {
  if (protocol == Protocol::kBasic) {
    return RunSkNNb(*ctx_, db_, q, k);
  }
  SkNNmOptions opts;
  opts.verify_sbd = options_.verify_sbd;
  opts.farthest = protocol == Protocol::kFarthest;
  return RunSkNNm(*ctx_, db_, q, k, bd, opts);
}

Result<QueryResult> SknnEngine::RunQuery(const PlainRecord& query, unsigned k,
                                         Protocol protocol) {
  if (query.size() != db_.num_attributes()) {
    return Status::InvalidArgument("Query dimension mismatch");
  }
  QueryResult result;

  // Bob: encrypt Q (his main cost — the paper's 4 ms / 17 ms numbers).
  Stopwatch bob_watch;
  std::vector<Ciphertext> enc_query = bob_->EncryptQuery(query);
  result.bob_seconds = bob_watch.ElapsedSeconds();

  // The clouds: run the chosen protocol with fresh meters.
  channel_->ResetStats();
  OpSnapshot ops_before = OpCounters::Snapshot();
  Stopwatch cloud_watch;
  Result<CloudQueryOutput> cloud =
      Dispatch(protocol, enc_query, k, &result.breakdown);
  if (!cloud.ok()) return cloud.status();
  result.cloud_seconds = cloud_watch.ElapsedSeconds();
  result.traffic = channel_->stats();
  result.ops = OpCounters::Snapshot() - ops_before;

  // Bob: combine C2's decrypted masked records with C1's masks.
  std::vector<BigInt> from_c2 = c2_->TakeBobOutbox();
  bob_watch.Reset();
  SKNN_ASSIGN_OR_RETURN(
      result.neighbors,
      bob_->RecoverRecords(from_c2, cloud->masks_for_bob, k,
                           db_.num_attributes()));
  result.bob_seconds += bob_watch.ElapsedSeconds();
  return result;
}

Result<QueryResult> SknnEngine::QueryBasic(const PlainRecord& query,
                                           unsigned k) {
  return RunQuery(query, k, Protocol::kBasic);
}

Result<QueryResult> SknnEngine::QueryMaxSecure(const PlainRecord& query,
                                               unsigned k) {
  return RunQuery(query, k, Protocol::kMaxSecure);
}

Result<QueryResult> SknnEngine::QueryFarthest(const PlainRecord& query,
                                              unsigned k) {
  return RunQuery(query, k, Protocol::kFarthest);
}

}  // namespace sknn
