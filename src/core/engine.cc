#include "core/engine.h"

#include <algorithm>
#include <string>

#include "bigint/random.h"
#include "common/stopwatch.h"
#include "core/data_owner.h"
#include "proto/query_meter.h"
#include "proto/ssed.h"

namespace sknn {

const char* QueryProtocolName(QueryProtocol protocol) {
  switch (protocol) {
    case QueryProtocol::kBasic:
      return "basic";
    case QueryProtocol::kSecure:
      return "secure";
    case QueryProtocol::kFarthest:
      return "farthest";
  }
  return "unknown";
}

Result<std::unique_ptr<SknnEngine>> SknnEngine::Create(
    const PlainTable& table, const Options& options) {
  // Alice: keygen + attribute-wise encryption (her one-time cost).
  SKNN_ASSIGN_OR_RETURN(DataOwner alice, DataOwner::Create(options.key_bits));
  std::unique_ptr<ThreadPool> setup_pool;
  ThreadPool* pool_ptr = nullptr;
  if (options.c1_threads > 1) {
    setup_pool = std::make_unique<ThreadPool>(options.c1_threads);
    pool_ptr = setup_pool.get();
  }
  SKNN_ASSIGN_OR_RETURN(
      EncryptedDatabase db,
      alice.EncryptDatabase(table, options.attr_bits, pool_ptr));
  return CreateFromParts(alice.public_key(), alice.secret_key_for_c2(),
                         std::move(db), options);
}

Result<std::unique_ptr<SknnEngine>> SknnEngine::CreateFromParts(
    const PaillierPublicKey& pk, PaillierSecretKey sk, EncryptedDatabase db,
    const Options& options) {
  if (db.records.empty() || db.distance_bits == 0) {
    return Status::InvalidArgument("CreateFromParts: empty database");
  }
  if (sk.public_key().n() != pk.n()) {
    return Status::InvalidArgument(
        "CreateFromParts: public and secret key do not match");
  }
  auto engine = std::unique_ptr<SknnEngine>(new SknnEngine());
  engine->options_ = options;
  engine->pk_ = pk;
  engine->db_ = std::move(db);

  // Outsourcing split: Epk(T) is C1's copy; sk goes to C2.
  engine->c2_ = std::make_unique<C2Service>(std::move(sk));
  engine->c2_->set_record_views(options.record_c2_views);

  // The C1 <-> C2 link.
  Channel::EndpointPair link = Channel::CreatePair();
  engine->channel_ = &link.a->channel();
  engine->channel_->set_latency(options.c1_c2_latency);
  C2Service* c2_raw = engine->c2_.get();
  engine->server_ = std::make_unique<RpcServer>(
      std::move(link.b),
      [c2_raw](const Message& req) { return c2_raw->Handle(req); },
      options.c2_threads);
  engine->client_ = std::make_unique<RpcClient>(std::move(link.a));

  SKNN_RETURN_NOT_OK(engine->InitCommon());
  return engine;
}

Result<std::unique_ptr<SknnEngine>> SknnEngine::CreateWithRemoteC2(
    const PaillierPublicKey& pk, EncryptedDatabase db,
    std::unique_ptr<Endpoint> c2_link, const Options& options) {
  if (db.records.empty() || db.distance_bits == 0) {
    return Status::InvalidArgument("CreateWithRemoteC2: empty database");
  }
  if (c2_link == nullptr) {
    return Status::InvalidArgument("CreateWithRemoteC2: null C2 link");
  }
  auto engine = std::unique_ptr<SknnEngine>(new SknnEngine());
  engine->options_ = options;
  engine->pk_ = pk;
  engine->db_ = std::move(db);
  engine->client_ = std::make_unique<RpcClient>(std::move(c2_link));

  // Many front ends may share one C2 server; a random non-zero id base
  // keeps their per-query state (Bob outbox buckets, op ledger entries)
  // disjoint. The in-process engine counts from 1 — it owns its C2.
  uint64_t id_base = 0;
  while (id_base == 0) {
    id_base = Random::ThreadLocal().UniformUint64(UINT64_MAX);
  }
  engine->next_query_id_.store(id_base);

  SKNN_RETURN_NOT_OK(engine->InitCommon());

  // Fail fast on a dead or mismatched link instead of on the first query.
  Message ping;
  ping.type = OpCode(Op::kPing);
  SKNN_ASSIGN_OR_RETURN(Message pong, engine->client_->Call(std::move(ping)));
  if (pong.type != OpCode(Op::kPing)) {
    return Status::ProtocolError(
        "CreateWithRemoteC2: peer did not answer ping (not a C2 server?)");
  }
  return engine;
}

Result<std::unique_ptr<SknnEngine>> SknnEngine::CreateWithShardWorkers(
    const PaillierPublicKey& pk,
    std::vector<std::unique_ptr<Endpoint>> shard_links,
    std::unique_ptr<Endpoint> c2_link, const Options& options) {
  if (c2_link == nullptr) {
    return Status::InvalidArgument("CreateWithShardWorkers: null C2 link");
  }
  auto engine = std::unique_ptr<SknnEngine>(new SknnEngine());
  engine->options_ = options;
  // The workers' manifest defines the sharding; the in-process option must
  // not ALSO partition (there is nothing here to partition).
  engine->options_.shards = 1;
  engine->pk_ = pk;
  engine->client_ = std::make_unique<RpcClient>(std::move(c2_link));

  // Same shared-C2 discipline as CreateWithRemoteC2: a random non-zero id
  // base keeps this front end's per-query state disjoint from its peers'.
  uint64_t id_base = 0;
  while (id_base == 0) {
    id_base = Random::ThreadLocal().UniformUint64(UINT64_MAX);
  }
  engine->next_query_id_.store(id_base);

  // The coordinator pings every worker and validates the shard cover; the
  // database geometry comes back with the pings, so the front end itself
  // never loads Epk(T). Several links reporting the same shard become that
  // shard's replicas: queries fail over between them, and the probe thread
  // redials dead ones at their configured addresses.
  ShardCoordinator::RemoteOptions remote_options;
  remote_options.redial_addrs = options.shard_worker_redial_addrs;
  remote_options.probe_interval = options.shard_probe_interval;
  SKNN_ASSIGN_OR_RETURN(
      engine->coordinator_,
      ShardCoordinator::CreateRemote(std::move(shard_links),
                                     options.verify_sbd,
                                     std::move(remote_options)));
  engine->num_records_ = engine->coordinator_->manifest().total_records;
  engine->num_attributes_ = engine->coordinator_->num_attributes();
  engine->distance_bits_ = engine->coordinator_->distance_bits();
  if (engine->num_records_ == 0 || engine->num_attributes_ == 0 ||
      engine->distance_bits_ == 0) {
    return Status::ProtocolError(
        "CreateWithShardWorkers: workers reported an empty geometry");
  }
  SKNN_RETURN_NOT_OK(engine->InitCommon());

  Message ping;
  ping.type = OpCode(Op::kPing);
  SKNN_ASSIGN_OR_RETURN(Message pong, engine->client_->Call(std::move(ping)));
  if (pong.type != OpCode(Op::kPing)) {
    return Status::ProtocolError(
        "CreateWithShardWorkers: peer did not answer ping (not a C2 "
        "server?)");
  }
  return engine;
}

Status SknnEngine::InitCommon() {
  // Geometry: mirrored from the hosted database unless a shard-worker
  // construction already learned it from the workers.
  if (num_records_ == 0) {
    num_records_ = db_.num_records();
    num_attributes_ = db_.num_attributes();
    distance_bits_ = db_.distance_bits;
  }
  // Attribute domain implied by the database; request validation holds
  // queries to this bound so the protocols' distance-domain guarantee
  // survives any query.
  attr_bits_ = DataOwner::ImpliedAttrBits(num_attributes_, distance_bits_);

  if (options_.c1_threads > 1) {
    c1_pool_ = std::make_unique<ThreadPool>(options_.c1_threads);
  }
  // Bob's client copies the key BEFORE any pool is attached: the end user
  // pays the paper's unamortized encryption cost (the "4 ms / 17 ms"
  // bob_seconds numbers) and never draws from the clouds' stock.
  bob_ = std::make_unique<QueryClient>(pk_);

  // Hot path (PR 2): intra-message fan-out at C2 for the vectorized wire
  // forms, and per-cloud randomizer precomputation so online encryptions
  // cost a modmul. Both compose with the per-query-id demux — pools are
  // engine-wide, attribution stays per query. A remote C2 configures its
  // own pools (sknn_c2_server --workers / --pool-capacity).
  if (c2_ != nullptr && options_.c2_threads > 1) {
    c2_->EnableIntraMessageParallelism(options_.c2_threads);
  }
  if (options_.randomizer_pool) {
    RandomizerPoolOptions pool_options;
    pool_options.short_exponents = options_.short_randomizers;
    c1_rand_pool_ = std::make_unique<RandomizerPool>(
        pk_.n(), options_.randomizer_pool_capacity, pool_options);
    pk_.set_randomizer_pool(c1_rand_pool_.get());
    if (c2_ != nullptr) {
      c2_->EnableRandomizerPool(options_.randomizer_pool_capacity,
                                pool_options);
    }
  }

  // Clustered index: hold the manifest and its per-cluster sizes. With
  // sharding the partitioning is BY CLUSTER (one shard per cluster) so
  // pruning a cluster also prunes its shard.
  if (options_.clusters != nullptr) {
    clusters_ = options_.clusters;
    cluster_sizes_ = ClusterSizes(*clusters_);
    if (coordinator_ != nullptr) {
      // Remote workers: their manifest must BE this cluster partitioning,
      // or pruning cluster c would skip an unrelated slice of the table.
      const ShardManifest& manifest = coordinator_->manifest();
      if (manifest.scheme != ShardScheme::kByCluster ||
          manifest.num_shards != clusters_->num_clusters ||
          manifest.total_records != clusters_->total_records ||
          clusters_->num_attributes != num_attributes_) {
        return Status::InvalidArgument(
            "clustered engine: the shard workers are not partitioned by "
            "this cluster manifest (want scheme bycluster with one shard "
            "per cluster; restart the workers with sknn_c1_shard "
            "--clusters)");
      }
    } else {
      if (Status valid = ValidateClusterManifestForDatabase(*clusters_, db_);
          !valid.ok()) {
        return valid;
      }
      if (options_.shards > 1) {
        SKNN_ASSIGN_OR_RETURN(coordinator_,
                              ShardCoordinator::CreateLocal(
                                  db_, *clusters_, options_.verify_sbd));
        db_.records.clear();
        db_.records.shrink_to_fit();
      }
    }
    return Status::OK();
  }

  // In-process shard set (Options::shards > 1): partition the hosted
  // database and route every query through the coordinator. Remote-worker
  // engines arrive here with coordinator_ already built.
  if (coordinator_ == nullptr && options_.shards > 1) {
    SKNN_ASSIGN_OR_RETURN(
        ShardManifest manifest,
        MakeShardManifest(num_records_, options_.shards,
                          options_.shard_scheme));
    SKNN_ASSIGN_OR_RETURN(
        coordinator_,
        ShardCoordinator::CreateLocal(db_, manifest, options_.verify_sbd));
    // The slices now hold every record and Dispatch routes through the
    // coordinator unconditionally — keeping the unsliced copy too would
    // double resident ciphertext memory for the engine's lifetime.
    db_.records.clear();
    db_.records.shrink_to_fit();
  }
  return Status::OK();
}

SknnEngine::~SknnEngine() {
  std::vector<std::thread> dispatchers;
  {
    MutexLock lock(&sched_mutex_);
    sched_stop_ = true;
    dispatchers.swap(sched_threads_);
  }
  sched_cv_.NotifyAll();
  for (auto& t : dispatchers) t.join();
}

void SknnEngine::SchedulerLoop() {
  for (;;) {
    QueryJob job;
    {
      MutexLock lock(&sched_mutex_);
      while (!sched_stop_ && sched_queue_.empty()) sched_cv_.Wait(sched_mutex_);
      if (sched_queue_.empty()) return;  // stop requested and queue drained
      job = std::move(sched_queue_.front());
      sched_queue_.pop_front();
    }
    job.promise.set_value(ExecuteQuery(job.request));
  }
}

SknnEngine::Info SknnEngine::info() const {
  Info info;
  info.num_records = num_records_;
  info.num_attributes = num_attributes_;
  info.attr_bits = attr_bits_;
  info.distance_bits = distance_bits_;
  info.k_max = static_cast<unsigned>(num_records_);
  if (coordinator_ != nullptr) {
    info.num_shards = coordinator_->manifest().num_shards;
    info.shard_scheme = coordinator_->manifest().scheme;
    info.remote_shard_workers = coordinator_->remote();
  }
  if (clusters_ != nullptr) info.num_clusters = clusters_->num_clusters;
  return info;
}

SknnEngine::RandomizerPoolStats SknnEngine::randomizer_pool_stats() {
  RandomizerPoolStats stats;
  if (c1_rand_pool_ != nullptr) {
    stats.c1_hits = c1_rand_pool_->hits();
    stats.c1_misses = c1_rand_pool_->misses();
    stats.c1_stock = c1_rand_pool_->stock();
    stats.c1_capacity = c1_rand_pool_->capacity();
  }
  if (c2_ != nullptr) {
    if (RandomizerPool* pool = c2_->randomizer_pool()) {
      stats.c2_hits = pool->hits();
      stats.c2_misses = pool->misses();
      stats.c2_stock = pool->stock();
      stats.c2_capacity = pool->capacity();
    }
  } else if (client_ != nullptr) {
    // Remote C2: one untagged meta exchange; zeros on any failure (the
    // control plane must never fail a stats frame on a flaky link).
    Message req;
    req.type = OpCode(Op::kFetchPoolStats);
    Result<Message> resp = client_->Call(std::move(req));
    if (resp.ok() && resp->aux.size() >= 32) {
      stats.c2_hits = resp->AuxU64At(0);
      stats.c2_misses = resp->AuxU64At(8);
      stats.c2_stock = resp->AuxU64At(16);
      stats.c2_capacity = resp->AuxU64At(24);
    }
  }
  return stats;
}

Status SknnEngine::ValidateRequest(const QueryRequest& request) const {
  const std::size_t n = num_records_;
  if (request.record.size() != num_attributes_) {
    return Status::InvalidArgument(
        "QueryRequest: record has " + std::to_string(request.record.size()) +
        " attributes, database has " + std::to_string(num_attributes_));
  }
  if (request.k == 0) {
    return Status::InvalidArgument("QueryRequest: k must be at least 1");
  }
  // Oversized k is a malformed REQUEST, not a borderline value: kTableInfo
  // advertises k_max, so fail typed and fast — before any crypto work.
  if (request.k > n) {
    return Status::InvalidArgument(
        "QueryRequest: k = " + std::to_string(request.k) +
        " exceeds this table's k_max = " + std::to_string(n) +
        " (kTableInfo reports the admissible bound)");
  }
  if (request.index_mode == IndexMode::kClustered && clusters_ == nullptr) {
    return Status::InvalidArgument(
        "QueryRequest: clustered index requested but this table has no "
        "cluster manifest (re-export with sknn_encrypt --clusters)");
  }
  const int64_t bound = int64_t{1} << attr_bits_;
  for (int64_t v : request.record) {
    if (v < 0 || v >= bound) {
      return Status::OutOfRange(
          "QueryRequest: attribute value " + std::to_string(v) +
          " outside [0, 2^" + std::to_string(attr_bits_) +
          ") — distances would overflow the protocol's l-bit domain");
    }
  }
  return Status::OK();
}

Result<CloudQueryOutput> SknnEngine::Dispatch(
    ProtoContext& ctx, const QueryRequest& request,
    const std::vector<Ciphertext>& enc_query, QueryResponse* response) {
  SkNNmBreakdown* breakdown =
      request.want_breakdown ? &response->breakdown : nullptr;
  // Clustered index, with a pruning round actually worth running: probing
  // every cluster IS the exact computation, so that case (and every exact
  // request) falls through to the exact paths below unchanged — which is
  // what makes probe = all bitwise-identical to exact mode.
  if (request.index_mode == IndexMode::kClustered && clusters_ != nullptr &&
      std::max(request.probe_clusters, 1u) < clusters_->num_clusters) {
    return DispatchClustered(ctx, request, enc_query, response, breakdown);
  }
  if (coordinator_ != nullptr) {
    ShardCoordinator::RunStats stats;
    Result<CloudQueryOutput> out = coordinator_->Run(
        ctx, request, enc_query,
        request.protocol == QueryProtocol::kBasic ? nullptr : breakdown,
        &stats);
    response->shards = std::move(stats.shards);
    response->merge_seconds = stats.merge_seconds;
    return out;
  }
  if (request.protocol == QueryProtocol::kBasic) {
    return RunSkNNb(ctx, db_, enc_query, request.k);
  }
  SkNNmOptions opts;
  opts.verify_sbd = options_.verify_sbd;
  opts.farthest = request.protocol == QueryProtocol::kFarthest;
  return RunSkNNm(ctx, db_, enc_query, request.k, breakdown, opts);
}

Result<CloudQueryOutput> SknnEngine::DispatchClustered(
    ProtoContext& ctx, const QueryRequest& request,
    const std::vector<Ciphertext>& enc_query, QueryResponse* response,
    SkNNmBreakdown* breakdown) {
  const ClusterManifest& cm = *clusters_;
  const uint32_t probe = std::max(request.probe_clusters, 1u);

  // Probe round: SSED over the encrypted centroids, then C2's plaintext
  // top-k round over ALL of them gives the full cluster ranking. This is
  // the clustered mode's documented leakage — C2 learns how the CLUSTERS
  // rank for this query (never record distances or identities); see
  // docs/API.md.
  SKNN_ASSIGN_OR_RETURN(
      std::vector<Ciphertext> centroid_dists,
      SecureSquaredDistanceBatch(ctx, cm.centroids, enc_query));
  SKNN_ASSIGN_OR_RETURN(
      std::vector<uint32_t> ranking,
      SecureTopKIndices(ctx, centroid_dists, cm.num_clusters));
  if (request.protocol == QueryProtocol::kFarthest) {
    // Farthest neighbors live in the FARTHEST clusters.
    std::reverse(ranking.begin(), ranking.end());
  }

  // Greedy selection in rank order: at least probe_clusters clusters, and
  // however many more it takes for the candidates to satisfy k (every
  // answer needs k records; recall is approximate, the count is not).
  std::vector<uint32_t> chosen;
  std::size_t candidate_count = 0;
  for (uint32_t cluster : ranking) {
    chosen.push_back(cluster);
    candidate_count += cluster_sizes_[cluster];
    if (chosen.size() >= probe && candidate_count >= request.k) break;
  }

  if (coordinator_ != nullptr) {
    // By-cluster shards: the pruned clusters' workers never see the query.
    ShardCoordinator::RunStats stats;
    Result<CloudQueryOutput> out = coordinator_->Run(
        ctx, request, enc_query,
        request.protocol == QueryProtocol::kBasic ? nullptr : breakdown,
        &stats, &chosen);
    response->shards = std::move(stats.shards);
    response->merge_seconds = stats.merge_seconds;
    return out;
  }

  // Unsharded: gather the surviving clusters' records in ascending global
  // order (the SkNN_m tie-break order) and run the exact machinery over
  // the candidate set only.
  std::vector<bool> take(cm.num_clusters, false);
  for (uint32_t cluster : chosen) take[cluster] = true;
  std::vector<std::size_t> global_indices;
  std::vector<std::vector<Ciphertext>> candidates;
  global_indices.reserve(candidate_count);
  candidates.reserve(candidate_count);
  for (std::size_t i = 0; i < cm.assignment.size(); ++i) {
    if (!take[cm.assignment[i]]) continue;
    global_indices.push_back(i);
    candidates.push_back(db_.records[i]);
  }

  if (request.protocol == QueryProtocol::kBasic) {
    SKNN_ASSIGN_OR_RETURN(
        std::vector<Ciphertext> dists,
        SecureSquaredDistanceBatch(ctx, candidates, enc_query));
    // Candidates ascend by global index, so C2's lower-position tie-break
    // is the global lower-index tie-break restricted to the candidates.
    SKNN_ASSIGN_OR_RETURN(std::vector<uint32_t> top,
                          SecureTopKIndices(ctx, dists, request.k));
    std::vector<std::vector<Ciphertext>> winners;
    winners.reserve(top.size());
    for (uint32_t idx : top) winners.push_back(candidates[idx]);
    return MaskAndShipToBob(ctx, winners);
  }

  SKNN_ASSIGN_OR_RETURN(
      std::vector<EncryptedBits> bits,
      PrepareDistanceBits(ctx, candidates, enc_query, distance_bits_,
                          &global_indices, num_records_,
                          request.protocol == QueryProtocol::kFarthest,
                          options_.verify_sbd, breakdown));
  SKNN_ASSIGN_OR_RETURN(TopKExtraction top,
                        ExtractTopK(ctx, candidates, bits, request.k,
                                    /*keep_winner_bits=*/false, breakdown));
  Stopwatch finalize;
  Result<CloudQueryOutput> out = MaskAndShipToBob(ctx, top.records);
  if (breakdown != nullptr) {
    breakdown->finalize_seconds += finalize.ElapsedSeconds();
  }
  return out;
}

Result<std::vector<BigInt>> SknnEngine::TakeC2Outbox(ProtoContext& ctx,
                                                     uint64_t query_id) {
  if (c2_ != nullptr) return c2_->TakeBobOutbox(query_id);
  // Remote C2: a tagged fetch over the link. In the serving topology the
  // front end unmasks on Bob's behalf (it already holds his masks), so this
  // leg rides C1's connection; see docs/DEPLOY.md for the trust model.
  SKNN_ASSIGN_OR_RETURN(Message resp, ctx.Call(Op::kFetchBobOutbox, {}));
  return std::move(resp.ints);
}

OpSnapshot SknnEngine::TakeC2QueryOps(ProtoContext& ctx, uint64_t query_id) {
  if (c2_ != nullptr) return c2_->TakeQueryOps(query_id);
  auto resp = ctx.Call(Op::kFetchQueryOps, {});
  if (!resp.ok() || resp->aux.size() < 32) return {};
  return {resp->AuxU64At(0), resp->AuxU64At(8), resp->AuxU64At(16),
          resp->AuxU64At(24)};
}

Result<QueryResponse> SknnEngine::ExecuteQuery(const QueryRequest& request) {
  SKNN_RETURN_NOT_OK(ValidateRequest(request));
  const uint64_t query_id = next_query_id_.fetch_add(1);
  QueryMeter meter;
  ProtoContext ctx(&pk_, client_.get(), c1_pool_.get(), query_id, &meter,
                   options_.vectorized_rounds);
  if (request.deadline_ms > 0) {
    ctx.set_deadline(std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(request.deadline_ms));
  }
  QueryResponse response;

  // Bob: encrypt Q (his main cost — the paper's 4 ms / 17 ms numbers).
  Stopwatch bob_watch;
  std::vector<Ciphertext> enc_query = bob_->EncryptQuery(request.record);
  response.bob_seconds = bob_watch.ElapsedSeconds();

  // The clouds: run the chosen protocol. The C1 side of the query sinks its
  // Paillier ops into the meter; C2 attributes its share via the query id.
  Result<CloudQueryOutput> cloud = Status::Internal("unset");
  {
    ScopedOpSink sink(request.want_op_counts ? &meter.ops() : nullptr);
    Stopwatch cloud_watch;
    cloud = Dispatch(ctx, request, enc_query, &response);
    response.cloud_seconds = cloud_watch.ElapsedSeconds();
  }
  if (!cloud.ok()) {
    // Drop any partial result and drain the ledger entry. Best-effort for a
    // remote C2 (whose ledger is FIFO-bounded anyway) — the protocol error
    // is what the caller needs to see, not a cleanup failure.
    (void)TakeC2Outbox(ctx, query_id);
    if (c2_ != nullptr) (void)c2_->TakeQueryOps(query_id);
    return cloud.status();
  }

  // Bob: combine C2's decrypted masked records with C1's masks. The outbox
  // bucket is keyed by query id, so concurrent queries cannot interleave.
  SKNN_ASSIGN_OR_RETURN(std::vector<BigInt> from_c2,
                        TakeC2Outbox(ctx, query_id));
  // The ops fetch costs a round trip against a remote C2, so only pay it
  // when the caller asked; the local ledger is always drained (hygiene).
  OpSnapshot c2_ops;
  if (request.want_op_counts) {
    c2_ops = TakeC2QueryOps(ctx, query_id);
  } else if (c2_ != nullptr) {
    (void)c2_->TakeQueryOps(query_id);
  }
  // Under sharding the shard stages meter themselves (per-shard split in
  // response.shards); fold their share back into the query totals.
  response.traffic = meter.traffic();
  for (const auto& shard : response.shards) {
    response.traffic = response.traffic + shard.traffic;
  }
  if (request.want_op_counts) {
    response.ops = meter.ops().snapshot() + c2_ops;
    for (const auto& shard : response.shards) {
      response.ops = response.ops + shard.ops;
    }
  }
  bob_watch.Reset();
  SKNN_ASSIGN_OR_RETURN(
      response.records,
      bob_->RecoverRecords(from_c2, cloud->masks_for_bob, request.k,
                           num_attributes_));
  response.bob_seconds += bob_watch.ElapsedSeconds();
  return response;
}

Result<QueryResponse> SknnEngine::Query(const QueryRequest& request) {
  return ExecuteQuery(request);
}

std::future<Result<QueryResponse>> SknnEngine::Submit(QueryRequest request) {
  QueryJob job;
  job.request = std::move(request);
  std::future<Result<QueryResponse>> future = job.promise.get_future();
  {
    MutexLock lock(&sched_mutex_);
    if (sched_stop_) {
      job.promise.set_value(
          Status::FailedPrecondition("Submit: engine is shutting down"));
      return future;
    }
    // Dispatchers are spawned on the first Submit — one per allowed
    // in-flight query. They only drive protocol control flow (and block on
    // C2 round trips); the homomorphic heavy lifting stays on c1_pool_.
    // Engines used purely synchronously never pay for them.
    if (sched_threads_.empty()) {
      std::size_t in_flight = std::max<std::size_t>(1, options_.c1_threads);
      sched_threads_.reserve(in_flight);
      for (std::size_t i = 0; i < in_flight; ++i) {
        sched_threads_.emplace_back([this] { SchedulerLoop(); });
      }
    }
    sched_queue_.push_back(std::move(job));
  }
  sched_cv_.NotifyOne();
  return future;
}

std::vector<Result<QueryResponse>> SknnEngine::QueryBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<Result<QueryResponse>>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) futures.push_back(Submit(std::move(request)));
  std::vector<Result<QueryResponse>> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace sknn
