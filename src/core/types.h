// Shared vocabulary types of the SkNN system.
#ifndef SKNN_CORE_TYPES_H_
#define SKNN_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/op_counters.h"
#include "crypto/paillier.h"
#include "net/channel.h"

namespace sknn {

/// \brief A plaintext record: m attribute values (the paper's t_i).
using PlainRecord = std::vector<int64_t>;
/// \brief A plaintext table: n records (the paper's T).
using PlainTable = std::vector<PlainRecord>;

/// \brief Alice's attribute-wise encrypted table Epk(T), as hosted by C1.
struct EncryptedDatabase {
  /// records[i][j] = Epk(t_{i,j}).
  std::vector<std::vector<Ciphertext>> records;
  /// Bit width l of the squared-distance domain: every |t_i - Q|^2 < 2^l.
  unsigned distance_bits = 0;

  std::size_t num_records() const { return records.size(); }
  std::size_t num_attributes() const {
    return records.empty() ? 0 : records[0].size();
  }
};

/// \brief Per-phase wall-clock breakdown of one SkNN_m query. Section 5.2
/// reports SMIN_n at >= 69.7% of total cost; this struct reproduces that
/// accounting.
struct SkNNmBreakdown {
  double ssed_seconds = 0;      ///< step 2: encrypted distances
  double sbd_seconds = 0;       ///< step 2: bit decomposition
  double sminn_seconds = 0;     ///< step 3(a): k SMIN_n tournaments
  double extract_seconds = 0;   ///< steps 3(b)-(d): pointer + record fetch
  double update_seconds = 0;    ///< step 3(e): SBOR distance clamping
  double finalize_seconds = 0;  ///< steps 4-6: masked hand-off to Bob

  double total() const {
    return ssed_seconds + sbd_seconds + sminn_seconds + extract_seconds +
           update_seconds + finalize_seconds;
  }
};

}  // namespace sknn

#endif  // SKNN_CORE_TYPES_H_
