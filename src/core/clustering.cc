#include "core/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "bigint/random.h"

namespace sknn {

namespace {

// Self-contained splitmix64 stream. std::mt19937 would also be
// deterministic, but its distribution adapters are NOT specified
// bit-for-bit across standard libraries; this is, and clustering must
// reproduce exactly on every platform (the manifest written by
// sknn_encrypt is compared against manifests rebuilt in tests).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound) by rejection; bound must be nonzero.
  uint64_t Below(uint64_t bound) {
    const uint64_t limit = bound * (std::numeric_limits<uint64_t>::max() /
                                    bound);
    uint64_t draw;
    do {
      draw = Next();
    } while (draw >= limit);
    return draw % bound;
  }

 private:
  uint64_t state_;
};

double SquaredDistance(const PlainRecord& a, const PlainRecord& b) {
  double total = 0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = static_cast<double>(a[j]) - static_cast<double>(b[j]);
    total += d * d;
  }
  return total;
}

}  // namespace

Result<KMeansResult> KMeansPartition(const PlainTable& table,
                                     uint32_t num_clusters, uint64_t seed,
                                     int max_iters) {
  if (num_clusters == 0) {
    return Status::InvalidArgument("KMeansPartition: num_clusters must be >= 1");
  }
  if (table.empty()) {
    return Status::InvalidArgument("KMeansPartition: empty table");
  }
  const std::size_t n = table.size();
  const std::size_t m = table[0].size();
  if (m == 0) {
    return Status::InvalidArgument("KMeansPartition: records have no attributes");
  }
  for (const PlainRecord& record : table) {
    if (record.size() != m) {
      return Status::InvalidArgument("KMeansPartition: ragged table");
    }
  }
  // More clusters than records would force empties forever; cap silently so
  // tiny tables still work with a generous --clusters setting.
  const uint32_t k =
      static_cast<uint32_t>(std::min<std::size_t>(num_clusters, n));

  SplitMix64 rng(seed != 0 ? seed : 0x736b6e6e636c01ull);
  // k-means++ init: first centroid uniform, then D^2-weighted.
  std::vector<PlainRecord> centroids;
  centroids.reserve(k);
  centroids.push_back(table[rng.Below(n)]);
  std::vector<double> dist2(n, 0);
  for (uint32_t c = 1; c < k; ++c) {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const PlainRecord& centroid : centroids) {
        best = std::min(best, SquaredDistance(table[i], centroid));
      }
      dist2[i] = best;
      total += best;
    }
    if (total <= 0) {
      // All remaining mass sits on existing centroids (duplicate-heavy
      // table): any record works, pick one deterministically.
      centroids.push_back(table[rng.Below(n)]);
      continue;
    }
    // Draw a point with probability proportional to its D^2. The draw uses
    // integer arithmetic over Next() so it is platform-exact.
    double target = total * (static_cast<double>(rng.Next() >> 11) *
                             (1.0 / 9007199254740992.0));  // [0, 1) at 2^-53
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= dist2[i];
      if (target <= 0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(table[chosen]);
  }

  std::vector<uint32_t> assignment(n, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    // Assign step.
    bool moved = iter == 0;
    for (std::size_t i = 0; i < n; ++i) {
      uint32_t best_c = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (uint32_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(table[i], centroids[c]);
        if (d < best_d) {
          best_d = d;
          best_c = c;
        }
      }
      if (assignment[i] != best_c) moved = true;
      assignment[i] = best_c;
    }
    if (!moved) break;
    // Update step: rounded integer means, so centroids stay in the
    // attribute domain and encrypt exactly like records.
    std::vector<std::vector<double>> sums(k, std::vector<double>(m, 0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[assignment[i]];
      for (std::size_t j = 0; j < m; ++j) {
        sums[assignment[i]][j] += static_cast<double>(table[i][j]);
      }
    }
    for (uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster with the record farthest from its own
        // centroid — the classic fix, and deterministic.
        std::size_t worst = 0;
        double worst_d = -1;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = SquaredDistance(table[i], centroids[assignment[i]]);
          if (d > worst_d) {
            worst_d = d;
            worst = i;
          }
        }
        centroids[c] = table[worst];
        continue;
      }
      for (std::size_t j = 0; j < m; ++j) {
        centroids[c][j] = static_cast<int64_t>(
            std::llround(sums[c][j] / static_cast<double>(counts[c])));
      }
    }
  }

  // One final assign pass so the returned assignment matches the returned
  // centroids (the loop may have updated centroids after its last assign).
  for (std::size_t i = 0; i < n; ++i) {
    uint32_t best_c = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (uint32_t c = 0; c < k; ++c) {
      const double d = SquaredDistance(table[i], centroids[c]);
      if (d < best_d) {
        best_d = d;
        best_c = c;
      }
    }
    assignment[i] = best_c;
  }
  // Every cluster must end non-empty (PartitionDatabaseByCluster rejects
  // empties): give any orphaned centroid the record farthest from its own
  // centroid among clusters that can spare one.
  std::vector<std::size_t> counts(k, 0);
  for (uint32_t c : assignment) ++counts[c];
  for (uint32_t c = 0; c < k; ++c) {
    if (counts[c] != 0) continue;
    std::size_t worst = n;
    double worst_d = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (counts[assignment[i]] <= 1) continue;
      const double d = SquaredDistance(table[i], centroids[assignment[i]]);
      if (d > worst_d) {
        worst_d = d;
        worst = i;
      }
    }
    if (worst == n) break;  // k > distinct donors; cannot happen with k <= n
    --counts[assignment[worst]];
    assignment[worst] = c;
    counts[c] = 1;
    centroids[c] = table[worst];
  }

  KMeansResult result;
  result.assignment = std::move(assignment);
  result.centroids = std::move(centroids);
  return result;
}

Result<ClusterManifest> BuildClusterManifest(const PlainTable& table,
                                             uint32_t num_clusters,
                                             uint64_t seed,
                                             const PaillierPublicKey& pk) {
  SKNN_ASSIGN_OR_RETURN(KMeansResult kmeans,
                        KMeansPartition(table, num_clusters, seed));
  ClusterManifest manifest;
  manifest.num_clusters = static_cast<uint32_t>(kmeans.centroids.size());
  manifest.num_attributes = table[0].size();
  manifest.total_records = table.size();
  manifest.assignment = std::move(kmeans.assignment);
  Random& rng = Random::ThreadLocal();
  manifest.centroids.reserve(kmeans.centroids.size());
  for (const PlainRecord& centroid : kmeans.centroids) {
    std::vector<Ciphertext> row;
    row.reserve(centroid.size());
    for (int64_t value : centroid) {
      if (value < 0) {
        return Status::InvalidArgument(
            "BuildClusterManifest: negative centroid value " +
            std::to_string(value) + " (attributes must be non-negative)");
      }
      row.push_back(pk.Encrypt(BigInt(static_cast<uint64_t>(value)), rng));
    }
    manifest.centroids.push_back(std::move(row));
  }
  return manifest;
}

std::vector<std::size_t> ClusterRecordIndices(const ClusterManifest& manifest,
                                              uint32_t cluster) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < manifest.assignment.size(); ++i) {
    if (manifest.assignment[i] == cluster) indices.push_back(i);
  }
  return indices;
}

std::vector<uint32_t> ClusterSizes(const ClusterManifest& manifest) {
  std::vector<uint32_t> sizes(manifest.num_clusters, 0);
  for (uint32_t c : manifest.assignment) {
    if (c < manifest.num_clusters) ++sizes[c];
  }
  return sizes;
}

Status ValidateClusterManifestForDatabase(const ClusterManifest& manifest,
                                          const EncryptedDatabase& db) {
  if (manifest.num_clusters == 0) {
    return Status::InvalidArgument("cluster manifest: zero clusters");
  }
  if (manifest.total_records != db.num_records()) {
    return Status::InvalidArgument(
        "cluster manifest: built for " +
        std::to_string(manifest.total_records) + " records but the database "
        "has " + std::to_string(db.num_records()));
  }
  if (manifest.num_attributes != db.num_attributes()) {
    return Status::InvalidArgument(
        "cluster manifest: built for " +
        std::to_string(manifest.num_attributes) + " attributes but the "
        "database has " + std::to_string(db.num_attributes()));
  }
  if (manifest.assignment.size() != manifest.total_records) {
    return Status::InvalidArgument(
        "cluster manifest: assignment covers " +
        std::to_string(manifest.assignment.size()) + " of " +
        std::to_string(manifest.total_records) + " records");
  }
  for (uint32_t c : manifest.assignment) {
    if (c >= manifest.num_clusters) {
      return Status::InvalidArgument(
          "cluster manifest: assignment names cluster " + std::to_string(c) +
          " of " + std::to_string(manifest.num_clusters));
    }
  }
  if (manifest.centroids.size() != manifest.num_clusters) {
    return Status::InvalidArgument(
        "cluster manifest: " + std::to_string(manifest.centroids.size()) +
        " centroid rows for " + std::to_string(manifest.num_clusters) +
        " clusters");
  }
  for (const std::vector<Ciphertext>& row : manifest.centroids) {
    if (row.size() != manifest.num_attributes) {
      return Status::InvalidArgument(
          "cluster manifest: centroid row has " + std::to_string(row.size()) +
          " attributes, expected " +
          std::to_string(manifest.num_attributes));
    }
  }
  return Status::OK();
}

}  // namespace sknn
