#include "core/shard_coordinator.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <thread>

#include "common/stopwatch.h"
#include "core/clustering.h"
#include "net/socket.h"
#include "proto/query_meter.h"

namespace sknn {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Splits "host:port" for the probe thread's redial. Returns false (and
/// leaves the outputs alone) for anything unparsable — those replicas simply
/// never redial.
bool SplitHostPort(const std::string& addr, std::string* host, int* port) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    return false;
  }
  int value = 0;
  for (std::size_t i = colon + 1; i < addr.size(); ++i) {
    if (addr[i] < '0' || addr[i] > '9') return false;
    value = value * 10 + (addr[i] - '0');
    if (value > 65535) return false;
  }
  if (value == 0) return false;
  *host = addr.substr(0, colon);
  *port = value;
  return true;
}

}  // namespace

ShardCoordinator::~ShardCoordinator() {
  {
    MutexLock lock(&probe_mutex_);
    probe_stop_ = true;
  }
  probe_cv_.NotifyAll();
  if (probe_thread_.joinable()) probe_thread_.join();
}

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::CreateLocal(
    const EncryptedDatabase& db, const ShardManifest& manifest,
    bool verify_sbd) {
  SKNN_ASSIGN_OR_RETURN(
      ShardManifest checked,
      MakeShardManifest(manifest.total_records, manifest.num_shards,
                        manifest.scheme));
  auto coordinator = std::unique_ptr<ShardCoordinator>(new ShardCoordinator());
  coordinator->manifest_ = checked;
  coordinator->verify_sbd_ = verify_sbd;
  coordinator->num_attributes_ = db.num_attributes();
  coordinator->distance_bits_ = db.distance_bits;
  SKNN_ASSIGN_OR_RETURN(coordinator->slices_, PartitionDatabase(db, checked));
  coordinator->shard_records_.reserve(coordinator->slices_.size());
  for (const ShardSlice& slice : coordinator->slices_) {
    coordinator->shard_records_.push_back(
        static_cast<uint32_t>(slice.db.num_records()));
  }
  return coordinator;
}

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::CreateLocal(
    const EncryptedDatabase& db, const ClusterManifest& clusters,
    bool verify_sbd) {
  SKNN_ASSIGN_OR_RETURN(
      ShardManifest manifest,
      MakeShardManifest(db.num_records(), clusters.num_clusters,
                        ShardScheme::kByCluster));
  auto coordinator = std::unique_ptr<ShardCoordinator>(new ShardCoordinator());
  coordinator->manifest_ = manifest;
  coordinator->verify_sbd_ = verify_sbd;
  coordinator->num_attributes_ = db.num_attributes();
  coordinator->distance_bits_ = db.distance_bits;
  SKNN_ASSIGN_OR_RETURN(coordinator->slices_,
                        PartitionDatabaseByCluster(db, clusters));
  coordinator->shard_records_.reserve(coordinator->slices_.size());
  for (const ShardSlice& slice : coordinator->slices_) {
    coordinator->shard_records_.push_back(
        static_cast<uint32_t>(slice.db.num_records()));
  }
  return coordinator;
}

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::CreateRemote(
    std::vector<std::unique_ptr<Endpoint>> worker_links, bool verify_sbd) {
  return CreateRemote(std::move(worker_links), verify_sbd, RemoteOptions());
}

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::CreateRemote(
    std::vector<std::unique_ptr<Endpoint>> worker_links, bool verify_sbd,
    RemoteOptions remote_options) {
  if (worker_links.empty()) {
    return Status::InvalidArgument("ShardCoordinator: no worker links");
  }
  if (!remote_options.redial_addrs.empty() &&
      remote_options.redial_addrs.size() != worker_links.size()) {
    return Status::InvalidArgument(
        "ShardCoordinator: redial_addrs must be empty or parallel to "
        "worker_links");
  }
  // Ping every worker for its geometry; workers may connect in any order —
  // they are re-indexed by their reported shard, and several workers
  // reporting the SAME shard become that shard's replicas.
  std::vector<std::shared_ptr<RpcClient>> clients;
  std::vector<ShardGeometry> geometries;
  for (auto& link : worker_links) {
    if (link == nullptr) {
      return Status::InvalidArgument("ShardCoordinator: null worker link");
    }
    auto client = std::make_shared<RpcClient>(std::move(link));
    auto pong = client->Call(EncodeShardPing());
    if (!pong.ok()) {
      return Status::Unavailable("shard worker " +
                                 std::to_string(clients.size()) +
                                 " did not answer ping: " +
                                 pong.status().message());
    }
    SKNN_ASSIGN_OR_RETURN(ShardGeometry geometry, DecodeShardGeometry(*pong));
    clients.push_back(std::move(client));
    geometries.push_back(geometry);
  }
  const ShardManifest manifest = geometries[0].manifest;
  auto coordinator = std::unique_ptr<ShardCoordinator>(new ShardCoordinator());
  coordinator->manifest_ = manifest;
  coordinator->verify_sbd_ = verify_sbd;
  coordinator->num_attributes_ = geometries[0].num_attributes;
  coordinator->distance_bits_ = geometries[0].distance_bits;
  coordinator->remote_options_ = remote_options;
  coordinator->groups_ =
      std::vector<ReplicaGroup>(manifest.num_shards);
  coordinator->shard_records_.assign(manifest.num_shards, 0);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const ShardGeometry& g = geometries[i];
    if (!(g.manifest == manifest) ||
        g.num_attributes != coordinator->num_attributes_ ||
        g.distance_bits != coordinator->distance_bits_) {
      return Status::InvalidArgument(
          "ShardCoordinator: worker " + std::to_string(i) +
          " disagrees on the manifest or database geometry");
    }
    if (g.shard >= manifest.num_shards) {
      return Status::InvalidArgument(
          "ShardCoordinator: worker " + std::to_string(i) +
          " claims out-of-range shard index " + std::to_string(g.shard));
    }
    // Replicas of one shard must hold identical slices.
    uint32_t& expected = coordinator->shard_records_[g.shard];
    if (expected == 0) {
      expected = g.shard_records;
    } else if (expected != g.shard_records) {
      return Status::InvalidArgument(
          "ShardCoordinator: replicas of shard " + std::to_string(g.shard) +
          " disagree on their record count (" + std::to_string(expected) +
          " vs " + std::to_string(g.shard_records) + ")");
    }
    auto replica = std::make_unique<Replica>();
    {
      MutexLock lock(&replica->mutex);
      replica->client = std::move(clients[i]);
    }
    if (!remote_options.redial_addrs.empty()) {
      replica->redial_addr = remote_options.redial_addrs[i];
    }
    replica->last_ok_ns.store(NowNs(), std::memory_order_relaxed);
    coordinator->groups_[g.shard].replicas.push_back(std::move(replica));
  }
  for (std::size_t shard = 0; shard < coordinator->groups_.size(); ++shard) {
    if (coordinator->groups_[shard].replicas.empty()) {
      return Status::InvalidArgument(
          "ShardCoordinator: workers do not cover shards 0.." +
          std::to_string(manifest.num_shards - 1) + " (no worker for shard " +
          std::to_string(shard) + ")");
    }
  }
  if (remote_options.probe_interval.count() > 0) {
    coordinator->probe_thread_ =
        std::thread([c = coordinator.get()] { c->ProbeLoop(); });
  }
  return coordinator;
}

std::vector<ShardCoordinator::ReplicaStatus>
ShardCoordinator::ReplicaStatuses() const {
  std::vector<ReplicaStatus> statuses;
  const int64_t now = NowNs();
  for (std::size_t shard = 0; shard < groups_.size(); ++shard) {
    const ReplicaGroup& group = groups_[shard];
    for (std::size_t i = 0; i < group.replicas.size(); ++i) {
      const Replica& replica = *group.replicas[i];
      ReplicaStatus status;
      status.shard = static_cast<uint32_t>(shard);
      status.replica = static_cast<uint32_t>(i);
      status.healthy = replica.healthy.load(std::memory_order_relaxed);
      status.consecutive_failures =
          replica.consecutive_failures.load(std::memory_order_relaxed);
      status.failovers = replica.failovers.load(std::memory_order_relaxed);
      const int64_t last = replica.last_ok_ns.load(std::memory_order_relaxed);
      status.last_ok_age_seconds =
          last == 0 ? -1.0 : static_cast<double>(now - last) * 1e-9;
      statuses.push_back(status);
    }
  }
  return statuses;
}

void ShardCoordinator::ProbeLoop() {
  for (;;) {
    {
      MutexLock lock(&probe_mutex_);
      if (!probe_stop_) {
        probe_cv_.WaitFor(probe_mutex_, remote_options_.probe_interval);
      }
      if (probe_stop_) return;
    }
    for (auto& group : groups_) {
      for (auto& replica : group.replicas) {
        {
          MutexLock lock(&probe_mutex_);
          if (probe_stop_) return;
        }
        ProbeReplica(*replica);
      }
    }
  }
}

void ShardCoordinator::ProbeReplica(Replica& replica) {
  // Bound the probe by the probe interval so one dead-but-routable worker
  // cannot back the whole probe cycle up behind a TCP timeout.
  const auto timeout = remote_options_.probe_interval;
  std::shared_ptr<RpcClient> client = replica.GetClient();
  if (client != nullptr) {
    auto pong = client->Call(EncodeShardPing(), timeout);
    if (pong.ok() && DecodeShardGeometry(*pong).ok()) {
      replica.MarkOk();
      return;
    }
    if (pong.status().code() == StatusCode::kDeadlineExceeded) {
      // Link still up, worker silent (busy or stopped): count the failure
      // but keep the client — a busy worker recovers on its own.
      replica.MarkFailed(remote_options_.eject_after_failures);
      return;
    }
  }
  // Link dead. Redial if we know the address; a restarted worker (same
  // port, fresh process) passes the ping and is reinstated.
  replica.MarkFailed(remote_options_.eject_after_failures);
  std::string host;
  int port = 0;
  if (!SplitHostPort(replica.redial_addr, &host, &port)) return;
  auto endpoint = ConnectTcp(host, port);
  if (!endpoint.ok()) return;
  auto fresh = std::make_shared<RpcClient>(std::move(*endpoint));
  auto pong = fresh->Call(EncodeShardPing(), timeout);
  if (!pong.ok()) return;
  auto geometry = DecodeShardGeometry(*pong);
  if (!geometry.ok() || !(geometry->manifest == manifest_)) return;
  {
    MutexLock lock(&replica.mutex);
    replica.client = std::move(fresh);
  }
  replica.MarkOk();
}

Result<ShardCandidates> ShardCoordinator::RunShardRemote(
    ProtoContext& ctx, std::size_t shard, const QueryRequest& request,
    const std::vector<Ciphertext>& enc_query, ShardQueryStats* stats) {
  ReplicaGroup& group = groups_[shard];
  const std::size_t n = group.replicas.size();
  // Attempt order: healthy replicas first, starting at the preferred one
  // (the last that answered), ejected replicas as a last resort — a stale
  // "unhealthy" verdict must never fail a query that an alive-but-ejected
  // worker could have served.
  const std::size_t start = group.preferred.load(std::memory_order_relaxed) % n;
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (start + i) % n;
    if (group.replicas[idx]->healthy.load(std::memory_order_relaxed)) {
      order.push_back(idx);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (start + i) % n;
    if (!group.replicas[idx]->healthy.load(std::memory_order_relaxed)) {
      order.push_back(idx);
    }
  }
  Status last_error = Status::Unavailable(
      "shard " + std::to_string(shard) + ": no replica answered");
  for (std::size_t attempt = 0; attempt < order.size(); ++attempt) {
    const std::size_t idx = order[attempt];
    Replica& replica = *group.replicas[idx];
    // Per-attempt budget: the time remaining split over the replicas still
    // untried, so one hung worker burns only its share of the deadline and
    // the stage fails over while there is budget left for the next replica.
    std::chrono::milliseconds timeout{0};
    ShardQueryFrame frame;
    frame.query_id = ctx.query_id();
    frame.k = request.k;
    frame.protocol = request.protocol;
    frame.enc_query = enc_query;
    if (ctx.has_deadline()) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              ctx.deadline() - std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        return Status::DeadlineExceeded("shard " + std::to_string(shard) +
                                        ": query deadline elapsed");
      }
      timeout = remaining / static_cast<int64_t>(order.size() - attempt);
      if (timeout.count() < 1) timeout = std::chrono::milliseconds{1};
      frame.deadline_ms = static_cast<uint32_t>(timeout.count());
    }
    std::shared_ptr<RpcClient> client = replica.GetClient();
    Result<Message> resp =
        client != nullptr
            ? client->Call(EncodeShardQuery(frame), timeout)
            : Result<Message>(Status::Unavailable("replica has no link"));
    if (!resp.ok() || resp->type == OpCode(Op::kError)) {
      // Transport death, timeout, or the worker's RPC layer declaring
      // failure: charge the replica and fail over within this query.
      replica.MarkFailed(remote_options_.eject_after_failures);
      replica.failovers.fetch_add(1, std::memory_order_relaxed);
      stats->failovers += 1;
      if (!resp.ok()) {
        last_error =
            resp.status().code() == StatusCode::kDeadlineExceeded
                ? Status::DeadlineExceeded(
                      "shard " + std::to_string(shard) + " replica " +
                      std::to_string(idx) + " timed out: " +
                      resp.status().message())
                : Status::Unavailable("shard " + std::to_string(shard) +
                                      " replica " + std::to_string(idx) +
                                      " unreachable: " +
                                      resp.status().message());
      } else {
        last_error = Status::Unavailable(
            "shard " + std::to_string(shard) + " replica " +
            std::to_string(idx) + " failed: " +
            std::string(resp->aux.begin(), resp->aux.end()));
      }
      continue;
    }
    if (resp->type == ShardOpCode(ShardOp::kShardError)) {
      // A typed rejection from a live worker: the REQUEST is wrong (bad k,
      // bad geometry, its own deadline ran out...), so retrying a different
      // replica of the same shard would only repeat it — unless the worker
      // itself timed out against C2, where the next replica (with its own
      // C2 link) may well succeed.
      Status status = DecodeShardError(*resp);
      if (status.code() == StatusCode::kDeadlineExceeded) {
        replica.MarkFailed(remote_options_.eject_after_failures);
        replica.failovers.fetch_add(1, std::memory_order_relaxed);
        stats->failovers += 1;
        last_error = status;
        continue;
      }
      replica.MarkOk();
      return status;
    }
    SKNN_ASSIGN_OR_RETURN(ShardCandidatesFrame decoded,
                          DecodeShardCandidates(*resp));
    replica.MarkOk();
    group.preferred.store(idx, std::memory_order_relaxed);
    stats->candidates = static_cast<uint32_t>(decoded.candidates.count());
    stats->seconds = decoded.seconds;
    stats->traffic = decoded.traffic;
    stats->ops = decoded.ops;
    stats->replica = static_cast<uint32_t>(idx);
    return std::move(decoded.candidates);
  }
  return last_error;
}

Result<ShardCandidates> ShardCoordinator::RunShard(
    ProtoContext& ctx, std::size_t shard, const QueryRequest& request,
    const std::vector<Ciphertext>& enc_query, ShardQueryStats* stats) {
  stats->shard = static_cast<uint32_t>(shard);
  if (!groups_.empty()) {
    return RunShardRemote(ctx, shard, request, enc_query, stats);
  }

  // Local shard set: same stage, this process, per-shard meter. The shard's
  // C1-side Paillier ops sink into the shard meter (NOT the query's main
  // meter — the engine folds them back in via the stats), so the per-shard
  // split stays exact.
  QueryMeter shard_meter;
  ProtoContext shard_ctx(&ctx.pk(), ctx.client(), ctx.pool(), ctx.query_id(),
                         &shard_meter, ctx.vectorized());
  if (ctx.has_deadline()) shard_ctx.set_deadline(ctx.deadline());
  Stopwatch watch;
  Result<ShardCandidates> result = [&] {
    ScopedOpSink sink(&shard_meter.ops());
    return RunShardStage(shard_ctx, slices_[shard], manifest_.total_records,
                         enc_query, request.k, request.protocol, verify_sbd_);
  }();
  stats->seconds = watch.ElapsedSeconds();
  stats->traffic = shard_meter.traffic();
  stats->ops = shard_meter.ops().snapshot();
  if (result.ok()) {
    stats->candidates = static_cast<uint32_t>(result->count());
  }
  return result;
}

Result<CloudQueryOutput> ShardCoordinator::MergeSecure(
    ProtoContext& ctx, std::vector<ShardCandidates> candidates, unsigned k,
    SkNNmBreakdown* breakdown) {
  const unsigned want_bits =
      AugmentedBitWidth(distance_bits_, manifest_.total_records);
  std::vector<EncryptedBits> pool_bits;
  std::vector<std::vector<Ciphertext>> pool_records;
  for (std::size_t shard = 0; shard < candidates.size(); ++shard) {
    ShardCandidates& c = candidates[shard];
    if (c.bits.size() != c.records.size()) {
      return Status::ProtocolError("shard " + std::to_string(shard) +
                                   ": candidate bits/records mismatch");
    }
    for (std::size_t i = 0; i < c.bits.size(); ++i) {
      if (c.bits[i].size() != want_bits ||
          c.records[i].size() != num_attributes_) {
        return Status::ProtocolError("shard " + std::to_string(shard) +
                                     ": candidate geometry mismatch");
      }
      pool_bits.push_back(std::move(c.bits[i]));
      pool_records.push_back(std::move(c.records[i]));
    }
  }
  if (pool_records.size() < k) {
    return Status::ProtocolError(
        "merge pool holds " + std::to_string(pool_records.size()) +
        " candidates for k = " + std::to_string(k));
  }
  // The candidates' augmented values are pairwise distinct (each embeds its
  // global index), so these k iterations pick exactly the global top-k in
  // the global order — bitwise what the unsharded extraction returns.
  SKNN_ASSIGN_OR_RETURN(TopKExtraction top,
                        ExtractTopK(ctx, pool_records, pool_bits, k,
                                    /*keep_winner_bits=*/false, breakdown));
  Stopwatch finalize;
  Result<CloudQueryOutput> out = MaskAndShipToBob(ctx, top.records);
  if (breakdown != nullptr) {
    breakdown->finalize_seconds += finalize.ElapsedSeconds();
  }
  return out;
}

Result<CloudQueryOutput> ShardCoordinator::MergeBasic(
    ProtoContext& ctx, std::vector<ShardCandidates> candidates, unsigned k) {
  struct Candidate {
    const Ciphertext* distance;
    const std::vector<Ciphertext>* record;
    uint32_t global_index;
  };
  std::vector<Candidate> pool;
  for (std::size_t shard = 0; shard < candidates.size(); ++shard) {
    const ShardCandidates& c = candidates[shard];
    if (c.distances.size() != c.records.size() ||
        c.global_indices.size() != c.records.size()) {
      return Status::ProtocolError("shard " + std::to_string(shard) +
                                   ": basic candidate geometry mismatch");
    }
    for (std::size_t i = 0; i < c.records.size(); ++i) {
      if (c.records[i].size() != num_attributes_ ||
          c.global_indices[i] >= manifest_.total_records) {
        return Status::ProtocolError("shard " + std::to_string(shard) +
                                     ": basic candidate out of range");
      }
      pool.push_back({&c.distances[i], &c.records[i], c.global_indices[i]});
    }
  }
  if (pool.size() < k) {
    return Status::ProtocolError("merge pool holds " +
                                 std::to_string(pool.size()) +
                                 " candidates for k = " + std::to_string(k));
  }
  // C2's top-k round breaks distance ties by the lower POSITION in the sent
  // vector; ordering the pool by global index makes that tie-break the
  // global one, so the merged list equals the unsharded protocol's exactly.
  std::sort(pool.begin(), pool.end(), [](const Candidate& a,
                                         const Candidate& b) {
    return a.global_index < b.global_index;
  });
  std::vector<Ciphertext> dists;
  dists.reserve(pool.size());
  for (const Candidate& c : pool) dists.push_back(*c.distance);
  SKNN_ASSIGN_OR_RETURN(std::vector<uint32_t> delta,
                        SecureTopKIndices(ctx, dists, k));
  std::vector<std::vector<Ciphertext>> chosen;
  chosen.reserve(k);
  for (uint32_t idx : delta) chosen.push_back(*pool[idx].record);
  return MaskAndShipToBob(ctx, chosen);
}

Result<CloudQueryOutput> ShardCoordinator::Run(
    ProtoContext& ctx, const QueryRequest& request,
    const std::vector<Ciphertext>& enc_query, SkNNmBreakdown* breakdown,
    RunStats* stats, const std::vector<uint32_t>* active_shards) {
  const std::size_t s = manifest_.num_shards;
  RunStats local_stats;
  RunStats& st = stats != nullptr ? *stats : local_stats;
  st.shards.assign(s, ShardQueryStats{});
  st.merge_seconds = 0;
  // Clustered pruning: shards outside `active_shards` never see the query.
  // `active` also sanitizes the list (dedup + range check) so a buggy
  // caller cannot double-run or overrun a shard.
  std::vector<bool> active(s, active_shards == nullptr);
  if (active_shards != nullptr) {
    for (uint32_t shard : *active_shards) {
      if (shard >= s) {
        return Status::InvalidArgument(
            "ShardCoordinator: active shard " + std::to_string(shard) +
            " out of range (num_shards = " + std::to_string(s) + ")");
      }
      active[shard] = true;
    }
  }
  for (std::size_t shard = 0; shard < s; ++shard) {
    st.shards[shard].shard = static_cast<uint32_t>(shard);
    st.shards[shard].shard_records = shard_records(shard);
    st.shards[shard].pruned = active[shard] ? 0 : 1;
  }

  // Fan out: every active shard stage in flight at once. Shard threads only
  // drive control flow (and block on their shard's round trips); the
  // homomorphic work still lands on the shared pools.
  std::vector<Result<ShardCandidates>> results(
      s, Result<ShardCandidates>(Status::Internal("unset")));
  {
    std::vector<std::thread> threads;
    threads.reserve(s);
    for (std::size_t shard = 0; shard < s; ++shard) {
      if (!active[shard]) continue;
      threads.emplace_back([&, shard] {
        results[shard] =
            RunShard(ctx, shard, request, enc_query, &st.shards[shard]);
      });
    }
    for (auto& t : threads) t.join();
  }
  std::vector<ShardCandidates> candidates;
  candidates.reserve(s);
  for (std::size_t shard = 0; shard < s; ++shard) {
    if (!active[shard]) continue;
    if (!results[shard].ok()) return results[shard].status();
    candidates.push_back(std::move(results[shard]).value());
  }

  Stopwatch merge_watch;
  Result<CloudQueryOutput> merged =
      request.protocol == QueryProtocol::kBasic
          ? MergeBasic(ctx, std::move(candidates), request.k)
          : MergeSecure(ctx, std::move(candidates), request.k, breakdown);
  st.merge_seconds = merge_watch.ElapsedSeconds();
  return merged;
}

}  // namespace sknn
