#include "core/shard_coordinator.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <thread>

#include "common/stopwatch.h"
#include "proto/query_meter.h"

namespace sknn {

ShardCoordinator::~ShardCoordinator() = default;

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::CreateLocal(
    const EncryptedDatabase& db, const ShardManifest& manifest,
    bool verify_sbd) {
  SKNN_ASSIGN_OR_RETURN(
      ShardManifest checked,
      MakeShardManifest(manifest.total_records, manifest.num_shards,
                        manifest.scheme));
  auto coordinator = std::unique_ptr<ShardCoordinator>(new ShardCoordinator());
  coordinator->manifest_ = checked;
  coordinator->verify_sbd_ = verify_sbd;
  coordinator->num_attributes_ = db.num_attributes();
  coordinator->distance_bits_ = db.distance_bits;
  SKNN_ASSIGN_OR_RETURN(coordinator->slices_, PartitionDatabase(db, checked));
  return coordinator;
}

Result<std::unique_ptr<ShardCoordinator>> ShardCoordinator::CreateRemote(
    std::vector<std::unique_ptr<Endpoint>> worker_links, bool verify_sbd) {
  if (worker_links.empty()) {
    return Status::InvalidArgument("ShardCoordinator: no worker links");
  }
  // Ping every worker for its geometry; workers may connect in any order —
  // they are re-indexed by their reported shard.
  std::vector<std::unique_ptr<RpcClient>> clients;
  std::vector<ShardGeometry> geometries;
  for (auto& link : worker_links) {
    if (link == nullptr) {
      return Status::InvalidArgument("ShardCoordinator: null worker link");
    }
    auto client = std::make_unique<RpcClient>(std::move(link));
    auto pong = client->Call(EncodeShardPing());
    if (!pong.ok()) {
      return Status::Unavailable("shard worker " +
                                 std::to_string(clients.size()) +
                                 " did not answer ping: " +
                                 pong.status().message());
    }
    SKNN_ASSIGN_OR_RETURN(ShardGeometry geometry, DecodeShardGeometry(*pong));
    clients.push_back(std::move(client));
    geometries.push_back(geometry);
  }
  const ShardManifest manifest = geometries[0].manifest;
  if (manifest.num_shards != clients.size()) {
    return Status::InvalidArgument(
        "ShardCoordinator: manifest wants " +
        std::to_string(manifest.num_shards) + " shards, got " +
        std::to_string(clients.size()) + " workers");
  }
  auto coordinator = std::unique_ptr<ShardCoordinator>(new ShardCoordinator());
  coordinator->manifest_ = manifest;
  coordinator->verify_sbd_ = verify_sbd;
  coordinator->num_attributes_ = geometries[0].num_attributes;
  coordinator->distance_bits_ = geometries[0].distance_bits;
  coordinator->workers_.resize(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const ShardGeometry& g = geometries[i];
    if (!(g.manifest == manifest) ||
        g.num_attributes != coordinator->num_attributes_ ||
        g.distance_bits != coordinator->distance_bits_) {
      return Status::InvalidArgument(
          "ShardCoordinator: worker " + std::to_string(i) +
          " disagrees on the manifest or database geometry");
    }
    if (g.shard >= clients.size() ||
        coordinator->workers_[g.shard] != nullptr) {
      return Status::InvalidArgument(
          "ShardCoordinator: workers do not cover shards 0.." +
          std::to_string(clients.size() - 1) + " exactly (duplicate or " +
          "out-of-range shard index " + std::to_string(g.shard) + ")");
    }
    coordinator->workers_[g.shard] = std::move(clients[i]);
  }
  return coordinator;
}

Result<ShardCandidates> ShardCoordinator::RunShard(
    ProtoContext& ctx, std::size_t shard, const QueryRequest& request,
    const std::vector<Ciphertext>& enc_query, ShardQueryStats* stats) {
  stats->shard = static_cast<uint32_t>(shard);
  if (!workers_.empty()) {
    ShardQueryFrame frame;
    frame.query_id = ctx.query_id();
    frame.k = request.k;
    frame.protocol = request.protocol;
    frame.enc_query = enc_query;
    auto resp = workers_[shard]->Call(EncodeShardQuery(frame));
    if (!resp.ok()) {
      // The transport died under the call: worker killed, link cut. This is
      // the one failure the coordinator maps to kUnavailable — a protocol
      // error inside a live worker arrives as a kShardError frame instead.
      return Status::Unavailable("shard " + std::to_string(shard) +
                                 " worker unreachable: " +
                                 resp.status().message());
    }
    if (resp->type == OpCode(Op::kError)) {
      return Status::Unavailable(
          "shard " + std::to_string(shard) + " worker failed: " +
          std::string(resp->aux.begin(), resp->aux.end()));
    }
    SKNN_ASSIGN_OR_RETURN(ShardCandidatesFrame decoded,
                          DecodeShardCandidates(*resp));
    stats->candidates = static_cast<uint32_t>(decoded.candidates.count());
    stats->seconds = decoded.seconds;
    stats->traffic = decoded.traffic;
    stats->ops = decoded.ops;
    return std::move(decoded.candidates);
  }

  // Local shard set: same stage, this process, per-shard meter. The shard's
  // C1-side Paillier ops sink into the shard meter (NOT the query's main
  // meter — the engine folds them back in via the stats), so the per-shard
  // split stays exact.
  QueryMeter shard_meter;
  ProtoContext shard_ctx(&ctx.pk(), ctx.client(), ctx.pool(), ctx.query_id(),
                         &shard_meter, ctx.vectorized());
  Stopwatch watch;
  Result<ShardCandidates> result = [&] {
    ScopedOpSink sink(&shard_meter.ops());
    return RunShardStage(shard_ctx, slices_[shard], manifest_.total_records,
                         enc_query, request.k, request.protocol, verify_sbd_);
  }();
  stats->seconds = watch.ElapsedSeconds();
  stats->traffic = shard_meter.traffic();
  stats->ops = shard_meter.ops().snapshot();
  if (result.ok()) {
    stats->candidates = static_cast<uint32_t>(result->count());
  }
  return result;
}

Result<CloudQueryOutput> ShardCoordinator::MergeSecure(
    ProtoContext& ctx, std::vector<ShardCandidates> candidates, unsigned k,
    SkNNmBreakdown* breakdown) {
  const unsigned want_bits =
      AugmentedBitWidth(distance_bits_, manifest_.total_records);
  std::vector<EncryptedBits> pool_bits;
  std::vector<std::vector<Ciphertext>> pool_records;
  for (std::size_t shard = 0; shard < candidates.size(); ++shard) {
    ShardCandidates& c = candidates[shard];
    if (c.bits.size() != c.records.size()) {
      return Status::ProtocolError("shard " + std::to_string(shard) +
                                   ": candidate bits/records mismatch");
    }
    for (std::size_t i = 0; i < c.bits.size(); ++i) {
      if (c.bits[i].size() != want_bits ||
          c.records[i].size() != num_attributes_) {
        return Status::ProtocolError("shard " + std::to_string(shard) +
                                     ": candidate geometry mismatch");
      }
      pool_bits.push_back(std::move(c.bits[i]));
      pool_records.push_back(std::move(c.records[i]));
    }
  }
  if (pool_records.size() < k) {
    return Status::ProtocolError(
        "merge pool holds " + std::to_string(pool_records.size()) +
        " candidates for k = " + std::to_string(k));
  }
  // The candidates' augmented values are pairwise distinct (each embeds its
  // global index), so these k iterations pick exactly the global top-k in
  // the global order — bitwise what the unsharded extraction returns.
  SKNN_ASSIGN_OR_RETURN(TopKExtraction top,
                        ExtractTopK(ctx, pool_records, pool_bits, k,
                                    /*keep_winner_bits=*/false, breakdown));
  Stopwatch finalize;
  Result<CloudQueryOutput> out = MaskAndShipToBob(ctx, top.records);
  if (breakdown != nullptr) {
    breakdown->finalize_seconds += finalize.ElapsedSeconds();
  }
  return out;
}

Result<CloudQueryOutput> ShardCoordinator::MergeBasic(
    ProtoContext& ctx, std::vector<ShardCandidates> candidates, unsigned k) {
  struct Candidate {
    const Ciphertext* distance;
    const std::vector<Ciphertext>* record;
    uint32_t global_index;
  };
  std::vector<Candidate> pool;
  for (std::size_t shard = 0; shard < candidates.size(); ++shard) {
    const ShardCandidates& c = candidates[shard];
    if (c.distances.size() != c.records.size() ||
        c.global_indices.size() != c.records.size()) {
      return Status::ProtocolError("shard " + std::to_string(shard) +
                                   ": basic candidate geometry mismatch");
    }
    for (std::size_t i = 0; i < c.records.size(); ++i) {
      if (c.records[i].size() != num_attributes_ ||
          c.global_indices[i] >= manifest_.total_records) {
        return Status::ProtocolError("shard " + std::to_string(shard) +
                                     ": basic candidate out of range");
      }
      pool.push_back({&c.distances[i], &c.records[i], c.global_indices[i]});
    }
  }
  if (pool.size() < k) {
    return Status::ProtocolError("merge pool holds " +
                                 std::to_string(pool.size()) +
                                 " candidates for k = " + std::to_string(k));
  }
  // C2's top-k round breaks distance ties by the lower POSITION in the sent
  // vector; ordering the pool by global index makes that tie-break the
  // global one, so the merged list equals the unsharded protocol's exactly.
  std::sort(pool.begin(), pool.end(), [](const Candidate& a,
                                         const Candidate& b) {
    return a.global_index < b.global_index;
  });
  std::vector<Ciphertext> dists;
  dists.reserve(pool.size());
  for (const Candidate& c : pool) dists.push_back(*c.distance);
  SKNN_ASSIGN_OR_RETURN(std::vector<uint32_t> delta,
                        SecureTopKIndices(ctx, dists, k));
  std::vector<std::vector<Ciphertext>> chosen;
  chosen.reserve(k);
  for (uint32_t idx : delta) chosen.push_back(*pool[idx].record);
  return MaskAndShipToBob(ctx, chosen);
}

Result<CloudQueryOutput> ShardCoordinator::Run(
    ProtoContext& ctx, const QueryRequest& request,
    const std::vector<Ciphertext>& enc_query, SkNNmBreakdown* breakdown,
    RunStats* stats) {
  const std::size_t s = manifest_.num_shards;
  RunStats local_stats;
  RunStats& st = stats != nullptr ? *stats : local_stats;
  st.shards.assign(s, ShardQueryStats{});
  st.merge_seconds = 0;

  // Fan out: every shard stage in flight at once. Shard threads only drive
  // control flow (and block on their shard's round trips); the homomorphic
  // work still lands on the shared pools.
  std::vector<Result<ShardCandidates>> results(
      s, Result<ShardCandidates>(Status::Internal("unset")));
  {
    std::vector<std::thread> threads;
    threads.reserve(s);
    for (std::size_t shard = 0; shard < s; ++shard) {
      threads.emplace_back([&, shard] {
        results[shard] =
            RunShard(ctx, shard, request, enc_query, &st.shards[shard]);
      });
    }
    for (auto& t : threads) t.join();
  }
  std::vector<ShardCandidates> candidates;
  candidates.reserve(s);
  for (std::size_t shard = 0; shard < s; ++shard) {
    if (!results[shard].ok()) return results[shard].status();
    candidates.push_back(std::move(results[shard]).value());
  }

  Stopwatch merge_watch;
  Result<CloudQueryOutput> merged =
      request.protocol == QueryProtocol::kBasic
          ? MergeBasic(ctx, std::move(candidates), request.k)
          : MergeSecure(ctx, std::move(candidates), request.k, breakdown);
  st.merge_seconds = merge_watch.ElapsedSeconds();
  return merged;
}

}  // namespace sknn
