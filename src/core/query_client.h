// Bob: encrypts his query record, and reconstructs the k result records
// from the two masked halves — random masks r_{j,h} received from C1 and
// decrypted masked attributes gamma'_{j,h} received from C2 (Algorithms 5/6
// steps 4-6). Bob's total work is m encryptions plus k*m modular
// subtractions: the paper's "lightweight enough for a mobile device" claim.
#ifndef SKNN_CORE_QUERY_CLIENT_H_
#define SKNN_CORE_QUERY_CLIENT_H_

#include <vector>

#include "core/types.h"
#include "crypto/paillier.h"

namespace sknn {

class QueryClient {
 public:
  explicit QueryClient(const PaillierPublicKey& pk) : pk_(pk) {}

  /// \brief Epk(Q): attribute-wise encryption of the query record.
  std::vector<Ciphertext> EncryptQuery(const PlainRecord& query) const;

  /// \brief Recovers the k records: t'_{j,h} = gamma'_{j,h} - r_{j,h} mod N.
  /// Both inputs are flat row-major k*m vectors.
  Result<PlainTable> RecoverRecords(const std::vector<BigInt>& masked_from_c2,
                                    const std::vector<BigInt>& masks_from_c1,
                                    std::size_t k, std::size_t m) const;

  const PaillierPublicKey& public_key() const { return pk_; }

 private:
  PaillierPublicKey pk_;
};

}  // namespace sknn

#endif  // SKNN_CORE_QUERY_CLIENT_H_
