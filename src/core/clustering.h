// Learned k-means partitioning for the clustered (approximate, sublinear)
// index mode.
//
// The data owner (Alice) clusters her PLAINTEXT table before encryption and
// ships the result — a record→cluster assignment plus the per-cluster
// centroids encrypted attribute-wise under her Paillier key — to C1 as a
// cluster manifest (see core/db_io for the SKNNCL01 container). At query
// time C1 scores the encrypted centroids with the same SSED + secure top-k
// round used for records, prunes to the closest p clusters, and runs the
// paper-exact SkNN_m machinery over the surviving candidates only. This is
// the SANNS-style recipe: per-query work becomes proportional to the
// candidate set instead of n, at the cost of an explicit recall knob
// (probe_clusters) and of revealing the CLUSTER ranking (never record
// distances) to C2 during the probe round.
//
// Everything here is deterministic for a fixed (table, num_clusters, seed):
// the assignment is reproducible across runs so that manifests written by
// sknn_encrypt agree with manifests rebuilt in tests.
#ifndef SKNN_CORE_CLUSTERING_H_
#define SKNN_CORE_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "crypto/paillier.h"

namespace sknn {

/// \brief The plaintext outcome of k-means: who lives where, and the rounded
/// integer centroids (kept in the attribute domain so they encrypt exactly
/// like records do).
struct KMeansResult {
  /// assignment[i] = cluster of record i, in [0, num_clusters).
  std::vector<uint32_t> assignment;
  /// centroids[c][j] = rounded mean of attribute j over cluster c. Every
  /// cluster is non-empty (empty clusters are reseeded during Lloyd's), so
  /// centroids.size() is the effective cluster count, which may be SMALLER
  /// than requested when the table has fewer records than clusters.
  std::vector<PlainRecord> centroids;
};

/// \brief Deterministic seeded Lloyd's k-means over the plaintext table.
///
/// Init is k-means++-style (D^2-weighted) driven by a splitmix64 stream, so
/// identical inputs give identical partitions on every platform. Empty
/// clusters are reseeded with the point farthest from its centroid.
/// Requires num_clusters >= 1 and a non-empty, rectangular table.
Result<KMeansResult> KMeansPartition(const PlainTable& table,
                                     uint32_t num_clusters, uint64_t seed,
                                     int max_iters = 25);

/// \brief The cluster-index sidecar C1 loads next to an encrypted database.
///
/// Centroids are encrypted attribute-wise under Alice's public key, exactly
/// like records, so SecureSquaredDistanceBatch scores them unchanged.
struct ClusterManifest {
  uint32_t num_clusters = 0;
  std::size_t num_attributes = 0;
  std::size_t total_records = 0;
  /// assignment[i] = cluster of record i; size total_records.
  std::vector<uint32_t> assignment;
  /// centroids[c][j] = Epk(centroid c, attribute j); num_clusters rows.
  std::vector<std::vector<Ciphertext>> centroids;
};

/// \brief Runs KMeansPartition and encrypts the centroids under `pk`.
///
/// Values must fit the same attribute domain as the table itself (they do by
/// construction: a rounded mean of in-domain values is in-domain).
Result<ClusterManifest> BuildClusterManifest(const PlainTable& table,
                                             uint32_t num_clusters,
                                             uint64_t seed,
                                             const PaillierPublicKey& pk);

/// \brief Global record indices of one cluster, ascending.
///
/// Ascending order matters: the global index is the SkNN_m tie-break key,
/// so candidate sets assembled from clusters must present records in the
/// same relative order as the full table does.
std::vector<std::size_t> ClusterRecordIndices(const ClusterManifest& manifest,
                                              uint32_t cluster);

/// \brief Per-cluster record counts; size manifest.num_clusters.
std::vector<uint32_t> ClusterSizes(const ClusterManifest& manifest);

/// \brief Structural check: does this manifest describe this database?
Status ValidateClusterManifestForDatabase(const ClusterManifest& manifest,
                                          const EncryptedDatabase& db);

}  // namespace sknn

#endif  // SKNN_CORE_CLUSTERING_H_
