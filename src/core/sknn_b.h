// SkNN_b — the basic protocol (Algorithm 5).
//
// C1 computes encrypted distances with SSED and hands them (with record
// indices) to C2, which decrypts them and returns the top-k index list.
// Efficient, but deliberately weaker: C2 learns all distances and both
// clouds learn which records answer the query (the data access pattern).
// The paper uses it as the efficiency baseline for SkNN_m (Figure 2(f)).
#ifndef SKNN_CORE_SKNN_B_H_
#define SKNN_CORE_SKNN_B_H_

#include <vector>

#include "core/types.h"
#include "proto/context.h"

namespace sknn {

/// \brief What C1 produces for Bob: the random masks (the masked records
/// themselves travel C2 -> Bob via C2's outbox, never through C1).
struct CloudQueryOutput {
  std::vector<BigInt> masks_for_bob;  // k*m row-major r_{j,h}
};

/// \brief Masks the chosen encrypted records attribute-wise and ships them
/// to C2 for decryption into Bob's outbox (steps 4-5 of Algorithm 5, shared
/// by both protocols). Returns the masks C1 sends Bob.
Result<CloudQueryOutput> MaskAndShipToBob(
    ProtoContext& ctx, const std::vector<std::vector<Ciphertext>>& chosen);

/// \brief Step 3 of Algorithm 5 on its own: C2 decrypts `dists` and returns
/// the indices of the k smallest, ties broken by the lower position — the
/// round the sharded execution reuses to pick local candidates per shard
/// and again to merge candidates at the coordinator (core/shard_coordinator).
Result<std::vector<uint32_t>> SecureTopKIndices(
    ProtoContext& ctx, const std::vector<Ciphertext>& dists, unsigned k);

/// \brief Runs Algorithm 5 on C1's side. `enc_query` is Epk(Q) as received
/// from Bob. Returns the C1->Bob masks; C2's outbox holds the other half.
Result<CloudQueryOutput> RunSkNNb(ProtoContext& ctx,
                                  const EncryptedDatabase& db,
                                  const std::vector<Ciphertext>& enc_query,
                                  unsigned k);

}  // namespace sknn

#endif  // SKNN_CORE_SKNN_B_H_
